package main

import (
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestFlagsEntryPointWithoutContext(t *testing.T) {
	diags := checkPackage(parseSrc(t, `
package p

func VerifyAll(n int) error { return nil }
`))
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].msg, "VerifyAll") || !strings.Contains(diags[0].msg, "context.Context") {
		t.Errorf("unhelpful diagnostic: %s", diags[0])
	}
}

func TestAcceptsContextFirst(t *testing.T) {
	diags := checkPackage(parseSrc(t, `
package p

import "context"

func Verify(ctx context.Context, n int) error { return nil }
func ExploreDeep(ctx context.Context) {}
`))
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
}

func TestContextSiblingGrandfathersWrappers(t *testing.T) {
	diags := checkPackage(parseSrc(t, `
package p

import "context"

type Instance struct{}

func (inst *Instance) Explore(lim int) error { return inst.ExploreContext(context.Background(), lim) }
func (inst *Instance) ExploreContext(ctx context.Context, lim int) error { return nil }
func (inst *Instance) ExploreParallel(lim, workers int) error { return nil }
`))
	if len(diags) != 0 {
		t.Fatalf("wrappers over a context variant flagged: %v", diags)
	}
}

func TestDifferentReceiversAreSeparateFamilies(t *testing.T) {
	diags := checkPackage(parseSrc(t, `
package p

import "context"

type A struct{}
type B struct{}

func (a *A) Explore() {}
func (b *B) ExploreContext(ctx context.Context) {}
`))
	if len(diags) != 1 || !strings.Contains(diags[0].msg, "(A).Explore") {
		t.Fatalf("got %v, want exactly (A).Explore flagged", diags)
	}
}

func TestIgnoresUnexportedAndUnrelatedNames(t *testing.T) {
	diags := checkPackage(parseSrc(t, `
package p

func verify(n int) {}
func explore() {}
func Verifying(n int) {}
func Run(n int) {}
func Exploit() {}
`))
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
}

func TestGenericReceiverAndFunc(t *testing.T) {
	diags := checkPackage(parseSrc(t, `
package p

import "context"

type Engine[S any] struct{}

func (e *Engine[S]) Explore(ctx context.Context) {}

func Verify[T any](ctx context.Context, v T) {}
`))
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics on generics: %v", diags)
	}
}

// TestRepoIsClean runs the standalone walker over the whole repository:
// every Verify*/Explore* family shipped here must already satisfy the
// discipline the CI lint job enforces.
func TestRepoIsClean(t *testing.T) {
	fset := token.NewFileSet()
	dirs, err := expand("../../../...")
	if err != nil {
		t.Fatal(err)
	}
	var all []diagnostic
	for _, dir := range dirs {
		diags, err := checkDir(fset, dir)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, diags...)
	}
	for _, d := range all {
		t.Errorf("%s", d)
	}
}

// TestUnitConfigProtocol drives runUnit the way go vet does: a JSON .cfg
// naming the unit's files, an expected vetx output, exit 2 on findings and
// 0 on clean or VetxOnly units.
func TestUnitConfigProtocol(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	if err := os.WriteFile(src, []byte("package p\n\nfunc VerifySystem(n int) {}\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "p.vetx")
	writeCfg := func(name string, cfg config) string {
		t.Helper()
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	cfg := writeCfg("unit.cfg", config{GoFiles: []string{src}, VetxOutput: vetx})
	if code := runUnit(cfg); code != 2 {
		t.Errorf("unit with finding: exit %d, want 2", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}

	only := writeCfg("only.cfg", config{GoFiles: []string{src}, VetxOutput: vetx, VetxOnly: true})
	if code := runUnit(only); code != 0 {
		t.Errorf("VetxOnly unit: exit %d, want 0 (facts pass must not report)", code)
	}
}

// TestGoVetProtocol builds the tool and runs it under the real go vet
// driver against a package of this repository, exercising -V=full, -flags,
// and the .cfg handshake end to end.
func TestGoVetProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets a package")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ctxfirst")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/sc/")
	vet.Dir = "../../.."
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}
