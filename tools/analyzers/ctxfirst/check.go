package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// families are the entry-point verbs the analyzer polices: long-running
// verification and exploration APIs must be cancellable.
var families = []string{"Verify", "Explore"}

// diagnostic is one finding, formatted go-vet style.
type diagnostic struct {
	pos token.Position
	msg string
}

func (d diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.pos, d.msg)
}

// checkPackage inspects every exported Verify*/Explore* function or method
// declared across the files of one package. Members of a family (same verb,
// same receiver type) that do not take context.Context as their first
// parameter are reported — unless some member of the family does, in which
// case the rest are treated as convenience wrappers over that variant.
func checkPackage(fset *token.FileSet, files []*ast.File) []diagnostic {
	type member struct {
		decl   *ast.FuncDecl
		family string
		recv   string
	}
	groups := map[string][]member{}
	var order []string
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			fam := family(fd.Name.Name)
			if fam == "" {
				continue
			}
			m := member{decl: fd, family: fam, recv: recvTypeName(fd)}
			key := m.recv + "." + fam
			if _, seen := groups[key]; !seen {
				order = append(order, key)
			}
			groups[key] = append(groups[key], m)
		}
	}
	var diags []diagnostic
	for _, key := range order {
		ms := groups[key]
		hasCtx := false
		for _, m := range ms {
			if ctxFirst(m.decl) {
				hasCtx = true
				break
			}
		}
		if hasCtx {
			continue
		}
		for _, m := range ms {
			name := m.decl.Name.Name
			target := name
			if m.recv != "" {
				target = "(" + m.recv + ")." + name
			}
			diags = append(diags, diagnostic{
				pos: fset.Position(m.decl.Name.Pos()),
				msg: fmt.Sprintf("exported entry point %s must take context.Context as its first parameter, or the %s family must offer a context-first %sContext variant",
					target, m.family, name),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// family maps a declaration name to the entry-point verb it extends, or ""
// when the name is outside the policed set. The character after the verb
// must start a new word ("VerifyInstance", not "Verifying").
func family(name string) string {
	for _, f := range families {
		if !strings.HasPrefix(name, f) {
			continue
		}
		rest := name[len(f):]
		if rest == "" {
			return f
		}
		if r, _ := utf8.DecodeRuneInString(rest); unicode.IsUpper(r) {
			return f
		}
	}
	return ""
}

// recvTypeName unwraps a method receiver to its base type name ("" for
// plain functions). Pointer and generic receivers are unwrapped.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// ctxFirst reports whether the declaration's first parameter is written as
// context.Context. The check is syntactic (the tool runs without type
// information), so a renamed context import defeats it; the repository
// imports the package under its own name everywhere.
func ctxFirst(fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	sel, ok := params.List[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}
