// Command ctxfirst enforces the repository's cancellation discipline:
// every family of exported Verify*/Explore* entry points (same verb, same
// receiver type, same package) must expose a variant that takes
// context.Context as its first parameter. Context-less members of a family
// that has such a variant are accepted as convenience wrappers (e.g.
// Explore over ExploreContext); a family with none is reported.
//
// The tool is built on the standard library only and speaks the
// `go vet -vettool` protocol:
//
//	-V=full    print the executable's version and content hash (build cache key)
//	-flags     print the supported analyzer flags as JSON (none: "[]")
//	unit.cfg   analyze one compilation unit described by a JSON config file
//
// It also runs standalone over directories and `./...` patterns:
//
//	go build -o bin/ctxfirst ./tools/analyzers/ctxfirst
//	go vet -vettool=$PWD/bin/ctxfirst ./...
//	./bin/ctxfirst ./...
//
// Exit status is 2 when findings are reported, mirroring go vet.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// config is the subset of the go vet unit-config JSON the tool needs.
type config struct {
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ctxfirst: ")
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ctxfirst", flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (-V=full includes the content hash)")
	printFlags := fs.Bool("flags", false, "print the analyzer flags as JSON and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		return doVersion(*version)
	}
	if *printFlags {
		// No analyzer-specific flags: the driver learns it may pass none.
		fmt.Println("[]")
		return 0
	}
	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		return runUnit(fs.Arg(0))
	}
	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	return runStandalone(targets)
}

// doVersion implements -V. The -V=full form is the build tool's cache key
// for vet results, so it must change whenever the executable does: it
// embeds a content hash of the binary, in the same shape the go/analysis
// unitchecker driver prints.
func doVersion(mode string) int {
	if mode != "full" {
		fmt.Println("ctxfirst version devel")
		return 0
	}
	exe, err := os.Executable()
	if err != nil {
		log.Print(err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Print(err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	return 0
}

// runUnit analyzes one compilation unit under the go vet driver.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("%s: %v", cfgPath, err)
		return 1
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Print(err)
			return 1
		}
		files = append(files, f)
	}
	// The driver caches the unit's facts file; ctxfirst exports no facts
	// but must still produce the output the build system expects.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Print(err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	diags := checkPackage(fset, files)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone analyzes directories, ./... patterns, and single .go files
// without a driver.
func runStandalone(targets []string) int {
	fset := token.NewFileSet()
	var diags []diagnostic
	for _, target := range targets {
		if strings.HasSuffix(target, ".go") {
			f, err := parser.ParseFile(fset, target, nil, parser.SkipObjectResolution)
			if err != nil {
				log.Print(err)
				return 1
			}
			diags = append(diags, checkPackage(fset, []*ast.File{f})...)
			continue
		}
		dirs, err := expand(target)
		if err != nil {
			log.Print(err)
			return 1
		}
		for _, dir := range dirs {
			ds, err := checkDir(fset, dir)
			if err != nil {
				log.Print(err)
				return 1
			}
			diags = append(diags, ds...)
		}
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// expand resolves a target into the directories to analyze: a trailing
// "..." walks the tree, skipping testdata and hidden/underscore dirs.
func expand(target string) ([]string, error) {
	if !strings.HasSuffix(target, "...") {
		return []string{target}, nil
	}
	root := filepath.Clean(strings.TrimSuffix(target, "..."))
	if root == "" {
		root = "."
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); path != root &&
			(name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// checkDir parses every .go file in one directory, groups the files by
// package clause (a directory may hold both pkg and pkg_test), and checks
// each group.
func checkDir(fset *token.FileSet, dir string) ([]diagnostic, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byPkg := map[string][]*ast.File{}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if _, seen := byPkg[f.Name.Name]; !seen {
			names = append(names, f.Name.Name)
		}
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
	}
	sort.Strings(names)
	var out []diagnostic
	for _, name := range names {
		out = append(out, checkPackage(fset, byPkg[name])...)
	}
	return out, nil
}
