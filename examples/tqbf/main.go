// PSPACE-hardness in action (Theorem 5.1): quantified Boolean formulas are
// decided by building the Figure 6 PureRA program — env threads guess an
// assignment, check the matrix against initial-message readability, and
// merge certificates level by level — and asking the parameterized verifier
// whether `assert false` is reachable.
package main

import (
	"context"
	"fmt"
	"log"

	"paramra"
	"paramra/internal/tqbf"
)

func main() {
	formulas := []string{
		"forall u : (u | ~u)",
		"forall u : u",
		"forall u0 exists e1 forall u1 : (~u0 | e1) & (u0 | ~e1)",
		"forall u0 exists e1 forall u1 : (e1 | u1) & (~e1 | ~u1)",
		"exists a forall u : (a | u)",
	}
	for _, src := range formulas {
		q, err := tqbf.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		q = q.Normalize()
		sys, err := tqbf.Reduce(q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
		if err != nil {
			log.Fatal(err)
		}
		agree := "ok"
		if res.Unsafe != q.Eval() {
			agree = "MISMATCH (bug!)"
		}
		fmt.Printf("%-60s QBF=%-5v verifier=%-5v %s\n", src, q.Eval(), res.Unsafe, agree)
	}

	// Show the generated PureRA program for the smallest formula.
	q, _ := tqbf.Parse("forall u : u")
	sys, err := tqbf.Reduce(q.Normalize())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGenerated PureRA system for 'forall u : u':")
	fmt.Print(paramra.Format(sys))
}
