// Quickstart: parse a parameterized system, classify it, and decide safety
// under release-acquire using the public paramra API.
package main

import (
	"context"
	"fmt"
	"log"

	"paramra"
)

const src = `
# Unboundedly many producers forward a value once the consumer raises a
# flag; the consumer then observes the forwarded value.
system quickstart {
  vars data flag
  domain 4
  env producer
  dis consumer
}

thread producer {
  regs r
  r = load flag; assume r == 1
  store data 2
}

thread consumer {
  regs v
  store flag 1
  v = load data; assume v == 2
  assert false     # "the interesting state is reachable"
}
`

func main() {
	sys, err := paramra.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("system:", sys.Name)
	fmt.Println("class: ", paramra.Classify(sys))

	// Decide safety for EVERY number of environment threads at once.
	res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parameterized verdict:", verdict(res.Unsafe))
	fmt.Printf("work: %d macro states, %d env configurations\n",
		res.Stats.MacroStates, res.Stats.EnvConfigs)
	if res.Unsafe {
		fmt.Printf("the §4.3 bound says %d env thread(s) suffice\n", res.EnvThreadBound)
	}

	// Cross-check against concrete instances under the full RA semantics.
	for n := 0; n <= 2; n++ {
		inst, err := paramra.VerifyInstance(context.Background(), sys, n, paramra.Options{MaxStates: 200_000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("concrete instance with %d env thread(s): %s\n", n, verdict(inst.Unsafe))
	}
}

func verdict(unsafe bool) string {
	if unsafe {
		return "UNSAFE (assert reachable)"
	}
	return "SAFE"
}
