// Producer-consumer (Figures 1, 3, and 5 of the paper): arbitrarily many
// producers chain increasing values through x while a consumer loops,
// reading an ascending sequence. The example shows
//
//   - a concrete RA execution with an explicit interleaving witness
//     (Figure 1's execution snippet),
//   - the parameterized verdict under the simplified semantics, where the
//     consumer loop bound can exceed any fixed thread count (Figure 3),
//   - the dependency graph and the §4.3 cost bound on the number of env
//     threads (Figure 5).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"paramra"
)

func system(z int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `
system prodcons { vars x y; domain %d; env producer; dis consumer }
thread producer {
  regs r s
  r = load y; assume r == 1
  s = load x
  store x (s + 1)
}
thread consumer {
  regs t
  store y 1
`, z+2)
	for i := 1; i <= z; i++ {
		fmt.Fprintf(&b, "  t = load x; assume t == %d\n", i)
	}
	b.WriteString("  assert false\n}\n")
	return b.String()
}

func main() {
	// Part 1: a concrete execution for z = 1 (Figure 1's snippet).
	sys1, err := paramra.Parse(system(1))
	if err != nil {
		log.Fatal(err)
	}
	inst, err := paramra.VerifyInstance(context.Background(), sys1, 1, paramra.Options{MaxStates: 200_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 1: concrete RA execution (1 producer, 1 consumer) ===")
	fmt.Print(inst.Witness)

	// Part 2: the parameterized sweep (Figure 3): the consumer's loop bound
	// grows, the verifier still decides, and the needed env threads grow.
	fmt.Println("\n=== Figure 3: parameterized verification as the loop bound grows ===")
	for z := 1; z <= 5; z++ {
		sys, err := paramra.Parse(system(z))
		if err != nil {
			log.Fatal(err)
		}
		res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("z=%d: unsafe=%v macro-states=%d env-msgs=%d cost-bound=%d\n",
			z, res.Unsafe, res.Stats.MacroStates, res.Stats.EnvMsgs, res.EnvThreadBound)
	}

	// Part 3: the dependency graph for z = 3 (Figure 5's shape).
	sys3, err := paramra.Parse(system(3))
	if err != nil {
		log.Fatal(err)
	}
	res, err := paramra.Verify(context.Background(), sys3, paramra.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Figure 5: dependency graph of the violation (z = 3) ===")
	fmt.Print(res.Graph.String())
}
