// Mutual exclusion under release-acquire: Peterson and Dekker are broken
// without fences (their store-buffering core is observable under RA), CAS
// spinlocks are correct, and Dekker regains safety with RMW pseudo-fences.
// The example verifies all four from the built-in benchmark corpus and
// prints a concrete interleaving witness for the broken Peterson.
package main

import (
	"context"
	"fmt"
	"log"

	"paramra"
	"paramra/internal/bench"
)

func main() {
	for _, name := range []string{"peterson-ra", "dekker-ra", "dekker-fences", "spinlock-cas"} {
		e, ok := bench.ByName(name)
		if !ok {
			log.Fatalf("corpus entry %s missing", name)
		}
		sys, err := paramra.Parse(e.Src)
		if err != nil {
			log.Fatal(err)
		}
		res, err := paramra.Verify(context.Background(), sys, paramra.Options{})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "mutual exclusion HOLDS"
		if res.Unsafe {
			verdict = "mutual exclusion VIOLATED"
		}
		fmt.Printf("%-16s %-50s %s\n", name, e.Class, verdict)
	}

	// Show the violating interleaving for Peterson concretely.
	e, _ := bench.ByName("peterson-ra")
	sys, err := paramra.Parse(e.Src)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := paramra.VerifyInstance(context.Background(), sys, 0, paramra.Options{MaxStates: 2_000_000})
	if err != nil {
		log.Fatal(err)
	}
	if !inst.Unsafe {
		log.Fatal("expected a concrete Peterson violation")
	}
	fmt.Println("\nPeterson without fences — a violating RA interleaving:")
	fmt.Print(inst.Witness)
	fmt.Println("\n(the two threads read each other's flags as 0: the store-buffering")
	fmt.Println("weak behaviour that release-acquire permits)")
}
