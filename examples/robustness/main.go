// Robustness analysis: the paper's §1 benchmarks come from the robustness
// literature (Lahav & Margalit, PLDI 2019) — a program is robust when its
// release-acquire behaviours coincide with its sequentially-consistent
// behaviours. This example explores the same instances under both semantics
// and classifies each benchmark; the famous broken-under-RA mutexes are
// exactly the non-robust ones.
package main

import (
	"fmt"
	"log"

	"paramra/internal/bench"
	"paramra/internal/ra"
	"paramra/internal/sc"
)

func main() {
	names := []string{
		"mp-litmus", "sb-litmus", "lb-litmus", "iriw",
		"peterson-ra", "dekker-ra", "dekker-fences", "spinlock-cas",
	}
	fmt.Printf("%-16s %-8s %-8s %s\n", "benchmark", "SC", "RA", "classification")
	for _, name := range names {
		e, ok := bench.ByName(name)
		if !ok {
			log.Fatalf("corpus entry %s missing", name)
		}
		n := e.MinEnv
		if n < 0 {
			n = 1
		}
		sys := e.System()
		rob, err := sc.CompareRobustness(sys, n, ra.Limits{MaxStates: 2_000_000})
		if err != nil {
			log.Fatal(err)
		}
		class := "robust here (same verdict)"
		if rob.WeakBehaviour() {
			class = "NON-ROBUST: weak behaviour only under RA"
		}
		fmt.Printf("%-16s %-8s %-8s %s\n", name, verdict(rob.SCUnsafe), verdict(rob.RAUnsafe), class)
	}
	fmt.Println("\nUnder sequential consistency the mutexes are correct; under")
	fmt.Println("release-acquire their store-buffering core lets both threads into")
	fmt.Println("the critical section. Fences (or CAS locks) restore robustness.")
}

func verdict(unsafe bool) string {
	if unsafe {
		return "UNSAFE"
	}
	return "safe"
}
