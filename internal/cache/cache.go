package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"paramra/internal/lang"
	"paramra/internal/obs"
)

// Verdict is the cacheable core of a verification result: everything a
// repeat request needs, and nothing tied to the run that produced it (no
// stats, no dependency graph). Witness steps and the class refer to the
// canonical form of the system, so hits and misses render identically.
type Verdict struct {
	Unsafe         bool             `json:"unsafe"`
	Complete       bool             `json:"complete"`
	Class          lang.SystemClass `json:"class"`
	Underapprox    bool             `json:"underapprox,omitempty"`
	EnvThreadBound int64            `json:"envThreadBound"`
	Witness        []string         `json:"witness,omitempty"`
	DecidedBy      string           `json:"decidedBy,omitempty"`
	PrepassReason  string           `json:"prepassReason,omitempty"`
}

// Outcome says how Do satisfied a request.
type Outcome uint8

const (
	// Miss: this caller ran its own compute.
	Miss Outcome = iota
	// Hit: served from the in-memory store (or read through from disk).
	Hit
	// Shared: another in-flight caller computed the verdict and this
	// caller received it without computing (single-flight).
	Shared
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return "miss"
	}
}

// Options configures New.
type Options struct {
	// MaxEntries caps the in-memory LRU (default 4096).
	MaxEntries int
	// MemoEntries caps the sub-problem memo table (default 64).
	MemoEntries int
	// Dir, when non-empty, enables the persistent on-disk layer: every
	// stored verdict is also written as a checksummed JSON file under Dir,
	// and in-memory misses read through it. Corrupt or truncated files are
	// detected, counted, removed, and treated as misses.
	Dir string
	// DiskMaxBytes caps the total size of the persistent layer. When a
	// store pushes the total over the cap, the least-recently-used entries
	// (file mtime, bumped on read-through) are removed until it fits. 0
	// selects the 256 MiB default; a negative value removes the bound.
	DiskMaxBytes int64
	// Metrics, when non-nil, registers paramra_cache_* counters.
	Metrics *obs.Registry
}

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Shared        int64
	Stores        int64
	Evictions     int64
	DiskHits      int64
	DiskCorrupt   int64
	DiskEvictions int64
	MemoHits      int64
	MemoMisses    int64
	Entries       int
}

// Cache is a content-addressed verdict cache: an LRU in-memory store with
// single-flight computation, an optional checksummed disk layer, and a
// small memo table for sub-problem results. All methods are safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*flight
	disk    *diskStore
	memo    *memoTable

	hits, misses, shared, stores, evictions atomic.Int64
	diskHits, diskCorrupt, diskEvictions    atomic.Int64
	memoHits, memoMisses                    atomic.Int64

	mHits, mMisses, mShared, mStores, mEvict *obs.Counter
	mDiskHits, mDiskCorrupt, mDiskEvict      *obs.Counter
	mEntries                                 *obs.Gauge
}

type lruEntry struct {
	key string
	v   Verdict
}

// flight is one in-progress computation. done is closed when the leader
// finishes; ok reports whether v carries a storable verdict.
type flight struct {
	done chan struct{}
	v    Verdict
	ok   bool
}

// New builds a cache. A nil *Cache is a valid "caching disabled" value for
// Options.Cache in paramra; New never returns nil.
func New(o Options) *Cache {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 4096
	}
	if o.MemoEntries <= 0 {
		o.MemoEntries = 64
	}
	c := &Cache{
		max:     o.MaxEntries,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
		memo:    newMemoTable(o.MemoEntries),
	}
	if o.Dir != "" {
		c.disk = newDiskStore(o.Dir, o.DiskMaxBytes)
	}
	if m := o.Metrics; m != nil {
		c.mHits = m.Counter("paramra_cache_hits_total", "verdict-cache hits (memory or disk)")
		c.mMisses = m.Counter("paramra_cache_misses_total", "verdict-cache misses that ran a verification")
		c.mShared = m.Counter("paramra_cache_shared_total", "verdict-cache requests served by a concurrent in-flight computation")
		c.mStores = m.Counter("paramra_cache_stores_total", "verdicts stored into the cache")
		c.mEvict = m.Counter("paramra_cache_evictions_total", "verdicts evicted from the in-memory LRU")
		c.mDiskHits = m.Counter("paramra_cache_disk_hits_total", "verdict-cache hits read through from the persistent layer")
		c.mDiskCorrupt = m.Counter("paramra_cache_disk_corrupt_total", "persistent-cache entries rejected by checksum or decode failure")
		c.mDiskEvict = m.Counter("paramra_cache_disk_evictions_total", "persistent-cache entries removed by the size bound")
		c.mEntries = m.Gauge("paramra_cache_entries", "verdicts currently resident in the in-memory LRU")
	}
	return c
}

// Key combines the canonical system hash with the verdict-affecting options
// fingerprint into the final cache key.
func Key(canonicalHash, optionsFingerprint string) string {
	sum := sha256.Sum256([]byte(canonicalHash + "\x00" + optionsFingerprint))
	return hex.EncodeToString(sum[:])
}

// Do returns the verdict for key, computing it at most once across
// concurrent callers. compute reports (verdict, storable, err); the verdict
// is cached only when storable is true and err is nil. Waiters whose
// leader's computation turns out unstorable (error, incomplete) fall back
// to their own compute rather than caching a bad result or failing
// spuriously. A caller whose ctx ends while waiting gets ctx.Err() without
// computing.
func (c *Cache) Do(ctx context.Context, key string, compute func() (Verdict, bool, error)) (Verdict, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*lruEntry).v
		c.mu.Unlock()
		c.countHit()
		return v, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return Verdict{}, Miss, ctx.Err()
		case <-f.done:
		}
		if f.ok {
			c.shared.Add(1)
			inc(c.mShared)
			return f.v, Shared, nil
		}
		// The leader failed or produced an unstorable verdict; compute
		// independently (correctness over dedup — the leader's error may
		// have been its own budget, not a property of the system).
		return c.computeAndStore(key, nil, compute)
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	if c.disk != nil {
		if v, ok, corrupt := c.disk.get(key); corrupt {
			c.diskCorrupt.Add(1)
			inc(c.mDiskCorrupt)
		} else if ok {
			c.diskHits.Add(1)
			c.hits.Add(1)
			inc(c.mDiskHits)
			inc(c.mHits)
			c.putMemory(key, v)
			f.v, f.ok = v, true
			c.endFlight(key, f)
			return v, Hit, nil
		}
	}
	return c.computeAndStore(key, f, compute)
}

// computeAndStore runs compute, stores a storable verdict, and (when f is
// non-nil) resolves the flight so waiters wake even if compute panics.
func (c *Cache) computeAndStore(key string, f *flight, compute func() (Verdict, bool, error)) (v Verdict, _ Outcome, err error) {
	c.misses.Add(1)
	inc(c.mMisses)
	if f != nil {
		defer func() { c.endFlight(key, f) }()
	}
	var storable bool
	v, storable, err = compute()
	if err == nil && storable {
		c.Put(key, v)
		if f != nil {
			f.v, f.ok = v, true
		}
	}
	return v, Miss, err
}

func (c *Cache) endFlight(key string, f *flight) {
	c.mu.Lock()
	if c.flights[key] == f {
		delete(c.flights, key)
	}
	c.mu.Unlock()
	close(f.done)
}

// Get looks key up in memory, then on disk, without computing. It does not
// touch the hit/miss counters (it exists for tests and introspection).
func (c *Cache) Get(key string) (Verdict, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*lruEntry).v
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()
	if c.disk != nil {
		if v, ok, corrupt := c.disk.get(key); corrupt {
			c.diskCorrupt.Add(1)
			inc(c.mDiskCorrupt)
		} else if ok {
			c.putMemory(key, v)
			return v, true
		}
	}
	return Verdict{}, false
}

// Put stores a verdict under key in memory and, when configured, on disk.
func (c *Cache) Put(key string, v Verdict) {
	c.stores.Add(1)
	inc(c.mStores)
	c.putMemory(key, v)
	if c.disk != nil {
		if n := c.disk.put(key, v); n > 0 {
			c.diskEvictions.Add(int64(n))
			if c.mDiskEvict != nil {
				c.mDiskEvict.Add(int64(n))
			}
		}
	}
}

func (c *Cache) putMemory(key string, v Verdict) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).v = v
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, v: v})
		for c.ll.Len() > c.max {
			back := c.ll.Back()
			c.ll.Remove(back)
			delete(c.items, back.Value.(*lruEntry).key)
			c.evictions.Add(1)
			inc(c.mEvict)
		}
	}
	if c.mEntries != nil {
		c.mEntries.Set(int64(len(c.items)))
	}
	c.mu.Unlock()
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats snapshots the counters. Safe on a nil cache (all zeros).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Shared:        c.shared.Load(),
		Stores:        c.stores.Load(),
		Evictions:     c.evictions.Load(),
		DiskHits:      c.diskHits.Load(),
		DiskCorrupt:   c.diskCorrupt.Load(),
		DiskEvictions: c.diskEvictions.Load(),
		MemoHits:      c.memoHits.Load(),
		MemoMisses:    c.memoMisses.Load(),
		Entries:       c.Len(),
	}
}

func (c *Cache) countHit() {
	c.hits.Add(1)
	inc(c.mHits)
}

func inc(ctr *obs.Counter) {
	if ctr != nil {
		ctr.Inc()
	}
}
