package cache

import (
	"math/rand"

	"paramra/internal/lang"
)

// parserKeywords are identifier texts the lang parser matches contextually
// (plus the expression literals). Generated names must avoid them so a
// renamed system survives lang.Print → ParseSystem round trips.
var parserKeywords = map[string]bool{
	"system": true, "thread": true, "vars": true, "domain": true,
	"init": true, "env": true, "dis": true, "regs": true,
	"skip": true, "assume": true, "assert": true, "false": true,
	"true": true, "store": true, "load": true, "cas": true,
	"if": true, "else": true, "while": true, "loop": true,
	"choice": true, "or": true, "not": true,
}

type nameGen struct {
	rng  *rand.Rand
	used map[string]bool
}

func (g *nameGen) next() string {
	const first = "abcdefghijklmnopqrstuvwxyz"
	const rest = first + "0123456789_"
	for {
		n := 3 + g.rng.Intn(6)
		b := make([]byte, n)
		b[0] = first[g.rng.Intn(len(first))]
		for i := 1; i < n; i++ {
			b[i] = rest[g.rng.Intn(len(rest))]
		}
		s := string(b)
		if !parserKeywords[s] && !g.used[s] {
			g.used[s] = true
			return s
		}
	}
}

// Rename returns a semantics-preserving isomorphic copy of sys: fresh
// random names for every shared variable, register, and thread, a random
// permutation of the shared-variable table, per-thread random permutations
// of the register tables, and a random permutation of the dis thread order.
// The system name is preserved (it identifies the request, not the
// structure). The output is deterministic in seed, passes Validate, and
// survives lang.Print → lang.ParseSystem.
//
// Rename exists for the cache's own test oracles (metamorphic suite, fuzz
// cache-consistency backend, soak renamed-duplicate traffic): by
// construction Canonicalize must map the result to the same hash as sys.
func Rename(sys *lang.System, seed int64) *lang.System {
	rng := rand.New(rand.NewSource(seed))
	ng := &nameGen{rng: rng, used: make(map[string]bool)}

	nv := len(sys.Vars)
	varMap := make([]lang.VarID, nv)
	for newPos, oldIdx := range rng.Perm(nv) {
		varMap[oldIdx] = lang.VarID(newPos)
	}
	vars := make([]string, nv)
	for old := 0; old < nv; old++ {
		vars[varMap[old]] = ng.next()
	}

	out := &lang.System{
		Name: sys.Name,
		Vars: vars,
		Dom:  sys.Dom,
		Init: sys.Init,
	}

	// The same *Program may legally appear more than once in the thread
	// list; clone it once so duplicates stay duplicates (Validate requires
	// distinct names only for distinct programs).
	cloned := make(map[*lang.Program]*lang.Program)
	clone := func(p *lang.Program) *lang.Program {
		if c, ok := cloned[p]; ok {
			return c
		}
		nr := len(p.Regs)
		regMap := make([]lang.RegID, nr)
		for newPos, oldIdx := range rng.Perm(nr) {
			regMap[oldIdx] = lang.RegID(newPos)
		}
		regs := make([]string, nr)
		for old := 0; old < nr; old++ {
			regs[regMap[old]] = ng.next()
		}
		c := &lang.Program{
			Name: ng.next(),
			Regs: regs,
			Body: remapStmt(p.Body, regMap, varMap),
		}
		cloned[p] = c
		return c
	}

	if sys.Env != nil {
		out.Env = clone(sys.Env)
	}
	out.Dis = make([]*lang.Program, len(sys.Dis))
	for i, j := range rng.Perm(len(sys.Dis)) {
		out.Dis[i] = clone(sys.Dis[j])
	}
	return out
}
