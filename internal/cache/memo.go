package cache

import "container/list"

// memoTable is a small LRU for sub-problem results (dis-run skeleton
// enumerations, Datalog strata) shared across instances of the same program
// family. Values are opaque to the cache; callers own their immutability —
// a memoized value may be read concurrently by many verifications.
type memoTable struct {
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type memoEntry struct {
	key string
	v   any
}

func newMemoTable(max int) *memoTable {
	return &memoTable{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// MemoGet returns the memoized sub-problem result for key, if present.
func (c *Cache) MemoGet(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.memo.items[key]; ok {
		c.memo.ll.MoveToFront(el)
		v := el.Value.(*memoEntry).v
		c.mu.Unlock()
		c.memoHits.Add(1)
		return v, true
	}
	c.mu.Unlock()
	c.memoMisses.Add(1)
	return nil, false
}

// MemoPut memoizes a sub-problem result under key. The value must not be
// mutated after the call.
func (c *Cache) MemoPut(key string, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.memo
	if el, ok := m.items[key]; ok {
		el.Value.(*memoEntry).v = v
		m.ll.MoveToFront(el)
		return
	}
	m.items[key] = m.ll.PushFront(&memoEntry{key: key, v: v})
	for m.ll.Len() > m.max {
		back := m.ll.Back()
		m.ll.Remove(back)
		delete(m.items, back.Value.(*memoEntry).key)
	}
}
