package cache_test

// Shared-cache concurrency and Verify-pipeline tests: N goroutines pushing
// renamed variants of one system through a single cache must trigger exactly
// one underlying verification (single-flight), leak no goroutines, and all
// observe the same verdict. The pipeline tests pin the CacheHit contract
// (zero Stats, no Graph on hits), the goal-variable fingerprint, the
// unknown-goal bypass, and the dis-run skeleton memo.

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"paramra"
	"paramra/internal/bench"
	"paramra/internal/cache"
	"paramra/internal/lang"
)

// completeEntry returns the first corpus entry whose cold verify under
// metaOptions completes without error — the precondition for its verdict to
// be storable, which every test here relies on.
func completeEntry(t *testing.T) (*lang.System, paramra.Result) {
	t.Helper()
	for _, e := range bench.Corpus() {
		sys := e.System()
		res, err := paramra.Verify(context.Background(), sys, metaOptions(nil))
		if err == nil && res.Complete {
			return sys, res
		}
	}
	t.Fatal("no corpus entry completes under the test options")
	return nil, paramra.Result{}
}

// TestSharedCacheConcurrentVerify: 16 goroutines verify 16 differently
// renamed variants of one system through one shared cache. Single-flight
// guarantees exactly one miss; every other caller is a hit or a shared
// waiter; all agree on the verdict. Run under -race this also exercises the
// cache's locking end to end through the paramra entry point.
func TestSharedCacheConcurrentVerify(t *testing.T) {
	sys, _ := completeEntry(t)
	const n = 16
	before := runtime.NumGoroutine()

	c := paramra.NewCache(paramra.CacheOptions{})
	opts := metaOptions(c)
	results := make([]paramra.Result, n)
	errs := make([]error, n)

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			variant := sys
			if i > 0 {
				variant = cache.Rename(sys, int64(i))
			}
			start.Wait()
			results[i], errs[i] = paramra.Verify(context.Background(), variant, opts)
		}(i)
	}
	start.Done()
	done.Wait()

	hits := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i].CacheHit {
			hits++
		}
		if results[i].Unsafe != results[0].Unsafe || results[i].Complete != results[0].Complete ||
			results[i].Class.String() != results[0].Class.String() ||
			results[i].EnvThreadBound != results[0].EnvThreadBound {
			t.Errorf("goroutine %d disagrees: %+v vs %+v", i, results[i], results[0])
		}
	}
	if hits != n-1 {
		t.Errorf("CacheHit count = %d, want %d (exactly one computing leader)", hits, n-1)
	}

	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("Misses = %d, want 1 (single-flight)", s.Misses)
	}
	if s.Hits+s.Shared != n-1 {
		t.Errorf("Hits+Shared = %d+%d, want %d", s.Hits, s.Shared, n-1)
	}
	if s.Stores != 1 {
		t.Errorf("Stores = %d, want 1", s.Stores)
	}

	// No goroutine leaks: everything Verify spawned must wind down.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+2 {
		t.Errorf("goroutine leak: %d before, %d after", before, got)
	}
}

// TestVerifyCacheHitContract: a hit is marked CacheHit, carries zero engine
// stats and no graph, and agrees with the miss on every verdict field.
func TestVerifyCacheHitContract(t *testing.T) {
	sys, _ := completeEntry(t)
	c := paramra.NewCache(paramra.CacheOptions{})
	opts := metaOptions(c)
	ctx := context.Background()

	cold, err := paramra.Verify(ctx, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("cold verify reported CacheHit")
	}
	warm, err := paramra.Verify(ctx, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("identical resubmission missed the cache")
	}
	if warm.Stats != (paramra.Stats{}) {
		t.Errorf("hit carries engine stats: %+v", warm.Stats)
	}
	if warm.Graph != nil {
		t.Error("hit carries a dependency graph")
	}
	if warm.Unsafe != cold.Unsafe || warm.Complete != cold.Complete ||
		warm.Class.String() != cold.Class.String() ||
		warm.EnvThreadBound != cold.EnvThreadBound ||
		warm.DecidedBy != cold.DecidedBy {
		t.Errorf("hit disagrees with miss:\ncold: %+v\nwarm: %+v", cold, warm)
	}
}

// TestVerifyGoalInFingerprint: the goal variable and value are part of the
// cache key — same goal hits, a different goal value misses.
func TestVerifyGoalInFingerprint(t *testing.T) {
	sys, _ := completeEntry(t)
	goalVar := sys.Vars[0]
	c := paramra.NewCache(paramra.CacheOptions{})
	ctx := context.Background()

	opts := metaOptions(c)
	opts.Goal = &paramra.Goal{Var: goalVar, Val: 1}
	cold, err := paramra.Verify(ctx, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Complete {
		t.Skipf("goal verify incomplete; nothing cacheable")
	}
	warm, err := paramra.Verify(ctx, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("same goal missed the cache")
	}

	opts.Goal = &paramra.Goal{Var: goalVar, Val: 0}
	other, err := paramra.Verify(ctx, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHit {
		t.Error("different goal value hit the cache")
	}
}

// TestVerifyUnknownGoalBypassesCache: an unknown goal variable takes the
// uncached path — the usual error surfaces and the cache records nothing.
func TestVerifyUnknownGoalBypassesCache(t *testing.T) {
	sys, _ := completeEntry(t)
	c := paramra.NewCache(paramra.CacheOptions{})
	opts := metaOptions(c)
	opts.Goal = &paramra.Goal{Var: "no_such_var", Val: 1}

	_, err := paramra.Verify(context.Background(), sys, opts)
	if err == nil {
		t.Fatal("unknown goal variable did not error")
	}
	s := c.Stats()
	if s.Misses != 0 || s.Hits != 0 || s.Entries != 0 {
		t.Errorf("unknown-goal verify touched the cache: %+v", s)
	}
}

// TestSkeletonMemo: two Datalog verifies that differ only in an option
// outside the memo key (MaxMacroStates) share the dis-run skeleton
// enumeration — the second is a verdict-cache miss but a memo hit.
func TestSkeletonMemo(t *testing.T) {
	sys, _ := completeEntry(t)
	c := paramra.NewCache(paramra.CacheOptions{})
	opts := paramra.Options{
		Datalog:     true,
		UnrollDis:   2,
		Parallelism: 1,
		Cache:       c,
	}
	ctx := context.Background()

	opts.MaxMacroStates = 100_000
	first, err := paramra.Verify(ctx, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.MaxMacroStates = 200_000
	second, err := paramra.Verify(ctx, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHit {
		t.Fatal("changed MaxMacroStates still hit the verdict cache — fingerprint is missing it")
	}
	s := c.Stats()
	if s.MemoHits < 1 {
		t.Errorf("MemoHits = %d, want ≥ 1 (skeleton enumeration not shared)", s.MemoHits)
	}
	if first.Unsafe != second.Unsafe || first.Complete != second.Complete {
		t.Errorf("memo-sharing runs disagree:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
