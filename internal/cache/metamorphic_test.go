package cache_test

// Metamorphic cache-consistency suite: for every corpus entry, seeded
// renamings of threads/registers/variables plus permutations of the var
// table, register tables, and dis order must (a) produce the identical
// canonical hash, (b) hit the verdict cache populated by the original, and
// (c) yield a byte-identical serve.VerdictCore. The negative direction —
// one-token semantic changes must change the hash — is pinned in
// canonical_test.go.

import (
	"bytes"
	"context"
	"testing"

	"paramra"
	"paramra/internal/bench"
	"paramra/internal/cache"
	"paramra/internal/lang"
	"paramra/internal/serve"
)

// metaOptions mirrors a default-configured server: prepass on, bounded
// unrolling, deterministic single-worker runs.
func metaOptions(c *paramra.Cache) paramra.Options {
	return paramra.Options{
		Prepass:     true,
		UnrollDis:   2,
		Parallelism: 1,
		Cache:       c,
	}
}

func coreBytes(sys *lang.System, res paramra.Result) []byte {
	return serve.VerifyResponse{
		System:  sys.Name,
		Verdict: serve.Verdict(res),
		Result:  serve.FromResult(res),
	}.CoreBytes()
}

// TestMetamorphicCorpus runs the full corpus. Renamed variants are checked
// for hash equality on every seed, and for cache hits plus byte-identical
// verdict cores through a shared cache.
func TestMetamorphicCorpus(t *testing.T) {
	ctx := context.Background()
	for _, e := range bench.Corpus() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			sys := e.System()
			wantHash := cache.Canonicalize(sys).Hash

			c := paramra.NewCache(paramra.CacheOptions{})
			opts := metaOptions(c)
			cold, err := paramra.Verify(ctx, sys, opts)
			if err != nil {
				t.Fatalf("cold verify: %v", err)
			}
			if cold.CacheHit {
				t.Fatal("cold verify reported CacheHit")
			}
			coldCore := coreBytes(sys, cold)

			for seed := int64(1); seed <= 3; seed++ {
				ren := cache.Rename(sys, seed)
				if got := cache.Canonicalize(ren).Hash; got != wantHash {
					t.Fatalf("seed %d: canonical hash changed under renaming:\n  %s\n  %s", seed, got, wantHash)
				}
				if !cold.Complete {
					// An incomplete cold verdict is never stored; nothing
					// to assert about hits.
					continue
				}
				warm, err := paramra.Verify(ctx, ren, opts)
				if err != nil {
					t.Fatalf("seed %d: renamed verify: %v", seed, err)
				}
				if !warm.CacheHit {
					t.Errorf("seed %d: renamed variant missed the cache", seed)
				}
				if warmCore := coreBytes(ren, warm); !bytes.Equal(warmCore, coldCore) {
					t.Errorf("seed %d: verdict core differs between miss and renamed hit:\n  cold: %s\n  warm: %s",
						seed, coldCore, warmCore)
				}
			}

			// The unmodified system itself must of course hit too.
			if cold.Complete {
				warm, err := paramra.Verify(ctx, sys, opts)
				if err != nil {
					t.Fatalf("warm verify: %v", err)
				}
				if !warm.CacheHit {
					t.Error("identical resubmission missed the cache")
				}
				if warmCore := coreBytes(sys, warm); !bytes.Equal(warmCore, coldCore) {
					t.Errorf("verdict core differs between miss and hit:\n  cold: %s\n  warm: %s", coldCore, warmCore)
				}
			}
		})
	}
}

// TestMetamorphicPrintParse: renamed variants survive printing and
// reparsing with the hash intact — the form they take over the wire.
func TestMetamorphicPrintParse(t *testing.T) {
	for _, e := range bench.Corpus() {
		sys := e.System()
		want := cache.Canonicalize(sys).Hash
		for seed := int64(1); seed <= 3; seed++ {
			ren := cache.Rename(sys, seed)
			back, err := lang.ParseSystem(lang.Print(ren))
			if err != nil {
				t.Fatalf("%s seed %d: renamed system does not reparse: %v", e.Name, seed, err)
			}
			if got := cache.Canonicalize(back).Hash; got != want {
				t.Errorf("%s seed %d: hash changed across print/parse", e.Name, seed)
			}
		}
	}
}

// isomorphicPairs lists corpus entries that genuinely are the same system
// modulo renaming. sb-litmus and Dekker's core collapse to the identical
// shape: store own flag, load the other, assume 0, publish, with the second
// thread asserting on the published value (x→f0, y→f1, a→cs0).
var isomorphicPairs = map[[2]string]bool{
	{"sb-litmus", "dekker-ra"}: true,
}

// TestMetamorphicCorpusHashesDistinct: distinct corpus entries must land on
// distinct canonical hashes unless they are known isomorphic duplicates —
// and any pair sharing a hash must agree on the expected verdict, which is
// what hash soundness promises.
func TestMetamorphicCorpusHashesDistinct(t *testing.T) {
	want := make(map[string]bench.Verdict)
	seen := make(map[string]string)
	for _, e := range bench.Corpus() {
		want[e.Name] = e.Want
		h := cache.Canonicalize(e.System()).Hash
		prev, ok := seen[h]
		if !ok {
			seen[h] = e.Name
			continue
		}
		if want[prev] != e.Want {
			t.Errorf("corpus entries %s (want %v) and %s (want %v) share a canonical hash but disagree on the verdict — canonicalizer collision",
				prev, want[prev], e.Name, e.Want)
			continue
		}
		if !isomorphicPairs[[2]string{prev, e.Name}] && !isomorphicPairs[[2]string{e.Name, prev}] {
			t.Errorf("corpus entries %s and %s share a canonical hash; if they are isomorphic, record the pair in isomorphicPairs",
				prev, e.Name)
		}
	}
}
