// Package cache implements the content-addressed verdict cache: a
// canonical-form hasher for lang.System that is invariant under renaming of
// threads, registers, and shared variables and under permutation of the dis
// thread list; an LRU in-memory verdict store with single-flight computation
// and an optional checksummed on-disk layer; and a small memo table for
// sub-problem results (dis-run skeletons, Datalog strata) shared across
// instances of the same program family.
//
// The soundness argument is spelled out in DESIGN.md. In short: the cache
// key is the SHA-256 of a full structural encoding of the canonical form,
// so two systems collide only when their canonical forms are byte-identical
// — i.e. when they are literally the same system up to names and dis order,
// which cannot change any verdict. Imperfect canonicalization (e.g. a
// Weisfeiler–Lehman color collision between genuinely different variables)
// only yields different encodings and therefore cache misses, never wrong
// hits.
package cache

import (
	"encoding/binary"

	"paramra/internal/lang"
)

// Structural encoding tags. Statement and expression tags share one byte
// space; the encoding is prefix-free because every node's arity is fixed by
// its tag (or written explicitly for Seq/Choice).
const (
	tagSkip byte = iota + 1
	tagAssume
	tagAssertFail
	tagAssign
	tagSeq
	tagChoice
	tagStar
	tagWhile
	tagLoad
	tagStore
	tagCAS
	tagConst
	tagReg
	tagUn
	tagBin
)

// penc serializes one program body. Registers are canonicalized by first
// use in traversal order (so register names and declaration order never
// matter); each shared-variable occurrence is encoded via varCode, which
// during refinement returns the variable's current color and in the final
// pass returns (and assigns) the global canonical index.
type penc struct {
	buf     []byte
	regs    map[lang.RegID]int
	varCode func(lang.VarID) uint64
	occ     map[lang.VarID][]int
	nocc    int
}

func newPenc(varCode func(lang.VarID) uint64) *penc {
	return &penc{
		regs:    make(map[lang.RegID]int),
		varCode: varCode,
		occ:     make(map[lang.VarID][]int),
	}
}

func (e *penc) tag(t byte) { e.buf = append(e.buf, t) }

func (e *penc) u64(x uint64) { e.buf = binary.AppendUvarint(e.buf, x) }

func (e *penc) i64(x int64) { e.buf = binary.AppendVarint(e.buf, x) }

func (e *penc) reg(r lang.RegID) {
	i, ok := e.regs[r]
	if !ok {
		i = len(e.regs)
		e.regs[r] = i
	}
	e.u64(uint64(i))
}

func (e *penc) shared(v lang.VarID) {
	e.occ[v] = append(e.occ[v], e.nocc)
	e.nocc++
	e.u64(e.varCode(v))
}

func (e *penc) program(p *lang.Program, role byte) {
	e.buf = append(e.buf, role)
	e.u64(uint64(len(p.Regs)))
	e.stmt(p.Body)
}

func (e *penc) stmt(st lang.Stmt) {
	switch st := st.(type) {
	case lang.Skip:
		e.tag(tagSkip)
	case lang.Assume:
		e.tag(tagAssume)
		e.expr(st.Cond)
	case lang.AssertFail:
		e.tag(tagAssertFail)
	case lang.Assign:
		e.tag(tagAssign)
		e.reg(st.Reg)
		e.expr(st.E)
	case lang.Seq:
		e.tag(tagSeq)
		e.u64(uint64(len(st.Stmts)))
		for _, s := range st.Stmts {
			e.stmt(s)
		}
	case lang.Choice:
		e.tag(tagChoice)
		e.u64(uint64(len(st.Branches)))
		for _, b := range st.Branches {
			e.stmt(b)
		}
	case lang.Star:
		e.tag(tagStar)
		e.stmt(st.Body)
	case lang.While:
		e.tag(tagWhile)
		e.expr(st.Cond)
		e.stmt(st.Body)
	case lang.Load:
		e.tag(tagLoad)
		e.reg(st.Reg)
		e.shared(st.Var)
	case lang.Store:
		e.tag(tagStore)
		e.shared(st.Var)
		e.expr(st.E)
	case lang.CAS:
		e.tag(tagCAS)
		e.shared(st.Var)
		e.expr(st.Expect)
		e.expr(st.New)
	}
}

func (e *penc) expr(x lang.Expr) {
	switch x := x.(type) {
	case lang.ConstExpr:
		e.tag(tagConst)
		e.i64(int64(x.V))
	case lang.RegExpr:
		e.tag(tagReg)
		e.reg(x.Reg)
	case lang.UnExpr:
		e.tag(tagUn)
		e.tag(byte(x.Op))
		e.expr(x.E)
	case lang.BinExpr:
		e.tag(tagBin)
		e.tag(byte(x.Op))
		e.expr(x.L)
		e.expr(x.R)
	}
}

// remapExpr rebuilds e with register IDs mapped through regMap (identity
// when regMap is nil).
func remapExpr(e lang.Expr, regMap []lang.RegID) lang.Expr {
	switch e := e.(type) {
	case lang.ConstExpr:
		return e
	case lang.RegExpr:
		if regMap == nil {
			return e
		}
		return lang.RegExpr{Reg: regMap[e.Reg]}
	case lang.UnExpr:
		return lang.UnExpr{Op: e.Op, E: remapExpr(e.E, regMap)}
	case lang.BinExpr:
		return lang.BinExpr{Op: e.Op, L: remapExpr(e.L, regMap), R: remapExpr(e.R, regMap)}
	default:
		return e
	}
}

// remapStmt rebuilds st with register and shared-variable IDs mapped through
// regMap and varMap (each may be nil for identity). Source positions are
// preserved so renamed systems keep usable diagnostics.
func remapStmt(st lang.Stmt, regMap []lang.RegID, varMap []lang.VarID) lang.Stmt {
	mv := func(v lang.VarID) lang.VarID {
		if varMap == nil {
			return v
		}
		return varMap[v]
	}
	mr := func(r lang.RegID) lang.RegID {
		if regMap == nil {
			return r
		}
		return regMap[r]
	}
	switch st := st.(type) {
	case lang.Skip:
		return st
	case lang.Assume:
		return lang.Assume{Cond: remapExpr(st.Cond, regMap), Pos: st.Pos}
	case lang.AssertFail:
		return st
	case lang.Assign:
		return lang.Assign{Reg: mr(st.Reg), E: remapExpr(st.E, regMap), Pos: st.Pos}
	case lang.Seq:
		out := make([]lang.Stmt, len(st.Stmts))
		for i, s := range st.Stmts {
			out[i] = remapStmt(s, regMap, varMap)
		}
		return lang.Seq{Stmts: out, Pos: st.Pos}
	case lang.Choice:
		out := make([]lang.Stmt, len(st.Branches))
		for i, b := range st.Branches {
			out[i] = remapStmt(b, regMap, varMap)
		}
		return lang.Choice{Branches: out, Pos: st.Pos}
	case lang.Star:
		return lang.Star{Body: remapStmt(st.Body, regMap, varMap), Pos: st.Pos}
	case lang.While:
		return lang.While{Cond: remapExpr(st.Cond, regMap), Body: remapStmt(st.Body, regMap, varMap), Pos: st.Pos}
	case lang.Load:
		return lang.Load{Reg: mr(st.Reg), Var: mv(st.Var), Pos: st.Pos}
	case lang.Store:
		return lang.Store{Var: mv(st.Var), E: remapExpr(st.E, regMap), Pos: st.Pos}
	case lang.CAS:
		return lang.CAS{Var: mv(st.Var), Expect: remapExpr(st.Expect, regMap), New: remapExpr(st.New, regMap), Pos: st.Pos}
	default:
		return st
	}
}
