package cache

import (
	"testing"

	"paramra/internal/lang"
)

// Each test system below exercises a different symmetry: multiple threads
// of the same shape, shared registers across threads, loops, CAS, choice.
var testSystems = map[string]string{
	"mp": `system mp { vars flag data; domain 2; env producer; dis consumer }
thread producer { store data 1; store flag 1 }
thread consumer {
  regs a b
  a = load flag; assume a == 1
  b = load data
  if b == 0 { assert false } else { skip }
}`,
	"twins": `system twins { vars x y z; domain 3; env writerx; dis writery; dis reader }
thread writerx { loop { store x 1 } }
thread writery { loop { store y 1 } }
thread reader {
  regs a b
  a = load x
  b = load y
  assume a == 1 && b == 1
  assert false
}`,
	"cas-loop": `system caslock { vars lock owner; domain 2; env idle; dis worker; dis other }
thread idle { skip }
thread worker {
  regs got
  cas lock 0 1
  store owner 1
  got = load owner
  choice { assume got == 0; assert false } or { skip }
}
thread other { cas lock 0 1 }`,
}

func parse(t *testing.T, src string) *lang.System {
	t.Helper()
	sys, err := lang.ParseSystem(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sys
}

// TestCanonicalRenameInvariance: every seeded renaming (fresh names for
// vars/regs/threads, permuted var table, permuted register tables, permuted
// dis order) must canonicalize to the identical hash, and the renamed
// system must stay valid and survive a print→parse round trip.
func TestCanonicalRenameInvariance(t *testing.T) {
	for name, src := range testSystems {
		sys := parse(t, src)
		want := Canonicalize(sys).Hash
		for seed := int64(1); seed <= 20; seed++ {
			ren := Rename(sys, seed)
			if err := ren.Validate(); err != nil {
				t.Fatalf("%s seed %d: renamed system invalid: %v", name, seed, err)
			}
			if got := Canonicalize(ren).Hash; got != want {
				t.Errorf("%s seed %d: hash changed under renaming: %s vs %s", name, seed, got, want)
			}
			reparsed, err := lang.ParseSystem(lang.Print(ren))
			if err != nil {
				t.Fatalf("%s seed %d: renamed system does not reparse: %v\n%s", name, seed, err, lang.Print(ren))
			}
			if got := Canonicalize(reparsed).Hash; got != want {
				t.Errorf("%s seed %d: hash changed across print/parse: %s vs %s", name, seed, got, want)
			}
		}
	}
}

// TestCanonicalIdempotent: canonicalizing the canonical form is a fixpoint
// (same hash, valid system).
func TestCanonicalIdempotent(t *testing.T) {
	for name, src := range testSystems {
		c := Canonicalize(parse(t, src))
		if err := c.Sys.Validate(); err != nil {
			t.Fatalf("%s: canonical system invalid: %v", name, err)
		}
		if again := Canonicalize(c.Sys); again.Hash != c.Hash {
			t.Errorf("%s: canonicalization not idempotent: %s vs %s", name, again.Hash, c.Hash)
		}
	}
}

// TestCanonicalPreservesName: the system name identifies the request, not
// the structure — it survives reconstruction but never enters the hash.
func TestCanonicalPreservesName(t *testing.T) {
	sys := parse(t, testSystems["mp"])
	c1 := Canonicalize(sys)
	if c1.Sys.Name != "mp" {
		t.Errorf("canonical system dropped the name: %q", c1.Sys.Name)
	}
	sys.Name = "completely-different"
	if c2 := Canonicalize(sys); c2.Hash != c1.Hash {
		t.Error("system name leaked into the canonical hash")
	}
}

// TestCanonicalVarMap: the goal-variable translation must point at the slot
// actually used by the canonical system (a store of v maps to a store of
// VarMap[v]).
func TestCanonicalVarMap(t *testing.T) {
	sys := parse(t, testSystems["mp"])
	c := Canonicalize(sys)
	for _, orig := range sys.Vars {
		cname, ok := c.VarMap[orig]
		if !ok {
			t.Fatalf("VarMap missing %q", orig)
		}
		found := false
		for _, v := range c.Sys.Vars {
			if v == cname {
				found = true
			}
		}
		if !found {
			t.Errorf("VarMap[%q] = %q not in canonical var table %v", orig, cname, c.Sys.Vars)
		}
	}
}

// TestCanonicalNegatives: a single-token semantic change must change the
// hash — the cache must never conflate these.
func TestCanonicalNegatives(t *testing.T) {
	base := testSystems["mp"]
	mutants := map[string]func(*lang.System){
		"init-value":   func(s *lang.System) { s.Init = 1 },
		"domain":       func(s *lang.System) { s.Dom = 3 },
		"store-value":  nil, // handled textually below
		"drop-thread":  func(s *lang.System) { s.Dis = nil },
		"env-demotion": func(s *lang.System) { s.Dis = append(s.Dis, s.Env); s.Env = nil },
	}
	want := Canonicalize(parse(t, base)).Hash
	for name, mutate := range mutants {
		sys := parse(t, base)
		if mutate != nil {
			mutate(sys)
		} else {
			// store data 1 → store data 0: one constant token.
			sys = parse(t, `system mp { vars flag data; domain 2; env producer; dis consumer }
thread producer { store data 0; store flag 1 }
thread consumer {
  regs a b
  a = load flag; assume a == 1
  b = load data
  if b == 0 { assert false } else { skip }
}`)
		}
		if got := Canonicalize(sys).Hash; got == want {
			t.Errorf("%s: semantic mutation did not change the canonical hash", name)
		}
	}
	// Two structurally different variables swapped in ONE occurrence only:
	// consumer loads flag where it loaded data.
	swapped := parse(t, `system mp { vars flag data; domain 2; env producer; dis consumer }
thread producer { store data 1; store flag 1 }
thread consumer {
  regs a b
  a = load flag; assume a == 1
  b = load flag
  if b == 0 { assert false } else { skip }
}`)
	if got := Canonicalize(swapped).Hash; got == want {
		t.Error("variable swap in one occurrence did not change the canonical hash")
	}
}

// TestCanonicalDistinguishesAsymmetricTies: two dis threads whose bodies
// are structurally identical but touch different variables (one of which
// the env also touches) must order consistently regardless of input order —
// the WL refinement is what breaks the tie.
func TestCanonicalDistinguishesAsymmetricTies(t *testing.T) {
	a := parse(t, `system tie { vars x y; domain 2; env checker; dis wx; dis wy }
thread checker { regs a; a = load x; assume a == 1; assert false }
thread wx { store x 1 }
thread wy { store y 1 }`)
	b := parse(t, `system tie { vars x y; domain 2; env checker; dis wy; dis wx }
thread checker { regs a; a = load x; assume a == 1; assert false }
thread wx { store x 1 }
thread wy { store y 1 }`)
	ha, hb := Canonicalize(a).Hash, Canonicalize(b).Hash
	if ha != hb {
		t.Errorf("dis permutation of asymmetric tied threads changed the hash: %s vs %s", ha, hb)
	}
}

// TestRenameAvoidsKeywords: generated identifiers never collide with the
// parser's contextual keywords (that would break print→parse).
func TestRenameAvoidsKeywords(t *testing.T) {
	sys := parse(t, testSystems["twins"])
	for seed := int64(0); seed < 200; seed++ {
		ren := Rename(sys, seed)
		check := func(n string) {
			if parserKeywords[n] {
				t.Fatalf("seed %d: generated keyword identifier %q", seed, n)
			}
		}
		for _, v := range ren.Vars {
			check(v)
		}
		for _, p := range ren.Threads() {
			check(p.Name)
			for _, r := range p.Regs {
				check(r)
			}
		}
	}
}
