package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"

	"paramra/internal/lang"
)

// Canonical is the canonical form of a system: a reconstructed *lang.System
// with canonical names (shared variables v0..vN, registers r0..rM per
// thread, threads t0..tK with the env first), the hex SHA-256 of its full
// structural encoding, and the mapping from original shared-variable names
// to canonical ones (needed to translate goal options onto the canonical
// system).
type Canonical struct {
	Sys    *lang.System
	Hash   string
	VarMap map[string]string
}

// refineRounds is the number of Weisfeiler–Lehman refinement rounds used to
// color shared variables before ordering the dis threads. Three rounds
// separate every non-symmetric variable pair in practice; too few rounds
// only costs cache hits (distinct encodings), never correctness.
const refineRounds = 3

// Canonicalize computes the canonical form of sys. The result is invariant
// under renaming of threads, registers, and shared variables, under
// permutation of the shared-variable table, and under permutation of the
// dis thread list. The system name is preserved on the reconstructed system
// but excluded from the hash.
//
// The algorithm:
//  1. Color every shared variable by iterated WL refinement: each round
//     encodes every program structurally (registers by first use, variable
//     occurrences by current color), then recolors each variable from the
//     sorted multiset of (program signature, occurrence positions) pairs it
//     participates in.
//  2. Order the dis threads by their final structural signature (stable, so
//     signature ties — which are either genuinely symmetric or normalized
//     away by first-use variable numbering — keep input order).
//  3. Assign global canonical variable indices by first use over the env
//     followed by the ordered dis threads, then emit the final encoding and
//     rebuild the system with canonical names.
func Canonicalize(sys *lang.System) *Canonical {
	type prog struct {
		p    *lang.Program
		role byte
	}
	var progs []prog
	if sys.Env != nil {
		progs = append(progs, prog{sys.Env, 'E'})
	}
	for _, d := range sys.Dis {
		progs = append(progs, prog{d, 'D'})
	}

	nv := len(sys.Vars)
	colors := make([]uint64, nv)
	var sigs []uint64
	for round := 0; round < refineRounds; round++ {
		sigs = make([]uint64, len(progs))
		occs := make([]map[lang.VarID][]int, len(progs))
		for i, pr := range progs {
			e := newPenc(func(v lang.VarID) uint64 { return colors[v] })
			e.program(pr.p, pr.role)
			sigs[i] = fnvSum(e.buf)
			occs[i] = e.occ
		}
		next := make([]uint64, nv)
		for v := 0; v < nv; v++ {
			var contribs []uint64
			for i := range progs {
				if pos := occs[i][lang.VarID(v)]; len(pos) > 0 {
					contribs = append(contribs, occSig(sigs[i], pos))
				}
			}
			sort.Slice(contribs, func(a, b int) bool { return contribs[a] < contribs[b] })
			h := fnv.New64a()
			var scratch [8]byte
			binary.BigEndian.PutUint64(scratch[:], colors[v])
			h.Write(scratch[:])
			for _, c := range contribs {
				binary.BigEndian.PutUint64(scratch[:], c)
				h.Write(scratch[:])
			}
			next[v] = h.Sum64()
		}
		colors = next
	}

	// Order dis threads by final signature. progs[0] is the env when
	// present; only the dis suffix is reordered.
	disStart := 0
	if sys.Env != nil {
		disStart = 1
	}
	order := make([]int, len(progs)-disStart)
	for i := range order {
		order[i] = disStart + i
	}
	sort.SliceStable(order, func(a, b int) bool { return sigs[order[a]] < sigs[order[b]] })

	// Final pass: assign global canonical variable indices by first use and
	// emit the definitive encoding.
	varIdx := make([]int, nv)
	for i := range varIdx {
		varIdx[i] = -1
	}
	nextVar := 0
	assign := func(v lang.VarID) uint64 {
		if varIdx[v] < 0 {
			varIdx[v] = nextVar
			nextVar++
		}
		return uint64(varIdx[v])
	}
	final := []byte("pvra-c1")
	final = binary.AppendVarint(final, int64(sys.Dom))
	final = binary.AppendVarint(final, int64(sys.Init))
	final = binary.AppendUvarint(final, uint64(nv))
	if sys.Env != nil {
		final = append(final, 1)
	} else {
		final = append(final, 0)
	}
	final = binary.AppendUvarint(final, uint64(len(sys.Dis)))

	ordered := make([]prog, 0, len(progs))
	if sys.Env != nil {
		ordered = append(ordered, progs[0])
	}
	for _, i := range order {
		ordered = append(ordered, progs[i])
	}
	regMaps := make([]map[lang.RegID]int, len(ordered))
	for i, pr := range ordered {
		e := newPenc(assign)
		e.program(pr.p, pr.role)
		final = append(final, e.buf...)
		regMaps[i] = e.regs
	}
	// Shared variables that occur in no program body get the trailing
	// indices in original-table order. They are pairwise interchangeable
	// (they appear nowhere), so this choice cannot affect the encoding.
	for v := 0; v < nv; v++ {
		if varIdx[v] < 0 {
			varIdx[v] = nextVar
			nextVar++
		}
	}

	sum := sha256.Sum256(final)

	varIDMap := make([]lang.VarID, nv)
	varMap := make(map[string]string, nv)
	vars := make([]string, nv)
	for v := 0; v < nv; v++ {
		varIDMap[v] = lang.VarID(varIdx[v])
		cname := fmt.Sprintf("v%d", varIdx[v])
		vars[varIdx[v]] = cname
		varMap[sys.Vars[v]] = cname
	}

	canon := &lang.System{
		Name: sys.Name,
		Vars: vars,
		Dom:  sys.Dom,
		Init: sys.Init,
	}
	rebuilt := make([]*lang.Program, len(ordered))
	for i, pr := range ordered {
		rebuilt[i] = rebuildProgram(pr.p, fmt.Sprintf("t%d", i), regMaps[i], varIDMap)
	}
	if sys.Env != nil {
		canon.Env = rebuilt[0]
		canon.Dis = rebuilt[1:]
	} else {
		canon.Dis = rebuilt
	}
	return &Canonical{Sys: canon, Hash: hex.EncodeToString(sum[:]), VarMap: varMap}
}

// rebuildProgram clones p with canonical register names r0..rM (ordered by
// first use per used, then declaration order for unused) and shared-variable
// IDs mapped through varIDMap.
func rebuildProgram(p *lang.Program, name string, used map[lang.RegID]int, varIDMap []lang.VarID) *lang.Program {
	n := len(p.Regs)
	regMap := make([]lang.RegID, n)
	next := len(used)
	for r := 0; r < n; r++ {
		if i, ok := used[lang.RegID(r)]; ok {
			regMap[r] = lang.RegID(i)
		} else {
			regMap[r] = lang.RegID(next)
			next++
		}
	}
	regs := make([]string, n)
	for i := range regs {
		regs[i] = fmt.Sprintf("r%d", i)
	}
	return &lang.Program{
		Name: name,
		Regs: regs,
		Body: remapStmt(p.Body, regMap, varIDMap),
	}
}

func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// occSig hashes one program's contribution to a variable's color: the
// program's structural signature plus the ordinals of the variable's
// occurrences within it.
func occSig(progSig uint64, positions []int) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], progSig)
	h.Write(scratch[:])
	for _, p := range positions {
		binary.BigEndian.PutUint64(scratch[:], uint64(p))
		h.Write(scratch[:])
	}
	return h.Sum64()
}
