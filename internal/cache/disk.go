package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
)

// diskStore is the persistent read-through layer: one JSON file per key,
// written atomically (temp file + rename) and wrapped with a checksum so a
// torn write, truncation, or bit flip is detected instead of served.
type diskStore struct {
	dir string
	ok  bool
}

// diskEntry is the on-disk envelope. Checksum is the hex SHA-256 of the
// raw verdict JSON exactly as stored.
type diskEntry struct {
	Checksum string          `json:"checksum"`
	Verdict  json.RawMessage `json:"verdict"`
}

func newDiskStore(dir string) *diskStore {
	d := &diskStore{dir: dir}
	d.ok = os.MkdirAll(dir, 0o755) == nil
	return d
}

// fileName maps a cache key to a file name. Keys from paramra are already
// hex digests; anything else is hashed so no key can escape the directory.
func (d *diskStore) fileName(key string) string {
	for _, r := range key {
		ok := r == '-' || r == '_' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			sum := sha256.Sum256([]byte(key))
			key = hex.EncodeToString(sum[:])
			break
		}
	}
	return filepath.Join(d.dir, key+".json")
}

// get reads key. The third result reports a corrupt entry: present but
// failing decode or checksum. Corrupt files are removed best-effort so they
// are only counted once.
func (d *diskStore) get(key string) (Verdict, bool, bool) {
	if !d.ok {
		return Verdict{}, false, false
	}
	path := d.fileName(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return Verdict{}, false, false
	}
	var ent diskEntry
	if err := json.Unmarshal(raw, &ent); err != nil {
		os.Remove(path)
		return Verdict{}, false, true
	}
	sum := sha256.Sum256(ent.Verdict)
	if hex.EncodeToString(sum[:]) != ent.Checksum {
		os.Remove(path)
		return Verdict{}, false, true
	}
	var v Verdict
	if err := json.Unmarshal(ent.Verdict, &v); err != nil {
		os.Remove(path)
		return Verdict{}, false, true
	}
	return v, true, false
}

// put writes key best-effort: a full disk or read-only directory degrades
// the cache to memory-only rather than failing the verification.
func (d *diskStore) put(key string, v Verdict) {
	if !d.ok {
		return
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return
	}
	sum := sha256.Sum256(payload)
	raw, err := json.Marshal(diskEntry{Checksum: hex.EncodeToString(sum[:]), Verdict: payload})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.dir, ".cache-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, d.fileName(key)); err != nil {
		os.Remove(name)
	}
}
