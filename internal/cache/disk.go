package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// defaultDiskMaxBytes bounds the persistent layer when the caller does not
// choose a cap. A verdict entry is a few hundred bytes, so the default holds
// hundreds of thousands of verdicts — far beyond any realistic working set —
// while guaranteeing a long-lived server cannot fill the disk.
const defaultDiskMaxBytes = 256 << 20

// diskStore is the persistent read-through layer: one JSON file per key,
// written atomically (temp file + rename) and wrapped with a checksum so a
// torn write, truncation, or bit flip is detected instead of served.
//
// The layer is size-bounded: the total bytes of *.json entries are tracked
// (seeded by a startup scan, maintained on every write and removal), and a
// write that pushes the total over maxBytes evicts the least-recently-used
// entries — file modification time orders them, and a read-through bumps it
// — until the store fits again. Without the bound a long-lived server writes
// one file per distinct verdict forever and eventually fills the volume.
type diskStore struct {
	dir      string
	ok       bool
	maxBytes int64 // <= 0 disables the bound

	mu   sync.Mutex
	size int64 // total bytes of *.json entries under dir
}

// diskEntry is the on-disk envelope. Checksum is the hex SHA-256 of the
// raw verdict JSON exactly as stored.
type diskEntry struct {
	Checksum string          `json:"checksum"`
	Verdict  json.RawMessage `json:"verdict"`
}

func newDiskStore(dir string, maxBytes int64) *diskStore {
	if maxBytes == 0 {
		maxBytes = defaultDiskMaxBytes
	}
	d := &diskStore{dir: dir, maxBytes: maxBytes}
	d.ok = os.MkdirAll(dir, 0o755) == nil
	if d.ok {
		// Seed the size from what a previous process left behind, and
		// enforce the (possibly lowered) cap immediately.
		d.mu.Lock()
		d.rescanLocked()
		d.evictLocked()
		d.mu.Unlock()
	}
	return d
}

// fileName maps a cache key to a file name. Keys from paramra are already
// hex digests; anything else is hashed so no key can escape the directory.
func (d *diskStore) fileName(key string) string {
	for _, r := range key {
		ok := r == '-' || r == '_' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			sum := sha256.Sum256([]byte(key))
			key = hex.EncodeToString(sum[:])
			break
		}
	}
	return filepath.Join(d.dir, key+".json")
}

// get reads key. The third result reports a corrupt entry: present but
// failing decode or checksum. Corrupt files are removed best-effort so they
// are only counted once.
func (d *diskStore) get(key string) (Verdict, bool, bool) {
	if !d.ok {
		return Verdict{}, false, false
	}
	path := d.fileName(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return Verdict{}, false, false
	}
	var ent diskEntry
	if err := json.Unmarshal(raw, &ent); err != nil {
		d.removeSized(path, int64(len(raw)))
		return Verdict{}, false, true
	}
	sum := sha256.Sum256(ent.Verdict)
	if hex.EncodeToString(sum[:]) != ent.Checksum {
		d.removeSized(path, int64(len(raw)))
		return Verdict{}, false, true
	}
	var v Verdict
	if err := json.Unmarshal(ent.Verdict, &v); err != nil {
		d.removeSized(path, int64(len(raw)))
		return Verdict{}, false, true
	}
	// Bump the entry's recency so size-bound eviction removes cold entries
	// first. Best-effort: a read-only volume just degrades to FIFO.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return v, true, false
}

// put writes key best-effort: a full disk or read-only directory degrades
// the cache to memory-only rather than failing the verification. It returns
// how many entries the size bound evicted to make room.
func (d *diskStore) put(key string, v Verdict) int {
	if !d.ok {
		return 0
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return 0
	}
	sum := sha256.Sum256(payload)
	raw, err := json.Marshal(diskEntry{Checksum: hex.EncodeToString(sum[:]), Verdict: payload})
	if err != nil {
		return 0
	}
	tmp, err := os.CreateTemp(d.dir, ".cache-*")
	if err != nil {
		return 0
	}
	name := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(name)
		return 0
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return 0
	}
	target := d.fileName(key)
	d.mu.Lock()
	defer d.mu.Unlock()
	var replaced int64
	if info, err := os.Stat(target); err == nil {
		replaced = info.Size()
	}
	if err := os.Rename(name, target); err != nil {
		os.Remove(name)
		return 0
	}
	d.size += int64(len(raw)) - replaced
	return d.evictLocked()
}

// removeSized deletes an entry file and keeps the size accounting in step.
func (d *diskStore) removeSized(path string, size int64) {
	d.mu.Lock()
	if os.Remove(path) == nil {
		d.size -= size
	}
	d.mu.Unlock()
}

// rescanLocked recomputes size from the directory's ground truth.
func (d *diskStore) rescanLocked() {
	d.size = 0
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		if info, err := e.Info(); err == nil {
			d.size += info.Size()
		}
	}
}

// evictLocked removes least-recently-used entries (oldest mtime first) until
// the store fits under maxBytes, returning how many it removed. The listing
// also resynchronizes the size counter, so accounting drift (entries removed
// behind the store's back, failed stats) self-heals on every eviction.
func (d *diskStore) evictLocked() int {
	if d.maxBytes <= 0 || d.size <= d.maxBytes {
		return 0
	}
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	type entry struct {
		name string
		size int64
		mod  time.Time
	}
	var files []entry
	var total int64
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	d.size = total
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod)
		}
		return files[i].name < files[j].name // deterministic tie-break
	})
	n := 0
	for _, f := range files {
		if d.size <= d.maxBytes {
			break
		}
		if os.Remove(filepath.Join(d.dir, f.name)) == nil {
			d.size -= f.size
			n++
		}
	}
	return n
}
