package cache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testVerdict(bound int64) Verdict {
	return Verdict{
		Unsafe:         true,
		Complete:       true,
		EnvThreadBound: bound,
		Witness:        []string{"step 1", "step 2"},
		DecidedBy:      "fixpoint",
	}
}

func TestDoMissThenHit(t *testing.T) {
	c := New(Options{})
	computes := 0
	compute := func() (Verdict, bool, error) {
		computes++
		return testVerdict(2), true, nil
	}
	v, out, err := c.Do(context.Background(), "k", compute)
	if err != nil || out != Miss || v.EnvThreadBound != 2 {
		t.Fatalf("first Do = (%+v, %v, %v), want miss", v, out, err)
	}
	v, out, err = c.Do(context.Background(), "k", compute)
	if err != nil || out != Hit || v.EnvThreadBound != 2 {
		t.Fatalf("second Do = (%+v, %v, %v), want hit", v, out, err)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDoUnstorableNotCached(t *testing.T) {
	c := New(Options{})
	for i := 0; i < 2; i++ {
		_, out, err := c.Do(context.Background(), "k", func() (Verdict, bool, error) {
			return Verdict{Complete: false}, false, nil
		})
		if err != nil || out != Miss {
			t.Fatalf("run %d: out=%v err=%v, want miss (incomplete results must not cache)", i, out, err)
		}
	}
	if s := c.Stats(); s.Entries != 0 || s.Stores != 0 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(Options{})
	boom := errors.New("boom")
	_, _, err := c.Do(context.Background(), "k", func() (Verdict, bool, error) {
		return Verdict{}, true, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if s := c.Stats(); s.Entries != 0 || s.Stores != 0 {
		t.Fatalf("errored compute was cached: %+v", s)
	}
}

// TestDoSingleFlight: concurrent callers of the same key run exactly one
// compute; everyone gets the same verdict.
func TestDoSingleFlight(t *testing.T) {
	c := New(Options{})
	const n = 32
	var mu sync.Mutex
	computes := 0
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]Outcome, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), "k", func() (Verdict, bool, error) {
				mu.Lock()
				computes++
				first := computes == 1
				mu.Unlock()
				if first {
					close(started)
					<-release
				}
				return testVerdict(3), true, nil
			})
			results[i], errs[i] = out, err
			if err == nil && v.EnvThreadBound != 3 {
				t.Errorf("goroutine %d: wrong verdict %+v", i, v)
			}
		}(i)
	}
	<-started
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if computes != 1 {
		t.Fatalf("compute ran %d times under single-flight, want 1", computes)
	}
	var miss, other int
	for _, out := range results {
		if out == Miss {
			miss++
		} else {
			other++
		}
	}
	if miss != 1 || other != n-1 {
		t.Fatalf("outcomes: %d miss, %d hit/shared; want 1 and %d", miss, other, n-1)
	}
}

// TestDoWaiterFallsBackWhenLeaderFails: a waiter must not inherit the
// leader's error (it may be the leader's own budget); it computes itself.
func TestDoWaiterFallsBackWhenLeaderFails(t *testing.T) {
	c := New(Options{})
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(context.Background(), "k", func() (Verdict, bool, error) {
			close(leaderIn)
			<-release
			return Verdict{}, false, errors.New("leader budget")
		})
		if err == nil {
			t.Error("leader error vanished")
		}
	}()
	<-leaderIn
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, out, err := c.Do(context.Background(), "k", func() (Verdict, bool, error) {
			return testVerdict(1), true, nil
		})
		if err != nil || out != Miss || v.EnvThreadBound != 1 {
			t.Errorf("waiter fallback = (%+v, %v, %v)", v, out, err)
		}
	}()
	close(release)
	wg.Wait()
	<-done
}

// TestDoWaiterCancelled: ctx death while waiting returns ctx.Err() without
// computing.
func TestDoWaiterCancelled(t *testing.T) {
	c := New(Options{})
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), "k", func() (Verdict, bool, error) {
			close(leaderIn)
			<-release
			return testVerdict(1), true, nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() (Verdict, bool, error) {
		t.Error("cancelled waiter ran compute")
		return Verdict{}, false, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestLRUEviction(t *testing.T) {
	c := New(Options{MaxEntries: 3})
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), testVerdict(int64(i)))
	}
	if s := c.Stats(); s.Entries != 3 || s.Evictions != 2 {
		t.Fatalf("stats = %+v, want 3 entries / 2 evictions", s)
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("oldest entry survived eviction")
	}
	if v, ok := c.Get("k4"); !ok || v.EnvThreadBound != 4 {
		t.Error("newest entry missing")
	}
	// Touching k2 must save it from the next eviction.
	c.Get("k2")
	c.Put("k5", testVerdict(5))
	if _, ok := c.Get("k2"); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get("k3"); ok {
		t.Error("least recently used entry survived")
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1 := New(Options{Dir: dir})
	want := testVerdict(4)
	want.Class.HasEnv = true
	c1.Put("deadbeef", want)

	// A fresh cache over the same directory reads the verdict through.
	c2 := New(Options{Dir: dir})
	v, out, err := c2.Do(context.Background(), "deadbeef", func() (Verdict, bool, error) {
		t.Error("disk-resident verdict recomputed")
		return Verdict{}, false, nil
	})
	if err != nil || out != Hit {
		t.Fatalf("Do = (%v, %v)", out, err)
	}
	if v.EnvThreadBound != 4 || len(v.Witness) != 2 || !v.Class.HasEnv {
		t.Fatalf("verdict lost fields across disk: %+v", v)
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestDiskCorruptionDetected: truncated and bit-flipped entries must be
// detected by checksum, counted, removed, and treated as misses.
func TestDiskCorruptionDetected(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(path string) error
	}{
		{"truncated", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, raw[:len(raw)/2], 0o644)
		}},
		{"bit-flip", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			// Flip a byte inside the verdict payload, not the envelope
			// syntax, so only the checksum can catch it.
			i := len(raw) / 2
			if raw[i] == 't' {
				raw[i] = 'f'
			} else {
				raw[i] = 't'
			}
			return os.WriteFile(p, raw, 0o644)
		}},
		{"garbage", func(p string) error {
			return os.WriteFile(p, []byte("not json at all"), 0o644)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c1 := New(Options{Dir: dir})
			c1.Put("cafe", testVerdict(7))
			files, err := filepath.Glob(filepath.Join(dir, "*.json"))
			if err != nil || len(files) != 1 {
				t.Fatalf("glob: %v %v", files, err)
			}
			if err := tc.corrupt(files[0]); err != nil {
				t.Fatal(err)
			}
			c2 := New(Options{Dir: dir})
			computed := false
			_, out, err := c2.Do(context.Background(), "cafe", func() (Verdict, bool, error) {
				computed = true
				return testVerdict(1), true, nil
			})
			if err != nil || out != Miss || !computed {
				t.Fatalf("corrupt entry not treated as a miss: out=%v err=%v computed=%v", out, err, computed)
			}
			if s := c2.Stats(); s.DiskCorrupt != 1 {
				t.Fatalf("DiskCorrupt = %d, want 1 (stats %+v)", s.DiskCorrupt, s)
			}
			// The recompute overwrites the corrupt file with a good entry.
			c3 := New(Options{Dir: dir})
			if v, ok := c3.Get("cafe"); !ok || v.EnvThreadBound != 1 {
				t.Errorf("recomputed verdict not re-stored cleanly: %+v ok=%v", v, ok)
			}
		})
	}
}

// TestDiskSizeBoundedEviction: the persistent layer must not grow without
// bound — a write past DiskMaxBytes evicts the least-recently-used entries
// (mtime order, bumped by read-through), and a restarted cache re-learns the
// directory's size in its startup scan, enforcing even a lowered cap.
func TestDiskSizeBoundedEviction(t *testing.T) {
	dir := t.TempDir()
	// Measure one entry's on-disk size so the cap can be set in entries.
	probe := New(Options{Dir: dir})
	probe.Put("probe", testVerdict(1))
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("glob: %v %v", files, err)
	}
	info, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	size := info.Size()
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}

	cap3 := 3*size + size/2 // three entries fit, a fourth does not
	c := New(Options{Dir: dir, DiskMaxBytes: cap3})
	old := time.Now().Add(-time.Hour)
	for i, k := range []string{"k0", "k1", "k2"} {
		c.Put(k, testVerdict(1))
		mt := old.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, k+".json"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	// A read-through on k0 (fresh cache, so memory is empty) bumps its
	// recency, making k1 the oldest entry and thus the eviction victim.
	c2 := New(Options{Dir: dir, DiskMaxBytes: cap3})
	if _, ok := c2.Get("k0"); !ok {
		t.Fatal("k0 not readable through disk")
	}
	c2.Put("k3", testVerdict(1))
	if _, err := os.Stat(filepath.Join(dir, "k1.json")); !os.IsNotExist(err) {
		t.Errorf("k1 (least recently used) not evicted: stat err = %v", err)
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, err := os.Stat(filepath.Join(dir, k+".json")); err != nil {
			t.Errorf("%s evicted, want kept: %v", k, err)
		}
	}
	if s := c2.Stats(); s.DiskEvictions != 1 {
		t.Errorf("DiskEvictions = %d, want 1 (stats %+v)", s.DiskEvictions, s)
	}

	// Restart with a lowered cap: the startup scan evicts down to it,
	// keeping only the most recently written entry.
	New(Options{Dir: dir, DiskMaxBytes: size + size/2})
	left, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 || filepath.Base(left[0]) != "k3.json" {
		t.Errorf("restart with lowered cap left %v, want only k3.json", left)
	}

	// A negative cap disables the bound entirely.
	u := New(Options{Dir: dir, DiskMaxBytes: -1})
	for i := 0; i < 8; i++ {
		u.Put(fmt.Sprintf("u%d", i), testVerdict(1))
	}
	left, err = filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(left) != 9 {
		t.Errorf("unbounded store evicted: %d files, %v", len(left), err)
	}
	if s := u.Stats(); s.DiskEvictions != 0 {
		t.Errorf("unbounded DiskEvictions = %d", s.DiskEvictions)
	}
}

func TestDiskIgnoresUnsafeKeys(t *testing.T) {
	dir := t.TempDir()
	c := New(Options{Dir: dir})
	c.Put("../escape", testVerdict(1))
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.json")); err == nil {
		t.Fatal("key escaped the cache directory")
	}
	if _, ok := c.Get("../escape"); !ok {
		t.Fatal("hashed key not readable back")
	}
}

func TestMemoLRU(t *testing.T) {
	c := New(Options{MemoEntries: 2})
	c.MemoPut("a", 1)
	c.MemoPut("b", 2)
	if v, ok := c.MemoGet("a"); !ok || v.(int) != 1 {
		t.Fatal("memo lost a")
	}
	c.MemoPut("c", 3) // evicts b (a was just touched)
	if _, ok := c.MemoGet("b"); ok {
		t.Fatal("LRU memo kept b over a")
	}
	if _, ok := c.MemoGet("a"); !ok {
		t.Fatal("memo lost recently used a")
	}
	s := c.Stats()
	if s.MemoHits != 2 || s.MemoMisses != 1 {
		t.Fatalf("memo stats = %+v", s)
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	if s := c.Stats(); s != (Stats{}) {
		t.Fatal("nil stats not zero")
	}
	if _, ok := c.MemoGet("k"); ok {
		t.Fatal("nil memo hit")
	}
	c.MemoPut("k", 1)
}
