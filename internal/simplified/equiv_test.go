package simplified

import (
	"math/rand"
	"testing"

	"paramra/internal/lang"
	"paramra/internal/ra"
)

// Theorem 3.4 (soundness and completeness of the simplified semantics) is
// validated differentially against the concrete RA explorer:
//
//   - completeness of the abstraction: if some finite instance (N env
//     threads) is unsafe under concrete RA, the parameterized verifier must
//     report unsafe;
//   - soundness: if the parameterized verifier reports unsafe, some finite
//     instance must be unsafe (we search N = 0..maxN and require a hit).
//
// The instances explored are small enough that concrete exploration is
// exhaustive, so a mismatch is a real semantics bug, not a search artifact.

const (
	diffMaxEnv    = 3
	diffRAStates  = 400_000
	diffRandCases = 40
)

// concreteUnsafeUpTo returns (unsafe, confirmedN, exhaustive). exhaustive is
// false if some instance exploration hit limits without a verdict.
func concreteUnsafeUpTo(t *testing.T, sys *lang.System, maxN int) (bool, int, bool) {
	t.Helper()
	exhaustive := true
	hi := maxN
	if sys.Env == nil {
		hi = 0
	}
	for n := 0; n <= hi; n++ {
		inst, err := ra.NewInstance(sys, n)
		if err != nil {
			t.Fatalf("instance N=%d: %v", n, err)
		}
		res := inst.Explore(ra.Limits{MaxStates: diffRAStates, Symmetry: true})
		if res.Unsafe {
			return true, n, exhaustive
		}
		if !res.Complete {
			exhaustive = false
		}
	}
	return false, -1, exhaustive
}

func checkAgainstConcrete(t *testing.T, name string, sys *lang.System) {
	t.Helper()
	v, err := New(sys, Options{MaxMacroStates: 300_000})
	if err != nil {
		t.Fatalf("%s: New: %v", name, err)
	}
	simp := v.Verify()
	if !simp.Unsafe && !simp.Complete {
		t.Logf("%s: simplified search incomplete, skipping", name)
		return
	}
	concUnsafe, atN, exhaustive := concreteUnsafeUpTo(t, sys, diffMaxEnv)

	if concUnsafe && !simp.Unsafe {
		t.Errorf("%s: COMPLETENESS violation — concrete unsafe at N=%d but simplified safe\n%s",
			name, atN, lang.Print(sys))
	}
	if simp.Unsafe && !concUnsafe {
		if exhaustive {
			t.Errorf("%s: SOUNDNESS violation — simplified unsafe but all instances N≤%d safe\n%s",
				name, diffMaxEnv, lang.Print(sys))
		} else {
			t.Logf("%s: simplified unsafe, concrete search non-exhaustive (inconclusive)", name)
		}
	}
}

func TestTheorem34Corpus(t *testing.T) {
	corpus := map[string]string{
		"prodcons-unsafe": `
system s { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`,
		"mp-safe": `
system s { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`,
		"chain-two-threads": `
system s { vars x; domain 4; env inc; dis w }
thread inc { regs r; r = load x; store x (r + 1) }
thread w { regs s; s = load x; assume s == 2; assert false }
`,
		"sb-weak-allowed": `
system s { vars x y a; domain 2; env e; dis t1; dis t2 }
thread e { skip }
thread t1 { regs r1; store x 1; r1 = load y; assume r1 == 0; store a 1 }
thread t2 { regs r2 r3; store y 1; r2 = load x; assume r2 == 0; r3 = load a; assume r3 == 1; assert false }
`,
		"cas-mutex-safe": `
system s { vars x a; domain 2; env e; dis t1; dis t2 }
thread e { skip }
thread t1 { cas x 0 1; store a 1 }
thread t2 { regs r; cas x 0 1; r = load a; assume r == 1; assert false }
`,
		"cas-env-supply-unsafe": `
system s { vars x a; domain 2; env w; dis t1; dis t2 }
thread w { store x 1 }
thread t1 { cas x 1 0; store a 1 }
thread t2 { regs r; cas x 1 0; r = load a; assume r == 1; assert false }
`,
		"env-bump-coherence-safe": `
system s { vars x; domain 6; env w; dis r1; dis a1 }
thread w { store x 1 }
thread a1 { store x 5 }
thread r1 { regs a b c; a = load x; assume a == 5; b = load x; assume b == 1; c = load x; assume c == 5; assert false }
`,
		"env-observes-dis-safe": `
system s { vars x y; domain 3; env e; dis d }
thread e { regs r; r = load x; assume r == 2; store y 1 }
thread d { regs s; s = load y; assume s == 1; assert false }
`,
		"env-observes-dis-unsafe": `
system s { vars x y; domain 3; env e; dis d }
thread e { regs r; r = load x; assume r == 2; store y 1 }
thread d { regs s; store x 2; s = load y; assume s == 1; assert false }
`,
		"two-phase-handshake": `
system s { vars req ack; domain 3; env server; dis client }
thread server { regs r; r = load req; assume r == 1; store ack 2 }
thread client { regs a; store req 1; a = load ack; assume a == 2; assert false }
`,
		"stale-read-after-env": `
system s { vars x f; domain 3; env w; dis d }
thread w { store x 1; store f 1 }
thread d { regs a b; a = load f; assume a == 1; b = load x; assume b == 0; assert false }
`,
		"env-reads-own-kind": `
system s { vars x y; domain 4; env e; dis d }
thread e { regs r; choice { store x 1 } or { r = load x; assume r == 1; store y 3 } }
thread d { regs s; s = load y; assume s == 3; assert false }
`,
	}
	for name, src := range corpus {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			checkAgainstConcrete(t, name, lang.MustParseSystem(src))
		})
	}
}

// randProgram builds a small random straight-line-with-choice program.
func randProgram(r *rand.Rand, name string, numVars, dom int, allowAssert bool) *lang.Program {
	b := lang.NewProgramBuilder(name)
	r0 := b.Reg("r0")
	r1 := b.Reg("r1")
	regs := []lang.RegID{r0, r1}
	nOps := 2 + r.Intn(4)
	var stmts []lang.Stmt
	for i := 0; i < nOps; i++ {
		v := lang.VarID(r.Intn(numVars))
		reg := regs[r.Intn(len(regs))]
		c := lang.Val(r.Intn(dom))
		switch r.Intn(6) {
		case 0, 1:
			stmts = append(stmts, lang.Load{Reg: reg, Var: v})
		case 2, 3:
			if r.Intn(2) == 0 {
				stmts = append(stmts, lang.Store{Var: v, E: lang.Num(c)})
			} else {
				stmts = append(stmts, lang.Store{Var: v, E: lang.Bin(lang.OpAdd, lang.Reg(reg), lang.Num(1))})
			}
		case 4:
			stmts = append(stmts, lang.Assume{Cond: lang.Eq(lang.Reg(reg), lang.Num(c))})
		case 5:
			stmts = append(stmts, lang.ChoiceOf(
				lang.Store{Var: v, E: lang.Num(c)},
				lang.SeqOf(lang.Load{Reg: reg, Var: v}, lang.Assume{Cond: lang.Ne(lang.Reg(reg), lang.Num(c))}),
			))
		}
	}
	if allowAssert {
		v := lang.VarID(r.Intn(numVars))
		c := lang.Val(r.Intn(dom))
		stmts = append(stmts,
			lang.Load{Reg: r0, Var: v},
			lang.Assume{Cond: lang.Eq(lang.Reg(r0), lang.Num(c))},
			lang.AssertFail{},
		)
	}
	return b.Build(stmts...)
}

// TestTheorem34Random fuzzes the equivalence on random small systems.
func TestTheorem34Random(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzzing skipped in -short mode")
	}
	r := rand.New(rand.NewSource(20220725)) // PODC'22 conference date
	for i := 0; i < diffRandCases; i++ {
		numVars := 1 + r.Intn(2)
		dom := 2 + r.Intn(2)
		sb := lang.NewSystemBuilder("rand", dom)
		for v := 0; v < numVars; v++ {
			sb.Var(string(rune('a' + v)))
		}
		env := randProgram(r, "env", numVars, dom, r.Intn(4) == 0)
		dis := randProgram(r, "dis", numVars, dom, true)
		sys := sb.Env(env).Dis(dis).Build()
		if err := sys.Validate(); err != nil {
			t.Fatalf("case %d: generated invalid system: %v", i, err)
		}
		checkAgainstConcrete(t, "rand", sys)
		if t.Failed() {
			t.Fatalf("case %d failed (seed-deterministic)", i)
		}
	}
}
