package simplified

import (
	"testing"

	"paramra/internal/lang"
)

// TestInventoryMatchesGoalQueries: the inventory must agree with a
// per-(variable, value) Goal query across the whole value space — a strong
// cross-check between the two MG code paths.
func TestInventoryMatchesGoalQueries(t *testing.T) {
	for name, src := range propertyCorpus() {
		sys := lang.MustParseSystem(src)
		v, err := New(sys, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		inv, _, complete := v.Inventory()
		if !complete {
			t.Fatalf("%s: inventory incomplete", name)
		}
		for vi := range sys.Vars {
			for d := 0; d < sys.Dom; d++ {
				goal := &Goal{Var: lang.VarID(vi), Val: lang.Val(d)}
				gv, err := New(sys, Options{Goal: goal})
				if err != nil {
					t.Fatal(err)
				}
				want := gv.Verify().Unsafe
				got := inv[lang.VarID(vi)][lang.Val(d)]
				if got != want {
					t.Errorf("%s: inventory(%s,%d)=%v but goal query says %v",
						name, sys.Vars[vi], d, got, want)
				}
			}
		}
	}
}

func TestInventoryContents(t *testing.T) {
	sys := lang.MustParseSystem(`
system inv { vars x y; domain 4; env w; dis d }
thread w { regs r; r = load x; assume r == 1; store y 2 }
thread d { store x 1 }
`)
	v, err := New(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inv, stats, complete := v.Inventory()
	if !complete {
		t.Fatal("incomplete")
	}
	x, _ := sys.VarByName("x")
	y, _ := sys.VarByName("y")
	for _, tc := range []struct {
		v    lang.VarID
		d    lang.Val
		want bool
	}{
		{x, 0, true},  // init
		{x, 1, true},  // dis store
		{x, 2, false}, // never written
		{y, 0, true},  // init
		{y, 2, true},  // env store after seeing x=1
		{y, 1, false},
		{y, 3, false},
	} {
		if got := inv[tc.v][tc.d]; got != tc.want {
			t.Errorf("inventory(%s,%d) = %v, want %v", sys.VarName(tc.v), tc.d, got, tc.want)
		}
	}
	if stats.MacroStates < 2 {
		t.Errorf("stats implausible: %+v", stats)
	}
}

// TestInventoryIgnoresAsserts: an assert must not abort the inventory.
func TestInventoryIgnoresAsserts(t *testing.T) {
	sys := lang.MustParseSystem(`
system a { vars x; domain 3; env w }
thread w {
  regs r
  choice { assert false } or { store x 2 }
}
`)
	v, err := New(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inv, _, complete := v.Inventory()
	if !complete {
		t.Fatal("incomplete")
	}
	if !inv[0][2] {
		t.Error("store branch not explored past the assert branch")
	}
}
