package simplified

import (
	"paramra/internal/engine"
)

// LegacyExploreResult is what LegacyExploreForTest measures: the verdict and
// macro-state count of a reference exploration that takes none of the
// optimized fast paths, plus whether the optimized key construction agreed
// with the reference encoding on every single state.
type LegacyExploreResult struct {
	Unsafe      bool
	MacroStates int
	// SpliceMismatches counts states whose optimized key (dis prefix +
	// spliced parent mem/env suffix for memory-untouched successors)
	// differed from the reference full encoding. Must be 0.
	SpliceMismatches int
	// SkipUnsound counts memory-untouched successors whose unconditional
	// re-saturation derived something after all — each one is a counter-
	// example to the saturation-skip purity argument. Must be 0.
	SkipUnsound int
	// HitCap reports the maxStates budget stopped the search; verdict and
	// counts are then not comparable and the caller should skip the seed.
	HitCap bool
}

// legacyKey encodes a macro-state's identity the way the pre-optimization
// code did: one linear pass through the single appendKey composition,
// written out longhand here so the test does not depend on the split
// appendKeyDis/appendKeyMemEnv helpers it is checking.
func legacyKey(s *state) string {
	enc := engine.GetKeyEnc()
	defer engine.PutKeyEnc(enc)
	enc.Reset()
	enc.Len(len(s.dis))
	for _, d := range s.dis {
		d.encodeKey(enc)
	}
	enc.Mark('#')
	s.mem.encodeKey(enc)
	enc.Mark('~')
	enc.Uint64(s.env.Fingerprint())
	return enc.String()
}

// LegacyExploreForTest re-runs the macro-state fixpoint the way the code
// worked before the allocation-free exploration core: every successor is
// saturated and goal-checked unconditionally, and every key is encoded in
// full. Along the way it cross-checks the optimized paths state by state:
//
//   - the spliced key construction (appendKeyDis + parent suffix reuse for
//     memory-untouched successors) must reproduce the reference encoding
//     byte for byte, and
//   - re-saturating a memory-untouched successor must be a no-op (same env
//     fingerprint before and after), which is the purity argument the
//     explorers' saturation skip rests on.
//
// Because the visited set here is keyed by the reference encoding while the
// production engines key by the optimized one, equal macro-state counts on
// the same system mean the two encodings induce the same visited-set
// membership.
func LegacyExploreForTest(v *Verifier, maxStates int) LegacyExploreResult {
	var r LegacyExploreResult
	ex := newExec(v, nil)
	init := v.initState()
	if viol := ex.saturate(init); viol != nil {
		r.Unsafe, r.MacroStates = true, 1
		return r
	}
	if viol := ex.checkGoalDis(init); viol != nil {
		r.Unsafe, r.MacroStates = true, 1
		return r
	}
	seen := map[string]bool{legacyKey(init): true}
	queue := []*state{init}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		succs, viol := ex.disSuccessors(st)
		if viol != nil {
			r.Unsafe, r.MacroStates = true, len(seen)
			return r
		}
		parentSuffix := engine.GetKeyEnc()
		parentSuffix.Reset()
		st.appendKeyMemEnv(parentSuffix)
		for _, ns := range succs {
			memChanged := ns.memChanged()
			fpBefore := ns.env.Fingerprint()
			if viol := ex.saturate(ns); viol != nil {
				engine.PutKeyEnc(parentSuffix)
				r.Unsafe, r.MacroStates = true, len(seen)
				return r
			}
			if viol := ex.checkGoalDis(ns); viol != nil {
				engine.PutKeyEnc(parentSuffix)
				r.Unsafe, r.MacroStates = true, len(seen)
				return r
			}
			if !memChanged && ns.env.Fingerprint() != fpBefore {
				r.SkipUnsound++
			}
			ref := legacyKey(ns)
			opt := engine.GetKeyEnc()
			opt.Reset()
			ns.appendKeyDis(opt)
			if memChanged {
				ns.appendKeyMemEnv(opt)
			} else {
				opt.Raw(parentSuffix.Bytes())
			}
			if string(opt.Bytes()) != ref {
				r.SpliceMismatches++
			}
			engine.PutKeyEnc(opt)
			if seen[ref] {
				continue
			}
			seen[ref] = true
			queue = append(queue, ns)
			if maxStates > 0 && len(seen) > maxStates {
				engine.PutKeyEnc(parentSuffix)
				r.MacroStates, r.HitCap = len(seen), true
				return r
			}
		}
		engine.PutKeyEnc(parentSuffix)
	}
	r.MacroStates = len(seen)
	return r
}
