package simplified_test

// Differential property test for the interned-key exploration core: the
// optimized encoding and fast paths (split key encoders, parent-suffix
// splicing, saturation skip) against a reference exploration that uses the
// legacy single-pass encoding and takes no shortcuts. Equal verdicts and
// macro-state counts on the corpus plus a fuzzed system population — with
// the per-state byte-equality checks inside LegacyExploreForTest — pin the
// new representation to the old semantics.

import (
	"context"
	"fmt"
	"testing"

	"paramra/internal/bench"
	"paramra/internal/fuzzgen"
	"paramra/internal/lang"
	"paramra/internal/simplified"
)

// diffOne cross-checks one system: reference exploration vs Verify and
// VerifyContext at several worker counts. cap bounds the reference search
// (0 = unbounded); a capped-out reference skips the system.
func diffOne(t *testing.T, name string, sys *lang.System, cap int) (checked bool) {
	t.Helper()
	vref, err := simplified.New(sys, simplified.Options{})
	if err != nil {
		return false // out of the decidable class; nothing to compare
	}
	ref := simplified.LegacyExploreForTest(vref, cap)
	if ref.SpliceMismatches != 0 {
		t.Errorf("%s: %d spliced keys differ from the legacy encoding", name, ref.SpliceMismatches)
	}
	if ref.SkipUnsound != 0 {
		t.Errorf("%s: %d memory-untouched successors were not at their parent's saturation fixpoint", name, ref.SkipUnsound)
	}
	if ref.HitCap {
		return false
	}

	prodCap := 0
	if cap > 0 {
		prodCap = 2 * cap // never binds when the reference completed
	}
	check := func(mode string, res simplified.Result) {
		if res.Unsafe != ref.Unsafe {
			t.Errorf("%s [%s]: unsafe=%v, reference=%v", name, mode, res.Unsafe, ref.Unsafe)
			return
		}
		if res.Unsafe {
			return // early exit makes counts order-dependent; verdict is the contract
		}
		if !res.Complete {
			t.Errorf("%s [%s]: incomplete run (err=%v)", name, mode, res.Err)
			return
		}
		if res.Stats.MacroStates != ref.MacroStates {
			t.Errorf("%s [%s]: macro-states %d, reference encoding %d",
				name, mode, res.Stats.MacroStates, ref.MacroStates)
		}
	}
	vseq, err := simplified.New(sys, simplified.Options{MaxMacroStates: prodCap})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	check("sequential", vseq.Verify())
	for _, j := range []int{1, 2, 8} {
		vj, err := simplified.New(sys, simplified.Options{Workers: j, MaxMacroStates: prodCap})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		check(fmt.Sprintf("parallel j=%d", j), vj.VerifyContext(context.Background()))
	}
	return true
}

// TestEncodingDifferentialCorpus runs the differential over every corpus
// entry. -short caps the reference search so the heavyweight entries are
// exercised partially (splice/purity checks still run on every state seen).
func TestEncodingDifferentialCorpus(t *testing.T) {
	cap := 0
	if testing.Short() {
		cap = 3000
	}
	for _, e := range bench.Corpus() {
		diffOne(t, e.Name, e.System(), cap)
	}
}

// TestEncodingDifferentialFuzz runs the differential over a generated
// population of systems (1000 seeds, 150 under -short). Seeds outside the
// decidable class or larger than the reference budget are skipped but
// counted: the test fails if too few systems were actually compared.
func TestEncodingDifferentialFuzz(t *testing.T) {
	seeds := 1000
	if testing.Short() {
		seeds = 150
	}
	profile := fuzzgen.DefaultProfile()
	checked := 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		sys := fuzzgen.Generate(seed, profile)
		if diffOne(t, profile.Name, sys, 4000) {
			checked++
		}
	}
	if checked < seeds/2 {
		t.Fatalf("only %d/%d fuzz seeds were comparable — generator or class filter drifted", checked, seeds)
	}
}
