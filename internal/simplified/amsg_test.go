package simplified

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paramra/internal/lang"
)

func TestAViewLatticeLaws(t *testing.T) {
	mk := func(a, b int8) AView {
		return AView{ATime(int(a&15) + 16), ATime(int(b&15) + 16)}
	}
	comm := func(a1, a2, b1, b2 int8) bool {
		v, w := mk(a1, a2), mk(b1, b2)
		return v.Join(w).Eq(w.Join(v))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("join not commutative: %v", err)
	}
	assoc := func(a1, a2, b1, b2, c1, c2 int8) bool {
		u, v, w := mk(a1, a2), mk(b1, b2), mk(c1, c2)
		return u.Join(v).Join(w).Eq(u.Join(v.Join(w)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("join not associative: %v", err)
	}
	mono := func(a1, a2, b1, b2 int8) bool {
		v, w := mk(a1, a2), mk(b1, b2)
		j := v.Join(w)
		return v.Leq(j) && w.Leq(j)
	}
	if err := quick.Check(mono, nil); err != nil {
		t.Errorf("join not an upper bound: %v", err)
	}
}

func TestATimeOrderLaws(t *testing.T) {
	// Int/Plus interleave correctly for all floors.
	f := func(a uint8) bool {
		n := int(a % 100)
		return Int(n) < Plus(n) && Plus(n) < Int(n+1) &&
			Int(n).Floor() == n && Plus(n).Floor() == n &&
			!Int(n).IsPlus() && Plus(n).IsPlus()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDisMemRandomOps drives random Put sequences and checks the container
// invariants: Free/Get agreement, ordered iteration, stable keys, count.
func TestDisMemRandomOps(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		const vars = 3
		m := NewDisMem(vars, 0)
		placed := map[[2]int]lang.Val{}
		for i := 0; i < 20; i++ {
			v := lang.VarID(r.Intn(vars))
			ts := 1 + r.Intn(8)
			if !m.Free(v, ts) {
				continue
			}
			val := lang.Val(r.Intn(4))
			view := NewAView(vars)
			view[v] = Int(ts)
			m.Put(AMsg{Var: v, TS: Int(ts), Val: val, View: view})
			placed[[2]int{int(v), ts}] = val
		}
		if m.Count() != len(placed)+vars {
			t.Fatalf("count = %d, want %d", m.Count(), len(placed)+vars)
		}
		for key, val := range placed {
			got, ok := m.Get(lang.VarID(key[0]), key[1])
			if !ok || got.Val != val {
				t.Fatalf("Get(%v) = %v/%v", key, got, ok)
			}
			if m.Free(lang.VarID(key[0]), key[1]) {
				t.Fatalf("Free true for occupied slot %v", key)
			}
		}
		// Each iterates in increasing timestamp order.
		for v := 0; v < vars; v++ {
			last := -1
			m.Each(lang.VarID(v), func(msg AMsg) {
				if msg.TS.Floor() <= last {
					t.Fatalf("Each out of order: %d after %d", msg.TS.Floor(), last)
				}
				last = msg.TS.Floor()
			})
		}
		// Key is deterministic and clone-stable.
		if m.Key() != m.Clone().Key() {
			t.Fatal("clone changed key")
		}
	}
}

func TestAMsgKeyDistinguishes(t *testing.T) {
	base := AMsg{Var: 0, TS: Plus(1), Val: 2, View: AView{Plus(1), Int(0)}, Env: true}
	variants := []AMsg{
		{Var: 1, TS: Plus(1), Val: 2, View: AView{Plus(1), Int(0)}, Env: true},
		{Var: 0, TS: Plus(2), Val: 2, View: AView{Plus(2), Int(0)}, Env: true},
		{Var: 0, TS: Plus(1), Val: 3, View: AView{Plus(1), Int(0)}, Env: true},
		{Var: 0, TS: Plus(1), Val: 2, View: AView{Plus(1), Int(2)}, Env: true},
	}
	for i, v := range variants {
		if v.Key() == base.Key() {
			t.Errorf("variant %d shares key with base", i)
		}
	}
	// Env vs dis with same floor differ through the TS parity.
	dis := AMsg{Var: 0, TS: Int(1), Val: 2, View: AView{Int(1), Int(0)}}
	if dis.Key() == base.Key() {
		t.Error("dis/env keys collide")
	}
	if base.String() == "" || dis.String() == "" {
		t.Error("String broken")
	}
}
