package simplified

import (
	"paramra/internal/lang"
)

// disSuccessors enumerates the macro-states reachable by one transition of a
// dis thread. Env saturation of the successors is the caller's job.
func (ex *exec) disSuccessors(st *state) ([]*state, *Violation) {
	v := ex.v
	// The result slice is exec scratch: callers consume it before the next
	// expansion on this exec. The successor states themselves escape; only
	// the slice header is recycled.
	out := ex.outBuf[:0]
	// emit clones, applies the thread step, and appends. It returns the
	// clone so store/CAS paths can insert their message directly — an
	// `update` closure here would allocate once per emitted successor.
	emit := func(i int, th AThread) *state {
		ns := ex.cloneState(st)
		ns.dis[i] = th
		ex.stats.DisTransitions++
		out = append(out, ns)
		return ns
	}

	for i := range st.dis {
		cfg := st.dis[i]
		g := v.disCFG[i]
		for _, e := range g.Out[cfg.PC] {
			switch e.Op.Kind {
			case lang.OpNop:
				emit(i, AThread{PC: e.To, Regs: cfg.Regs, View: cfg.View, Log: cfg.Log})

			case lang.OpAssume:
				if e.Op.E.Eval(cfg.Regs) != 0 {
					emit(i, AThread{PC: e.To, Regs: cfg.Regs, View: cfg.View, Log: cfg.Log})
				}

			case lang.OpAssertFail:
				// Inert in Message Generation mode (§4.1).
				if v.opts.Goal == nil {
					ex.outBuf = out
					return out, &Violation{ByEnv: false, DisIndex: i, Log: cfg.Log}
				}

			case lang.OpAssign:
				regs := cfg.cloneRegs()
				regs[e.Op.Reg] = v.norm(e.Op.E.Eval(cfg.Regs))
				emit(i, AThread{PC: e.To, Regs: regs, View: cfg.View, Log: cfg.Log})

			case lang.OpLoad:
				lts := v.loadTargets(st, cfg.View, e.Op.Var, ex.ltBuf[:0])
				for _, lt := range lts {
					regs := cfg.cloneRegs()
					regs[e.Op.Reg] = lt.msg.Val
					log := &ReadLog{MsgKey: lt.key, Prev: cfg.Log}
					emit(i, AThread{PC: e.To, Regs: regs, View: lt.view, Log: log})
				}
				ex.ltBuf = lts[:0]

			case lang.OpStore:
				x := e.Op.Var
				d := v.norm(e.Op.E.Eval(cfg.Regs))
				for t := 1; t <= v.budget[x]; t++ {
					if Int(t) <= cfg.View[x] || !st.mem.Free(x, t) {
						continue
					}
					view := cfg.View.Clone()
					view[x] = Int(t)
					msg := AMsg{Var: x, TS: Int(t), Val: d, View: view}
					msg.key = msg.Key()
					ex.recordDisMsg(msg, i, cfg.Log)
					emit(i, AThread{PC: e.To, Regs: cfg.Regs, View: view, Log: cfg.Log}).mem.Put(msg)
				}

			case lang.OpCASOp:
				out = ex.disCAS(st, i, cfg, e, out)
			}
		}
	}
	ex.outBuf = out
	return out, nil
}

// disCAS enumerates compare-and-swap transitions of dis thread i. A CAS
// atomically loads a message with the expected value and stores the new
// value at the adjacent integer timestamp:
//
//   - reading a dis message at ts requires ts ≥ vw(x) and slot ts+1 free
//     (the paper's ts' = ts + 1 adjacency, which also blocks a second CAS
//     on the same message);
//   - reading an env message at u⁺ can use any free integer slot t with
//     t-1 ≥ max(u, ⌊vw(x)⌋): by Infinite Supply a clone of the message can
//     be lifted into region t-1 just below the slot, and the remaining env
//     messages relocate out of the gap (timestamp lifting, §3.1), so env
//     messages never block adjacency.
func (ex *exec) disCAS(st *state, i int, cfg AThread, e lang.Edge, out []*state) []*state {
	v := ex.v
	x := e.Op.Var
	expect := v.norm(e.Op.E.Eval(cfg.Regs))
	newVal := v.norm(e.Op.E2.Eval(cfg.Regs))

	emit := func(th AThread, msg AMsg) {
		ns := ex.cloneState(st)
		ns.dis[i] = th
		ns.mem.Put(msg)
		ex.stats.DisTransitions++
		out = append(out, ns)
	}

	// Case 1: CAS on a dis message.
	for _, m := range st.mem.VarMsgs(x) {
		u := m.TS.Floor()
		if m.TS < cfg.View[x] || m.Val != expect {
			continue
		}
		if u+1 > v.budget[x] || !st.mem.Free(x, u+1) {
			continue
		}
		view := cfg.View.Join(m.View)
		view[x] = Int(u + 1)
		msg := AMsg{Var: x, TS: Int(u + 1), Val: newVal, View: view}
		msg.key = msg.Key()
		log := &ReadLog{MsgKey: m.Key(), Prev: cfg.Log}
		ex.recordDisMsg(msg, i, log)
		emit(AThread{PC: e.To, Regs: cfg.Regs, View: view, Log: log}, msg)
	}

	// Case 2: CAS on an env message.
	for _, me := range st.env.MsgsByVar[x] {
		m := me.Msg
		if m.Val != expect {
			continue
		}
		lo := m.TS.Floor()
		if f := cfg.View[x].Floor(); f > lo {
			lo = f
		}
		for t := lo + 1; t <= v.budget[x]; t++ {
			if !st.mem.Free(x, t) {
				continue
			}
			view := cfg.View.Join(m.View)
			view[x] = Int(t)
			msg := AMsg{Var: x, TS: Int(t), Val: newVal, View: view}
			msg.key = msg.Key()
			log := &ReadLog{MsgKey: m.Key(), Prev: cfg.Log}
			ex.recordDisMsg(msg, i, log)
			emit(AThread{PC: e.To, Regs: cfg.Regs, View: view, Log: log}, msg)
		}
	}
	return out
}
