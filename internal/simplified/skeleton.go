package simplified

import (
	"paramra/internal/lang"
)

// Skeleton support for the makeP encoding (§4.1). The paper's procedure
// makeP non-deterministically guesses the dis threads' part of the
// computation; the Datalog program then checks that env threads can supply
// the messages the guess consumes. An implementation cannot guess, so we
// enumerate: every dis path explored by the verifier's macro-state search
// yields one skeleton. This is the ∃-semantics of Theorem 4.1 — the
// instance is unsafe iff some skeleton's query evaluates to true — restricted
// to guesses that are consistent with a reachable env supply, which loses no
// behaviours (saturation over-approximates nothing and misses nothing).

// SkeletonStep is one dis transition of a guessed dis run.
type SkeletonStep struct {
	// Dis is the index of the stepping dis thread.
	Dis int
	// Kind is the operation kind (lang.OpNop for structural steps).
	Kind lang.OpKind
	// Var is the shared variable for load/store/CAS steps.
	Var lang.VarID
	// Val is the value loaded (load) or stored (store/CAS).
	Val lang.Val
	// TS is the integer timestamp of the store/CAS slot; -1 otherwise.
	TS int
	// ReadEnv is the env message read by a load/CAS, nil when the step read
	// a dis message or performed no read.
	ReadEnv *AMsg
	// ReadDisTS is the integer timestamp of the dis message read; -1 when
	// the read was from an env message or absent.
	ReadDisTS int
	// Stored is the dis message written by a store/CAS step.
	Stored *AMsg
	// Assert marks the violating `assert false` transition.
	Assert bool
}

// Skeleton is a maximal (or assert-terminated) guessed dis run.
type Skeleton struct {
	Steps []SkeletonStep
	// Unsafe marks skeletons ending in a dis assert.
	Unsafe bool
}

// Skeletons enumerates dis-run skeletons by depth-first search over the
// macro-state space (memoized on state keys, so each macro state is expanded
// once). It returns the skeletons and whether enumeration was exhaustive
// under the maxPaths/MaxMacroStates caps.
func (v *Verifier) Skeletons(maxPaths int) ([]Skeleton, bool) {
	ex := newExec(v, nil)

	init := v.initState()
	// Saturation may already hit an env assert; skeleton consumers detect
	// that via the bad() rules, so we ignore the violation here.
	ex.saturate(init)

	var out []Skeleton
	complete := true
	seen := map[string]bool{init.key(): true}
	var path []SkeletonStep

	emit := func(unsafe bool) {
		if maxPaths > 0 && len(out) >= maxPaths {
			complete = false
			return
		}
		steps := make([]SkeletonStep, len(path))
		copy(steps, path)
		out = append(out, Skeleton{Steps: steps, Unsafe: unsafe})
	}
	// capped cuts the search off once the output cap is reached: continuing
	// to expand (and saturate) the remaining macro-state space could not
	// emit anything and is exactly the exponential part of the walk.
	capped := func() bool { return maxPaths > 0 && len(out) >= maxPaths }

	var dfs func(st *state)
	dfs = func(st *state) {
		if capped() {
			complete = false
			return
		}
		succs, viol := v.disSuccessorsTraced(st)
		if viol != nil {
			path = append(path, *viol)
			emit(true)
			path = path[:len(path)-1]
		}
		progressed := false
		for _, ts := range succs {
			if capped() {
				complete = false
				return
			}
			ex.saturate(ts.state)
			k := ts.state.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			progressed = true
			path = append(path, ts.step)
			dfs(ts.state)
			path = path[:len(path)-1]
		}
		if !progressed && viol == nil {
			emit(false)
		}
	}
	dfs(init)
	return out, complete
}

// tracedSucc pairs a successor macro state with its skeleton step.
type tracedSucc struct {
	state *state
	step  SkeletonStep
}

// disSuccessorsTraced mirrors disSuccessors but records skeleton steps. It
// returns the violating step (if a dis assert is enabled) separately.
func (v *Verifier) disSuccessorsTraced(st *state) ([]tracedSucc, *SkeletonStep) {
	var out []tracedSucc
	var viol *SkeletonStep

	emit := func(i int, th AThread, step SkeletonStep, update func(*state)) {
		ns := st.clone()
		ns.dis[i] = th
		if update != nil {
			update(ns)
		}
		out = append(out, tracedSucc{state: ns, step: step})
	}

	for i := range st.dis {
		cfg := st.dis[i]
		g := v.disCFG[i]
		for _, e := range g.Out[cfg.PC] {
			switch e.Op.Kind {
			case lang.OpNop:
				emit(i, AThread{PC: e.To, Regs: cfg.Regs, View: cfg.View, Log: cfg.Log},
					SkeletonStep{Dis: i, Kind: lang.OpNop, TS: -1, ReadDisTS: -1}, nil)

			case lang.OpAssume:
				if e.Op.E.Eval(cfg.Regs) != 0 {
					emit(i, AThread{PC: e.To, Regs: cfg.Regs, View: cfg.View, Log: cfg.Log},
						SkeletonStep{Dis: i, Kind: lang.OpAssume, TS: -1, ReadDisTS: -1}, nil)
				}

			case lang.OpAssertFail:
				if viol == nil {
					viol = &SkeletonStep{Dis: i, Kind: lang.OpAssertFail, TS: -1, ReadDisTS: -1, Assert: true}
				}

			case lang.OpAssign:
				regs := cfg.cloneRegs()
				regs[e.Op.Reg] = v.norm(e.Op.E.Eval(cfg.Regs))
				emit(i, AThread{PC: e.To, Regs: regs, View: cfg.View, Log: cfg.Log},
					SkeletonStep{Dis: i, Kind: lang.OpAssign, TS: -1, ReadDisTS: -1}, nil)

			case lang.OpLoad:
				for _, lt := range v.loadTargets(st, cfg.View, e.Op.Var, nil) {
					regs := cfg.cloneRegs()
					regs[e.Op.Reg] = lt.msg.Val
					step := SkeletonStep{
						Dis: i, Kind: lang.OpLoad, Var: e.Op.Var, Val: lt.msg.Val,
						TS: -1, ReadDisTS: -1,
					}
					if lt.msg.Env {
						m := lt.msg
						step.ReadEnv = &m
					} else {
						step.ReadDisTS = lt.msg.TS.Floor()
					}
					log := &ReadLog{MsgKey: lt.msg.Key(), Prev: cfg.Log}
					emit(i, AThread{PC: e.To, Regs: regs, View: lt.view, Log: log}, step, nil)
				}

			case lang.OpStore:
				x := e.Op.Var
				d := v.norm(e.Op.E.Eval(cfg.Regs))
				for t := 1; t <= v.budget[x]; t++ {
					if Int(t) <= cfg.View[x] || !st.mem.Free(x, t) {
						continue
					}
					view := cfg.View.Clone()
					view[x] = Int(t)
					msg := AMsg{Var: x, TS: Int(t), Val: d, View: view}
					mc := msg
					step := SkeletonStep{
						Dis: i, Kind: lang.OpStore, Var: x, Val: d, TS: t,
						ReadDisTS: -1, Stored: &mc,
					}
					emit(i, AThread{PC: e.To, Regs: cfg.Regs, View: view, Log: cfg.Log}, step,
						func(ns *state) { ns.mem.Put(msg) })
				}

			case lang.OpCASOp:
				out = v.disCASTraced(st, i, cfg, e, out)
			}
		}
	}
	return out, viol
}

// disCASTraced mirrors disCAS with skeleton-step recording.
func (v *Verifier) disCASTraced(st *state, i int, cfg AThread, e lang.Edge, out []tracedSucc) []tracedSucc {
	x := e.Op.Var
	expect := v.norm(e.Op.E.Eval(cfg.Regs))
	newVal := v.norm(e.Op.E2.Eval(cfg.Regs))

	emit := func(th AThread, msg AMsg, step SkeletonStep) {
		ns := st.clone()
		ns.dis[i] = th
		ns.mem.Put(msg)
		out = append(out, tracedSucc{state: ns, step: step})
	}

	st.mem.Each(x, func(m AMsg) {
		u := m.TS.Floor()
		if m.TS < cfg.View[x] || m.Val != expect {
			return
		}
		if u+1 > v.budget[x] || !st.mem.Free(x, u+1) {
			return
		}
		view := cfg.View.Join(m.View)
		view[x] = Int(u + 1)
		msg := AMsg{Var: x, TS: Int(u + 1), Val: newVal, View: view}
		mc := msg
		log := &ReadLog{MsgKey: m.Key(), Prev: cfg.Log}
		emit(AThread{PC: e.To, Regs: cfg.Regs, View: view, Log: log}, msg, SkeletonStep{
			Dis: i, Kind: lang.OpCASOp, Var: x, Val: newVal, TS: u + 1,
			ReadDisTS: u, Stored: &mc,
		})
	})

	for _, me := range st.env.MsgsByVar[x] {
		m := me.Msg
		if m.Val != expect {
			continue
		}
		lo := m.TS.Floor()
		if f := cfg.View[x].Floor(); f > lo {
			lo = f
		}
		for t := lo + 1; t <= v.budget[x]; t++ {
			if !st.mem.Free(x, t) {
				continue
			}
			view := cfg.View.Join(m.View)
			view[x] = Int(t)
			msg := AMsg{Var: x, TS: Int(t), Val: newVal, View: view}
			mc, rc := msg, m
			log := &ReadLog{MsgKey: m.Key(), Prev: cfg.Log}
			emit(AThread{PC: e.To, Regs: cfg.Regs, View: view, Log: log}, msg, SkeletonStep{
				Dis: i, Kind: lang.OpCASOp, Var: x, Val: newVal, TS: t,
				ReadDisTS: -1, ReadEnv: &rc, Stored: &mc,
			})
		}
	}
	return out
}
