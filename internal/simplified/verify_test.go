package simplified

import (
	"errors"
	"testing"

	"paramra/internal/lang"
)

// verify parses and runs the parameterized verifier.
func verify(t *testing.T, src string, opts Options) Result {
	t.Helper()
	sys, err := lang.ParseSystem(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	v, err := New(sys, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := v.Verify()
	if !res.Unsafe && !res.Complete {
		t.Fatalf("verification incomplete (states=%d)", res.Stats.MacroStates)
	}
	return res
}

func TestProducerConsumerUnsafe(t *testing.T) {
	res := verify(t, `
system prodcons { vars x y; domain 4; env producer; dis consumer }
thread producer {
  regs r
  r = load y; assume r == 1
  store x 2
}
thread consumer {
  regs s
  store y 1
  s = load x; assume s == 2
  assert false
}
`, Options{})
	if !res.Unsafe {
		t.Fatal("producer-consumer must be unsafe")
	}
	if res.Violation == nil || res.Violation.ByEnv {
		t.Fatalf("violation should be by the dis consumer: %+v", res.Violation)
	}
	if got := res.Violation.Log.Keys(); len(got) != 1 {
		t.Errorf("consumer read log = %v, want exactly the x=2 read", got)
	}
}

func TestNoEnvNeededStaysSafe(t *testing.T) {
	// Without the env store the consumer can never read 2.
	res := verify(t, `
system s { vars x y; domain 4; env idle; dis consumer }
thread idle { skip }
thread consumer {
  regs s
  store y 1
  s = load x; assume s == 2
  assert false
}
`, Options{})
	if res.Unsafe {
		t.Fatal("no thread writes 2: must be safe")
	}
}

// TestEnvChaining: env threads can build on each other's messages — value
// escalation through the ⁺-timestamps, needing a chain of distinct env
// threads (Figure 3's essence).
func TestEnvChaining(t *testing.T) {
	res := verify(t, `
system chain { vars x; domain 6; env inc; dis watcher }
thread inc {
  regs r
  r = load x
  store x (r + 1)
}
thread watcher {
  regs s
  s = load x; assume s == 4
  assert false
}
`, Options{})
	if !res.Unsafe {
		t.Fatal("chained env increments should reach 4")
	}
}

func TestEnvChainingBeyondDomainSafe(t *testing.T) {
	// Domain 4 means values wrap mod 4; value 4 does not exist, and assume
	// s == 5 can never hold over registers normalized into the domain.
	res := verify(t, `
system chain { vars x; domain 4; env inc; dis watcher }
thread inc {
  regs r
  r = load x
  store x (r + 1)
}
thread watcher {
  regs s
  s = load x; assume s == 5
  assert false
}
`, Options{})
	if res.Unsafe {
		t.Fatal("value 5 outside domain must be unreachable")
	}
}

// TestMessagePassingSafeParameterized: RA's causality must survive the
// abstraction — after reading the flag written by an env thread, the stale
// x=0 is unreadable because the env message's view is joined in.
func TestMessagePassingSafeParameterized(t *testing.T) {
	res := verify(t, `
system mp { vars x y; domain 2; env producer; dis consumer }
thread producer {
  store x 1
  store y 1
}
thread consumer {
  regs r1 r2
  r1 = load y; assume r1 == 1
  r2 = load x; assume r2 == 0
  assert false
}
`, Options{})
	if res.Unsafe {
		t.Fatal("MP weak behaviour leaked through the timestamp abstraction")
	}
}

// TestEnvLoadBumpsView is the soundness anchor for the ⁺-region bump: a dis
// thread that has observed a dis message at integer timestamp t and then
// loads an env message on the same variable reads a clone placed strictly
// above its view, so it can never re-read the dis message.
func TestEnvLoadBumpsView(t *testing.T) {
	res := verify(t, `
system bump { vars x; domain 6; env writer; dis reader; dis author }
thread writer {
  store x 1
}
thread author {
  store x 5
}
thread reader {
  regs a b c
  a = load x; assume a == 5
  b = load x; assume b == 1
  c = load x; assume c == 5
  assert false
}
`, Options{})
	if res.Unsafe {
		t.Fatal("re-reading a dis message after an env load on the same variable must be impossible")
	}
}

// TestEnvLoadBumpPositive: reading 5, then 1 is fine (clone above), just
// not returning to 5.
func TestEnvLoadBumpPositive(t *testing.T) {
	res := verify(t, `
system bump2 { vars x; domain 6; env writer; dis reader; dis author }
thread writer {
  store x 1
}
thread author {
  store x 5
}
thread reader {
  regs a b
  a = load x; assume a == 5
  b = load x; assume b == 1
  assert false
}
`, Options{})
	if !res.Unsafe {
		t.Fatal("env clones must remain readable above any view")
	}
}

func TestDisCASMutualExclusion(t *testing.T) {
	res := verify(t, `
system casmx { vars x a; domain 2; env idle; dis t1; dis t2 }
thread idle { skip }
thread t1 { cas x 0 1; store a 1 }
thread t2 {
  regs r
  cas x 0 1
  r = load a; assume r == 1
  assert false
}
`, Options{})
	if res.Unsafe {
		t.Fatal("two CAS(0→1) on the init message cannot both succeed")
	}
}

// TestCASOnEnvMessagesBothSucceed: infinitely many env threads supply
// infinitely many 1-valued clones, so two dis CAS(1→0) can both succeed —
// a behaviour impossible with a single writer thread.
func TestCASOnEnvMessagesBothSucceed(t *testing.T) {
	res := verify(t, `
system cassupply { vars x a; domain 2; env writer; dis t1; dis t2 }
thread writer { store x 1 }
thread t1 { cas x 1 0; store a 1 }
thread t2 {
  regs r
  cas x 1 0
  r = load a; assume r == 1
  assert false
}
`, Options{})
	if !res.Unsafe {
		t.Fatal("infinite supply of env messages must let both CAS succeed")
	}
}

func TestEnvAssertDetected(t *testing.T) {
	res := verify(t, `
system easy { vars x; domain 2; env worker }
thread worker {
  regs r
  r = load x; assume r == 0
  assert false
}
`, Options{})
	if !res.Unsafe {
		t.Fatal("env assert unreachable?")
	}
	if res.Violation == nil || !res.Violation.ByEnv {
		t.Fatalf("violation should be by env: %+v", res.Violation)
	}
}

func TestMessageGenerationGoal(t *testing.T) {
	sys := lang.MustParseSystem(`
system mg { vars x flag; domain 3; env worker }
thread worker {
  regs r
  r = load x; assume r == 0
  store flag 2
}
`)
	fl, _ := sys.VarByName("flag")
	v, err := New(sys, Options{Goal: &Goal{Var: fl, Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res := v.Verify()
	if !res.Unsafe {
		t.Fatal("goal message (flag,2) should be generatable")
	}
	if res.Violation.GoalMsg == nil || res.Violation.GoalMsg.Val != 2 {
		t.Fatalf("goal message missing: %+v", res.Violation)
	}

	v2, err := New(sys, Options{Goal: &Goal{Var: fl, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Verify().Unsafe {
		t.Fatal("goal message (flag,1) is never written")
	}
}

func TestGoalInitialValueTrivial(t *testing.T) {
	sys := lang.MustParseSystem(`
system mg { vars x; domain 2; env w }
thread w { skip }
`)
	x, _ := sys.VarByName("x")
	v, err := New(sys, Options{Goal: &Goal{Var: x, Val: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Verify().Unsafe {
		t.Fatal("initial message must satisfy the (x,0) goal")
	}
}

func TestClassRejection(t *testing.T) {
	envCAS := lang.MustParseSystem(`
system bad { vars x; domain 2; env e }
thread e { cas x 0 1 }
`)
	if _, err := New(envCAS, Options{}); !errors.Is(err, ErrEnvCAS) {
		t.Errorf("env CAS not rejected: %v", err)
	}
	disLoop := lang.MustParseSystem(`
system bad2 { vars x; domain 2; dis d }
thread d { loop { store x 1 } }
`)
	if _, err := New(disLoop, Options{}); !errors.Is(err, ErrDisCyclic) {
		t.Errorf("cyclic dis not rejected: %v", err)
	}
	invalid := &lang.System{Name: "broken"}
	if _, err := New(invalid, Options{}); err == nil {
		t.Error("invalid system not rejected")
	}
}

func TestEnvLoopsAreExact(t *testing.T) {
	// Env threads may loop freely — the saturation handles them exactly.
	res := verify(t, `
system loopy { vars x done; domain 8; env stepper; dis checker }
thread stepper {
  regs r
  loop {
    r = load x
    store x (r + 1)
  }
}
thread checker {
  regs s
  s = load x; assume s == 7
  assert false
}
`, Options{})
	if !res.Unsafe {
		t.Fatal("looping env thread should reach 7")
	}
}

func TestBudgetComputed(t *testing.T) {
	sys := lang.MustParseSystem(`
system b { vars x y; domain 2; dis d1; dis d2 }
thread d1 { store x 1; store x 1; cas y 0 1 }
thread d2 { store y 1 }
`)
	v, err := New(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := v.Budget()
	if b[0] != 2*2+2 { // two stores on x
		t.Errorf("budget x = %d, want 6", b[0])
	}
	if b[1] != 2*2+2 { // store + cas on y
		t.Errorf("budget y = %d, want 6", b[1])
	}
}

func TestStatsPopulated(t *testing.T) {
	res := verify(t, `
system s { vars x; domain 3; env w; dis d }
thread w { store x 1 }
thread d { regs r; r = load x; store x 2 }
`, Options{})
	st := res.Stats
	if st.MacroStates < 2 || st.DisTransitions < 2 || st.EnvMsgs < 1 || st.SaturationSteps < 1 {
		t.Errorf("implausible stats: %+v", st)
	}
}

func TestMaxMacroStatesLimit(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x y z; domain 4; dis a; dis b }
thread a { regs r; r = load x; store y (r+1); store z r; store x 3 }
thread b { regs q; q = load z; store x (q+2); store y 1 }
`)
	v, err := New(sys, Options{MaxMacroStates: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := v.Verify()
	if res.Unsafe {
		t.Fatal("no asserts present")
	}
	if res.Complete {
		t.Error("limited search claimed completeness")
	}
	if res.Stats.MacroStates > 5 {
		t.Errorf("macro-state cap exceeded: %d", res.Stats.MacroStates)
	}
}

// TestDisOnlyCoherence: with no env threads the simplified semantics
// degenerates to plain RA over integer timestamps; coherence must hold.
func TestDisOnlyCoherence(t *testing.T) {
	res := verify(t, `
system corr { vars x f; domain 3; dis w1; dis w2; dis t3; dis t4 }
thread w1 { store x 1 }
thread w2 { store x 2 }
thread t3 {
  regs a b
  a = load x; assume a == 1
  b = load x; assume b == 2
  store f 1
}
thread t4 {
  regs c d r
  c = load x; assume c == 2
  d = load x; assume d == 1
  r = load f; assume r == 1
  assert false
}
`, Options{})
	if res.Unsafe {
		t.Fatal("coherence violated in dis-only mode")
	}
}

// TestAbstractTimeOrder pins the encoded order 0 < 0⁺ < 1 < 1⁺ < ….
func TestAbstractTimeOrder(t *testing.T) {
	if !(Int(0) < Plus(0) && Plus(0) < Int(1) && Int(1) < Plus(1) && Plus(1) < Int(2)) {
		t.Fatal("abstract time order broken")
	}
	if Int(3).Floor() != 3 || Plus(3).Floor() != 3 {
		t.Error("Floor broken")
	}
	if Int(2).IsPlus() || !Plus(2).IsPlus() {
		t.Error("IsPlus broken")
	}
	if Plus(2).String() != "2+" || Int(2).String() != "2" {
		t.Error("String broken")
	}
}

func TestReadLogChronological(t *testing.T) {
	l := &ReadLog{MsgKey: "c", Prev: &ReadLog{MsgKey: "b", Prev: &ReadLog{MsgKey: "a"}}}
	got := l.Keys()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Keys = %v", got)
	}
	var nilLog *ReadLog
	if len(nilLog.Keys()) != 0 {
		t.Error("nil log should have no keys")
	}
}
