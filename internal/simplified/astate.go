package simplified

import (
	"paramra/internal/engine"
	"paramra/internal/lang"
)

// ReadLog is a persistent (shared-tail) list recording the messages a thread
// has loaded, most recent first. It feeds the dependency-graph analysis
// (Definition 1: depend, rc) and is excluded from state identity.
type ReadLog struct {
	MsgKey string
	Prev   *ReadLog
}

// Keys returns the read message keys in chronological order.
func (l *ReadLog) Keys() []string {
	var rev []string
	for n := l; n != nil; n = n.Prev {
		rev = append(rev, n.MsgKey)
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// AThread is a thread-local configuration of the simplified semantics.
type AThread struct {
	PC   lang.PC
	Regs []lang.Val
	View AView
	Log  *ReadLog // reads so far; not part of Key
}

// Key returns the identity of the configuration (pc, registers, view) as a
// compact injective encoding (see engine.KeyEnc).
func (c AThread) Key() string {
	enc := engine.GetKeyEnc()
	c.encodeKey(enc)
	k := enc.String()
	engine.PutKeyEnc(enc)
	return k
}

// encodeKey appends the configuration's identity to enc. Register and view
// arities are length-prefixed so configurations of different programs can
// share one key stream.
func (c AThread) encodeKey(enc *engine.KeyEnc) {
	enc.Int(int(c.PC))
	enc.Len(len(c.Regs))
	for _, r := range c.Regs {
		enc.Int(int(r))
	}
	enc.Len(len(c.View))
	for _, t := range c.View {
		enc.Int(int(t))
	}
}

func (c AThread) cloneRegs() []lang.Val {
	out := make([]lang.Val, len(c.Regs))
	copy(out, c.Regs)
	return out
}

// MsgEntry is an env message together with the read log of the env
// derivation that first produced it (genthread's reads, Definition 1), and
// the message's cached canonical key (Msg.Key(), computed once on insert).
type MsgEntry struct {
	Msg AMsg
	Log *ReadLog
	Key string
}

// EnvSet is the monotone env part of a configuration: every env thread
// configuration ever reached and every env message ever generated. The
// Infinite Supply Lemma makes these sets grow-only.
//
// Clone is copy-on-write: a clone borrows the parent's maps and slices and
// deep-copies them only on its first insertion (thaw). Most successor
// states never learn a new env fact — their clones cost one struct copy
// instead of rebuilding two maps, which the allocation profile showed was
// the second-largest allocation site of the fixpoint. The parent must be
// frozen once clones exist, which the explorers guarantee: a state's env is
// only mutated during its own saturation, before the state is admitted and
// shared.
type EnvSet struct {
	Configs map[string]AThread
	Msgs    map[string]MsgEntry
	// ConfigOrder lists config keys in insertion order. Saturation worklists
	// iterate it instead of the Configs map so that first-derivation
	// provenance (and with it witnesses and §4.3 bounds) is reproducible
	// across runs and worker counts.
	ConfigOrder []string
	// MsgsByVar indexes the env messages by shared variable for loads.
	MsgsByVar [][]MsgEntry
	// fp is an order-insensitive fingerprint (xor of per-key FNV hashes),
	// maintained incrementally; used in macro-state memoization keys.
	fp uint64
	// shared marks a copy-on-write clone still borrowing its parent's
	// storage; the first mutation thaws it.
	shared bool
}

// NewEnvSet returns an empty env set over numVars shared variables.
func NewEnvSet(numVars int) *EnvSet {
	return &EnvSet{
		Configs:   map[string]AThread{},
		Msgs:      map[string]MsgEntry{},
		MsgsByVar: make([][]MsgEntry, numVars),
	}
}

// Clone copies the set (entries themselves are immutable). The copy shares
// the parent's storage until its first insertion.
func (e *EnvSet) Clone() *EnvSet {
	c := *e
	c.shared = true
	return &c
}

// thaw makes a shared clone privately mutable: maps are rebuilt, and the
// borrowed slices are capacity-clamped so a later append reallocates
// instead of scribbling into a sibling's backing array.
func (e *EnvSet) thaw() {
	if !e.shared {
		return
	}
	cfgs := make(map[string]AThread, len(e.Configs)+1)
	for k, v := range e.Configs {
		cfgs[k] = v
	}
	e.Configs = cfgs
	msgs := make(map[string]MsgEntry, len(e.Msgs)+1)
	for k, v := range e.Msgs {
		msgs[k] = v
	}
	e.Msgs = msgs
	e.ConfigOrder = e.ConfigOrder[:len(e.ConfigOrder):len(e.ConfigOrder)]
	byVar := make([][]MsgEntry, len(e.MsgsByVar))
	for i, s := range e.MsgsByVar {
		byVar[i] = s[:len(s):len(s)]
	}
	e.MsgsByVar = byVar
	e.shared = false
}

// hashKeyTagged is FNV-1a-64 over tag ++ k, inlined so fingerprint updates
// cost no hasher allocation. The values are bit-identical to the historical
// hash/fnv implementation over the concatenated string ("c"+k / "m"+k), so
// env fingerprints — and with them macro-state keys — are unchanged.
func hashKeyTagged(tag byte, k string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(tag)
	h *= prime64
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return h
}

// AddConfig inserts a configuration; returns true if it was new.
func (e *EnvSet) AddConfig(c AThread) bool {
	_, added := e.addConfig(c)
	return added
}

// addConfig is AddConfig returning the interned config key as well, so
// saturation worklists can push it without re-encoding the configuration.
// The duplicate probe is allocation-free; the key is interned on insert.
func (e *EnvSet) addConfig(c AThread) (string, bool) {
	enc := engine.GetKeyEnc()
	defer engine.PutKeyEnc(enc)
	return e.addConfigEnc(c, enc)
}

// addConfigEnc is addConfig with a caller-supplied scratch encoder, so the
// saturation inner loop probes without touching the encoder pool.
func (e *EnvSet) addConfigEnc(c AThread, enc *engine.KeyEnc) (string, bool) {
	enc.Reset()
	c.encodeKey(enc)
	if _, ok := e.Configs[string(enc.Bytes())]; ok {
		return "", false
	}
	k := enc.String()
	e.thaw()
	e.Configs[k] = c
	e.ConfigOrder = append(e.ConfigOrder, k)
	e.fp ^= hashKeyTagged('c', k)
	return k, true
}

// AddMsg inserts an env message; returns true if it was new. The first
// derivation wins (genthread is the first thread adding the message).
func (e *EnvSet) AddMsg(m AMsg, log *ReadLog) bool {
	var buf [48]byte
	b := m.appendKey(buf[:0])
	if _, ok := e.Msgs[string(b)]; ok {
		return false
	}
	k := string(b)
	e.thaw()
	entry := MsgEntry{Msg: m, Log: log, Key: k}
	e.Msgs[k] = entry
	e.MsgsByVar[m.Var] = append(e.MsgsByVar[m.Var], entry)
	e.fp ^= hashKeyTagged('m', k)
	return true
}

// Fingerprint returns the order-insensitive content hash.
func (e *EnvSet) Fingerprint() uint64 { return e.fp }

// state is a macro-configuration of the verifier: the non-monotone dis part
// plus the monotone env part. The memory and env set are embedded by value:
// cloning a state is then one struct copy plus the dis slice, instead of four
// separate heap objects (state, dis, DisMem, EnvSet) per successor.
type state struct {
	dis []AThread
	mem DisMem
	env EnvSet
	// disInline backs dis for the common small thread counts, so clone is a
	// single allocation (the state itself). dis aliases disInline only within
	// the same state value; states are never copied wholesale (always cloned
	// via clone, which rebinds the slice).
	disInline [2]AThread
}

func (s *state) clone() *state {
	ns := &state{mem: s.mem, env: s.env}
	if len(s.dis) <= len(ns.disInline) {
		ns.dis = ns.disInline[:len(s.dis)]
	} else {
		ns.dis = make([]AThread, len(s.dis))
	}
	copy(ns.dis, s.dis)
	// The embedded copies borrow the parent's storage until first mutation
	// (see DisMem.thaw / EnvSet.thaw); the explorers freeze a state once its
	// successors exist, so the parent is never mutated afterwards.
	ns.mem.shared = true
	ns.env.shared = true
	return ns
}

// memChanged reports whether this clone's dis memory differs from its
// parent's (a Put thawed the copy-on-write borrow). Env saturation is a pure
// function of (mem, env): every derivation reads only the dis memory and the
// env set itself, never the dis threads' configurations. A successor whose
// memory is untouched therefore already sits at its parent's saturation
// fixpoint — re-saturating it derives nothing and detects no violation the
// parent's saturation would not have detected — so the explorers skip
// saturation wholesale for such successors (incremental saturation).
func (s *state) memChanged() bool { return !s.mem.shared }

// key identifies the macro-state for memoization: dis thread configurations,
// dis memory, and the env fingerprint, in one compact injective encoding.
func (s *state) key() string {
	enc := engine.GetKeyEnc()
	s.appendKey(enc)
	k := enc.String()
	engine.PutKeyEnc(enc)
	return k
}

// appendKey encodes the macro-state key into enc; hot paths probe the
// visited set with enc.Bytes() and intern only on first sight.
func (s *state) appendKey(enc *engine.KeyEnc) {
	s.appendKeyDis(enc)
	s.appendKeyMemEnv(enc)
}

// appendKeyDis encodes the dis-thread section of the key, including the
// '#' separator that precedes the memory section.
func (s *state) appendKeyDis(enc *engine.KeyEnc) {
	enc.Len(len(s.dis))
	for _, d := range s.dis {
		d.encodeKey(enc)
	}
	enc.Mark('#')
}

// appendKeyMemEnv encodes the memory + env-fingerprint suffix of the key.
// For a successor whose dis memory is untouched (memChanged false, so
// saturation was skipped and the env is untouched too) this suffix is
// byte-identical to the parent's — the expansion loops encode it once per
// parent and splice it into each such successor's key with KeyEnc.Raw.
func (s *state) appendKeyMemEnv(enc *engine.KeyEnc) {
	s.mem.encodeKey(enc)
	enc.Mark('~')
	enc.Uint64(s.env.Fingerprint())
}
