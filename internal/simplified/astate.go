package simplified

import (
	"hash/fnv"

	"paramra/internal/engine"
	"paramra/internal/lang"
)

// ReadLog is a persistent (shared-tail) list recording the messages a thread
// has loaded, most recent first. It feeds the dependency-graph analysis
// (Definition 1: depend, rc) and is excluded from state identity.
type ReadLog struct {
	MsgKey string
	Prev   *ReadLog
}

// Keys returns the read message keys in chronological order.
func (l *ReadLog) Keys() []string {
	var rev []string
	for n := l; n != nil; n = n.Prev {
		rev = append(rev, n.MsgKey)
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// AThread is a thread-local configuration of the simplified semantics.
type AThread struct {
	PC   lang.PC
	Regs []lang.Val
	View AView
	Log  *ReadLog // reads so far; not part of Key
}

// Key returns the identity of the configuration (pc, registers, view) as a
// compact injective encoding (see engine.KeyEnc).
func (c AThread) Key() string {
	enc := engine.NewKeyEnc()
	c.encodeKey(enc)
	return enc.String()
}

// encodeKey appends the configuration's identity to enc. Register and view
// arities are length-prefixed so configurations of different programs can
// share one key stream.
func (c AThread) encodeKey(enc *engine.KeyEnc) {
	enc.Int(int(c.PC))
	enc.Len(len(c.Regs))
	for _, r := range c.Regs {
		enc.Int(int(r))
	}
	enc.Len(len(c.View))
	for _, t := range c.View {
		enc.Int(int(t))
	}
}

func (c AThread) cloneRegs() []lang.Val {
	out := make([]lang.Val, len(c.Regs))
	copy(out, c.Regs)
	return out
}

// MsgEntry is an env message together with the read log of the env
// derivation that first produced it (genthread's reads, Definition 1).
type MsgEntry struct {
	Msg AMsg
	Log *ReadLog
}

// EnvSet is the monotone env part of a configuration: every env thread
// configuration ever reached and every env message ever generated. The
// Infinite Supply Lemma makes these sets grow-only.
type EnvSet struct {
	Configs map[string]AThread
	Msgs    map[string]MsgEntry
	// ConfigOrder lists config keys in insertion order. Saturation worklists
	// iterate it instead of the Configs map so that first-derivation
	// provenance (and with it witnesses and §4.3 bounds) is reproducible
	// across runs and worker counts.
	ConfigOrder []string
	// MsgsByVar indexes the env messages by shared variable for loads.
	MsgsByVar [][]MsgEntry
	// fp is an order-insensitive fingerprint (xor of per-key FNV hashes),
	// maintained incrementally; used in macro-state memoization keys.
	fp uint64
}

// NewEnvSet returns an empty env set over numVars shared variables.
func NewEnvSet(numVars int) *EnvSet {
	return &EnvSet{
		Configs:   map[string]AThread{},
		Msgs:      map[string]MsgEntry{},
		MsgsByVar: make([][]MsgEntry, numVars),
	}
}

// Clone copies the set (entries themselves are immutable).
func (e *EnvSet) Clone() *EnvSet {
	out := &EnvSet{
		Configs:     make(map[string]AThread, len(e.Configs)),
		Msgs:        make(map[string]MsgEntry, len(e.Msgs)),
		ConfigOrder: append([]string(nil), e.ConfigOrder...),
		MsgsByVar:   make([][]MsgEntry, len(e.MsgsByVar)),
		fp:          e.fp,
	}
	for k, v := range e.Configs {
		out.Configs[k] = v
	}
	for k, v := range e.Msgs {
		out.Msgs[k] = v
	}
	for i, s := range e.MsgsByVar {
		out.MsgsByVar[i] = append([]MsgEntry(nil), s...)
	}
	return out
}

func hashKey(k string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(k))
	return h.Sum64()
}

// AddConfig inserts a configuration; returns true if it was new.
func (e *EnvSet) AddConfig(c AThread) bool {
	k := c.Key()
	if _, ok := e.Configs[k]; ok {
		return false
	}
	e.Configs[k] = c
	e.ConfigOrder = append(e.ConfigOrder, k)
	e.fp ^= hashKey("c" + k)
	return true
}

// AddMsg inserts an env message; returns true if it was new. The first
// derivation wins (genthread is the first thread adding the message).
func (e *EnvSet) AddMsg(m AMsg, log *ReadLog) bool {
	k := m.Key()
	if _, ok := e.Msgs[k]; ok {
		return false
	}
	entry := MsgEntry{Msg: m, Log: log}
	e.Msgs[k] = entry
	e.MsgsByVar[m.Var] = append(e.MsgsByVar[m.Var], entry)
	e.fp ^= hashKey("m" + k)
	return true
}

// Fingerprint returns the order-insensitive content hash.
func (e *EnvSet) Fingerprint() uint64 { return e.fp }

// state is a macro-configuration of the verifier: the non-monotone dis part
// plus the monotone env part.
type state struct {
	dis []AThread
	mem *DisMem
	env *EnvSet
}

func (s *state) clone() *state {
	dis := make([]AThread, len(s.dis))
	copy(dis, s.dis)
	return &state{dis: dis, mem: s.mem.Clone(), env: s.env.Clone()}
}

// key identifies the macro-state for memoization: dis thread configurations,
// dis memory, and the env fingerprint, in one compact injective encoding.
func (s *state) key() string {
	enc := engine.NewKeyEnc()
	enc.Len(len(s.dis))
	for _, d := range s.dis {
		d.encodeKey(enc)
	}
	enc.Mark('#')
	s.mem.encodeKey(enc)
	enc.Mark('~')
	enc.Uint64(s.env.Fingerprint())
	return enc.String()
}
