// Package simplified implements the paper's simplified semantics (§3) and
// the parameterized safety verifier built on it (§4).
//
// Abstract timestamps are drawn from ℕ ⊎ ℕ⁺ ordered
//
//	0 < 0⁺ < 1 < 1⁺ < 2 < …
//
// Integer timestamps ts are used by dis threads (at most one store per
// (variable, ts)); ⁺-timestamps ts⁺ are used by env threads, and multiple
// env stores may share the same ts⁺ (§3.4, "timestamp abstraction").
//
// The Infinite Supply Lemma (Lemma 3.3) justifies two deviations from the
// concrete semantics:
//
//   - loads of env messages perform no timestamp comparison — a clone of the
//     message with an arbitrarily high timestamp within the message's region
//     always exists;
//   - after loading an env message on x, the reader's view of x moves into
//     the ⁺-region of the maximum of its old view and the message's region
//     (the clone actually read sits strictly above the reader's old view).
//
// Env thread configurations and env messages are monotone: arbitrarily many
// identical threads mean that any reachable env configuration remains
// populated forever. The verifier exploits this by saturating env behaviour
// to a fixpoint between dis transitions.
package simplified

import "strconv"

// ATime is an abstract timestamp. Encoding: integer timestamp ts is 2·ts,
// the env timestamp ts⁺ is 2·ts+1. Integer comparison then realizes the
// order 0 < 0⁺ < 1 < 1⁺ < ….
type ATime int

// Int returns the integer (dis) timestamp ts.
func Int(ts int) ATime { return ATime(2 * ts) }

// Plus returns the env timestamp ts⁺.
func Plus(ts int) ATime { return ATime(2*ts + 1) }

// IsPlus reports whether t is of the form ts⁺.
func (t ATime) IsPlus() bool { return t&1 == 1 }

// Floor returns the integer part ts of both ts and ts⁺.
func (t ATime) Floor() int { return int(t) / 2 }

// String renders the timestamp as the paper writes it.
func (t ATime) String() string {
	s := strconv.Itoa(t.Floor())
	if t.IsPlus() {
		return s + "+"
	}
	return s
}

// AView is an abstract view: per shared variable, the abstract timestamp of
// the most recent observed message.
type AView []ATime

// NewAView returns the zero view over numVars variables.
func NewAView(numVars int) AView { return make(AView, numVars) }

// Clone copies the view.
func (v AView) Clone() AView {
	out := make(AView, len(v))
	copy(out, v)
	return out
}

// Join returns the pointwise maximum of v and w.
func (v AView) Join(w AView) AView {
	out := v.Clone()
	for i, t := range w {
		if t > out[i] {
			out[i] = t
		}
	}
	return out
}

// Leq reports the pointwise order.
func (v AView) Leq(w AView) bool {
	for i, t := range v {
		if t > w[i] {
			return false
		}
	}
	return true
}

// Eq reports pointwise equality.
func (v AView) Eq(w AView) bool {
	if len(v) != len(w) {
		return false
	}
	for i, t := range v {
		if t != w[i] {
			return false
		}
	}
	return true
}

// String renders the view compactly, e.g. "⟨1,0+,2⟩".
func (v AView) String() string {
	out := "<"
	for i, t := range v {
		if i > 0 {
			out += ","
		}
		out += t.String()
	}
	return out + ">"
}
