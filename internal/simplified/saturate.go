package simplified

import (
	"paramra/internal/lang"
)

// loadTarget is a readable message together with the view the reader adopts
// and the message's canonical key (cached for env messages, computed for
// dis messages — the callers thread it into read logs).
type loadTarget struct {
	msg  AMsg
	view AView
	key  string
}

// loadTargets enumerates the messages a thread with view vw can load from
// variable x, and the resulting views:
//
//   - dis messages are timestamp-checked (vw(x) ≤ ts) and joined as in the
//     concrete semantics;
//   - env messages carry no check (Infinite Supply: some clone is high
//     enough), and the resulting view of x is bumped into the ⁺-region of
//     the join's floor — the clone actually read lies strictly above the
//     reader's previous view of x, so the reader can no longer access the
//     integer timestamp at that floor.
//
// Results are appended to buf (pass buf[:0] to reuse an exec's scratch
// across calls; the returned slice is only valid until the next reuse).
func (v *Verifier) loadTargets(st *state, vw AView, x lang.VarID, buf []loadTarget) []loadTarget {
	out := buf
	for _, m := range st.mem.VarMsgs(x) {
		if m.TS >= vw[x] {
			out = append(out, loadTarget{msg: m, view: vw.Join(m.View), key: m.Key()})
		}
	}
	for _, me := range st.env.MsgsByVar[x] {
		j := vw.Join(me.Msg.View)
		j[x] = Plus(j[x].Floor())
		out = append(out, loadTarget{msg: me.Msg, view: j, key: me.Key})
	}
	return out
}

// satPush enqueues a configuration key on the saturation worklist unless it
// is already queued. The worklist and its membership set are plain exec
// fields (not closure captures) so saturate allocates nothing per call once
// the scratch has warmed up.
func (ex *exec) satPush(k string) {
	if !ex.satInWork[k] {
		ex.satInWork[k] = true
		ex.satWork = append(ex.satWork, k)
	}
}

// satPushAll re-enqueues every configuration in ConfigOrder (after a new
// message appears, any of them may now load it).
func (ex *exec) satPushAll(st *state) {
	for _, k := range st.env.ConfigOrder {
		ex.satPush(k)
	}
}

// satAddConfig inserts a derived configuration and enqueues it if new. The
// key probe uses the exec's embedded encoder scratch.
func (ex *exec) satAddConfig(st *state, c AThread) {
	if k, added := st.env.addConfigEnc(c, &ex.enc); added {
		ex.satPush(k)
	}
}

// saturate closes the env part of st under env transitions, mutating
// st.env. It returns a non-nil Violation when an env thread can reach an
// `assert false` or generate the goal message.
func (ex *exec) saturate(st *state) *Violation {
	v := ex.v
	if v.envCFG == nil {
		return nil
	}
	// Worklist of configuration keys, seeded and re-seeded in ConfigOrder so
	// the first derivation of each config/message is the same for every run
	// and worker count (stable provenance ⇒ stable witnesses and bounds).
	// The worklist and its membership set live on the exec and are reused
	// across the successor saturations of one expansion.
	ex.satWork = ex.satWork[:0]
	if ex.satInWork == nil {
		ex.satInWork = map[string]bool{}
	} else {
		clear(ex.satInWork)
	}
	ex.satPushAll(st)

	for len(ex.satWork) > 0 {
		k := ex.satWork[len(ex.satWork)-1]
		ex.satWork = ex.satWork[:len(ex.satWork)-1]
		ex.satInWork[k] = false
		cfg, ok := st.env.Configs[k]
		if !ok {
			continue
		}
		for _, e := range v.envCFG.Out[cfg.PC] {
			ex.stats.SaturationSteps++
			switch e.Op.Kind {
			case lang.OpNop:
				ex.satAddConfig(st, AThread{PC: e.To, Regs: cfg.Regs, View: cfg.View, Log: cfg.Log})

			case lang.OpAssume:
				if e.Op.E.Eval(cfg.Regs) != 0 {
					ex.satAddConfig(st, AThread{PC: e.To, Regs: cfg.Regs, View: cfg.View, Log: cfg.Log})
				}

			case lang.OpAssertFail:
				// In Message Generation mode asserts are inert (the §4.1
				// reduction replaces them by goal stores).
				if v.opts.Goal == nil {
					return &Violation{ByEnv: true, Log: cfg.Log}
				}

			case lang.OpAssign:
				regs := cfg.cloneRegs()
				regs[e.Op.Reg] = v.norm(e.Op.E.Eval(cfg.Regs))
				ex.satAddConfig(st, AThread{PC: e.To, Regs: regs, View: cfg.View, Log: cfg.Log})

			case lang.OpLoad:
				lts := v.loadTargets(st, cfg.View, e.Op.Var, ex.ltBuf[:0])
				for _, lt := range lts {
					regs := cfg.cloneRegs()
					regs[e.Op.Reg] = lt.msg.Val
					log := &ReadLog{MsgKey: lt.key, Prev: cfg.Log}
					ex.satAddConfig(st, AThread{PC: e.To, Regs: regs, View: lt.view, Log: log})
				}
				ex.ltBuf = lts[:0]

			case lang.OpStore:
				x := e.Op.Var
				d := v.norm(e.Op.E.Eval(cfg.Regs))
				view := cfg.View.Clone()
				view[x] = Plus(cfg.View[x].Floor())
				msg := AMsg{Var: x, TS: view[x], Val: d, View: view, Env: true}
				if v.goalHit(msg) {
					mc := msg
					return &Violation{ByEnv: true, Log: cfg.Log, GoalMsg: &mc}
				}
				if st.env.AddMsg(msg, cfg.Log) {
					ex.satPushAll(st)
				}
				ex.satAddConfig(st, AThread{PC: e.To, Regs: cfg.Regs, View: view, Log: cfg.Log})

			case lang.OpCASOp:
				// Unreachable: New rejects env CAS. Kept as a defensive
				// no-op so a future caller cannot silently get wrong
				// results from a hand-built Verifier.
				continue
			}
		}
	}
	return nil
}
