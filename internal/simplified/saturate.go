package simplified

import (
	"paramra/internal/lang"
)

// loadTarget is a readable message together with the view the reader adopts.
type loadTarget struct {
	msg  AMsg
	view AView
}

// loadTargets enumerates the messages a thread with view vw can load from
// variable x, and the resulting views:
//
//   - dis messages are timestamp-checked (vw(x) ≤ ts) and joined as in the
//     concrete semantics;
//   - env messages carry no check (Infinite Supply: some clone is high
//     enough), and the resulting view of x is bumped into the ⁺-region of
//     the join's floor — the clone actually read lies strictly above the
//     reader's previous view of x, so the reader can no longer access the
//     integer timestamp at that floor.
func (v *Verifier) loadTargets(st *state, vw AView, x lang.VarID) []loadTarget {
	var out []loadTarget
	st.mem.Each(x, func(m AMsg) {
		if m.TS >= vw[x] {
			out = append(out, loadTarget{msg: m, view: vw.Join(m.View)})
		}
	})
	for _, me := range st.env.MsgsByVar[x] {
		j := vw.Join(me.Msg.View)
		j[x] = Plus(j[x].Floor())
		out = append(out, loadTarget{msg: me.Msg, view: j})
	}
	return out
}

// saturate closes the env part of st under env transitions, mutating
// st.env. It returns a non-nil Violation when an env thread can reach an
// `assert false` or generate the goal message.
func (ex *exec) saturate(st *state) *Violation {
	v := ex.v
	if v.envCFG == nil {
		return nil
	}
	// Worklist of configuration keys, seeded and re-seeded in ConfigOrder so
	// the first derivation of each config/message is the same for every run
	// and worker count (stable provenance ⇒ stable witnesses and bounds).
	var work []string
	inWork := map[string]bool{}
	push := func(k string) {
		if !inWork[k] {
			inWork[k] = true
			work = append(work, k)
		}
	}
	for _, k := range st.env.ConfigOrder {
		push(k)
	}
	// Adding a message re-enqueues every configuration, since any of them
	// may now load it.
	pushAll := func() {
		for _, k := range st.env.ConfigOrder {
			push(k)
		}
	}

	addConfig := func(c AThread) {
		if st.env.AddConfig(c) {
			push(c.Key())
		}
	}

	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[k] = false
		cfg, ok := st.env.Configs[k]
		if !ok {
			continue
		}
		for _, e := range v.envCFG.Out[cfg.PC] {
			ex.stats.SaturationSteps++
			switch e.Op.Kind {
			case lang.OpNop:
				addConfig(AThread{PC: e.To, Regs: cfg.Regs, View: cfg.View, Log: cfg.Log})

			case lang.OpAssume:
				if e.Op.E.Eval(cfg.Regs) != 0 {
					addConfig(AThread{PC: e.To, Regs: cfg.Regs, View: cfg.View, Log: cfg.Log})
				}

			case lang.OpAssertFail:
				// In Message Generation mode asserts are inert (the §4.1
				// reduction replaces them by goal stores).
				if v.opts.Goal == nil {
					return &Violation{ByEnv: true, Log: cfg.Log}
				}

			case lang.OpAssign:
				regs := cfg.cloneRegs()
				regs[e.Op.Reg] = v.norm(e.Op.E.Eval(cfg.Regs))
				addConfig(AThread{PC: e.To, Regs: regs, View: cfg.View, Log: cfg.Log})

			case lang.OpLoad:
				for _, lt := range v.loadTargets(st, cfg.View, e.Op.Var) {
					regs := cfg.cloneRegs()
					regs[e.Op.Reg] = lt.msg.Val
					log := &ReadLog{MsgKey: lt.msg.Key(), Prev: cfg.Log}
					addConfig(AThread{PC: e.To, Regs: regs, View: lt.view, Log: log})
				}

			case lang.OpStore:
				x := e.Op.Var
				d := v.norm(e.Op.E.Eval(cfg.Regs))
				view := cfg.View.Clone()
				view[x] = Plus(cfg.View[x].Floor())
				msg := AMsg{Var: x, TS: view[x], Val: d, View: view, Env: true}
				if v.goalHit(msg) {
					mc := msg
					return &Violation{ByEnv: true, Log: cfg.Log, GoalMsg: &mc}
				}
				if st.env.AddMsg(msg, cfg.Log) {
					pushAll()
				}
				addConfig(AThread{PC: e.To, Regs: cfg.Regs, View: view, Log: cfg.Log})

			case lang.OpCASOp:
				// Unreachable: New rejects env CAS. Kept as a defensive
				// no-op so a future caller cannot silently get wrong
				// results from a hand-built Verifier.
				continue
			}
		}
	}
	return nil
}
