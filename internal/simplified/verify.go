package simplified

import (
	"errors"
	"fmt"
	"time"

	"paramra/internal/engine"
	"paramra/internal/lang"
	"paramra/internal/obs"
)

// Errors returned by New.
var (
	// ErrEnvCAS rejects systems whose env threads use compare-and-swap: for
	// those, parameterized safety verification is undecidable (Theorem 1.1)
	// and the simplified semantics is not sound.
	ErrEnvCAS = errors.New("env program uses CAS: outside the decidable class (Theorem 1.1)")
	// ErrDisCyclic rejects systems with looping dis threads; the PSPACE
	// algorithm requires acyclic dis programs (§4). Use lang.UnrollSystem
	// for a bounded-model-checking under-approximation.
	ErrDisCyclic = errors.New("dis program has loops: unroll first (class requires dis(acyc))")
)

// Goal is a Message Generation query (§4.1): is a message (Var, Val, _)
// generatable? Safety verification reduces to MG by replacing `assert false`
// with a store of an otherwise-unused variable/value pair.
type Goal struct {
	Var lang.VarID
	Val lang.Val
}

// Options configures verification.
type Options struct {
	// MaxMacroStates caps the macro-state search (0 = unlimited). With
	// VerifyContext, the context deadline is the primary limit and this is
	// a secondary cap.
	MaxMacroStates int
	// ExtraSlots widens the per-variable integer-timestamp budget beyond the
	// computed 2·S_v+2 bound (useful for experiments on budget sensitivity).
	ExtraSlots int
	// Goal, when non-nil, switches from assert-reachability to the Message
	// Generation problem for the given (variable, value) pair.
	Goal *Goal
	// Workers is the number of expansion goroutines used by VerifyContext
	// (<= 0 selects GOMAXPROCS). Verdicts, witnesses and §4.3 bounds are
	// identical for every worker count (see the layered engine).
	Workers int
	// Progress, when non-nil, receives periodic engine stats snapshots
	// during VerifyContext.
	Progress func(engine.Stats)
	// Trace, when non-nil, is the parent span under which the verifier
	// records its phase spans: well-formedness (New), fixpoint,
	// init-saturate, and the engine's per-layer spans. All spans are
	// opened from sequential code, so IDs are deterministic at any
	// worker count.
	Trace *obs.Span
	// Metrics, when non-nil, receives verifier metrics (saturation
	// latencies and step counts, env-set high-water marks) on top of the
	// engine's gauges. Nil disables them at a pointer check per site.
	Metrics *obs.Registry
}

// Stats reports work done by the verifier.
type Stats struct {
	// MacroStates is the number of distinct (dis, env-fingerprint) states.
	MacroStates int
	// DisTransitions is the number of dis transitions taken.
	DisTransitions int
	// EnvConfigs / EnvMsgs are the largest env-set sizes encountered.
	EnvConfigs int
	EnvMsgs    int
	// SaturationSteps counts env transition applications across saturations.
	SaturationSteps int
}

// merge folds per-expansion stats into the run totals: counters add,
// high-water marks take the maximum.
func (s *Stats) merge(o Stats) {
	s.DisTransitions += o.DisTransitions
	s.SaturationSteps += o.SaturationSteps
	if o.EnvConfigs > s.EnvConfigs {
		s.EnvConfigs = o.EnvConfigs
	}
	if o.EnvMsgs > s.EnvMsgs {
		s.EnvMsgs = o.EnvMsgs
	}
}

// Violation describes how the safety violation (or goal message) arises.
type Violation struct {
	// ByEnv is true when an env thread fired the violating transition.
	ByEnv bool
	// DisIndex identifies the violating dis thread when ByEnv is false.
	DisIndex int
	// Log is the violating thread's read log (chronological via Keys).
	Log *ReadLog
	// GoalMsg is the generated goal message for MG queries.
	GoalMsg *AMsg
	// Env and Mem snapshot the configuration at the violation, enabling
	// dependency-graph reconstruction (the Log chains reference them).
	Env *EnvSet
	Mem *DisMem
	// DisLogs are the read logs of all dis threads at the violation.
	DisLogs []*ReadLog
	// DisMsgLogs maps dis message keys to the generating thread's read log
	// at store time together with the generating dis thread index.
	DisMsgLogs map[string]DisGen
}

// DisGen records the provenance of a dis-generated message.
type DisGen struct {
	DisIndex int
	Log      *ReadLog
}

// Result is the verification outcome.
type Result struct {
	// Unsafe is true when `assert false` is reachable (or the goal message
	// is generatable).
	Unsafe bool
	// Complete is true when the search exhausted the macro-state space.
	Complete  bool
	Stats     Stats
	Violation *Violation
	// Engine carries the engine-level counters (dedup hits, peak frontier,
	// wall time, workers) of the run.
	Engine engine.Stats
	// Err is the context error when VerifyContext was cancelled, else nil.
	Err error
}

// Verifier decides parameterized safety for systems in the class
// env(nocas) ∥ dis_1(acyc) ∥ … ∥ dis_n(acyc) under the simplified semantics.
type Verifier struct {
	sys    *lang.System
	envCFG *lang.CFG
	disCFG []*lang.CFG
	budget []int // per variable: usable integer timestamps are 1..budget[v]
	opts   Options
}

// New validates the system against the decidable class and prepares a
// verifier.
func New(sys *lang.System, opts Options) (*Verifier, error) {
	span := opts.Trace.Child("well-formedness")
	defer span.End()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	v := &Verifier{sys: sys, opts: opts}
	if sys.Env != nil {
		v.envCFG = lang.Compile(sys.Env)
		if !v.envCFG.CASFree() {
			return nil, fmt.Errorf("%s: %w", sys.Env.Name, ErrEnvCAS)
		}
	}
	nv := len(sys.Vars)
	storeSum := make([]int, nv)
	for _, d := range sys.Dis {
		g := lang.Compile(d)
		if !g.Acyclic() {
			return nil, fmt.Errorf("%s: %w", d.Name, ErrDisCyclic)
		}
		v.disCFG = append(v.disCFG, g)
		for i, n := range g.CountStores(nv) {
			storeSum[i] += n
		}
	}
	v.budget = make([]int, nv)
	maxBudget := 0
	for i := range v.budget {
		// 2·S_v + 2 integer slots: any single run's order/adjacency pattern
		// of S_v dis stores embeds into {1..2·S_v+1} (greedy: plain stores
		// leave one free slot behind them for potential CAS successors).
		v.budget[i] = 2*storeSum[i] + 2 + opts.ExtraSlots
		if v.budget[i] > maxBudget {
			maxBudget = v.budget[i]
		}
	}
	if span != nil {
		span.SetAttr("dis_threads", len(sys.Dis))
		span.SetAttr("vars", nv)
		span.SetAttr("max_ts_budget", maxBudget)
	}
	return v, nil
}

// Budget exposes the per-variable integer-timestamp budget (for tests and
// the Datalog encoder).
func (v *Verifier) Budget() []int { return append([]int(nil), v.budget...) }

func (v *Verifier) norm(val lang.Val) lang.Val {
	d := lang.Val(v.sys.Dom)
	return ((val % d) + d) % d
}

// initState builds the initial macro-state and saturates it.
func (v *Verifier) initState() *state {
	nv := len(v.sys.Vars)
	st := &state{
		mem: NewDisMem(nv, v.sys.Init),
		env: NewEnvSet(nv),
	}
	for _, g := range v.disCFG {
		st.dis = append(st.dis, AThread{
			PC:   g.Entry,
			Regs: make([]lang.Val, g.Prog.NumRegs()),
			View: NewAView(nv),
		})
	}
	if v.envCFG != nil {
		st.env.AddConfig(AThread{
			PC:   v.envCFG.Entry,
			Regs: make([]lang.Val, v.envCFG.Prog.NumRegs()),
			View: NewAView(nv),
		})
	}
	return st
}

// exec is the mutable context of one expansion: per-expansion statistics
// plus a dis-message provenance overlay. The sequential engine uses a
// single exec for the whole search (base == nil, msgLogs is the global
// map); the parallel engine gives every macro-state expansion its own exec
// whose base is the frozen global map, and merges the overlay back in
// deterministic frontier order between layers.
type exec struct {
	v     *Verifier
	stats Stats
	// msgLogs holds provenance recorded by this exec; msgOrder lists its
	// keys in recording order (so merges replay first-derivation-wins
	// deterministically).
	msgLogs  map[string]DisGen
	msgOrder []string
	// base is the read-only global provenance map (nil for the sequential
	// engine, where msgLogs is global).
	base map[string]DisGen
}

func newExec(v *Verifier, base map[string]DisGen) *exec {
	return &exec{v: v, msgLogs: map[string]DisGen{}, base: base}
}

// lookupGen resolves the provenance of a dis message key.
func (ex *exec) lookupGen(k string) DisGen {
	if g, ok := ex.msgLogs[k]; ok {
		return g
	}
	return ex.base[k]
}

// hasGen reports whether provenance for k is already recorded.
func (ex *exec) hasGen(k string) bool {
	if _, ok := ex.msgLogs[k]; ok {
		return true
	}
	_, ok := ex.base[k]
	return ok
}

// recordDisMsg stores the provenance of a dis message (first derivation
// wins, matching genthread of Definition 1).
func (ex *exec) recordDisMsg(m AMsg, disIndex int, log *ReadLog) {
	k := m.Key()
	if ex.hasGen(k) {
		return
	}
	ex.msgLogs[k] = DisGen{DisIndex: disIndex, Log: log}
	ex.msgOrder = append(ex.msgOrder, k)
}

// mergeFrom folds another exec's provenance overlay and stats into ex, in
// the donor's recording order (first derivation wins).
func (ex *exec) mergeFrom(o *exec) {
	ex.stats.merge(o.stats)
	for _, k := range o.msgOrder {
		if ex.hasGen(k) {
			continue
		}
		ex.msgLogs[k] = o.msgLogs[k]
		ex.msgOrder = append(ex.msgOrder, k)
	}
}

func (ex *exec) recordSizes(st *state) {
	if n := len(st.env.Configs); n > ex.stats.EnvConfigs {
		ex.stats.EnvConfigs = n
	}
	if n := len(st.env.Msgs); n > ex.stats.EnvMsgs {
		ex.stats.EnvMsgs = n
	}
}

// unsafeResult finalizes an UNSAFE verdict found at state st.
func (ex *exec) unsafeResult(viol *Violation, st *state) Result {
	ex.recordSizes(st)
	viol.Env = st.env
	viol.Mem = st.mem
	viol.DisMsgLogs = ex.msgLogs
	for _, d := range st.dis {
		viol.DisLogs = append(viol.DisLogs, d.Log)
	}
	return Result{Unsafe: true, Complete: true, Stats: ex.stats, Violation: viol}
}

// goalHit checks an individual message against the MG goal.
func (v *Verifier) goalHit(m AMsg) bool {
	return v.opts.Goal != nil && m.Var == v.opts.Goal.Var && m.Val == v.opts.Goal.Val
}

// checkGoalDis scans dis memory for the goal message (init messages count:
// a goal equal to the initial value is trivially generated).
func (ex *exec) checkGoalDis(st *state) *Violation {
	if ex.v.opts.Goal == nil {
		return nil
	}
	var hit *Violation
	st.mem.Each(ex.v.opts.Goal.Var, func(m AMsg) {
		if hit == nil && ex.v.goalHit(m) {
			mc := m
			gen := ex.lookupGen(m.Key())
			hit = &Violation{ByEnv: false, DisIndex: gen.DisIndex, Log: gen.Log, GoalMsg: &mc}
		}
	})
	return hit
}

// Verify runs the sequential macro-state search: saturate env behaviour,
// branch over dis transitions, repeat. It is the reference engine the
// parallel VerifyContext is differentially tested against.
func (v *Verifier) Verify() Result {
	start := time.Now()
	ex := newExec(v, nil)

	init := v.initState()
	if viol := ex.saturate(init); viol != nil {
		return v.sealSequential(ex.unsafeResult(viol, init), ex, start)
	}
	if viol := ex.checkGoalDis(init); viol != nil {
		return v.sealSequential(ex.unsafeResult(viol, init), ex, start)
	}

	seen := map[string]bool{init.key(): true}
	queue := []*state{init}
	ex.stats.MacroStates = 1
	limited := false

	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		ex.recordSizes(st)

		succs, viol := ex.disSuccessors(st)
		if viol != nil {
			return v.sealSequential(ex.unsafeResult(viol, st), ex, start)
		}
		for _, ns := range succs {
			if viol := ex.saturate(ns); viol != nil {
				return v.sealSequential(ex.unsafeResult(viol, ns), ex, start)
			}
			if viol := ex.checkGoalDis(ns); viol != nil {
				return v.sealSequential(ex.unsafeResult(viol, ns), ex, start)
			}
			k := ns.key()
			if seen[k] {
				continue
			}
			if v.opts.MaxMacroStates > 0 && ex.stats.MacroStates >= v.opts.MaxMacroStates {
				limited = true
				continue
			}
			seen[k] = true
			ex.stats.MacroStates++
			queue = append(queue, ns)
		}
	}
	res := Result{Unsafe: false, Complete: !limited, Stats: ex.stats}
	return v.sealSequential(res, ex, start)
}

// sealSequential fills the engine-stat mirror of a sequential run.
func (v *Verifier) sealSequential(res Result, ex *exec, start time.Time) Result {
	res.Engine = engine.Stats{
		States:      int64(res.Stats.MacroStates),
		Transitions: int64(res.Stats.DisTransitions),
		Wall:        time.Since(start),
		Workers:     1,
	}
	return res
}
