package simplified

import (
	"errors"
	"fmt"

	"paramra/internal/lang"
)

// Errors returned by New.
var (
	// ErrEnvCAS rejects systems whose env threads use compare-and-swap: for
	// those, parameterized safety verification is undecidable (Theorem 1.1)
	// and the simplified semantics is not sound.
	ErrEnvCAS = errors.New("env program uses CAS: outside the decidable class (Theorem 1.1)")
	// ErrDisCyclic rejects systems with looping dis threads; the PSPACE
	// algorithm requires acyclic dis programs (§4). Use lang.UnrollSystem
	// for a bounded-model-checking under-approximation.
	ErrDisCyclic = errors.New("dis program has loops: unroll first (class requires dis(acyc))")
)

// Goal is a Message Generation query (§4.1): is a message (Var, Val, _)
// generatable? Safety verification reduces to MG by replacing `assert false`
// with a store of an otherwise-unused variable/value pair.
type Goal struct {
	Var lang.VarID
	Val lang.Val
}

// Options configures verification.
type Options struct {
	// MaxMacroStates caps the macro-state search (0 = unlimited).
	MaxMacroStates int
	// ExtraSlots widens the per-variable integer-timestamp budget beyond the
	// computed 2·S_v+2 bound (useful for experiments on budget sensitivity).
	ExtraSlots int
	// Goal, when non-nil, switches from assert-reachability to the Message
	// Generation problem for the given (variable, value) pair.
	Goal *Goal
}

// Stats reports work done by the verifier.
type Stats struct {
	// MacroStates is the number of distinct (dis, env-fingerprint) states.
	MacroStates int
	// DisTransitions is the number of dis transitions taken.
	DisTransitions int
	// EnvConfigs / EnvMsgs are the largest env-set sizes encountered.
	EnvConfigs int
	EnvMsgs    int
	// SaturationSteps counts env transition applications across saturations.
	SaturationSteps int
}

// Violation describes how the safety violation (or goal message) arises.
type Violation struct {
	// ByEnv is true when an env thread fired the violating transition.
	ByEnv bool
	// DisIndex identifies the violating dis thread when ByEnv is false.
	DisIndex int
	// Log is the violating thread's read log (chronological via Keys).
	Log *ReadLog
	// GoalMsg is the generated goal message for MG queries.
	GoalMsg *AMsg
	// Env and Mem snapshot the configuration at the violation, enabling
	// dependency-graph reconstruction (the Log chains reference them).
	Env *EnvSet
	Mem *DisMem
	// DisLogs are the read logs of all dis threads at the violation.
	DisLogs []*ReadLog
	// DisMsgLogs maps dis message keys to the generating thread's read log
	// at store time together with the generating dis thread index.
	DisMsgLogs map[string]DisGen
}

// DisGen records the provenance of a dis-generated message.
type DisGen struct {
	DisIndex int
	Log      *ReadLog
}

// Result is the verification outcome.
type Result struct {
	// Unsafe is true when `assert false` is reachable (or the goal message
	// is generatable).
	Unsafe bool
	// Complete is true when the search exhausted the macro-state space.
	Complete  bool
	Stats     Stats
	Violation *Violation
}

// Verifier decides parameterized safety for systems in the class
// env(nocas) ∥ dis_1(acyc) ∥ … ∥ dis_n(acyc) under the simplified semantics.
type Verifier struct {
	sys    *lang.System
	envCFG *lang.CFG
	disCFG []*lang.CFG
	budget []int // per variable: usable integer timestamps are 1..budget[v]
	opts   Options

	// Search-global bookkeeping (reset per Verify call).
	stats   Stats
	msgLogs map[string]DisGen
}

// New validates the system against the decidable class and prepares a
// verifier.
func New(sys *lang.System, opts Options) (*Verifier, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	v := &Verifier{sys: sys, opts: opts}
	if sys.Env != nil {
		v.envCFG = lang.Compile(sys.Env)
		if !v.envCFG.CASFree() {
			return nil, fmt.Errorf("%s: %w", sys.Env.Name, ErrEnvCAS)
		}
	}
	nv := len(sys.Vars)
	storeSum := make([]int, nv)
	for _, d := range sys.Dis {
		g := lang.Compile(d)
		if !g.Acyclic() {
			return nil, fmt.Errorf("%s: %w", d.Name, ErrDisCyclic)
		}
		v.disCFG = append(v.disCFG, g)
		for i, n := range g.CountStores(nv) {
			storeSum[i] += n
		}
	}
	v.budget = make([]int, nv)
	for i := range v.budget {
		// 2·S_v + 2 integer slots: any single run's order/adjacency pattern
		// of S_v dis stores embeds into {1..2·S_v+1} (greedy: plain stores
		// leave one free slot behind them for potential CAS successors).
		v.budget[i] = 2*storeSum[i] + 2 + opts.ExtraSlots
	}
	return v, nil
}

// Budget exposes the per-variable integer-timestamp budget (for tests and
// the Datalog encoder).
func (v *Verifier) Budget() []int { return append([]int(nil), v.budget...) }

func (v *Verifier) norm(val lang.Val) lang.Val {
	d := lang.Val(v.sys.Dom)
	return ((val % d) + d) % d
}

// initState builds the initial macro-state and saturates it.
func (v *Verifier) initState() *state {
	nv := len(v.sys.Vars)
	st := &state{
		mem: NewDisMem(nv, v.sys.Init),
		env: NewEnvSet(nv),
	}
	for _, g := range v.disCFG {
		st.dis = append(st.dis, AThread{
			PC:   g.Entry,
			Regs: make([]lang.Val, g.Prog.NumRegs()),
			View: NewAView(nv),
		})
	}
	if v.envCFG != nil {
		st.env.AddConfig(AThread{
			PC:   v.envCFG.Entry,
			Regs: make([]lang.Val, v.envCFG.Prog.NumRegs()),
			View: NewAView(nv),
		})
	}
	return st
}

// Verify runs the macro-state search: saturate env behaviour, branch over
// dis transitions, repeat.
func (v *Verifier) Verify() Result {
	v.stats = Stats{}
	v.msgLogs = map[string]DisGen{}

	init := v.initState()
	if viol := v.saturate(init); viol != nil {
		return v.unsafeResult(viol, init)
	}
	if viol := v.checkGoalDis(init); viol != nil {
		return v.unsafeResult(viol, init)
	}

	seen := map[string]bool{init.key(): true}
	queue := []*state{init}
	v.stats.MacroStates = 1
	limited := false

	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		v.recordSizes(st)

		succs, viol := v.disSuccessors(st)
		if viol != nil {
			return v.unsafeResult(viol, st)
		}
		for _, ns := range succs {
			if viol := v.saturate(ns); viol != nil {
				return v.unsafeResult(viol, ns)
			}
			if viol := v.checkGoalDis(ns); viol != nil {
				return v.unsafeResult(viol, ns)
			}
			k := ns.key()
			if seen[k] {
				continue
			}
			if v.opts.MaxMacroStates > 0 && v.stats.MacroStates >= v.opts.MaxMacroStates {
				limited = true
				continue
			}
			seen[k] = true
			v.stats.MacroStates++
			queue = append(queue, ns)
		}
	}
	return Result{Unsafe: false, Complete: !limited, Stats: v.stats}
}

func (v *Verifier) recordSizes(st *state) {
	if n := len(st.env.Configs); n > v.stats.EnvConfigs {
		v.stats.EnvConfigs = n
	}
	if n := len(st.env.Msgs); n > v.stats.EnvMsgs {
		v.stats.EnvMsgs = n
	}
}

func (v *Verifier) unsafeResult(viol *Violation, st *state) Result {
	v.recordSizes(st)
	viol.Env = st.env
	viol.Mem = st.mem
	viol.DisMsgLogs = v.msgLogs
	for _, d := range st.dis {
		viol.DisLogs = append(viol.DisLogs, d.Log)
	}
	return Result{Unsafe: true, Complete: true, Stats: v.stats, Violation: viol}
}

// goalHit checks an individual message against the MG goal.
func (v *Verifier) goalHit(m AMsg) bool {
	return v.opts.Goal != nil && m.Var == v.opts.Goal.Var && m.Val == v.opts.Goal.Val
}

// checkGoalDis scans dis memory for the goal message (init messages count:
// a goal equal to the initial value is trivially generated).
func (v *Verifier) checkGoalDis(st *state) *Violation {
	if v.opts.Goal == nil {
		return nil
	}
	var hit *Violation
	st.mem.Each(v.opts.Goal.Var, func(m AMsg) {
		if hit == nil && v.goalHit(m) {
			mc := m
			gen := v.msgLogs[m.Key()]
			hit = &Violation{ByEnv: false, DisIndex: gen.DisIndex, Log: gen.Log, GoalMsg: &mc}
		}
	})
	return hit
}
