package simplified

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"paramra/internal/engine"
	"paramra/internal/lang"
	"paramra/internal/obs"
)

// Errors returned by New.
var (
	// ErrEnvCAS rejects systems whose env threads use compare-and-swap: for
	// those, parameterized safety verification is undecidable (Theorem 1.1)
	// and the simplified semantics is not sound.
	ErrEnvCAS = errors.New("env program uses CAS: outside the decidable class (Theorem 1.1)")
	// ErrDisCyclic rejects systems with looping dis threads; the PSPACE
	// algorithm requires acyclic dis programs (§4). Use lang.UnrollSystem
	// for a bounded-model-checking under-approximation.
	ErrDisCyclic = errors.New("dis program has loops: unroll first (class requires dis(acyc))")
)

// Goal is a Message Generation query (§4.1): is a message (Var, Val, _)
// generatable? Safety verification reduces to MG by replacing `assert false`
// with a store of an otherwise-unused variable/value pair.
type Goal struct {
	Var lang.VarID
	Val lang.Val
}

// Options configures verification.
type Options struct {
	// MaxMacroStates caps the macro-state search (0 = unlimited). With
	// VerifyContext, the context deadline is the primary limit and this is
	// a secondary cap.
	MaxMacroStates int
	// ExtraSlots widens the per-variable integer-timestamp budget beyond the
	// computed 2·S_v+2 bound (useful for experiments on budget sensitivity).
	ExtraSlots int
	// Goal, when non-nil, switches from assert-reachability to the Message
	// Generation problem for the given (variable, value) pair.
	Goal *Goal
	// Workers is the number of expansion goroutines used by VerifyContext
	// (<= 0 selects GOMAXPROCS). Verdicts, witnesses and §4.3 bounds are
	// identical for every worker count (see the layered engine).
	Workers int
	// Progress, when non-nil, receives periodic engine stats snapshots
	// during VerifyContext.
	Progress func(engine.Stats)
	// Trace, when non-nil, is the parent span under which the verifier
	// records its phase spans: well-formedness (New), fixpoint,
	// init-saturate, and the engine's per-layer spans. All spans are
	// opened from sequential code, so IDs are deterministic at any
	// worker count.
	Trace *obs.Span
	// Metrics, when non-nil, receives verifier metrics (saturation
	// latencies and step counts, env-set high-water marks) on top of the
	// engine's gauges. Nil disables them at a pointer check per site.
	Metrics *obs.Registry
}

// Stats reports work done by the verifier.
type Stats struct {
	// MacroStates is the number of distinct (dis, env-fingerprint) states.
	MacroStates int
	// DisTransitions is the number of dis transitions taken.
	DisTransitions int
	// EnvConfigs / EnvMsgs are the largest env-set sizes encountered.
	EnvConfigs int
	EnvMsgs    int
	// SaturationSteps counts env transition applications across saturations.
	SaturationSteps int
}

// merge folds per-expansion stats into the run totals: counters add,
// high-water marks take the maximum.
func (s *Stats) merge(o Stats) {
	s.DisTransitions += o.DisTransitions
	s.SaturationSteps += o.SaturationSteps
	if o.EnvConfigs > s.EnvConfigs {
		s.EnvConfigs = o.EnvConfigs
	}
	if o.EnvMsgs > s.EnvMsgs {
		s.EnvMsgs = o.EnvMsgs
	}
}

// Violation describes how the safety violation (or goal message) arises.
type Violation struct {
	// ByEnv is true when an env thread fired the violating transition.
	ByEnv bool
	// DisIndex identifies the violating dis thread when ByEnv is false.
	DisIndex int
	// Log is the violating thread's read log (chronological via Keys).
	Log *ReadLog
	// GoalMsg is the generated goal message for MG queries.
	GoalMsg *AMsg
	// Env and Mem snapshot the configuration at the violation, enabling
	// dependency-graph reconstruction (the Log chains reference them).
	Env *EnvSet
	Mem *DisMem
	// DisLogs are the read logs of all dis threads at the violation.
	DisLogs []*ReadLog
	// DisMsgLogs maps dis message keys to the generating thread's read log
	// at store time together with the generating dis thread index.
	DisMsgLogs map[string]DisGen
}

// DisGen records the provenance of a dis-generated message.
type DisGen struct {
	DisIndex int
	Log      *ReadLog
}

// Result is the verification outcome.
type Result struct {
	// Unsafe is true when `assert false` is reachable (or the goal message
	// is generatable).
	Unsafe bool
	// Complete is true when the search exhausted the macro-state space.
	Complete  bool
	Stats     Stats
	Violation *Violation
	// Engine carries the engine-level counters (dedup hits, peak frontier,
	// wall time, workers) of the run.
	Engine engine.Stats
	// Err is the context error when VerifyContext was cancelled, else nil.
	Err error
}

// Verifier decides parameterized safety for systems in the class
// env(nocas) ∥ dis_1(acyc) ∥ … ∥ dis_n(acyc) under the simplified semantics.
type Verifier struct {
	sys    *lang.System
	envCFG *lang.CFG
	disCFG []*lang.CFG
	budget []int // per variable: usable integer timestamps are 1..budget[v]
	opts   Options
}

// New validates the system against the decidable class and prepares a
// verifier.
func New(sys *lang.System, opts Options) (*Verifier, error) {
	span := opts.Trace.Child("well-formedness")
	defer span.End()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	v := &Verifier{sys: sys, opts: opts}
	if sys.Env != nil {
		v.envCFG = lang.Compile(sys.Env)
		if !v.envCFG.CASFree() {
			return nil, fmt.Errorf("%s: %w", sys.Env.Name, ErrEnvCAS)
		}
	}
	nv := len(sys.Vars)
	storeSum := make([]int, nv)
	for _, d := range sys.Dis {
		g := lang.Compile(d)
		if !g.Acyclic() {
			return nil, fmt.Errorf("%s: %w", d.Name, ErrDisCyclic)
		}
		v.disCFG = append(v.disCFG, g)
		for i, n := range g.CountStores(nv) {
			storeSum[i] += n
		}
	}
	v.budget = make([]int, nv)
	maxBudget := 0
	for i := range v.budget {
		// 2·S_v + 2 integer slots: any single run's order/adjacency pattern
		// of S_v dis stores embeds into {1..2·S_v+1} (greedy: plain stores
		// leave one free slot behind them for potential CAS successors).
		v.budget[i] = 2*storeSum[i] + 2 + opts.ExtraSlots
		if v.budget[i] > maxBudget {
			maxBudget = v.budget[i]
		}
	}
	if span != nil {
		span.SetAttr("dis_threads", len(sys.Dis))
		span.SetAttr("vars", nv)
		span.SetAttr("max_ts_budget", maxBudget)
	}
	return v, nil
}

// Budget exposes the per-variable integer-timestamp budget (for tests and
// the Datalog encoder).
func (v *Verifier) Budget() []int { return append([]int(nil), v.budget...) }

func (v *Verifier) norm(val lang.Val) lang.Val {
	d := lang.Val(v.sys.Dom)
	return ((val % d) + d) % d
}

// initState builds the initial macro-state and saturates it.
func (v *Verifier) initState() *state {
	nv := len(v.sys.Vars)
	st := &state{
		mem: *NewDisMem(nv, v.sys.Init),
		env: *NewEnvSet(nv),
	}
	for _, g := range v.disCFG {
		st.dis = append(st.dis, AThread{
			PC:   g.Entry,
			Regs: make([]lang.Val, g.Prog.NumRegs()),
			View: NewAView(nv),
		})
	}
	if v.envCFG != nil {
		st.env.AddConfig(AThread{
			PC:   v.envCFG.Entry,
			Regs: make([]lang.Val, v.envCFG.Prog.NumRegs()),
			View: NewAView(nv),
		})
	}
	return st
}

// exec is the mutable context of one expansion: per-expansion statistics
// plus a dis-message provenance overlay. The sequential engine uses a
// single exec for the whole search (base == nil, msgLogs is the global
// map); the parallel engine gives every macro-state expansion its own exec
// whose base is the frozen global map, and merges the overlay back in
// deterministic frontier order between layers.
type exec struct {
	v     *Verifier
	stats Stats
	// msgLogs holds provenance recorded by this exec; msgOrder lists its
	// keys in recording order (so merges replay first-derivation-wins
	// deterministically). Allocated lazily: most expansions record nothing.
	msgLogs  map[string]DisGen
	msgOrder []string
	// base is the read-only global provenance map (nil for the sequential
	// engine, where msgLogs is global).
	base map[string]DisGen
	// Reusable scratch for saturation worklists and load-target enumeration,
	// so per-successor saturations don't re-allocate them.
	satWork   []string
	satInWork map[string]bool
	ltBuf     []loadTarget
	// outBuf backs disSuccessors' result slice; it is consumed before the
	// exec is released. Successor states escape into the next layer — only
	// the slice header is recycled.
	outBuf []*state
	// sufBuf caches the parent's mem+env key suffix within one expansion
	// (see state.appendKeyMemEnv).
	sufBuf []byte
	// enc and enc2 are embedded key-encoder scratch: enc serves the
	// saturation config probes and the successor key of the expansion
	// loops, enc2 the parent key suffix. Embedding them keeps the hot
	// paths off the shared encoder pool.
	enc  engine.KeyEnc
	enc2 engine.KeyEnc
	// freeStates recycles the state structs of dedup-dropped successors:
	// most clones hit the visited set and die immediately, so reusing their
	// ~300-byte structs removes the dominant allocation of the exploration.
	// Parked structs are scrubbed of pointers (see freeState) so the list
	// never extends a dead macro-state's lifetime.
	freeStates []*state
}

func newExec(v *Verifier, base map[string]DisGen) *exec {
	return &exec{v: v, base: base}
}

// execCache recycles the per-expansion execs of one parallel run so their
// saturation scratch (worklist, membership map, load-target buffer, state
// freelist, key encoders) is reused across expansions instead of re-grown
// from zero in every one. It is a run-scoped mutex-guarded stack rather
// than a global sync.Pool on purpose: pools are emptied on every GC cycle,
// and the exploration allocates enough to cycle the GC dozens of times per
// run — each dump would force every expansion to regrow all of its scratch.
// The engine keeps a whole layer's execs live until the sequential commit
// phase, so the stack must hold up to peak-frontier execs; scoping it to
// the run releases all of them when the search returns. At one lock
// round-trip per macro-state expansion the mutex is far off the critical
// path.
type execCache struct {
	mu   sync.Mutex
	free []*exec
}

func (c *execCache) get(v *Verifier, base map[string]DisGen) *exec {
	var ex *exec
	c.mu.Lock()
	if n := len(c.free); n > 0 {
		ex = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	}
	c.mu.Unlock()
	if ex == nil {
		ex = new(exec)
	}
	ex.v, ex.base = v, base
	return ex
}

// put returns an exec to the cache after its expansion has handed off its
// overlay (see handOff). Only the parallel drivers may call it: the
// sequential engine's exec outlives the run inside Violation.DisMsgLogs.
func (c *execCache) put(ex *exec) {
	ex.stats = Stats{}
	if ex.msgLogs != nil {
		clear(ex.msgLogs)
	}
	// Zero the pointers parked in the scratch buffers: a cached exec may
	// sit idle for a while, and a stale pointer would keep a dead
	// macro-state, an interned key, or a read log alive across GC cycles.
	clear(ex.msgOrder[:cap(ex.msgOrder)])
	ex.msgOrder = ex.msgOrder[:0]
	clear(ex.satWork[:cap(ex.satWork)])
	ex.satWork = ex.satWork[:0]
	clear(ex.outBuf)
	ex.outBuf = ex.outBuf[:0]
	clear(ex.ltBuf[:cap(ex.ltBuf)])
	ex.v, ex.base = nil, nil
	c.mu.Lock()
	c.free = append(c.free, ex)
	c.mu.Unlock()
}

// handOff moves the expansion's result — stats and provenance overlay —
// onto its output and releases the exec back to the run cache. Releasing at
// the end of the expansion (not at commit) keeps the number of live execs
// bounded by the in-flight expansions, not by the layer size: the engine
// holds a whole layer's outputs until the sequential commit phase, and the
// heavyweight saturation scratch must not be held hostage with them.
func (ex *exec) handOff(o *expOut, c *execCache) {
	o.stats = ex.stats
	// Swap overlays rather than null them: a recycled output carries a
	// cleared map/order pair from its last round trip, which becomes the
	// next expansion's overlay scratch.
	o.msgLogs, ex.msgLogs = ex.msgLogs, o.msgLogs
	o.msgOrder, ex.msgOrder = ex.msgOrder, o.msgOrder
	ex.stats = Stats{}
	c.put(ex)
}

// cloneState is state.clone drawing the struct from the exec's freelist
// when possible. The dis slice reuses the recycled struct's capacity.
func (ex *exec) cloneState(s *state) *state {
	n := len(ex.freeStates)
	if n == 0 {
		return s.clone()
	}
	ns := ex.freeStates[n-1]
	ex.freeStates[n-1] = nil
	ex.freeStates = ex.freeStates[:n-1]
	ns.mem = s.mem
	ns.env = s.env
	if len(s.dis) <= len(ns.disInline) {
		ns.dis = ns.disInline[:len(s.dis)]
	} else if cap(ns.dis) >= len(s.dis) {
		ns.dis = ns.dis[:len(s.dis)]
	} else {
		ns.dis = make([]AThread, len(s.dis))
	}
	copy(ns.dis, s.dis)
	ns.mem.shared = true
	ns.env.shared = true
	return ns
}

// freeState parks a dedup-dropped successor's struct for reuse. All pointer
// fields are scrubbed first: a parked struct may idle across GC cycles, and
// a stale reference would keep the dropped state's thawed memory or env
// storage alive.
func (ex *exec) freeState(ns *state) {
	if len(ex.freeStates) >= 256 {
		return
	}
	ns.mem = DisMem{}
	ns.env = EnvSet{}
	heap := ns.dis
	ns.dis = nil
	ns.disInline = [2]AThread{}
	if len(heap) > len(ns.disInline) {
		clear(heap)
		ns.dis = heap[:0]
	}
	ex.freeStates = append(ex.freeStates, ns)
}

// lookupGen resolves the provenance of a dis message key.
func (ex *exec) lookupGen(k string) DisGen {
	if g, ok := ex.msgLogs[k]; ok {
		return g
	}
	return ex.base[k]
}

// hasGen reports whether provenance for k is already recorded.
func (ex *exec) hasGen(k string) bool {
	if _, ok := ex.msgLogs[k]; ok {
		return true
	}
	_, ok := ex.base[k]
	return ok
}

// recordDisMsg stores the provenance of a dis message (first derivation
// wins, matching genthread of Definition 1).
func (ex *exec) recordDisMsg(m AMsg, disIndex int, log *ReadLog) {
	k := m.Key()
	if ex.hasGen(k) {
		return
	}
	if ex.msgLogs == nil {
		ex.msgLogs = map[string]DisGen{}
	}
	ex.msgLogs[k] = DisGen{DisIndex: disIndex, Log: log}
	ex.msgOrder = append(ex.msgOrder, k)
}

// mergeOut folds an expansion's provenance overlay and stats into ex, in
// the donor's recording order (first derivation wins).
func (ex *exec) mergeOut(o *expOut) {
	ex.stats.merge(o.stats)
	if len(o.msgOrder) > 0 && ex.msgLogs == nil {
		ex.msgLogs = map[string]DisGen{}
	}
	for _, k := range o.msgOrder {
		if ex.hasGen(k) {
			continue
		}
		ex.msgLogs[k] = o.msgLogs[k]
		ex.msgOrder = append(ex.msgOrder, k)
	}
}

func (ex *exec) recordSizes(st *state) {
	if n := len(st.env.Configs); n > ex.stats.EnvConfigs {
		ex.stats.EnvConfigs = n
	}
	if n := len(st.env.Msgs); n > ex.stats.EnvMsgs {
		ex.stats.EnvMsgs = n
	}
}

// unsafeResult finalizes an UNSAFE verdict found at state st.
func (ex *exec) unsafeResult(viol *Violation, st *state) Result {
	ex.recordSizes(st)
	viol.Env = &st.env
	viol.Mem = &st.mem
	viol.DisMsgLogs = ex.msgLogs
	for _, d := range st.dis {
		viol.DisLogs = append(viol.DisLogs, d.Log)
	}
	return Result{Unsafe: true, Complete: true, Stats: ex.stats, Violation: viol}
}

// goalHit checks an individual message against the MG goal.
func (v *Verifier) goalHit(m AMsg) bool {
	return v.opts.Goal != nil && m.Var == v.opts.Goal.Var && m.Val == v.opts.Goal.Val
}

// checkGoalDis scans dis memory for the goal message (init messages count:
// a goal equal to the initial value is trivially generated).
func (ex *exec) checkGoalDis(st *state) *Violation {
	if ex.v.opts.Goal == nil {
		return nil
	}
	var hit *Violation
	st.mem.Each(ex.v.opts.Goal.Var, func(m AMsg) {
		if hit == nil && ex.v.goalHit(m) {
			mc := m
			gen := ex.lookupGen(m.Key())
			hit = &Violation{ByEnv: false, DisIndex: gen.DisIndex, Log: gen.Log, GoalMsg: &mc}
		}
	})
	return hit
}

// Verify runs the sequential macro-state search: saturate env behaviour,
// branch over dis transitions, repeat. It is the reference engine the
// parallel VerifyContext is differentially tested against.
func (v *Verifier) Verify() Result {
	start := time.Now()
	ex := newExec(v, nil)

	init := v.initState()
	if viol := ex.saturate(init); viol != nil {
		return v.sealSequential(ex.unsafeResult(viol, init), ex, start)
	}
	if viol := ex.checkGoalDis(init); viol != nil {
		return v.sealSequential(ex.unsafeResult(viol, init), ex, start)
	}

	seen := map[string]bool{init.key(): true}
	queue := []*state{init}
	ex.stats.MacroStates = 1
	limited := false

	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		ex.recordSizes(st)

		succs, viol := ex.disSuccessors(st)
		if viol != nil {
			return v.sealSequential(ex.unsafeResult(viol, st), ex, start)
		}
		for _, ns := range succs {
			// Saturation is skipped when the dis memory is untouched: the
			// successor inherits its parent's env fixpoint (see memChanged).
			if ns.memChanged() {
				if viol := ex.saturate(ns); viol != nil {
					return v.sealSequential(ex.unsafeResult(viol, ns), ex, start)
				}
			}
			if ns.memChanged() {
				// Pure in the dis memory: an unchanged memory has the
				// parent's (already checked, goal-free) result.
				if viol := ex.checkGoalDis(ns); viol != nil {
					return v.sealSequential(ex.unsafeResult(viol, ns), ex, start)
				}
			}
			k := ns.key()
			if seen[k] {
				ex.freeState(ns)
				continue
			}
			if v.opts.MaxMacroStates > 0 && ex.stats.MacroStates >= v.opts.MaxMacroStates {
				limited = true
				continue
			}
			seen[k] = true
			ex.stats.MacroStates++
			queue = append(queue, ns)
		}
	}
	res := Result{Unsafe: false, Complete: !limited, Stats: ex.stats}
	return v.sealSequential(res, ex, start)
}

// sealSequential fills the engine-stat mirror of a sequential run.
func (v *Verifier) sealSequential(res Result, ex *exec, start time.Time) Result {
	res.Engine = engine.Stats{
		States:      int64(res.Stats.MacroStates),
		Transitions: int64(res.Stats.DisTransitions),
		Wall:        time.Since(start),
		Workers:     1,
	}
	return res
}
