package simplified

import (
	"context"

	"paramra/internal/engine"
)

// expOut is the result of expanding one macro-state: its successors (with
// pre-computed memo keys), any violation, and the expansion's private exec
// (stats + provenance overlay) to be merged in commit order.
type expOut struct {
	succs     []*state
	keys      []string
	viol      *Violation
	violState *state
	ex        *exec
}

// VerifyContext runs the macro-state search on the layered parallel engine.
// Verdicts, witnesses, statistics and §4.3 bounds are bit-identical to the
// sequential Verify for every worker count: each layer is expanded
// concurrently against a frozen provenance map (every expansion works on a
// private overlay), then the overlays are merged and successors admitted
// sequentially in frontier order, so the first derivation of every message
// — and with it every read-log chain — is the same as in a 1-worker run.
//
// Cancellation (ctx) is the primary resource limit; Options.MaxMacroStates
// remains a secondary cap. On cancellation the partial Result carries
// Err = ctx.Err() and Complete = false.
func (v *Verifier) VerifyContext(ctx context.Context) Result {
	global := newExec(v, nil)

	init := v.initState()
	if viol := global.saturate(init); viol != nil {
		res := global.unsafeResult(viol, init)
		res.Stats.MacroStates = 1
		res.Engine = engine.Stats{States: 1, Workers: 1}
		return res
	}
	if viol := global.checkGoalDis(init); viol != nil {
		res := global.unsafeResult(viol, init)
		res.Stats.MacroStates = 1
		res.Engine = engine.Stats{States: 1, Workers: 1}
		return res
	}

	var unsafeRes *Result

	expand := func(st *state) expOut {
		// Private exec: reads the frozen global provenance, writes locally.
		// checkGoalDis never needs a same-layer sibling's record — any dis
		// message in st's memory was stored either on st's own path (already
		// merged into the global map when st was admitted in an earlier
		// layer) or by this very expansion.
		ex := newExec(v, global.msgLogs)
		o := expOut{ex: ex}
		succs, viol := ex.disSuccessors(st)
		if viol != nil {
			o.viol, o.violState = viol, st
			return o
		}
		for _, ns := range succs {
			if viol := ex.saturate(ns); viol != nil {
				o.viol, o.violState = viol, ns
				return o
			}
			if viol := ex.checkGoalDis(ns); viol != nil {
				o.viol, o.violState = viol, ns
				return o
			}
			o.succs = append(o.succs, ns)
			o.keys = append(o.keys, ns.key())
		}
		return o
	}

	commit := func(i int, st *state, o expOut, adm *engine.Admitter[*state]) any {
		global.recordSizes(st)
		global.mergeFrom(o.ex)
		// Successors discovered before a violation are admitted first: the
		// sequential loop admits each saturated successor before examining
		// the next one, so stats stay bit-identical on UNSAFE runs too.
		for j, ns := range o.succs {
			adm.Add(o.keys[j], ns)
		}
		if o.viol != nil {
			// Re-resolve provenance against the merged map so an earlier
			// commit's first derivation wins, exactly as sequentially.
			viol := o.viol
			if viol.GoalMsg != nil && !viol.ByEnv {
				gen := global.lookupGen(viol.GoalMsg.Key())
				viol.DisIndex, viol.Log = gen.DisIndex, gen.Log
			}
			r := global.unsafeResult(viol, o.violState)
			unsafeRes = &r
			return &r
		}
		return nil
	}

	out := engine.Layered(ctx, engine.Config{
		Workers:   v.opts.Workers,
		MaxStates: v.opts.MaxMacroStates,
		Progress:  v.opts.Progress,
	}, init, init.key(), expand, commit)

	if unsafeRes != nil {
		res := *unsafeRes
		res.Stats.MacroStates = int(out.Stats.States)
		res.Engine = out.Stats
		res.Engine.Transitions = int64(res.Stats.DisTransitions)
		return res
	}
	res := Result{
		Unsafe:   false,
		Complete: out.Complete,
		Stats:    global.stats,
		Err:      out.Err,
	}
	res.Stats.MacroStates = int(out.Stats.States)
	res.Engine = out.Stats
	res.Engine.Transitions = int64(res.Stats.DisTransitions)
	return res
}
