package simplified

import (
	"context"
	"runtime"
	"sync"
	"time"

	"paramra/internal/engine"
	"paramra/internal/obs"
)

// expOut is the result of expanding one macro-state: its successors (with
// pre-computed memo key bytes), any violation, and the expansion's stats and
// provenance overlay (handed off from the exec, see exec.handOff) to be
// merged in commit order.
//
// Successor keys are carried as one concatenated byte arena (keyBuf sliced
// by keyEnds) rather than interned strings: commit admits via AddBytes, so a
// key is converted to a string only when its state is genuinely new.
//
// The engine buffers a whole layer's outputs until the sequential commit
// phase, so an expOut holds only what commit genuinely needs; the heavy
// saturation scratch stays on the exec, which is released as soon as the
// expansion ends. Outputs are recycled through a run-scoped outCache so the
// arenas' capacity survives across layers.
type expOut struct {
	succs     []*state
	keyBuf    []byte
	keyEnds   []int32
	stats     Stats
	msgLogs   map[string]DisGen
	msgOrder  []string
	viol      *Violation
	violState *state
	// preDedup counts successors dropped during expansion because the seen
	// probe proved them already visited (reported via Admitter.AddDedup so
	// engine dedup totals stay identical to the unfiltered path).
	preDedup int64
}

// pushSucc appends a successor and its key bytes to the expansion output.
func (o *expOut) pushSucc(ns *state, key []byte) {
	o.succs = append(o.succs, ns)
	o.keyBuf = append(o.keyBuf, key...)
	o.keyEnds = append(o.keyEnds, int32(len(o.keyBuf)))
}

// outCache recycles expansion outputs within one run. Commit returns each
// output after consuming it, so the cache's steady-state size is the number
// of outputs the engine holds between an expansion finishing and its commit
// running — bounded by the largest frontier, but each entry is small (slice
// headers plus key bytes), unlike a full exec.
type outCache struct {
	mu   sync.Mutex
	free []*expOut
}

func (c *outCache) get() *expOut {
	c.mu.Lock()
	n := len(c.free)
	if n == 0 {
		c.mu.Unlock()
		return &expOut{}
	}
	o := c.free[n-1]
	c.free[n-1] = nil
	c.free = c.free[:n-1]
	c.mu.Unlock()
	return o
}

func (c *outCache) put(o *expOut) {
	clear(o.succs)
	o.succs = o.succs[:0]
	o.keyBuf = o.keyBuf[:0]
	o.keyEnds = o.keyEnds[:0]
	o.stats = Stats{}
	// Keep the (cleared) overlay map and order slice: handOff swaps them
	// back onto the next exec, so overlay storage round-trips between the
	// two caches instead of being reallocated per expansion.
	if o.msgLogs != nil {
		clear(o.msgLogs)
	}
	clear(o.msgOrder[:cap(o.msgOrder)])
	o.msgOrder = o.msgOrder[:0]
	o.viol, o.violState = nil, nil
	o.preDedup = 0
	c.mu.Lock()
	c.free = append(c.free, o)
	c.mu.Unlock()
}

// VerifyContext runs the macro-state search on the layered parallel engine.
// Verdicts, witnesses, statistics and §4.3 bounds are bit-identical to the
// sequential Verify for every worker count: each layer is expanded
// concurrently against a frozen provenance map (every expansion works on a
// private overlay), then the overlays are merged and successors admitted
// sequentially in frontier order, so the first derivation of every message
// — and with it every read-log chain — is the same as in a 1-worker run.
//
// Cancellation (ctx) is the primary resource limit; Options.MaxMacroStates
// remains a secondary cap. On cancellation the partial Result carries
// Err = ctx.Err() and Complete = false.
//
// Engine.Wall and Engine.Workers are populated on every return path,
// including violations found while saturating the initial state.
func (v *Verifier) VerifyContext(ctx context.Context) Result {
	start := time.Now()
	workers := v.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	span := v.opts.Trace.Child("fixpoint")
	finish := func(res Result) Result {
		if span != nil {
			span.SetAttr("macro_states", res.Stats.MacroStates)
			span.SetAttr("dis_transitions", res.Stats.DisTransitions)
			span.SetAttr("env_configs", res.Stats.EnvConfigs)
			span.SetAttr("env_msgs", res.Stats.EnvMsgs)
			span.SetAttr("saturation_steps", res.Stats.SaturationSteps)
			span.SetAttr("unsafe", res.Unsafe)
			span.SetAttr("complete", res.Complete)
			span.End()
		}
		return res
	}

	var hSat *obs.Histogram
	var gCfg, gMsgs *obs.Gauge
	if m := v.opts.Metrics; m != nil {
		hSat = m.Histogram("paramra_fixpoint_saturate_ns",
			"wall time per env-set saturation to fixpoint (ns)")
		gCfg = m.Gauge("paramra_fixpoint_env_configs",
			"high-water mark of abstract env configurations in a macro-state")
		gMsgs = m.Gauge("paramra_fixpoint_env_msgs",
			"high-water mark of abstract env messages in a macro-state")
	}
	// saturate wraps exec.saturate with an optional latency observation; it
	// is called concurrently from expansion workers (Observe is atomic).
	saturate := func(ex *exec, st *state) *Violation {
		if hSat == nil {
			return ex.saturate(st)
		}
		t0 := time.Now()
		viol := ex.saturate(st)
		hSat.Observe(int64(time.Since(t0)))
		return viol
	}

	global := newExec(v, nil)
	cache := &execCache{}
	outs := &outCache{}
	init := v.initState()

	satSpan := span.Child("init-saturate")
	initViol := saturate(global, init)
	if satSpan != nil {
		satSpan.SetAttr("env_configs", len(init.env.Configs))
		satSpan.SetAttr("env_msgs", len(init.env.Msgs))
		satSpan.End()
	}

	early := func(res Result) Result {
		res.Stats.MacroStates = 1
		res.Engine = engine.Stats{
			States:  1,
			Wall:    time.Since(start),
			Workers: workers,
		}
		return finish(res)
	}
	if initViol != nil {
		return early(global.unsafeResult(initViol, init))
	}
	if viol := global.checkGoalDis(init); viol != nil {
		return early(global.unsafeResult(viol, init))
	}

	var unsafeRes *Result

	expand := func(st *state, seen func([]byte) bool) *expOut {
		// Private exec: reads the frozen global provenance, writes locally.
		// checkGoalDis never needs a same-layer sibling's record — any dis
		// message in st's memory was stored either on st's own path (already
		// merged into the global map when st was admitted in an earlier
		// layer) or by this very expansion. The exec is released at the end
		// of this function (handOff), so the number of live execs tracks the
		// in-flight expansions, not the layer size.
		ex := cache.get(v, global.msgLogs)
		o := outs.get()
		succs, viol := ex.disSuccessors(st)
		if viol != nil {
			o.viol, o.violState = viol, st
			ex.handOff(o, cache)
			return o
		}
		enc := &ex.enc
		suffix := ex.sufBuf[:0] // parent's mem+env key suffix, filled lazily
		for _, ns := range succs {
			memChanged := ns.memChanged()
			if memChanged {
				// Successors with untouched dis memory inherit the parent's
				// env fixpoint, so their saturation is a provable no-op and
				// is skipped (see state.memChanged).
				if viol := saturate(ex, ns); viol != nil {
					o.viol, o.violState = viol, ns
					break
				}
			}
			if memChanged {
				// The goal check is pure in the dis memory: an unchanged
				// memory has the parent's (already checked, goal-free) result.
				if viol := ex.checkGoalDis(ns); viol != nil {
					o.viol, o.violState = viol, ns
					break
				}
			}
			// Byte-probe the visited set (frozen for the whole layer) after
			// the goal checks: already-admitted successors are dropped here
			// without interning a key, and commit reports them via AddDedup.
			// A seen successor can never be the first violation: it was
			// admitted (and goal-checked) in an earlier layer.
			enc.Reset()
			ns.appendKeyDis(enc)
			if memChanged {
				ns.appendKeyMemEnv(enc)
			} else {
				// Untouched memory and env: the key suffix equals the
				// parent's, encoded at most once per expansion.
				if len(suffix) == 0 {
					ex.enc2.Reset()
					st.appendKeyMemEnv(&ex.enc2)
					suffix = append(suffix, ex.enc2.Bytes()...)
				}
				enc.Raw(suffix)
			}
			if seen(enc.Bytes()) {
				o.preDedup++
				ex.freeState(ns)
				continue
			}
			o.pushSucc(ns, enc.Bytes())
		}
		ex.sufBuf = suffix[:0]
		ex.handOff(o, cache)
		return o
	}

	commit := func(i int, st *state, o *expOut, adm *engine.Admitter[*state]) any {
		global.recordSizes(st)
		global.mergeOut(o)
		adm.AddTransitions(int64(o.stats.DisTransitions))
		adm.AddDedup(o.preDedup)
		gCfg.Max(int64(global.stats.EnvConfigs))
		gMsgs.Max(int64(global.stats.EnvMsgs))
		// Successors discovered before a violation are admitted first: the
		// sequential loop admits each saturated successor before examining
		// the next one, so stats stay bit-identical on UNSAFE runs too.
		lo := int32(0)
		for j, ns := range o.succs {
			hi := o.keyEnds[j]
			adm.AddBytes(o.keyBuf[lo:hi], ns)
			lo = hi
		}
		viol, violState := o.viol, o.violState
		outs.put(o)
		if viol != nil {
			// Re-resolve provenance against the merged map so an earlier
			// commit's first derivation wins, exactly as sequentially.
			if viol.GoalMsg != nil && !viol.ByEnv {
				gen := global.lookupGen(viol.GoalMsg.Key())
				viol.DisIndex, viol.Log = gen.DisIndex, gen.Log
			}
			r := global.unsafeResult(viol, violState)
			unsafeRes = &r
			return &r
		}
		return nil
	}

	out := engine.Layered(ctx, engine.Config{
		Workers:   v.opts.Workers,
		MaxStates: v.opts.MaxMacroStates,
		Progress:  v.opts.Progress,
		Trace:     span,
		Metrics:   v.opts.Metrics,
	}, init, init.key(), expand, commit)

	if unsafeRes != nil {
		res := *unsafeRes
		res.Stats.MacroStates = int(out.Stats.States)
		res.Engine = out.Stats
		res.Engine.Transitions = int64(res.Stats.DisTransitions)
		return finish(res)
	}
	res := Result{
		Unsafe:   false,
		Complete: out.Complete,
		Stats:    global.stats,
		Err:      out.Err,
	}
	res.Stats.MacroStates = int(out.Stats.States)
	res.Engine = out.Stats
	res.Engine.Transitions = int64(res.Stats.DisTransitions)
	return finish(res)
}
