package simplified

import (
	"context"
	"runtime"
	"time"

	"paramra/internal/engine"
	"paramra/internal/obs"
)

// expOut is the result of expanding one macro-state: its successors (with
// pre-computed memo keys), any violation, and the expansion's private exec
// (stats + provenance overlay) to be merged in commit order.
type expOut struct {
	succs     []*state
	keys      []string
	viol      *Violation
	violState *state
	ex        *exec
}

// VerifyContext runs the macro-state search on the layered parallel engine.
// Verdicts, witnesses, statistics and §4.3 bounds are bit-identical to the
// sequential Verify for every worker count: each layer is expanded
// concurrently against a frozen provenance map (every expansion works on a
// private overlay), then the overlays are merged and successors admitted
// sequentially in frontier order, so the first derivation of every message
// — and with it every read-log chain — is the same as in a 1-worker run.
//
// Cancellation (ctx) is the primary resource limit; Options.MaxMacroStates
// remains a secondary cap. On cancellation the partial Result carries
// Err = ctx.Err() and Complete = false.
//
// Engine.Wall and Engine.Workers are populated on every return path,
// including violations found while saturating the initial state.
func (v *Verifier) VerifyContext(ctx context.Context) Result {
	start := time.Now()
	workers := v.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	span := v.opts.Trace.Child("fixpoint")
	finish := func(res Result) Result {
		if span != nil {
			span.SetAttr("macro_states", res.Stats.MacroStates)
			span.SetAttr("dis_transitions", res.Stats.DisTransitions)
			span.SetAttr("env_configs", res.Stats.EnvConfigs)
			span.SetAttr("env_msgs", res.Stats.EnvMsgs)
			span.SetAttr("saturation_steps", res.Stats.SaturationSteps)
			span.SetAttr("unsafe", res.Unsafe)
			span.SetAttr("complete", res.Complete)
			span.End()
		}
		return res
	}

	var hSat *obs.Histogram
	var gCfg, gMsgs *obs.Gauge
	if m := v.opts.Metrics; m != nil {
		hSat = m.Histogram("paramra_fixpoint_saturate_ns",
			"wall time per env-set saturation to fixpoint (ns)")
		gCfg = m.Gauge("paramra_fixpoint_env_configs",
			"high-water mark of abstract env configurations in a macro-state")
		gMsgs = m.Gauge("paramra_fixpoint_env_msgs",
			"high-water mark of abstract env messages in a macro-state")
	}
	// saturate wraps exec.saturate with an optional latency observation; it
	// is called concurrently from expansion workers (Observe is atomic).
	saturate := func(ex *exec, st *state) *Violation {
		if hSat == nil {
			return ex.saturate(st)
		}
		t0 := time.Now()
		viol := ex.saturate(st)
		hSat.Observe(int64(time.Since(t0)))
		return viol
	}

	global := newExec(v, nil)
	init := v.initState()

	satSpan := span.Child("init-saturate")
	initViol := saturate(global, init)
	if satSpan != nil {
		satSpan.SetAttr("env_configs", len(init.env.Configs))
		satSpan.SetAttr("env_msgs", len(init.env.Msgs))
		satSpan.End()
	}

	early := func(res Result) Result {
		res.Stats.MacroStates = 1
		res.Engine = engine.Stats{
			States:  1,
			Wall:    time.Since(start),
			Workers: workers,
		}
		return finish(res)
	}
	if initViol != nil {
		return early(global.unsafeResult(initViol, init))
	}
	if viol := global.checkGoalDis(init); viol != nil {
		return early(global.unsafeResult(viol, init))
	}

	var unsafeRes *Result

	expand := func(st *state) expOut {
		// Private exec: reads the frozen global provenance, writes locally.
		// checkGoalDis never needs a same-layer sibling's record — any dis
		// message in st's memory was stored either on st's own path (already
		// merged into the global map when st was admitted in an earlier
		// layer) or by this very expansion.
		ex := newExec(v, global.msgLogs)
		o := expOut{ex: ex}
		succs, viol := ex.disSuccessors(st)
		if viol != nil {
			o.viol, o.violState = viol, st
			return o
		}
		for _, ns := range succs {
			if viol := saturate(ex, ns); viol != nil {
				o.viol, o.violState = viol, ns
				return o
			}
			if viol := ex.checkGoalDis(ns); viol != nil {
				o.viol, o.violState = viol, ns
				return o
			}
			o.succs = append(o.succs, ns)
			o.keys = append(o.keys, ns.key())
		}
		return o
	}

	commit := func(i int, st *state, o expOut, adm *engine.Admitter[*state]) any {
		global.recordSizes(st)
		global.mergeFrom(o.ex)
		adm.AddTransitions(int64(o.ex.stats.DisTransitions))
		gCfg.Max(int64(global.stats.EnvConfigs))
		gMsgs.Max(int64(global.stats.EnvMsgs))
		// Successors discovered before a violation are admitted first: the
		// sequential loop admits each saturated successor before examining
		// the next one, so stats stay bit-identical on UNSAFE runs too.
		for j, ns := range o.succs {
			adm.Add(o.keys[j], ns)
		}
		if o.viol != nil {
			// Re-resolve provenance against the merged map so an earlier
			// commit's first derivation wins, exactly as sequentially.
			viol := o.viol
			if viol.GoalMsg != nil && !viol.ByEnv {
				gen := global.lookupGen(viol.GoalMsg.Key())
				viol.DisIndex, viol.Log = gen.DisIndex, gen.Log
			}
			r := global.unsafeResult(viol, o.violState)
			unsafeRes = &r
			return &r
		}
		return nil
	}

	out := engine.Layered(ctx, engine.Config{
		Workers:   v.opts.Workers,
		MaxStates: v.opts.MaxMacroStates,
		Progress:  v.opts.Progress,
		Trace:     span,
		Metrics:   v.opts.Metrics,
	}, init, init.key(), expand, commit)

	if unsafeRes != nil {
		res := *unsafeRes
		res.Stats.MacroStates = int(out.Stats.States)
		res.Engine = out.Stats
		res.Engine.Transitions = int64(res.Stats.DisTransitions)
		return finish(res)
	}
	res := Result{
		Unsafe:   false,
		Complete: out.Complete,
		Stats:    global.stats,
		Err:      out.Err,
	}
	res.Stats.MacroStates = int(out.Stats.States)
	res.Engine = out.Stats
	res.Engine.Transitions = int64(res.Stats.DisTransitions)
	return finish(res)
}
