package simplified

import (
	"context"

	"paramra/internal/engine"
	"paramra/internal/lang"
)

// Inventory computes the full Message Generation relation: every
// (variable, value) pair for which some reachable configuration of the
// simplified semantics contains a message. Asserts are inert during the
// computation (as in MG mode); the boolean reports search completeness.
//
// Inventory answers all MG queries of §4.1 at once; per-pair Goal queries
// agree with it (cross-checked in the tests).
func (v *Verifier) Inventory() (map[lang.VarID]map[lang.Val]bool, Stats, bool) {
	return v.InventoryContext(context.Background())
}

// InventoryContext is Inventory under a context: cancellation stops the
// search and reports it incomplete. The search runs on the layered parallel
// engine with Options.Workers expansion goroutines.
func (v *Verifier) InventoryContext(ctx context.Context) (map[lang.VarID]map[lang.Val]bool, Stats, bool) {
	// Force MG mode with an unreachable goal so asserts are inert and the
	// search never exits early. The engine's expand goroutines only read
	// opts, so the temporary mutation is race-free.
	savedGoal := v.opts.Goal
	v.opts.Goal = &Goal{Var: 0, Val: -1}
	defer func() { v.opts.Goal = savedGoal }()

	inv := make(map[lang.VarID]map[lang.Val]bool, len(v.sys.Vars))
	for i := range v.sys.Vars {
		inv[lang.VarID(i)] = map[lang.Val]bool{}
	}
	record := func(st *state) {
		for vi := range st.mem.ByVar {
			st.mem.Each(lang.VarID(vi), func(m AMsg) {
				inv[m.Var][m.Val] = true
			})
		}
		for _, me := range st.env.Msgs {
			inv[me.Msg.Var][me.Msg.Val] = true
		}
	}

	global := newExec(v, nil)
	init := v.initState()
	global.saturate(init)
	record(init)

	expand := func(st *state) expOut {
		ex := newExec(v, global.msgLogs)
		o := expOut{ex: ex}
		succs, _ := ex.disSuccessors(st)
		for _, ns := range succs {
			ex.saturate(ns)
			o.succs = append(o.succs, ns)
			o.keys = append(o.keys, ns.key())
		}
		return o
	}
	commit := func(i int, st *state, o expOut, adm *engine.Admitter[*state]) any {
		global.recordSizes(st)
		global.mergeFrom(o.ex)
		adm.AddTransitions(int64(o.ex.stats.DisTransitions))
		for j, ns := range o.succs {
			if adm.Add(o.keys[j], ns) {
				record(ns)
			}
		}
		return nil
	}

	out := engine.Layered(ctx, engine.Config{
		Workers:   v.opts.Workers,
		MaxStates: v.opts.MaxMacroStates,
		Progress:  v.opts.Progress,
		Trace:     v.opts.Trace,
		SpanName:  "inventory",
		Metrics:   v.opts.Metrics,
	}, init, init.key(), expand, commit)

	stats := global.stats
	stats.MacroStates = int(out.Stats.States)
	return inv, stats, out.Complete
}
