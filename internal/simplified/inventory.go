package simplified

import (
	"context"

	"paramra/internal/engine"
	"paramra/internal/lang"
)

// Inventory computes the full Message Generation relation: every
// (variable, value) pair for which some reachable configuration of the
// simplified semantics contains a message. Asserts are inert during the
// computation (as in MG mode); the boolean reports search completeness.
//
// Inventory answers all MG queries of §4.1 at once; per-pair Goal queries
// agree with it (cross-checked in the tests).
func (v *Verifier) Inventory() (map[lang.VarID]map[lang.Val]bool, Stats, bool) {
	return v.InventoryContext(context.Background())
}

// InventoryContext is Inventory under a context: cancellation stops the
// search and reports it incomplete. The search runs on the layered parallel
// engine with Options.Workers expansion goroutines.
func (v *Verifier) InventoryContext(ctx context.Context) (map[lang.VarID]map[lang.Val]bool, Stats, bool) {
	// Force MG mode with an unreachable goal so asserts are inert and the
	// search never exits early. The engine's expand goroutines only read
	// opts, so the temporary mutation is race-free.
	savedGoal := v.opts.Goal
	v.opts.Goal = &Goal{Var: 0, Val: -1}
	defer func() { v.opts.Goal = savedGoal }()

	inv := make(map[lang.VarID]map[lang.Val]bool, len(v.sys.Vars))
	for i := range v.sys.Vars {
		inv[lang.VarID(i)] = map[lang.Val]bool{}
	}
	record := func(st *state) {
		for vi := 0; vi < st.mem.NumVars(); vi++ {
			st.mem.Each(lang.VarID(vi), func(m AMsg) {
				inv[m.Var][m.Val] = true
			})
		}
		for _, me := range st.env.Msgs {
			inv[me.Msg.Var][me.Msg.Val] = true
		}
	}

	global := newExec(v, nil)
	cache := &execCache{}
	outs := &outCache{}
	init := v.initState()
	global.saturate(init)
	record(init)

	expand := func(st *state, seen func([]byte) bool) *expOut {
		ex := cache.get(v, global.msgLogs)
		o := outs.get()
		succs, _ := ex.disSuccessors(st)
		enc := &ex.enc
		suffix := ex.sufBuf[:0] // parent's mem+env key suffix, filled lazily
		for _, ns := range succs {
			memChanged := ns.memChanged()
			if memChanged {
				ex.saturate(ns)
			}
			// Byte-probe the frozen visited set: successors already admitted
			// in an earlier layer are dropped before their key is interned.
			enc.Reset()
			ns.appendKeyDis(enc)
			if memChanged {
				ns.appendKeyMemEnv(enc)
			} else {
				// Untouched memory and env: reuse the parent's key suffix.
				if len(suffix) == 0 {
					ex.enc2.Reset()
					st.appendKeyMemEnv(&ex.enc2)
					suffix = append(suffix, ex.enc2.Bytes()...)
				}
				enc.Raw(suffix)
			}
			if seen(enc.Bytes()) {
				o.preDedup++
				ex.freeState(ns)
				continue
			}
			o.pushSucc(ns, enc.Bytes())
		}
		ex.sufBuf = suffix[:0]
		ex.handOff(o, cache)
		return o
	}
	commit := func(i int, st *state, o *expOut, adm *engine.Admitter[*state]) any {
		global.recordSizes(st)
		global.mergeOut(o)
		adm.AddTransitions(int64(o.stats.DisTransitions))
		adm.AddDedup(o.preDedup)
		lo := int32(0)
		for j, ns := range o.succs {
			hi := o.keyEnds[j]
			if adm.AddBytes(o.keyBuf[lo:hi], ns) {
				record(ns)
			}
			lo = hi
		}
		outs.put(o)
		return nil
	}

	out := engine.Layered(ctx, engine.Config{
		Workers:   v.opts.Workers,
		MaxStates: v.opts.MaxMacroStates,
		Progress:  v.opts.Progress,
		Trace:     v.opts.Trace,
		SpanName:  "inventory",
		Metrics:   v.opts.Metrics,
	}, init, init.key(), expand, commit)

	stats := global.stats
	stats.MacroStates = int(out.Stats.States)
	return inv, stats, out.Complete
}
