package simplified

import (
	"paramra/internal/lang"
)

// Inventory computes the full Message Generation relation: every
// (variable, value) pair for which some reachable configuration of the
// simplified semantics contains a message. Asserts are inert during the
// computation (as in MG mode); the boolean reports search completeness.
//
// Inventory answers all MG queries of §4.1 at once; per-pair Goal queries
// agree with it (cross-checked in the tests).
func (v *Verifier) Inventory() (map[lang.VarID]map[lang.Val]bool, Stats, bool) {
	v.stats = Stats{}
	v.msgLogs = map[string]DisGen{}
	// Force MG mode with an unreachable goal so asserts are inert and the
	// search never exits early.
	savedGoal := v.opts.Goal
	v.opts.Goal = &Goal{Var: 0, Val: -1}
	defer func() { v.opts.Goal = savedGoal }()

	inv := make(map[lang.VarID]map[lang.Val]bool, len(v.sys.Vars))
	for i := range v.sys.Vars {
		inv[lang.VarID(i)] = map[lang.Val]bool{}
	}
	record := func(st *state) {
		for vi := range st.mem.ByVar {
			st.mem.Each(lang.VarID(vi), func(m AMsg) {
				inv[m.Var][m.Val] = true
			})
		}
		for _, me := range st.env.Msgs {
			inv[me.Msg.Var][me.Msg.Val] = true
		}
	}

	init := v.initState()
	v.saturate(init)
	record(init)

	seen := map[string]bool{init.key(): true}
	queue := []*state{init}
	v.stats.MacroStates = 1
	complete := true

	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		succs, _ := v.disSuccessors(st)
		for _, ns := range succs {
			v.saturate(ns)
			k := ns.key()
			if seen[k] {
				continue
			}
			if v.opts.MaxMacroStates > 0 && v.stats.MacroStates >= v.opts.MaxMacroStates {
				complete = false
				continue
			}
			seen[k] = true
			v.stats.MacroStates++
			record(ns)
			queue = append(queue, ns)
		}
	}
	return inv, v.stats, complete
}
