package simplified

import (
	"testing"

	"paramra/internal/lang"
)

// propertyCorpus is a small set of systems spanning safe/unsafe and
// env/dis interaction shapes, used by the semantic property tests below.
func propertyCorpus() map[string]string {
	return map[string]string{
		"prodcons": `
system s { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`,
		"mp-safe": `
system s { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`,
		"cas-supply": `
system s { vars x a; domain 2; env w; dis t1; dis t2 }
thread w { store x 1 }
thread t1 { cas x 1 0; store a 1 }
thread t2 { regs r; cas x 1 0; r = load a; assume r == 1; assert false }
`,
		"chain": `
system s { vars x; domain 5; env inc; dis w }
thread inc { regs r; r = load x; store x (r + 1) }
thread w { regs s; s = load x; assume s == 3; assert false }
`,
		"dis-stores": `
system s { vars x y; domain 3; env e; dis d1; dis d2 }
thread e { regs r; r = load x; assume r == 2; store y 1 }
thread d1 { store x 1; store x 2 }
thread d2 { regs q; q = load y; assume q == 1; assert false }
`,
	}
}

// TestBudgetStability: widening the integer-timestamp budget must never
// change the verdict — the computed 2·S_v+2 bound is claimed sufficient, so
// extra slots can only add isomorphic placements.
func TestBudgetStability(t *testing.T) {
	for name, src := range propertyCorpus() {
		sys := lang.MustParseSystem(src)
		var base *Result
		for _, extra := range []int{0, 1, 3} {
			v, err := New(sys, Options{ExtraSlots: extra})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			res := v.Verify()
			if !res.Unsafe && !res.Complete {
				t.Fatalf("%s extra=%d: incomplete", name, extra)
			}
			if base == nil {
				r := res
				base = &r
				continue
			}
			if res.Unsafe != base.Unsafe {
				t.Errorf("%s: verdict changed with budget +%d: %v vs %v",
					name, extra, res.Unsafe, base.Unsafe)
			}
		}
	}
}

// TestAssertToGoalEquivalence validates the §4.1 reduction: safety
// verification and Message Generation on the transformed system agree.
func TestAssertToGoalEquivalence(t *testing.T) {
	for name, src := range propertyCorpus() {
		sys := lang.MustParseSystem(src)
		v, err := New(sys, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		direct := v.Verify()

		mgSys, goalVar, goalVal := lang.AssertsToGoal(sys)
		if err := mgSys.Validate(); err != nil {
			t.Fatalf("%s: transformed system invalid: %v", name, err)
		}
		mv, err := New(mgSys, Options{Goal: &Goal{Var: goalVar, Val: goalVal}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mg := mv.Verify()
		if direct.Unsafe != mg.Unsafe {
			t.Errorf("%s: assert-mode %v but MG-mode %v (§4.1 reduction broken)",
				name, direct.Unsafe, mg.Unsafe)
		}
	}
}

// TestVerifyIdempotent: repeated verification of the same system gives the
// same verdict and statistics (the search is deterministic).
func TestVerifyIdempotent(t *testing.T) {
	src := propertyCorpus()["dis-stores"]
	sys := lang.MustParseSystem(src)
	var first *Result
	for i := 0; i < 3; i++ {
		v, err := New(sys, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := v.Verify()
		if first == nil {
			r := res
			first = &r
			continue
		}
		if res.Unsafe != first.Unsafe || res.Stats.MacroStates != first.Stats.MacroStates {
			t.Fatalf("run %d differs: %+v vs %+v", i, res.Stats, first.Stats)
		}
	}
}

// TestSkeletonVerdictAgreement: the skeleton enumeration must contain an
// unsafe skeleton exactly when the verifier reports unsafe.
func TestSkeletonVerdictAgreement(t *testing.T) {
	for name, src := range propertyCorpus() {
		sys := lang.MustParseSystem(src)
		if sys.Env == nil || len(sys.Dis) == 0 {
			continue
		}
		v1, err := New(sys, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := v1.Verify().Unsafe

		v2, err := New(sys, Options{})
		if err != nil {
			t.Fatal(err)
		}
		skels, complete := v2.Skeletons(100_000)
		if !complete {
			t.Fatalf("%s: skeletons incomplete", name)
		}
		anyUnsafe := false
		for _, sk := range skels {
			if sk.Unsafe {
				anyUnsafe = true
			}
		}
		// Env-side asserts are not flagged on skeletons; only check the
		// dis-assert cases here.
		if anyUnsafe && !want {
			t.Errorf("%s: unsafe skeleton for a safe system", name)
		}
		if want && !anyUnsafe {
			// The violation must then be env-side; re-check.
			if res := mustVerify(t, sys); res.Violation == nil || !res.Violation.ByEnv {
				t.Errorf("%s: verifier unsafe but no unsafe skeleton and not env-side", name)
			}
		}
	}
}

func mustVerify(t *testing.T, sys *lang.System) Result {
	t.Helper()
	v, err := New(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return v.Verify()
}

// TestEnvSetFingerprintOrderInsensitive: the incremental fingerprint must
// not depend on insertion order.
func TestEnvSetFingerprintOrderInsensitive(t *testing.T) {
	mk := func(order []int) *EnvSet {
		e := NewEnvSet(1)
		msgs := []AMsg{
			{Var: 0, TS: Plus(0), Val: 1, View: AView{Plus(0)}, Env: true},
			{Var: 0, TS: Plus(1), Val: 0, View: AView{Plus(1)}, Env: true},
			{Var: 0, TS: Plus(2), Val: 1, View: AView{Plus(2)}, Env: true},
		}
		for _, i := range order {
			e.AddMsg(msgs[i], nil)
		}
		return e
	}
	a := mk([]int{0, 1, 2})
	b := mk([]int{2, 0, 1})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on insertion order")
	}
	c := mk([]int{0, 1})
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different sets share a fingerprint")
	}
	// Duplicates must not perturb the fingerprint.
	d := mk([]int{0, 1, 2})
	d.AddMsg(AMsg{Var: 0, TS: Plus(0), Val: 1, View: AView{Plus(0)}, Env: true}, nil)
	if a.Fingerprint() != d.Fingerprint() {
		t.Error("duplicate insertion changed the fingerprint")
	}
}

// TestCloneIsolation: mutating a cloned env set or memory must not affect
// the original (the macro-state search depends on this).
func TestCloneIsolation(t *testing.T) {
	e := NewEnvSet(2)
	e.AddMsg(AMsg{Var: 0, TS: Plus(0), Val: 1, View: AView{Plus(0), Int(0)}, Env: true}, nil)
	e.AddConfig(AThread{PC: 1, Regs: []lang.Val{0}, View: NewAView(2)})
	c := e.Clone()
	c.AddMsg(AMsg{Var: 1, TS: Plus(0), Val: 1, View: AView{Int(0), Plus(0)}, Env: true}, nil)
	c.AddConfig(AThread{PC: 2, Regs: []lang.Val{1}, View: NewAView(2)})
	if len(e.Msgs) != 1 || len(e.Configs) != 1 {
		t.Error("clone mutation leaked into the original env set")
	}
	if e.Fingerprint() == c.Fingerprint() {
		t.Error("clone fingerprint not updated")
	}

	m := NewDisMem(2, 0)
	mc := m.Clone()
	mc.Put(AMsg{Var: 0, TS: Int(1), Val: 1, View: AView{Int(1), Int(0)}})
	if !m.Free(0, 1) {
		t.Error("clone mutation leaked into the original memory")
	}
}
