package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"paramra/internal/obs"
)

// postTraced sends a JSON verification request with trace headers set and
// returns the response status, body, and echoed X-Trace-Id header.
func postTraced(t *testing.T, url, traceID string, wantTree bool, req any) (int, []byte, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, _ := http.NewRequest("POST", url, bytes.NewReader(body))
	hr.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		hr.Header.Set("X-Trace-Id", traceID)
	}
	if wantTree {
		hr.Header.Set("X-Trace", "1")
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header.Get("X-Trace-Id")
}

// TestTraceIDRoundTrip pins the end-to-end propagation contract: a client's
// X-Trace-Id comes back in the response header, the success envelope, and
// the access log line of that request.
func TestTraceIDRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	syncW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	_, ts := newTestServer(t, Config{AccessLog: syncW})
	status, body, echoed := postTraced(t, ts.URL+"/v1/verify", "trace-roundtrip-1", false, VerifyRequest{System: sysSafe})
	if status != http.StatusOK {
		t.Fatalf("verify: %d %s", status, body)
	}
	if echoed != "trace-roundtrip-1" {
		t.Errorf("X-Trace-Id echoed %q", echoed)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.TraceID != "trace-roundtrip-1" {
		t.Errorf("envelope traceId = %q", vr.TraceID)
	}
	if vr.Trace != nil {
		t.Error("span tree included without the X-Trace opt-in")
	}
	mu.Lock()
	line := buf.String()
	mu.Unlock()
	if !strings.Contains(line, "trace-roundtrip-1") {
		t.Errorf("access log missing the trace ID: %q", line)
	}
}

// TestTraceIDGenerated pins the fallback: requests without X-Trace-Id get a
// generated, unique ID that still reaches header and envelope.
func TestTraceIDGenerated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		status, body, echoed := postTraced(t, ts.URL+"/v1/verify", "", false, VerifyRequest{System: sysSafe})
		if status != http.StatusOK {
			t.Fatalf("verify: %d %s", status, body)
		}
		if echoed == "" || seen[echoed] {
			t.Fatalf("generated trace ID %q empty or repeated", echoed)
		}
		seen[echoed] = true
		var vr VerifyResponse
		if err := json.Unmarshal(body, &vr); err != nil {
			t.Fatal(err)
		}
		if vr.TraceID != echoed {
			t.Errorf("envelope traceId %q != header %q", vr.TraceID, echoed)
		}
	}
}

// TestTraceIDOversizedReplaced pins that an abusive kilobyte-long trace ID
// is replaced rather than echoed.
func TestTraceIDOversizedReplaced(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	long := strings.Repeat("t", 1024)
	status, body, echoed := postTraced(t, ts.URL+"/v1/verify", long, false, VerifyRequest{System: sysSafe})
	if status != http.StatusOK {
		t.Fatalf("verify: %d %s", status, body)
	}
	if echoed == long || echoed == "" {
		t.Errorf("oversized trace ID echoed back (len %d)", len(echoed))
	}
}

// TestTraceEnvelopeSpans pins the opt-in span tree: with "X-Trace: 1" the
// success envelope carries the request's span tree, rooted at the library's
// verify span.
func TestTraceEnvelopeSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := postTraced(t, ts.URL+"/v1/verify", "trace-tree-1", true, VerifyRequest{System: sysSafe})
	if status != http.StatusOK {
		t.Fatalf("verify: %d %s", status, body)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Trace == nil || vr.Trace.Error != "" {
		t.Fatalf("trace = %+v", vr.Trace)
	}
	if len(vr.Trace.Spans) == 0 || vr.Trace.Spans[0].Name != "verify" {
		t.Fatalf("span tree roots = %+v", vr.Trace.Spans)
	}
	names := map[string]bool{}
	obs.WalkTree(vr.Trace.Spans, func(n *obs.TreeNode) {
		names[n.Name] = true
		if n.DurNs < 0 || n.StartNs < 0 {
			t.Errorf("span %q has negative timing: start=%d dur=%d", n.Name, n.StartNs, n.DurNs)
		}
	})
	// The default config runs the prepass before the fixpoint search.
	if !names["prepass"] {
		t.Errorf("span tree missing the prepass phase: %v", names)
	}
}

// TestErrorEnvelopeTraceID pins the trace ID on the error path, including
// the panic-recovery 500.
func TestErrorEnvelopeTraceID(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.mux.HandleFunc("GET /traceboom", func(http.ResponseWriter, *http.Request) {
		panic("traced kaboom")
	})

	// Parse error.
	status, body, _ := postTraced(t, ts.URL+"/v1/verify", "trace-err-1", false, VerifyRequest{System: "not a system"})
	er := wantError(t, status, body, http.StatusBadRequest, CodeParseError, "")
	if er.TraceID != "trace-err-1" {
		t.Errorf("parse-error traceId = %q", er.TraceID)
	}

	// Panic-recovery 500.
	hr, _ := http.NewRequest("GET", ts.URL+"/traceboom", nil)
	hr.Header.Set("X-Trace-Id", "trace-err-2")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	var per ErrorResponse
	derr := json.NewDecoder(resp.Body).Decode(&per)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || derr != nil {
		t.Fatalf("panic response: status=%d decode=%v", resp.StatusCode, derr)
	}
	if per.TraceID != "trace-err-2" || per.RequestID == "" {
		t.Errorf("panic envelope ids: traceId=%q requestId=%q", per.TraceID, per.RequestID)
	}
}

// TestSlowRingCapture pins /debug/slow: with the threshold at its floor,
// every verification lands in the ring with its trace ID, status, and a
// per-phase span breakdown.
func TestSlowRingCapture(t *testing.T) {
	_, ts := newTestServer(t, Config{SlowThreshold: time.Nanosecond})
	status, body, _ := postTraced(t, ts.URL+"/v1/verify", "trace-slow-1", false, VerifyRequest{System: sysSafe})
	if status != http.StatusOK {
		t.Fatalf("verify: %d %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	var sr SlowResponse
	derr := json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || derr != nil {
		t.Fatalf("/debug/slow: status=%d decode=%v", resp.StatusCode, derr)
	}
	if sr.APIVersion != APIVersion || sr.Total < 1 {
		t.Fatalf("slow envelope: %+v", sr)
	}
	var entry *SlowEntry
	for i := range sr.Requests {
		if sr.Requests[i].TraceID == "trace-slow-1" {
			entry = &sr.Requests[i]
			break
		}
	}
	if entry == nil {
		t.Fatalf("traced request not captured; ring = %+v", sr.Requests)
	}
	if entry.Method != "POST" || entry.Path != "/v1/verify" || entry.Status != 200 || entry.DurNs <= 0 {
		t.Errorf("slow entry = %+v", entry)
	}
	if entry.TraceError != "" || len(entry.Spans) == 0 || entry.Spans[0].Name != "verify" {
		t.Errorf("slow entry spans = %+v (traceError %q)", entry.Spans, entry.TraceError)
	}
}

// TestSlowRingBounded pins the ring's eviction: it retains at most
// SlowRingSize entries, newest first.
func TestSlowRingBounded(t *testing.T) {
	_, ts := newTestServer(t, Config{SlowThreshold: time.Nanosecond, SlowRingSize: 2})
	for i := 0; i < 4; i++ {
		status, body, _ := postTraced(t, ts.URL+"/v1/verify", fmt.Sprintf("trace-ring-%d", i), false, VerifyRequest{System: sysSafe})
		if status != http.StatusOK {
			t.Fatalf("verify %d: %d %s", i, status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	var sr SlowResponse
	derr := json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if derr != nil {
		t.Fatal(derr)
	}
	if len(sr.Requests) != 2 {
		t.Fatalf("ring kept %d entries, want 2", len(sr.Requests))
	}
	if sr.Requests[0].TraceID != "trace-ring-3" || sr.Requests[1].TraceID != "trace-ring-2" {
		t.Errorf("ring order = [%s %s], want newest first", sr.Requests[0].TraceID, sr.Requests[1].TraceID)
	}
	if sr.Total < 4 {
		t.Errorf("total = %d, want ≥ 4", sr.Total)
	}
}

// TestEndpointHistogramExemplars pins the /metrics side: the per-endpoint
// and per-backend histograms exist, parse, and carry the trace ID of an
// observed request as an OpenMetrics exemplar.
func TestEndpointHistogramExemplars(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := postTraced(t, ts.URL+"/v1/verify", "trace-exemplar-1", false, VerifyRequest{System: sysSafe})
	if status != http.StatusOK {
		t.Fatalf("verify: %d %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	fams, err := ParsePrometheus(buf.String())
	if err != nil {
		t.Fatalf("/metrics no longer parses: %v", err)
	}
	for _, name := range []string{"raserved_endpoint_verify_ns", "raserved_backend_fixpoint_ns"} {
		f := fams[name]
		if f == nil || f.Type != "histogram" {
			t.Fatalf("missing histogram family %s", name)
		}
		found := false
		for _, tid := range f.Exemplars {
			if tid == "trace-exemplar-1" {
				found = true
			}
		}
		if !found {
			t.Errorf("family %s carries no exemplar for the traced request: %+v", name, f.Exemplars)
		}
	}
}

// TestTraceDirPersistsSpans pins TraceDir persistence: the request's raw
// JSONL trace lands in the directory under its trace ID, validates, and
// every span carries the request's trace ID.
func TestTraceDirPersistsSpans(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{TraceDir: dir})
	status, body, _ := postTraced(t, ts.URL+"/v1/verify", "trace-dir-1", false, VerifyRequest{System: sysSafe})
	if status != http.StatusOK {
		t.Fatalf("verify: %d %s", status, body)
	}
	data, err := os.ReadFile(filepath.Join(dir, "trace-dir-1.trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(bytes.NewReader(data)); err != nil {
		t.Fatalf("persisted trace invalid: %v", err)
	}
	spans, err := obs.ParseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("persisted trace has no spans")
	}
	for _, sp := range spans {
		if sp.TraceID != "trace-dir-1" {
			t.Errorf("span %q trace ID = %q", sp.Name, sp.TraceID)
		}
	}
}

// TestTraceDirSanitizesIDs pins that a hostile trace ID cannot escape the
// trace directory.
func TestTraceDirSanitizesIDs(t *testing.T) {
	if got := sanitizeTraceID("../../etc/passwd"); strings.Contains(got, "/") {
		t.Errorf("sanitized ID still has separators: %q", got)
	}
	if got := sanitizeTraceID("..."); got != "trace" {
		t.Errorf("dot-only ID sanitized to %q", got)
	}
	if got := sanitizeTraceID("ok-ID_1.2"); got != "ok-ID_1.2" {
		t.Errorf("benign ID mangled to %q", got)
	}
}

// TestConcurrentTracedRequests is the HTTP-level multi-root race test: many
// concurrent traced requests, each opting into the span tree, must each get
// back exactly their own trace — right ID in header and envelope, a span
// tree rooted at their own verify span, never an interleaving error.
func TestConcurrentTracedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{SlowThreshold: time.Nanosecond, SlowRingSize: 64})
	const n = 50
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("trace-conc-%02d", i)
			status, body, echoed := postTraced(t, ts.URL+"/v1/verify", id, true, VerifyRequest{System: sysSafe})
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("%s: status %d: %s", id, status, body)
				return
			}
			if echoed != id {
				errs[i] = fmt.Errorf("%s: header echoed %q", id, echoed)
				return
			}
			var vr VerifyResponse
			if err := json.Unmarshal(body, &vr); err != nil {
				errs[i] = fmt.Errorf("%s: %v", id, err)
				return
			}
			if vr.TraceID != id {
				errs[i] = fmt.Errorf("%s: envelope traceId %q", id, vr.TraceID)
				return
			}
			if vr.Trace == nil || vr.Trace.Error != "" {
				errs[i] = fmt.Errorf("%s: trace = %+v", id, vr.Trace)
				return
			}
			if len(vr.Trace.Spans) != 1 || vr.Trace.Spans[0].Name != "verify" {
				errs[i] = fmt.Errorf("%s: foreign or missing roots: %+v", id, vr.Trace.Spans)
				return
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestParsePrometheusExemplars pins the parser against exemplar-suffixed
// bucket lines, malformed exemplars, and plain samples.
func TestParsePrometheusExemplars(t *testing.T) {
	text := `# HELP req_ns request latency
# TYPE req_ns histogram
req_ns_bucket{le="128"} 3 # {trace_id="t-9"} 120
req_ns_bucket{le="+Inf"} 3
req_ns_sum 300
req_ns_count 3
`
	fams, err := ParsePrometheus(text)
	if err != nil {
		t.Fatal(err)
	}
	f := fams["req_ns"]
	if f == nil || f.Samples[`req_ns_bucket{le="128"}`] != 3 {
		t.Fatalf("bucket sample lost: %+v", f)
	}
	if f.Exemplars[`req_ns_bucket{le="128"}`] != "t-9" {
		t.Errorf("exemplar = %+v", f.Exemplars)
	}
	if _, err := ParsePrometheus("# TYPE x counter\nx 1 # broken\n"); err == nil {
		t.Error("malformed exemplar accepted")
	}
}
