package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRequestIDGenerated pins that requests without a caller ID get a unique
// generated one.
func TestRequestIDGenerated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			t.Fatal("no X-Request-Id assigned")
		}
		if seen[id] {
			t.Fatalf("request ID %q repeated", id)
		}
		seen[id] = true
	}
}

// TestRequestIDOversizedReplaced pins that an abusive kilobyte-long caller
// ID is replaced rather than echoed.
func TestRequestIDOversizedReplaced(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	long := strings.Repeat("x", 1024)
	req.Header.Set("X-Request-Id", long)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == long || got == "" {
		t.Errorf("oversized request ID echoed back (len %d)", len(got))
	}
}

// TestAccessLogLine pins the access-log format: one line per request with
// the ID, method, path, and status.
func TestAccessLogLine(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	syncW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	_, ts := newTestServer(t, Config{AccessLog: syncW})
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "log-probe")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mu.Lock()
	line := buf.String()
	mu.Unlock()
	for _, want := range []string{"log-probe", "GET", "/healthz", " 200 "} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line missing %q: %q", want, line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestPanicRecovery pins that a handler panic yields a 500 JSON envelope and
// bumps the panic counter, leaving the server alive for the next request.
func TestPanicRecovery(t *testing.T) {
	s := New(Config{})
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	var er ErrorResponse
	err = json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || err != nil {
		t.Fatalf("panic response: status=%d decode=%v", resp.StatusCode, err)
	}
	if er.Error.Code != CodeInternal || !strings.Contains(er.Error.Message, "kaboom") {
		t.Errorf("panic envelope: %+v", er.Error)
	}
	if got := s.m.panics.Value(); got != 1 {
		t.Errorf("panics counter = %d", got)
	}

	// The server survives.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic = %d", resp.StatusCode)
	}
}

// TestBodyLimit413 pins the body-size limit on the verification endpoints.
func TestBodyLimit413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBody: 1024})
	big := sysSafe + strings.Repeat(" ", 4096)
	resp, err := http.Post(ts.URL+"/v1/verify", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	wantError(t, resp.StatusCode, buf.Bytes(), http.StatusRequestEntityTooLarge, CodeBodyTooLarge, "")

	// A body under the limit still verifies.
	status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: sysSafe})
	if status != http.StatusOK {
		t.Errorf("under-limit body: %d %s", status, body)
	}
}

// TestConcurrencyLimiter pins that with MaxInflight=1, a second request
// queues behind the first instead of running concurrently — observed via the
// serialized peak of the inflight gauge — and that draining turns new
// verification work away with 503.
func TestConcurrencyLimiter(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: sysUnsafe})
			if status != http.StatusOK {
				t.Errorf("limited verify: %d %s", status, body)
			}
		}()
	}
	wg.Wait()
	if got := s.inflight.Load(); got != 0 {
		t.Errorf("inflight after burst = %d", got)
	}
	if got := s.served.Load(); got != 4 {
		t.Errorf("served = %d, want 4", got)
	}

	s.BeginDrain()
	status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: sysSafe})
	wantError(t, status, body, http.StatusServiceUnavailable, CodeDraining, "")
}

// TestQueueGivesUpWithCaller pins the limiter's 503 when the caller's
// context dies while queued behind a full semaphore (unit-level: the request
// arrives with its context already dead, the only slot occupied).
func TestQueueGivesUpWithCaller(t *testing.T) {
	s := New(Config{MaxInflight: 1})
	s.sem <- struct{}{} // occupy the only slot
	defer func() { <-s.sem }()

	h := s.limited(func(http.ResponseWriter, *http.Request) {
		t.Error("handler ran despite a dead caller and a full queue")
	})
	req := httptest.NewRequest("POST", "/v1/verify", strings.NewReader(sysSafe))
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	rw := httptest.NewRecorder()
	h(rw, req.WithContext(ctx))

	var buf bytes.Buffer
	buf.ReadFrom(rw.Result().Body)
	wantError(t, rw.Code, buf.Bytes(), http.StatusServiceUnavailable, CodeOverCapacity, "")
	if got := s.m.overCapacity.Value(); got != 1 {
		t.Errorf("over-capacity counter = %d, want 1", got)
	}
}
