package serve

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// ctxKey is the private context-key namespace of this package.
type ctxKey int

const (
	requestIDKey ctxKey = iota
	traceIDKey
	captureKey
)

// RequestIDFrom returns the request ID the middleware assigned (empty
// outside a server-handled request).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// statusWriter captures the status code and body size for the access log
// and the per-class response counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// withRequestID assigns every request a unique ID — the client's
// X-Request-Id when present, else "<boot-hex>-<seq>" — echoes it in the
// response header, and threads it through the context for handlers and the
// access log.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" || len(id) > 128 {
			id = fmt.Sprintf("%08x-%06d", s.boot, s.seq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

// withAccessLog writes one line per request: timestamp (from the logger),
// request ID, trace ID, method, path, status, response bytes, wall time. It
// also feeds the request counters and the latency histogram.
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw, ok := w.(*statusWriter)
		if !ok {
			sw = &statusWriter{ResponseWriter: w}
		}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		d := time.Since(start)
		s.m.requests.Inc()
		s.m.requestNS.Observe(int64(d))
		switch {
		case sw.status >= 500:
			s.m.resp5xx.Inc()
		case sw.status >= 400:
			s.m.resp4xx.Inc()
		default:
			s.m.resp2xx.Inc()
		}
		if s.accessLog != nil {
			s.accessLog.Printf("%s %s %s %s %d %dB %s",
				RequestIDFrom(r.Context()), TraceIDFrom(r.Context()), r.Method, r.URL.Path,
				sw.status, sw.bytes, d.Round(time.Microsecond))
		}
	})
}

// withRecover converts a handler panic into a 500 error envelope instead of
// tearing down the connection (and with it, unrelated in-flight requests).
// The stack goes to the access logger; the panic counter feeds /metrics.
func (s *Server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.m.panics.Inc()
				if s.accessLog != nil {
					s.accessLog.Printf("%s panic: %v\n%s", RequestIDFrom(r.Context()), v, debug.Stack())
				}
				// Best effort: if the handler already wrote, this is a no-op.
				writeError(w, r, http.StatusInternalServerError,
					CodeInternal, fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limited wraps a verification handler with the request-body limit and the
// concurrency limiter: at most MaxInflight verifications run at once, and a
// request whose context dies while queued is turned away with 503 instead
// of verifying for a client that is no longer listening. Draining servers
// refuse new verification work immediately.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, r, http.StatusServiceUnavailable, CodeDraining,
				"server is draining; retry against another replica")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
		select {
		case s.sem <- struct{}{}:
		default:
			// All slots busy: wait for one, but give up when the caller does.
			select {
			case s.sem <- struct{}{}:
			case <-r.Context().Done():
				s.m.overCapacity.Inc()
				writeError(w, r, http.StatusServiceUnavailable, CodeOverCapacity,
					"verification capacity exhausted before the request deadline")
				return
			}
		}
		defer func() { <-s.sem }()
		s.inflightWG.Add(1)
		defer s.inflightWG.Done()
		s.m.inflight.Set(s.addInflight(1))
		defer func() { s.m.inflight.Set(s.addInflight(-1)) }()
		s.served.Add(1)
		h(w, r)
	}
}

// logger returns a log.Logger over the configured access-log writer, or nil
// when access logging is off.
func newAccessLogger(cfg Config) *log.Logger {
	if cfg.AccessLog == nil {
		return nil
	}
	return log.New(cfg.AccessLog, "raserved ", log.LstdFlags|log.Lmicroseconds|log.LUTC)
}
