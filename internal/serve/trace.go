package serve

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"paramra/internal/obs"
)

// TraceIDFrom returns the trace ID the middleware assigned — the client's
// X-Trace-Id when present, else a generated one. Empty outside a
// server-handled request.
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey).(string)
	return id
}

// captureFrom returns the request's span capture (nil outside a
// server-handled request).
func captureFrom(ctx context.Context) *obs.Capture {
	c, _ := ctx.Value(captureKey).(*obs.Capture)
	return c
}

// withTrace makes every request a traced operation: it resolves the trace ID
// (X-Trace-Id header, length-capped, else "t<boot-hex>-<seq>"), echoes it in
// the response header, and installs a per-request obs.Capture whose tracer
// rides the context — every span the verifier layers open downstream lands
// in this request's private buffer, stamped with this request's trace ID.
// After the handler returns it feeds the per-endpoint latency histograms
// (with the trace ID as exemplar), the slow-request ring, and the optional
// trace directory.
func (s *Server) withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Trace-Id")
		if id == "" || len(id) > 128 {
			id = fmt.Sprintf("t%08x-%06d", s.boot, s.seq.Add(1))
		}
		w.Header().Set("X-Trace-Id", id)
		cap := obs.NewCapture(id)
		ctx := context.WithValue(r.Context(), traceIDKey, id)
		ctx = context.WithValue(ctx, captureKey, cap)
		ctx = obs.WithTracer(ctx, cap.Tracer)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		d := time.Since(start)
		s.observeEndpoint(r.URL.Path, d, id)
		if d >= s.cfg.SlowThreshold {
			s.recordSlow(r, sw.status, d, id, cap)
		}
		if s.cfg.TraceDir != "" {
			s.writeTraceFile(id, cap)
		}
	})
}

// endpointSuffix names the per-endpoint latency histograms. Only fixed
// routes get one: deriving metric names from arbitrary request paths would
// let clients mint unbounded families.
var endpointSuffix = map[string]string{
	"/v1/verify":    "verify",
	"/v1/instance":  "instance",
	"/v1/deadlocks": "deadlocks",
	"/v1/inventory": "inventory",
}

// observeEndpoint feeds the endpoint's SLO histogram, attaching the trace ID
// as the bucket exemplar so a scraper can jump from a bad bucket to the
// trace that landed in it.
func (s *Server) observeEndpoint(path string, d time.Duration, traceID string) {
	suffix, ok := endpointSuffix[path]
	if !ok {
		return
	}
	s.cfg.Metrics.Histogram("raserved_endpoint_"+suffix+"_ns",
		"request wall time for "+path+" (ns)").ObserveExemplar(int64(d), traceID)
}

// observeBackend feeds the per-backend verification histogram (fixpoint,
// datalog, concrete) with the trace ID as exemplar.
func (s *Server) observeBackend(backend string, d time.Duration, traceID string) {
	s.cfg.Metrics.Histogram("raserved_backend_"+backend+"_ns",
		"verification wall time for the "+backend+" backend (ns)").ObserveExemplar(int64(d), traceID)
}

// SlowEntry is one captured slow request: identity, outcome, and the full
// span tree recorded while it ran.
type SlowEntry struct {
	TraceID   string `json:"traceId"`
	RequestID string `json:"requestId,omitempty"`
	Method    string `json:"method"`
	Path      string `json:"path"`
	Status    int    `json:"status"`
	DurNs     int64  `json:"durNs"`
	// Spans is the per-phase breakdown (see obs.TreeNode); TraceError
	// replaces it when the capture could not be reconstructed.
	Spans      []*obs.TreeNode `json:"spans,omitempty"`
	TraceError string          `json:"traceError,omitempty"`
}

// recordSlow snapshots a request that blew the latency threshold into the
// slow ring.
func (s *Server) recordSlow(r *http.Request, status int, d time.Duration, id string, cap *obs.Capture) {
	e := SlowEntry{
		TraceID:   id,
		RequestID: RequestIDFrom(r.Context()),
		Method:    r.Method,
		Path:      r.URL.Path,
		Status:    status,
		DurNs:     int64(d),
	}
	if tree, err := cap.Tree(); err == nil {
		e.Spans = tree
	} else {
		e.TraceError = err.Error()
	}
	s.slow.Add(e)
}

// SlowResponse is the /debug/slow envelope: the most recent slow requests,
// newest first.
type SlowResponse struct {
	APIVersion  string      `json:"apiVersion"`
	RequestID   string      `json:"requestId,omitempty"`
	TraceID     string      `json:"traceId,omitempty"`
	ThresholdMS int64       `json:"thresholdMs"`
	Total       int64       `json:"total"`
	Requests    []SlowEntry `json:"requests"`
}

// handleSlow serves the slow-request ring.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	entries := s.slow.Snapshot()
	if entries == nil {
		entries = []SlowEntry{}
	}
	writeJSON(w, SlowResponse{
		APIVersion:  APIVersion,
		RequestID:   RequestIDFrom(r.Context()),
		TraceID:     TraceIDFrom(r.Context()),
		ThresholdMS: s.cfg.SlowThreshold.Milliseconds(),
		Total:       s.slow.Total(),
		Requests:    entries,
	})
}

// traceDTO builds the opt-in per-response span tree: non-nil only when the
// client sent "X-Trace: 1" (or true/yes/on). It runs after the handler's
// verification work finished, so every library span is already ended.
func (s *Server) traceDTO(r *http.Request) *TraceDTO {
	if !queryBool(r.Header.Get("X-Trace")) {
		return nil
	}
	c := captureFrom(r.Context())
	if c == nil {
		return nil
	}
	tree, err := c.Tree()
	if err != nil {
		return &TraceDTO{Error: err.Error()}
	}
	return &TraceDTO{Spans: tree}
}

// writeTraceFile persists the request's raw JSONL trace under TraceDir as
// <trace-id>.trace.jsonl (the input of `rabench report`). Requests that
// opened no spans (health checks, scrapes) are skipped.
func (s *Server) writeTraceFile(id string, cap *obs.Capture) {
	data, err := cap.Bytes()
	if err == nil && len(data) == 0 {
		return
	}
	if err == nil {
		err = os.WriteFile(filepath.Join(s.cfg.TraceDir, sanitizeTraceID(id)+".trace.jsonl"), data, 0o644)
	}
	if err != nil && s.accessLog != nil {
		s.accessLog.Printf("trace %s: writing trace file: %v", id, err)
	}
}

// sanitizeTraceID maps a client-supplied trace ID onto a safe file stem:
// anything outside [A-Za-z0-9._-] becomes '_', and names that would be dot
// paths get a prefix.
func sanitizeTraceID(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	out := b.String()
	if out == "" || strings.Trim(out, ".") == "" {
		return "trace"
	}
	return out
}
