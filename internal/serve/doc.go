// Package serve is the verification-as-a-service layer: a typed HTTP/JSON
// wire API over the paramra entry points (Verify, VerifyInstance,
// FindDeadlocks, Inventory, ConfirmViolation), plus the middleware stack a
// long-running server needs — request IDs, access logs, panic recovery,
// body-size limits, per-request verification budgets mapped onto
// context.Context deadlines, concurrency limiting, and graceful drain.
//
// The wire schema lives in wire.go as explicit DTO types with a versioned
// envelope (APIVersion). The DTOs are the contract: a golden round-trip test
// and a reflection drift-guard keep them in lock-step with the Go API, so
// the HTTP surface cannot silently diverge from the library.
//
// Endpoints (all verification endpoints are POST):
//
//	POST /v1/verify     parameterized safety (fixpoint/Datalog/prepass)
//	POST /v1/instance   concrete exploration of a fixed instance
//	POST /v1/deadlocks  sink-state classification of a fixed instance
//	POST /v1/inventory  the §4.1 Message Generation relation
//	GET  /healthz       liveness ("ok")
//	GET  /readyz        readiness (503 while draining)
//	GET  /statusz       JSON runtime status (goroutines, in-flight, served)
//	GET  /metrics       Prometheus text (also /metrics.json, /debug/vars)
//
// Verification requests are JSON (VerifyRequest et al.) or, for curl
// ergonomics, a raw .ra system body with knobs as query parameters.
//
// Error mapping is deterministic: parse and option errors are 400 with a
// field-level message, systems outside the decidable class are 422, an
// exhausted client-requested budget is 408, an exhausted server-imposed
// budget is 504, over-capacity and draining are 503. See errors.go.
package serve
