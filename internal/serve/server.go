package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"paramra"
	"paramra/internal/cache"
	"paramra/internal/obs"
)

// Config tunes the server. The zero value is usable: every field has a
// production-shaped default (see Defaulted).
type Config struct {
	// MaxBody is the request-body limit in bytes (default 1 MiB).
	MaxBody int64
	// MaxInflight caps concurrently running verifications (default
	// 2×GOMAXPROCS). Excess requests queue until their context dies.
	MaxInflight int
	// DefaultBudget is the verification budget when the request names none
	// (default 30s). Exhaustion maps to 504.
	DefaultBudget time.Duration
	// MaxBudget caps client-requested budgets (default 2m). A request asking
	// for more is rejected with 400, not clamped.
	MaxBudget time.Duration
	// MaxStatesCap bounds concrete-instance exploration per request (default
	// 2,000,000). Requests asking for more are rejected; requests asking for
	// 0 ("unlimited") get this cap — a shared server never explores an
	// infinite concrete state space.
	MaxStatesCap int
	// MaxParallelism caps the per-request worker count (default GOMAXPROCS).
	MaxParallelism int
	// Parallelism is the worker count used when the request names none
	// (default 0 = GOMAXPROCS).
	Parallelism int
	// MaxEnvThreads caps the instance size of /v1/instance and /v1/deadlocks
	// (default 16).
	MaxEnvThreads int
	// MaxConfirmEnv caps the confirm step's env-thread bound (default 8).
	MaxConfirmEnv int
	// Metrics receives the server and verifier metrics; nil creates a fresh
	// registry (exposed at /metrics either way).
	Metrics *obs.Registry
	// AccessLog receives one line per request; nil disables access logging.
	AccessLog io.Writer
	// SlowThreshold is the latency above which a request (with its full span
	// breakdown) is captured into the /debug/slow ring (default 500ms).
	SlowThreshold time.Duration
	// SlowRingSize is how many slow requests /debug/slow retains, newest
	// first (default 32).
	SlowRingSize int
	// TraceDir, when set, persists each request's raw JSONL trace as
	// <trace-id>.trace.jsonl in this directory — the input of
	// `rabench report`. Empty disables persistence.
	TraceDir string
	// CacheSize, when positive, enables the process-wide content-addressed
	// verdict cache for /v1/verify with this many in-memory entries.
	// Deliberately NOT defaulted on by Defaulted(): embedding callers and
	// tests opt in; cmd/raserved opts in via its -cache-size flag default.
	CacheSize int
	// CacheDir, when set together with CacheSize, adds the persistent
	// checksummed on-disk cache layer (survives restarts; corrupt entries
	// are detected and treated as misses).
	CacheDir string
	// CacheDiskMaxBytes caps the on-disk cache layer's total size; the
	// least-recently-used entries are evicted past it. 0 selects the
	// cache package's 256 MiB default; negative removes the bound.
	CacheDiskMaxBytes int64
}

// Defaulted fills unset fields with the documented defaults. The soak
// harness uses it to mirror a default-configured server when computing
// expected verdicts locally.
func (c Config) Defaulted() Config {
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 30 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 2 * time.Minute
	}
	if c.MaxBudget < c.DefaultBudget {
		c.MaxBudget = c.DefaultBudget
	}
	if c.MaxStatesCap <= 0 {
		c.MaxStatesCap = 2_000_000
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxEnvThreads <= 0 {
		c.MaxEnvThreads = 16
	}
	if c.MaxConfirmEnv <= 0 {
		c.MaxConfirmEnv = 8
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 500 * time.Millisecond
	}
	if c.SlowRingSize <= 0 {
		c.SlowRingSize = 32
	}
	return c
}

// serverMetrics is the server's own instrument panel (the verifier adds its
// paramra_* families to the same registry).
type serverMetrics struct {
	requests     *obs.Counter
	resp2xx      *obs.Counter
	resp4xx      *obs.Counter
	resp5xx      *obs.Counter
	requestNS    *obs.Histogram
	inflight     *obs.Gauge
	goroutines   *obs.Gauge
	verdictSafe  *obs.Counter
	verdictUnsaf *obs.Counter
	timeouts     *obs.Counter
	panics       *obs.Counter
	overCapacity *obs.Counter
}

func newServerMetrics(m *obs.Registry) serverMetrics {
	return serverMetrics{
		requests:     m.Counter("raserved_requests_total", "HTTP requests received"),
		resp2xx:      m.Counter("raserved_responses_2xx_total", "responses with 2xx status"),
		resp4xx:      m.Counter("raserved_responses_4xx_total", "responses with 4xx status"),
		resp5xx:      m.Counter("raserved_responses_5xx_total", "responses with 5xx status"),
		requestNS:    m.Histogram("raserved_request_ns", "request wall time (ns)"),
		inflight:     m.Gauge("raserved_inflight", "verification requests currently running"),
		goroutines:   m.Gauge("raserved_goroutines", "goroutines at last status scrape"),
		verdictSafe:  m.Counter("raserved_verdict_safe_total", "SAFE verdicts served"),
		verdictUnsaf: m.Counter("raserved_verdict_unsafe_total", "UNSAFE verdicts served"),
		timeouts:     m.Counter("raserved_timeouts_total", "requests ended by budget exhaustion (408+504)"),
		panics:       m.Counter("raserved_panics_total", "handler panics recovered"),
		overCapacity: m.Counter("raserved_over_capacity_total", "requests rejected by the concurrency limiter"),
	}
}

// Server is the verification service. Create with New, expose with Handler
// (or run with Serve for lifecycle management), drain with BeginDrain.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	sem       chan struct{}
	m         serverMetrics
	accessLog logPrinter
	slow      *obs.Ring[SlowEntry]
	cache     *cache.Cache

	boot       uint32
	seq        atomic.Int64
	served     atomic.Int64
	inflight   atomic.Int64
	inflightWG sync.WaitGroup
	draining   atomic.Bool
	start      time.Time
}

// logPrinter is the minimal printf sink the middleware needs (satisfied by
// *log.Logger); an interface keeps tests free to capture lines.
type logPrinter interface{ Printf(format string, v ...any) }

// New builds a server from the config.
func New(cfg Config) *Server {
	cfg = cfg.Defaulted()
	s := &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInflight),
		m:     newServerMetrics(cfg.Metrics),
		slow:  obs.NewRing[SlowEntry](cfg.SlowRingSize),
		boot:  uint32(time.Now().UnixNano()),
		start: time.Now(),
	}
	if l := newAccessLogger(cfg); l != nil {
		s.accessLog = l
	}
	if cfg.CacheSize > 0 {
		s.cache = cache.New(cache.Options{
			MaxEntries:   cfg.CacheSize,
			Dir:          cfg.CacheDir,
			DiskMaxBytes: cfg.CacheDiskMaxBytes,
			Metrics:      cfg.Metrics,
		})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.Handle("GET /metrics", s.metricsHandler())
	s.mux.Handle("GET /metrics.json", s.metricsHandler())
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/slow", s.handleSlow)
	s.mux.HandleFunc("POST /v1/verify", s.limited(s.handleVerify))
	s.mux.HandleFunc("POST /v1/instance", s.limited(s.handleInstance))
	s.mux.HandleFunc("POST /v1/deadlocks", s.limited(s.handleDeadlocks))
	s.mux.HandleFunc("POST /v1/inventory", s.limited(s.handleInventory))
	s.mux.HandleFunc("/", s.handleFallback)
	return s
}

// Metrics returns the server's registry (the configured one, or the
// registry New created).
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// Handler returns the full middleware-wrapped handler:
// request ID → trace → access log + metrics → recover → routes.
// Recovery sits innermost so a panic's 500 envelope carries the request and
// trace IDs and still lands in the access log and latency histograms.
func (s *Server) Handler() http.Handler {
	return s.withRequestID(s.withTrace(s.withAccessLog(s.withRecover(s.mux))))
}

// addInflight adjusts and returns the in-flight verification count.
func (s *Server) addInflight(d int64) int64 { return s.inflight.Add(d) }

// BeginDrain flips the server into draining mode: /readyz turns 503 and new
// verification requests are refused, while in-flight work keeps running.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve runs the server on ln until ctx is cancelled, then drains
// gracefully: readiness flips, new verification work is refused, and
// in-flight requests get up to grace to finish before connections are
// force-closed. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		_ = hs.Close()
		// The forced close cancels the remaining request contexts; wait for
		// the verification goroutines to observe it before reporting.
		s.inflightWG.Wait()
		return fmt.Errorf("serve: drain incomplete after %v: %w", grace, err)
	}
	s.inflightWG.Wait()
	return nil
}

// metricsHandler refreshes the goroutine gauge, then delegates to the
// registry's Prometheus/JSON exposition.
func (s *Server) metricsHandler() http.Handler {
	reg := s.cfg.Metrics.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.goroutines.Set(int64(runtime.NumGoroutine()))
		reg.ServeHTTP(w, r)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ready")
}

// Status is the /statusz payload.
type Status struct {
	APIVersion string          `json:"apiVersion"`
	Goroutines int             `json:"goroutines"`
	Inflight   int64           `json:"inflight"`
	Served     int64           `json:"served"`
	Draining   bool            `json:"draining"`
	UptimeMS   int64           `json:"uptimeMs"`
	Cache      *CacheStatusDTO `json:"cache,omitempty"`
}

// CacheStatusDTO is the verdict-cache section of /statusz (present only
// when Config.CacheSize enabled the cache).
type CacheStatusDTO struct {
	Entries     int   `json:"entries"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Shared      int64 `json:"shared"`
	Stores      int64 `json:"stores"`
	Evictions   int64 `json:"evictions"`
	DiskHits    int64 `json:"diskHits,omitempty"`
	DiskCorrupt int64 `json:"diskCorrupt,omitempty"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	g := runtime.NumGoroutine()
	s.m.goroutines.Set(int64(g))
	st := Status{
		APIVersion: APIVersion,
		Goroutines: g,
		Inflight:   s.inflight.Load(),
		Served:     s.served.Load(),
		Draining:   s.draining.Load(),
		UptimeMS:   time.Since(s.start).Milliseconds(),
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &CacheStatusDTO{
			Entries:     cs.Entries,
			Hits:        cs.Hits,
			Misses:      cs.Misses,
			Shared:      cs.Shared,
			Stores:      cs.Stores,
			Evictions:   cs.Evictions,
			DiskHits:    cs.DiskHits,
			DiskCorrupt: cs.DiskCorrupt,
		}
	}
	writeJSON(w, st)
}

// handleFallback gives unknown paths (and wrong methods on known paths) a
// JSON 404/405 instead of the stdlib text default.
func (s *Server) handleFallback(w http.ResponseWriter, r *http.Request) {
	writeError(w, r, http.StatusNotFound, CodeBadRequest,
		fmt.Sprintf("no such endpoint: %s %s", r.Method, r.URL.Path))
}

// decodeRequest reads a verification request: a JSON envelope when the
// Content-Type says so, else a raw .ra body with knobs as query parameters.
// envelope is filled with the defaults of the raw form first, so both paths
// produce one shape.
func decodeRequest(r *http.Request) (system string, ro RequestOptions, envThreads int, err error) {
	body, rerr := io.ReadAll(r.Body)
	if rerr != nil {
		var mbe *http.MaxBytesError
		if errors.As(rerr, &mbe) {
			return "", ro, 0, rerr
		}
		return "", ro, 0, fmt.Errorf("reading body: %w", rerr)
	}
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		var env struct {
			System     string         `json:"system"`
			EnvThreads int            `json:"envThreads"`
			Options    RequestOptions `json:"options"`
		}
		if jerr := json.Unmarshal(body, &env); jerr != nil {
			return "", ro, 0, fmt.Errorf("decoding JSON request: %w", jerr)
		}
		return env.System, env.Options, env.EnvThreads, nil
	}
	// Raw .ra body; knobs from the query string.
	q := r.URL.Query()
	geti := func(name string, dst *int) {
		if err != nil || q.Get(name) == "" {
			return
		}
		v, perr := strconv.Atoi(q.Get(name))
		if perr != nil {
			err = fmt.Errorf("query parameter %s: %v", name, perr)
			return
		}
		*dst = v
	}
	if v := q.Get("budgetMs"); v != "" {
		ms, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil {
			return "", ro, 0, fmt.Errorf("query parameter budgetMs: %v", perr)
		}
		ro.BudgetMS = ms
	}
	geti("maxStates", &ro.MaxStates)
	geti("maxMacroStates", &ro.MaxMacroStates)
	geti("maxSkeletons", &ro.MaxSkeletons)
	geti("parallelism", &ro.Parallelism)
	geti("unrollDis", &ro.UnrollDis)
	geti("goalVal", &ro.GoalVal)
	geti("confirmMaxEnv", &ro.ConfirmMaxEnv)
	geti("envThreads", &envThreads)
	if err != nil {
		return "", ro, 0, err
	}
	ro.Datalog = queryBool(q.Get("datalog"))
	ro.Confirm = queryBool(q.Get("confirm"))
	ro.GoalVar = q.Get("goalVar")
	if v := q.Get("prepass"); v != "" {
		b := queryBool(v)
		ro.Prepass = &b
	}
	return string(body), ro, envThreads, nil
}

// prepare runs the shared request pipeline: decode, parse, options, budget.
// On failure it writes the error response and returns ok=false.
func (s *Server) prepare(w http.ResponseWriter, r *http.Request) (sys *paramra.System, ro RequestOptions, opts paramra.Options, vctx context.Context, cancel context.CancelFunc, src budgetSource, envThreads int, ok bool) {
	system, ro, envThreads, err := decodeRequest(r)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, r, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte limit", s.cfg.MaxBody))
			return
		}
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if strings.TrimSpace(system) == "" {
		writeFieldError(w, r, &FieldError{Field: "system", Reason: "is required (a .ra system)"})
		return
	}
	sys, err = paramra.Parse(system)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeParseError, err.Error())
		return
	}
	opts, err = s.cfg.Options(ro)
	if err != nil {
		var fe *FieldError
		if errors.As(err, &fe) {
			writeFieldError(w, r, fe)
		} else {
			writeError(w, r, http.StatusBadRequest, CodeInvalidOptions, err.Error())
		}
		return
	}
	budget, src, err := s.cfg.budget(ro.BudgetMS)
	if err != nil {
		var fe *FieldError
		if errors.As(err, &fe) {
			writeFieldError(w, r, fe)
		} else {
			writeError(w, r, http.StatusBadRequest, CodeInvalidOptions, err.Error())
		}
		return
	}
	opts.Metrics = s.cfg.Metrics
	opts.Cache = s.cache // nil when caching is disabled; only Verify uses it
	vctx, cancel = context.WithTimeout(r.Context(), budget)
	return sys, ro, opts, vctx, cancel, src, envThreads, true
}

// finishError maps a verification error to its status, counts it, and
// writes the envelope.
func (s *Server) finishError(w http.ResponseWriter, r *http.Request, err error, src budgetSource) {
	status, code := verifyStatus(err, src)
	if status == http.StatusRequestTimeout || status == http.StatusGatewayTimeout {
		s.m.timeouts.Inc()
	}
	writeError(w, r, status, code, err.Error())
}

// countVerdict feeds the verdict counters.
func (s *Server) countVerdict(unsafe bool) {
	if unsafe {
		s.m.verdictUnsaf.Inc()
	} else {
		s.m.verdictSafe.Inc()
	}
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	sys, ro, opts, vctx, cancel, src, _, ok := s.prepare(w, r)
	if !ok {
		return
	}
	defer cancel()
	backend := "fixpoint"
	if ro.Datalog {
		backend = "datalog"
	}
	vstart := time.Now()
	res, err := paramra.Verify(vctx, sys, opts)
	s.observeBackend(backend, time.Since(vstart), TraceIDFrom(r.Context()))
	if err != nil {
		s.finishError(w, r, err, src)
		return
	}
	s.countVerdict(res.Unsafe)
	resp := VerifyResponse{
		APIVersion: APIVersion,
		RequestID:  RequestIDFrom(r.Context()),
		TraceID:    TraceIDFrom(r.Context()),
		System:     sys.Name,
		Verdict:    Verdict(res),
		Result:     FromResult(res),
	}
	if ro.Confirm && res.Unsafe {
		maxEnv := ro.ConfirmMaxEnv
		if maxEnv == 0 {
			maxEnv = 4
		}
		n, witness, cerr := paramra.ConfirmViolation(vctx, sys, res, maxEnv, opts)
		switch {
		case cerr == nil:
			resp.Confirm = &ConfirmDTO{EnvThreads: n, Witness: witness}
		default:
			var ce *paramra.ConfirmError
			if errors.As(cerr, &ce) && ce.Err == nil {
				// Bounds exhausted without a concrete witness: the verdict
				// stands (Theorem 3.4 — the caps were too small), so this is
				// still a 200 with the failure attached.
				dto := FromConfirmError(ce)
				resp.Confirm = &ConfirmDTO{Error: &dto}
			} else {
				s.finishError(w, r, cerr, src)
				return
			}
		}
	}
	resp.Trace = s.traceDTO(r)
	writeJSON(w, resp)
}

func (s *Server) handleInstance(w http.ResponseWriter, r *http.Request) {
	sys, _, opts, vctx, cancel, src, envThreads, ok := s.prepare(w, r)
	if !ok {
		return
	}
	defer cancel()
	if !s.checkEnvThreads(w, r, envThreads) {
		return
	}
	vstart := time.Now()
	res, err := paramra.VerifyInstance(vctx, sys, envThreads, opts)
	s.observeBackend("concrete", time.Since(vstart), TraceIDFrom(r.Context()))
	if err != nil {
		s.finishError(w, r, err, src)
		return
	}
	s.countVerdict(res.Unsafe)
	writeJSON(w, InstanceResponse{
		APIVersion: APIVersion,
		RequestID:  RequestIDFrom(r.Context()),
		TraceID:    TraceIDFrom(r.Context()),
		System:     sys.Name,
		EnvThreads: envThreads,
		Verdict:    InstanceVerdict(res),
		Result:     FromInstanceResult(res),
		Trace:      s.traceDTO(r),
	})
}

func (s *Server) handleDeadlocks(w http.ResponseWriter, r *http.Request) {
	sys, _, opts, vctx, cancel, src, envThreads, ok := s.prepare(w, r)
	if !ok {
		return
	}
	defer cancel()
	if !s.checkEnvThreads(w, r, envThreads) {
		return
	}
	vstart := time.Now()
	res, err := paramra.FindDeadlocks(vctx, sys, envThreads, opts)
	s.observeBackend("concrete", time.Since(vstart), TraceIDFrom(r.Context()))
	if err != nil {
		s.finishError(w, r, err, src)
		return
	}
	writeJSON(w, DeadlockResponse{
		APIVersion: APIVersion,
		RequestID:  RequestIDFrom(r.Context()),
		TraceID:    TraceIDFrom(r.Context()),
		System:     sys.Name,
		EnvThreads: envThreads,
		Result:     FromDeadlockResult(res),
		Trace:      s.traceDTO(r),
	})
}

func (s *Server) handleInventory(w http.ResponseWriter, r *http.Request) {
	sys, _, opts, vctx, cancel, src, _, ok := s.prepare(w, r)
	if !ok {
		return
	}
	defer cancel()
	vstart := time.Now()
	inv, err := paramra.Inventory(vctx, sys, opts)
	s.observeBackend("fixpoint", time.Since(vstart), TraceIDFrom(r.Context()))
	if err != nil {
		s.finishError(w, r, err, src)
		return
	}
	writeJSON(w, InventoryResponse{
		APIVersion: APIVersion,
		RequestID:  RequestIDFrom(r.Context()),
		TraceID:    TraceIDFrom(r.Context()),
		System:     sys.Name,
		Inventory:  inv,
		Trace:      s.traceDTO(r),
	})
}

// checkEnvThreads enforces the instance-size bounds of the concrete
// endpoints.
func (s *Server) checkEnvThreads(w http.ResponseWriter, r *http.Request, n int) bool {
	if n < 0 {
		writeFieldError(w, r, &FieldError{
			Field:  "envThreads",
			Reason: fmt.Sprintf("= %d: must be ≥ 0", n),
		})
		return false
	}
	if n > s.cfg.MaxEnvThreads {
		writeFieldError(w, r, &FieldError{
			Field:  "envThreads",
			Reason: fmt.Sprintf("= %d: exceeds the server cap %d", n, s.cfg.MaxEnvThreads),
		})
		return false
	}
	return true
}
