package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"paramra"
)

// Stable machine-readable error codes of the wire API. Clients dispatch on
// these, never on message text.
const (
	// CodeBadRequest covers malformed envelopes: bad JSON, missing body,
	// wrong method, unparseable query parameters.
	CodeBadRequest = "bad_request"
	// CodeParseError is a .ra syntax error (message carries file:line:col).
	CodeParseError = "parse_error"
	// CodeInvalidOptions is an out-of-range knob; ErrorDTO.Field names it.
	CodeInvalidOptions = "invalid_options"
	// CodeUndecidable marks systems outside the decidable class (env CAS,
	// looping dis threads without an unrolling bound).
	CodeUndecidable = "undecidable_class"
	// CodeBodyTooLarge is a request body over the server limit.
	CodeBodyTooLarge = "body_too_large"
	// CodeBudgetExceeded is an exhausted client-requested budget (408).
	CodeBudgetExceeded = "budget_exceeded"
	// CodeServerBudget is an exhausted server-imposed budget (504).
	CodeServerBudget = "server_budget_exceeded"
	// CodeOverCapacity is the concurrency limiter rejecting work (503).
	CodeOverCapacity = "over_capacity"
	// CodeDraining is a request arriving while the server drains (503).
	CodeDraining = "draining"
	// CodeInternal is a handler panic or unexpected error (500).
	CodeInternal = "internal"
)

// asOptionError is errors.As with the concrete type spelled once.
func asOptionError(err error, target **paramra.OptionError) bool {
	return errors.As(err, target)
}

// verifyStatus maps a verification error onto its deterministic HTTP status
// and code. The budget source disambiguates DeadlineExceeded: 408 when the
// client chose the bound, 504 when the server imposed it — every backend
// returns an error satisfying errors.Is(err, context.DeadlineExceeded) on an
// expired deadline (pinned by TestDeadlineErrorShape), so this mapping is
// total.
func verifyStatus(err error, src budgetSource) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		if src == budgetClient {
			return http.StatusRequestTimeout, CodeBudgetExceeded
		}
		return http.StatusGatewayTimeout, CodeServerBudget
	case errors.Is(err, context.Canceled):
		// The request context died under us: client gone or server draining.
		return http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, paramra.ErrEnvCAS), errors.Is(err, paramra.ErrDisCyclic):
		return http.StatusUnprocessableEntity, CodeUndecidable
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// writeError renders the uniform error envelope. Request and trace IDs are
// pulled from the request context so every error — including the
// panic-recovery 500 — is greppable in the access log and joinable to its
// trace.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	writeErrorDTO(w, r, ErrorDTO{Status: status, Code: code, Message: msg})
}

// writeFieldError renders a 400 invalid_options error naming the field.
func writeFieldError(w http.ResponseWriter, r *http.Request, fe *FieldError) {
	writeErrorDTO(w, r, ErrorDTO{
		Status:  http.StatusBadRequest,
		Code:    CodeInvalidOptions,
		Message: fe.Error(),
		Field:   fe.Field,
	})
}

// writeErrorDTO writes the envelope with the status taken from the DTO.
func writeErrorDTO(w http.ResponseWriter, r *http.Request, dto ErrorDTO) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(dto.Status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{
		APIVersion: APIVersion,
		RequestID:  RequestIDFrom(r.Context()),
		TraceID:    TraceIDFrom(r.Context()),
		Error:      dto,
	})
}

// writeJSON writes a 200 response envelope.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
