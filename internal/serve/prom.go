package serve

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// PromFamily is one metric family parsed from Prometheus text exposition.
type PromFamily struct {
	Name string
	Type string // counter | gauge | histogram | untyped
	Help string
	// Samples maps the full sample name (with label suffix stripped of
	// whitespace) to its parsed value.
	Samples map[string]float64
	// Exemplars maps sample names to the trace_id of their OpenMetrics
	// exemplar, for samples carrying one ("... # {trace_id=\"x\"} v").
	Exemplars map[string]string
}

// ParsePrometheus validates a Prometheus text-format exposition (version
// 0.0.4, the format obs.Registry writes) and returns the parsed families.
// It enforces the invariants a scraper relies on: TYPE before samples,
// declared types, parseable values, histogram _sum/_count/_bucket
// consistency, and no samples without a family. The soak harness and the CI
// serve job run it against a live /metrics.
func ParsePrometheus(text string) (map[string]*PromFamily, error) {
	fams := map[string]*PromFamily{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP without a metric name", lineNo)
			}
			f := fams[name]
			if f == nil {
				f = &PromFamily{Name: name, Samples: map[string]float64{}}
				fams[name] = f
			}
			f.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			f := fams[name]
			if f == nil {
				f = &PromFamily{Name: name, Samples: map[string]float64{}}
				fams[name] = f
			}
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		// Sample line: name[{labels}] value [timestamp] [# {labels} value]
		sampleName, rest, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		rest, exemplarTrace, err := splitExemplar(rest)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("line %d: sample %q needs a value (and at most a timestamp)", lineNo, line)
		}
		val, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: sample value %q: %v", lineNo, fields[0], err)
		}
		f := familyOf(fams, sampleName)
		if f == nil {
			return nil, fmt.Errorf("line %d: sample %q without a TYPE/HELP family", lineNo, sampleName)
		}
		f.Samples[sampleName] = val
		if exemplarTrace != "" {
			if f.Exemplars == nil {
				f.Exemplars = map[string]string{}
			}
			f.Exemplars[sampleName] = exemplarTrace
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Histogram families must expose the full triplet.
	for name, f := range fams {
		if f.Type != "histogram" {
			continue
		}
		var hasSum, hasCount, hasInf bool
		for s := range f.Samples {
			switch {
			case s == name+"_sum":
				hasSum = true
			case s == name+"_count":
				hasCount = true
			case strings.HasPrefix(s, name+"_bucket{") && strings.Contains(s, `le="+Inf"`):
				hasInf = true
			}
		}
		if !hasSum || !hasCount || !hasInf {
			return nil, fmt.Errorf("histogram %s missing _sum/_count/+Inf bucket (sum=%v count=%v inf=%v)",
				name, hasSum, hasCount, hasInf)
		}
	}
	return fams, nil
}

// splitSample separates the sample name (including any {labels} block) from
// the value part, validating label-brace balance.
func splitSample(line string) (name, rest string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		return line[:j+1], strings.TrimSpace(line[j+1:]), nil
	}
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return "", "", fmt.Errorf("sample %q has no value", line)
	}
	return line[:i], strings.TrimSpace(line[i:]), nil
}

// splitExemplar cuts an OpenMetrics exemplar ("# {labels} value") off a
// sample's value part, returning the value part and the exemplar's trace_id
// label (empty when the sample has no exemplar). A '#' not followed by a
// braced label set is malformed.
func splitExemplar(rest string) (value, traceID string, err error) {
	i := strings.IndexByte(rest, '#')
	if i < 0 {
		return rest, "", nil
	}
	ex := strings.TrimSpace(rest[i+1:])
	if !strings.HasPrefix(ex, "{") {
		return "", "", fmt.Errorf("malformed exemplar %q", rest[i:])
	}
	j := strings.IndexByte(ex, '}')
	if j < 0 {
		return "", "", fmt.Errorf("unbalanced braces in exemplar %q", rest[i:])
	}
	labels := ex[1:j]
	if v, lrest, found := strings.Cut(labels, `trace_id="`); found {
		_ = v
		if id, _, ok := strings.Cut(lrest, `"`); ok {
			traceID = id
		}
	}
	return strings.TrimSpace(rest[:i]), traceID, nil
}

// familyOf resolves a sample name to its declared family: labels stripped,
// with the histogram suffixes _bucket/_sum/_count folded away only when the
// exact name has no family of its own (a counter legitimately named
// *_count keeps its name).
func familyOf(fams map[string]*PromFamily, sample string) *PromFamily {
	name := sample
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	if f := fams[name]; f != nil {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, okCut := strings.CutSuffix(name, suf); okCut {
			if f := fams[base]; f != nil && f.Type == "histogram" {
				return f
			}
		}
	}
	return nil
}
