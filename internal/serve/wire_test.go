package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"paramra"
	"paramra/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden wire-schema files")

// fullStats populates every counter with a distinct value so field swaps are
// visible in the goldens.
func fullStats() paramra.Stats {
	return paramra.Stats{
		MacroStates: 101, DisTransitions: 102, EnvConfigs: 103, EnvMsgs: 104,
		SaturationSteps: 105, States: 106, Transitions: 107, Skeletons: 108,
		DatalogFacts: 109, DatalogRules: 110, FixpointRounds: 111,
		DatalogAtoms: 112, DedupHits: 113, PeakFrontier: 114,
		Wall: 115 * time.Millisecond, Workers: 4,
	}
}

// goldenCases enumerates one fully-populated instance of every wire
// envelope. The rendered JSON is the wire contract: a change to these bytes
// is an API change and must be deliberate (rerun with -update and review the
// diff).
func goldenCases() map[string]any {
	return map[string]any{
		"verify_response": VerifyResponse{
			APIVersion: APIVersion,
			RequestID:  "req-1",
			System:     "prodcons",
			Verdict:    "UNSAFE",
			Result: ResultDTO{
				Unsafe:         true,
				Complete:       true,
				Class:          "env(nocas)+dis(acyc)",
				Underapprox:    false,
				Stats:          FromStats(fullStats()),
				EnvThreadBound: 6,
				Graph:          "a -> b\n",
				Witness:        []string{"msg(x=2)", "msg(y=1)"},
				DecidedBy:      "fixpoint",
				PrepassReason:  "goal value escapes the abstraction",
				CacheHit:       true,
			},
			Confirm: &ConfirmDTO{EnvThreads: 2, Witness: "e1\ne2\n"},
		},
		"verify_response_confirm_failed": VerifyResponse{
			APIVersion: APIVersion,
			System:     "prodcons",
			Verdict:    "UNSAFE",
			Result:     ResultDTO{Unsafe: true, Complete: true, Class: "env(nocas)+dis(acyc)", EnvThreadBound: 6},
			Confirm: &ConfirmDTO{
				Error: &ConfirmErrorDTO{BoundTried: 3, StateCapHit: true},
			},
		},
		"instance_response": InstanceResponse{
			APIVersion: APIVersion,
			RequestID:  "req-2",
			System:     "prodcons",
			EnvThreads: 2,
			Verdict:    "UNSAFE",
			Result: InstanceResultDTO{
				Unsafe: true, Complete: true, States: 321,
				Stats:   FromStats(paramra.Stats{States: 321, Transitions: 654, Workers: 2}),
				Witness: "store x 1\nload x -> 1\n",
			},
		},
		"deadlock_response": DeadlockResponse{
			APIVersion: APIVersion,
			RequestID:  "req-3",
			System:     "barrier",
			EnvThreads: 1,
			Result: DeadlockResultDTO{
				Deadlocks: 2, Terminal: 5, Complete: true,
				Example:      "state{pc=3}",
				StuckThreads: []string{"worker#0", "checker"},
			},
		},
		"inventory_response": InventoryResponse{
			APIVersion: APIVersion,
			RequestID:  "req-4",
			System:     "mp",
			Inventory:  map[string][]int{"x": {0, 1}, "y": {0, 1}},
		},
		"error_response": ErrorResponse{
			APIVersion: APIVersion,
			RequestID:  "req-5",
			TraceID:    "trace-5",
			Error: ErrorDTO{
				Status:  400,
				Code:    CodeInvalidOptions,
				Message: "maxStates = -1: must be ≥ 0 (0 means unlimited)",
				Field:   "maxStates",
			},
		},
		"verify_response_traced": VerifyResponse{
			APIVersion: APIVersion,
			RequestID:  "req-6",
			TraceID:    "trace-6",
			System:     "mp",
			Verdict:    "SAFE",
			Result:     ResultDTO{Complete: true, Class: "env(nocas)+dis(acyc)", EnvThreadBound: -1, DecidedBy: "fixpoint"},
			Trace:      &TraceDTO{Spans: goldenSpans()},
		},
		"slow_response": SlowResponse{
			APIVersion:  APIVersion,
			RequestID:   "req-7",
			TraceID:     "trace-7",
			ThresholdMS: 500,
			Total:       41,
			Requests: []SlowEntry{
				{
					TraceID:   "trace-6",
					RequestID: "req-6",
					Method:    "POST",
					Path:      "/v1/verify",
					Status:    200,
					DurNs:     750_000_000,
					Spans:     goldenSpans(),
				},
				{
					TraceID:    "trace-3",
					Method:     "POST",
					Path:       "/v1/inventory",
					Status:     500,
					DurNs:      900_000_000,
					TraceError: "trace: span 4 never ended",
				},
			},
		},
	}
}

// goldenSpans is a hand-built span tree with deterministic offsets, pinning
// the JSON shape of obs.TreeNode on the wire.
func goldenSpans() []*obs.TreeNode {
	return []*obs.TreeNode{
		{
			Name: "verify", StartNs: 0, DurNs: 740_000_000,
			Attrs: map[string]any{"backend": "fixpoint", "complete": true},
			Children: []*obs.TreeNode{
				{Name: "prepass", StartNs: 1_000, DurNs: 2_000_000,
					Attrs: map[string]any{"verdict": "inconclusive"}},
				{Name: "fixpoint", StartNs: 2_100_000, DurNs: 737_000_000},
			},
		},
	}
}

// TestWireGolden pins the rendered JSON of every response envelope against
// testdata/golden, and checks each decodes back to the identical value
// (round trip).
func TestWireGolden(t *testing.T) {
	for name, v := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			got, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden missing (rerun with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire schema drifted from golden %s:\n--- want\n%s\n--- got\n%s", path, want, got)
			}

			// Round trip through the wire back into the same Go value.
			back := reflect.New(reflect.TypeOf(v))
			if err := json.Unmarshal(got, back.Interface()); err != nil {
				t.Fatalf("decoding own golden: %v", err)
			}
			if !reflect.DeepEqual(back.Elem().Interface(), v) {
				t.Errorf("round trip changed the value:\nsent: %#v\ngot:  %#v", v, back.Elem().Interface())
			}
		})
	}
}

// TestStatsRoundTrip pins that FromStats/ToStats preserve every counter
// (wall time at millisecond granularity, the wire precision).
func TestStatsRoundTrip(t *testing.T) {
	s := fullStats()
	got := FromStats(s).ToStats()
	if !reflect.DeepEqual(got, s) {
		t.Errorf("stats round trip:\nin:  %+v\nout: %+v", s, got)
	}
}

// fieldNames lists a struct type's exported field names, sorted.
func fieldNames(v any) []string {
	t := reflect.TypeOf(v)
	var names []string
	for i := 0; i < t.NumField(); i++ {
		if f := t.Field(i); f.IsExported() {
			names = append(names, f.Name)
		}
	}
	sort.Strings(names)
	return names
}

// TestWireCoversLibrary is the drift guard: every exported field of the
// library result types must be accounted for here. Adding a field to
// paramra.Result (or Stats, …) fails this test until the wire DTO and the
// golden are extended — or the field is consciously added to the exclusion
// list below.
func TestWireCoversLibrary(t *testing.T) {
	cases := []struct {
		name     string
		lib      any
		want     []string
		excluded []string // library fields deliberately not on the wire
	}{
		{
			name: "Result", lib: paramra.Result{},
			want: []string{"CacheHit", "Class", "Complete", "DecidedBy",
				"EnvThreadBound", "Graph", "PrepassReason", "Stats",
				"Underapprox", "Unsafe", "Witness"},
		},
		{
			name: "Stats", lib: paramra.Stats{},
			want: []string{"DatalogAtoms", "DatalogFacts", "DatalogRules",
				"DedupHits", "DisTransitions", "EnvConfigs", "EnvMsgs",
				"FixpointRounds", "MacroStates", "PeakFrontier",
				"SaturationSteps", "Skeletons", "States", "Transitions",
				"Wall", "Workers"},
		},
		{
			name: "InstanceResult", lib: paramra.InstanceResult{},
			want: []string{"Complete", "States", "Stats", "Unsafe", "Witness"},
		},
		{
			name: "DeadlockResult", lib: paramra.DeadlockResult{},
			want: []string{"Complete", "Deadlocks", "Example", "StuckThreads", "Terminal"},
		},
		{
			name: "ConfirmError", lib: paramra.ConfirmError{},
			want: []string{"BoundTried", "Err", "StateCapHit"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := fieldNames(tc.lib)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("paramra.%s fields changed — update the wire DTO, the goldens, and this list.\nnow:    %v\npinned: %v",
					tc.name, got, tc.want)
			}
		})
	}
}

// TestVerdictStrings pins the canonical verdict spellings the CLI and the
// wire share.
func TestVerdictStrings(t *testing.T) {
	cases := []struct {
		res  paramra.Result
		want string
	}{
		{paramra.Result{Complete: true}, "SAFE"},
		{paramra.Result{Unsafe: true, Complete: true}, "UNSAFE"},
		{paramra.Result{}, "UNKNOWN (limit reached)"},
		{paramra.Result{Complete: true, Underapprox: true}, "SAFE (up to the unrolling bound)"},
		{paramra.Result{Underapprox: true}, "UNKNOWN (limit reached) (up to the unrolling bound)"},
		{paramra.Result{Unsafe: true, Complete: true, Underapprox: true}, "UNSAFE"},
	}
	for _, tc := range cases {
		if got := Verdict(tc.res); got != tc.want {
			t.Errorf("Verdict(%+v) = %q, want %q", tc.res, got, tc.want)
		}
	}
	if got := InstanceVerdict(paramra.InstanceResult{Unsafe: true}); got != "UNSAFE" {
		t.Errorf("InstanceVerdict unsafe = %q", got)
	}
	if got := InstanceVerdict(paramra.InstanceResult{Complete: true}); got != "SAFE" {
		t.Errorf("InstanceVerdict safe = %q", got)
	}
	if got := InstanceVerdict(paramra.InstanceResult{}); got != "SAFE (within explored bounds)" {
		t.Errorf("InstanceVerdict incomplete = %q", got)
	}
}

// TestVerdictCoreExcludesTiming pins that the deterministic kernel ignores
// the engine counters that vary run to run.
func TestVerdictCoreExcludesTiming(t *testing.T) {
	a := VerifyResponse{System: "s", Verdict: "SAFE", Result: ResultDTO{Stats: StatsDTO{WallMS: 7, DedupHits: 9}}}
	b := VerifyResponse{System: "s", Verdict: "SAFE", Result: ResultDTO{Stats: StatsDTO{WallMS: 1000, Workers: 8}}}
	if !bytes.Equal(a.CoreBytes(), b.CoreBytes()) {
		t.Errorf("core bytes differ on timing-only changes:\n%s\n%s", a.CoreBytes(), b.CoreBytes())
	}
	c := b
	c.Result.Unsafe = true
	if bytes.Equal(b.CoreBytes(), c.CoreBytes()) {
		t.Error("core bytes identical despite a verdict-bit change")
	}
}
