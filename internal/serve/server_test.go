package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Test systems in .ra concrete syntax (mirroring the repo corpus).
const (
	sysUnsafe = `
system prodcons { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`
	sysSafe = `
system mp { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`
	sysEnvCAS = `
system bad { vars x; domain 2; env e }
thread e { cas x 0 1 }
`
)

// newTestServer builds a default-configured server and an httptest wrapper
// around its full middleware stack.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON sends a JSON verification request and decodes the response body.
func postJSON(t *testing.T, url string, req any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// wantError decodes an error envelope and asserts status/code (and field,
// when non-empty).
func wantError(t *testing.T, status int, body []byte, wantStatus int, wantCode, wantField string) ErrorResponse {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status = %d, want %d (body %s)", status, wantStatus, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body not an ErrorResponse: %v (%s)", err, body)
	}
	if er.Error.Code != wantCode {
		t.Errorf("code = %q, want %q (message %q)", er.Error.Code, wantCode, er.Error.Message)
	}
	if wantField != "" && er.Error.Field != wantField {
		t.Errorf("field = %q, want %q", er.Error.Field, wantField)
	}
	if er.Error.Status != wantStatus {
		t.Errorf("body status = %d, want %d", er.Error.Status, wantStatus)
	}
	if er.APIVersion != APIVersion {
		t.Errorf("apiVersion = %q", er.APIVersion)
	}
	return er
}

func TestServerVerifyJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: sysUnsafe})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var resp VerifyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != "UNSAFE" || !resp.Result.Unsafe || !resp.Result.Complete {
		t.Errorf("prodcons verdict: %+v", resp)
	}
	if resp.System != "prodcons" || resp.APIVersion != APIVersion || resp.RequestID == "" {
		t.Errorf("envelope fields: %+v", resp)
	}

	status, body = postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: sysSafe})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != "SAFE" || resp.Result.Unsafe {
		t.Errorf("mp verdict: %+v", resp)
	}
}

func TestServerVerifyRawBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/verify?datalog=1", "text/plain", strings.NewReader(sysUnsafe))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var vr VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if !vr.Result.Unsafe || vr.Result.DecidedBy == "fixpoint" {
		t.Errorf("raw-body datalog verify: %+v", vr.Result)
	}
}

func TestServerVerifyConfirm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		System:  sysUnsafe,
		Options: RequestOptions{Confirm: true, ConfirmMaxEnv: 3},
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var resp VerifyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Confirm == nil || resp.Confirm.Error != nil {
		t.Fatalf("confirm missing or failed: %+v", resp.Confirm)
	}
	if resp.Confirm.EnvThreads < 1 || resp.Confirm.Witness == "" {
		t.Errorf("confirm payload: %+v", resp.Confirm)
	}
}

func TestServerParseError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: "system oops {"})
	wantError(t, status, body, http.StatusBadRequest, CodeParseError, "")
}

func TestServerEmptySystem(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{})
	wantError(t, status, body, http.StatusBadRequest, CodeInvalidOptions, "system")
}

func TestServerInvalidOptions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name  string
		opts  RequestOptions
		field string
	}{
		{"negative maxStates", RequestOptions{MaxStates: -1}, "maxStates"},
		{"negative parallelism", RequestOptions{Parallelism: -2}, "parallelism"},
		{"negative budget", RequestOptions{BudgetMS: -5}, "budgetMs"},
		{"budget above cap", RequestOptions{BudgetMS: time.Hour.Milliseconds()}, "budgetMs"},
		{"parallelism above cap", RequestOptions{Parallelism: 1 << 20}, "parallelism"},
		{"maxStates above cap", RequestOptions{MaxStates: 1 << 30}, "maxStates"},
		{"negative confirmMaxEnv", RequestOptions{ConfirmMaxEnv: -1}, "confirmMaxEnv"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: sysSafe, Options: tc.opts})
			wantError(t, status, body, http.StatusBadRequest, CodeInvalidOptions, tc.field)
		})
	}
}

// heavySystem loads the corpus entry that needs seconds of fixpoint work,
// so a millisecond budget deterministically expires mid-verification.
func heavySystem(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "systems", "peterson.ra"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestServerBudget408 pins the budget-source discrimination: a
// client-requested budget that expires is the client's fault (408), the
// server default expiring is the server's (504).
func TestServerBudget408(t *testing.T) {
	off := false
	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		System:  heavySystem(t),
		Options: RequestOptions{BudgetMS: 1, Prepass: &off, Parallelism: 1},
	})
	wantError(t, status, body, http.StatusRequestTimeout, CodeBudgetExceeded, "")
}

func TestServerBudget504(t *testing.T) {
	off := false
	_, ts := newTestServer(t, Config{DefaultBudget: time.Millisecond})
	status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		System:  heavySystem(t),
		Options: RequestOptions{Prepass: &off, Parallelism: 1},
	})
	wantError(t, status, body, http.StatusGatewayTimeout, CodeServerBudget, "")
}

// TestServerUndecidable422 pins the class check: env CAS is outside the
// decidable class (Theorem 1.1), surfaced as 422. Prepass must be off — the
// assert-free probe system would otherwise be decided SAFE statically before
// the class check runs.
func TestServerUndecidable422(t *testing.T) {
	off := false
	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		System:  sysEnvCAS,
		Options: RequestOptions{Prepass: &off},
	})
	wantError(t, status, body, http.StatusUnprocessableEntity, CodeUndecidable, "")
}

func TestServerFallback404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/verify"}, // wrong method
		{"POST", "/v1/nope"},  // unknown path
		{"GET", "/"},
	} {
		req, err := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		wantError(t, resp.StatusCode, buf.Bytes(), http.StatusNotFound, CodeBadRequest, "")
	}
}

func TestServerInstanceAndDeadlocks(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/instance", InstanceRequest{System: sysUnsafe, EnvThreads: 1})
	if status != http.StatusOK {
		t.Fatalf("instance status = %d: %s", status, body)
	}
	var ir InstanceResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if !ir.Result.Unsafe || ir.Verdict != "UNSAFE" || ir.EnvThreads != 1 {
		t.Errorf("instance: %+v", ir)
	}
	if ir.Result.Witness == "" {
		t.Error("instance witness missing")
	}

	status, body = postJSON(t, ts.URL+"/v1/deadlocks", InstanceRequest{System: sysSafe, EnvThreads: 1})
	if status != http.StatusOK {
		t.Fatalf("deadlocks status = %d: %s", status, body)
	}
	var dr DeadlockResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Result.Complete || dr.Result.Deadlocks+dr.Result.Terminal == 0 {
		t.Errorf("deadlocks: %+v", dr.Result)
	}
	if dr.Result.Deadlocks > 0 && (dr.Result.Example == "" || len(dr.Result.StuckThreads) == 0) {
		t.Errorf("deadlock report missing example/stuck threads: %+v", dr.Result)
	}

	// Instance-size cap.
	status, body = postJSON(t, ts.URL+"/v1/instance", InstanceRequest{System: sysSafe, EnvThreads: 99})
	wantError(t, status, body, http.StatusBadRequest, CodeInvalidOptions, "envThreads")
	status, body = postJSON(t, ts.URL+"/v1/instance", InstanceRequest{System: sysSafe, EnvThreads: -1})
	wantError(t, status, body, http.StatusBadRequest, CodeInvalidOptions, "envThreads")
}

func TestServerInventory(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/inventory", VerifyRequest{System: sysSafe})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var inv InventoryResponse
	if err := json.Unmarshal(body, &inv); err != nil {
		t.Fatal(err)
	}
	if len(inv.Inventory) == 0 {
		t.Errorf("empty inventory: %s", body)
	}
	for _, v := range []string{"x", "y"} {
		if _, okVar := inv.Inventory[v]; !okVar {
			t.Errorf("inventory missing %s: %v", v, inv.Inventory)
		}
	}
}

func TestServerStatusAndHealth(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d", path, resp.StatusCode)
		}
	}
	// One request so served > 0.
	postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: sysSafe})
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Goroutines <= 0 || st.Served < 1 || st.Draining || st.APIVersion != APIVersion {
		t.Errorf("statusz: %+v", st)
	}

	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d", resp.StatusCode)
	}
}

// TestServerMetricsEndpoint exercises a few requests then validates the
// exposition end to end with the package's own parser.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: sysUnsafe})
	postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: sysSafe})
	postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: "broken {"})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(buf.String())
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, buf.String())
	}
	checks := []struct {
		family string
		min    float64
	}{
		{"raserved_requests_total", 3},
		{"raserved_responses_2xx_total", 2},
		{"raserved_responses_4xx_total", 1},
		{"raserved_verdict_safe_total", 1},
		{"raserved_verdict_unsafe_total", 1},
	}
	for _, c := range checks {
		f := fams[c.family]
		if f == nil {
			t.Errorf("family %s missing", c.family)
			continue
		}
		if got := f.Samples[c.family]; got < c.min {
			t.Errorf("%s = %v, want ≥ %v", c.family, got, c.min)
		}
	}

	// JSON flavor of the same registry.
	resp, err = http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snapshot map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snapshot); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if len(snapshot) == 0 {
		t.Error("empty /metrics.json snapshot")
	}
}

// TestServerRequestIDEcho pins that a caller-provided X-Request-Id flows
// into the response envelope and header.
func TestServerRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(VerifyRequest{System: sysSafe})
	req, err := http.NewRequest("POST", ts.URL+"/v1/verify", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "caller-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-42" {
		t.Errorf("response header X-Request-Id = %q", got)
	}
	var vr VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if vr.RequestID != "caller-42" {
		t.Errorf("envelope requestId = %q", vr.RequestID)
	}
}

// TestBudgetResolution covers Config.budget directly.
func TestBudgetResolution(t *testing.T) {
	cfg := Config{DefaultBudget: 30 * time.Second, MaxBudget: time.Minute}.Defaulted()
	if d, src, err := cfg.budget(0); err != nil || d != 30*time.Second || src != budgetServer {
		t.Errorf("default budget: %v %v %v", d, src, err)
	}
	if d, src, err := cfg.budget(1500); err != nil || d != 1500*time.Millisecond || src != budgetClient {
		t.Errorf("client budget: %v %v %v", d, src, err)
	}
	if _, _, err := cfg.budget(-1); err == nil {
		t.Error("negative budget accepted")
	}
	if _, _, err := cfg.budget((2 * time.Minute).Milliseconds()); err == nil {
		t.Error("above-cap budget accepted")
	}
}

// TestConfigOptions covers the wire-knob → Options mapping invariants.
func TestConfigOptions(t *testing.T) {
	cfg := Config{}.Defaulted()
	opts, err := cfg.Options(RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Prepass {
		t.Error("prepass should default on, matching the CLIs")
	}
	if opts.MaxStates != cfg.MaxStatesCap {
		t.Errorf("MaxStates = %d, want the server cap %d (never unbounded)", opts.MaxStates, cfg.MaxStatesCap)
	}
	off := false
	opts, err = cfg.Options(RequestOptions{Prepass: &off, GoalVar: "x", GoalVal: 2})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Prepass {
		t.Error("explicit prepass=false ignored")
	}
	if opts.Goal == nil || opts.Goal.Var != "x" || opts.Goal.Val != 2 {
		t.Errorf("goal mapping: %+v", opts.Goal)
	}
}

// TestServerDatalogMatchesFixpoint cross-checks the two backends through the
// wire API on both corpus litmus tests.
func TestServerDatalogMatchesFixpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, src := range []string{sysUnsafe, sysSafe} {
		var verdicts []string
		for _, datalog := range []bool{false, true} {
			status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
				System:  src,
				Options: RequestOptions{Datalog: datalog},
			})
			if status != http.StatusOK {
				t.Fatalf("datalog=%v: status %d: %s", datalog, status, body)
			}
			var vr VerifyResponse
			if err := json.Unmarshal(body, &vr); err != nil {
				t.Fatal(err)
			}
			verdicts = append(verdicts, fmt.Sprintf("%s unsafe=%v", vr.Verdict, vr.Result.Unsafe))
		}
		if verdicts[0] != verdicts[1] {
			t.Errorf("backend divergence on the wire: fixpoint=%q datalog=%q", verdicts[0], verdicts[1])
		}
	}
}
