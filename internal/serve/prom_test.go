package serve

import (
	"strings"
	"testing"

	"paramra/internal/obs"
)

const validExposition = `# HELP demo_requests_total requests
# TYPE demo_requests_total counter
demo_requests_total 42
# HELP demo_inflight inflight
# TYPE demo_inflight gauge
demo_inflight 3
# HELP demo_latency_ns latency
# TYPE demo_latency_ns histogram
demo_latency_ns_bucket{le="1000"} 10
demo_latency_ns_bucket{le="+Inf"} 12
demo_latency_ns_sum 34567
demo_latency_ns_count 12
`

func TestParsePrometheusValid(t *testing.T) {
	fams, err := ParsePrometheus(validExposition)
	if err != nil {
		t.Fatal(err)
	}
	if got := fams["demo_requests_total"]; got == nil || got.Type != "counter" || got.Samples["demo_requests_total"] != 42 {
		t.Errorf("counter family: %+v", got)
	}
	if got := fams["demo_inflight"]; got == nil || got.Type != "gauge" || got.Samples["demo_inflight"] != 3 {
		t.Errorf("gauge family: %+v", got)
	}
	h := fams["demo_latency_ns"]
	if h == nil || h.Type != "histogram" || len(h.Samples) != 4 {
		t.Fatalf("histogram family: %+v", h)
	}
	if h.Samples[`demo_latency_ns_bucket{le="+Inf"}`] != 12 || h.Samples["demo_latency_ns_sum"] != 34567 {
		t.Errorf("histogram samples: %v", h.Samples)
	}
}

func TestParsePrometheusRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"sample without family", "lonely_metric 1\n"},
		{"unknown type", "# TYPE t frobnicator\nt 1\n"},
		{"type after samples", "# TYPE a counter\na 1\n# TYPE a counter\n"},
		{"unparseable value", "# TYPE a counter\na one\n"},
		{"missing value", "# TYPE a counter\na\n"},
		{"unbalanced braces", "# TYPE a counter\na}x{ 1\n"},
		{"histogram missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 2\nh_count 1\n"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParsePrometheus(tc.text); err == nil {
				t.Errorf("accepted malformed exposition:\n%s", tc.text)
			}
		})
	}
}

// TestParsePrometheusCounterNamedCount pins the suffix-folding rule: a
// counter whose own name ends in _count is not swallowed by a histogram.
func TestParsePrometheusCounterNamedCount(t *testing.T) {
	text := `# TYPE widget_count counter
widget_count 7
`
	fams, err := ParsePrometheus(text)
	if err != nil {
		t.Fatal(err)
	}
	if f := fams["widget_count"]; f == nil || f.Samples["widget_count"] != 7 {
		t.Errorf("counter named *_count mishandled: %+v", f)
	}
}

// TestParsePrometheusRoundTripsRegistry feeds an actual obs.Registry
// exposition through the parser — the two ends of the pipeline must agree.
func TestParsePrometheusRoundTripsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("rt_total", "round-trip counter").Add(5)
	reg.Gauge("rt_gauge", "round-trip gauge").Set(-2)
	h := reg.Histogram("rt_hist_ns", "round-trip histogram")
	for _, v := range []int64{10, 1000, 100000} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(sb.String())
	if err != nil {
		t.Fatalf("registry exposition rejected: %v\n%s", err, sb.String())
	}
	if fams["rt_total"] == nil || fams["rt_total"].Samples["rt_total"] != 5 {
		t.Errorf("counter: %+v", fams["rt_total"])
	}
	if fams["rt_gauge"] == nil || fams["rt_gauge"].Samples["rt_gauge"] != -2 {
		t.Errorf("gauge: %+v", fams["rt_gauge"])
	}
	if fams["rt_hist_ns"] == nil || fams["rt_hist_ns"].Samples["rt_hist_ns_count"] != 3 {
		t.Errorf("histogram: %+v", fams["rt_hist_ns"])
	}
}
