package serve

import (
	"fmt"
	"time"

	"paramra"
)

// budgetSource records who imposed the effective deadline of a request, so
// an exhausted budget maps onto a deterministic status code: 408 when the
// client asked for the bound, 504 when the server imposed it.
type budgetSource int

const (
	budgetServer budgetSource = iota
	budgetClient
)

// FieldError is a request-validation failure naming the offending wire
// field. The server renders it as a 400 with Code "invalid_options".
type FieldError struct {
	// Field is the wire-level knob name, e.g. "budgetMs" or "maxStates".
	Field string
	// Reason states the violated constraint.
	Reason string
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("serve: %s %s", e.Field, e.Reason)
}

// budget resolves the request's budget against the server's defaults and
// cap. Zero means "server default"; a negative or above-cap request is
// rejected with a field-level error rather than silently clamped.
func (c Config) budget(reqMS int64) (time.Duration, budgetSource, error) {
	if reqMS < 0 {
		return 0, budgetServer, &FieldError{
			Field:  "budgetMs",
			Reason: fmt.Sprintf("= %d: must be ≥ 0 (0 = server default)", reqMS),
		}
	}
	if reqMS == 0 {
		return c.DefaultBudget, budgetServer, nil
	}
	b := time.Duration(reqMS) * time.Millisecond
	if b > c.MaxBudget {
		return 0, budgetServer, &FieldError{
			Field:  "budgetMs",
			Reason: fmt.Sprintf("= %d: exceeds the server budget cap %d", reqMS, c.MaxBudget.Milliseconds()),
		}
	}
	return b, budgetClient, nil
}

// lowerFirst converts a Go field name to its wire spelling (MaxStates →
// maxStates); the wire schema uses lowerCamel names throughout.
func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]|0x20) + s[1:]
}

// Options maps wire knobs onto a paramra.Options, enforcing server caps
// with field-level errors. The returned Options carries no observability
// hooks; the server attaches its registry afterwards. Call on a Defaulted
// config — the zero Config rejects every nonzero knob.
func (c Config) Options(ro RequestOptions) (paramra.Options, error) {
	if ro.Parallelism > c.MaxParallelism {
		return paramra.Options{}, &FieldError{
			Field:  "parallelism",
			Reason: fmt.Sprintf("= %d: exceeds the server cap %d", ro.Parallelism, c.MaxParallelism),
		}
	}
	if c.MaxStatesCap > 0 && ro.MaxStates > c.MaxStatesCap {
		return paramra.Options{}, &FieldError{
			Field:  "maxStates",
			Reason: fmt.Sprintf("= %d: exceeds the server cap %d", ro.MaxStates, c.MaxStatesCap),
		}
	}
	if ro.Confirm && ro.ConfirmMaxEnv > c.MaxConfirmEnv {
		return paramra.Options{}, &FieldError{
			Field:  "confirmMaxEnv",
			Reason: fmt.Sprintf("= %d: exceeds the server cap %d", ro.ConfirmMaxEnv, c.MaxConfirmEnv),
		}
	}
	if ro.ConfirmMaxEnv < 0 {
		return paramra.Options{}, &FieldError{
			Field:  "confirmMaxEnv",
			Reason: fmt.Sprintf("= %d: must be ≥ 0", ro.ConfirmMaxEnv),
		}
	}
	opts := paramra.Options{
		MaxMacroStates: ro.MaxMacroStates,
		MaxStates:      ro.MaxStates,
		MaxSkeletons:   ro.MaxSkeletons,
		Parallelism:    ro.Parallelism,
		UnrollDis:      ro.UnrollDis,
		Datalog:        ro.Datalog,
		Prepass:        true,
	}
	if ro.Prepass != nil {
		opts.Prepass = *ro.Prepass
	}
	if ro.GoalVar != "" {
		opts.Goal = &paramra.Goal{Var: ro.GoalVar, Val: ro.GoalVal}
	}
	if opts.MaxStates == 0 {
		// Concrete exploration must never be unbounded on a shared server:
		// loops make concrete state spaces infinite in general.
		opts.MaxStates = c.MaxStatesCap
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = c.Parallelism
	}
	// Strict validation: the server answers 400 with the offending field
	// instead of the library's silent clamp.
	if err := opts.Validate(); err != nil {
		var oe *paramra.OptionError
		if asOptionError(err, &oe) {
			return paramra.Options{}, &FieldError{
				Field:  lowerFirst(oe.Field),
				Reason: fmt.Sprintf("= %d: %s", oe.Value, oe.Reason),
			}
		}
		return paramra.Options{}, err
	}
	return opts, nil
}
