package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// startServe boots a Server on an ephemeral port under Serve's lifecycle
// management and returns its base URL, the cancel that initiates the drain,
// and a channel carrying Serve's return value.
func startServe(t *testing.T, cfg Config, grace time.Duration) (base string, cancel context.CancelFunc, done chan error) {
	t.Helper()
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln, grace) }()
	base = fmt.Sprintf("http://%s", ln.Addr())
	waitReady(t, base)
	return base, cancel, done
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server did not become healthy")
}

// TestGracefulDrainCompletesInflight pins the drain contract: a request
// running when shutdown starts still gets its full (deterministic) response,
// and Serve returns nil once it has finished.
func TestGracefulDrainCompletesInflight(t *testing.T) {
	base, cancel, done := startServe(t, Config{}, 10*time.Second)

	// An in-flight request with a client budget large enough to outlive the
	// shutdown signal: peterson with the fast paths off runs for seconds, so
	// its 300ms budget expires well after the drain begins — the drained
	// server must still deliver the deterministic 408.
	off := false
	type result struct {
		status int
		body   []byte
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		body, _ := json.Marshal(VerifyRequest{
			System:  heavySystem(t),
			Options: RequestOptions{BudgetMS: 300, Prepass: &off, Parallelism: 1},
		})
		resp, err := http.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resc <- result{status: resp.StatusCode, body: buf.Bytes()}
	}()

	// Give the request time to enter verification, then pull the plug.
	time.Sleep(50 * time.Millisecond)
	cancel()

	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", r.err)
	}
	wantError(t, r.status, r.body, http.StatusRequestTimeout, CodeBudgetExceeded, "")

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil on a clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after the drain")
	}

	// The drained listener is gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after drain")
	}
}

// TestDrainRefusesNewWork pins that verification endpoints turn 503 once the
// drain begins, while health stays up until the listener closes.
func TestDrainRefusesNewWork(t *testing.T) {
	s := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln, 5*time.Second) }()
	base := fmt.Sprintf("http://%s", ln.Addr())
	waitReady(t, base)

	s.BeginDrain()
	status, body := postJSON(t, base+"/v1/verify", VerifyRequest{System: sysSafe})
	wantError(t, status, body, http.StatusServiceUnavailable, CodeDraining, "")

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d", resp.StatusCode)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("Serve after idle drain: %v", err)
	}
}

// TestBurstNoGoroutineLeak pins that a 200-request burst leaves no stray
// goroutines behind: the count settles back to (near) the pre-burst level.
func TestBurstNoGoroutineLeak(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Warm up the pools (HTTP keep-alive, verifier workers), then baseline.
	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: sysSafe})
	}
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	g0 := runtime.NumGoroutine()

	const requests = 200
	var wg sync.WaitGroup
	sys := []string{sysSafe, sysUnsafe}
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{System: sys[i%2]})
			if status != http.StatusOK {
				t.Errorf("burst request %d: %d %s", i, status, body)
			}
		}(i)
	}
	wg.Wait()

	// Settle: idle HTTP conns park, verifier goroutines exit.
	deadline := time.Now().Add(5 * time.Second)
	var g1 int
	for {
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
		g1 = runtime.NumGoroutine()
		if g1 <= g0+8 || time.Now().After(deadline) {
			break
		}
	}
	if g1 > g0+8 {
		t.Errorf("goroutine leak across the burst: %d before, %d after", g0, g1)
	}
}
