package serve

import (
	"encoding/json"
	"strings"
	"time"

	"paramra"
	"paramra/internal/obs"
)

// APIVersion is the wire-contract version carried in every response
// envelope. Bump it only with a compatibility plan; additive, omitempty
// fields do not require a bump.
const APIVersion = "v1"

// StatsDTO is the wire form of paramra.Stats. Field names are the lowerCamel
// spellings of the Go fields; zero counters are omitted so each backend's
// response carries only its own field group.
type StatsDTO struct {
	// Fixpoint backend.
	MacroStates     int `json:"macroStates,omitempty"`
	DisTransitions  int `json:"disTransitions,omitempty"`
	EnvConfigs      int `json:"envConfigs,omitempty"`
	EnvMsgs         int `json:"envMsgs,omitempty"`
	SaturationSteps int `json:"saturationSteps,omitempty"`

	// Concrete backend.
	States      int `json:"states,omitempty"`
	Transitions int `json:"transitions,omitempty"`

	// Datalog backend.
	Skeletons      int `json:"skeletons,omitempty"`
	DatalogFacts   int `json:"datalogFacts,omitempty"`
	DatalogRules   int `json:"datalogRules,omitempty"`
	FixpointRounds int `json:"fixpointRounds,omitempty"`
	DatalogAtoms   int `json:"datalogAtoms,omitempty"`

	// Shared engine counters.
	DedupHits    int64 `json:"dedupHits,omitempty"`
	PeakFrontier int64 `json:"peakFrontier,omitempty"`
	WallMS       int64 `json:"wallMs,omitempty"`
	Workers      int   `json:"workers,omitempty"`
}

// FromStats converts library stats to the wire form.
func FromStats(s paramra.Stats) StatsDTO {
	return StatsDTO{
		MacroStates:     s.MacroStates,
		DisTransitions:  s.DisTransitions,
		EnvConfigs:      s.EnvConfigs,
		EnvMsgs:         s.EnvMsgs,
		SaturationSteps: s.SaturationSteps,
		States:          s.States,
		Transitions:     s.Transitions,
		Skeletons:       s.Skeletons,
		DatalogFacts:    s.DatalogFacts,
		DatalogRules:    s.DatalogRules,
		FixpointRounds:  s.FixpointRounds,
		DatalogAtoms:    s.DatalogAtoms,
		DedupHits:       s.DedupHits,
		PeakFrontier:    s.PeakFrontier,
		WallMS:          s.Wall.Milliseconds(),
		Workers:         s.Workers,
	}
}

// ToStats converts wire stats back to the library form (wall time is carried
// at millisecond precision on the wire).
func (d StatsDTO) ToStats() paramra.Stats {
	return paramra.Stats{
		MacroStates:     d.MacroStates,
		DisTransitions:  d.DisTransitions,
		EnvConfigs:      d.EnvConfigs,
		EnvMsgs:         d.EnvMsgs,
		SaturationSteps: d.SaturationSteps,
		States:          d.States,
		Transitions:     d.Transitions,
		Skeletons:       d.Skeletons,
		DatalogFacts:    d.DatalogFacts,
		DatalogRules:    d.DatalogRules,
		FixpointRounds:  d.FixpointRounds,
		DatalogAtoms:    d.DatalogAtoms,
		DedupHits:       d.DedupHits,
		PeakFrontier:    d.PeakFrontier,
		Wall:            time.Duration(d.WallMS) * time.Millisecond,
		Workers:         d.Workers,
	}
}

// ResultDTO is the wire form of paramra.Result. The dependency graph is
// carried pre-rendered (its Go form is an internal pointer structure).
type ResultDTO struct {
	Unsafe         bool     `json:"unsafe"`
	Complete       bool     `json:"complete"`
	Class          string   `json:"class"`
	Underapprox    bool     `json:"underapprox,omitempty"`
	Stats          StatsDTO `json:"stats"`
	EnvThreadBound int64    `json:"envThreadBound"`
	Graph          string   `json:"graph,omitempty"`
	Witness        []string `json:"witness,omitempty"`
	DecidedBy      string   `json:"decidedBy,omitempty"`
	PrepassReason  string   `json:"prepassReason,omitempty"`
	CacheHit       bool     `json:"cacheHit,omitempty"`
}

// FromResult converts a library result to the wire form.
func FromResult(r paramra.Result) ResultDTO {
	d := ResultDTO{
		Unsafe:         r.Unsafe,
		Complete:       r.Complete,
		Class:          r.Class.String(),
		Underapprox:    r.Underapprox,
		Stats:          FromStats(r.Stats),
		EnvThreadBound: r.EnvThreadBound,
		Witness:        r.Witness,
		DecidedBy:      r.DecidedBy,
		PrepassReason:  r.PrepassReason,
		CacheHit:       r.CacheHit,
	}
	if r.Graph != nil {
		d.Graph = r.Graph.String()
	}
	return d
}

// InstanceResultDTO is the wire form of paramra.InstanceResult.
type InstanceResultDTO struct {
	Unsafe   bool     `json:"unsafe"`
	Complete bool     `json:"complete"`
	States   int      `json:"states"`
	Stats    StatsDTO `json:"stats"`
	Witness  string   `json:"witness,omitempty"`
}

// FromInstanceResult converts a library instance result to the wire form.
func FromInstanceResult(r paramra.InstanceResult) InstanceResultDTO {
	return InstanceResultDTO{
		Unsafe:   r.Unsafe,
		Complete: r.Complete,
		States:   r.States,
		Stats:    FromStats(r.Stats),
		Witness:  r.Witness,
	}
}

// DeadlockResultDTO is the wire form of paramra.DeadlockResult.
type DeadlockResultDTO struct {
	Deadlocks    int      `json:"deadlocks"`
	Terminal     int      `json:"terminal"`
	Complete     bool     `json:"complete"`
	Example      string   `json:"example,omitempty"`
	StuckThreads []string `json:"stuckThreads,omitempty"`
}

// FromDeadlockResult converts a library deadlock report to the wire form.
func FromDeadlockResult(r paramra.DeadlockResult) DeadlockResultDTO {
	return DeadlockResultDTO{
		Deadlocks:    r.Deadlocks,
		Terminal:     r.Terminal,
		Complete:     r.Complete,
		Example:      r.Example,
		StuckThreads: r.StuckThreads,
	}
}

// ConfirmErrorDTO is the wire form of paramra.ConfirmError.
type ConfirmErrorDTO struct {
	BoundTried  int64  `json:"boundTried"`
	StateCapHit bool   `json:"stateCapHit,omitempty"`
	Cause       string `json:"cause,omitempty"`
}

// FromConfirmError converts a library confirmation failure to the wire form.
func FromConfirmError(e *paramra.ConfirmError) ConfirmErrorDTO {
	d := ConfirmErrorDTO{BoundTried: e.BoundTried, StateCapHit: e.StateCapHit}
	if e.Err != nil {
		d.Cause = e.Err.Error()
	}
	return d
}

// RequestOptions is the wire form of the verification knobs. The zero value
// of every field selects the server's documented default; negative values
// and values above the server caps are rejected with a 400 naming the field.
type RequestOptions struct {
	// BudgetMS is the per-request verification budget in milliseconds,
	// mapped onto a context deadline (0 = server default; capped by the
	// server's max budget). A budget the client set that expires yields 408;
	// an expired server-imposed default yields 504.
	BudgetMS int64 `json:"budgetMs,omitempty"`
	// MaxStates caps concrete-instance exploration (0 = server default cap).
	MaxStates int `json:"maxStates,omitempty"`
	// MaxMacroStates caps the fixpoint macro-state search (0 = unlimited;
	// the budget is the primary limit).
	MaxMacroStates int `json:"maxMacroStates,omitempty"`
	// MaxSkeletons caps Datalog skeleton enumeration (0 = backend default).
	MaxSkeletons int `json:"maxSkeletons,omitempty"`
	// Parallelism is the worker count (0 = server default; capped by the
	// server's per-request parallelism cap).
	Parallelism int `json:"parallelism,omitempty"`
	// UnrollDis unrolls looping dis threads (bounded under-approximation).
	UnrollDis int `json:"unrollDis,omitempty"`
	// Datalog selects the makeP → Datalog backend.
	Datalog bool `json:"datalog,omitempty"`
	// Prepass enables the abstract-interpretation fast path (nil = server
	// default, which is on — matching the CLIs).
	Prepass *bool `json:"prepass,omitempty"`
	// GoalVar/GoalVal switch to the Message Generation problem.
	GoalVar string `json:"goalVar,omitempty"`
	GoalVal int    `json:"goalVal,omitempty"`
	// Confirm asks the server to confirm an UNSAFE verdict with a concrete
	// instance (ConfirmViolation) within ConfirmMaxEnv env threads.
	Confirm       bool `json:"confirm,omitempty"`
	ConfirmMaxEnv int  `json:"confirmMaxEnv,omitempty"`
}

// VerifyRequest asks for a parameterized safety verdict.
type VerifyRequest struct {
	// System is the system in .ra concrete syntax.
	System string `json:"system"`
	// Options tunes the run; the zero value is the server default.
	Options RequestOptions `json:"options"`
}

// InstanceRequest asks for concrete exploration of a fixed instance.
type InstanceRequest struct {
	System string `json:"system"`
	// EnvThreads is the instance's environment thread count (≥ 0).
	EnvThreads int            `json:"envThreads"`
	Options    RequestOptions `json:"options"`
}

// ConfirmDTO reports a confirmation attempt attached to an UNSAFE verdict.
type ConfirmDTO struct {
	// EnvThreads is the confirming instance's env thread count.
	EnvThreads int `json:"envThreads"`
	// Witness is the confirming interleaving, one event per line.
	Witness string `json:"witness,omitempty"`
	// Error is set when no instance within the bound confirmed.
	Error *ConfirmErrorDTO `json:"error,omitempty"`
}

// TraceDTO is the opt-in per-response span tree: the spans the request's
// verification opened, nested parent→child, with start offsets and
// durations in nanoseconds. Clients request it with the "X-Trace: 1" header;
// the trace ID itself rides on the envelope. Error replaces Spans when the
// capture could not be reconstructed.
type TraceDTO struct {
	Spans []*obs.TreeNode `json:"spans,omitempty"`
	Error string          `json:"error,omitempty"`
}

// VerifyResponse is the /v1/verify success envelope.
type VerifyResponse struct {
	APIVersion string      `json:"apiVersion"`
	RequestID  string      `json:"requestId,omitempty"`
	TraceID    string      `json:"traceId,omitempty"`
	System     string      `json:"system"`
	Verdict    string      `json:"verdict"`
	Result     ResultDTO   `json:"result"`
	Confirm    *ConfirmDTO `json:"confirm,omitempty"`
	Trace      *TraceDTO   `json:"trace,omitempty"`
}

// InstanceResponse is the /v1/instance success envelope.
type InstanceResponse struct {
	APIVersion string            `json:"apiVersion"`
	RequestID  string            `json:"requestId,omitempty"`
	TraceID    string            `json:"traceId,omitempty"`
	System     string            `json:"system"`
	EnvThreads int               `json:"envThreads"`
	Verdict    string            `json:"verdict"`
	Result     InstanceResultDTO `json:"result"`
	Trace      *TraceDTO         `json:"trace,omitempty"`
}

// DeadlockResponse is the /v1/deadlocks success envelope.
type DeadlockResponse struct {
	APIVersion string            `json:"apiVersion"`
	RequestID  string            `json:"requestId,omitempty"`
	TraceID    string            `json:"traceId,omitempty"`
	System     string            `json:"system"`
	EnvThreads int               `json:"envThreads"`
	Result     DeadlockResultDTO `json:"result"`
	Trace      *TraceDTO         `json:"trace,omitempty"`
}

// InventoryResponse is the /v1/inventory success envelope. Inventory maps
// each shared variable to the values of generatable messages (keys render
// sorted, so the body is deterministic).
type InventoryResponse struct {
	APIVersion string           `json:"apiVersion"`
	RequestID  string           `json:"requestId,omitempty"`
	TraceID    string           `json:"traceId,omitempty"`
	System     string           `json:"system"`
	Inventory  map[string][]int `json:"inventory"`
	Trace      *TraceDTO        `json:"trace,omitempty"`
}

// ErrorDTO is the machine-readable error payload.
type ErrorDTO struct {
	// Status is the HTTP status code, repeated in the body.
	Status int `json:"status"`
	// Code is a stable machine-readable discriminator (see errors.go).
	Code string `json:"code"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
	// Field names the offending request field for invalid_options errors.
	Field string `json:"field,omitempty"`
}

// ErrorResponse is the error envelope of every non-2xx response.
type ErrorResponse struct {
	APIVersion string   `json:"apiVersion"`
	RequestID  string   `json:"requestId,omitempty"`
	TraceID    string   `json:"traceId,omitempty"`
	Error      ErrorDTO `json:"error"`
}

// Verdict renders the canonical verdict string for a Result — the exact
// spelling raverify prints, shared here so the CLI and the wire API cannot
// drift: "SAFE", "UNSAFE", "UNKNOWN (limit reached)", with the
// under-approximation qualifier appended on unrolled SAFE verdicts.
func Verdict(res paramra.Result) string {
	v := "SAFE"
	if res.Unsafe {
		v = "UNSAFE"
	}
	if !res.Unsafe && !res.Complete {
		v = "UNKNOWN (limit reached)"
	}
	if res.Underapprox && !res.Unsafe {
		v += " (up to the unrolling bound)"
	}
	return v
}

// InstanceVerdict renders the verdict string for a fixed-instance
// exploration: UNSAFE on a violation, SAFE within the explored bounds
// otherwise (matching raexplore's qualification).
func InstanceVerdict(r paramra.InstanceResult) string {
	if r.Unsafe {
		return "UNSAFE"
	}
	if !r.Complete {
		return "SAFE (within explored bounds)"
	}
	return "SAFE"
}

// VerdictCore is the deterministic kernel of a verify response: the fields
// that are bit-identical across worker counts and repeated runs (timing and
// engine-scheduling counters excluded). The soak harness compares these
// bytes between the live server and a local library run.
type VerdictCore struct {
	System         string   `json:"system"`
	Verdict        string   `json:"verdict"`
	Unsafe         bool     `json:"unsafe"`
	Complete       bool     `json:"complete"`
	Class          string   `json:"class"`
	EnvThreadBound int64    `json:"envThreadBound"`
	DecidedBy      string   `json:"decidedBy"`
	Witness        []string `json:"witness"`
}

// Core projects the response onto its deterministic kernel.
func (r VerifyResponse) Core() VerdictCore {
	return VerdictCore{
		System:         r.System,
		Verdict:        r.Verdict,
		Unsafe:         r.Result.Unsafe,
		Complete:       r.Result.Complete,
		Class:          r.Result.Class,
		EnvThreadBound: r.Result.EnvThreadBound,
		DecidedBy:      r.Result.DecidedBy,
		Witness:        r.Result.Witness,
	}
}

// CoreBytes renders the deterministic kernel as canonical JSON bytes, the
// unit of the soak harness's byte-identical verdict comparison.
func (r VerifyResponse) CoreBytes() []byte {
	b, err := json.Marshal(r.Core())
	if err != nil { // a struct of scalars and strings cannot fail to marshal
		panic(err)
	}
	return b
}

// queryBool reads a boolean query parameter ("1", "true", "yes" are true).
func queryBool(v string) bool {
	switch strings.ToLower(v) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}
