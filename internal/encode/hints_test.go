package encode

import (
	"context"
	"testing"

	"paramra/internal/absint"
	"paramra/internal/lang"
)

// hintSystems mixes safe and unsafe, env-only and env+dis shapes with
// guarded code where the abstract value sets genuinely narrow registers.
var hintSystems = []struct {
	name string
	src  string
}{
	{"prodcons", `
system prodcons { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`},
	{"guarded-safe", `
system gs { vars x y; domain 4; env w; dis c }
thread w { regs r; r = load y; assume r == 3; store x 1 }
thread c { regs s; s = load x; assume s == 1; assert false }
`},
	{"env-only-unsafe", `
system s { vars x y; domain 3; env w }
thread w {
  regs r
  choice { store x 1 } or {
    r = load x; assume r == 1
    store y 2
  } or {
    r = load y; assume r == 2
    assert false
  }
}
`},
}

// TestHintsPreserveVerdict: the hint-restricted grounding must agree with
// the unrestricted one on every instance, while never emitting more rules.
func TestHintsPreserveVerdict(t *testing.T) {
	for _, tc := range hintSystems {
		t.Run(tc.name, func(t *testing.T) {
			sys := lang.MustParseSystem(tc.src)
			plain, complete, err := All(sys, 50_000)
			if err != nil || !complete {
				t.Fatalf("plain encode: %v (complete=%v)", err, complete)
			}
			hints := absint.Analyze(sys).EnvFacts()
			if hints == nil {
				t.Fatal("system has an env program but no env facts")
			}
			hinted, complete, err := AllCtxHints(context.Background(), sys, 50_000, hints)
			if err != nil || !complete {
				t.Fatalf("hinted encode: %v (complete=%v)", err, complete)
			}
			if got, want := Unsafe(hinted), Unsafe(plain); got != want {
				t.Fatalf("hinted verdict %v != plain verdict %v", got, want)
			}
			if p, h := countRules(plain), countRules(hinted); h > p {
				t.Errorf("hints grew the encoding: %d rules -> %d", p, h)
			} else {
				t.Logf("rules: %d plain, %d hinted", p, h)
			}
		})
	}
}

// TestHintsShrinkGuardedGrounding: on a system whose env store sits behind
// an equality guard, the hint must strictly reduce the rule count (the
// stored expression's register is pinned to one value instead of Dom).
func TestHintsShrinkGuardedGrounding(t *testing.T) {
	src := `
system gs { vars x y; domain 6; env w; dis c }
thread w { regs r; r = load y; assume r == 1; store x r }
thread c { regs s; store y 1; s = load x; assume s == 1; assert false }
`
	sys := lang.MustParseSystem(src)
	plain, _, err := All(sys, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	hinted, _, err := AllCtxHints(context.Background(), sys, 50_000, absint.Analyze(sys).EnvFacts())
	if err != nil {
		t.Fatal(err)
	}
	p, h := countRules(plain), countRules(hinted)
	if h >= p {
		t.Fatalf("guarded store not shrunk: %d rules plain, %d hinted", p, h)
	}
	if got, want := Unsafe(hinted), Unsafe(plain); got != want {
		t.Fatalf("hinted verdict %v != plain verdict %v", got, want)
	}
}

func countRules(ps []*Problem) int {
	n := 0
	for _, p := range ps {
		for _, r := range p.Prog.Rules {
			if !r.IsFact() {
				n++
			}
		}
	}
	return n
}
