package encode

import (
	"fmt"

	"paramra/internal/datalog"
	"paramra/internal/lang"
	"paramra/internal/simplified"
)

// freshVars allocates rule variables.
type freshVars struct{ n int }

func (f *freshVars) next() datalog.Term {
	t := datalog.V(datalog.Var(f.n))
	f.n++
	return t
}

func (b *builder) norm(v lang.Val) lang.Val {
	d := lang.Val(b.sys.Dom)
	return ((v % d) + d) % d
}

// etpAtom assembles an etp atom from a pc constant, register terms and view
// terms.
func (b *builder) etpAtom(pc lang.PC, regs, views []datalog.Term) datalog.Atom {
	terms := make([]datalog.Term, 0, 1+len(regs)+len(views))
	terms = append(terms, datalog.C(b.pcC[pc]))
	terms = append(terms, regs...)
	terms = append(terms, views...)
	return datalog.Atom{Pred: b.etp, Terms: terms}
}

// msgAtom assembles an emp/dmp atom.
func (b *builder) msgAtom(pred datalog.Pred, x lang.VarID, val datalog.Term, views []datalog.Term) datalog.Atom {
	terms := make([]datalog.Term, 0, 2+len(views))
	terms = append(terms, datalog.C(b.varConst(x)), val)
	terms = append(terms, views...)
	return datalog.Atom{Pred: pred, Terms: terms}
}

// valuations enumerates assignments of values to the given registers at the
// given program point. Without hints every register ranges over the full
// domain (Dom^len(regs) assignments); with hints each register ranges only
// over the values the abstract interpretation allows at pc, which can shrink
// the grounding by orders of magnitude on guarded code.
func (b *builder) valuations(pc lang.PC, regs []lang.RegID, f func(map[lang.RegID]lang.Val)) {
	choices := make([][]lang.Val, len(regs))
	for i, r := range regs {
		choices[i] = b.regChoices(pc, r)
	}
	assign := map[lang.RegID]lang.Val{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(regs) {
			f(assign)
			return
		}
		for _, d := range choices[i] {
			assign[regs[i]] = d
			rec(i + 1)
		}
	}
	rec(0)
}

// regChoices returns the candidate values for one register at pc: the
// hint-restricted set when it is exact, the full domain otherwise. The
// returned values are normalized into [0, Dom) and deduplicated, in
// ascending order for deterministic rule emission.
func (b *builder) regChoices(pc lang.PC, r lang.RegID) []lang.Val {
	if b.hints != nil {
		if vals, ok := b.hints.AllowedAt(pc, r); ok {
			seen := make(map[lang.Val]bool, len(vals))
			for _, v := range vals {
				seen[b.norm(v)] = true
			}
			out := make([]lang.Val, 0, len(seen))
			for d := 0; d < b.sys.Dom; d++ {
				if seen[lang.Val(d)] {
					out = append(out, lang.Val(d))
				}
			}
			return out
		}
	}
	full := make([]lang.Val, b.sys.Dom)
	for d := range full {
		full[d] = lang.Val(d)
	}
	return full
}

// evalUnder evaluates e under a partial valuation (unmentioned registers
// read as 0; by construction e only reads mentioned registers).
func (b *builder) evalUnder(e lang.Expr, assign map[lang.RegID]lang.Val) lang.Val {
	rv := make([]lang.Val, b.numRegs)
	for r, v := range assign {
		rv[r] = v
	}
	return e.Eval(rv)
}

// regTerms builds the register term vector: positions fixed by assign become
// constants, the rest fresh variables.
func (b *builder) regTerms(f *freshVars, assign map[lang.RegID]lang.Val) []datalog.Term {
	out := make([]datalog.Term, b.numRegs)
	for r := 0; r < b.numRegs; r++ {
		if v, ok := assign[lang.RegID(r)]; ok {
			out[r] = datalog.C(b.valC[v])
		} else {
			out[r] = f.next()
		}
	}
	return out
}

func freshN(f *freshVars, n int) []datalog.Term {
	out := make([]datalog.Term, n)
	for i := range out {
		out[i] = f.next()
	}
	return out
}

// emitEnvRules translates every env CFG edge into Datalog rules, following
// the simplified semantics exactly:
//
//	etp'(…)           :- etp(…)                          (silent ops)
//	etp'[r↦D](pc',J̄)  :- etp(pc,R̄,W̄), emp(x,D,V̄), joins  (env load)
//	etp'[r↦D](pc',J̄)  :- etp(pc,R̄,W̄), dmp(x,D,V̄), joins  (dis load)
//	emp(x,d,W̄[x↦N])   :- etp(pc,R̄,W̄), pjoin(Wx,t0,N)     (env store)
//	bad()             :- etp(pc,_,_)                      (assert false)
//
// Assume/assign edges are grounded over the valuations of the registers the
// expression reads (the paper's ⟦e⟧ interpretation tables).
func (b *builder) emitEnvRules() error {
	for pc := 0; pc < b.envCFG.NumNodes; pc++ {
		for _, e := range b.envCFG.Out[pc] {
			switch e.Op.Kind {
			case lang.OpNop:
				f := &freshVars{}
				regs := freshN(f, b.numRegs)
				views := freshN(f, b.numVars)
				b.addRule(datalog.Rule{
					Head:    b.etpAtom(e.To, regs, views),
					Body:    []datalog.Atom{b.etpAtom(e.From, regs, views)},
					NumVars: f.n,
				})

			case lang.OpAssume:
				b.valuations(e.From, lang.ExprRegs(e.Op.E), func(assign map[lang.RegID]lang.Val) {
					if b.evalUnder(e.Op.E, assign) == 0 {
						return
					}
					f := &freshVars{}
					regs := b.regTerms(f, assign)
					views := freshN(f, b.numVars)
					b.addRule(datalog.Rule{
						Head:    b.etpAtom(e.To, regs, views),
						Body:    []datalog.Atom{b.etpAtom(e.From, regs, views)},
						NumVars: f.n,
					})
				})

			case lang.OpAssign:
				b.valuations(e.From, lang.ExprRegs(e.Op.E), func(assign map[lang.RegID]lang.Val) {
					d := b.norm(b.evalUnder(e.Op.E, assign))
					f := &freshVars{}
					regs := b.regTerms(f, assign)
					views := freshN(f, b.numVars)
					head := make([]datalog.Term, len(regs))
					copy(head, regs)
					head[e.Op.Reg] = datalog.C(b.valC[d])
					b.addRule(datalog.Rule{
						Head:    b.etpAtom(e.To, head, views),
						Body:    []datalog.Atom{b.etpAtom(e.From, regs, views)},
						NumVars: f.n,
					})
				})

			case lang.OpLoad:
				b.emitLoad(e, b.emp, b.pjoin)
				b.emitLoad(e, b.dmp, b.djoin)

			case lang.OpStore:
				b.emitStore(e)

			case lang.OpAssertFail:
				f := &freshVars{}
				regs := freshN(f, b.numRegs)
				views := freshN(f, b.numVars)
				b.addRule(datalog.Rule{
					Head:    datalog.Atom{Pred: b.bad},
					Body:    []datalog.Atom{b.etpAtom(e.From, regs, views)},
					NumVars: f.n,
				})

			case lang.OpCASOp:
				return fmt.Errorf("encode: env CAS at pc %d (outside the decidable class)", pc)
			}
		}
	}
	// unsafe() :- bad().
	b.addRule(datalog.Rule{
		Head: datalog.Atom{Pred: b.unsafeP},
		Body: []datalog.Atom{{Pred: b.bad}},
	})
	return nil
}

// emitLoad emits the load rule reading from msgPred (emp or dmp), using
// xJoin (pjoin or djoin) for the loaded variable's view component and tmax
// elsewhere.
func (b *builder) emitLoad(e lang.Edge, msgPred, xJoin datalog.Pred) {
	f := &freshVars{}
	regs := freshN(f, b.numRegs)
	w := freshN(f, b.numVars)  // thread view
	vv := freshN(f, b.numVars) // message view
	j := freshN(f, b.numVars)  // joined view
	d := f.next()              // loaded value

	body := []datalog.Atom{
		b.etpAtom(e.From, regs, w),
		b.msgAtom(msgPred, e.Op.Var, d, vv),
	}
	for i := 0; i < b.numVars; i++ {
		join := b.tmax
		if i == int(e.Op.Var) {
			join = xJoin
		}
		body = append(body, datalog.Atom{Pred: join, Terms: []datalog.Term{w[i], vv[i], j[i]}})
	}
	head := make([]datalog.Term, len(regs))
	copy(head, regs)
	head[e.Op.Reg] = d
	b.addRule(datalog.Rule{
		Head:    b.etpAtom(e.To, head, j),
		Body:    body,
		NumVars: f.n,
	})
}

// emitStore emits, per valuation of the stored expression's registers, the
// etp-successor rule and the emp-generation rule.
func (b *builder) emitStore(e lang.Edge) {
	x := e.Op.Var
	b.valuations(e.From, lang.ExprRegs(e.Op.E), func(assign map[lang.RegID]lang.Val) {
		d := b.norm(b.evalUnder(e.Op.E, assign))
		for _, genMsg := range []bool{false, true} {
			f := &freshVars{}
			regs := b.regTerms(f, assign)
			w := freshN(f, b.numVars)
			n := f.next() // bumped timestamp Plus(⌊Wx⌋)
			body := []datalog.Atom{
				b.etpAtom(e.From, regs, w),
				// pjoin(Wx, t0, N) computes N = (⌊max(Wx,0)⌋)⁺ = ⌊Wx⌋⁺.
				{Pred: b.pjoin, Terms: []datalog.Term{w[x], datalog.C(b.timeC[simplified.Int(0)]), n}},
			}
			nw := make([]datalog.Term, len(w))
			copy(nw, w)
			nw[x] = n
			var head datalog.Atom
			if genMsg {
				head = b.msgAtom(b.emp, x, datalog.C(b.valC[d]), nw)
			} else {
				head = b.etpAtom(e.To, regs, nw)
			}
			b.addRule(datalog.Rule{Head: head, Body: body, NumVars: f.n})
		}
	})
}

func (b *builder) addRule(r datalog.Rule) {
	if err := b.prog.AddRule(r); err != nil {
		panic(fmt.Sprintf("encode: bad rule: %v", err))
	}
}

// empGround renders a simplified env message as a ground emp atom.
func (b *builder) empGround(m *simplified.AMsg) (datalog.GroundAtom, error) {
	args := []datalog.Const{b.varConst(m.Var), b.valC[m.Val]}
	for _, t := range m.View {
		c, ok := b.timeC[t]
		if !ok {
			return datalog.GroundAtom{}, fmt.Errorf("encode: timestamp %s outside universe", t)
		}
		args = append(args, c)
	}
	return datalog.GroundAtom{Pred: b.emp, Args: args}, nil
}

// emitSkeleton encodes the guessed dis run as a chain of step predicates:
// step_{j+1}() :- step_j() [, emp(E)], with dis messages becoming available
// as dmp facts conditioned on their step, and unsafe() inferred from the
// terminating assert (or from bad() for env-side asserts). The returned goal
// is unsafe().
func (b *builder) emitSkeleton(sk *simplified.Skeleton) (datalog.GroundAtom, error) {
	goal := datalog.GroundAtom{Pred: b.unsafeP}
	prev := b.prog.MustPred("step0", 0)
	if err := b.prog.Fact(prev); err != nil {
		return goal, err
	}
	if sk == nil {
		return goal, nil
	}
	for j, st := range sk.Steps {
		if st.Assert {
			b.addRule(datalog.Rule{
				Head: datalog.Atom{Pred: b.unsafeP},
				Body: []datalog.Atom{{Pred: prev}},
			})
			if j != len(sk.Steps)-1 {
				return goal, fmt.Errorf("encode: assert step %d is not terminal", j)
			}
			return goal, nil
		}
		next := b.prog.MustPred(fmt.Sprintf("step%d", j+1), 0)
		body := []datalog.Atom{{Pred: prev}}
		if st.ReadEnv != nil {
			eg, err := b.empGround(st.ReadEnv)
			if err != nil {
				return goal, err
			}
			terms := make([]datalog.Term, len(eg.Args))
			for i, a := range eg.Args {
				terms[i] = datalog.C(a)
			}
			body = append(body, datalog.Atom{Pred: b.emp, Terms: terms})
		}
		b.addRule(datalog.Rule{Head: datalog.Atom{Pred: next}, Body: body})
		if st.Stored != nil {
			margs := []datalog.Term{datalog.C(b.varConst(st.Stored.Var)), datalog.C(b.valC[st.Stored.Val])}
			for _, t := range st.Stored.View {
				c, ok := b.timeC[t]
				if !ok {
					return goal, fmt.Errorf("encode: stored timestamp %s outside universe", t)
				}
				margs = append(margs, datalog.C(c))
			}
			b.addRule(datalog.Rule{
				Head: datalog.Atom{Pred: b.dmp, Terms: margs},
				Body: []datalog.Atom{{Pred: next}},
			})
		}
		prev = next
	}
	return goal, nil
}
