package encode

import (
	"testing"

	"paramra/internal/datalog"
	"paramra/internal/lang"
	"paramra/internal/simplified"
)

// checkAgainstVerifier asserts that the Datalog pipeline verdict matches the
// integrated fixpoint verifier (Lemma 4.3: MG holds iff some makeP instance
// has a successful query evaluation).
func checkAgainstVerifier(t *testing.T, src string) {
	t.Helper()
	sys := lang.MustParseSystem(src)
	v, err := simplified.New(sys, simplified.Options{})
	if err != nil {
		t.Fatalf("verifier: %v", err)
	}
	want := v.Verify().Unsafe

	ps, complete, err := All(sys, 50_000)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !complete {
		t.Fatalf("skeleton enumeration incomplete")
	}
	got := Unsafe(ps)
	if got != want {
		t.Fatalf("datalog pipeline says unsafe=%v, verifier says %v (%d skeletons)",
			got, want, len(ps))
	}
}

func TestEncodeEnvOnlyUnsafe(t *testing.T) {
	checkAgainstVerifier(t, `
system s { vars x y; domain 3; env w }
thread w {
  regs r
  choice { store x 1 } or {
    r = load x; assume r == 1
    store y 2
  } or {
    r = load y; assume r == 2
    assert false
  }
}
`)
}

func TestEncodeEnvOnlySafe(t *testing.T) {
	checkAgainstVerifier(t, `
system s { vars x y; domain 3; env w }
thread w {
  regs r
  r = load y; assume r == 2
  assert false
}
`)
}

func TestEncodeEnvLoops(t *testing.T) {
	checkAgainstVerifier(t, `
system s { vars x; domain 5; env w }
thread w {
  regs r
  loop { r = load x; store x (r + 1) }
  assume r == 3
  assert false
}
`)
}

func TestEncodeProdConsUnsafe(t *testing.T) {
	checkAgainstVerifier(t, `
system s { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`)
}

func TestEncodeMPSafe(t *testing.T) {
	checkAgainstVerifier(t, `
system s { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`)
}

func TestEncodeCASEnvSupply(t *testing.T) {
	checkAgainstVerifier(t, `
system s { vars x a; domain 2; env w; dis t1; dis t2 }
thread w { store x 1 }
thread t1 { cas x 1 0; store a 1 }
thread t2 { regs r; cas x 1 0; r = load a; assume r == 1; assert false }
`)
}

func TestEncodeCASMutexSafe(t *testing.T) {
	checkAgainstVerifier(t, `
system s { vars x a; domain 2; env e; dis t1; dis t2 }
thread e { skip }
thread t1 { cas x 0 1; store a 1 }
thread t2 { regs r; cas x 0 1; r = load a; assume r == 1; assert false }
`)
}

func TestEncodeDisStoreFeedsEnv(t *testing.T) {
	// The env thread can act only after the dis store: exercises the dmp
	// step-chain causality.
	checkAgainstVerifier(t, `
system s { vars x y; domain 3; env e; dis d }
thread e { regs r; r = load x; assume r == 2; store y 1 }
thread d { regs s; store x 2; s = load y; assume s == 1; assert false }
`)
}

func TestEncodeCausalityRespected(t *testing.T) {
	// Unsafe only if the dis thread could read y=1 *before* storing x=2 —
	// which causality forbids: env writes y=1 only after seeing x=2.
	checkAgainstVerifier(t, `
system s { vars x y; domain 3; env e; dis d }
thread e { regs r; r = load x; assume r == 2; store y 1 }
thread d { regs s; s = load y; assume s == 1; store x 2; assert false }
`)
}

func TestEnvOnlySingleProblem(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; env w }
thread w { store x 1 }
`)
	p, err := EnvOnly(sys)
	if err != nil {
		t.Fatal(err)
	}
	if p.Skeleton != nil {
		t.Error("env-only problem should have no skeleton")
	}
	// Rule shape check: at most 2 IDB body atoms per rule (the Cache
	// Datalog requirement behind Theorem 4.1).
	for _, r := range p.Prog.Rules {
		idb := 0
		for _, a := range r.Body {
			if !p.EDBPreds[a.Pred] {
				idb++
			}
		}
		if idb > 2 {
			t.Fatalf("rule with %d IDB body atoms: %s", idb, p.Prog.AtomString(r.Head))
		}
	}
}

func TestEnvOnlyRejectsDis(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; env w; dis d }
thread w { skip }
thread d { skip }
`)
	if _, err := EnvOnly(sys); err == nil {
		t.Error("EnvOnly accepted a system with dis threads")
	}
}

func TestAllRejectsNoEnv(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; dis d }
thread d { skip }
`)
	if _, _, err := All(sys, 10); err == nil {
		t.Error("All accepted a system without env")
	}
}

func TestEncodedProgramQueriesDirectly(t *testing.T) {
	// Inspect the generated program: the emp atom for the env store must be
	// derivable.
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; env w }
thread w { store x 1 }
`)
	p, err := EnvOnly(sys)
	if err != nil {
		t.Fatal(err)
	}
	db := datalog.EvalSemiNaive(p.Prog)
	found := false
	for _, g := range db.All() {
		if p.Prog.Preds[g.Pred].Name == "emp" {
			found = true
		}
	}
	if !found {
		t.Fatal("no emp atom derived for the env store")
	}
	if datalog.Query(p.Prog, p.Goal) {
		t.Error("system without asserts must be safe")
	}
}
