package encode

import (
	"testing"

	"paramra/internal/lang"
	"paramra/internal/simplified"
)

// TestSkeletonCapReported: a tiny skeleton cap must be reported as
// non-exhaustive enumeration.
func TestSkeletonCapReported(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x y; domain 3; env e; dis d1; dis d2 }
thread e { regs r; r = load x; store y (r + 1) }
thread d1 { store x 1; store x 2 }
thread d2 { regs q; q = load y; store x q }
`)
	ps, complete, err := All(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Error("cap of 2 skeletons reported as exhaustive")
	}
	if len(ps) == 0 {
		t.Error("no problems generated under the cap")
	}
}

// TestSkeletonsEnvOnlyEmpty: without dis threads, Skeletons yields exactly
// the empty run.
func TestSkeletonsEnvOnlyEmpty(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; env e }
thread e { store x 1 }
`)
	v, err := simplified.New(sys, simplified.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sks, complete := v.Skeletons(10)
	if !complete || len(sks) != 1 || len(sks[0].Steps) != 0 || sks[0].Unsafe {
		t.Fatalf("env-only skeletons = %+v (complete=%v)", sks, complete)
	}
}

// TestSkeletonStepsContent: a dis run's skeleton records stores with their
// slots and env reads with the exact message.
func TestSkeletonStepsContent(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x y; domain 3; env e; dis d }
thread e { regs r; r = load x; assume r == 1; store y 2 }
thread d { regs q; store x 1; q = load y; assume q == 2; assert false }
`)
	v, err := simplified.New(sys, simplified.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sks, complete := v.Skeletons(10_000)
	if !complete {
		t.Fatal("incomplete")
	}
	foundUnsafe := false
	for _, sk := range sks {
		if !sk.Unsafe {
			continue
		}
		foundUnsafe = true
		var sawStore, sawEnvRead, sawAssert bool
		for _, st := range sk.Steps {
			if st.Kind == lang.OpStore && st.Stored != nil && st.TS >= 1 {
				sawStore = true
			}
			if st.Kind == lang.OpLoad && st.ReadEnv != nil && st.ReadEnv.Val == 2 {
				sawEnvRead = true
			}
			if st.Assert {
				sawAssert = true
			}
		}
		if !sawStore || !sawEnvRead || !sawAssert {
			t.Errorf("unsafe skeleton missing structure: store=%v envread=%v assert=%v",
				sawStore, sawEnvRead, sawAssert)
		}
	}
	if !foundUnsafe {
		t.Fatal("no unsafe skeleton found")
	}
}

// TestEncodeDisCASOnEnvMessage: the skeleton path where a dis CAS consumes
// an env message must survive the Datalog round trip.
func TestEncodeDisCASOnEnvMessage(t *testing.T) {
	checkAgainstVerifier(t, `
system s { vars x y; domain 3; env w; dis d }
thread w { store x 1 }
thread d {
  regs q
  cas x 1 2
  q = load x; assume q == 2
  assert false
}
`)
}
