package absint

import (
	"paramra/internal/lang"
)

// Candidate-search budgets. The search is only a gate in front of the
// concrete replay, so the budgets favour cheapness over completeness:
// exceeding them means "no candidate found", never a wrong answer.
const (
	// maxCandidateNodes bounds DFS node expansions per thread.
	maxCandidateNodes = 1 << 14
	// maxLoadFanout bounds how many written-set values a single load
	// branches over; wider sets make the register unknown instead.
	maxLoadFanout = 8
)

// Candidate is a loop-free path of one thread from its entry to an `assert
// false` edge along which every assume and CAS is satisfiable with concrete
// values drawn from the abstract written-sets.
type Candidate struct {
	// ThreadIndex indexes Sys.Threads().
	ThreadIndex int
	// EnvThread is true when the violating thread is the env template (a
	// witness instance then needs at least one replica).
	EnvThread bool
}

// findCandidates scans every thread for loop-free constant-folded paths to
// an assert. The returned slice is ordered like Sys.Threads().
func findCandidates(res *Result) []Candidate {
	var out []Candidate
	hasEnv := res.Sys.Env != nil
	seen := map[*ThreadFacts]bool{}
	for i, tf := range res.Threads {
		if seen[tf] {
			continue
		}
		seen[tf] = true
		if candidateInThread(res, tf) {
			out = append(out, Candidate{
				ThreadIndex: i,
				EnvThread:   hasEnv && i == 0,
			})
		}
	}
	return out
}

// candValuation is a partial concrete register valuation: vals[r] is
// meaningful only when known[r]; unknown registers make conditions
// optimistically satisfiable (the concrete replay is the real check).
type candValuation struct {
	vals  []lang.Val
	known []bool
}

func (cv candValuation) set(r lang.RegID, v lang.Val, ok bool) candValuation {
	out := candValuation{
		vals:  append([]lang.Val(nil), cv.vals...),
		known: append([]bool(nil), cv.known...),
	}
	if int(r) >= 0 && int(r) < len(out.vals) {
		out.vals[r] = v
		out.known[r] = ok
	}
	return out
}

// candidateInThread runs a depth-first search for a loop-free assert path.
func candidateInThread(res *Result, tf *ThreadFacts) bool {
	numRegs := tf.Prog.NumRegs()
	g := tf.CFG
	dom := res.Sys.Dom
	onPath := make([]bool, g.NumNodes)
	budget := maxCandidateNodes

	var dfs func(pc lang.PC, cv candValuation) bool
	dfs = func(pc lang.PC, cv candValuation) bool {
		if budget <= 0 || onPath[pc] {
			return false
		}
		budget--
		onPath[pc] = true
		defer func() { onPath[pc] = false }()

		for _, e := range g.Out[pc] {
			switch e.Op.Kind {
			case lang.OpAssertFail:
				return true
			case lang.OpAssume:
				v, ok := evalMaybe(e.Op.E, cv)
				if ok && v == 0 {
					continue // definitely blocks on this valuation
				}
				if dfs(e.To, cv) {
					return true
				}
			case lang.OpAssign:
				v, ok := evalMaybe(e.Op.E, cv)
				if ok {
					v = normVal(v, dom)
				}
				if dfs(e.To, cv.set(e.Op.Reg, v, ok)) {
					return true
				}
			case lang.OpLoad:
				w := res.Written[e.Op.Var]
				if vals, ok := w.Exact(); ok && len(vals) <= maxLoadFanout {
					for _, v := range vals {
						if dfs(e.To, cv.set(e.Op.Reg, v, true)) {
							return true
						}
					}
				} else if dfs(e.To, cv.set(e.Op.Reg, 0, false)) {
					return true
				}
			case lang.OpCASOp:
				v, ok := evalMaybe(e.Op.E, cv)
				if ok && !res.VarCanHold(e.Op.Var, v) {
					continue // the expected value is never observable
				}
				if dfs(e.To, cv) {
					return true
				}
			default: // OpNop, OpStore
				if dfs(e.To, cv) {
					return true
				}
			}
		}
		return false
	}

	cv := candValuation{vals: make([]lang.Val, numRegs), known: make([]bool, numRegs)}
	for i := range cv.known {
		cv.known[i] = true // registers start at a known 0
	}
	return dfs(g.Entry, cv)
}

// evalMaybe evaluates e under a partial valuation; ok is false when the
// result depends on an unknown register. Short-circuit cases where one
// operand decides the result are folded, matching Expr.Eval.
func evalMaybe(e lang.Expr, cv candValuation) (lang.Val, bool) {
	switch e := e.(type) {
	case lang.ConstExpr:
		return e.V, true
	case lang.RegExpr:
		i := int(e.Reg)
		if i < 0 || i >= len(cv.vals) {
			return 0, true // out-of-range registers read as 0 (Expr.Eval)
		}
		return cv.vals[i], cv.known[i]
	case lang.UnExpr:
		val, ok := evalMaybe(e.E, cv)
		if !ok {
			return 0, false
		}
		return lang.UnExpr{Op: e.Op, E: lang.Num(val)}.Eval(nil), true
	case lang.BinExpr:
		l, lok := evalMaybe(e.L, cv)
		if e.Op == lang.OpAnd && lok && l == 0 {
			return 0, true
		}
		if e.Op == lang.OpOr && lok && l != 0 {
			return 1, true
		}
		r, rok := evalMaybe(e.R, cv)
		if !lok || !rok {
			return 0, false
		}
		return lang.BinExpr{Op: e.Op, L: lang.Num(l), R: lang.Num(r)}.Eval(nil), true
	default:
		return 0, false
	}
}

// normVal reduces a value into [0, dom), matching the engines' commit norm.
func normVal(v lang.Val, dom int) lang.Val {
	d := lang.Val(dom)
	if d <= 0 {
		return v
	}
	return ((v % d) + d) % d
}
