package absint

import (
	"context"
	"testing"

	"paramra/internal/lang"
)

func parse(t *testing.T, src string) *lang.System {
	t.Helper()
	sys, err := lang.ParseSystem(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sys
}

const mpSrc = `
system mp { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`

func TestAnalyzeWrittenSets(t *testing.T) {
	sys := parse(t, mpSrc)
	res := Analyze(sys)
	x, _ := sys.VarByName("x")
	y, _ := sys.VarByName("y")
	if got := res.Written[x].String(); got != "{0,1}" {
		t.Fatalf("written(x) = %s", got)
	}
	if got := res.Written[y].String(); got != "{0,1}" {
		t.Fatalf("written(y) = %s", got)
	}
	// mp's assert is value-reachable (the value abstraction cannot see the
	// ordering that makes it safe).
	if !res.AssertReachable() {
		t.Fatal("mp assert should be abstractly reachable")
	}
}

// The guard value 2 is never written: the assert is abstractly unreachable,
// so the system is decided SAFE without any state-space search.
const valueSafeSrc = `
system vsafe { vars f; domain 4; env w; dis c }
thread w { store f 1 }
thread c { regs a; a = load f; assume a == 2; assert false }
`

func TestAnalyzeProvesValueSafety(t *testing.T) {
	sys := parse(t, valueSafeSrc)
	res := Analyze(sys)
	f, _ := sys.VarByName("f")
	if got := res.Written[f].String(); got != "{0,1}" {
		t.Fatalf("written(f) = %s", got)
	}
	if res.AssertReachable() {
		t.Fatal("assert should be abstractly unreachable")
	}
}

// Interference closure: thread b's store of 2 is guarded by a value only
// thread a publishes, and the assert is guarded by the 2 — reachability
// needs two interference rounds to propagate.
const chainSrc = `
system chain { vars x y; domain 4; env a; dis b; dis c }
thread a { store x 1 }
thread b { regs r; r = load x; assume r == 1; store y 2 }
thread c { regs s; s = load y; assume s == 2; assert false }
`

func TestAnalyzeInterferenceRounds(t *testing.T) {
	sys := parse(t, chainSrc)
	res := Analyze(sys)
	y, _ := sys.VarByName("y")
	if !res.VarCanHold(y, 2) {
		t.Fatalf("written(y) = %s must include the chained 2", res.Written[y])
	}
	if res.Rounds < 2 {
		t.Fatalf("chained publication needs >= 2 rounds, got %d", res.Rounds)
	}
	if !res.AssertReachable() {
		t.Fatal("chained assert should be abstractly reachable")
	}
}

// A CAS whose expected value is never observable blocks forever, so the
// value it would publish never enters the written-set.
const casDeadSrc = `
system casdead { vars l g; domain 4; env w; dis c }
thread w { cas l 2 3 }
thread c { regs a; a = load l; assume a == 3; assert false }
`

func TestAnalyzeCASFeasibility(t *testing.T) {
	sys := parse(t, casDeadSrc)
	res := Analyze(sys)
	l, _ := sys.VarByName("l")
	if got := res.Written[l].String(); got != "{0}" {
		t.Fatalf("written(l) = %s; dead CAS must not publish", got)
	}
	if res.AssertReachable() {
		t.Fatal("assert behind a dead CAS-published value should be unreachable")
	}
}

// Loops are handled by the fixpoint: a dis-cyclic system (outside the
// decidable fragment) can still be proved safe abstractly.
const cyclicSafeSrc = `
system cyc { vars x; domain 4; env w; dis c }
thread w { store x 1 }
thread c { regs a; while a == 0 { a = load x }; assume a == 3; assert false }
`

func TestAnalyzeCyclicDis(t *testing.T) {
	sys := parse(t, cyclicSafeSrc)
	res := Analyze(sys)
	if res.AssertReachable() {
		t.Fatal("value 3 is never written; cyclic dis must still prove safety")
	}
}

func TestPrepassSafe(t *testing.T) {
	sys := parse(t, valueSafeSrc)
	out, err := Prepass(context.Background(), sys, Options{})
	if err != nil {
		t.Fatalf("prepass: %v", err)
	}
	if out.Verdict != Safe {
		t.Fatalf("verdict = %s (%s), want SAFE", out.Verdict, out.Reason)
	}
}

func TestPrepassUnsafeReplay(t *testing.T) {
	src := `
system prodcons { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`
	sys := parse(t, src)
	out, err := Prepass(context.Background(), sys, Options{})
	if err != nil {
		t.Fatalf("prepass: %v", err)
	}
	if out.Verdict != Unsafe {
		t.Fatalf("verdict = %s (%s), want UNSAFE", out.Verdict, out.Reason)
	}
	if out.EnvThreads != 1 {
		t.Fatalf("confirming instance should need 1 env thread, got %d", out.EnvThreads)
	}
	if out.Witness == "" {
		t.Fatal("UNSAFE prepass must carry a concrete witness")
	}
}

func TestPrepassInconclusiveOnOrderingSafety(t *testing.T) {
	// mp is SAFE by ordering, which the value abstraction cannot prove; the
	// replay finds no violation either. The prepass must NOT claim UNSAFE.
	sys := parse(t, mpSrc)
	out, err := Prepass(context.Background(), sys, Options{})
	if err != nil {
		t.Fatalf("prepass: %v", err)
	}
	if out.Verdict != Inconclusive {
		t.Fatalf("verdict = %s (%s), want INCONCLUSIVE", out.Verdict, out.Reason)
	}
}

func TestPrepassGoal(t *testing.T) {
	sys := parse(t, valueSafeSrc)
	f, _ := sys.VarByName("f")
	out, err := Prepass(context.Background(), sys, Options{Goal: &Goal{Var: f, Val: 3}})
	if err != nil {
		t.Fatalf("prepass: %v", err)
	}
	if out.Verdict != Safe {
		t.Fatalf("goal 3 is unwritable; verdict = %s (%s)", out.Verdict, out.Reason)
	}
	out, err = Prepass(context.Background(), sys, Options{Goal: &Goal{Var: f, Val: 1}})
	if err != nil {
		t.Fatalf("prepass: %v", err)
	}
	if out.Verdict != Inconclusive {
		t.Fatalf("goal 1 is writable; verdict = %s, want INCONCLUSIVE", out.Verdict)
	}
}

func TestPrepassEnvlessDis(t *testing.T) {
	// Env-less two-thread store buffering: both threads can read 0 — UNSAFE
	// under RA; the replay at n=0 must confirm.
	src := `
system sb { vars x y; domain 2; dis t0; dis t1 }
thread t0 { regs a; store x 1; a = load y; assume a == 0; assert false }
thread t1 { store y 1 }
`
	sys := parse(t, src)
	out, err := Prepass(context.Background(), sys, Options{})
	if err != nil {
		t.Fatalf("prepass: %v", err)
	}
	if out.Verdict != Unsafe || out.EnvThreads != 0 {
		t.Fatalf("verdict = %s n=%d (%s), want UNSAFE n=0", out.Verdict, out.EnvThreads, out.Reason)
	}
}

func TestCandidateGate(t *testing.T) {
	// Assert reachable only through a loop: no loop-free candidate, so no
	// replay runs and the result is inconclusive — never a wrong verdict.
	src := `
system loopy { vars x; domain 4; env w; dis c }
thread w { store x 1 }
thread c { regs a n; while n != 3 { n = n + 1 }; a = load x; assume a == 1; assert false }
`
	sys := parse(t, src)
	res := Analyze(sys)
	if !res.AssertReachable() {
		t.Fatal("assert is abstractly reachable")
	}
	// The while-loop path means every entry-to-assert path revisits the loop
	// head; the candidate search is loop-free so it must fail...
	cands := findCandidates(res)
	// ...except the zero-iteration exit (n != 3 fails immediately is
	// impossible: n starts 0). Actually n starts at 0 so the exit guard
	// !(n != 3) is false initially: the loop must iterate, and the DFS
	// cannot unroll it. No candidate.
	if len(cands) != 0 {
		t.Fatalf("expected no loop-free candidate, got %v", cands)
	}
}
