// Package absint is an RA-aware abstract interpreter over the thread CFGs
// of internal/lang. It computes, as one interference-closed fixpoint across
// all threads (the env template and every dis template, parameterized in the
// replica count n), an over-approximation of
//
//   - the set of values each register can hold at each program point, and
//   - the set of values ever written to each shared variable.
//
// The abstraction is sound for unboundedly many environment threads because
// it is value-only and flow-insensitive across threads: a load returns the
// *entire* abstract written-set of the variable, which subsumes every
// message any interleaving of any number of replicas could publish — this
// is exactly the "env can republish any observed value" structure the
// simplified semantics (Infinite Supply Lemma) makes explicit. Timestamps,
// views, and coherence order are abstracted away entirely, so the analysis
// proves only value-reachability facts; those are enough for a definitive
// SAFE verdict ("no assert is abstractly reachable") and for the value-set
// hints consumed by the Datalog encoder, and they gate the UNSAFE fast path
// (candidate search + concrete replay) in prepass.go.
package absint

import (
	"paramra/internal/analysis"
	"paramra/internal/lang"
)

// fact is the forward dataflow fact at one PC: reachability plus one value
// set per register. The unreachable fact is the problem's bottom.
type fact struct {
	reach bool
	regs  []VSet
}

func factEqual(a, b fact) bool {
	if a.reach != b.reach || len(a.regs) != len(b.regs) {
		return false
	}
	for i := range a.regs {
		if !Equal(a.regs[i], b.regs[i]) {
			return false
		}
	}
	return true
}

// ThreadFacts holds the per-thread analysis result.
type ThreadFacts struct {
	Prog *lang.Program
	CFG  *lang.CFG
	// facts[pc] is the abstract state when control is at pc.
	facts []fact
}

// Reachable reports whether pc is abstractly reachable.
func (t *ThreadFacts) Reachable(pc lang.PC) bool { return t.facts[pc].reach }

// RegAt returns the value set of register r at pc (bottom when pc is
// unreachable or r is out of range).
func (t *ThreadFacts) RegAt(pc lang.PC, r lang.RegID) VSet {
	f := t.facts[pc]
	if !f.reach || int(r) < 0 || int(r) >= len(f.regs) {
		return VSet{}
	}
	return f.regs[r]
}

// EvalAt over-approximates the values of e at pc.
func (t *ThreadFacts) EvalAt(pc lang.PC, e lang.Expr) VSet {
	f := t.facts[pc]
	if !f.reach {
		return VSet{}
	}
	return evalExpr(e, f.regs)
}

// RegUniverse returns, per register, the join of the register's value sets
// over all reachable PCs: every value the register can ever hold anywhere
// in the thread.
func (t *ThreadFacts) RegUniverse() []VSet {
	out := make([]VSet, t.Prog.NumRegs())
	for _, f := range t.facts {
		if !f.reach {
			continue
		}
		for i, s := range f.regs {
			out[i] = Join(out[i], s)
		}
	}
	return out
}

// Result is the system-wide abstract interpretation result.
type Result struct {
	Sys *lang.System
	// Written[v] over-approximates the values any message on variable v can
	// carry (the initial value plus everything any thread, in any replica
	// count, can store or CAS into it).
	Written []VSet
	// Threads holds the per-thread facts, aligned with Sys.Threads() (env
	// first when present, then the dis templates). Threads sharing a
	// *lang.Program share a *ThreadFacts.
	Threads []*ThreadFacts
	// Rounds is the number of interference rounds until the written-sets
	// stabilized.
	Rounds int
}

// Analyze runs the interference-closed fixpoint: per-thread forward
// dataflow (reusing the analysis worklist solver) alternating with a
// written-set update, until no thread can publish a new value. Termination:
// both the per-register sets and the written-sets live in the finite
// widening lattice of Norm-ed VSets and only ever grow across rounds.
func Analyze(sys *lang.System) *Result {
	res := &Result{Sys: sys, Written: make([]VSet, len(sys.Vars))}
	for v := range res.Written {
		res.Written[v] = Singleton(sys.Init)
	}

	// Compile and analyze each distinct program once even when the system
	// reuses a template pointer for several threads.
	threads := sys.Threads()
	byProg := map[*lang.Program]*ThreadFacts{}
	var order []*ThreadFacts
	res.Threads = make([]*ThreadFacts, len(threads))
	for i, p := range threads {
		tf, ok := byProg[p]
		if !ok {
			tf = &ThreadFacts{Prog: p, CFG: lang.Compile(p)}
			byProg[p] = tf
			order = append(order, tf)
		}
		res.Threads[i] = tf
	}

	for {
		res.Rounds++
		for _, tf := range order {
			tf.facts = solveThread(tf.CFG, sys, res.Written)
		}
		next := contributions(sys, order, res.Written)
		changed := false
		for v := range next {
			if !Equal(next[v], res.Written[v]) {
				changed = true
			}
		}
		res.Written = next
		if !changed {
			return res
		}
	}
}

// solveThread runs one forward pass over a thread's CFG against the current
// written-sets.
func solveThread(g *lang.CFG, sys *lang.System, written []VSet) []fact {
	numRegs := g.Prog.NumRegs()
	return analysis.Solve(g, analysis.Problem[fact]{
		Dir:    analysis.Forward,
		Bottom: func() fact { return fact{regs: make([]VSet, numRegs)} },
		Boundary: func() fact {
			f := fact{reach: true, regs: make([]VSet, numRegs)}
			for i := range f.regs {
				f.regs[i] = Singleton(0) // registers start at 0 in both engines
			}
			return f
		},
		Join: func(a, b fact) fact {
			if !a.reach {
				return b
			}
			if !b.reach {
				return a
			}
			return fact{reach: true, regs: joinRegs(a.regs, b.regs)}
		},
		Equal: factEqual,
		Transfer: func(e lang.Edge, in fact) fact {
			if !in.reach {
				return in
			}
			switch e.Op.Kind {
			case lang.OpAssume:
				cond := evalExpr(e.Op.E, in.regs)
				if !cond.canBeTrue() {
					return fact{regs: make([]VSet, numRegs)} // blocks forever
				}
				return fact{reach: true, regs: refineTrue(e.Op.E, in.regs)}
			case lang.OpAssign:
				out := fact{reach: true, regs: append([]VSet(nil), in.regs...)}
				out.regs[e.Op.Reg] = evalExpr(e.Op.E, in.regs).Norm(sys.Dom)
				return out
			case lang.OpLoad:
				// An RA load can return any value some thread may have
				// published: the abstract written-set, which covers the init
				// message, every dis store, and every env replica's stores.
				out := fact{reach: true, regs: append([]VSet(nil), in.regs...)}
				out.regs[e.Op.Reg] = written[e.Op.Var]
				return out
			case lang.OpCASOp:
				// CAS blocks unless the expected value is observable.
				expect := evalExpr(e.Op.E, in.regs).Norm(sys.Dom)
				if Intersect(expect, written[e.Op.Var]).IsEmpty() {
					return fact{regs: make([]VSet, numRegs)} // can never succeed
				}
				return in
			default: // OpNop, OpAssertFail, OpStore: thread-local state unchanged
				return in
			}
		},
	})
}

// contributions recomputes the written-sets from every thread's reachable
// store and CAS edges, starting from the initial value.
func contributions(sys *lang.System, order []*ThreadFacts, prev []VSet) []VSet {
	next := make([]VSet, len(sys.Vars))
	for v := range next {
		next[v] = Singleton(sys.Init)
	}
	for _, tf := range order {
		for _, edges := range tf.CFG.Out {
			for _, e := range edges {
				f := tf.facts[e.From]
				if !f.reach {
					continue
				}
				switch e.Op.Kind {
				case lang.OpStore:
					val := evalExpr(e.Op.E, f.regs).Norm(sys.Dom)
					next[e.Op.Var] = Join(next[e.Op.Var], val)
				case lang.OpCASOp:
					expect := evalExpr(e.Op.E, f.regs).Norm(sys.Dom)
					if Intersect(expect, prev[e.Op.Var]).IsEmpty() {
						continue // success edge infeasible: contributes nothing
					}
					val := evalExpr(e.Op.E2, f.regs).Norm(sys.Dom)
					next[e.Op.Var] = Join(next[e.Op.Var], val)
				}
			}
		}
	}
	// Written-sets must grow monotonically across rounds: a value observable
	// in round k stays observable (messages are never retracted).
	for v := range next {
		next[v] = Join(prev[v], next[v])
	}
	return next
}

// VarCanHold reports whether variable v can ever carry value d (after
// norm-ing d into the domain, matching the engines). True may be spurious;
// false is definite.
func (r *Result) VarCanHold(v lang.VarID, d lang.Val) bool {
	if int(v) < 0 || int(v) >= len(r.Written) {
		return true
	}
	return r.Written[v].Contains(Singleton(d).Norm(r.Sys.Dom).vals[0])
}

// AssertReachable reports whether any thread has an abstractly reachable
// `assert false` edge. When false, the system is definitively SAFE for
// every replica count.
func (r *Result) AssertReachable() bool {
	for _, tf := range dedupThreads(r.Threads) {
		for _, edges := range tf.CFG.Out {
			for _, e := range edges {
				if e.Op.Kind == lang.OpAssertFail && tf.facts[e.From].reach {
					return true
				}
			}
		}
	}
	return false
}

// dedupThreads returns the distinct ThreadFacts preserving order.
func dedupThreads(ts []*ThreadFacts) []*ThreadFacts {
	seen := map[*ThreadFacts]bool{}
	var out []*ThreadFacts
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
