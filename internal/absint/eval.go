package absint

import (
	"paramra/internal/lang"
)

// boolSet builds the possible outcomes of a comparison from "can it be
// true" / "can it be false".
func boolSet(canTrue, canFalse bool) VSet {
	switch {
	case canTrue && canFalse:
		return FromValues([]lang.Val{0, 1})
	case canTrue:
		return Singleton(1)
	case canFalse:
		return Singleton(0)
	default:
		return VSet{}
	}
}

// evalExpr computes an over-approximation of the values e can take when the
// registers range over regs. No norm is applied — both engines evaluate
// expressions over the raw integers and reduce into the domain only when a
// value is committed (assignment, store, CAS operand), and the abstraction
// mirrors that exactly.
func evalExpr(e lang.Expr, regs []VSet) VSet {
	switch e := e.(type) {
	case lang.ConstExpr:
		return Singleton(e.V)
	case lang.RegExpr:
		if int(e.Reg) < 0 || int(e.Reg) >= len(regs) {
			return Singleton(0) // out-of-range registers read as 0 (Expr.Eval)
		}
		return regs[e.Reg]
	case lang.UnExpr:
		s := evalExpr(e.E, regs)
		if s.IsEmpty() {
			return VSet{}
		}
		switch e.Op {
		case lang.OpNot:
			return boolSet(s.canBeFalse(), s.canBeTrue())
		case lang.OpNeg:
			if vals, ok := s.Exact(); ok {
				neg := make([]lang.Val, len(vals))
				for i, v := range vals {
					neg[i] = -v
				}
				return FromValues(neg)
			}
			lo, hi, _ := s.Bounds()
			return Range(-hi, -lo)
		default:
			return Singleton(0)
		}
	case lang.BinExpr:
		return evalBin(e, regs)
	default:
		// Unknown expression forms cannot be bounded.
		return Range(minVal, maxVal)
	}
}

// minVal/maxVal are the "unbounded" interval endpoints. They are only hull
// markers — arithmetic on them saturates rather than wrapping.
const (
	minVal = lang.Val(-1 << 40)
	maxVal = lang.Val(1 << 40)
)

func satAdd(a, b lang.Val) lang.Val {
	c := a + b
	if c < minVal {
		return minVal
	}
	if c > maxVal {
		return maxVal
	}
	return c
}

func satMul(a, b lang.Val) lang.Val {
	if a == 0 || b == 0 {
		return 0
	}
	c := a * b
	if c/a != b || c < minVal || c > maxVal {
		if (a > 0) == (b > 0) {
			return maxVal
		}
		return minVal
	}
	return c
}

func evalBin(e lang.BinExpr, regs []VSet) VSet {
	l := evalExpr(e.L, regs)
	if l.IsEmpty() {
		return VSet{}
	}

	// Short-circuit connectives mirror Expr.Eval: the right operand is only
	// consulted when the left one does not decide the result.
	switch e.Op {
	case lang.OpAnd:
		if !l.canBeTrue() {
			return Singleton(0)
		}
		r := evalExpr(e.R, regs)
		if r.IsEmpty() {
			return VSet{}
		}
		return boolSet(r.canBeTrue(), l.canBeFalse() || r.canBeFalse())
	case lang.OpOr:
		if !l.canBeFalse() {
			return Singleton(1)
		}
		r := evalExpr(e.R, regs)
		if r.IsEmpty() {
			return VSet{}
		}
		return boolSet(l.canBeTrue() || r.canBeTrue(), r.canBeFalse())
	}

	r := evalExpr(e.R, regs)
	if r.IsEmpty() {
		return VSet{}
	}

	lv, lok := l.Exact()
	rv, rok := r.Exact()
	// Pairwise-exact arithmetic while the product of cardinalities is small.
	exactPairs := lok && rok && len(lv)*len(rv) <= 2*maxExact

	llo, lhi, _ := l.Bounds()
	rlo, rhi, _ := r.Bounds()

	switch e.Op {
	case lang.OpAdd:
		if exactPairs {
			return pairwise(lv, rv, func(a, b lang.Val) lang.Val { return a + b })
		}
		return Range(satAdd(llo, rlo), satAdd(lhi, rhi))
	case lang.OpSub:
		if exactPairs {
			return pairwise(lv, rv, func(a, b lang.Val) lang.Val { return a - b })
		}
		return Range(satAdd(llo, -rhi), satAdd(lhi, -rlo))
	case lang.OpMul:
		if exactPairs {
			return pairwise(lv, rv, func(a, b lang.Val) lang.Val { return a * b })
		}
		c1, c2 := satMul(llo, rlo), satMul(llo, rhi)
		c3, c4 := satMul(lhi, rlo), satMul(lhi, rhi)
		return Range(min(min(c1, c2), min(c3, c4)), max(max(c1, c2), max(c3, c4)))
	case lang.OpEq:
		inter := Intersect(l, r)
		canEq := !inter.IsEmpty()
		canNe := !(l.Size() == 1 && r.Size() == 1 && llo == rlo && lok && rok)
		return boolSet(canEq, canNe)
	case lang.OpNe:
		inter := Intersect(l, r)
		canEq := !inter.IsEmpty()
		canNe := !(l.Size() == 1 && r.Size() == 1 && llo == rlo && lok && rok)
		return boolSet(canNe, canEq)
	case lang.OpLt:
		return boolSet(llo < rhi, lhi >= rlo)
	case lang.OpLe:
		return boolSet(llo <= rhi, lhi > rlo)
	case lang.OpGt:
		return boolSet(lhi > rlo, llo <= rhi)
	case lang.OpGe:
		return boolSet(lhi >= rlo, llo < rhi)
	default:
		return Singleton(0)
	}
}

func pairwise(lv, rv []lang.Val, f func(a, b lang.Val) lang.Val) VSet {
	out := make([]lang.Val, 0, len(lv)*len(rv))
	for _, a := range lv {
		for _, b := range rv {
			out = append(out, f(a, b))
		}
	}
	return FromValues(out)
}

// refineTrue strengthens the register sets with the knowledge that cond just
// evaluated truthy (an assume edge was taken). The result is a sound
// over-approximation: only facts that must hold on every passing execution
// are applied, and unrecognized condition shapes leave regs unchanged.
// Returns regs itself when nothing was refined (callers must not mutate).
func refineTrue(cond lang.Expr, regs []VSet) []VSet {
	switch e := cond.(type) {
	case lang.UnExpr:
		if e.Op == lang.OpNot {
			return refineFalse(e.E, regs)
		}
	case lang.RegExpr:
		// assume r: r is non-zero.
		return refineReg(regs, e.Reg, func(s VSet) VSet {
			if vals, ok := s.Exact(); ok {
				return filterVals(vals, func(v lang.Val) bool { return v != 0 })
			}
			return s
		})
	case lang.BinExpr:
		switch e.Op {
		case lang.OpAnd:
			// Both conjuncts evaluated truthy.
			return refineTrue(e.R, refineTrue(e.L, regs))
		case lang.OpOr:
			// At least one disjunct holds: join the two refinements.
			a := refineTrue(e.L, regs)
			b := refineTrue(e.R, regs)
			return joinRegs(a, b)
		case lang.OpEq, lang.OpNe, lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe:
			return refineCompare(e.Op, e.L, e.R, regs)
		}
	}
	return regs
}

// refineFalse strengthens regs with the knowledge that cond evaluated to 0.
func refineFalse(cond lang.Expr, regs []VSet) []VSet {
	switch e := cond.(type) {
	case lang.UnExpr:
		if e.Op == lang.OpNot {
			return refineTrue(e.E, regs)
		}
	case lang.RegExpr:
		// !(r): r is zero.
		return refineReg(regs, e.Reg, func(s VSet) VSet {
			return Intersect(s, Singleton(0))
		})
	case lang.BinExpr:
		switch e.Op {
		case lang.OpAnd:
			// Short-circuit: either l is false, or l is true and r is false.
			a := refineFalse(e.L, regs)
			b := refineFalse(e.R, refineTrue(e.L, regs))
			return joinRegs(a, b)
		case lang.OpOr:
			// Both disjuncts evaluated falsy.
			return refineFalse(e.R, refineFalse(e.L, regs))
		case lang.OpEq:
			return refineCompare(lang.OpNe, e.L, e.R, regs)
		case lang.OpNe:
			return refineCompare(lang.OpEq, e.L, e.R, regs)
		case lang.OpLt:
			return refineCompare(lang.OpGe, e.L, e.R, regs)
		case lang.OpLe:
			return refineCompare(lang.OpGt, e.L, e.R, regs)
		case lang.OpGt:
			return refineCompare(lang.OpLe, e.L, e.R, regs)
		case lang.OpGe:
			return refineCompare(lang.OpLt, e.L, e.R, regs)
		}
	}
	return regs
}

// refineCompare handles `l op r` known-true where one side is a plain
// register read: the register's set keeps only values for which some value
// of the other side satisfies the comparison.
func refineCompare(op lang.BinOp, l, r lang.Expr, regs []VSet) []VSet {
	if lr, ok := l.(lang.RegExpr); ok {
		rhs := evalExpr(r, regs)
		regs = refineRegAgainst(regs, lr.Reg, op, rhs)
	}
	if rr, ok := r.(lang.RegExpr); ok {
		lhs := evalExpr(l, regs)
		regs = refineRegAgainst(regs, rr.Reg, flipCompare(op), lhs)
	}
	return regs
}

// flipCompare mirrors a comparison so the refined register reads on the left.
func flipCompare(op lang.BinOp) lang.BinOp {
	switch op {
	case lang.OpLt:
		return lang.OpGt
	case lang.OpLe:
		return lang.OpGe
	case lang.OpGt:
		return lang.OpLt
	case lang.OpGe:
		return lang.OpLe
	default: // Eq, Ne are symmetric
		return op
	}
}

// refineRegAgainst keeps the values a of register reg for which ∃b ∈ rhs
// with `a op b`.
func refineRegAgainst(regs []VSet, reg lang.RegID, op lang.BinOp, rhs VSet) []VSet {
	if rhs.IsEmpty() {
		return regs
	}
	rlo, rhi, _ := rhs.Bounds()
	return refineReg(regs, reg, func(s VSet) VSet {
		switch op {
		case lang.OpEq:
			return Intersect(s, rhs)
		case lang.OpNe:
			if rhs.Size() == 1 {
				if vals, ok := s.Exact(); ok {
					return filterVals(vals, func(v lang.Val) bool { return v != rlo })
				}
			}
			return s
		case lang.OpLt:
			return clampBelow(s, rhi-1)
		case lang.OpLe:
			return clampBelow(s, rhi)
		case lang.OpGt:
			return clampAbove(s, rlo+1)
		case lang.OpGe:
			return clampAbove(s, rlo)
		default:
			return s
		}
	})
}

// clampBelow keeps the values of s that are <= bound.
func clampBelow(s VSet, bound lang.Val) VSet {
	if vals, ok := s.Exact(); ok {
		return filterVals(vals, func(v lang.Val) bool { return v <= bound })
	}
	lo, hi, _ := s.Bounds()
	return Range(lo, min(hi, bound))
}

// clampAbove keeps the values of s that are >= bound.
func clampAbove(s VSet, bound lang.Val) VSet {
	if vals, ok := s.Exact(); ok {
		return filterVals(vals, func(v lang.Val) bool { return v >= bound })
	}
	lo, hi, _ := s.Bounds()
	return Range(max(lo, bound), hi)
}

func filterVals(vals []lang.Val, keep func(lang.Val) bool) VSet {
	var out []lang.Val
	for _, v := range vals {
		if keep(v) {
			out = append(out, v)
		}
	}
	return FromValues(out)
}

// refineReg applies f to one register's set, cloning the slice only when
// the set actually changes.
func refineReg(regs []VSet, reg lang.RegID, f func(VSet) VSet) []VSet {
	if int(reg) < 0 || int(reg) >= len(regs) {
		return regs
	}
	refined := f(regs[reg])
	if Equal(refined, regs[reg]) {
		return regs
	}
	out := append([]VSet(nil), regs...)
	out[reg] = refined
	return out
}

// joinRegs joins two register vectors element-wise.
func joinRegs(a, b []VSet) []VSet {
	out := make([]VSet, len(a))
	for i := range a {
		out[i] = Join(a[i], b[i])
	}
	return out
}
