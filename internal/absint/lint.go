package absint

import (
	"fmt"

	"paramra/internal/analysis"
	"paramra/internal/lang"
)

// Lint rule identifiers contributed by the abstract interpretation. They
// complement internal/analysis's constant-propagation rules: each fires only
// where the interference-closed value-set analysis sees something the
// per-thread constant folding cannot.
const (
	// RuleAssertNeverSatisfiable marks an `assert false` whose guards are
	// unsatisfiable over the abstract value sets of every thread together —
	// the system is trivially SAFE at this assert for every replica count.
	RuleAssertNeverSatisfiable = "assert-never-satisfiable"
	// RuleCASCanNeverSucceed marks a CAS whose expected-value set is
	// disjoint from everything ever written to the variable.
	RuleCASCanNeverSucceed = "cas-can-never-succeed"
	// RuleReadOfNeverWrittenValue marks an equality test of a loaded value
	// against a constant no thread ever writes.
	RuleReadOfNeverWrittenValue = "read-of-never-written-value"
	// RuleWriteValueUnused marks a store whose value no reader ever
	// distinguishes: every load of the variable flows only into constant
	// comparisons, none of which mention the stored value.
	RuleWriteValueUnused = "write-value-unused"
)

// Lint runs the abstract-interpretation lint rules over the system. The
// suppress list carries the constant-propagation findings already reported:
// an absint finding at a position where the cheaper analysis already flagged
// the same defect (unreachable assert, impossible CAS, constant-false
// assume) is dropped, so ravet's output never says the same thing twice.
func Lint(sys *lang.System, suppress []analysis.Diagnostic) []analysis.Diagnostic {
	res := Analyze(sys)
	l := &linter{res: res, sys: sys, covered: map[lang.Pos]bool{}}
	for _, d := range suppress {
		switch d.Rule {
		case analysis.RuleUnreachableAssert, analysis.RuleUnreachableCode,
			analysis.RuleCASNeverSucceeds, analysis.RuleAssumeFalse:
			l.covered[d.Pos] = true
		}
	}
	seen := map[*ThreadFacts]bool{}
	for _, tf := range res.Threads {
		if seen[tf] {
			continue
		}
		seen[tf] = true
		l.lintThread(tf)
	}
	l.lintWriteValues()
	analysis.SortDiagnostics(l.out)
	return l.out
}

type linter struct {
	res     *Result
	sys     *lang.System
	covered map[lang.Pos]bool
	out     []analysis.Diagnostic
	seen    map[string]bool
}

func (l *linter) report(pos lang.Pos, rule, thread, format string, args ...any) {
	if l.covered[pos] {
		return
	}
	d := analysis.Diagnostic{Pos: pos, Rule: rule, Thread: thread, Msg: fmt.Sprintf(format, args...)}
	key := fmt.Sprintf("%s|%v|%s|%s", rule, pos, thread, d.Msg)
	if l.seen == nil {
		l.seen = map[string]bool{}
	}
	if l.seen[key] {
		return
	}
	l.seen[key] = true
	l.out = append(l.out, d)
}

func (l *linter) lintThread(tf *ThreadFacts) {
	name := tf.Prog.Name
	loadVar := loadOnlyRegs(tf)
	for _, edges := range tf.CFG.Out {
		for _, e := range edges {
			switch e.Op.Kind {
			case lang.OpAssertFail:
				if !tf.Reachable(e.From) {
					l.report(e.Op.Pos, RuleAssertNeverSatisfiable, name,
						"'assert false' is unreachable under the abstract value semantics: no interference from any thread satisfies its guards")
				}
			case lang.OpCASOp:
				if !tf.Reachable(e.From) {
					continue
				}
				expect := tf.EvalAt(e.From, e.Op.E).Norm(l.sys.Dom)
				if expect.IsEmpty() {
					continue
				}
				if Intersect(expect, l.res.Written[e.Op.Var]).IsEmpty() {
					l.report(e.Op.Pos, RuleCASCanNeverSucceed, name,
						"cas on '%s' expects %s but the variable only ever holds %s",
						l.sys.VarName(e.Op.Var), expect, l.res.Written[e.Op.Var])
				}
			}
			l.lintComparisons(tf, loadVar, e)
		}
	}
}

// lintComparisons walks the edge's expressions for `r == c` tests where r
// only ever holds values loaded from one variable and c is never written to
// it.
func (l *linter) lintComparisons(tf *ThreadFacts, loadVar map[lang.RegID]lang.VarID, e lang.Edge) {
	if !tf.Reachable(e.From) {
		return
	}
	check := func(expr lang.Expr) {
		walkExpr(expr, func(x lang.Expr) {
			b, ok := x.(lang.BinExpr)
			if !ok || b.Op != lang.OpEq {
				return
			}
			reg, c, ok := regConstSides(b)
			if !ok {
				return
			}
			v, tracked := loadVar[reg]
			if !tracked {
				return
			}
			if !l.res.Written[v].Contains(c) {
				l.report(e.Op.Pos, RuleReadOfNeverWrittenValue, tf.Prog.Name,
					"register '%s' holds a value loaded from '%s', which is never %d (written values: %s)",
					tf.Prog.RegName(reg), l.sys.VarName(v), int(c), l.res.Written[v])
			}
		})
	}
	switch e.Op.Kind {
	case lang.OpAssume, lang.OpAssign, lang.OpStore:
		check(e.Op.E)
	case lang.OpCASOp:
		check(e.Op.E)
		check(e.Op.E2)
	}
}

// lintWriteValues reports stores whose value no reader distinguishes. For a
// variable x it requires: every load of x lands in a register defined only
// by loads of x, and every use of those registers is an ==/!= test against a
// constant (or a CAS expect). A reachable store whose exact value set shares
// nothing with the tested constants is then invisible to every reader.
func (l *linter) lintWriteValues() {
	type varInfo struct {
		tested  map[lang.Val]bool
		loaded  bool
		opaque  bool // some reader escapes the test-only discipline
		hasTest bool
	}
	infos := make([]varInfo, len(l.sys.Vars))
	for i := range infos {
		infos[i].tested = map[lang.Val]bool{}
	}

	seen := map[*ThreadFacts]bool{}
	var threads []*ThreadFacts
	for _, tf := range l.res.Threads {
		if !seen[tf] {
			seen[tf] = true
			threads = append(threads, tf)
		}
	}

	for _, tf := range threads {
		loadVar := loadOnlyRegs(tf)
		// Registers loaded from x but not load-only make x opaque.
		for _, edges := range tf.CFG.Out {
			for _, e := range edges {
				if e.Op.Kind == lang.OpLoad {
					infos[e.Op.Var].loaded = true
					if _, ok := loadVar[e.Op.Reg]; !ok {
						infos[e.Op.Var].opaque = true
					}
				}
			}
		}
		// Classify every use of every load-only register.
		for _, edges := range tf.CFG.Out {
			for _, e := range edges {
				exprs := edgeExprs(e)
				for _, expr := range exprs {
					tests, onlyTests := constTests(expr, loadVar)
					for reg, vals := range tests {
						v := loadVar[reg]
						for _, c := range vals {
							infos[v].tested[c] = true
							infos[v].hasTest = true
						}
					}
					if !onlyTests {
						// Some tracked register is used outside a constant
						// test: its source variable's values escape.
						for reg := range regsIn(expr) {
							if v, ok := loadVar[reg]; ok {
								infos[v].opaque = true
							}
						}
					}
				}
				// A CAS expect is a test of the variable's value.
				if e.Op.Kind == lang.OpCASOp && tf.Reachable(e.From) {
					if vals, ok := tf.EvalAt(e.From, e.Op.E).Norm(l.sys.Dom).Exact(); ok {
						for _, c := range vals {
							infos[e.Op.Var].tested[c] = true
							infos[e.Op.Var].hasTest = true
						}
					} else {
						infos[e.Op.Var].opaque = true
					}
				}
			}
		}
	}

	// Second pass: flag reachable stores whose every possible value is
	// test-equivalent to the initial value. Readers only observe membership
	// in the tested-constant set, so a stored value v is indistinguishable
	// from the initial value exactly when neither is among the constants —
	// the store could be deleted without any reader noticing.
	for _, tf := range threads {
		for _, edges := range tf.CFG.Out {
			for _, e := range edges {
				if e.Op.Kind != lang.OpStore || !tf.Reachable(e.From) {
					continue
				}
				info := &infos[e.Op.Var]
				if !info.loaded || info.opaque || !info.hasTest || info.tested[l.sys.Init] {
					continue
				}
				vals, ok := tf.EvalAt(e.From, e.Op.E).Norm(l.sys.Dom).Exact()
				if !ok || len(vals) == 0 {
					continue
				}
				unused := true
				for _, v := range vals {
					if info.tested[v] {
						unused = false
					}
				}
				if unused {
					l.report(e.Op.Pos, RuleWriteValueUnused, tf.Prog.Name,
						"value %s stored to '%s' is indistinguishable from the initial value %d: readers only test %s",
						FromValues(vals), l.sys.VarName(e.Op.Var), int(l.sys.Init), testedString(info.tested))
				}
			}
		}
	}
}

// loadOnlyRegs maps each register whose every definition is a load of one
// fixed variable to that variable.
func loadOnlyRegs(tf *ThreadFacts) map[lang.RegID]lang.VarID {
	type src struct {
		v     lang.VarID
		mixed bool
	}
	defs := map[lang.RegID]*src{}
	for _, edges := range tf.CFG.Out {
		for _, e := range edges {
			switch e.Op.Kind {
			case lang.OpLoad:
				if s, ok := defs[e.Op.Reg]; ok {
					if s.v != e.Op.Var {
						s.mixed = true
					}
				} else {
					defs[e.Op.Reg] = &src{v: e.Op.Var}
				}
			case lang.OpAssign:
				if s, ok := defs[e.Op.Reg]; ok {
					s.mixed = true
				} else {
					defs[e.Op.Reg] = &src{mixed: true}
				}
			}
		}
	}
	out := map[lang.RegID]lang.VarID{}
	for r, s := range defs {
		if !s.mixed {
			out[r] = s.v
		}
	}
	return out
}

// constTests collects, per tracked register, the constants it is ==/!=
// compared against in expr. onlyTests is false when a tracked register
// appears anywhere outside such a comparison.
func constTests(expr lang.Expr, tracked map[lang.RegID]lang.VarID) (map[lang.RegID][]lang.Val, bool) {
	tests := map[lang.RegID][]lang.Val{}
	onlyTests := true
	var walk func(e lang.Expr, inTest bool)
	walk = func(e lang.Expr, inTest bool) {
		switch e := e.(type) {
		case lang.RegExpr:
			if _, ok := tracked[e.Reg]; ok && !inTest {
				onlyTests = false
			}
		case lang.UnExpr:
			walk(e.E, false)
		case lang.BinExpr:
			if e.Op == lang.OpEq || e.Op == lang.OpNe {
				if reg, c, ok := regConstSides(e); ok {
					if _, isTracked := tracked[reg]; isTracked {
						tests[reg] = append(tests[reg], c)
						return
					}
				}
			}
			walk(e.L, false)
			walk(e.R, false)
		}
	}
	walk(expr, false)
	return tests, onlyTests
}

// regConstSides decomposes `r op c` / `c op r` into (r, c).
func regConstSides(b lang.BinExpr) (lang.RegID, lang.Val, bool) {
	if r, ok := b.L.(lang.RegExpr); ok {
		if c, ok := b.R.(lang.ConstExpr); ok {
			return r.Reg, c.V, true
		}
	}
	if r, ok := b.R.(lang.RegExpr); ok {
		if c, ok := b.L.(lang.ConstExpr); ok {
			return r.Reg, c.V, true
		}
	}
	return 0, 0, false
}

// walkExpr visits every node of the expression tree.
func walkExpr(e lang.Expr, f func(lang.Expr)) {
	f(e)
	switch e := e.(type) {
	case lang.UnExpr:
		walkExpr(e.E, f)
	case lang.BinExpr:
		walkExpr(e.L, f)
		walkExpr(e.R, f)
	}
}

// regsIn returns the set of registers appearing in e.
func regsIn(e lang.Expr) map[lang.RegID]bool {
	out := map[lang.RegID]bool{}
	walkExpr(e, func(x lang.Expr) {
		if r, ok := x.(lang.RegExpr); ok {
			out[r.Reg] = true
		}
	})
	return out
}

// edgeExprs lists the expressions evaluated by the edge's operation.
func edgeExprs(e lang.Edge) []lang.Expr {
	switch e.Op.Kind {
	case lang.OpAssume, lang.OpAssign, lang.OpStore:
		return []lang.Expr{e.Op.E}
	case lang.OpCASOp:
		return []lang.Expr{e.Op.E, e.Op.E2}
	default:
		return nil
	}
}

func testedString(tested map[lang.Val]bool) string {
	vals := make([]lang.Val, 0, len(tested))
	for v := range tested {
		vals = append(vals, v)
	}
	return FromValues(vals).String()
}
