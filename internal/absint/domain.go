package absint

import (
	"fmt"
	"sort"
	"strings"

	"paramra/internal/lang"
)

// maxExact is the widening threshold: a value set holding more than this
// many elements collapses to its interval hull. Committed (normed) sets
// therefore form chains of height at most maxExact+2 per register, which
// bounds the fixpoint.
const maxExact = 32

// maxEnum bounds how many values an interval is re-enumerated into when a
// norm or filter would otherwise lose precision.
const maxEnum = maxExact

// vkind discriminates the VSet representation.
type vkind uint8

const (
	vEmpty vkind = iota // bottom: no value reaches here
	vExact              // small sorted set of values
	vRange              // interval hull [lo, hi]
)

// VSet is an abstract value: a finite set of integers, represented exactly
// while small and as an interval hull once widened. The empty set is the
// lattice bottom ("no execution reaches this point with any value").
type VSet struct {
	kind   vkind
	vals   []lang.Val // vExact: sorted, deduplicated
	lo, hi lang.Val   // vRange: inclusive bounds
}

// Bottom returns the empty value set.
func Bottom() VSet { return VSet{} }

// Singleton returns the set {v}.
func Singleton(v lang.Val) VSet { return VSet{kind: vExact, vals: []lang.Val{v}} }

// FromValues builds a set from arbitrary (unsorted, possibly repeated)
// values, widening to the hull when there are more than maxExact distinct
// elements.
func FromValues(vs []lang.Val) VSet {
	if len(vs) == 0 {
		return VSet{}
	}
	sorted := append([]lang.Val(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:1]
	for _, v := range sorted[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	if len(out) > maxExact {
		return Range(out[0], out[len(out)-1])
	}
	return VSet{kind: vExact, vals: out}
}

// Range returns the interval [lo, hi] (empty when lo > hi).
func Range(lo, hi lang.Val) VSet {
	if lo > hi {
		return VSet{}
	}
	if lo == hi {
		return Singleton(lo)
	}
	return VSet{kind: vRange, lo: lo, hi: hi}
}

// IsEmpty reports whether the set is bottom.
func (s VSet) IsEmpty() bool { return s.kind == vEmpty }

// Exact returns the elements when the set is finite and explicitly
// represented; ok is false for interval hulls (and true, nil for bottom).
func (s VSet) Exact() (vals []lang.Val, ok bool) {
	switch s.kind {
	case vEmpty:
		return nil, true
	case vExact:
		return s.vals, true
	default:
		return nil, false
	}
}

// Widened reports whether the set lost exactness (interval representation).
func (s VSet) Widened() bool { return s.kind == vRange }

// Size returns the number of values in the set (hull width for intervals).
func (s VSet) Size() int {
	switch s.kind {
	case vEmpty:
		return 0
	case vExact:
		return len(s.vals)
	default:
		return int(s.hi-s.lo) + 1
	}
}

// Bounds returns the minimum and maximum element; ok is false for bottom.
func (s VSet) Bounds() (lo, hi lang.Val, ok bool) {
	switch s.kind {
	case vEmpty:
		return 0, 0, false
	case vExact:
		return s.vals[0], s.vals[len(s.vals)-1], true
	default:
		return s.lo, s.hi, true
	}
}

// Contains reports whether v may be in the set.
func (s VSet) Contains(v lang.Val) bool {
	switch s.kind {
	case vEmpty:
		return false
	case vExact:
		i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= v })
		return i < len(s.vals) && s.vals[i] == v
	default:
		return s.lo <= v && v <= s.hi
	}
}

// canBeTrue reports whether the set holds a non-zero (truthy) value.
func (s VSet) canBeTrue() bool {
	switch s.kind {
	case vEmpty:
		return false
	case vExact:
		return len(s.vals) > 1 || s.vals[0] != 0
	default:
		return s.lo != 0 || s.hi != 0
	}
}

// canBeFalse reports whether the set holds zero.
func (s VSet) canBeFalse() bool { return s.Contains(0) }

// Join returns the least upper bound of a and b.
func Join(a, b VSet) VSet {
	switch {
	case a.kind == vEmpty:
		return b
	case b.kind == vEmpty:
		return a
	case a.kind == vExact && b.kind == vExact:
		merged := make([]lang.Val, 0, len(a.vals)+len(b.vals))
		i, j := 0, 0
		for i < len(a.vals) || j < len(b.vals) {
			switch {
			case j == len(b.vals) || (i < len(a.vals) && a.vals[i] < b.vals[j]):
				merged = append(merged, a.vals[i])
				i++
			case i == len(a.vals) || b.vals[j] < a.vals[i]:
				merged = append(merged, b.vals[j])
				j++
			default:
				merged = append(merged, a.vals[i])
				i, j = i+1, j+1
			}
		}
		if len(merged) > maxExact {
			return Range(merged[0], merged[len(merged)-1])
		}
		return VSet{kind: vExact, vals: merged}
	default:
		alo, ahi, _ := a.Bounds()
		blo, bhi, _ := b.Bounds()
		return Range(min(alo, blo), max(ahi, bhi))
	}
}

// Intersect returns an over-approximation of a ∩ b (exact when both sets
// are exact; hull clamping otherwise).
func Intersect(a, b VSet) VSet {
	switch {
	case a.kind == vEmpty || b.kind == vEmpty:
		return VSet{}
	case a.kind == vExact && b.kind == vExact:
		var out []lang.Val
		for _, v := range a.vals {
			if b.Contains(v) {
				out = append(out, v)
			}
		}
		if out == nil {
			return VSet{}
		}
		return VSet{kind: vExact, vals: out}
	case a.kind == vExact:
		return filterExact(a, b.Contains)
	case b.kind == vExact:
		return filterExact(b, a.Contains)
	default:
		return Range(max(a.lo, b.lo), min(a.hi, b.hi))
	}
}

// filterExact keeps the elements of the exact set s satisfying keep.
func filterExact(s VSet, keep func(lang.Val) bool) VSet {
	var out []lang.Val
	for _, v := range s.vals {
		if keep(v) {
			out = append(out, v)
		}
	}
	if out == nil {
		return VSet{}
	}
	return VSet{kind: vExact, vals: out}
}

// Equal reports whether two sets have the same representation. Distinct
// representations of the same mathematical set (an exact enumeration of a
// full interval vs. the interval) compare unequal, which is fine for
// fixpoint detection: Join is representation-deterministic.
func Equal(a, b VSet) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case vEmpty:
		return true
	case vExact:
		if len(a.vals) != len(b.vals) {
			return false
		}
		for i := range a.vals {
			if a.vals[i] != b.vals[i] {
				return false
			}
		}
		return true
	default:
		return a.lo == b.lo && a.hi == b.hi
	}
}

// Norm reduces the set into the data domain [0, dom), mirroring the norm
// both execution engines apply when a value is committed to a register, a
// store, or a CAS operand. Sets wider than the domain collapse to the full
// domain.
func (s VSet) Norm(dom int) VSet {
	d := lang.Val(dom)
	if d <= 0 || s.kind == vEmpty {
		return s
	}
	full := Range(0, d-1)
	switch s.kind {
	case vExact:
		mapped := make([]lang.Val, len(s.vals))
		for i, v := range s.vals {
			mapped[i] = ((v % d) + d) % d
		}
		return FromValues(mapped)
	default:
		if s.hi-s.lo+1 >= d {
			return full
		}
		if int(s.hi-s.lo)+1 <= maxEnum {
			mapped := make([]lang.Val, 0, int(s.hi-s.lo)+1)
			for v := s.lo; v <= s.hi; v++ {
				mapped = append(mapped, ((v%d)+d)%d)
			}
			return FromValues(mapped)
		}
		return full
	}
}

// String renders the set for diagnostics: {}, {1,3}, or [0..7].
func (s VSet) String() string {
	switch s.kind {
	case vEmpty:
		return "{}"
	case vExact:
		var b strings.Builder
		b.WriteByte('{')
		for i, v := range s.vals {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", int(v))
		}
		b.WriteByte('}')
		return b.String()
	default:
		return fmt.Sprintf("[%d..%d]", int(s.lo), int(s.hi))
	}
}
