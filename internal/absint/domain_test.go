package absint

import (
	"testing"

	"paramra/internal/lang"
)

func vals(vs ...lang.Val) []lang.Val { return vs }

func TestVSetBasics(t *testing.T) {
	b := Bottom()
	if !b.IsEmpty() || b.Size() != 0 || b.Contains(0) {
		t.Fatalf("bottom misbehaves: %v", b)
	}
	s := FromValues(vals(3, 1, 3, 2))
	if s.String() != "{1,2,3}" {
		t.Fatalf("FromValues dedup/sort: got %s", s)
	}
	if !s.Contains(2) || s.Contains(0) {
		t.Fatalf("Contains wrong on %s", s)
	}
	lo, hi, ok := s.Bounds()
	if !ok || lo != 1 || hi != 3 {
		t.Fatalf("Bounds: %d %d %v", lo, hi, ok)
	}
}

func TestVSetWidening(t *testing.T) {
	var many []lang.Val
	for i := 0; i < maxExact+5; i++ {
		many = append(many, lang.Val(i*2))
	}
	s := FromValues(many)
	if !s.Widened() {
		t.Fatalf("expected widening past %d elements, got %s", maxExact, s)
	}
	lo, hi, _ := s.Bounds()
	if lo != 0 || hi != lang.Val((maxExact+4)*2) {
		t.Fatalf("hull bounds wrong: [%d..%d]", lo, hi)
	}
	// Widened sets over-approximate: they contain interior non-members.
	if !s.Contains(1) {
		t.Fatal("hull must contain interior values")
	}
}

func TestJoinAndIntersect(t *testing.T) {
	a := FromValues(vals(0, 2))
	b := FromValues(vals(2, 5))
	j := Join(a, b)
	if j.String() != "{0,2,5}" {
		t.Fatalf("join: %s", j)
	}
	i := Intersect(a, b)
	if i.String() != "{2}" {
		t.Fatalf("intersect: %s", i)
	}
	if !Intersect(a, FromValues(vals(9))).IsEmpty() {
		t.Fatal("disjoint intersect must be empty")
	}
	r := Range(0, 10)
	ie := Intersect(FromValues(vals(3, 42)), r)
	if ie.String() != "{3}" {
		t.Fatalf("exact∩range: %s", ie)
	}
}

func TestNorm(t *testing.T) {
	s := FromValues(vals(-1, 0, 5, 7)).Norm(4)
	// -1 ≡ 3, 5 ≡ 1, 7 ≡ 3 (mod 4)
	if s.String() != "{0,1,3}" {
		t.Fatalf("norm: %s", s)
	}
	wide := Range(0, 100).Norm(4)
	if wide.String() != "[0..3]" {
		t.Fatalf("norm of wide range: %s", wide)
	}
	if got := Range(6, 7).Norm(4); got.String() != "{2,3}" {
		t.Fatalf("norm re-enumeration: %s", got)
	}
}

func TestEvalExpr(t *testing.T) {
	regs := []VSet{FromValues(vals(0, 1)), Singleton(3)}
	add := evalExpr(lang.Bin(lang.OpAdd, lang.Reg(0), lang.Reg(1)), regs)
	if add.String() != "{3,4}" {
		t.Fatalf("add: %s", add)
	}
	eq := evalExpr(lang.Eq(lang.Reg(0), lang.Num(1)), regs)
	if eq.String() != "{0,1}" {
		t.Fatalf("eq can be either: %s", eq)
	}
	eqDef := evalExpr(lang.Eq(lang.Reg(1), lang.Num(3)), regs)
	if eqDef.String() != "{1}" {
		t.Fatalf("definite eq: %s", eqDef)
	}
	neDef := evalExpr(lang.Ne(lang.Reg(1), lang.Num(0)), regs)
	if neDef.String() != "{1}" {
		t.Fatalf("definite ne: %s", neDef)
	}
	// Short-circuit: 0 && anything is 0.
	and := evalExpr(lang.Bin(lang.OpAnd, lang.Num(0), lang.Reg(0)), regs)
	if and.String() != "{0}" {
		t.Fatalf("and short-circuit: %s", and)
	}
	or := evalExpr(lang.Bin(lang.OpOr, lang.Reg(0), lang.Num(0)), regs)
	if or.String() != "{0,1}" {
		t.Fatalf("or: %s", or)
	}
}

func TestRefineTrue(t *testing.T) {
	regs := []VSet{FromValues(vals(0, 1, 2)), FromValues(vals(0, 1))}
	out := refineTrue(lang.Eq(lang.Reg(0), lang.Num(2)), regs)
	if out[0].String() != "{2}" {
		t.Fatalf("eq refinement: %s", out[0])
	}
	out = refineTrue(lang.Ne(lang.Reg(0), lang.Num(0)), regs)
	if out[0].String() != "{1,2}" {
		t.Fatalf("ne refinement: %s", out[0])
	}
	out = refineTrue(lang.Bin(lang.OpLt, lang.Reg(0), lang.Num(2)), regs)
	if out[0].String() != "{0,1}" {
		t.Fatalf("lt refinement: %s", out[0])
	}
	out = refineTrue(lang.Bin(lang.OpAnd,
		lang.Eq(lang.Reg(0), lang.Num(1)), lang.Eq(lang.Reg(1), lang.Num(0))), regs)
	if out[0].String() != "{1}" || out[1].String() != "{0}" {
		t.Fatalf("and refinement: %s %s", out[0], out[1])
	}
	// Refining with an unsatisfiable condition empties the register.
	out = refineTrue(lang.Eq(lang.Reg(1), lang.Num(7)), regs)
	if !out[1].IsEmpty() {
		t.Fatalf("unsat refinement should be bottom: %s", out[1])
	}
	// Negation routes through refineFalse.
	out = refineTrue(lang.Not(lang.Eq(lang.Reg(0), lang.Num(0))), regs)
	if out[0].String() != "{1,2}" {
		t.Fatalf("not-eq refinement: %s", out[0])
	}
}
