package absint

import (
	"paramra/internal/lang"
)

// EnvFacts returns the env template's per-PC facts, or nil when the system
// has no env program. The Datalog encoder uses them to restrict its
// register-valuation grounding: enumerating a register only over the values
// it can actually hold at a program point shrinks the instance from
// Dom^k-per-edge to the product of the abstract set sizes, without changing
// derivability (every dropped rule has an underivable body).
func (r *Result) EnvFacts() *ThreadFacts {
	if r.Sys.Env == nil || len(r.Threads) == 0 {
		return nil
	}
	return r.Threads[0]
}

// AllowedAt returns the values register reg can hold at pc, for grounding:
// ok is false when the set is widened (callers should fall back to the full
// domain). An empty slice with ok=true means the PC is unreachable.
func (t *ThreadFacts) AllowedAt(pc lang.PC, reg lang.RegID) (vals []lang.Val, ok bool) {
	return t.RegAt(pc, reg).Exact()
}

// MaxWritten returns the largest value any shared variable can carry, or
// the domain bound when a written-set is widened. It feeds the compact
// state-key encoders: values at or below the single-byte threshold encode
// in one byte each.
func (r *Result) MaxWritten() lang.Val {
	var m lang.Val
	for _, w := range r.Written {
		if _, hi, ok := w.Bounds(); ok && hi > m {
			m = hi
		}
	}
	return m
}
