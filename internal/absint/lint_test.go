package absint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paramra/internal/analysis"
	"paramra/internal/lang"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden .want files")

// merged reproduces paramra.Analyze's pipeline: constant-propagation rules
// first, then the abstract-interpretation rules with the former as the
// suppression list, sorted into one stream.
func merged(sys *lang.System) []analysis.Diagnostic {
	out := analysis.AnalyzeSystem(sys)
	out = append(out, Lint(sys, out)...)
	analysis.SortDiagnostics(out)
	return out
}

// TestDefectFixtures mirrors internal/analysis's golden harness for the
// abstract-interpretation rules: each fixture seeds the defect it is named
// after, and the merged diagnostics must match the .want file exactly.
func TestDefectFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "defects", "*.ra"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	ruleSeen := map[string]bool{}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := lang.ParseSystem(string(data))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			ds := merged(sys)
			if len(ds) == 0 {
				t.Fatalf("fixture %s produced no diagnostics", file)
			}
			var lines []string
			for _, d := range ds {
				lines = append(lines, d.String())
				ruleSeen[d.Rule] = true
			}
			got := strings.Join(lines, "\n") + "\n"
			want := strings.TrimSuffix(file, ".ra") + ".want"
			if *updateGolden {
				if err := os.WriteFile(want, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantData, err := os.ReadFile(want)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(wantData) {
				t.Errorf("diagnostics mismatch for %s:\ngot:\n%swant:\n%s", file, got, wantData)
			}
			seeded := strings.TrimSuffix(filepath.Base(file), ".ra")
			found := false
			for _, d := range ds {
				if d.Rule == seeded {
					found = true
				}
			}
			if !found {
				t.Errorf("fixture %s did not trigger rule %q; got:\n%s", file, seeded, got)
			}
		})
	}
	if *updateGolden {
		return
	}
	for _, rule := range []string{
		RuleAssertNeverSatisfiable, RuleCASCanNeverSucceed,
		RuleReadOfNeverWrittenValue, RuleWriteValueUnused,
	} {
		if !ruleSeen[rule] {
			t.Errorf("no fixture triggers rule %q", rule)
		}
	}
}

// TestLintSuppressesCoveredPositions: when constant propagation already
// explains a position (assume-false + unreachable-code), the absint rules
// must not pile a second finding onto it.
func TestLintSuppressesCoveredPositions(t *testing.T) {
	src := `system dup { vars f; domain 3; env w; dis c }
thread w {
  regs a
  a = load f
  assume a == 2
  store f 1
}
thread c {
  regs b
  b = load f
  assume b == 1
  assert false
}`
	sys, err := lang.ParseSystem(src)
	if err != nil {
		t.Fatal(err)
	}
	suppressed := map[string]bool{
		analysis.RuleUnreachableAssert: true, analysis.RuleUnreachableCode: true,
		analysis.RuleCASNeverSucceeds: true, analysis.RuleAssumeFalse: true,
	}
	base := analysis.AnalyzeSystem(sys)
	extra := Lint(sys, base)
	for _, b := range base {
		if !suppressed[b.Rule] {
			continue
		}
		for _, e := range extra {
			if e.Pos == b.Pos {
				t.Errorf("absint finding %s duplicates suppressed-rule position of %s", e, b)
			}
		}
	}
}

// TestShippedSystemsCleanUnderMergedLint: the example systems must stay
// diagnostic-free under the full merged pipeline, not just the constant
// rules — otherwise ravet regresses on its own documentation.
func TestShippedSystemsCleanUnderMergedLint(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "systems", "*.ra"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no shipped systems found: %v", err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := lang.ParseSystem(string(data))
		if err != nil {
			t.Fatalf("%s: parse: %v", file, err)
		}
		for _, d := range merged(sys) {
			t.Errorf("%s: unexpected diagnostic: %s", file, d)
		}
	}
}
