package absint

import (
	"context"
	"fmt"

	"paramra/internal/lang"
	"paramra/internal/ra"
)

// Verdict is the prepass outcome under the Theorem 3.4 lattice.
type Verdict int

// Prepass verdicts.
const (
	// Inconclusive means the prepass could not decide; run the full
	// decision procedure.
	Inconclusive Verdict = iota
	// Safe is a definitive proof: no assert (or goal message) is abstractly
	// reachable for any replica count.
	Safe
	// Unsafe is a definitive witness: a concrete instance replayed under
	// the full RA semantics reaches an assert.
	Unsafe
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Safe:
		return "SAFE"
	case Unsafe:
		return "UNSAFE"
	default:
		return "INCONCLUSIVE"
	}
}

// Goal switches the prepass to the Message Generation problem (§4.1): can
// a message with the given variable and value be generated? Only the SAFE
// fast path applies to goals.
type Goal struct {
	Var lang.VarID
	Val lang.Val
}

// Options bounds the prepass. The zero value selects the defaults noted on
// each field.
type Options struct {
	// Goal, when non-nil, asks Message Generation instead of assert
	// reachability.
	Goal *Goal
	// MaxReplayStates caps each concrete replay instance (default 30000).
	MaxReplayStates int
	// MaxReplayEnv caps the env replica counts tried by the replay
	// (default 4).
	MaxReplayEnv int
	// Workers is the replay parallelism (default 1; the engine's verdict is
	// identical for every value).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxReplayStates == 0 {
		o.MaxReplayStates = 30_000
	}
	if o.MaxReplayEnv == 0 {
		o.MaxReplayEnv = 4
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

// Outcome is the full prepass answer.
type Outcome struct {
	Verdict Verdict
	// Reason is a one-line human-readable justification.
	Reason string
	// Analysis is the underlying abstract interpretation result.
	Analysis *Result
	// EnvThreads is the replica count of the confirming instance (UNSAFE
	// verdicts only; 0 for env-less witnesses).
	EnvThreads int
	// Witness is the confirming interleaving, one event per line (UNSAFE
	// verdicts only).
	Witness string
	// ReplayStates counts concrete states explored across all replay
	// instances (0 when no replay ran).
	ReplayStates int
}

// Prepass tries to decide parameterized safety statically, in milliseconds:
// SAFE when the abstract interpretation proves no assert reachable (sound
// for every replica count, including systems outside the decidable
// fragment — dis loops and env CAS are handled abstractly); UNSAFE when a
// constant-folded loop-free path to an assert exists and a bounded concrete
// replay under the full RA semantics confirms it (so an UNSAFE answer is a
// real witness by construction). Everything else is Inconclusive.
//
// The only error returned is the context's, when cancellation interrupts a
// replay before a verdict.
func Prepass(ctx context.Context, sys *lang.System, opts Options) (Outcome, error) {
	opts = opts.withDefaults()
	res := Analyze(sys)
	out := Outcome{Verdict: Inconclusive, Analysis: res}

	if opts.Goal != nil {
		g := *opts.Goal
		if !res.VarCanHold(g.Var, g.Val) {
			out.Verdict = Safe
			out.Reason = fmt.Sprintf("goal value %d is outside the abstract value set %s of '%s'",
				int(g.Val), res.Written[g.Var], sys.VarName(g.Var))
			return out, nil
		}
		out.Reason = "goal value is abstractly writable; no static witness path for goals"
		return out, nil
	}

	if !res.AssertReachable() {
		out.Verdict = Safe
		out.Reason = "no 'assert false' is abstractly reachable for any replica count"
		return out, nil
	}

	cands := findCandidates(res)
	if len(cands) == 0 {
		out.Reason = "assert abstractly reachable, but no loop-free constant-folded witness prefix"
		return out, nil
	}

	// Replay: search small concrete instances under the full RA semantics.
	// Any violation found is definitive. Start at one replica when only the
	// env template has a candidate (its asserts need an instance containing
	// an env thread).
	minN := 1
	for _, c := range cands {
		if !c.EnvThread {
			minN = 0
			break
		}
	}
	maxN := opts.MaxReplayEnv
	if sys.Env == nil {
		maxN = 0
	}
	for n := minN; n <= maxN; n++ {
		inst, err := ra.NewInstance(sys, n)
		if err != nil {
			// Validation failures are not the prepass's to report; let the
			// main pipeline surface them.
			out.Reason = "replay unavailable: " + err.Error()
			return out, nil
		}
		r := inst.ExploreContext(ctx, ra.Limits{
			MaxStates: opts.MaxReplayStates,
			Workers:   opts.Workers,
			Symmetry:  n > 1,
		})
		out.ReplayStates += r.States
		if r.Unsafe {
			out.Verdict = Unsafe
			out.EnvThreads = n
			out.Witness = ra.FormatWitness(r.Witness)
			out.Reason = fmt.Sprintf("concrete replay with %d env thread(s) reaches the assert (%d states)",
				n, r.States)
			return out, nil
		}
		if r.Err != nil {
			out.Reason = "replay interrupted: " + r.Err.Error()
			return out, r.Err
		}
	}
	out.Reason = fmt.Sprintf("candidate path found, but no replay instance within %d env thread(s) and %d states confirms",
		maxN, opts.MaxReplayStates)
	return out, nil
}
