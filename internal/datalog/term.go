// Package datalog is a hand-rolled Datalog engine supporting:
//
//   - standard bottom-up evaluation (naive and semi-naive);
//   - the linear-Datalog syntactic restriction of Gottlob & Papadimitriou
//     (query evaluation in PSPACE), used by the paper's upper bound;
//   - Cache Datalog (§4 of the paper): inference where the set of derived
//     ground atoms live at any time is bounded by a cache size k, with
//     non-deterministic Drop;
//   - the Lemma 4.2 translation from Cache Datalog to linear Datalog.
//
// Terms are either variables or interned constants; atoms are flat
// predicate applications. The engine is deliberately simple and allocation-
// conscious rather than clever: it is the fixpoint backend for the paper's
// makeP encoding (package encode).
package datalog

import (
	"fmt"
	"strings"
)

// Const is an interned constant (index into Program.Consts).
type Const int

// Var is a rule variable (index local to its rule).
type Var int

// Term is a variable or a constant in a rule atom.
type Term struct {
	// IsVar selects between Var and Const.
	IsVar bool
	Var   Var
	Const Const
}

// C returns a constant term.
func C(c Const) Term { return Term{Const: c} }

// V returns a variable term.
func V(v Var) Term { return Term{IsVar: true, Var: v} }

// Pred is a predicate symbol (index into Program.Preds).
type Pred int

// Atom is a predicate applied to terms (possibly with variables).
type Atom struct {
	Pred  Pred
	Terms []Term
}

// GroundAtom is a fully instantiated atom. Args index Program.Consts.
type GroundAtom struct {
	Pred Pred
	Args []Const
}

// Key returns a canonical string identity of the ground atom.
func (g GroundAtom) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d(", int(g.Pred))
	for i, a := range g.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int(a))
	}
	b.WriteByte(')')
	return b.String()
}

// Rule is head :- body_1, …, body_t. A rule with an empty body is a fact
// schema (usually fully ground).
type Rule struct {
	Head Atom
	Body []Atom
	// NumVars is the number of distinct variables in the rule; variables
	// must be numbered 0..NumVars-1.
	NumVars int
}

// IsFact reports whether the rule has no body.
func (r Rule) IsFact() bool { return len(r.Body) == 0 }

// IsLinear reports whether the rule has at most one body atom.
func (r Rule) IsLinear() bool { return len(r.Body) <= 1 }

// PredDecl declares a predicate symbol.
type PredDecl struct {
	Name  string
	Arity int
}

// Program is a Datalog program: predicate declarations, an interned
// constant table, and rules.
type Program struct {
	Preds  []PredDecl
	Consts []string
	Rules  []Rule

	constIdx map[string]Const
	predIdx  map[string]Pred
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{constIdx: map[string]Const{}, predIdx: map[string]Pred{}}
}

// AddPred declares (or returns the existing) predicate with the given name
// and arity.
func (p *Program) AddPred(name string, arity int) (Pred, error) {
	if id, ok := p.predIdx[name]; ok {
		if p.Preds[id].Arity != arity {
			return 0, fmt.Errorf("predicate %s redeclared with arity %d (was %d)",
				name, arity, p.Preds[id].Arity)
		}
		return id, nil
	}
	id := Pred(len(p.Preds))
	p.Preds = append(p.Preds, PredDecl{Name: name, Arity: arity})
	p.predIdx[name] = id
	return id, nil
}

// MustPred is AddPred for construction code with static names.
func (p *Program) MustPred(name string, arity int) Pred {
	id, err := p.AddPred(name, arity)
	if err != nil {
		panic(err)
	}
	return id
}

// Intern returns the Const for the given symbol, interning it on first use.
func (p *Program) Intern(sym string) Const {
	if id, ok := p.constIdx[sym]; ok {
		return id
	}
	id := Const(len(p.Consts))
	p.Consts = append(p.Consts, sym)
	p.constIdx[sym] = id
	return id
}

// AddRule validates arities and variable numbering, then appends the rule.
func (p *Program) AddRule(r Rule) error {
	check := func(a Atom) error {
		if int(a.Pred) < 0 || int(a.Pred) >= len(p.Preds) {
			return fmt.Errorf("unknown predicate id %d", int(a.Pred))
		}
		if len(a.Terms) != p.Preds[a.Pred].Arity {
			return fmt.Errorf("predicate %s used with %d terms, arity %d",
				p.Preds[a.Pred].Name, len(a.Terms), p.Preds[a.Pred].Arity)
		}
		for _, t := range a.Terms {
			if t.IsVar {
				if int(t.Var) < 0 || int(t.Var) >= r.NumVars {
					return fmt.Errorf("variable %d out of range (NumVars=%d)", int(t.Var), r.NumVars)
				}
			} else if int(t.Const) < 0 || int(t.Const) >= len(p.Consts) {
				return fmt.Errorf("constant %d not interned", int(t.Const))
			}
		}
		return nil
	}
	if err := check(r.Head); err != nil {
		return fmt.Errorf("head: %w", err)
	}
	// Range restriction: every head variable must occur in the body.
	bodyVars := map[Var]bool{}
	for i, b := range r.Body {
		if err := check(b); err != nil {
			return fmt.Errorf("body[%d]: %w", i, err)
		}
		for _, t := range b.Terms {
			if t.IsVar {
				bodyVars[t.Var] = true
			}
		}
	}
	for _, t := range r.Head.Terms {
		if t.IsVar && !bodyVars[t.Var] {
			return fmt.Errorf("head variable %d not bound by the body (range restriction)", int(t.Var))
		}
	}
	p.Rules = append(p.Rules, r)
	return nil
}

// MustRule is AddRule that panics on error.
func (p *Program) MustRule(r Rule) {
	if err := p.AddRule(r); err != nil {
		panic(err)
	}
}

// Fact appends a ground fact.
func (p *Program) Fact(pred Pred, args ...Const) error {
	terms := make([]Term, len(args))
	for i, a := range args {
		terms[i] = C(a)
	}
	return p.AddRule(Rule{Head: Atom{Pred: pred, Terms: terms}})
}

// IsLinear reports whether every rule is linear or a fact (the restriction
// under which query evaluation is PSPACE, used by Theorem 4.1).
func (p *Program) IsLinear() bool {
	for _, r := range p.Rules {
		if !r.IsLinear() {
			return false
		}
	}
	return true
}

// AtomString renders an atom for diagnostics.
func (p *Program) AtomString(a Atom) string {
	var b strings.Builder
	b.WriteString(p.Preds[a.Pred].Name)
	b.WriteByte('(')
	for i, t := range a.Terms {
		if i > 0 {
			b.WriteByte(',')
		}
		if t.IsVar {
			fmt.Fprintf(&b, "X%d", int(t.Var))
		} else {
			b.WriteString(p.Consts[t.Const])
		}
	}
	b.WriteByte(')')
	return b.String()
}

// GroundString renders a ground atom with symbolic constants.
func (p *Program) GroundString(g GroundAtom) string {
	var b strings.Builder
	b.WriteString(p.Preds[g.Pred].Name)
	b.WriteByte('(')
	for i, a := range g.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Consts[a])
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(p.AtomString(r.Head))
		if len(r.Body) > 0 {
			b.WriteString(" :- ")
			for i, a := range r.Body {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(p.AtomString(a))
			}
		}
		b.WriteString(".\n")
	}
	return b.String()
}
