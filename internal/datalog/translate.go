package datalog

import (
	"fmt"
)

// TranslateCache implements Lemma 4.2: given a Cache Datalog program p, a
// goal atom g, and a cache bound k, it constructs a *linear* Datalog program
// p' and goal g' such that p ⊢_k g iff p' ⊢ g'.
//
// Encoding: a single wide predicate `cache` of arity k·(1+w), where w is the
// maximum arity in p. Each of the k slots holds one cached atom as
// (predicate-tag, arg_1, …, arg_w) padded with a distinguished blank
// constant; an empty slot is all-blank. Rules:
//
//   - the all-blank cache is a fact (the empty initial cache);
//   - for every rule of p and every placement of its body atoms into slots
//     and its head into a (blank) slot, one linear rule rewrites the cache —
//     the untouched slots are carried through by shared variables;
//   - for every slot, a Drop rule blanks it;
//   - for every slot, a goal rule infers `goal()` when the slot holds g.
//
// The blow-up is |p|·k^(t+1) rules for rules with t body atoms; the paper's
// makeP emits rules with t ≤ 2, giving the polynomial bound of Theorem 4.1.
func TranslateCache(p *Program, g GroundAtom, k int) (*Program, GroundAtom, error) {
	if k <= 0 {
		return nil, GroundAtom{}, fmt.Errorf("cache bound %d must be positive", k)
	}
	maxT := 0
	w := len(g.Args)
	for _, r := range p.Rules {
		if len(r.Body) > maxT {
			maxT = len(r.Body)
		}
		if a := len(r.Head.Terms); a > w {
			w = a
		}
		for _, b := range r.Body {
			if a := len(b.Terms); a > w {
				w = a
			}
		}
	}

	out := NewProgram()
	slot := 1 + w // tag + padded args
	cachePred := out.MustPred("cache", k*slot)
	goalPred := out.MustPred("goal", 0)

	blank := out.Intern("_")
	// Predicate tags and constants of the source program, interned afresh.
	tag := make([]Const, len(p.Preds))
	for i, pd := range p.Preds {
		tag[i] = out.Intern("p:" + pd.Name)
	}
	cmap := make([]Const, len(p.Consts))
	for i, c := range p.Consts {
		cmap[i] = out.Intern(c)
	}

	// Initial fact: the empty cache.
	blankTerms := make([]Term, k*slot)
	for i := range blankTerms {
		blankTerms[i] = C(blank)
	}
	out.MustRule(Rule{Head: Atom{Pred: cachePred, Terms: blankTerms}})

	// frame returns body/head term slices for a carried-through cache, with
	// one fresh frame variable per cache position, numbered from base.
	frame := func(base int) ([]Term, []Term) {
		body := make([]Term, k*slot)
		head := make([]Term, k*slot)
		for i := 0; i < k*slot; i++ {
			body[i] = V(Var(base + i))
			head[i] = V(Var(base + i))
		}
		return body, head
	}

	// atomTerms renders a source atom into slot terms; source rule variables
	// are mapped into the target rule's variable space with offset 0.
	atomTerms := func(a Atom) []Term {
		ts := make([]Term, slot)
		ts[0] = C(tag[a.Pred])
		for i := 0; i < w; i++ {
			if i < len(a.Terms) {
				t := a.Terms[i]
				if t.IsVar {
					ts[1+i] = V(t.Var)
				} else {
					ts[1+i] = C(cmap[t.Const])
				}
			} else {
				ts[1+i] = C(blank)
			}
		}
		return ts
	}
	blankSlot := make([]Term, slot)
	for i := range blankSlot {
		blankSlot[i] = C(blank)
	}

	// Add rules: assign each body atom a slot (atoms may share a slot — two
	// body atoms instantiating to the same ground atom occupy one cache
	// entry; sharing forces their syntactic unification) and pick a blank
	// slot, distinct from the body slots, for the head.
	for _, r := range p.Rules {
		// Source rule variables occupy 0..r.NumVars-1 in the target rule;
		// frame variables follow.
		base := r.NumVars
		slotOf := make([]int, len(r.Body))
		var assign func(i int)
		assign = func(i int) {
			if i < len(r.Body) {
				for s := 0; s < k; s++ {
					slotOf[i] = s
					assign(i + 1)
				}
				return
			}
			// Unify atoms sharing a slot.
			subst := map[Var]Term{}
			rep := map[int]Atom{} // slot -> representative atom
			ok := true
			for bi, b := range r.Body {
				if prev, shared := rep[slotOf[bi]]; shared {
					if !unifyAtoms(prev, b, subst) {
						ok = false
						break
					}
				} else {
					rep[slotOf[bi]] = b
				}
			}
			if !ok {
				return
			}
			usedSlots := map[int]bool{}
			for _, s := range slotOf {
				usedSlots[s] = true
			}
			for hs := 0; hs < k; hs++ {
				if usedSlots[hs] {
					continue
				}
				bodyT, headT := frame(base)
				for s, b := range rep {
					ts := atomTerms(applySubst(b, subst))
					copy(bodyT[s*slot:], ts)
					// Body slots are carried through unchanged in the head.
					copy(headT[s*slot:], ts)
				}
				copy(bodyT[hs*slot:], blankSlot)
				copy(headT[hs*slot:], atomTerms(applySubst(r.Head, subst)))
				out.MustRule(Rule{
					Head:    Atom{Pred: cachePred, Terms: headT},
					Body:    []Atom{{Pred: cachePred, Terms: bodyT}},
					NumVars: base + k*slot,
				})
			}
		}
		assign(0)
	}

	// Drop rules: blank out slot s.
	for s := 0; s < k; s++ {
		bodyT, headT := frame(0)
		copy(headT[s*slot:], blankSlot)
		out.MustRule(Rule{
			Head:    Atom{Pred: cachePred, Terms: headT},
			Body:    []Atom{{Pred: cachePred, Terms: bodyT}},
			NumVars: k * slot,
		})
	}

	// Goal rules: goal() when some slot holds g.
	gTerms := make([]Term, slot)
	gTerms[0] = C(tag[g.Pred])
	for i := 0; i < w; i++ {
		if i < len(g.Args) {
			gTerms[1+i] = C(cmap[g.Args[i]])
		} else {
			gTerms[1+i] = C(blank)
		}
	}
	for s := 0; s < k; s++ {
		bodyT, _ := frame(0)
		copy(bodyT[s*slot:], gTerms)
		out.MustRule(Rule{
			Head:    Atom{Pred: goalPred},
			Body:    []Atom{{Pred: cachePred, Terms: bodyT}},
			NumVars: k * slot,
		})
	}

	return out, GroundAtom{Pred: goalPred}, nil
}
