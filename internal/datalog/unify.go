package datalog

// Flat-term unification for the Lemma 4.2 translation: atoms have no
// function symbols, so a substitution maps variables to variables or
// constants and unification is a walk over paired terms.

// resolve chases variable bindings in subst to a representative term.
func resolve(t Term, subst map[Var]Term) Term {
	for t.IsVar {
		next, ok := subst[t.Var]
		if !ok {
			return t
		}
		t = next
	}
	return t
}

// unifyAtoms extends subst to a most general unifier of a and b, returning
// false (with subst possibly partially extended — callers discard it on
// failure) when the atoms do not unify.
func unifyAtoms(a, b Atom, subst map[Var]Term) bool {
	if a.Pred != b.Pred || len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		x := resolve(a.Terms[i], subst)
		y := resolve(b.Terms[i], subst)
		switch {
		case x.IsVar && y.IsVar:
			if x.Var != y.Var {
				subst[x.Var] = y
			}
		case x.IsVar:
			subst[x.Var] = y
		case y.IsVar:
			subst[y.Var] = x
		default:
			if x.Const != y.Const {
				return false
			}
		}
	}
	return true
}

// applySubst rewrites an atom through the substitution.
func applySubst(a Atom, subst map[Var]Term) Atom {
	ts := make([]Term, len(a.Terms))
	for i, t := range a.Terms {
		ts[i] = resolve(t, subst)
	}
	return Atom{Pred: a.Pred, Terms: ts}
}
