package datalog

import (
	"strings"
	"testing"
)

func TestParseProgramTC(t *testing.T) {
	src := `
% transitive closure
edge(a, b).
edge(b, c).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
?- path(a, c).
?- path(c, a).
`
	p, queries, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 2 {
		t.Fatalf("queries = %d", len(queries))
	}
	if !Query(p, queries[0]) {
		t.Error("path(a,c) should hold")
	}
	if Query(p, queries[1]) {
		t.Error("path(c,a) should not hold")
	}
}

func TestParseProgramMultiLineClauses(t *testing.T) {
	src := "p(X) :-\n  q(X),\n  r(X).\nq(a). r(a). q(b).\n?- p(a). ?- p(b)."
	p, queries, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 2 {
		t.Fatalf("queries = %d", len(queries))
	}
	if !Query(p, queries[0]) {
		t.Error("p(a) should hold")
	}
	if Query(p, queries[1]) {
		t.Error("p(b) should not hold (no r(b))")
	}
}

func TestParseProgramZeroArity(t *testing.T) {
	src := `
start.
goal :- start, flag(on).
flag(on).
?- goal.
`
	p, queries, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if !Query(p, queries[0]) {
		t.Error("goal should hold")
	}
}

func TestParseProgramRoundTripString(t *testing.T) {
	src := `
edge(a, b).
path(X, Y) :- edge(X, Y).
`
	p, _, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := ParseProgram(p.String())
	if err != nil {
		t.Fatalf("re-parse of String output: %v\n%s", err, p.String())
	}
	if p.String() != p2.String() {
		t.Errorf("not a fixpoint:\n%s\nvs\n%s", p.String(), p2.String())
	}
}

func TestParseProgramErrors(t *testing.T) {
	bad := map[string]string{
		"missing dot":     "edge(a, b)",
		"nonground query": "p(a). ?- p(X).",
		"unsafe head":     "p(X) :- q(a).\nq(a).",
		"arity clash":     "p(a). p(a, b).",
		"bad atom":        "p(a)q.",
		"empty arg":       "p(a,).",
	}
	for name, src := range bad {
		if _, _, err := ParseProgram(src); err == nil {
			t.Errorf("%s: %q accepted", name, src)
		}
	}
}

func TestParseProgramVariablesScopedPerRule(t *testing.T) {
	src := `
q(a). r(b).
p(X) :- q(X).
s(X) :- r(X).
?- p(a). ?- s(b). ?- p(b).
`
	p, queries, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if !Query(p, queries[0]) || !Query(p, queries[1]) {
		t.Error("expected derivations missing")
	}
	if Query(p, queries[2]) {
		t.Error("p(b) should not hold")
	}
}

func TestParseProgramCommentsAndWhitespace(t *testing.T) {
	src := "% c1\n# c2\n\n  p(a).  \n?- p(a)."
	p, queries, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if !Query(p, queries[0]) {
		t.Error("p(a) should hold")
	}
	if !strings.Contains(p.String(), "p(a).") {
		t.Error("rendering broken")
	}
}
