package datalog

import (
	"math/rand"
	"testing"
)

// chainProgram derives s0 → s1 → … → sn linearly: reaching sn requires only
// 2 cached atoms at a time (the paper's Drop rule at work).
func chainProgram(n int) (*Program, GroundAtom) {
	p := NewProgram()
	s := p.MustPred("s", 1)
	for i := 0; i <= n; i++ {
		p.Intern(constName(i))
	}
	if err := p.Fact(s, p.Intern(constName(0))); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		p.MustRule(Rule{
			Head: Atom{Pred: s, Terms: []Term{C(p.Intern(constName(i + 1)))}},
			Body: []Atom{{Pred: s, Terms: []Term{C(p.Intern(constName(i)))}}},
		})
	}
	return p, GroundAtom{Pred: s, Args: []Const{p.Intern(constName(n))}}
}

func constName(i int) string { return string(rune('0' + i)) }

// diamondProgram needs both left(i) and right(i) simultaneously to advance,
// forcing a cache of ≥ 4: deriving l(i+1) and r(i+1) each needs both
// premises resident plus a free slot, so all four atoms of two consecutive
// levels coexist at some point.
func diamondProgram(n int) (*Program, GroundAtom) {
	p := NewProgram()
	l := p.MustPred("l", 1)
	r := p.MustPred("r", 1)
	top := p.MustPred("t", 1)
	for i := 0; i <= n; i++ {
		p.Intern(constName(i))
	}
	if err := p.Fact(l, p.Intern(constName(0))); err != nil {
		panic(err)
	}
	if err := p.Fact(r, p.Intern(constName(0))); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		ci, cn := C(p.Intern(constName(i))), C(p.Intern(constName(i+1)))
		body := []Atom{{Pred: l, Terms: []Term{ci}}, {Pred: r, Terms: []Term{ci}}}
		p.MustRule(Rule{Head: Atom{Pred: l, Terms: []Term{cn}}, Body: body})
		p.MustRule(Rule{Head: Atom{Pred: r, Terms: []Term{cn}}, Body: body})
	}
	p.MustRule(Rule{
		Head: Atom{Pred: top, Terms: []Term{C(p.Intern(constName(n)))}},
		Body: []Atom{
			{Pred: l, Terms: []Term{C(p.Intern(constName(n)))}},
			{Pred: r, Terms: []Term{C(p.Intern(constName(n)))}},
		},
	})
	return p, GroundAtom{Pred: top, Args: []Const{p.Intern(constName(n))}}
}

func TestCacheChainNeedsTwo(t *testing.T) {
	p, g := chainProgram(5)
	if QueryCache(p, g, 1) {
		t.Error("chain derivable with cache 1: the premise and conclusion must coexist")
	}
	if !QueryCache(p, g, 2) {
		t.Error("chain should be derivable with cache 2 (derive, drop, repeat)")
	}
	if got := MinCacheSize(p, g, 10); got != 2 {
		t.Errorf("MinCacheSize = %d, want 2", got)
	}
}

func TestCacheDiamondNeedsFour(t *testing.T) {
	p, g := diamondProgram(3)
	if QueryCache(p, g, 3) {
		t.Error("diamond derivable with cache 3")
	}
	if !QueryCache(p, g, 4) {
		t.Error("diamond should be derivable with cache 4")
	}
	if got := MinCacheSize(p, g, 10); got != 4 {
		t.Errorf("MinCacheSize = %d, want 4", got)
	}
}

func TestCacheUnboundedAgreesWithStandard(t *testing.T) {
	p, g := diamondProgram(2)
	if !Query(p, g) {
		t.Fatal("goal should be standardly derivable")
	}
	// With a cache as large as the full atom universe, cache semantics is
	// standard semantics.
	if !QueryCache(p, g, EvalSemiNaive(p).Size()) {
		t.Error("large-cache inference disagrees with standard Datalog")
	}
}

func TestCacheUnderivable(t *testing.T) {
	p, _ := chainProgram(3)
	s := Pred(0)
	bogus := GroundAtom{Pred: s, Args: []Const{p.Intern("9")}}
	if QueryCache(p, bogus, 5) {
		t.Error("underivable atom inferred")
	}
	if MinCacheSize(p, bogus, 5) != -1 {
		t.Error("MinCacheSize of underivable atom should be -1")
	}
	if QueryCache(p, bogus, 0) {
		t.Error("k=0 must infer nothing")
	}
}

func TestTranslateChainEquivalence(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		p, g := chainProgram(4)
		lp, lg, err := TranslateCache(p, g, k)
		if err != nil {
			t.Fatal(err)
		}
		if !lp.IsLinear() {
			t.Fatalf("k=%d: translation is not linear Datalog", k)
		}
		want := QueryCache(p, g, k)
		got := Query(lp, lg)
		if got != want {
			t.Errorf("k=%d: cache says %v, translation says %v", k, want, got)
		}
	}
}

func TestTranslateDiamondEquivalence(t *testing.T) {
	for _, k := range []int{2, 3} {
		p, g := diamondProgram(2)
		lp, lg, err := TranslateCache(p, g, k)
		if err != nil {
			t.Fatal(err)
		}
		want := QueryCache(p, g, k)
		got := Query(lp, lg)
		if got != want {
			t.Errorf("k=%d: cache says %v, translation says %v", k, want, got)
		}
	}
}

func TestTranslateRejectsBadBound(t *testing.T) {
	p, g := chainProgram(1)
	if _, _, err := TranslateCache(p, g, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestTranslateRandomEquivalence fuzzes Lemma 4.2: for random programs and
// random goals, Prog ⊢_k g iff Prog' ⊢ g'.
func TestTranslateRandomEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing skipped in -short mode")
	}
	r := rand.New(rand.NewSource(42))
	cases := 0
	for cases < 25 {
		p := randDatalog(r)
		full := EvalSemiNaive(p)
		all := full.All()
		if len(all) == 0 {
			continue
		}
		cases++
		g := all[r.Intn(len(all))]
		// Also test an underivable goal by inventing a fresh constant.
		for _, goal := range []GroundAtom{g, underivableGoal(p, g)} {
			for _, k := range []int{1, 2, 3} {
				lp, lg, err := TranslateCache(p, goal, k)
				if err != nil {
					t.Fatal(err)
				}
				want := QueryCache(p, goal, k)
				got := Query(lp, lg)
				if got != want {
					t.Fatalf("case %d k=%d goal=%s: cache %v, translation %v\n%s",
						cases, k, p.GroundString(goal), want, got, p)
				}
			}
		}
	}
}

func underivableGoal(p *Program, base GroundAtom) GroundAtom {
	fresh := p.Intern("zz-fresh")
	args := append([]Const(nil), base.Args...)
	args[0] = fresh
	return GroundAtom{Pred: base.Pred, Args: args}
}
