package datalog

import (
	"context"
	"sort"
	"time"
)

// Bottom-up evaluation. EvalNaive recomputes all rules until fixpoint;
// EvalSemiNaive only joins against atoms derived in the previous round.
// Both return the set of derivable ground atoms; Query answers Prog ⊢ g.

// DB is a set of derived ground atoms, keyed canonically and indexed by
// predicate for rule joins.
type DB struct {
	set    map[string]GroundAtom
	byPred [][]GroundAtom
}

// NewDB returns an empty database over the program's predicates.
func NewDB(p *Program) *DB {
	return &DB{set: map[string]GroundAtom{}, byPred: make([][]GroundAtom, len(p.Preds))}
}

// Has reports membership.
func (db *DB) Has(g GroundAtom) bool {
	_, ok := db.set[g.Key()]
	return ok
}

// Add inserts g, reporting whether it was new.
func (db *DB) Add(g GroundAtom) bool {
	k := g.Key()
	if _, ok := db.set[k]; ok {
		return false
	}
	db.set[k] = g
	db.byPred[g.Pred] = append(db.byPred[g.Pred], g)
	return true
}

// Size returns the number of atoms.
func (db *DB) Size() int { return len(db.set) }

// All returns every derived atom sorted by canonical key, so fact dumps and
// derivation listings are byte-stable across runs (the backing map iterates
// in random order). Callers must not mutate the atoms.
func (db *DB) All() []GroundAtom {
	keys := make([]string, 0, len(db.set))
	for k := range db.set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]GroundAtom, 0, len(keys))
	for _, k := range keys {
		out = append(out, db.set[k])
	}
	return out
}

// each visits every atom in unspecified order; the evaluator's internal
// loops use it to skip All's sort.
func (db *DB) each(f func(GroundAtom)) {
	for _, g := range db.set {
		f(g)
	}
}

// ByPred returns the derived atoms with the given predicate.
func (db *DB) ByPred(pr Pred) []GroundAtom { return db.byPred[pr] }

// binding is a partial assignment of rule variables to constants.
type binding []Const

const unbound = Const(-1)

// match attempts to unify atom a (under binding b) with ground atom g,
// extending b in place. It returns false (possibly with b partially
// modified) on mismatch; callers must treat b as scratch and copy on
// success, or use the undo list.
func match(a Atom, g GroundAtom, b binding, undo *[]Var) bool {
	if a.Pred != g.Pred {
		return false
	}
	for i, t := range a.Terms {
		c := g.Args[i]
		if t.IsVar {
			switch b[t.Var] {
			case unbound:
				b[t.Var] = c
				*undo = append(*undo, t.Var)
			case c:
				// consistent
			default:
				return false
			}
		} else if t.Const != c {
			return false
		}
	}
	return true
}

// instantiate grounds atom a under a complete-enough binding. Panics on an
// unbound head variable, which AddRule's range restriction rules out.
func instantiate(a Atom, b binding) GroundAtom {
	args := make([]Const, len(a.Terms))
	for i, t := range a.Terms {
		if t.IsVar {
			if b[t.Var] == unbound {
				panic("datalog: unbound head variable")
			}
			args[i] = b[t.Var]
		} else {
			args[i] = t.Const
		}
	}
	return GroundAtom{Pred: a.Pred, Args: args}
}

// joinRule finds all instantiations of rule r whose body atoms are in db,
// requiring (when deltaAt ≥ 0) that body atom deltaAt matches within delta,
// and calls yield for each derived head. A false return from yield aborts
// the join (used for cancellation); joinRule reports whether it ran to
// completion.
func joinRule(r Rule, db *DB, delta *DB, deltaAt int, b binding, pos int, yield func(GroundAtom) bool) bool {
	if pos == len(r.Body) {
		return yield(instantiate(r.Head, b))
	}
	src := db
	if pos == deltaAt {
		src = delta
	}
	var undo []Var
	for _, g := range src.ByPred(r.Body[pos].Pred) {
		undo = undo[:0]
		if match(r.Body[pos], g, b, &undo) {
			if !joinRule(r, db, delta, deltaAt, b, pos+1, yield) {
				return false
			}
		}
		for _, v := range undo {
			b[v] = unbound
		}
	}
	return true
}

func newBinding(n int) binding {
	b := make(binding, n)
	for i := range b {
		b[i] = unbound
	}
	return b
}

// EvalNaive computes the least fixpoint by re-running every rule until no
// new atom appears.
func EvalNaive(p *Program) *DB {
	db := NewDB(p)
	for {
		changed := false
		for _, r := range p.Rules {
			b := newBinding(r.NumVars)
			joinRule(r, db, nil, -1, b, 0, func(g GroundAtom) bool {
				if db.Add(g) {
					changed = true
				}
				return true
			})
		}
		if !changed {
			return db
		}
	}
}

// EvalStats reports the work of one semi-naive evaluation.
type EvalStats struct {
	// Rounds is the number of fixpoint iterations (delta rounds), counting
	// the initial fact round.
	Rounds int
	// Atoms is the number of derived ground atoms.
	Atoms int
}

// RoundHook observes the wall time of each semi-naive delta round. Hooks
// keep the evaluator decoupled from any metrics package; a nil hook costs
// nothing (no clock reads).
type RoundHook func(d time.Duration)

// EvalSemiNaive computes the same fixpoint, joining each round only against
// atoms derived in the previous round (each body position takes a turn as
// the delta position).
func EvalSemiNaive(p *Program) *DB {
	db, _ := evalSemiNaiveFrom(p, nil, nil)
	return db
}

// EvalSemiNaiveStats is EvalSemiNaive with evaluation statistics.
func EvalSemiNaiveStats(p *Program) (*DB, EvalStats) {
	return evalSemiNaiveFrom(p, nil, nil)
}

// evalSemiNaiveFrom seeds the evaluation with extra ground atoms (used for
// EDB facts kept outside the program).
func evalSemiNaiveFrom(p *Program, seed *DB, hook RoundHook) (*DB, EvalStats) {
	db, stats, _ := evalSemiNaiveCtx(context.Background(), p, seed, hook)
	return db, stats
}

// cancelCheckStride bounds how many derivations a join may produce between
// context checks: small enough that a single exploding join stays
// responsive, large enough that ctx.Err is off the hot path.
const cancelCheckStride = 4096

// evalSemiNaiveCtx is the context-aware core. It checks ctx between rounds,
// between rules, and every cancelCheckStride derivations inside a join, so
// even a single pathological rule evaluation stops promptly. On
// cancellation it returns the partial database together with ctx's error;
// the caller must not treat the partial result as a verdict.
func evalSemiNaiveCtx(ctx context.Context, p *Program, seed *DB, hook RoundHook) (*DB, EvalStats, error) {
	db := NewDB(p)
	delta := NewDB(p)
	if seed != nil {
		seed.each(func(g GroundAtom) {
			if db.Add(g) {
				delta.Add(g)
			}
		})
	}
	stats := EvalStats{Rounds: 1}
	// Round 0: facts.
	for _, r := range p.Rules {
		if !r.IsFact() {
			continue
		}
		g := instantiate(r.Head, newBinding(r.NumVars))
		if db.Add(g) {
			delta.Add(g)
		}
	}
	derivations := 0
	for delta.Size() > 0 {
		if err := ctx.Err(); err != nil {
			stats.Atoms = db.Size()
			return db, stats, err
		}
		stats.Rounds++
		var roundStart time.Time
		if hook != nil {
			roundStart = time.Now()
		}
		next := NewDB(p)
		for _, r := range p.Rules {
			if r.IsFact() {
				continue
			}
			if err := ctx.Err(); err != nil {
				stats.Atoms = db.Size()
				return db, stats, err
			}
			for dAt := 0; dAt < len(r.Body); dAt++ {
				b := newBinding(r.NumVars)
				completed := joinRule(r, db, delta, dAt, b, 0, func(g GroundAtom) bool {
					if !db.Has(g) {
						next.Add(g)
					}
					derivations++
					if derivations%cancelCheckStride == 0 && ctx.Err() != nil {
						return false
					}
					return true
				})
				if !completed {
					stats.Atoms = db.Size()
					return db, stats, ctx.Err()
				}
			}
		}
		next.each(func(g GroundAtom) { db.Add(g) })
		delta = next
		if hook != nil {
			hook(time.Since(roundStart))
		}
	}
	stats.Atoms = db.Size()
	return db, stats, nil
}

// Query reports whether Prog ⊢ g, using semi-naive evaluation.
func Query(p *Program, g GroundAtom) bool {
	return EvalSemiNaive(p).Has(g)
}

// QueryStats is Query with evaluation statistics.
func QueryStats(p *Program, g GroundAtom) (bool, EvalStats) {
	db, stats := evalSemiNaiveFrom(p, nil, nil)
	return db.Has(g), stats
}

// QueryStatsHook is QueryStats with a per-round duration observer.
func QueryStatsHook(p *Program, g GroundAtom, hook RoundHook) (bool, EvalStats) {
	db, stats := evalSemiNaiveFrom(p, nil, hook)
	return db.Has(g), stats
}

// QueryCtx answers Prog ⊢ g under a context: cancellation aborts the
// evaluation mid-round and surfaces ctx's error. A true answer found before
// cancellation is still valid; false with a non-nil error means "unknown".
func QueryCtx(ctx context.Context, p *Program, g GroundAtom, hook RoundHook) (bool, EvalStats, error) {
	db, stats, err := evalSemiNaiveCtx(ctx, p, nil, hook)
	return db.Has(g), stats, err
}
