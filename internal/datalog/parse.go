package datalog

import (
	"fmt"
	"strings"
)

// ParseProgram reads a Datalog program in conventional textual syntax:
//
//	% transitive closure
//	edge(a, b).
//	edge(b, c).
//	path(X, Y) :- edge(X, Y).
//	path(X, Z) :- path(X, Y), edge(Y, Z).
//	?- path(a, c).
//
// Identifiers starting with an upper-case letter or '_' are variables
// (scoped per rule); everything else is a constant. Lines starting with
// '%' or '#' are comments. `?- atom.` records a ground query. It returns
// the program and the queries in order.
func ParseProgram(src string) (*Program, []GroundAtom, error) {
	p := NewProgram()
	var queries []GroundAtom

	// Split into clauses terminated by '.', respecting nothing fancy (no
	// strings or escapes in this syntax).
	var clauses []string
	var cur strings.Builder
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "%") || strings.HasPrefix(trimmed, "#") {
			continue
		}
		cur.WriteString(trimmed)
		cur.WriteByte(' ')
		for strings.Contains(cur.String(), ".") {
			s := cur.String()
			i := strings.Index(s, ".")
			clauses = append(clauses, strings.TrimSpace(s[:i]))
			cur.Reset()
			cur.WriteString(s[i+1:])
		}
	}
	if strings.TrimSpace(cur.String()) != "" {
		return nil, nil, fmt.Errorf("datalog: clause missing terminating '.': %q", strings.TrimSpace(cur.String()))
	}

	for _, cl := range clauses {
		if cl == "" {
			continue
		}
		if strings.HasPrefix(cl, "?-") {
			atomSrc := strings.TrimSpace(strings.TrimPrefix(cl, "?-"))
			vars := map[string]Var{}
			a, err := parseAtom(p, atomSrc, vars, false)
			if err != nil {
				return nil, nil, err
			}
			g := GroundAtom{Pred: a.Pred, Args: make([]Const, len(a.Terms))}
			for i, t := range a.Terms {
				if t.IsVar {
					return nil, nil, fmt.Errorf("datalog: query %q is not ground", atomSrc)
				}
				g.Args[i] = t.Const
			}
			queries = append(queries, g)
			continue
		}
		headSrc, bodySrc, hasBody := strings.Cut(cl, ":-")
		vars := map[string]Var{}
		head, err := parseAtom(p, strings.TrimSpace(headSrc), vars, true)
		if err != nil {
			return nil, nil, err
		}
		var body []Atom
		if hasBody {
			for _, as := range splitAtoms(bodySrc) {
				a, err := parseAtom(p, strings.TrimSpace(as), vars, true)
				if err != nil {
					return nil, nil, err
				}
				body = append(body, a)
			}
		}
		if err := p.AddRule(Rule{Head: head, Body: body, NumVars: len(vars)}); err != nil {
			return nil, nil, fmt.Errorf("datalog: clause %q: %w", cl, err)
		}
	}
	return p, queries, nil
}

// splitAtoms splits a rule body on commas that are not inside parentheses.
func splitAtoms(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// parseAtom parses pred(arg, …). Variables are interned into vars when
// allowVars is set.
func parseAtom(p *Program, s string, vars map[string]Var, allowVars bool) (Atom, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		// Zero-arity predicate without parentheses.
		if isIdent(s) {
			pr, err := p.AddPred(s, 0)
			if err != nil {
				return Atom{}, err
			}
			return Atom{Pred: pr}, nil
		}
		return Atom{}, fmt.Errorf("datalog: malformed atom %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if !isIdent(name) {
		return Atom{}, fmt.Errorf("datalog: bad predicate name %q", name)
	}
	argsSrc := s[open+1 : len(s)-1]
	var terms []Term
	if strings.TrimSpace(argsSrc) != "" {
		for _, as := range strings.Split(argsSrc, ",") {
			tok := strings.TrimSpace(as)
			if tok == "" {
				return Atom{}, fmt.Errorf("datalog: empty argument in %q", s)
			}
			if isVarName(tok) {
				if !allowVars {
					return Atom{}, fmt.Errorf("datalog: variable %q not allowed here", tok)
				}
				v, ok := vars[tok]
				if !ok {
					v = Var(len(vars))
					vars[tok] = v
				}
				terms = append(terms, V(v))
			} else {
				terms = append(terms, C(p.Intern(tok)))
			}
		}
	}
	pr, err := p.AddPred(name, len(terms))
	if err != nil {
		return Atom{}, err
	}
	return Atom{Pred: pr, Terms: terms}, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || c == '+' || c == '-' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func isVarName(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '_' || (c >= 'A' && c <= 'Z')
}
