package datalog

import (
	"sort"
	"strings"
)

// Cache Datalog (§4 of the paper): inference with a bounded working set.
//
//	Add:  an instantiated rule may fire only when all its body atoms are in
//	      the Cache; the head is added to the Cache.
//	Drop: any atom may be dropped from the Cache non-deterministically.
//
// Prog ⊢_k g asks whether g is inferable by a computation during which the
// Cache never exceeds k atoms. Standard Datalog is the k = ∞, never-drop
// special case.

// cacheState is a canonical encoding of a cache (sorted atom keys).
type cacheState struct {
	atoms map[string]GroundAtom
}

func (c cacheState) key() string {
	keys := make([]string, 0, len(c.atoms))
	for k := range c.atoms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

func (c cacheState) clone() cacheState {
	out := cacheState{atoms: make(map[string]GroundAtom, len(c.atoms))}
	for k, v := range c.atoms {
		out.atoms[k] = v
	}
	return out
}

// cacheDB adapts a cacheState to the join machinery.
func (c cacheState) db(p *Program) *DB {
	db := NewDB(p)
	for _, g := range c.atoms {
		db.Add(g)
	}
	return db
}

// QueryCache decides Prog ⊢_k g by breadth-first search over cache states.
// The search is exponential in k in the worst case — it is the semantics,
// not the algorithm, of the paper (the efficient route is the Lemma 4.2
// translation to linear Datalog); it doubles as the reference oracle for
// translation tests.
func QueryCache(p *Program, g GroundAtom, k int) bool {
	return QueryCacheEDB(p, g, k, nil)
}

// QueryCacheEDB is QueryCache with a set of extensional facts that are
// always available to rule bodies without occupying cache slots (the makeP
// encoding's join tables: an EDB fact can be re-derived at any time at no
// cost, so exempting it does not change the semantics).
func QueryCacheEDB(p *Program, g GroundAtom, k int, edb *DB) bool {
	if k <= 0 {
		return false
	}
	gKey := g.Key()
	init := cacheState{atoms: map[string]GroundAtom{}}
	seen := map[string]bool{init.key(): true}
	queue := []cacheState{init}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]

		// Add successors: every head derivable from the current cache.
		var derived []GroundAtom
		curDB := cur.db(p)
		if edb != nil {
			for _, f := range edb.All() {
				curDB.Add(f)
			}
		}
		for _, r := range p.Rules {
			b := newBinding(r.NumVars)
			joinRule(r, curDB, nil, -1, b, 0, func(h GroundAtom) bool {
				derived = append(derived, h)
				return true
			})
		}
		for _, h := range derived {
			hk := h.Key()
			// Inferring an atom adds it to the Cache, so the bound applies
			// to the goal too: it needs a free slot.
			if _, in := cur.atoms[hk]; in || len(cur.atoms) >= k {
				continue
			}
			if hk == gKey {
				return true
			}
			ns := cur.clone()
			ns.atoms[hk] = h
			nk := ns.key()
			if !seen[nk] {
				seen[nk] = true
				queue = append(queue, ns)
			}
		}
		// Drop successors.
		for ak := range cur.atoms {
			ns := cur.clone()
			delete(ns.atoms, ak)
			nk := ns.key()
			if !seen[nk] {
				seen[nk] = true
				queue = append(queue, ns)
			}
		}
	}
	return false
}

// MinCacheSize returns the least k ≤ kMax with Prog ⊢_k g, or -1 if none.
// Inference is monotone in k, so linear search from below finds the minimum.
func MinCacheSize(p *Program, g GroundAtom, kMax int) int {
	return MinCacheSizeEDB(p, g, kMax, nil)
}

// MinCacheSizeEDB is MinCacheSize with cache-exempt extensional facts.
func MinCacheSizeEDB(p *Program, g GroundAtom, kMax int, edb *DB) int {
	full := EvalSemiNaive(p)
	if edb != nil {
		merged := NewProgram()
		merged.Preds = p.Preds
		merged.Consts = p.Consts
		merged.Rules = p.Rules
		db := NewDB(merged)
		for _, f := range edb.All() {
			db.Add(f)
		}
		full, _ = evalSemiNaiveFrom(merged, db, nil)
	}
	if !full.Has(g) {
		return -1 // not derivable at any cache size
	}
	for k := 1; k <= kMax; k++ {
		if QueryCacheEDB(p, g, k, edb) {
			return k
		}
	}
	return -1
}

// SplitEDB separates the facts of the marked extensional predicates out of
// the program, returning the reduced program and the facts as a DB. Rules
// may still reference the EDB predicates in their bodies.
func SplitEDB(p *Program, edbPreds map[Pred]bool) (*Program, *DB) {
	core := NewProgram()
	core.Preds = p.Preds
	core.Consts = p.Consts
	db := NewDB(core)
	for _, r := range p.Rules {
		if r.IsFact() && edbPreds[r.Head.Pred] {
			db.Add(instantiate(r.Head, nil))
			continue
		}
		core.Rules = append(core.Rules, r)
	}
	return core, db
}
