package datalog

import (
	"math/rand"
	"testing"
)

// tc builds the transitive-closure program over the given edges.
func tc(t *testing.T, nodes []string, edges [][2]string) (*Program, Pred) {
	t.Helper()
	p := NewProgram()
	edge := p.MustPred("edge", 2)
	path := p.MustPred("path", 2)
	for _, n := range nodes {
		p.Intern(n)
	}
	for _, e := range edges {
		if err := p.Fact(edge, p.Intern(e[0]), p.Intern(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	// path(X,Y) :- edge(X,Y).
	p.MustRule(Rule{
		Head:    Atom{Pred: path, Terms: []Term{V(0), V(1)}},
		Body:    []Atom{{Pred: edge, Terms: []Term{V(0), V(1)}}},
		NumVars: 2,
	})
	// path(X,Z) :- path(X,Y), edge(Y,Z).   (linear in the IDB sense but has
	// two body atoms, so it is not linear in the paper's strict syntax)
	p.MustRule(Rule{
		Head:    Atom{Pred: path, Terms: []Term{V(0), V(2)}},
		Body:    []Atom{{Pred: path, Terms: []Term{V(0), V(1)}}, {Pred: edge, Terms: []Term{V(1), V(2)}}},
		NumVars: 3,
	})
	return p, path
}

func TestTransitiveClosure(t *testing.T) {
	p, path := tc(t, []string{"a", "b", "c", "d"},
		[][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}})
	db := EvalSemiNaive(p)
	want := [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"}}
	for _, w := range want {
		g := GroundAtom{Pred: path, Args: []Const{p.Intern(w[0]), p.Intern(w[1])}}
		if !db.Has(g) {
			t.Errorf("missing path(%s,%s)", w[0], w[1])
		}
	}
	notWant := [][2]string{{"b", "a"}, {"d", "a"}, {"a", "a"}}
	for _, w := range notWant {
		g := GroundAtom{Pred: path, Args: []Const{p.Intern(w[0]), p.Intern(w[1])}}
		if db.Has(g) {
			t.Errorf("spurious path(%s,%s)", w[0], w[1])
		}
	}
	if db.Size() != 3+6 { // 3 edge facts + 6 paths
		t.Errorf("db size = %d, want 9", db.Size())
	}
}

// TestAllGoldenOrder pins the exact output sequence of DB.All: sorted by
// canonical key, independent of insertion or map-iteration order, so fact
// dumps and derivation listings are byte-stable across runs.
func TestAllGoldenOrder(t *testing.T) {
	p, _ := tc(t, []string{"a", "b", "c"}, [][2]string{{"b", "c"}, {"a", "b"}})
	want := []string{
		// edge is pred 0, path is pred 1; constants intern in declaration
		// order: a=0, b=1, c=2.
		"0(0,1)", // edge(a,b)
		"0(1,2)", // edge(b,c)
		"1(0,1)", // path(a,b)
		"1(0,2)", // path(a,c)
		"1(1,2)", // path(b,c)
	}
	for round := 0; round < 20; round++ {
		db := EvalSemiNaive(p)
		got := db.All()
		if len(got) != len(want) {
			t.Fatalf("All() returned %d atoms, want %d", len(got), len(want))
		}
		for i, g := range got {
			if g.Key() != want[i] {
				t.Fatalf("round %d: All()[%d] = %s, want %s", round, i, g.Key(), want[i])
			}
		}
	}
}

func TestNaiveEqualsSemiNaive(t *testing.T) {
	p, _ := tc(t, []string{"a", "b", "c", "d", "e"},
		[][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"c", "d"}, {"e", "a"}})
	n, s := EvalNaive(p), EvalSemiNaive(p)
	if n.Size() != s.Size() {
		t.Fatalf("naive %d atoms, semi-naive %d", n.Size(), s.Size())
	}
	for _, g := range n.All() {
		if !s.Has(g) {
			t.Errorf("semi-naive missing %s", p.GroundString(g))
		}
	}
}

// randDatalog builds a random program over unary/binary predicates.
func randDatalog(r *rand.Rand) *Program {
	p := NewProgram()
	nConsts := 2 + r.Intn(3)
	for i := 0; i < nConsts; i++ {
		p.Intern(string(rune('a' + i)))
	}
	nPreds := 2 + r.Intn(3)
	preds := make([]Pred, nPreds)
	for i := range preds {
		preds[i] = p.MustPred(string(rune('p'+i)), 1+r.Intn(2))
	}
	randTerm := func(nv int) Term {
		if nv > 0 && r.Intn(2) == 0 {
			return V(Var(r.Intn(nv)))
		}
		return C(Const(r.Intn(nConsts)))
	}
	atom := func(nv int) Atom {
		pr := preds[r.Intn(nPreds)]
		ts := make([]Term, p.Preds[pr].Arity)
		for i := range ts {
			ts[i] = randTerm(nv)
		}
		return Atom{Pred: pr, Terms: ts}
	}
	// A few facts.
	for i := 0; i < 2+r.Intn(4); i++ {
		pr := preds[r.Intn(nPreds)]
		args := make([]Const, p.Preds[pr].Arity)
		for j := range args {
			args[j] = Const(r.Intn(nConsts))
		}
		if err := p.Fact(pr, args...); err != nil {
			panic(err)
		}
	}
	// A few rules; retry until range-restricted.
	for i := 0; i < 2+r.Intn(4); i++ {
		for tries := 0; tries < 20; tries++ {
			nv := 1 + r.Intn(3)
			rule := Rule{Head: atom(nv), NumVars: nv}
			for b := 0; b < 1+r.Intn(2); b++ {
				rule.Body = append(rule.Body, atom(nv))
			}
			if p.AddRule(rule) == nil {
				break
			}
		}
	}
	return p
}

func TestNaiveEqualsSemiNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 150; i++ {
		p := randDatalog(r)
		n, s := EvalNaive(p), EvalSemiNaive(p)
		if n.Size() != s.Size() {
			t.Fatalf("case %d: naive %d atoms, semi-naive %d\n%s", i, n.Size(), s.Size(), p)
		}
		for _, g := range n.All() {
			if !s.Has(g) {
				t.Fatalf("case %d: semi-naive missing %s\n%s", i, p.GroundString(g), p)
			}
		}
	}
}

func TestQueryAndLinear(t *testing.T) {
	p := NewProgram()
	a := p.MustPred("a", 1)
	b := p.MustPred("b", 1)
	one := p.Intern("1")
	if err := p.Fact(a, one); err != nil {
		t.Fatal(err)
	}
	p.MustRule(Rule{
		Head:    Atom{Pred: b, Terms: []Term{V(0)}},
		Body:    []Atom{{Pred: a, Terms: []Term{V(0)}}},
		NumVars: 1,
	})
	if !p.IsLinear() {
		t.Error("program with one-atom bodies must be linear")
	}
	if !Query(p, GroundAtom{Pred: b, Args: []Const{one}}) {
		t.Error("b(1) should be derivable")
	}
	if Query(p, GroundAtom{Pred: b, Args: []Const{p.Intern("2")}}) {
		t.Error("b(2) should not be derivable")
	}
	// Add a two-atom-body rule: no longer linear.
	c := p.MustPred("c", 1)
	p.MustRule(Rule{
		Head:    Atom{Pred: c, Terms: []Term{V(0)}},
		Body:    []Atom{{Pred: a, Terms: []Term{V(0)}}, {Pred: b, Terms: []Term{V(0)}}},
		NumVars: 1,
	})
	if p.IsLinear() {
		t.Error("two-atom body must break linearity")
	}
}

func TestAddRuleValidation(t *testing.T) {
	p := NewProgram()
	a := p.MustPred("a", 1)
	b := p.MustPred("b", 2)
	p.Intern("x")
	// Arity mismatch.
	if err := p.AddRule(Rule{Head: Atom{Pred: a, Terms: []Term{C(0), C(0)}}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Unbound head variable.
	if err := p.AddRule(Rule{
		Head:    Atom{Pred: b, Terms: []Term{V(0), V(1)}},
		Body:    []Atom{{Pred: a, Terms: []Term{V(0)}}},
		NumVars: 2,
	}); err == nil {
		t.Error("range restriction not enforced")
	}
	// Variable out of range.
	if err := p.AddRule(Rule{
		Head:    Atom{Pred: a, Terms: []Term{V(3)}},
		Body:    []Atom{{Pred: a, Terms: []Term{V(3)}}},
		NumVars: 1,
	}); err == nil {
		t.Error("variable out of range accepted")
	}
	// Un-interned constant.
	if err := p.AddRule(Rule{Head: Atom{Pred: a, Terms: []Term{C(99)}}}); err == nil {
		t.Error("un-interned constant accepted")
	}
	// Redeclared arity.
	if _, err := p.AddPred("a", 2); err == nil {
		t.Error("arity redeclaration accepted")
	}
}

func TestProgramString(t *testing.T) {
	p, _ := tc(t, []string{"a", "b"}, [][2]string{{"a", "b"}})
	s := p.String()
	if s == "" {
		t.Fatal("empty rendering")
	}
	for _, want := range []string{"edge(a,b).", "path(X0,X1) :- edge(X0,X1)."} {
		if !contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
