package datalog

import (
	"testing"
)

// FuzzParseProgram checks the Datalog frontend never panics and accepted
// programs evaluate and re-parse.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		"edge(a,b).\npath(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n?- path(a,b).",
		"p.\nq :- p.",
		"p(X) :- q(X), r(X, Y).",
		"% only a comment",
		"?- p(a).",
		"p(a,).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, queries, err := ParseProgram(src)
		if err != nil {
			return
		}
		// Accepted programs must evaluate without panicking and agree
		// between naive and semi-naive evaluation.
		n := EvalNaive(p)
		s := EvalSemiNaive(p)
		if n.Size() != s.Size() {
			t.Fatalf("naive %d vs semi-naive %d atoms for:\n%s", n.Size(), s.Size(), src)
		}
		for _, q := range queries {
			_ = Query(p, q)
		}
		// Re-parse the canonical rendering.
		if _, _, err := ParseProgram(p.String()); err != nil {
			t.Fatalf("rendering does not re-parse: %v\n%s", err, p.String())
		}
	})
}
