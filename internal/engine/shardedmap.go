// Package engine is the shared parallel state-space exploration engine
// behind both the simplified-semantics fixpoint (internal/simplified) and
// the concrete RA instance explorer (internal/ra).
//
// It offers two drivers over a common worker pool and a sharded,
// lock-striped canonical-state hash set:
//
//   - Explore: a free-order batched frontier with work sharing between N
//     goroutines. Verdicts are deterministic (a violation is found iff one
//     is reachable) and the first violation reported wins, after which the
//     workers drain; witness paths may differ between runs.
//   - Layered: a deterministic batched-BFS driver. Each frontier layer is
//     expanded in parallel, but expansion results are committed strictly in
//     frontier order, so verdicts, witnesses, and all order-sensitive
//     bookkeeping are bit-identical for every worker count.
//
// Both honor context cancellation and deadlines, cap the number of admitted
// states, merge per-worker statistics, and report progress via an optional
// callback.
package engine

import (
	"sync"
)

// shardCount is the number of lock stripes in a sharded map. Must be a
// power of two. 64 stripes keep contention negligible for dozens of
// workers while staying cache-friendly.
const shardCount = 64

// fnv1a hashes a key for shard selection (FNV-1a, 32-bit, over the key's
// length and its last hashWindow bytes). Shard choice only affects stripe
// balance, never semantics, so hashing a bounded window keeps the per-probe
// cost flat in the key length; the suffix is the high-entropy end of state
// keys (env fingerprints, view sections). The generic constraint lets string
// and []byte keys hash identically, so the byte-key fast paths land in the
// same shard as their interned string twins.
func fnv1a[T ~string | ~[]byte](s T) uint32 {
	const hashWindow = 24
	h := uint32(2166136261)
	h ^= uint32(len(s))
	h *= 16777619
	i := 0
	if len(s) > hashWindow {
		i = len(s) - hashWindow
	}
	for ; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

type shard[V any] struct {
	mu sync.Mutex
	m  map[string]V
	_  [40]byte // pad to a cache line to avoid false sharing between stripes
}

// ShardedMap is a lock-striped hash map from canonical state keys to
// caller-defined values (e.g. predecessor edges for witness
// reconstruction). TryPut is the dedup primitive: it inserts the key iff it
// is absent and reports whether it did.
type ShardedMap[V any] struct {
	shards [shardCount]shard[V]
}

// NewShardedMap returns an empty map.
func NewShardedMap[V any]() *ShardedMap[V] {
	sm := &ShardedMap[V]{}
	for i := range sm.shards {
		sm.shards[i].m = make(map[string]V)
	}
	return sm
}

func (sm *ShardedMap[V]) shardFor(key string) *shard[V] {
	return &sm.shards[fnv1a(key)&(shardCount-1)]
}

// TryPut inserts (key, val) iff key is absent; it reports whether the key
// was new. Safe for concurrent use.
func (sm *ShardedMap[V]) TryPut(key string, val V) bool {
	s := sm.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		return false
	}
	s.m[key] = val
	return true
}

// Get returns the value stored under key.
func (sm *ShardedMap[V]) Get(key string) (V, bool) {
	s := sm.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

// HasBytes reports whether key is present, without converting it to a
// string (the map lookup by string(key) compiles to an allocation-free
// probe). Because the map is grow-only, a true answer is stable; a false
// answer may race with a concurrent insert and callers must re-check via
// TryPut/TryPutBytes before admitting.
func (sm *ShardedMap[V]) HasBytes(key []byte) bool {
	s := &sm.shards[fnv1a(key)&(shardCount-1)]
	s.mu.Lock()
	_, ok := s.m[string(key)]
	s.mu.Unlock()
	return ok
}

// TryPutBytes is TryPut for a byte-slice key: the duplicate check is
// allocation-free, and the key is interned into a string only when it is
// actually inserted. The hot dedup path (most successors are already
// visited) therefore costs no allocation at all.
func (sm *ShardedMap[V]) TryPutBytes(key []byte, val V) bool {
	s := &sm.shards[fnv1a(key)&(shardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[string(key)]; ok {
		return false
	}
	s.m[string(key)] = val
	return true
}

// GetBytes returns the value stored under key without a string conversion.
func (sm *ShardedMap[V]) GetBytes(key []byte) (V, bool) {
	s := &sm.shards[fnv1a(key)&(shardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[string(key)]
	return v, ok
}

// Len returns the number of keys across all shards.
func (sm *ShardedMap[V]) Len() int {
	n := 0
	for i := range sm.shards {
		sm.shards[i].mu.Lock()
		n += len(sm.shards[i].m)
		sm.shards[i].mu.Unlock()
	}
	return n
}

// ShardStats reports occupancy balance for observability: the size of the
// largest shard and the number of non-empty shards. A max far above
// len/shardCount (with many empty shards) indicates key-hash skew.
func (sm *ShardedMap[V]) ShardStats() (maxLen, nonEmpty int) {
	for i := range sm.shards {
		sm.shards[i].mu.Lock()
		n := len(sm.shards[i].m)
		sm.shards[i].mu.Unlock()
		if n > maxLen {
			maxLen = n
		}
		if n > 0 {
			nonEmpty++
		}
	}
	return maxLen, nonEmpty
}
