// Package engine is the shared parallel state-space exploration engine
// behind both the simplified-semantics fixpoint (internal/simplified) and
// the concrete RA instance explorer (internal/ra).
//
// It offers two drivers over a common worker pool and a sharded,
// lock-striped canonical-state hash set:
//
//   - Explore: a free-order batched frontier with work sharing between N
//     goroutines. Verdicts are deterministic (a violation is found iff one
//     is reachable) and the first violation reported wins, after which the
//     workers drain; witness paths may differ between runs.
//   - Layered: a deterministic batched-BFS driver. Each frontier layer is
//     expanded in parallel, but expansion results are committed strictly in
//     frontier order, so verdicts, witnesses, and all order-sensitive
//     bookkeeping are bit-identical for every worker count.
//
// Both honor context cancellation and deadlines, cap the number of admitted
// states, merge per-worker statistics, and report progress via an optional
// callback.
package engine

import (
	"sync"
)

// shardCount is the number of lock stripes in a sharded map. Must be a
// power of two. 64 stripes keep contention negligible for dozens of
// workers while staying cache-friendly.
const shardCount = 64

// fnv1a hashes a key for shard selection (FNV-1a, 32-bit).
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

type shard[V any] struct {
	mu sync.Mutex
	m  map[string]V
	_  [40]byte // pad to a cache line to avoid false sharing between stripes
}

// ShardedMap is a lock-striped hash map from canonical state keys to
// caller-defined values (e.g. predecessor edges for witness
// reconstruction). TryPut is the dedup primitive: it inserts the key iff it
// is absent and reports whether it did.
type ShardedMap[V any] struct {
	shards [shardCount]shard[V]
}

// NewShardedMap returns an empty map.
func NewShardedMap[V any]() *ShardedMap[V] {
	sm := &ShardedMap[V]{}
	for i := range sm.shards {
		sm.shards[i].m = make(map[string]V)
	}
	return sm
}

func (sm *ShardedMap[V]) shardFor(key string) *shard[V] {
	return &sm.shards[fnv1a(key)&(shardCount-1)]
}

// TryPut inserts (key, val) iff key is absent; it reports whether the key
// was new. Safe for concurrent use.
func (sm *ShardedMap[V]) TryPut(key string, val V) bool {
	s := sm.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		return false
	}
	s.m[key] = val
	return true
}

// Get returns the value stored under key.
func (sm *ShardedMap[V]) Get(key string) (V, bool) {
	s := sm.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

// Len returns the number of keys across all shards.
func (sm *ShardedMap[V]) Len() int {
	n := 0
	for i := range sm.shards {
		sm.shards[i].mu.Lock()
		n += len(sm.shards[i].m)
		sm.shards[i].mu.Unlock()
	}
	return n
}

// ShardStats reports occupancy balance for observability: the size of the
// largest shard and the number of non-empty shards. A max far above
// len/shardCount (with many empty shards) indicates key-hash skew.
func (sm *ShardedMap[V]) ShardStats() (maxLen, nonEmpty int) {
	for i := range sm.shards {
		sm.shards[i].mu.Lock()
		n := len(sm.shards[i].m)
		sm.shards[i].mu.Unlock()
		if n > maxLen {
			maxLen = n
		}
		if n > 0 {
			nonEmpty++
		}
	}
	return maxLen, nonEmpty
}
