package engine

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"paramra/internal/obs"
)

// chainExpand builds a linear state space 0 → 1 → … → n.
func chainExpand(n int) func(int, string, int, []Succ[int, struct{}]) []Succ[int, struct{}] {
	return func(s int, key string, depth int, buf []Succ[int, struct{}]) []Succ[int, struct{}] {
		if s >= n {
			return buf
		}
		return append(buf, Succ[int, struct{}]{State: s + 1, Key: fmt.Sprint(s + 1)})
	}
}

// TestFinalProgressEqualsOutcomeStats pins the terminal-snapshot contract:
// the last Progress emission is the exact Stats returned in the Outcome,
// for both drivers.
func TestFinalProgressEqualsOutcomeStats(t *testing.T) {
	var last Stats
	cfg := Config{
		Workers:       2,
		Progress:      func(s Stats) { last = s },
		ProgressEvery: time.Millisecond,
	}
	out := Explore(context.Background(), cfg, NewShardedMap[struct{}](), 0, "0", struct{}{}, chainExpand(200))
	if last != out.Stats {
		t.Errorf("Explore: final progress %+v != outcome stats %+v", last, out.Stats)
	}

	last = Stats{}
	lout := Layered(context.Background(), cfg, 0, "0",
		func(s int, seen func([]byte) bool) []Succ[int, struct{}] { return chainExpand(200)(s, "", 0, nil) },
		func(i int, s int, succs []Succ[int, struct{}], adm *Admitter[int]) any {
			adm.AddTransitions(int64(len(succs)))
			for _, sc := range succs {
				adm.Add(sc.Key, sc.State)
			}
			return nil
		})
	if last != lout.Stats {
		t.Errorf("Layered: final progress %+v != outcome stats %+v", last, lout.Stats)
	}
}

// TestEngineTraceAndMetrics checks both drivers emit schema-valid spans and
// populate the registry.
func TestEngineTraceAndMetrics(t *testing.T) {
	for _, driver := range []string{"explore", "layered"} {
		var buf bytes.Buffer
		tr := obs.NewTracer(&buf)
		root := tr.Start("test", nil)
		reg := obs.NewRegistry()
		cfg := Config{Workers: 2, Trace: root, Metrics: reg}
		if driver == "explore" {
			Explore(context.Background(), cfg, NewShardedMap[struct{}](), 0, "0", struct{}{}, chainExpand(50))
		} else {
			Layered(context.Background(), cfg, 0, "0",
				func(s int, seen func([]byte) bool) []Succ[int, struct{}] { return chainExpand(50)(s, "", 0, nil) },
				func(i int, s int, succs []Succ[int, struct{}], adm *Admitter[int]) any {
					for _, sc := range succs {
						adm.Add(sc.Key, sc.State)
					}
					return nil
				})
		}
		root.End()
		if err := tr.Flush(); err != nil {
			t.Fatalf("%s: flush: %v", driver, err)
		}
		spans, err := obs.ParseTrace(&buf)
		if err != nil {
			t.Fatalf("%s: invalid trace: %v", driver, err)
		}
		var found bool
		for _, s := range spans {
			if s.Name == driver {
				found = true
				if s.Attrs["states"] == nil || s.Attrs["workers"] == nil {
					t.Errorf("%s: run span missing attrs: %+v", driver, s.Attrs)
				}
			}
		}
		if !found {
			t.Errorf("%s: no run span in trace (spans: %v)", driver, spans)
		}
		if got := reg.Gauge("paramra_engine_states", "").Value(); got != 51 {
			t.Errorf("%s: states gauge = %d, want 51", driver, got)
		}
		if driver == "layered" {
			var layers int
			for _, s := range spans {
				if s.Name == "layer" {
					layers++
				}
			}
			// 51 states in a chain: 51 layers of size 1 (the last yields no
			// successors and closes the loop).
			if layers != 51 {
				t.Errorf("layered: %d layer spans, want 51", layers)
			}
		}
	}
}

func TestShardStats(t *testing.T) {
	sm := NewShardedMap[struct{}]()
	mx, used := sm.ShardStats()
	if mx != 0 || used != 0 {
		t.Errorf("empty map: max=%d nonempty=%d", mx, used)
	}
	for i := 0; i < 1000; i++ {
		sm.TryPut(fmt.Sprint(i), struct{}{})
	}
	mx, used = sm.ShardStats()
	if used == 0 || mx == 0 || mx > 1000 {
		t.Errorf("populated map: max=%d nonempty=%d", mx, used)
	}
	if sm.Len() != 1000 {
		t.Errorf("len = %d", sm.Len())
	}
}
