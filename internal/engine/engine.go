package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paramra/internal/obs"
)

// Config tunes an exploration run.
type Config struct {
	// Workers is the number of worker goroutines; <= 0 selects GOMAXPROCS.
	Workers int
	// MaxStates caps the number of admitted states (0 = unlimited). The
	// root counts as the first admitted state, matching the sequential
	// explorers.
	MaxStates int
	// MaxDepth caps the length of explored computations (0 = unlimited).
	MaxDepth int
	// Progress, when non-nil, is called with a stats snapshot roughly every
	// ProgressEvery (default 250ms) from a dedicated goroutine.
	Progress func(Stats)
	// ProgressEvery is the progress callback interval (0 = 250ms).
	ProgressEvery time.Duration
	// Trace, when non-nil, is the parent span under which the engine
	// records its run span (named SpanName, default "explore"/"layered")
	// and, for Layered, one child span per BFS layer. Layer spans are
	// opened from the sequential layer loop, so their IDs are
	// deterministic at every worker count.
	Trace *obs.Span
	// SpanName overrides the run span's name.
	SpanName string
	// Metrics, when non-nil, receives live engine gauges and histograms
	// (states, queue depth, batch-wait and layer latencies, visited-shard
	// occupancy). With a nil registry every instrumentation site is a
	// single pointer check.
	Metrics *obs.Registry
}

func (cfg Config) workers() int {
	if cfg.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return cfg.Workers
}

func (cfg Config) progressEvery() time.Duration {
	if cfg.ProgressEvery <= 0 {
		return 250 * time.Millisecond
	}
	return cfg.ProgressEvery
}

// Stats aggregates the per-worker counters of a run.
type Stats struct {
	// States is the number of distinct states admitted to the visited set
	// (including the root).
	States int64
	// Transitions is the number of successor edges examined.
	Transitions int64
	// DedupHits counts successors dropped because their canonical key was
	// already in the visited set.
	DedupHits int64
	// PeakFrontier is the maximum number of admitted-but-unexpanded states
	// observed at any point (for Layered, the largest BFS layer).
	PeakFrontier int64
	// Wall is the wall-clock duration of the run.
	Wall time.Duration
	// Workers is the resolved worker count.
	Workers int
}

// Outcome is the engine-level result of a run.
type Outcome struct {
	Stats Stats
	// Complete is true when the search space was exhausted: no halt, no
	// state/depth cap hit, no cancellation.
	Complete bool
	// Halted is true when a halting successor (violation) ended the run.
	Halted bool
	// HaltParent is the canonical key of the state whose expansion produced
	// the halting successor ("" unless Halted).
	HaltParent string
	// HaltTag is the caller payload attached to the halting successor.
	HaltTag any
	// Capped is true when MaxStates or MaxDepth pruned the search.
	Capped bool
	// Err is the context error when the run was cancelled, else nil.
	Err error
}

// counters holds the shared atomic counters of one run.
type counters struct {
	states      atomic.Int64
	transitions atomic.Int64
	dedupHits   atomic.Int64
	peak        atomic.Int64
}

// admit increments the state counter unless the cap is already reached; it
// reports whether the state was admitted. CAS keeps the counter exactly at
// the cap even under contention.
func (c *counters) admit(maxStates int) bool {
	for {
		cur := c.states.Load()
		if maxStates > 0 && cur >= int64(maxStates) {
			return false
		}
		if c.states.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (c *counters) bumpPeak(n int64) {
	for {
		cur := c.peak.Load()
		if n <= cur || c.peak.CompareAndSwap(cur, n) {
			return
		}
	}
}

func (c *counters) snapshot(workers int, start time.Time) Stats {
	return Stats{
		States:       c.states.Load(),
		Transitions:  c.transitions.Load(),
		DedupHits:    c.dedupHits.Load(),
		PeakFrontier: c.peak.Load(),
		Wall:         time.Since(start),
		Workers:      workers,
	}
}

// monitor runs the progress ticker and mirrors live counters into the
// metrics registry. It is nil when both are disabled, and every method is
// nil-safe.
type monitor struct {
	progress func(Stats)
	done     chan struct{}
	wg       sync.WaitGroup

	// Resolved registry handles (nil when metrics are disabled).
	gStates, gTransitions, gDedup, gPeak *obs.Gauge
	gQueue, gShardMax, gShardsUsed       *obs.Gauge
}

// publish mirrors a stats snapshot into the registry gauges.
func (m *monitor) publish(s Stats, queueLen func() int64, shardStats func() (int64, int64)) {
	m.gStates.Set(s.States)
	m.gTransitions.Set(s.Transitions)
	m.gDedup.Set(s.DedupHits)
	m.gPeak.Set(s.PeakFrontier)
	if queueLen != nil {
		m.gQueue.Set(queueLen())
	}
	if shardStats != nil {
		mx, used := shardStats()
		m.gShardMax.Set(mx)
		m.gShardsUsed.Set(used)
	}
}

// startMonitor launches the observation goroutine when progress or metrics
// are enabled. queueLen and shardStats are optional live probes (sampled at
// ticker rate, never in the hot path); they must be safe for concurrent
// use. Call stop with the run's final Stats: it emits that exact snapshot
// as the last progress callback, so the terminal Progress values always
// equal the returned Outcome.Stats.
func startMonitor(cfg Config, cnt *counters, workers int, start time.Time,
	queueLen func() int64, shardStats func() (int64, int64)) *monitor {
	if cfg.Progress == nil && cfg.Metrics == nil {
		return nil
	}
	m := &monitor{progress: cfg.Progress, done: make(chan struct{})}
	if r := cfg.Metrics; r != nil {
		m.gStates = r.Gauge("paramra_engine_states", "states admitted to the visited set (current run)")
		m.gTransitions = r.Gauge("paramra_engine_transitions", "successor edges examined (current run)")
		m.gDedup = r.Gauge("paramra_engine_dedup_hits", "successors dropped as already visited (current run)")
		m.gPeak = r.Gauge("paramra_engine_peak_frontier", "largest frontier observed (current run)")
		m.gQueue = r.Gauge("paramra_engine_queue_depth", "shared frontier queue length (current run)")
		m.gShardMax = r.Gauge("paramra_engine_visited_shard_max", "largest visited-set shard (current run)")
		m.gShardsUsed = r.Gauge("paramra_engine_visited_shards_nonempty", "non-empty visited-set shards (current run)")
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(cfg.progressEvery())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s := cnt.snapshot(workers, start)
				m.publish(s, queueLen, shardStats)
				if m.progress != nil {
					m.progress(s)
				}
			case <-m.done:
				return
			}
		}
	}()
	return m
}

// stop halts the ticker and emits final as the terminal snapshot (both to
// the registry and to the progress callback). Nil-safe.
func (m *monitor) stop(final Stats, queueLen func() int64, shardStats func() (int64, int64)) {
	if m == nil {
		return
	}
	close(m.done)
	m.wg.Wait()
	m.publish(final, queueLen, shardStats)
	if m.progress != nil {
		m.progress(final)
	}
}

// spanName picks the run span's name.
func (cfg Config) spanName(def string) string {
	if cfg.SpanName != "" {
		return cfg.SpanName
	}
	return def
}

// Succ is one successor produced by an expansion callback.
type Succ[S any, V any] struct {
	// State and Key identify the successor; ignored when Halt or Dedup is
	// set.
	State S
	Key   string
	// Val is stored in the visited map under Key (e.g. a predecessor edge).
	Val V
	// Halt marks a halting successor (assert violation): the search stops,
	// the first reported halt wins, and the remaining workers drain.
	Halt bool
	// Tag is the caller payload surfaced as Outcome.HaltTag when Halt wins.
	Tag any
	// Dedup marks a successor the expansion already proved visited (via
	// ShardedMap.HasBytes on the shared visited set, which is grow-only, so
	// the proof cannot be invalidated). The engine counts it as a
	// transition and a dedup hit without requiring a materialized Key —
	// the byte-probe fast path that keeps duplicate successors
	// allocation-free.
	Dedup bool
}

// item is one admitted frontier entry.
type item[S any] struct {
	state S
	key   string
	depth int
}

// batchSize is how many frontier items a worker moves between its local
// stack and the shared queue at a time; spillAt is the local-stack size
// that triggers a donation back to the shared queue. 32 was confirmed by
// the paramra_engine_visited_shard_* occupancy histograms and the batch-wait
// histogram: shards stay balanced while a worker amortizes one queue lock
// over a cache-line-friendly run of items.
const (
	batchSize = 32
	spillAt   = 2 * batchSize
)

// Explore runs a free-order parallel search from root. expand is called
// exactly once per admitted state (concurrently from several goroutines)
// and returns its successors; the engine deduplicates them through the
// caller-supplied sharded visited map, which also stores each admitted
// state's Val for later lookup (witness reconstruction). The caller owns
// visited so its expansion callback can pre-filter duplicate successors
// with HasBytes before materializing a key (emitting Succ{Dedup: true} to
// keep the transition and dedup counters exact).
//
// buf hands expand a worker-local successor buffer to append into: the
// engine recycles it between expansions of the same worker, so steady-state
// expansion allocates no slice. expand may ignore buf and return any slice.
//
// The frontier is a shared batched queue with per-worker local stacks:
// workers take and donate work in batches, so queue contention is paid
// once per batch rather than once per state. When idle workers outnumber
// the queued items the take size shrinks to a fair share, so tiny frontiers
// are spread instead of hoarded. The first halting successor wins; after a
// halt (or cancellation) the workers drain and exit.
func Explore[S any, V any](
	ctx context.Context,
	cfg Config,
	visited *ShardedMap[V],
	root S, rootKey string, rootVal V,
	expand func(s S, key string, depth int, buf []Succ[S, V]) []Succ[S, V],
) Outcome {
	workers := cfg.workers()
	start := time.Now()
	cnt := &counters{}
	visited.TryPut(rootKey, rootVal)
	cnt.states.Store(1)
	cnt.bumpPeak(1)

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		global  = []item[S]{{state: root, key: rootKey}}
		waiting = 0
		stopped atomic.Bool // halt, cancel: workers drain
		capped  atomic.Bool
		halted  bool
		haltKey string
		haltTag any
	)
	pending := atomic.Int64{}
	pending.Store(1)

	// Cancellation watcher: wakes idle workers when the context fires.
	cancelDone := make(chan struct{})
	var cancelWG sync.WaitGroup
	if ctx != nil && ctx.Done() != nil {
		cancelWG.Add(1)
		go func() {
			defer cancelWG.Done()
			select {
			case <-ctx.Done():
				stopped.Store(true)
				mu.Lock()
				cond.Broadcast()
				mu.Unlock()
			case <-cancelDone:
			}
		}()
	}

	span := cfg.Trace.Child(cfg.spanName("explore"))
	var hBatchWait *obs.Histogram
	if cfg.Metrics != nil {
		hBatchWait = cfg.Metrics.Histogram("paramra_engine_batch_wait_ns",
			"time a worker waits to refill its batch from the shared queue (ns)")
	}
	queueLen := func() int64 {
		mu.Lock()
		defer mu.Unlock()
		return int64(len(global))
	}
	shardStats := func() (int64, int64) {
		mx, used := visited.ShardStats()
		return int64(mx), int64(used)
	}
	mon := startMonitor(cfg, cnt, workers, start, queueLen, shardStats)

	recordHalt := func(parentKey string, tag any) {
		mu.Lock()
		if !halted {
			halted = true
			haltKey = parentKey
			haltTag = tag
		}
		mu.Unlock()
		stopped.Store(true)
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	}

	worker := func() {
		var local []item[S]
		var sbuf []Succ[S, V] // recycled successor buffer handed to expand
		for {
			if stopped.Load() {
				return
			}
			if len(local) == 0 {
				var waitStart time.Time
				if hBatchWait != nil {
					waitStart = time.Now()
				}
				mu.Lock()
				for len(global) == 0 && pending.Load() > 0 && !stopped.Load() {
					waiting++
					cond.Wait()
					waiting--
				}
				if stopped.Load() || (len(global) == 0 && pending.Load() == 0) {
					cond.Broadcast()
					mu.Unlock()
					return
				}
				n := len(global)
				if n > batchSize {
					n = batchSize
				}
				// Adaptive batch floor: when peers are starved and the queue
				// is short, take only a fair share so a tiny frontier spreads
				// across workers instead of serializing behind one.
				if waiting > 0 {
					if fair := (len(global) + waiting) / (waiting + 1); fair < n {
						n = fair
						if n < 1 {
							n = 1
						}
					}
				}
				local = append(local, global[len(global)-n:]...)
				global = global[:len(global)-n]
				mu.Unlock()
				if hBatchWait != nil {
					hBatchWait.Observe(int64(time.Since(waitStart)))
				}
				continue
			}

			it := local[len(local)-1]
			local = local[:len(local)-1]

			if cfg.MaxDepth > 0 && it.depth >= cfg.MaxDepth {
				capped.Store(true)
				if pending.Add(-1) == 0 {
					mu.Lock()
					cond.Broadcast()
					mu.Unlock()
				}
				continue
			}

			succs := expand(it.state, it.key, it.depth, sbuf[:0])
			cnt.transitions.Add(int64(len(succs)))
			for _, sc := range succs {
				if sc.Halt {
					recordHalt(it.key, sc.Tag)
					break
				}
				if sc.Dedup {
					cnt.dedupHits.Add(1)
					continue
				}
				if !visited.TryPut(sc.Key, sc.Val) {
					cnt.dedupHits.Add(1)
					continue
				}
				if !cnt.admit(cfg.MaxStates) {
					capped.Store(true)
					continue
				}
				n := pending.Add(1)
				cnt.bumpPeak(n)
				local = append(local, item[S]{state: sc.State, key: sc.Key, depth: it.depth + 1})
			}
			// Recycle the successor buffer: drop payload references so the
			// engine does not pin dead states, then keep the capacity.
			clear(succs)
			sbuf = succs[:0]

			// Donate work to idle peers, or spill an oversized local stack.
			if len(local) > 0 {
				mu.Lock()
				if waiting > 0 || len(local) > spillAt {
					half := len(local) / 2
					if half == 0 {
						half = 1
					}
					global = append(global, local[:half]...)
					local = append(local[:0:0], local[half:]...)
					cond.Broadcast()
				}
				mu.Unlock()
			}

			if pending.Add(-1) == 0 {
				mu.Lock()
				cond.Broadcast()
				mu.Unlock()
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	close(cancelDone)
	cancelWG.Wait()
	// One snapshot serves as both the terminal progress emission and the
	// returned stats, so the last Progress callback always equals
	// Outcome.Stats.
	final := cnt.snapshot(workers, start)
	mon.stop(final, queueLen, shardStats)

	out := Outcome{
		Stats:      final,
		Halted:     halted,
		HaltParent: haltKey,
		HaltTag:    haltTag,
		Capped:     capped.Load(),
	}
	if ctx != nil {
		out.Err = ctx.Err()
	}
	out.Complete = !out.Halted && !out.Capped && out.Err == nil
	if span != nil {
		mx, used := visited.ShardStats()
		span.SetAttr("states", final.States)
		span.SetAttr("transitions", final.Transitions)
		span.SetAttr("dedup_hits", final.DedupHits)
		span.SetAttr("peak_frontier", final.PeakFrontier)
		span.SetAttr("workers", workers)
		span.SetAttr("halted", out.Halted)
		span.SetAttr("capped", out.Capped)
		span.SetAttr("complete", out.Complete)
		span.SetAttr("shard_max", mx)
		span.SetAttr("shards_nonempty", used)
		span.End()
	}
	return out
}
