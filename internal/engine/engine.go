package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes an exploration run.
type Config struct {
	// Workers is the number of worker goroutines; <= 0 selects GOMAXPROCS.
	Workers int
	// MaxStates caps the number of admitted states (0 = unlimited). The
	// root counts as the first admitted state, matching the sequential
	// explorers.
	MaxStates int
	// MaxDepth caps the length of explored computations (0 = unlimited).
	MaxDepth int
	// Progress, when non-nil, is called with a stats snapshot roughly every
	// ProgressEvery (default 250ms) from a dedicated goroutine.
	Progress func(Stats)
	// ProgressEvery is the progress callback interval (0 = 250ms).
	ProgressEvery time.Duration
}

func (cfg Config) workers() int {
	if cfg.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return cfg.Workers
}

func (cfg Config) progressEvery() time.Duration {
	if cfg.ProgressEvery <= 0 {
		return 250 * time.Millisecond
	}
	return cfg.ProgressEvery
}

// Stats aggregates the per-worker counters of a run.
type Stats struct {
	// States is the number of distinct states admitted to the visited set
	// (including the root).
	States int64
	// Transitions is the number of successor edges examined.
	Transitions int64
	// DedupHits counts successors dropped because their canonical key was
	// already in the visited set.
	DedupHits int64
	// PeakFrontier is the maximum number of admitted-but-unexpanded states
	// observed at any point (for Layered, the largest BFS layer).
	PeakFrontier int64
	// Wall is the wall-clock duration of the run.
	Wall time.Duration
	// Workers is the resolved worker count.
	Workers int
}

// Outcome is the engine-level result of a run.
type Outcome struct {
	Stats Stats
	// Complete is true when the search space was exhausted: no halt, no
	// state/depth cap hit, no cancellation.
	Complete bool
	// Halted is true when a halting successor (violation) ended the run.
	Halted bool
	// HaltParent is the canonical key of the state whose expansion produced
	// the halting successor ("" unless Halted).
	HaltParent string
	// HaltTag is the caller payload attached to the halting successor.
	HaltTag any
	// Capped is true when MaxStates or MaxDepth pruned the search.
	Capped bool
	// Err is the context error when the run was cancelled, else nil.
	Err error
}

// counters holds the shared atomic counters of one run.
type counters struct {
	states      atomic.Int64
	transitions atomic.Int64
	dedupHits   atomic.Int64
	peak        atomic.Int64
}

// admit increments the state counter unless the cap is already reached; it
// reports whether the state was admitted. CAS keeps the counter exactly at
// the cap even under contention.
func (c *counters) admit(maxStates int) bool {
	for {
		cur := c.states.Load()
		if maxStates > 0 && cur >= int64(maxStates) {
			return false
		}
		if c.states.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (c *counters) bumpPeak(n int64) {
	for {
		cur := c.peak.Load()
		if n <= cur || c.peak.CompareAndSwap(cur, n) {
			return
		}
	}
}

func (c *counters) snapshot(workers int, start time.Time) Stats {
	return Stats{
		States:       c.states.Load(),
		Transitions:  c.transitions.Load(),
		DedupHits:    c.dedupHits.Load(),
		PeakFrontier: c.peak.Load(),
		Wall:         time.Since(start),
		Workers:      workers,
	}
}

// startProgress launches the progress ticker; the returned stop function
// must be called once the run is over (it emits a final snapshot).
func startProgress(cfg Config, cnt *counters, workers int, start time.Time) (stop func()) {
	if cfg.Progress == nil {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(cfg.progressEvery())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				cfg.Progress(cnt.snapshot(workers, start))
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		cfg.Progress(cnt.snapshot(workers, start))
	}
}

// Succ is one successor produced by an expansion callback.
type Succ[S any, V any] struct {
	// State and Key identify the successor; ignored when Halt is set.
	State S
	Key   string
	// Val is stored in the visited map under Key (e.g. a predecessor edge).
	Val V
	// Halt marks a halting successor (assert violation): the search stops,
	// the first reported halt wins, and the remaining workers drain.
	Halt bool
	// Tag is the caller payload surfaced as Outcome.HaltTag when Halt wins.
	Tag any
}

// item is one admitted frontier entry.
type item[S any] struct {
	state S
	key   string
	depth int
}

// batchSize is how many frontier items a worker moves between its local
// stack and the shared queue at a time; spillAt is the local-stack size
// that triggers a donation back to the shared queue.
const (
	batchSize = 32
	spillAt   = 2 * batchSize
)

// Explore runs a free-order parallel search from root. expand is called
// exactly once per admitted state (concurrently from several goroutines)
// and returns its successors; the engine deduplicates them through a
// sharded visited map that also stores each admitted state's Val for
// later lookup (witness reconstruction via the returned map).
//
// The frontier is a shared batched queue with per-worker local stacks:
// workers take and donate work in batches, so queue contention is paid
// once per batch rather than once per state. The first halting successor
// wins; after a halt (or cancellation) the workers drain and exit.
func Explore[S any, V any](
	ctx context.Context,
	cfg Config,
	root S, rootKey string, rootVal V,
	expand func(s S, key string, depth int) []Succ[S, V],
) (*ShardedMap[V], Outcome) {
	workers := cfg.workers()
	start := time.Now()
	cnt := &counters{}
	visited := NewShardedMap[V]()
	visited.TryPut(rootKey, rootVal)
	cnt.states.Store(1)
	cnt.bumpPeak(1)

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		global  = []item[S]{{state: root, key: rootKey}}
		waiting = 0
		stopped atomic.Bool // halt, cancel: workers drain
		capped  atomic.Bool
		halted  bool
		haltKey string
		haltTag any
	)
	pending := atomic.Int64{}
	pending.Store(1)

	// Cancellation watcher: wakes idle workers when the context fires.
	cancelDone := make(chan struct{})
	var cancelWG sync.WaitGroup
	if ctx != nil && ctx.Done() != nil {
		cancelWG.Add(1)
		go func() {
			defer cancelWG.Done()
			select {
			case <-ctx.Done():
				stopped.Store(true)
				mu.Lock()
				cond.Broadcast()
				mu.Unlock()
			case <-cancelDone:
			}
		}()
	}

	stopProgress := startProgress(cfg, cnt, workers, start)

	recordHalt := func(parentKey string, tag any) {
		mu.Lock()
		if !halted {
			halted = true
			haltKey = parentKey
			haltTag = tag
		}
		mu.Unlock()
		stopped.Store(true)
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	}

	worker := func() {
		var local []item[S]
		for {
			if stopped.Load() {
				return
			}
			if len(local) == 0 {
				mu.Lock()
				for len(global) == 0 && pending.Load() > 0 && !stopped.Load() {
					waiting++
					cond.Wait()
					waiting--
				}
				if stopped.Load() || (len(global) == 0 && pending.Load() == 0) {
					cond.Broadcast()
					mu.Unlock()
					return
				}
				n := len(global)
				if n > batchSize {
					n = batchSize
				}
				local = append(local, global[len(global)-n:]...)
				global = global[:len(global)-n]
				mu.Unlock()
				continue
			}

			it := local[len(local)-1]
			local = local[:len(local)-1]

			if cfg.MaxDepth > 0 && it.depth >= cfg.MaxDepth {
				capped.Store(true)
				if pending.Add(-1) == 0 {
					mu.Lock()
					cond.Broadcast()
					mu.Unlock()
				}
				continue
			}

			succs := expand(it.state, it.key, it.depth)
			cnt.transitions.Add(int64(len(succs)))
			for _, sc := range succs {
				if sc.Halt {
					recordHalt(it.key, sc.Tag)
					break
				}
				if !visited.TryPut(sc.Key, sc.Val) {
					cnt.dedupHits.Add(1)
					continue
				}
				if !cnt.admit(cfg.MaxStates) {
					capped.Store(true)
					continue
				}
				n := pending.Add(1)
				cnt.bumpPeak(n)
				local = append(local, item[S]{state: sc.State, key: sc.Key, depth: it.depth + 1})
			}

			// Donate work to idle peers, or spill an oversized local stack.
			if len(local) > 0 {
				mu.Lock()
				if waiting > 0 || len(local) > spillAt {
					half := len(local) / 2
					if half == 0 {
						half = 1
					}
					global = append(global, local[:half]...)
					local = append(local[:0:0], local[half:]...)
					cond.Broadcast()
				}
				mu.Unlock()
			}

			if pending.Add(-1) == 0 {
				mu.Lock()
				cond.Broadcast()
				mu.Unlock()
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	close(cancelDone)
	cancelWG.Wait()
	stopProgress()

	out := Outcome{
		Stats:      cnt.snapshot(workers, start),
		Halted:     halted,
		HaltParent: haltKey,
		HaltTag:    haltTag,
		Capped:     capped.Load(),
	}
	if ctx != nil {
		out.Err = ctx.Err()
	}
	out.Complete = !out.Halted && !out.Capped && out.Err == nil
	return visited, out
}
