package engine

import "sync"

// KeyEnc builds compact, injective state-identity keys. The explorers
// memoize on string keys; the naive decimal "%d,%d,..." rendering is both
// large (multi-byte digits plus separators) and slow (fmt reflection on
// every field). KeyEnc appends self-delimiting varints to a reusable
// buffer instead: small magnitudes — the overwhelmingly common case for
// program counters, register values, and timestamps — cost one byte.
//
// Injectivity contract: a key is a sequence of Int/Uint64 emissions, each a
// self-delimiting varint, so two keys built from the same sequence of calls
// with different values never collide. Sections whose call count varies at
// runtime must be preceded by a Len (or any other Int fixing the count);
// Mark separates heterogeneous sections with a distinct tag byte, which is
// safe because tags are only compared against tags at the same position.
type KeyEnc struct {
	buf []byte
}

// NewKeyEnc returns an encoder with capacity for a typical state key.
func NewKeyEnc() *KeyEnc { return &KeyEnc{buf: make([]byte, 0, 64)} }

// Reset empties the buffer, keeping its capacity for reuse.
func (k *KeyEnc) Reset() { k.buf = k.buf[:0] }

// Uint64 appends v as a self-delimiting LEB128 varint. The single-byte
// case — program counters, registers, and timestamps are almost always
// < 64 — stays inlinable; larger magnitudes take the outlined slow path.
func (k *KeyEnc) Uint64(v uint64) {
	if v < 0x80 {
		k.buf = append(k.buf, byte(v))
		return
	}
	k.uint64Slow(v)
}

func (k *KeyEnc) uint64Slow(v uint64) {
	var tmp [10]byte
	n := 0
	for v >= 0x80 {
		tmp[n] = byte(v) | 0x80
		n++
		v >>= 7
	}
	tmp[n] = byte(v)
	k.buf = append(k.buf, tmp[:n+1]...)
}

// Int appends v zigzag-encoded, so small negative values stay short.
func (k *KeyEnc) Int(v int) {
	k.Uint64(uint64((int64(v) << 1) ^ (int64(v) >> 63)))
}

// Len appends a section length; semantically identical to Int but named so
// call sites document where the injectivity contract requires a count.
func (k *KeyEnc) Len(n int) { k.Int(n) }

// Mark appends a raw tag byte separating heterogeneous key sections.
func (k *KeyEnc) Mark(tag byte) { k.buf = append(k.buf, tag) }

// Raw appends pre-encoded key bytes verbatim (e.g. a section built in a
// scratch encoder and sorted). Injectivity is the caller's responsibility:
// the bytes must themselves come from KeyEnc emissions at a position where
// both sides agree on the section structure.
func (k *KeyEnc) Raw(b []byte) { k.buf = append(k.buf, b...) }

// String materializes the key. The encoder remains usable (and Resettable).
func (k *KeyEnc) String() string { return string(k.buf) }

// Bytes exposes the raw buffer; valid until the next mutating call.
func (k *KeyEnc) Bytes() []byte { return k.buf }

// keyEncPool recycles encoders across hot-path key constructions. The
// explorers build one key per examined successor; without pooling every key
// costs a fresh encoder allocation on top of the unavoidable map-intern
// string.
var keyEncPool = sync.Pool{New: func() any { return NewKeyEnc() }}

// GetKeyEnc returns a reset encoder from the pool. Release it with
// PutKeyEnc once the key bytes have been consumed (the buffer is reused, so
// callers must not retain Bytes() past the Put).
func GetKeyEnc() *KeyEnc {
	e := keyEncPool.Get().(*KeyEnc)
	e.Reset()
	return e
}

// PutKeyEnc returns an encoder to the pool.
func PutKeyEnc(e *KeyEnc) {
	if e != nil {
		keyEncPool.Put(e)
	}
}
