package engine

import (
	"math/rand"
	"testing"
)

// TestKeyEncInjective: distinct value sequences (of equal call count) must
// produce distinct keys. The adversarial pairs below collide under naive
// digit concatenation without separators.
func TestKeyEncInjective(t *testing.T) {
	seqs := [][]int{
		{1, 23}, {12, 3}, {123}, {1, 2, 3},
		{0}, {0, 0}, {-1}, {1}, {-1, 1}, {1, -1},
		{128}, {127, 0}, {16384}, {128, 128},
	}
	seen := map[string][]int{}
	enc := NewKeyEnc()
	for _, s := range seqs {
		enc.Reset()
		enc.Len(len(s))
		for _, v := range s {
			enc.Int(v)
		}
		k := enc.String()
		if prev, ok := seen[k]; ok {
			t.Errorf("collision: %v and %v both encode to %q", prev, s, k)
		}
		seen[k] = s
	}
}

// TestKeyEncRandomInjective hammers the encoder with random sequences and
// checks that equal keys imply equal sequences.
func TestKeyEncRandomInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[string]string{}
	enc := NewKeyEnc()
	for i := 0; i < 20000; i++ {
		n := rng.Intn(8)
		vals := make([]int, n)
		enc.Reset()
		enc.Len(n)
		sig := ""
		for j := range vals {
			vals[j] = rng.Intn(2000) - 1000
			enc.Int(vals[j])
			sig += "," + itoa(vals[j])
		}
		k := enc.String()
		if prev, ok := seen[k]; ok && prev != sig {
			t.Fatalf("collision: %q and %q both encode to %x", prev, sig, k)
		}
		seen[k] = sig
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// TestKeyEncRoundTrip decodes the varints back and compares.
func TestKeyEncRoundTrip(t *testing.T) {
	vals := []int{0, 1, -1, 63, 64, -64, -65, 127, 128, 1 << 20, -(1 << 20), 1<<40 + 7}
	enc := NewKeyEnc()
	for _, v := range vals {
		enc.Int(v)
	}
	buf := enc.Bytes()
	got := make([]int, 0, len(vals))
	for len(buf) > 0 {
		var u uint64
		shift := 0
		for {
			b := buf[0]
			buf = buf[1:]
			u |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
		}
		got = append(got, int(int64(u>>1)^-(int64(u&1))))
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("value %d: decoded %d, want %d", i, got[i], vals[i])
		}
	}
}

// TestKeyEncReuse: Reset must yield byte-identical keys for identical input.
func TestKeyEncReuse(t *testing.T) {
	enc := NewKeyEnc()
	enc.Int(42)
	enc.Mark('#')
	enc.Int(-7)
	a := enc.String()
	enc.Reset()
	enc.Int(42)
	enc.Mark('#')
	enc.Int(-7)
	if b := enc.String(); a != b {
		t.Fatalf("reuse changed the key: %x vs %x", a, b)
	}
}

func BenchmarkKeyEncState(b *testing.B) {
	// A synthetic state shape: 3 threads x (pc + 4 regs + 3 view entries),
	// plus 3 vars x 2 messages.
	enc := NewKeyEnc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		for th := 0; th < 3; th++ {
			enc.Int(th * 7)
			enc.Len(4)
			for r := 0; r < 4; r++ {
				enc.Int(r)
			}
			enc.Len(3)
			for v := 0; v < 3; v++ {
				enc.Int(v * 2)
			}
		}
		enc.Mark('#')
		for v := 0; v < 3; v++ {
			enc.Len(2)
			for m := 0; m < 2; m++ {
				enc.Int(m)
				enc.Int(1)
				enc.Int(v)
			}
		}
		_ = enc.Bytes()
	}
}
