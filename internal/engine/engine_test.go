package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// gridExpand builds a synthetic search space: states are (x, y) grid points
// reachable by incrementing either coordinate up to n. The space has
// (n+1)^2 states and heavy cross-path dedup, exercising the sharded set.
func gridExpand(n int) func(s [2]int, key string, depth int, buf []Succ[[2]int, struct{}]) []Succ[[2]int, struct{}] {
	return func(s [2]int, key string, depth int, buf []Succ[[2]int, struct{}]) []Succ[[2]int, struct{}] {
		out := buf
		for d := 0; d < 2; d++ {
			ns := s
			ns[d]++
			if ns[d] <= n {
				out = append(out, Succ[[2]int, struct{}]{State: ns, Key: fmt.Sprintf("%d,%d", ns[0], ns[1])})
			}
		}
		return out
	}
}

func TestExploreGridCounts(t *testing.T) {
	const n = 40
	for _, workers := range []int{1, 2, 8} {
		out := Explore(context.Background(), Config{Workers: workers}, NewShardedMap[struct{}](),
			[2]int{0, 0}, "0,0", struct{}{}, gridExpand(n))
		if !out.Complete || out.Halted {
			t.Fatalf("workers=%d: outcome %+v", workers, out)
		}
		want := int64((n + 1) * (n + 1))
		if out.Stats.States != want {
			t.Errorf("workers=%d: states=%d want %d", workers, out.Stats.States, want)
		}
		// Every non-root admission and every dedup hit is one examined edge.
		if got := out.Stats.States - 1 + out.Stats.DedupHits; got != out.Stats.Transitions {
			t.Errorf("workers=%d: states+dedup=%d != transitions=%d (grid has no other edges)",
				workers, got, out.Stats.Transitions)
		}
	}
}

func TestExploreHaltFirstWins(t *testing.T) {
	// A line of states with a halting edge at the end.
	expand := func(s int, key string, depth int, buf []Succ[int, struct{}]) []Succ[int, struct{}] {
		if s == 10 {
			return append(buf, Succ[int, struct{}]{Halt: true, Tag: "boom"})
		}
		return append(buf, Succ[int, struct{}]{State: s + 1, Key: fmt.Sprintf("%d", s+1)})
	}
	for _, workers := range []int{1, 4} {
		out := Explore(context.Background(), Config{Workers: workers}, NewShardedMap[struct{}](), 0, "0", struct{}{}, expand)
		if !out.Halted || out.Complete {
			t.Fatalf("workers=%d: expected halt, got %+v", workers, out)
		}
		if out.HaltTag != "boom" || out.HaltParent != "10" {
			t.Errorf("workers=%d: halt tag/parent = %v/%q", workers, out.HaltTag, out.HaltParent)
		}
	}
}

func TestExploreStateCapExact(t *testing.T) {
	out := Explore(context.Background(), Config{Workers: 4, MaxStates: 100}, NewShardedMap[struct{}](),
		[2]int{0, 0}, "0,0", struct{}{}, gridExpand(1000))
	if out.Complete || !out.Capped {
		t.Fatalf("capped run reported complete: %+v", out)
	}
	if out.Stats.States != 100 {
		t.Errorf("state cap overshot: %d", out.Stats.States)
	}
}

func TestExploreContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var expanded atomic.Int64
	expand := func(s int, key string, depth int, buf []Succ[int, struct{}]) []Succ[int, struct{}] {
		if expanded.Add(1) == 50 {
			cancel()
		}
		time.Sleep(time.Microsecond)
		return append(buf,
			Succ[int, struct{}]{State: 2 * s, Key: fmt.Sprintf("%d", 2*s)},
			Succ[int, struct{}]{State: 2*s + 1, Key: fmt.Sprintf("%d", 2*s+1)},
		)
	}
	out := Explore(ctx, Config{Workers: 4}, NewShardedMap[struct{}](), 1, "1", struct{}{}, expand)
	if out.Err == nil || out.Complete {
		t.Fatalf("cancelled run reported complete: %+v", out)
	}
}

func TestExploreMaxDepth(t *testing.T) {
	expand := func(s int, key string, depth int, buf []Succ[int, struct{}]) []Succ[int, struct{}] {
		return append(buf, Succ[int, struct{}]{State: s + 1, Key: fmt.Sprintf("%d", s+1)})
	}
	out := Explore(context.Background(), Config{Workers: 2, MaxDepth: 5}, NewShardedMap[struct{}](), 0, "0", struct{}{}, expand)
	if out.Complete || !out.Capped {
		t.Fatalf("depth-capped run reported complete: %+v", out)
	}
	if out.Stats.States > 7 {
		t.Errorf("depth cap ignored: %d states", out.Stats.States)
	}
}

func TestExplorePredChainWitness(t *testing.T) {
	// Values store the predecessor key; the chain must be walkable back to
	// the root after the run.
	type pred struct{ prev string }
	expand := func(s int, key string, depth int, buf []Succ[int, pred]) []Succ[int, pred] {
		if s == 6 {
			return append(buf, Succ[int, pred]{Halt: true, Tag: s})
		}
		return append(buf, Succ[int, pred]{State: s + 2, Key: fmt.Sprintf("%d", s+2), Val: pred{prev: key}})
	}
	visited := NewShardedMap[pred]()
	out := Explore(context.Background(), Config{Workers: 3}, visited, 0, "0", pred{}, expand)
	if !out.Halted {
		t.Fatal("no halt")
	}
	steps := 0
	for k := out.HaltParent; k != "0"; steps++ {
		p, ok := visited.Get(k)
		if !ok {
			t.Fatalf("broken pred chain at %q", k)
		}
		k = p.prev
	}
	if steps != 3 {
		t.Errorf("pred chain length = %d, want 3", steps)
	}
}

func TestLayeredDeterministicAcrossWorkers(t *testing.T) {
	// Expansion yields successors whose commit order determines a recorded
	// trace; the trace must be identical for every worker count.
	run := func(workers int) ([]string, Outcome) {
		var trace []string
		expand := func(s [2]int, seen func([]byte) bool) [][2]int {
			var out [][2]int
			for d := 0; d < 2; d++ {
				ns := s
				ns[d]++
				if ns[d] <= 12 {
					out = append(out, ns)
				}
			}
			return out
		}
		commit := func(i int, s [2]int, succs [][2]int, adm *Admitter[[2]int]) any {
			adm.AddTransitions(int64(len(succs)))
			for _, ns := range succs {
				key := fmt.Sprintf("%d,%d", ns[0], ns[1])
				if adm.Add(key, ns) {
					trace = append(trace, key)
				}
			}
			return nil
		}
		out := Layered(context.Background(), Config{Workers: workers}, [2]int{0, 0}, "0,0", expand, commit)
		return trace, out
	}
	base, baseOut := run(1)
	for _, workers := range []int{2, 8} {
		got, out := run(workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: trace length %d vs %d", workers, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: admission order diverges at %d: %q vs %q", workers, i, got[i], base[i])
			}
		}
		if out.Stats.States != baseOut.Stats.States || out.Stats.Transitions != baseOut.Stats.Transitions {
			t.Errorf("workers=%d: stats diverge: %+v vs %+v", workers, out.Stats, baseOut.Stats)
		}
	}
}

func TestLayeredHaltFirstInOrder(t *testing.T) {
	// Two items of the same layer can halt; the lower index must win for
	// every worker count.
	expand := func(s int, seen func([]byte) bool) int { return s }
	commit := func(i int, s int, e int, adm *Admitter[int]) any {
		if depthOf(s) == 3 {
			return fmt.Sprintf("halt-%d", i)
		}
		adm.Add(fmt.Sprintf("%d", 2*s), 2*s)
		adm.Add(fmt.Sprintf("%d", 2*s+1), 2*s+1)
		return nil
	}
	for _, workers := range []int{1, 2, 8} {
		out := Layered(context.Background(), Config{Workers: workers}, 1, "1", expand, commit)
		if !out.Halted || out.HaltTag != "halt-0" {
			t.Errorf("workers=%d: halt tag %v, want halt-0", workers, out.HaltTag)
		}
	}
}

func depthOf(s int) int {
	d := 0
	for s > 1 {
		s /= 2
		d++
	}
	return d
}

func TestShardedMapBasics(t *testing.T) {
	sm := NewShardedMap[int]()
	if !sm.TryPut("a", 1) || sm.TryPut("a", 2) {
		t.Fatal("TryPut semantics wrong")
	}
	if v, ok := sm.Get("a"); !ok || v != 1 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if _, ok := sm.Get("b"); ok {
		t.Fatal("phantom key")
	}
	for i := 0; i < 1000; i++ {
		sm.TryPut(fmt.Sprintf("k%d", i), i)
	}
	if sm.Len() != 1001 {
		t.Fatalf("Len = %d", sm.Len())
	}
}
