package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"paramra/internal/obs"
)

// Admitter is handed to Layered commit callbacks to enqueue successor
// states. Admission order is the (deterministic) commit order, so the next
// layer's contents and order are identical for every worker count.
type Admitter[S any] struct {
	visited *ShardedMap[struct{}]
	cnt     *counters
	max     int
	next    []S
	capped  bool
}

// Add admits the state under key iff the key is new and the state cap
// allows it; it reports whether the state was enqueued for the next layer.
func (a *Admitter[S]) Add(key string, s S) bool {
	if !a.visited.TryPut(key, struct{}{}) {
		a.cnt.dedupHits.Add(1)
		return false
	}
	return a.admit(s)
}

// AddBytes is Add with a byte-slice key: the duplicate check is
// allocation-free and the key is interned only when the state is actually
// new. Hot commit loops where most successors are duplicates pay nothing.
func (a *Admitter[S]) AddBytes(key []byte, s S) bool {
	if !a.visited.TryPutBytes(key, struct{}{}) {
		a.cnt.dedupHits.Add(1)
		return false
	}
	return a.admit(s)
}

func (a *Admitter[S]) admit(s S) bool {
	if !a.cnt.admit(a.max) {
		a.capped = true
		return false
	}
	a.next = append(a.next, s)
	return true
}

// AddDedup records n duplicate successors that the expansion phase already
// filtered out via the seen probe, keeping the engine's dedup-hit counter
// exact (trace and stats consumers pin these totals).
func (a *Admitter[S]) AddDedup(n int64) {
	if n > 0 {
		a.cnt.dedupHits.Add(n)
	}
}

// States returns the number of states admitted so far (including the root).
func (a *Admitter[S]) States() int { return int(a.cnt.states.Load()) }

// AddTransitions adds to the engine-level transition counter (the commit
// callback knows how many successor edges an expansion examined).
func (a *Admitter[S]) AddTransitions(n int64) { a.cnt.transitions.Add(n) }

// serialBelow is the frontier size under which a layer is expanded by a
// single goroutine regardless of the configured worker count. Tiny layers
// (program prologues, near-fixpoint tails) cost more in goroutine fan-out
// and cache ping-pong than the expansion itself; falling through to serial
// keeps workers>1 from regressing small instances while leaving the
// committed results untouched (commit order never depends on worker count).
const serialBelow = 32

// Layered runs a deterministic batched-BFS search. Each layer is expanded
// in parallel (expand must not mutate state shared between items), then
// commit is invoked sequentially, in frontier order, with each expansion
// result. commit merges order-sensitive bookkeeping, admits successors via
// the Admitter, and returns a non-nil halt tag to stop the search (the
// first in commit order wins — making verdicts, witnesses and stats
// reproducible across worker counts).
//
// expand receives a seen probe into the visited set. During a layer's
// parallel expansion no commits run, so the visited set is frozen and a true
// answer is stable: expansions may drop such successors early (reporting
// them via Admitter.AddDedup from commit) instead of materializing keys and
// states that the commit phase would discard anyway. A false answer may be
// superseded by a sibling's commit, so commit must still dedup via Add.
//
// The root must already be "committed" by the caller (its key is admitted
// here, but no commit call is made for it).
func Layered[S any, E any](
	ctx context.Context,
	cfg Config,
	root S, rootKey string,
	expand func(s S, seen func([]byte) bool) E,
	commit func(index int, s S, e E, adm *Admitter[S]) (haltTag any),
) Outcome {
	workers := cfg.workers()
	start := time.Now()
	cnt := &counters{}
	adm := &Admitter[S]{visited: NewShardedMap[struct{}](), cnt: cnt, max: cfg.MaxStates}
	adm.visited.TryPut(rootKey, struct{}{})
	cnt.states.Store(1)
	cnt.bumpPeak(1)

	span := cfg.Trace.Child(cfg.spanName("layered"))
	var hLayer *obs.Histogram
	if cfg.Metrics != nil {
		hLayer = cfg.Metrics.Histogram("paramra_engine_layer_ns",
			"wall time per BFS layer: parallel expansion plus sequential commit (ns)")
	}
	shardStats := func() (int64, int64) {
		mx, used := adm.visited.ShardStats()
		return int64(mx), int64(used)
	}
	mon := startMonitor(cfg, cnt, workers, start, nil, shardStats)

	// The layer span is opened from this sequential loop (never from the
	// parallel expansion), so span IDs are deterministic at any -j.
	var curLayer *obs.Span
	finish := func(haltTag any, err error) Outcome {
		final := cnt.snapshot(workers, start)
		mon.stop(final, nil, shardStats)
		out := Outcome{
			Stats:   final,
			Halted:  haltTag != nil,
			HaltTag: haltTag,
			Capped:  adm.capped,
			Err:     err,
		}
		out.Complete = !out.Halted && !out.Capped && out.Err == nil
		curLayer.End()
		if span != nil {
			mx, used := adm.visited.ShardStats()
			span.SetAttr("states", final.States)
			span.SetAttr("transitions", final.Transitions)
			span.SetAttr("dedup_hits", final.DedupHits)
			span.SetAttr("peak_frontier", final.PeakFrontier)
			span.SetAttr("workers", workers)
			span.SetAttr("halted", out.Halted)
			span.SetAttr("capped", out.Capped)
			span.SetAttr("complete", out.Complete)
			span.SetAttr("shard_max", mx)
			span.SetAttr("shards_nonempty", used)
			span.End()
		}
		return out
	}

	layer := []S{root}
	depth := 0
	for len(layer) > 0 {
		if err := ctxErr(ctx); err != nil {
			return finish(nil, err)
		}
		if cfg.MaxDepth > 0 && depth >= cfg.MaxDepth {
			adm.capped = true
			return finish(nil, nil)
		}
		cnt.bumpPeak(int64(len(layer)))

		var layerStart time.Time
		if hLayer != nil {
			layerStart = time.Now()
		}
		if span != nil {
			curLayer = span.Child("layer")
			curLayer.SetAttr("depth", depth)
			curLayer.SetAttr("size", len(layer))
		}

		w := workers
		if len(layer) < serialBelow {
			w = 1
		}
		seen := adm.visited.HasBytes
		exps := parMap(ctx, w, layer, func(s S) E { return expand(s, seen) })
		if err := ctxErr(ctx); err != nil {
			return finish(nil, err)
		}

		adm.next = adm.next[:0:0]
		for i, e := range exps {
			if tag := commit(i, layer[i], e, adm); tag != nil {
				return finish(tag, nil)
			}
		}
		if hLayer != nil {
			hLayer.Observe(int64(time.Since(layerStart)))
		}
		if curLayer != nil {
			curLayer.SetAttr("states", int(cnt.states.Load()))
			curLayer.End()
			curLayer = nil
		}
		layer = adm.next
		depth++
	}
	return finish(nil, nil)
}

// parMap evaluates f over every item of layer using up to `workers`
// goroutines, load-balanced by an atomic index. Items started after the
// context fires are skipped (their results are the zero value); the caller
// re-checks the context before using the results.
func parMap[S any, E any](ctx context.Context, workers int, layer []S, f func(S) E) []E {
	out := make([]E, len(layer))
	if len(layer) == 0 {
		return out
	}
	if workers > len(layer) {
		workers = len(layer)
	}
	if workers <= 1 {
		for i, s := range layer {
			if ctxErr(ctx) != nil {
				return out
			}
			out[i] = f(s)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(layer) || ctxErr(ctx) != nil {
					return
				}
				out[i] = f(layer[i])
			}
		}()
	}
	wg.Wait()
	return out
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
