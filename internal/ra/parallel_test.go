package ra

import (
	"testing"

	"paramra/internal/lang"
)

func TestParallelMatchesSequentialSafe(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x y a; domain 3; dis t1; dis t2 }
thread t1 { regs r; store x 1; r = load y; store a (r + 1) }
thread t2 { regs q; store y 1; q = load x; store a q }
`)
	inst, err := NewInstance(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq := inst.Explore(Limits{})
	for _, workers := range []int{1, 2, 4, 8} {
		par := inst.ExploreParallel(Limits{}, workers)
		if par.Unsafe != seq.Unsafe {
			t.Fatalf("workers=%d: verdict %v vs %v", workers, par.Unsafe, seq.Unsafe)
		}
		if !par.Complete {
			t.Fatalf("workers=%d: incomplete", workers)
		}
		if par.States != seq.States {
			t.Errorf("workers=%d: states %d vs sequential %d", workers, par.States, seq.States)
		}
		if par.Transitions != seq.Transitions {
			t.Errorf("workers=%d: transitions %d vs sequential %d", workers, par.Transitions, seq.Transitions)
		}
	}
}

func TestParallelFindsViolation(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`)
	inst, err := NewInstance(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		res := inst.ExploreParallel(Limits{}, workers)
		if !res.Unsafe {
			t.Fatalf("workers=%d: violation missed", workers)
		}
		if len(res.Witness) == 0 || !res.Witness[len(res.Witness)-1].Assert {
			t.Fatalf("workers=%d: malformed witness %v", workers, res.Witness)
		}
	}
}

func TestParallelRespectsLimits(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 8; env w }
thread w { regs r; loop { r = load x; store x (r + 1) } }
`)
	inst, err := NewInstance(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := inst.ExploreParallel(Limits{MaxStates: 200}, 4)
	if res.Complete {
		t.Error("unbounded instance reported complete under a state cap")
	}
	if res.States > 200 {
		t.Errorf("state cap exceeded: %d", res.States)
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; dis t }
thread t { store x 1 }
`)
	inst, err := NewInstance(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := inst.ExploreParallel(Limits{}, 0)
	if !res.Complete || res.States != 2 {
		t.Errorf("default-worker exploration wrong: %+v", res)
	}
}
