package ra

import (
	"strings"
	"testing"

	"paramra/internal/lang"
)

func deadlocks(t *testing.T, src string, nEnv int) DeadlockReport {
	t.Helper()
	sys := lang.MustParseSystem(src)
	inst, err := NewInstance(sys, nEnv)
	if err != nil {
		t.Fatal(err)
	}
	rep := inst.FindDeadlocks(Limits{MaxStates: 500_000})
	if !rep.Complete {
		t.Fatal("deadlock analysis incomplete")
	}
	return rep
}

// TestBarrierWithoutReleaseDeadlocks: workers waiting on a `go` flag that
// nobody sets are stuck forever.
func TestBarrierWithoutReleaseDeadlocks(t *testing.T) {
	rep := deadlocks(t, `
system stuck { vars arrived go; domain 2; dis worker }
thread worker {
  regs g
  store arrived 1
  g = load go; assume g == 1
}
`, 0)
	if rep.Deadlocks == 0 {
		t.Fatal("missing deadlock: worker waits on go forever")
	}
	if rep.Example == "" || len(rep.StuckThreads) != 1 || rep.StuckThreads[0] != "worker" {
		t.Errorf("example/stuck threads wrong: %q %v", rep.Example, rep.StuckThreads)
	}
}

// TestBarrierWithReleaseMixed: with the releaser present, runs in which the
// worker reads go=1 terminate; but the load-then-assume encoding of a wait
// loop is one-shot — a run that loads the stale 0 is stuck at the assume.
// Both sink kinds must be reported.
func TestBarrierWithReleaseMixed(t *testing.T) {
	rep := deadlocks(t, `
system ok { vars arrived go; domain 2; dis worker; dis releaser }
thread worker {
  regs g
  store arrived 1
  g = load go; assume g == 1
}
thread releaser {
  store go 1
}
`, 0)
	if rep.Terminal == 0 {
		t.Fatal("no terminal states found (successful runs missing)")
	}
	if rep.Deadlocks == 0 {
		t.Fatal("stale-read runs should be stuck at the assume")
	}
}

// TestRetryLoopNeverDeadlocks: the genuine wait loop (while-based retry)
// always has an enabled reload transition, so no deadlock exists.
func TestRetryLoopNeverDeadlocks(t *testing.T) {
	rep := deadlocks(t, `
system loopok { vars go; domain 2; dis worker; dis releaser }
thread worker {
  regs g
  while g != 1 { g = load go }
}
thread releaser { store go 1 }
`, 0)
	if rep.Deadlocks != 0 {
		t.Fatalf("retry loop reported stuck: %+v", rep)
	}
	if rep.Terminal == 0 {
		t.Fatal("no terminal states found")
	}
}

// TestDeadlockCountsTerminalSeparately: straight-line programs only produce
// terminal sinks.
func TestDeadlockCountsTerminalSeparately(t *testing.T) {
	rep := deadlocks(t, `
system fin { vars x; domain 3; dis a; dis b }
thread a { store x 1 }
thread b { store x 2 }
`, 0)
	if rep.Deadlocks != 0 {
		t.Errorf("deadlocks = %d", rep.Deadlocks)
	}
	if rep.Terminal == 0 {
		t.Error("expected terminal states")
	}
}

// TestDeadlockMutexHalf: a CAS loser with no retry path blocks forever.
func TestDeadlockMutexHalf(t *testing.T) {
	rep := deadlocks(t, `
system casblock { vars l; domain 2; dis t1; dis t2 }
thread t1 { cas l 0 1 }
thread t2 { cas l 0 1 }
`, 0)
	if rep.Deadlocks == 0 {
		t.Fatal("the losing CAS should be stuck")
	}
	if !strings.Contains(rep.Example, "thread") {
		t.Errorf("example rendering: %q", rep.Example)
	}
}

// TestDeadlockEnvReplicasStuckTogether: env replicas that all wait block in
// every instance size.
func TestDeadlockEnvReplicasStuckTogether(t *testing.T) {
	src := `
system w { vars go; domain 2; env waiter }
thread waiter { regs g; g = load go; assume g == 1 }
`
	for n := 1; n <= 2; n++ {
		rep := deadlocks(t, src, n)
		if rep.Deadlocks == 0 {
			t.Errorf("n=%d: waiters not reported stuck", n)
		}
	}
}
