package ra

import (
	"errors"
	"fmt"
	"strings"

	"paramra/internal/engine"
	"paramra/internal/obs"
)

// Limits bounds and configures an exploration. Zero values mean "no limit".
type Limits struct {
	// MaxStates caps the number of distinct states visited.
	MaxStates int
	// MaxDepth caps the length of explored computations.
	MaxDepth int
	// Symmetry enables symmetry reduction over the env replicas: states
	// that differ only by a permutation of the (identical) env threads are
	// identified. Sound and complete for safety — env replicas run the
	// same program and messages carry no thread identity — and often
	// exponentially smaller in the replica count.
	Symmetry bool
	// Workers is the number of exploration goroutines used by the
	// context-aware explorers (<= 0 selects GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives periodic engine stats snapshots from
	// the context-aware explorers.
	Progress func(engine.Stats)
	// Trace, when non-nil, is the parent span under which the context-aware
	// explorers record their engine run span ("concrete-explore" or
	// "deadlock-scan").
	Trace *obs.Span
	// Metrics, when non-nil, receives the engine's gauges and histograms.
	Metrics *obs.Registry
}

// ErrLimit is reported (wrapped) when exploration stops due to a limit
// before finding a violation and before exhausting the state space.
var ErrLimit = errors.New("exploration limit reached")

// Result is the outcome of exploring a fixed instance.
type Result struct {
	// Unsafe is true when an `assert false` transition is reachable.
	Unsafe bool
	// States is the number of distinct states visited.
	States int
	// Transitions is the number of transitions examined.
	Transitions int
	// Complete is true when the full (finite) state space was exhausted; if
	// false and Unsafe is false, the verdict is only "no violation found
	// within limits".
	Complete bool
	// Witness is a violating computation (sequence of events from the
	// initial state), non-nil iff Unsafe.
	Witness []Event
	// Engine carries the engine-level counters (dedup hits, peak frontier,
	// wall time, workers) when the search ran on the parallel engine.
	Engine engine.Stats
	// Err is the context error when the search was cancelled, else nil.
	Err error
}

// Explore runs a breadth-first search of the instance's RA state space,
// looking for an `assert false` transition.
func (inst *Instance) Explore(lim Limits) Result {
	type node struct {
		state *State
		key   string
		depth int
	}
	init := inst.InitState()
	initKey := inst.stateKey(init, lim)
	visited := map[string]bool{initKey: true}
	// pred maps a state key to its predecessor key and incoming event, for
	// witness reconstruction.
	type backEdge struct {
		prevKey string
		ev      Event
	}
	pred := map[string]backEdge{}

	queue := []node{{state: init, key: initKey, depth: 0}}
	res := Result{States: 1}
	limited := false

	buildWitness := func(lastKey string, final Event) []Event {
		var rev []Event
		rev = append(rev, final)
		k := lastKey
		for k != initKey {
			be, ok := pred[k]
			if !ok {
				break
			}
			rev = append(rev, be.ev)
			k = be.prevKey
		}
		out := make([]Event, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			out = append(out, rev[i])
		}
		return out
	}

	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if lim.MaxDepth > 0 && n.depth >= lim.MaxDepth {
			limited = true
			continue
		}
		key := n.key
		for _, succ := range inst.Successors(n.state) {
			res.Transitions++
			if succ.Event.Assert {
				res.Unsafe = true
				res.Witness = buildWitness(key, succ.Event)
				return res
			}
			sk := inst.stateKey(succ.State, lim)
			if visited[sk] {
				continue
			}
			if lim.MaxStates > 0 && res.States >= lim.MaxStates {
				limited = true
				continue
			}
			visited[sk] = true
			pred[sk] = backEdge{prevKey: key, ev: succ.Event}
			res.States++
			queue = append(queue, node{state: succ.State, key: sk, depth: n.depth + 1})
		}
	}
	res.Complete = !limited
	return res
}

// ReachablePCs explores the instance and returns, per thread index, the set
// of CFG nodes that thread can reach. Used by the differential tests and the
// §4.3 experiments. Exploration respects lim; the boolean reports whether
// the state space was exhausted.
func (inst *Instance) ReachablePCs(lim Limits) ([]map[int]bool, bool) {
	init := inst.InitState()
	visited := map[string]bool{init.Key(): true}
	reach := make([]map[int]bool, len(inst.Threads))
	for i := range reach {
		reach[i] = map[int]bool{}
	}
	record := func(s *State) {
		for i, th := range s.Threads {
			reach[i][int(th.PC)] = true
		}
	}
	record(init)
	queue := []*State{init}
	states := 1
	complete := true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, succ := range inst.Successors(s) {
			k := succ.State.Key()
			if visited[k] {
				continue
			}
			if lim.MaxStates > 0 && states >= lim.MaxStates {
				complete = false
				continue
			}
			visited[k] = true
			states++
			record(succ.State)
			queue = append(queue, succ.State)
		}
	}
	return reach, complete
}

// FormatWitness renders a violating computation for human consumption.
func FormatWitness(w []Event) string {
	var b strings.Builder
	for i, ev := range w {
		fmt.Fprintf(&b, "%3d. [%s] %s\n", i+1, ev.Name, ev.Op)
	}
	return b.String()
}
