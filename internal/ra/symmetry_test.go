package ra

import (
	"testing"

	"paramra/internal/lang"
)

// TestSymmetryVerdictEquivalence: symmetry reduction must never change the
// verdict, only (potentially) the state count.
func TestSymmetryVerdictEquivalence(t *testing.T) {
	cases := []struct {
		src  string
		nEnv int
	}{
		{`
system s { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`, 3},
		{`
system s { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }
`, 2},
		{`
system s { vars x; domain 4; env inc; dis w }
thread inc { regs r; r = load x; store x (r + 1) }
thread w { regs s; s = load x; assume s == 2; assert false }
`, 2},
	}
	for i, tc := range cases {
		sys := lang.MustParseSystem(tc.src)
		inst, err := NewInstance(sys, tc.nEnv)
		if err != nil {
			t.Fatal(err)
		}
		plain := inst.Explore(Limits{MaxStates: 2_000_000})
		sym := inst.Explore(Limits{MaxStates: 2_000_000, Symmetry: true})
		if plain.Unsafe != sym.Unsafe {
			t.Fatalf("case %d: verdict changed under symmetry: %v vs %v", i, plain.Unsafe, sym.Unsafe)
		}
		if !plain.Unsafe {
			if !plain.Complete || !sym.Complete {
				t.Fatalf("case %d: incomplete", i)
			}
			if sym.States > plain.States {
				t.Errorf("case %d: symmetry increased states %d > %d", i, sym.States, plain.States)
			}
		}
	}
}

// TestSymmetryShrinksStateSpace: with several env replicas the reduction
// must collapse permuted states (strict shrink on a replica-heavy system).
func TestSymmetryShrinksStateSpace(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 3; env w }
thread w { regs r; r = load x; store x 1 }
`)
	inst, err := NewInstance(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	plain := inst.Explore(Limits{})
	sym := inst.Explore(Limits{Symmetry: true})
	if !plain.Complete || !sym.Complete {
		t.Fatal("incomplete")
	}
	if sym.States >= plain.States {
		t.Errorf("symmetry did not shrink: %d vs %d", sym.States, plain.States)
	}
	t.Logf("states: plain=%d symmetric=%d", plain.States, sym.States)
}

// TestSymKeyPermutationInvariance: permuting env replica sections leaves
// SymKey unchanged, and dis sections stay positional.
func TestSymKeyPermutationInvariance(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 4; env w; dis d }
thread w { regs r; r = load x }
thread d { store x 1 }
`)
	inst, err := NewInstance(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.InitState()
	s.Threads[0].Regs[0] = 1
	s.Threads[1].Regs[0] = 2
	perm := s.Clone()
	perm.Threads[0], perm.Threads[1] = perm.Threads[1], perm.Threads[0]
	if s.Key() == perm.Key() {
		t.Fatal("plain keys should differ for permuted replicas")
	}
	if s.SymKey(2) != perm.SymKey(2) {
		t.Fatal("SymKey should be permutation invariant on env replicas")
	}
	// Dis thread differences must still distinguish states.
	d := s.Clone()
	d.Threads[2].PC = 1
	if s.SymKey(2) == d.SymKey(2) {
		t.Fatal("SymKey ignored a dis-thread difference")
	}
}
