package ra

// DeadlockReport describes blocking states of a fixed instance: reachable
// configurations from which no transition is enabled although some thread
// has not finished its program (it is stuck in an assume that can never
// fire — e.g. a barrier waiting for a release that never comes).
type DeadlockReport struct {
	// Deadlocks is the number of reachable states with no enabled
	// transition and at least one unfinished thread.
	Deadlocks int
	// Terminal is the number of reachable states with no enabled
	// transition where every thread is at its CFG exit.
	Terminal int
	// Complete is true when the state space was exhausted.
	Complete bool
	// Example is one deadlocked state rendered for diagnostics ("" if none).
	Example string
	// StuckThreads lists, for the example state, the names of the
	// unfinished threads.
	StuckThreads []string
}

// FindDeadlocks explores the instance and classifies its sink states.
// Assert transitions terminate exploration of their branch but are not
// counted as deadlocks.
func (inst *Instance) FindDeadlocks(lim Limits) DeadlockReport {
	init := inst.InitState()
	visited := map[string]bool{init.Key(): true}
	queue := []*State{init}
	rep := DeadlockReport{Complete: true}
	states := 1

	atExit := func(s *State, ti int) bool {
		info := inst.Threads[ti]
		// A thread is finished when no edges leave its pc — for compiled
		// programs that is exactly the exit node, but choice joins can
		// produce other sink nodes too; treat any out-degree-0 pc whose
		// node is the CFG exit as finished.
		return len(info.CFG.Out[s.Threads[ti].PC]) == 0
	}

	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		succs := inst.Successors(s)
		if len(succs) == 0 {
			var stuck []string
			for ti := range s.Threads {
				if !atExit(s, ti) {
					stuck = append(stuck, inst.Threads[ti].Name)
				}
			}
			if len(stuck) > 0 {
				rep.Deadlocks++
				if rep.Example == "" {
					rep.Example = s.String()
					rep.StuckThreads = stuck
				}
			} else {
				rep.Terminal++
			}
			continue
		}
		for _, succ := range succs {
			if succ.Event.Assert {
				continue
			}
			k := succ.State.Key()
			if visited[k] {
				continue
			}
			if lim.MaxStates > 0 && states >= lim.MaxStates {
				rep.Complete = false
				continue
			}
			visited[k] = true
			states++
			queue = append(queue, succ.State)
		}
	}
	return rep
}
