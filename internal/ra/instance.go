package ra

import (
	"fmt"

	"paramra/internal/engine"
	"paramra/internal/lang"
)

// ThreadKind distinguishes environment replicas from distinguished threads.
type ThreadKind int

// Thread kinds.
const (
	EnvThread ThreadKind = iota + 1
	DisThread
)

// ThreadInfo describes one thread of an instance.
type ThreadInfo struct {
	Kind ThreadKind
	Name string
	// DisIndex is the index into System.Dis for DisThread, or the replica
	// number for EnvThread.
	DisIndex int
	CFG      *lang.CFG
}

// Instance is a fixed instantiation of a parameterized system: nEnv copies
// of the env program plus all dis programs, with compiled CFGs.
type Instance struct {
	Sys     *lang.System
	Threads []ThreadInfo
}

// NewInstance builds the instance of sys with nEnv environment threads.
// Env replicas come first, then dis threads, matching State.Threads order.
func NewInstance(sys *lang.System, nEnv int) (*Instance, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if nEnv < 0 {
		return nil, fmt.Errorf("ra.NewInstance: negative env count %d", nEnv)
	}
	if nEnv > 0 && sys.Env == nil {
		return nil, fmt.Errorf("ra.NewInstance: system %s has no env program", sys.Name)
	}
	inst := &Instance{Sys: sys}
	var envCFG *lang.CFG
	if sys.Env != nil {
		envCFG = lang.Compile(sys.Env)
	}
	for i := 0; i < nEnv; i++ {
		inst.Threads = append(inst.Threads, ThreadInfo{
			Kind: EnvThread, Name: fmt.Sprintf("%s#%d", sys.Env.Name, i+1),
			DisIndex: i, CFG: envCFG,
		})
	}
	for i, d := range sys.Dis {
		inst.Threads = append(inst.Threads, ThreadInfo{
			Kind: DisThread, Name: d.Name, DisIndex: i, CFG: lang.Compile(d),
		})
	}
	return inst, nil
}

// NumEnv returns the number of env replicas in the instance.
func (inst *Instance) NumEnv() int {
	n := 0
	for _, ti := range inst.Threads {
		if ti.Kind == EnvThread {
			n++
		}
	}
	return n
}

// stateKey returns the visited-set key for s, canonicalizing env-replica
// order when symmetry reduction is enabled.
func (inst *Instance) stateKey(s *State, lim Limits) string {
	if lim.Symmetry {
		return s.SymKey(inst.NumEnv())
	}
	return s.Key()
}

// appendStateKey is stateKey into a caller-owned encoder, for byte-probe
// paths that avoid interning keys of already-visited successors.
func (inst *Instance) appendStateKey(enc *engine.KeyEnc, s *State, lim Limits) {
	if lim.Symmetry {
		s.appendSymKey(enc, inst.NumEnv())
		return
	}
	s.appendKey(enc)
}

// InitState returns the initial configuration: per variable a single initial
// message carrying the zero view, and every thread at its CFG entry with
// zeroed registers and the zero view.
func (inst *Instance) InitState() *State {
	nv := len(inst.Sys.Vars)
	s := &State{Mem: make([][]Msg, nv)}
	for v := 0; v < nv; v++ {
		s.Mem[v] = []Msg{{Val: inst.Sys.Init, View: NewView(nv)}}
	}
	for _, ti := range inst.Threads {
		s.Threads = append(s.Threads, Thread{
			PC:   ti.CFG.Entry,
			Regs: make([]lang.Val, ti.CFG.Prog.NumRegs()),
			View: NewView(nv),
		})
	}
	return s
}

// norm maps an arbitrary integer into the data domain {0,…,Dom-1}. The paper
// requires expression interpretations ⟦e⟧ : Dom^n → Dom; we realize this by
// reducing results modulo the domain size whenever a value is committed to a
// register or to memory.
func (inst *Instance) norm(v lang.Val) lang.Val {
	d := lang.Val(inst.Sys.Dom)
	return ((v % d) + d) % d
}
