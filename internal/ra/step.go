package ra

import (
	"fmt"

	"paramra/internal/lang"
)

// Event records one transition of a computation for witness reporting.
type Event struct {
	Thread int    // index into Instance.Threads
	Name   string // thread name
	Op     string // rendered operation
	// Assert is true when the transition fires an `assert false`.
	Assert bool
}

// Succ is a successor state together with the event that produced it.
type Succ struct {
	State *State
	Event Event
}

// Successors enumerates all RA transitions enabled in s, implementing the
// global transition relation of Figure 2 (LD-GLOBAL, ST-GLOBAL, CAS-GLOBAL,
// UNLABELLED) over the positional-timestamp representation.
func (inst *Instance) Successors(s *State) []Succ {
	var out []Succ
	for ti := range s.Threads {
		out = inst.threadSuccessors(s, ti, out)
	}
	return out
}

func (inst *Instance) threadSuccessors(s *State, ti int, out []Succ) []Succ {
	info := inst.Threads[ti]
	th := &s.Threads[ti]
	regs := info.CFG.Prog.Regs
	vars := inst.Sys.Vars
	for _, e := range info.CFG.Out[th.PC] {
		ev := Event{Thread: ti, Name: info.Name, Op: e.Op.String(regs, vars)}
		switch e.Op.Kind {
		case lang.OpNop:
			ns := s.Clone()
			ns.Threads[ti].PC = e.To
			out = append(out, Succ{State: ns, Event: ev})

		case lang.OpAssume:
			if e.Op.E.Eval(th.Regs) != 0 {
				ns := s.Clone()
				ns.Threads[ti].PC = e.To
				out = append(out, Succ{State: ns, Event: ev})
			}

		case lang.OpAssertFail:
			ns := s.Clone()
			ns.Threads[ti].PC = e.To
			ev.Assert = true
			out = append(out, Succ{State: ns, Event: ev})

		case lang.OpAssign:
			ns := s.Clone()
			ns.Threads[ti].PC = e.To
			ns.Threads[ti].Regs[e.Op.Reg] = inst.norm(e.Op.E.Eval(th.Regs))
			out = append(out, Succ{State: ns, Event: ev})

		case lang.OpLoad:
			// LD: any message on Var at position ≥ the thread's view.
			v := e.Op.Var
			for pos := th.View[v]; pos < len(s.Mem[v]); pos++ {
				msg := s.Mem[v][pos]
				ns := s.Clone()
				nt := &ns.Threads[ti]
				nt.PC = e.To
				nt.Regs[e.Op.Reg] = msg.Val
				nt.View = nt.View.Join(msg.View)
				lev := ev
				lev.Op = fmt.Sprintf("%s  (ts %d, val %d)", ev.Op, pos, int(msg.Val))
				out = append(out, Succ{State: ns, Event: lev})
			}

		case lang.OpStore:
			// ST: insert at any unsealed gap strictly after the view.
			v := e.Op.Var
			d := inst.norm(e.Op.E.Eval(th.Regs))
			for pos := th.View[v] + 1; pos <= len(s.Mem[v]); pos++ {
				if s.Mem[v][pos-1].Sealed {
					continue
				}
				ns := s.Clone()
				nt := &ns.Threads[ti]
				nt.PC = e.To
				mv := nt.View.Clone()
				mv[v] = pos
				msg := Msg{Val: d, View: mv}
				ns.insert(v, pos, msg)
				// The thread adopts the message view (vw <_x vw').
				nt.View = mv.Clone()
				sev := ev
				sev.Op = fmt.Sprintf("%s  (ts %d)", ev.Op, pos)
				out = append(out, Succ{State: ns, Event: sev})
			}

		case lang.OpCASOp:
			// CAS: read a matching message, write immediately after it, and
			// seal the gap so the pair stays adjacent forever.
			v := e.Op.Var
			expect := inst.norm(e.Op.E.Eval(th.Regs))
			newVal := inst.norm(e.Op.E2.Eval(th.Regs))
			for pos := th.View[v]; pos < len(s.Mem[v]); pos++ {
				msg := s.Mem[v][pos]
				if msg.Val != expect || msg.Sealed {
					continue
				}
				ns := s.Clone()
				nt := &ns.Threads[ti]
				nt.PC = e.To
				mv := nt.View.Join(msg.View)
				mv[v] = pos + 1
				stored := Msg{Val: newVal, View: mv}
				ns.insert(v, pos+1, stored)
				ns.Mem[v][pos].Sealed = true
				nt.View = mv.Clone()
				cev := ev
				cev.Op = fmt.Sprintf("%s  (ts %d->%d)", ev.Op, pos, pos+1)
				out = append(out, Succ{State: ns, Event: cev})
			}
		}
	}
	return out
}
