package ra

import (
	"testing"

	"paramra/internal/lang"
)

// explore builds an instance with nEnv env replicas and exhaustively
// explores it.
func explore(t *testing.T, src string, nEnv int) Result {
	t.Helper()
	sys, err := lang.ParseSystem(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	inst, err := NewInstance(sys, nEnv)
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	res := inst.Explore(Limits{MaxStates: 2_000_000})
	if !res.Unsafe && !res.Complete {
		t.Fatalf("exploration hit limits without verdict (states=%d)", res.States)
	}
	return res
}

// TestMessagePassingForbidden checks the defining guarantee of RA ("never
// read overwritten values"): after reading the y=1 flag the consumer cannot
// read the stale x=0.
func TestMessagePassingForbidden(t *testing.T) {
	res := explore(t, `
system mp { vars x y; domain 2; dis t1; dis t2 }
thread t1 { store x 1; store y 1 }
thread t2 {
  regs r1 r2
  r1 = load y; assume r1 == 1
  r2 = load x; assume r2 == 0
  assert false
}
`, 0)
	if res.Unsafe {
		t.Fatalf("MP weak behaviour observed — forbidden under RA:\n%s", FormatWitness(res.Witness))
	}
}

// TestMessagePassingPositive checks the allowed outcome r1==1, r2==1 is
// reachable (sanity that the semantics is not vacuously safe).
func TestMessagePassingPositive(t *testing.T) {
	res := explore(t, `
system mp { vars x y; domain 2; dis t1; dis t2 }
thread t1 { store x 1; store y 1 }
thread t2 {
  regs r1 r2
  r1 = load y; assume r1 == 1
  r2 = load x; assume r2 == 1
  assert false
}
`, 0)
	if !res.Unsafe {
		t.Fatal("MP strong outcome unreachable — semantics too strict")
	}
}

// TestStoreBufferingAllowed checks that the SB weak behaviour (both loads
// read the initial value) is observable under RA.
func TestStoreBufferingAllowed(t *testing.T) {
	res := explore(t, `
system sb { vars x y a; domain 2; dis t1; dis t2 }
thread t1 {
  regs r1
  store x 1
  r1 = load y; assume r1 == 0
  store a 1
}
thread t2 {
  regs r2 r3
  store y 1
  r2 = load x; assume r2 == 0
  r3 = load a; assume r3 == 1
  assert false
}
`, 0)
	if !res.Unsafe {
		t.Fatal("SB weak behaviour (r1=r2=0) must be allowed under RA")
	}
}

// TestLoadBufferingForbidden checks the LB out-of-thin-air cycle is not
// producible by the operational semantics.
func TestLoadBufferingForbidden(t *testing.T) {
	res := explore(t, `
system lb { vars x y; domain 2; dis t1; dis t2 }
thread t1 {
  regs r1
  r1 = load y; assume r1 == 1
  store x 1
  assert false
}
thread t2 {
  regs r2
  r2 = load x; assume r2 == 1
  store y 1
}
`, 0)
	if res.Unsafe {
		t.Fatalf("LB cycle observed — impossible under RA:\n%s", FormatWitness(res.Witness))
	}
}

// TestCoherenceCoRR2 checks that two readers cannot observe the two writes
// to the same variable in opposite orders (per-location coherence).
func TestCoherenceCoRR2(t *testing.T) {
	res := explore(t, `
system corr2 { vars x f; domain 3; dis w1; dis w2; dis t3; dis t4 }
thread w1 { store x 1 }
thread w2 { store x 2 }
thread t3 {
  regs a b
  a = load x; assume a == 1
  b = load x; assume b == 2
  store f 1
}
thread t4 {
  regs c d r
  c = load x; assume c == 2
  d = load x; assume d == 1
  r = load f; assume r == 1
  assert false
}
`, 0)
	if res.Unsafe {
		t.Fatalf("CoRR2 violation — coherence broken:\n%s", FormatWitness(res.Witness))
	}
}

// TestCoherenceSameOrderAllowed is the positive variant of CoRR2: both
// readers observing the same order is fine.
func TestCoherenceSameOrderAllowed(t *testing.T) {
	res := explore(t, `
system corr { vars x f; domain 3; dis w1; dis w2; dis t3; dis t4 }
thread w1 { store x 1 }
thread w2 { store x 2 }
thread t3 {
  regs a b
  a = load x; assume a == 1
  b = load x; assume b == 2
  store f 1
}
thread t4 {
  regs c d r
  c = load x; assume c == 1
  d = load x; assume d == 2
  r = load f; assume r == 1
  assert false
}
`, 0)
	if !res.Unsafe {
		t.Fatal("same-order observation should be reachable")
	}
}

// TestCASMutualExclusion checks that two cas(x,0,1) cannot both succeed.
func TestCASMutualExclusion(t *testing.T) {
	res := explore(t, `
system casmx { vars x a; domain 2; dis t1; dis t2 }
thread t1 { cas x 0 1; store a 1 }
thread t2 {
  regs r
  cas x 0 1
  r = load a; assume r == 1
  assert false
}
`, 0)
	if res.Unsafe {
		t.Fatalf("two successful CAS(0→1) on one variable:\n%s", FormatWitness(res.Witness))
	}
}

// TestCASSingleSucceeds checks a lone CAS succeeds and its effect is
// visible.
func TestCASSingleSucceeds(t *testing.T) {
	res := explore(t, `
system cas1 { vars x; domain 2; dis t1; dis t2 }
thread t1 { cas x 0 1 }
thread t2 {
  regs r
  r = load x; assume r == 1
  assert false
}
`, 0)
	if !res.Unsafe {
		t.Fatal("CAS effect invisible")
	}
}

// TestCASAdjacencySealsGap checks that after cas(x,0,1), a store cannot be
// ordered between the 0 and the 1: a reader that observed the CAS result 1
// can never read a 2 that is modification-ordered before the 1, so reading
// 1 then 2 then 1 again is impossible... the directly testable consequence
// is that a reader cannot observe 0, then 2, then 1 if 2 was stored after
// the CAS sealed the gap and the CAS read the 0 directly.
func TestCASAdjacencySealsGap(t *testing.T) {
	// t1 performs the CAS; t2 stores 2; t3 tries to observe 0 → 2 → 1,
	// which would require 2 to sit between 0 and 1 in modification order —
	// exactly the sealed gap.
	res := explore(t, `
system seal { vars x; domain 3; dis t1; dis t2; dis t3 }
thread t1 { cas x 0 1 }
thread t2 { store x 2 }
thread t3 {
  regs a b c
  a = load x; assume a == 0
  b = load x; assume b == 2
  c = load x; assume c == 1
  assert false
}
`, 0)
	if res.Unsafe {
		t.Fatalf("observed a store between CAS-adjacent timestamps:\n%s", FormatWitness(res.Witness))
	}
}

// TestCASAdjacencyOrderAfterAllowed is the positive twin: observing
// 0 → 1 → 2 is allowed (2 ordered after the CAS pair).
func TestCASAdjacencyOrderAfterAllowed(t *testing.T) {
	res := explore(t, `
system seal2 { vars x; domain 3; dis t1; dis t2; dis t3 }
thread t1 { cas x 0 1 }
thread t2 { store x 2 }
thread t3 {
  regs a b c
  a = load x; assume a == 0
  b = load x; assume b == 1
  c = load x; assume c == 2
  assert false
}
`, 0)
	if !res.Unsafe {
		t.Fatal("0→1→2 should be observable")
	}
}

// TestFigure1ProducerConsumer reproduces the execution snippet of Figure 1:
// one producer and one consumer; the consumer reads the producer's x write.
func TestFigure1ProducerConsumer(t *testing.T) {
	res := explore(t, `
system fig1 { vars x y; domain 8; dis producer; dis consumer }
thread producer {
  regs r
  r = load y; assume r == 1
  store x (r + 3)   # writes 4, mirroring the paper's value
}
thread consumer {
  regs s
  store y 1
  s = load x
  assume s == 4
  assert false
}
`, 0)
	if !res.Unsafe {
		t.Fatal("Figure 1 execution should be reproducible")
	}
	if len(res.Witness) == 0 || !res.Witness[len(res.Witness)-1].Assert {
		t.Fatalf("witness malformed: %v", res.Witness)
	}
}

// TestEnvReplication checks that env replicas behave like dis copies: one
// producer is enough to deliver the value.
func TestEnvReplication(t *testing.T) {
	src := `
system param { vars x y; domain 4; env producer; dis consumer }
thread producer {
  regs r
  r = load y; assume r == 1
  store x 2
}
thread consumer {
  regs s
  store y 1
  s = load x; assume s == 2
  assert false
}
`
	if res := explore(t, src, 0); res.Unsafe {
		t.Fatal("no env threads: violation should be unreachable")
	}
	if res := explore(t, src, 1); !res.Unsafe {
		t.Fatal("one env thread should suffice")
	}
	if res := explore(t, src, 2); !res.Unsafe {
		t.Fatal("two env threads should also violate (monotonicity)")
	}
}
