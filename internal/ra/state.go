package ra

import (
	"fmt"
	"sort"
	"strings"

	"paramra/internal/engine"
	"paramra/internal/lang"
)

// Msg is a message in a variable's modification order: the stored value, the
// view it carries, and whether the gap immediately after it is sealed by a
// CAS (no store may ever be inserted between this message and its successor).
type Msg struct {
	Val    lang.Val
	View   View
	Sealed bool
}

// Thread is a thread-local configuration: program counter in the thread's
// CFG, register valuation, and view.
type Thread struct {
	PC   lang.PC
	Regs []lang.Val
	View View
}

// State is a configuration of a fixed instance: per-variable modification
// orders plus all thread-local configurations.
type State struct {
	// Mem[v] is the modification order of variable v; Mem[v][0] is the
	// initial message.
	Mem [][]Msg
	// Threads holds the thread-local configurations, indexed consistently
	// with Instance.Threads.
	Threads []Thread
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{
		Mem:     make([][]Msg, len(s.Mem)),
		Threads: make([]Thread, len(s.Threads)),
	}
	for v, list := range s.Mem {
		nl := make([]Msg, len(list))
		for i, m := range list {
			nl[i] = Msg{Val: m.Val, View: m.View.Clone(), Sealed: m.Sealed}
		}
		out.Mem[v] = nl
	}
	for i, th := range s.Threads {
		regs := make([]lang.Val, len(th.Regs))
		copy(regs, th.Regs)
		out.Threads[i] = Thread{PC: th.PC, Regs: regs, View: th.View.Clone()}
	}
	return out
}

// Key returns a canonical encoding of the state, used for visited-set
// hashing during exploration. Positions are already canonical ranks, so two
// states are semantically identical iff their keys are equal. The encoding
// is the compact injective varint scheme of engine.KeyEnc.
func (s *State) Key() string {
	enc := engine.GetKeyEnc()
	s.appendKey(enc)
	k := enc.String()
	engine.PutKeyEnc(enc)
	return k
}

// appendKey encodes the canonical state key into enc without materializing a
// string; the hot exploration paths probe the visited set with enc.Bytes()
// and intern only on first sight.
func (s *State) appendKey(enc *engine.KeyEnc) {
	s.encodeMemKey(enc)
	for i := range s.Threads {
		s.encodeThreadKey(enc, i)
	}
}

// SymKey returns the state key with the first nEnv thread sections (the
// identical env replicas) in sorted order: states equal up to a permutation
// of env replicas share a SymKey. Sound because replicas run the same
// program and messages carry no thread identity.
func (s *State) SymKey(nEnv int) string {
	enc := engine.GetKeyEnc()
	s.appendSymKey(enc, nEnv)
	k := enc.String()
	engine.PutKeyEnc(enc)
	return k
}

// appendSymKey is appendKey under env-replica symmetry canonicalization.
func (s *State) appendSymKey(enc *engine.KeyEnc, nEnv int) {
	s.encodeMemKey(enc)
	envKeys := make([]string, 0, nEnv)
	tenc := engine.GetKeyEnc()
	for i := 0; i < nEnv && i < len(s.Threads); i++ {
		tenc.Reset()
		s.encodeThreadKey(tenc, i)
		envKeys = append(envKeys, tenc.String())
	}
	engine.PutKeyEnc(tenc)
	sort.Strings(envKeys)
	for _, k := range envKeys {
		enc.Raw([]byte(k))
	}
	for i := nEnv; i < len(s.Threads); i++ {
		s.encodeThreadKey(enc, i)
	}
}

func (s *State) encodeMemKey(enc *engine.KeyEnc) {
	for _, list := range s.Mem {
		enc.Len(len(list))
		for _, m := range list {
			enc.Int(int(m.Val))
			sealed := 0
			if m.Sealed {
				sealed = 1
			}
			enc.Int(sealed)
			enc.Len(len(m.View))
			for _, t := range m.View {
				enc.Int(t)
			}
		}
	}
}

func (s *State) encodeThreadKey(enc *engine.KeyEnc, i int) {
	th := s.Threads[i]
	enc.Int(int(th.PC))
	enc.Len(len(th.Regs))
	for _, r := range th.Regs {
		enc.Int(int(r))
	}
	enc.Len(len(th.View))
	for _, t := range th.View {
		enc.Int(t)
	}
}

// insert places msg at position pos in variable v's modification order and
// patches every view in the state (thread views and message views) so that
// positions ≥ pos shift up by one. The caller is responsible for having
// checked gap-seal constraints.
func (s *State) insert(v lang.VarID, pos int, msg Msg) {
	list := s.Mem[v]
	list = append(list, Msg{})
	copy(list[pos+1:], list[pos:])
	list[pos] = msg
	s.Mem[v] = list
	bump := func(vw View) {
		if vw[v] >= pos {
			// The inserted message's own view points at itself and must not
			// be bumped; callers set msg.View[v] = pos after this returns if
			// needed. We bump all *pre-existing* views.
			vw[v]++
		}
	}
	for vi := range s.Mem {
		for mi := range s.Mem[vi] {
			if vi == int(v) && mi == pos {
				continue // the new message itself
			}
			bump(s.Mem[vi][mi].View)
		}
	}
	for ti := range s.Threads {
		bump(s.Threads[ti].View)
	}
}

// String renders the state for diagnostics, with names from the instance.
func (s *State) String() string {
	var b strings.Builder
	for v, list := range s.Mem {
		fmt.Fprintf(&b, "var#%d:", v)
		for i, m := range list {
			fmt.Fprintf(&b, " [%d]=%d", i, int(m.Val))
			if m.Sealed {
				b.WriteByte('!')
			}
		}
		b.WriteByte('\n')
	}
	for i, th := range s.Threads {
		fmt.Fprintf(&b, "thread %d: pc=%d regs=%v view=%v\n", i, int(th.PC), th.Regs, th.View)
	}
	return b.String()
}
