package ra

import (
	"testing"
)

// Additional litmus tests pinning the finer points of the RA semantics.

// TestWRCForbidden: write-to-read causality. If t2 reads t1's x=1 and then
// publishes y=1, a third thread that reads y=1 cannot read the stale x=0 —
// causality is transitive through view joins.
func TestWRCForbidden(t *testing.T) {
	res := explore(t, `
system wrc { vars x y; domain 2; dis t1; dis t2; dis t3 }
thread t1 { store x 1 }
thread t2 { regs a; a = load x; assume a == 1; store y 1 }
thread t3 {
  regs b c
  b = load y; assume b == 1
  c = load x; assume c == 0
  assert false
}
`, 0)
	if res.Unsafe {
		t.Fatalf("WRC violation — causality not transitive:\n%s", FormatWitness(res.Witness))
	}
}

// TestIRIWAllowed: independent reads of independent writes. RA (like causal
// consistency) permits the two readers to observe the two independent
// writes in opposite orders — there is no total store order.
func TestIRIWAllowed(t *testing.T) {
	res := explore(t, `
system iriw { vars x y f; domain 2; dis w1; dis w2; dis r1; dis r2 }
thread w1 { store x 1 }
thread w2 { store y 1 }
thread r1 {
  regs a b
  a = load x; assume a == 1
  b = load y; assume b == 0
  store f 1
}
thread r2 {
  regs c d g
  c = load y; assume c == 1
  d = load x; assume d == 0
  g = load f; assume g == 1
  assert false
}
`, 0)
	if !res.Unsafe {
		t.Fatal("IRIW weak outcome must be allowed under RA (no total store order)")
	}
}

// TestRMWAcquireReleaseChain: a chain of CAS operations transfers views —
// after winning the second CAS, the thread has synchronized with the first
// winner's store.
func Test2RMWChainTransfersViews(t *testing.T) {
	res := explore(t, `
system chain { vars l d; domain 3; dis t1; dis t2 }
thread t1 { store d 1; cas l 0 1 }
thread t2 {
  regs v
  cas l 1 2
  v = load d; assume v == 0
  assert false
}
`, 0)
	if res.Unsafe {
		t.Fatalf("CAS chain failed to transfer the view of d:\n%s", FormatWitness(res.Witness))
	}
}

// TestCASFailurePathViaChoice: the common retry idiom — a thread that does
// not win the CAS takes the other branch.
func TestCASFailurePathViaChoice(t *testing.T) {
	res := explore(t, `
system retry { vars l w0 w1; domain 2; dis t1; dis t2; dis obs }
thread t1 { choice { cas l 0 1; store w0 1 } or { skip } }
thread t2 { choice { cas l 0 1; store w1 1 } or { skip } }
thread obs {
  regs a b
  a = load w0; assume a == 1
  b = load w1; assume b == 1
  assert false
}
`, 0)
	if res.Unsafe {
		t.Fatal("both threads won the same CAS")
	}
}

// TestReadFromUnpublishedForbidden: values cannot be read before any thread
// stores them (no out-of-thin-air).
func TestReadFromUnpublishedForbidden(t *testing.T) {
	res := explore(t, `
system oota { vars x; domain 4; dis t1; dis t2 }
thread t1 { regs a; a = load x; assume a == 3; store x a }
thread t2 { regs b; b = load x; assume b == 3; assert false }
`, 0)
	if res.Unsafe {
		t.Fatal("out-of-thin-air value observed")
	}
}

// TestStoreOwnOrder: a thread's own stores to one variable are ordered by
// its increasing view — it can never observe them inverted.
func TestStoreOwnOrder(t *testing.T) {
	res := explore(t, `
system own { vars x; domain 3; dis w; dis r }
thread w { store x 1; store x 2 }
thread r {
  regs a b
  a = load x; assume a == 2
  b = load x; assume b == 1
  assert false
}
`, 0)
	if res.Unsafe {
		t.Fatalf("own-store order violated:\n%s", FormatWitness(res.Witness))
	}
}

// TestWriterCanInsertIntoPast: RA allows a thread that has not observed a
// later store to insert its own store modification-order-*before* it; a
// reader can then see the two stores in either order across executions.
func TestWriterCanInsertIntoPast(t *testing.T) {
	// Reader sees 2 then 1: only possible when w2's store x=2 is placed
	// mo-before w1's x=1... w1 and w2 are unordered, so both placements
	// must be reachable.
	res := explore(t, `
system past { vars x; domain 3; dis w1; dis w2; dis r }
thread w1 { store x 1 }
thread w2 { store x 2 }
thread r {
  regs a b
  a = load x; assume a == 2
  b = load x; assume b == 1
  assert false
}
`, 0)
	if !res.Unsafe {
		t.Fatal("unordered writers must admit both modification orders")
	}
}

// TestEnvSymmetry: permuting env replicas cannot change the verdict; the
// explorer's state count for N identical env threads is the same regardless
// of which replica acts (sanity for the instance construction).
func TestEnvSymmetry(t *testing.T) {
	src := `
system sym { vars x y; domain 3; env w; dis d }
thread w { regs r; r = load x; store y (r + 1) }
thread d { regs s; s = load y; assume s == 1; assert false }
`
	r1 := explore(t, src, 2)
	r2 := explore(t, src, 2)
	if r1.Unsafe != r2.Unsafe || r1.States != r2.States {
		t.Fatalf("exploration not deterministic: %+v vs %+v", r1, r2)
	}
	if !r1.Unsafe {
		t.Fatal("expected unsafe")
	}
}
