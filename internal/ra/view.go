// Package ra implements the standard operational release-acquire semantics
// of Figure 2 of the paper for *fixed instances* (a concrete, finite number
// of threads).
//
// The textbook semantics draws timestamps from ℕ, which makes even a single
// configuration infinite-state. We use the standard finite representation:
// each shared variable's modification order is an ordered list of messages,
// and a timestamp is the message's *position* in that list. A store inserts
// a fresh message at any position strictly after the storing thread's view
// of the variable; a CAS inserts immediately after the message it read and
// *seals* that gap, so no later store can intervene — this captures the
// paper's requirement that CAS load/store timestamps are adjacent (ts'=ts+1)
// for the entire future of the run. Views reference positions; insertion
// shifts later positions, which the implementation patches everywhere.
//
// This representation is reachability-preserving (it is the rank compression
// of timestamps used, e.g., in the source-to-source semantics of Kang et
// al.'s promising semantics restricted to RA) and makes loop-free instances
// finite-state.
package ra

// View maps each shared variable (by index) to the position, in that
// variable's modification order, of the most recent message the thread has
// observed. Position 0 is the initial message.
type View []int

// NewView returns the zero view over numVars variables.
func NewView(numVars int) View { return make(View, numVars) }

// Clone returns a copy of v.
func (v View) Clone() View {
	out := make(View, len(v))
	copy(out, v)
	return out
}

// Join computes the pointwise maximum of v and w in place on a fresh copy
// (the ⊔ of the paper: λx. max(v(x), w(x))).
func (v View) Join(w View) View {
	out := v.Clone()
	for i, t := range w {
		if t > out[i] {
			out[i] = t
		}
	}
	return out
}

// Leq reports whether v ≤ w pointwise.
func (v View) Leq(w View) bool {
	for i, t := range v {
		if t > w[i] {
			return false
		}
	}
	return true
}

// Eq reports pointwise equality.
func (v View) Eq(w View) bool {
	if len(v) != len(w) {
		return false
	}
	for i, t := range v {
		if t != w[i] {
			return false
		}
	}
	return true
}
