package ra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paramra/internal/lang"
)

func TestViewLattice(t *testing.T) {
	mk := func(a, b, c int8) View {
		return View{int(a&7) + 8, int(b&7) + 8, int(c&7) + 8} // non-negative
	}
	// Join is commutative, associative, idempotent, and an upper bound.
	comm := func(a1, a2, a3, b1, b2, b3 int8) bool {
		v, w := mk(a1, a2, a3), mk(b1, b2, b3)
		return v.Join(w).Eq(w.Join(v))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("join not commutative: %v", err)
	}
	assoc := func(a1, a2, a3, b1, b2, b3, c1, c2, c3 int8) bool {
		u, v, w := mk(a1, a2, a3), mk(b1, b2, b3), mk(c1, c2, c3)
		return u.Join(v).Join(w).Eq(u.Join(v.Join(w)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("join not associative: %v", err)
	}
	idem := func(a1, a2, a3 int8) bool {
		v := mk(a1, a2, a3)
		return v.Join(v).Eq(v)
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Errorf("join not idempotent: %v", err)
	}
	ub := func(a1, a2, a3, b1, b2, b3 int8) bool {
		v, w := mk(a1, a2, a3), mk(b1, b2, b3)
		j := v.Join(w)
		return v.Leq(j) && w.Leq(j)
	}
	if err := quick.Check(ub, nil); err != nil {
		t.Errorf("join not an upper bound: %v", err)
	}
}

func TestViewLeqAntisymmetric(t *testing.T) {
	v := View{1, 2}
	w := View{1, 2}
	if !v.Leq(w) || !w.Leq(v) || !v.Eq(w) {
		t.Error("equal views must be mutually ≤")
	}
	w[1] = 3
	if !v.Leq(w) || w.Leq(v) {
		t.Error("strictly larger view ordering wrong")
	}
}

func TestStateCloneIndependence(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; dis t }
thread t { store x 1 }
`)
	inst, err := NewInstance(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.InitState()
	c := s.Clone()
	c.Threads[0].View[0] = 9
	c.Mem[0][0].Val = 1
	if s.Threads[0].View[0] == 9 || s.Mem[0][0].Val == 1 {
		t.Error("Clone shares storage with original")
	}
	if s.Key() == c.Key() {
		t.Error("keys of distinct states collide")
	}
}

// checkInvariants verifies the structural invariants of the positional
// timestamp representation.
func checkInvariants(t *testing.T, s *State) {
	t.Helper()
	for v, list := range s.Mem {
		if len(list) == 0 {
			t.Fatalf("variable %d lost its initial message", v)
		}
		for p, m := range list {
			if got := m.View[v]; got != p {
				t.Fatalf("message (var %d, pos %d) has self view %d", v, p, got)
			}
			for v2, t2 := range m.View {
				if t2 < 0 || t2 >= len(s.Mem[v2]) {
					t.Fatalf("message view out of range: var %d pos %d view[%d]=%d", v, p, v2, t2)
				}
			}
			if m.Sealed && p == len(list)-1 {
				t.Fatalf("sealed gap after the last message (var %d pos %d)", v, p)
			}
		}
	}
	for ti, th := range s.Threads {
		for v, p := range th.View {
			if p < 0 || p >= len(s.Mem[v]) {
				t.Fatalf("thread %d view out of range: view[%d]=%d", ti, v, p)
			}
		}
	}
}

// TestRandomWalkInvariants drives random computations of a program mixing
// all operation kinds and checks representation invariants at every step.
func TestRandomWalkInvariants(t *testing.T) {
	sys := lang.MustParseSystem(`
system rw { vars x y z; domain 4; env worker }
thread worker {
  regs r s
  loop {
    choice { r = load x } or { r = load y } or { s = load z }
    choice { store x (r + 1) } or { store y (s + 2) } or { store z 1 }
    choice { cas z 1 2 } or { cas z 2 1 } or { skip }
    choice { assume r <= s } or { assume r > s }
  }
}
`)
	inst, err := NewInstance(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		s := inst.InitState()
		for step := 0; step < 40; step++ {
			succs := inst.Successors(s)
			if len(succs) == 0 {
				break
			}
			s = succs[rng.Intn(len(succs))].State
			checkInvariants(t, s)
		}
	}
}

// TestRandomWalkKeyStability: Key must be injective on the walk states we
// can distinguish semantically — at minimum, cloning preserves the key and
// stepping to a state with different memory changes it.
func TestRandomWalkKeyStability(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 3; dis t }
thread t { store x 1; store x 2 }
`)
	inst, err := NewInstance(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.InitState()
	if s.Key() != s.Clone().Key() {
		t.Error("clone changed key")
	}
	succs := inst.Successors(s)
	if len(succs) != 1 {
		t.Fatalf("expected 1 successor (single store position), got %d", len(succs))
	}
	if succs[0].State.Key() == s.Key() {
		t.Error("store did not change key")
	}
}

func TestStoreInsertionPositions(t *testing.T) {
	// After two independent stores to x by different threads, the second
	// store (by a thread with view 0) can insert before or after the first:
	// expect both interleavings to yield 2-position choices at some point.
	sys := lang.MustParseSystem(`
system s { vars x; domain 4; dis a; dis b }
thread a { store x 1 }
thread b { store x 2 }
`)
	inst, err := NewInstance(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.InitState()
	succs := inst.Successors(s)
	if len(succs) != 2 { // one store each, single position available
		t.Fatalf("initial successors = %d, want 2", len(succs))
	}
	// Take thread a's store, then thread b should have two insertion points.
	var afterA *State
	for _, sc := range succs {
		if sc.Event.Thread == 0 {
			afterA = sc.State
		}
	}
	succs2 := inst.Successors(afterA)
	if len(succs2) != 2 {
		t.Fatalf("after a's store, b should have 2 insertion positions, got %d", len(succs2))
	}
	// The two resulting modification orders must differ.
	k1, k2 := succs2[0].State.Key(), succs2[1].State.Key()
	if k1 == k2 {
		t.Error("distinct insertion positions produced identical states")
	}
}

func TestInstanceErrors(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; dis t }
thread t { skip }
`)
	if _, err := NewInstance(sys, -1); err == nil {
		t.Error("negative env count accepted")
	}
	if _, err := NewInstance(sys, 2); err == nil {
		t.Error("env replicas without env program accepted")
	}
	bad := &lang.System{Name: "bad"}
	if _, err := NewInstance(bad, 0); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestExploreLimits(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 8; env w }
thread w { regs r; loop { r = load x; store x (r + 1) } }
`)
	inst, err := NewInstance(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := inst.Explore(Limits{MaxStates: 100})
	if res.Complete {
		t.Error("unbounded counter instance reported complete under a 100-state cap")
	}
	if res.States > 100 {
		t.Errorf("state cap exceeded: %d", res.States)
	}
	res = inst.Explore(Limits{MaxDepth: 3, MaxStates: 100000})
	if res.Complete {
		t.Error("depth-limited exploration reported complete")
	}
}

func TestReachablePCs(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; dis t }
thread t { regs r; r = load x; assume r == 1; store x 1 }
`)
	inst, err := NewInstance(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	reach, complete := inst.ReachablePCs(Limits{})
	if !complete {
		t.Fatal("tiny instance not exhausted")
	}
	g := inst.Threads[0].CFG
	if !reach[0][int(g.Entry)] {
		t.Error("entry unreachable?")
	}
	// assume r == 1 can never pass (x stays 0 until the store, which is
	// after the assume), so the exit must be unreachable.
	if reach[0][int(g.Exit)] {
		t.Error("exit should be blocked by assume r == 1")
	}
}
