package ra

import (
	"strings"
	"testing"

	"paramra/internal/lang"
)

// TestTracerFigure1 scripts the exact execution of the paper's Figure 1
// snippet and checks the rendered memory snapshots.
func TestTracerFigure1(t *testing.T) {
	sys := lang.MustParseSystem(`
system fig1 { vars x y; domain 8; dis producer; dis consumer }
thread producer {
  regs r
  r = load y; assume r == 1
  store x (r + 3)
}
thread consumer {
  regs s
  store y 1
  s = load x; assume s == 4
}
`)
	inst, err := NewInstance(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(inst)
	script := []struct{ thread, op string }{
		{"consumer", "store y"},
		{"producer", "r = load y  (ts 1, val 1)"}, // read the flag, not the init message
		{"producer", "assume"},
		{"producer", "store x"},
		{"consumer", "s = load x  (ts 1, val 4)"},
	}
	for _, step := range script {
		if err := tr.StepMatching(step.thread, step.op); err != nil {
			t.Fatalf("script step %+v: %v\ntrace so far:\n%s", step, err, tr.Render())
		}
	}
	out := tr.Render()
	for _, want := range []string{
		"m_init = {(x, 0, [x:0 y:0]), (y, 0, [x:0 y:0])}",
		"store y 1",
		"(y, 1, [x:0 y:1])",
		"(x, 4, [x:1 y:1])",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if len(tr.Steps()) != 5 {
		t.Errorf("steps = %d", len(tr.Steps()))
	}
}

func TestTracerStepPick(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; dis t }
thread t { store x 1 }
`)
	inst, err := NewInstance(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(inst)
	if !tr.Step(func(opts []Succ) int { return 0 }) {
		t.Fatal("enabled transition not taken")
	}
	if tr.Step(func(opts []Succ) int { return 0 }) {
		t.Fatal("step succeeded after program end")
	}
	if tr.Step(func(opts []Succ) int { return 99 }) {
		t.Fatal("out-of-range pick accepted")
	}
}

func TestTracerStepMatchingError(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; dis t }
thread t { store x 1 }
`)
	inst, err := NewInstance(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(inst)
	if err := tr.StepMatching("t", "cas"); err == nil {
		t.Fatal("expected no-match error")
	}
}
