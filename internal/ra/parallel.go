package ra

import (
	"context"
	"sync"

	"paramra/internal/engine"
)

// backEdge stores, for each visited state, its predecessor key and the
// incoming event — enough to reconstruct a witness by chain walking.
type backEdge struct {
	prevKey string
	ev      Event
}

// ExploreContext runs the safety search of Explore on the free-order
// parallel engine: lim.Workers goroutines share a batched frontier and a
// sharded visited set. Verdicts — and, for exhaustive searches, state and
// transition counts — coincide with the sequential explorer for every
// worker count; witness interleavings may differ between runs (the first
// violation discovered wins). Cancellation via ctx stops the search with
// Result.Err = ctx.Err() and Complete = false.
func (inst *Instance) ExploreContext(ctx context.Context, lim Limits) Result {
	init := inst.InitState()
	initKey := inst.stateKey(init, lim)
	visited := engine.NewShardedMap[backEdge]()

	expand := func(s *State, key string, depth int, buf []engine.Succ[*State, backEdge]) []engine.Succ[*State, backEdge] {
		succs := inst.Successors(s)
		out := buf
		enc := engine.GetKeyEnc()
		for _, succ := range succs {
			if succ.Event.Assert {
				out = append(out, engine.Succ[*State, backEdge]{Halt: true, Tag: succ.Event})
				break
			}
			// Byte-probe the visited set before interning: duplicate
			// successors (the common case) cost no allocation, and the
			// grow-only set makes the positive answer stable.
			enc.Reset()
			inst.appendStateKey(enc, succ.State, lim)
			if visited.HasBytes(enc.Bytes()) {
				out = append(out, engine.Succ[*State, backEdge]{Dedup: true})
				continue
			}
			out = append(out, engine.Succ[*State, backEdge]{
				State: succ.State,
				Key:   enc.String(),
				Val:   backEdge{prevKey: key, ev: succ.Event},
			})
		}
		engine.PutKeyEnc(enc)
		return out
	}

	out := engine.Explore(ctx, engine.Config{
		Workers:   lim.Workers,
		MaxStates: lim.MaxStates,
		MaxDepth:  lim.MaxDepth,
		Progress:  lim.Progress,
		Trace:     lim.Trace,
		SpanName:  "concrete-explore",
		Metrics:   lim.Metrics,
	}, visited, init, initKey, backEdge{}, expand)

	res := Result{
		Unsafe:      out.Halted,
		States:      int(out.Stats.States),
		Transitions: int(out.Stats.Transitions),
		Complete:    out.Complete,
		Engine:      out.Stats,
		Err:         out.Err,
	}
	if out.Halted {
		final, _ := out.HaltTag.(Event)
		rev := []Event{final}
		for k := out.HaltParent; k != initKey; {
			be, ok := visited.Get(k)
			if !ok {
				break
			}
			rev = append(rev, be.ev)
			k = be.prevKey
		}
		res.Witness = make([]Event, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			res.Witness = append(res.Witness, rev[i])
		}
	}
	return res
}

// ExploreParallel is ExploreContext with a background context, keeping the
// historical (lim, workers) signature.
func (inst *Instance) ExploreParallel(lim Limits, workers int) Result {
	lim.Workers = workers
	return inst.ExploreContext(context.Background(), lim)
}

// FindDeadlocksContext classifies the instance's sink states on the
// parallel engine. Counts are deterministic (they are properties of the
// reachable state set); the reported example is canonicalized to the
// deadlocked state with the smallest key, so it too is identical for every
// worker count and schedule.
func (inst *Instance) FindDeadlocksContext(ctx context.Context, lim Limits) DeadlockReport {
	init := inst.InitState()

	var mu sync.Mutex
	rep := DeadlockReport{}
	var exampleKey string

	atExit := func(s *State, ti int) bool {
		return len(inst.Threads[ti].CFG.Out[s.Threads[ti].PC]) == 0
	}

	visited := engine.NewShardedMap[struct{}]()

	expand := func(s *State, key string, depth int, buf []engine.Succ[*State, struct{}]) []engine.Succ[*State, struct{}] {
		succs := inst.Successors(s)
		if len(succs) == 0 {
			var stuck []string
			for ti := range s.Threads {
				if !atExit(s, ti) {
					stuck = append(stuck, inst.Threads[ti].Name)
				}
			}
			mu.Lock()
			if len(stuck) > 0 {
				rep.Deadlocks++
				if exampleKey == "" || key < exampleKey {
					exampleKey = key
					rep.Example = s.String()
					rep.StuckThreads = stuck
				}
			} else {
				rep.Terminal++
			}
			mu.Unlock()
			return buf
		}
		out := buf
		enc := engine.GetKeyEnc()
		for _, succ := range succs {
			// Assert transitions terminate their branch without counting as
			// deadlocks (safety is Explore's job).
			if succ.Event.Assert {
				continue
			}
			enc.Reset()
			succ.State.appendKey(enc)
			if visited.HasBytes(enc.Bytes()) {
				out = append(out, engine.Succ[*State, struct{}]{Dedup: true})
				continue
			}
			out = append(out, engine.Succ[*State, struct{}]{
				State: succ.State,
				Key:   enc.String(),
			})
		}
		engine.PutKeyEnc(enc)
		return out
	}

	out := engine.Explore(ctx, engine.Config{
		Workers:   lim.Workers,
		MaxStates: lim.MaxStates,
		MaxDepth:  lim.MaxDepth,
		Progress:  lim.Progress,
		Trace:     lim.Trace,
		SpanName:  "deadlock-scan",
		Metrics:   lim.Metrics,
	}, visited, init, init.Key(), struct{}{}, expand)

	rep.Complete = out.Complete
	return rep
}
