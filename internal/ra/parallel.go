package ra

import (
	"runtime"
	"sync"
)

// ExploreParallel runs the same breadth-first safety search as Explore,
// fanned out over a worker pool. The visited set and frontier are shared
// under a mutex with a condition variable for idle workers; termination is
// detected when the frontier is empty and no worker is expanding a state.
// Verdicts (and, for exhaustive searches, state counts) coincide with the
// sequential explorer; witness interleavings may differ between runs.
//
// workers ≤ 0 selects GOMAXPROCS.
func (inst *Instance) ExploreParallel(lim Limits, workers int) Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type backEdge struct {
		prevKey string
		ev      Event
	}
	type item struct {
		state *State
		key   string
		depth int
	}

	init := inst.InitState()
	initKey := init.Key()

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		frontier = []item{{state: init, key: initKey}}
		visited  = map[string]bool{initKey: true}
		pred     = map[string]backEdge{}
		active   = 0
		states   = 1
		trans    = 0
		limited  = false
		done     = false
		unsafe   = false
		witness  []Event
	)

	buildWitness := func(lastKey string, final Event) []Event {
		rev := []Event{final}
		k := lastKey
		for k != initKey {
			be, ok := pred[k]
			if !ok {
				break
			}
			rev = append(rev, be.ev)
			k = be.prevKey
		}
		out := make([]Event, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			out = append(out, rev[i])
		}
		return out
	}

	worker := func() {
		for {
			mu.Lock()
			for len(frontier) == 0 && active > 0 && !done {
				cond.Wait()
			}
			if done || (len(frontier) == 0 && active == 0) {
				// Wake any remaining waiters and exit.
				done = true
				cond.Broadcast()
				mu.Unlock()
				return
			}
			it := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			active++
			mu.Unlock()

			if lim.MaxDepth > 0 && it.depth >= lim.MaxDepth {
				mu.Lock()
				limited = true
				active--
				cond.Broadcast()
				mu.Unlock()
				continue
			}

			succs := inst.Successors(it.state)

			mu.Lock()
			for _, succ := range succs {
				trans++
				if succ.Event.Assert && !unsafe {
					unsafe = true
					witness = buildWitness(it.key, succ.Event)
					done = true
					break
				}
				sk := succ.State.Key()
				if visited[sk] {
					continue
				}
				if lim.MaxStates > 0 && states >= lim.MaxStates {
					limited = true
					continue
				}
				visited[sk] = true
				pred[sk] = backEdge{prevKey: it.key, ev: succ.Event}
				states++
				frontier = append(frontier, item{state: succ.State, key: sk, depth: it.depth + 1})
			}
			active--
			cond.Broadcast()
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()

	res := Result{
		Unsafe:      unsafe,
		States:      states,
		Transitions: trans,
		Complete:    !unsafe && !limited,
		Witness:     witness,
	}
	return res
}
