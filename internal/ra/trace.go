package ra

import (
	"fmt"
	"strings"

	"paramra/internal/lang"
)

// Tracer drives a single computation step by step, capturing the memory
// pool after each transition — the style of the paper's Figure 1 execution
// snippet (m_init → m1 → m2 …).
type Tracer struct {
	inst  *Instance
	state *State
	steps []TraceStep
}

// TraceStep records one executed transition and the memory after it.
type TraceStep struct {
	Event  Event
	Memory string
}

// NewTracer starts a computation at the initial configuration.
func NewTracer(inst *Instance) *Tracer {
	return &Tracer{inst: inst, state: inst.InitState()}
}

// State exposes the current configuration (read-only by convention).
func (t *Tracer) State() *State { return t.state }

// Options returns the currently enabled transitions.
func (t *Tracer) Options() []Succ { return t.inst.Successors(t.state) }

// Step applies the enabled transition chosen by pick (given the options in
// order); it reports false when no transition is enabled.
func (t *Tracer) Step(pick func([]Succ) int) bool {
	opts := t.Options()
	if len(opts) == 0 {
		return false
	}
	i := pick(opts)
	if i < 0 || i >= len(opts) {
		return false
	}
	t.apply(opts[i])
	return true
}

// StepMatching applies the first enabled transition whose thread name and
// rendered operation contain the given substrings (either may be empty).
func (t *Tracer) StepMatching(thread, op string) error {
	for _, s := range t.Options() {
		if strings.Contains(s.Event.Name, thread) && strings.Contains(s.Event.Op, op) {
			t.apply(s)
			return nil
		}
	}
	return fmt.Errorf("ra: no enabled transition matching thread %q op %q", thread, op)
}

func (t *Tracer) apply(s Succ) {
	t.state = s.State
	t.steps = append(t.steps, TraceStep{
		Event:  s.Event,
		Memory: FormatMemory(t.inst, s.State),
	})
}

// Steps returns the executed transitions with their memory snapshots.
func (t *Tracer) Steps() []TraceStep { return t.steps }

// Render pretty-prints the computation in the style of Figure 1: each
// transition followed by the message pool it produced.
func (t *Tracer) Render() string {
	var b strings.Builder
	b.WriteString("m_init = ")
	b.WriteString(FormatMemory(t.inst, t.inst.InitState()))
	b.WriteByte('\n')
	for i, st := range t.steps {
		fmt.Fprintf(&b, "%2d. [%s] %s\n", i+1, st.Event.Name, st.Event.Op)
		fmt.Fprintf(&b, "    m%d = %s\n", i+1, st.Memory)
	}
	return b.String()
}

// FormatMemory renders the message pool as a set of (variable, value, view)
// triples, views written per variable name.
func FormatMemory(inst *Instance, s *State) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for v, list := range s.Mem {
		for _, m := range list {
			if !first {
				b.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&b, "(%s, %d, [", inst.Sys.VarName(langVarID(v)), int(m.Val))
			for vi, ts := range m.View {
				if vi > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s:%d", inst.Sys.VarName(langVarID(vi)), ts)
			}
			b.WriteString("])")
		}
	}
	b.WriteByte('}')
	return b.String()
}

// langVarID converts a raw index into a lang.VarID (readability helper).
func langVarID(i int) lang.VarID { return lang.VarID(i) }
