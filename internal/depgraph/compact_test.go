package depgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"paramra/internal/lang"
	"paramra/internal/simplified"
)

// randGraph builds a random acyclic dependency graph over nSig signatures.
func randGraph(r *rand.Rand, nodes, nSig int) *Graph {
	g := &Graph{Nodes: map[string]*Node{}, Q0: nSig}
	keys := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		k := fmt.Sprintf("n%d", i)
		keys[i] = k
		kind := EnvMsg
		switch {
		case i == 0:
			kind = InitMsg
		case r.Intn(3) == 0:
			kind = DisMsg
		}
		n := &Node{
			Key:  k,
			Kind: kind,
			Var:  lang.VarID(r.Intn(nSig/2 + 1)),
			Val:  lang.Val(r.Intn(2)),
			TS:   simplified.Plus(i),
			Deps: map[string]int{},
		}
		// Depend only on earlier nodes: acyclic by construction.
		for d := 0; d < r.Intn(3) && i > 0; d++ {
			n.Deps[keys[r.Intn(i)]] = 1 + r.Intn(3)
		}
		g.Nodes[k] = n
	}
	g.Goal = keys[nodes-1]
	return g
}

// TestCompactedProperties: on random graphs, compaction preserves the goal,
// produces a well-formed graph whose every edge target exists, keeps
// heights within the signature count, and is idempotent in its bounds.
func TestCompactedProperties(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		g := randGraph(r, 2+r.Intn(14), 4)
		c := g.Compacted()
		if c.Goal != g.Goal {
			t.Fatal("goal lost")
		}
		if _, ok := c.Nodes[c.Goal]; !ok {
			t.Fatal("goal node missing")
		}
		for _, n := range c.Nodes {
			for dep := range n.Deps {
				if _, ok := c.Nodes[dep]; !ok {
					t.Fatalf("dangling dependency %s", dep)
				}
			}
		}
		// Edges strictly decrease original height, so the compacted height
		// is bounded by the number of distinct signatures + 1.
		sigs := map[signature]bool{}
		for _, n := range g.Nodes {
			sigs[sigOf(n)] = true
		}
		if h := c.Height(); h > len(sigs)+1 {
			t.Fatalf("compacted height %d exceeds signature bound %d", h, len(sigs)+1)
		}
		// Compacting again must not increase the measures.
		cc := c.Compacted()
		if cc.Height() > c.Height() || cc.MaxFanIn() > c.MaxFanIn() {
			t.Fatalf("second compaction grew: h %d→%d, fan %d→%d",
				c.Height(), cc.Height(), c.MaxFanIn(), cc.MaxFanIn())
		}
	}
}

// TestCompactedCostStillSound: compaction must not lose the violation —
// costs stay positive for env-goal graphs whose original cost is positive.
func TestCompactedCostStillSound(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		g := randGraph(r, 3+r.Intn(10), 4)
		if g.Nodes[g.Goal].Kind != EnvMsg {
			continue
		}
		c := g.Compacted()
		if g.CostGoal() >= 1 && c.CostGoal() < 1 {
			t.Fatalf("compaction erased the env cost: %d -> %d", g.CostGoal(), c.CostGoal())
		}
	}
}

func TestCostSaturation(t *testing.T) {
	// A deep chain of env nodes with high read counts must saturate rather
	// than overflow.
	g := &Graph{Nodes: map[string]*Node{}, Q0: 2}
	prev := ""
	for i := 0; i < 80; i++ {
		k := fmt.Sprintf("c%d", i)
		n := &Node{Key: k, Kind: EnvMsg, Deps: map[string]int{}}
		if prev != "" {
			n.Deps[prev] = 1000
		}
		g.Nodes[k] = n
		prev = k
	}
	g.Goal = prev
	if c := g.CostGoal(); c != MaxCost {
		t.Errorf("cost = %d, want saturation at %d", c, MaxCost)
	}
}
