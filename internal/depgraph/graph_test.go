package depgraph

import (
	"fmt"
	"strings"
	"testing"

	"paramra/internal/lang"
	"paramra/internal/simplified"
)

// violationFor runs the verifier and returns the violation.
func violationFor(t *testing.T, src string, goal *simplified.Goal) (*lang.System, *simplified.Violation) {
	t.Helper()
	sys := lang.MustParseSystem(src)
	v, err := simplified.New(sys, simplified.Options{Goal: goal})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := v.Verify()
	if !res.Unsafe {
		t.Fatalf("expected unsafe/goal-generatable system")
	}
	return sys, res.Violation
}

func TestGraphProdCons(t *testing.T) {
	sys, viol := violationFor(t, `
system s { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }
`, nil)
	g, err := FromViolation(sys, viol)
	if err != nil {
		t.Fatal(err)
	}
	goal := g.Nodes[g.Goal]
	if goal.Kind != GoalNode {
		t.Fatalf("goal kind = %v", goal.Kind)
	}
	// The consumer read exactly one env message (x=2).
	if len(goal.Deps) != 1 {
		t.Fatalf("goal deps = %v", goal.Deps)
	}
	var envKey string
	for k := range goal.Deps {
		envKey = k
	}
	env := g.Nodes[envKey]
	if env.Kind != EnvMsg || env.Val != 2 {
		t.Fatalf("expected env x=2 message, got %+v", env)
	}
	// The env message depends on the dis message y=1.
	if len(env.Deps) != 1 {
		t.Fatalf("env deps = %v", env.Deps)
	}
	for k := range env.Deps {
		d := g.Nodes[k]
		if d.Kind != DisMsg || d.Val != 1 {
			t.Fatalf("expected dis y=1 dependency, got %+v", d)
		}
		// The dis y=1 message was stored before any read.
		if len(d.Deps) != 0 {
			t.Fatalf("dis y=1 should have no dependencies: %v", d.Deps)
		}
	}
	// Heights: dis y=1 at 0, env x=2 at 1, goal at 2.
	if h := g.HeightOf(g.Goal); h != 2 {
		t.Errorf("goal height = %d, want 2", h)
	}
	// Cost: goal is dis-like (assert by consumer) = rc·cost(env) = 1·(1+0) = 1.
	if c := g.CostGoal(); c != 1 {
		t.Errorf("cost = %d, want 1 (one env thread suffices)", c)
	}
	if !g.Compact() {
		t.Errorf("tiny graph should satisfy the Q0 bounds (Q0=%d, h=%d, fanin=%d)",
			g.Q0, g.Height(), g.MaxFanIn())
	}
}

// TestFigure5CostEqualsLoopBound reproduces Figure 5: the cost of the goal
// message equals the consumer's loop bound z.
func TestFigure5CostEqualsLoopBound(t *testing.T) {
	for _, z := range []int{1, 2, 3, 5} {
		loads := strings.Repeat("  s = load x; assume s == 1\n", z)
		src := fmt.Sprintf(`
system fig5 { vars x y; domain 3; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 1 }
thread consumer {
  regs s
  store y 1
%s  store y 2
}
`, loads)
		sys := lang.MustParseSystem(src)
		yv, _ := sys.VarByName("y")
		sysCopy, viol := violationFor(t, src, &simplified.Goal{Var: yv, Val: 2})
		g, err := FromViolation(sysCopy, viol)
		if err != nil {
			t.Fatal(err)
		}
		if c := g.CostGoal(); c != int64(z) {
			t.Errorf("z=%d: cost(msg#) = %d, want %d\n%s", z, c, z, g)
		}
	}
}

// TestFigure4DependencyAlternatives builds the two-env-thread snippet of
// Figure 4's flavour: the message (y,2) can be generated after reading
// (x,1); genthread is whichever env instance got there first, and the
// dependency is on the (x,1) env message.
func TestFigure4DependencyAlternatives(t *testing.T) {
	src := `
system fig4 { vars x y; domain 3; env worker }
thread worker {
  regs r
  choice {
    store x 1
  } or {
    r = load x; assume r == 1
    store y 2
  }
}
`
	sys := lang.MustParseSystem(src)
	yv, _ := sys.VarByName("y")
	_, viol := violationFor(t, src, &simplified.Goal{Var: yv, Val: 2})
	g, err := FromViolation(sys, viol)
	if err != nil {
		t.Fatal(err)
	}
	goal := g.Nodes[g.Goal]
	if goal.Kind != EnvMsg || goal.Val != 2 {
		t.Fatalf("goal node = %+v", goal)
	}
	if len(goal.Deps) != 1 {
		t.Fatalf("goal deps = %v", goal.Deps)
	}
	for k, rc := range goal.Deps {
		n := g.Nodes[k]
		if n.Kind != EnvMsg || n.Var != 0 || n.Val != 1 || rc != 1 {
			t.Fatalf("expected single read of env (x,1): %+v x%d", n, rc)
		}
	}
	// cost(y,2) = 1 + cost(x,1) = 1 + 1 = 2 — two env threads.
	if c := g.CostGoal(); c != 2 {
		t.Errorf("cost = %d, want 2", c)
	}
}

func TestCompactionBoundsLongChain(t *testing.T) {
	// A chain x: 0→1→2→…: each env store reads the previous value. With
	// domain d the chain revisits (var,value) signatures, so the compacted
	// graph must satisfy the Q0 bounds even for deep originals.
	src := `
system chain { vars x; domain 3; env inc; dis watcher }
thread inc { regs r; r = load x; store x (r + 1) }
thread watcher { regs s; s = load x; assume s == 2; assert false }
`
	sys, viol := violationFor(t, src, nil)
	g, err := FromViolation(sys, viol)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Compacted()
	if c.Height() > c.Q0 {
		t.Errorf("compacted height %d > Q0 %d", c.Height(), c.Q0)
	}
	if c.MaxFanIn() > c.Q0 {
		t.Errorf("compacted fan-in %d > Q0 %d", c.MaxFanIn(), c.Q0)
	}
	if !c.Compact() {
		t.Error("Compacted() result not compact")
	}
	// The compacted graph preserves the goal.
	if c.Goal != g.Goal {
		t.Error("compaction lost the goal")
	}
	// Compaction must not create cycles: every height is finite and edges
	// strictly decrease original heights, so goal height ≤ node count.
	if c.HeightOf(c.Goal) > len(c.Nodes) {
		t.Error("compacted graph has an implausible height (cycle?)")
	}
}

func TestQ0Formula(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x y; domain 3; env e; dis d }
thread e { skip }
thread d { store x 1 }
`)
	disSize := lang.Compile(sys.Dis[0]).NumNodes
	if got, want := Q0Of(sys), 3*2+disSize; got != want {
		t.Errorf("Q0 = %d, want %d", got, want)
	}
}

func TestFromViolationNil(t *testing.T) {
	if _, err := FromViolation(&lang.System{}, nil); err == nil {
		t.Error("nil violation accepted")
	}
}

func TestGraphStringDeterministic(t *testing.T) {
	sys, viol := violationFor(t, `
system s { vars x; domain 2; env w; dis d }
thread w { store x 1 }
thread d { regs r; r = load x; assume r == 1; assert false }
`, nil)
	g, err := FromViolation(sys, viol)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := g.String(), g.String()
	if s1 != s2 || s1 == "" {
		t.Error("String not deterministic or empty")
	}
	if !strings.Contains(s1, "<- goal") {
		t.Errorf("goal marker missing:\n%s", s1)
	}
}
