package depgraph

// Compaction (Lemma 4.5): if a vertex depends on more than Q₀ messages, its
// generating thread could instead have read an earlier message with the same
// (variable, value) pair; if a dependency sequence exceeds Q₀, it contains
// two messages with the same (variable, value) and the segment between them
// can be cut. Both reductions are realized here by rewiring every dependency
// edge to the minimum-height representative of its (variable, value)
// signature: afterwards any dependency path visits each signature's unique
// representative at most once, so fan-ins and heights are bounded by the
// number of signatures, which is at most Q₀.

// signature identifies interchangeable messages for compaction purposes.
type signature struct {
	v    int
	val  int
	goal bool
}

func sigOf(n *Node) signature {
	return signature{v: int(n.Var), val: int(n.Val), goal: n.Kind == GoalNode}
}

// Compacted returns a new graph in which every dependency points to the
// minimum-height representative of its signature. The goal node is
// preserved. Unreachable nodes (from the goal, backwards) are dropped.
func (g *Graph) Compacted() *Graph {
	// Choose representatives: minimum height per signature.
	rep := map[signature]string{}
	for k, n := range g.Nodes {
		s := sigOf(n)
		cur, ok := rep[s]
		if !ok || g.HeightOf(k) < g.HeightOf(cur) || (g.HeightOf(k) == g.HeightOf(cur) && k < cur) {
			rep[s] = k
		}
	}
	redirect := func(k string) string {
		if k == g.Goal {
			return k
		}
		return rep[sigOf(g.Nodes[k])]
	}

	out := &Graph{Nodes: map[string]*Node{}, Goal: g.Goal, Q0: g.Q0}
	var copyNode func(k string)
	copyNode = func(k string) {
		if _, ok := out.Nodes[k]; ok {
			return
		}
		src := g.Nodes[k]
		n := &Node{Key: src.Key, Kind: src.Kind, Var: src.Var, Val: src.Val, TS: src.TS,
			ByEnv: src.ByEnv, Deps: map[string]int{}}
		out.Nodes[k] = n
		for dep, rc := range src.Deps {
			r := redirect(dep)
			n.Deps[r] += rc
		}
		for dep := range n.Deps {
			copyNode(dep)
		}
	}
	copyNode(g.Goal)
	return out
}
