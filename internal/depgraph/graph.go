// Package depgraph implements the dependency graphs of Definition 1, the
// compaction of Lemma 4.5, and the cost function of §4.3 that bounds the
// number of env threads needed to generate a message.
//
// Vertices are the messages of a computation's final memory; there is an
// edge msg' → msg when genthread(msg) — the thread that first added msg —
// read msg' before generating msg, weighted by the read count rc(msg, msg').
// The graphs are reconstructed from the read logs the verifier attaches to
// thread configurations and message entries.
package depgraph

import (
	"fmt"
	"sort"
	"strings"

	"paramra/internal/lang"
	"paramra/internal/simplified"
)

// Kind classifies a node's generating thread.
type Kind int

// Node kinds.
const (
	InitMsg Kind = iota + 1
	EnvMsg
	DisMsg
	// GoalNode is the virtual node for an assert-based violation (the
	// violating thread's "message", cf. §4.1's reduction of safety to MG).
	GoalNode
)

func (k Kind) String() string {
	switch k {
	case InitMsg:
		return "init"
	case EnvMsg:
		return "env"
	case DisMsg:
		return "dis"
	case GoalNode:
		return "goal"
	default:
		return "?"
	}
}

// Node is a vertex of the dependency graph.
type Node struct {
	Key  string
	Kind Kind
	Var  lang.VarID
	Val  lang.Val
	TS   simplified.ATime
	// ByEnv marks a virtual goal node whose violating transition was fired
	// by an env thread: that thread is not part of any instance's dis
	// threads, so it contributes the same +1 to the cost as an env message.
	ByEnv bool
	// Deps maps dependency keys to read counts rc(this, dep).
	Deps map[string]int
}

// Graph is a dependency graph (Definition 1).
type Graph struct {
	Nodes map[string]*Node
	// Goal is the key of the goal message / virtual goal node.
	Goal string
	// Q0 is the paper's parameter |Dom|·|Var| + |dis| for this system.
	Q0 int
}

// goalKey is the virtual node key used for assert violations.
const goalKey = "!goal"

// Q0Of computes Q₀ = |Dom|·|Var| + |dis|, with |dis| measured as the total
// number of control locations of the dis programs.
func Q0Of(sys *lang.System) int {
	disSize := 0
	for _, d := range sys.Dis {
		disSize += lang.Compile(d).NumNodes
	}
	return sys.Dom*len(sys.Vars) + disSize
}

// FromViolation reconstructs the dependency graph of the violating
// computation found by the simplified verifier.
func FromViolation(sys *lang.System, viol *simplified.Violation) (*Graph, error) {
	if viol == nil {
		return nil, fmt.Errorf("depgraph: nil violation")
	}
	g := &Graph{Nodes: map[string]*Node{}, Q0: Q0Of(sys)}

	addMsg := func(m simplified.AMsg, kind Kind, log *simplified.ReadLog) {
		k := m.Key()
		if _, ok := g.Nodes[k]; ok {
			return
		}
		g.Nodes[k] = &Node{
			Key: k, Kind: kind, Var: m.Var, Val: m.Val, TS: m.TS,
			Deps: logCounts(log),
		}
	}

	// Dis memory: init messages (timestamp 0) and dis stores.
	if viol.Mem != nil {
		for v := 0; v < viol.Mem.NumVars(); v++ {
			viol.Mem.Each(lang.VarID(v), func(m simplified.AMsg) {
				if m.TS == simplified.Int(0) {
					addMsg(m, InitMsg, nil)
					return
				}
				gen := viol.DisMsgLogs[m.Key()]
				addMsg(m, DisMsg, gen.Log)
			})
		}
	}
	// Env messages.
	if viol.Env != nil {
		for _, me := range viol.Env.Msgs {
			addMsg(me.Msg, EnvMsg, me.Log)
		}
	}

	// Goal node.
	if viol.GoalMsg != nil {
		m := *viol.GoalMsg
		k := m.Key()
		if _, ok := g.Nodes[k]; !ok {
			kind := DisMsg
			if viol.ByEnv {
				kind = EnvMsg
			}
			if m.TS == simplified.Int(0) {
				kind = InitMsg
			}
			g.Nodes[k] = &Node{
				Key: k, Kind: kind, Var: m.Var, Val: m.Val, TS: m.TS,
				Deps: logCounts(viol.Log),
			}
		}
		g.Goal = k
	} else {
		g.Nodes[goalKey] = &Node{Key: goalKey, Kind: GoalNode, ByEnv: viol.ByEnv, Deps: logCounts(viol.Log)}
		g.Goal = goalKey
	}

	// Sanity: every dependency must resolve to a node.
	for _, n := range g.Nodes {
		for dep := range n.Deps {
			if _, ok := g.Nodes[dep]; !ok {
				return nil, fmt.Errorf("depgraph: dangling dependency %s of %s", dep, n.Key)
			}
		}
	}
	return g, nil
}

func logCounts(log *simplified.ReadLog) map[string]int {
	out := map[string]int{}
	for _, k := range log.Keys() {
		out[k]++
	}
	return out
}

// HeightOf returns the height of a node: the length of the longest
// dependency path from a source to it.
func (g *Graph) HeightOf(key string) int {
	memo := map[string]int{}
	var h func(string) int
	h = func(k string) int {
		if v, ok := memo[k]; ok {
			return v
		}
		memo[k] = 0 // break accidental cycles defensively
		best := 0
		for dep := range g.Nodes[k].Deps {
			if d := 1 + h(dep); d > best {
				best = d
			}
		}
		memo[k] = best
		return best
	}
	return h(key)
}

// Height returns the maximal height over all vertices (height(G)).
func (g *Graph) Height() int {
	best := 0
	for k := range g.Nodes {
		if h := g.HeightOf(k); h > best {
			best = h
		}
	}
	return best
}

// FanIn returns |depend(v)| for the node.
func (g *Graph) FanIn(key string) int { return len(g.Nodes[key].Deps) }

// MaxFanIn returns the largest fan-in in the graph.
func (g *Graph) MaxFanIn() int {
	best := 0
	for k := range g.Nodes {
		if f := g.FanIn(k); f > best {
			best = f
		}
	}
	return best
}

// Compact reports whether the graph satisfies the Lemma 4.5 bounds:
// every fan-in and the height are at most Q₀.
func (g *Graph) Compact() bool {
	return g.MaxFanIn() <= g.Q0 && g.Height() <= g.Q0
}

// Cost computes the §4.3 cost of a node:
//
//	cost(init) = 0
//	cost(env)  = 1 + Σ rc·cost(dep)
//	cost(dis)  = Σ rc·cost(dep)
//
// A virtual goal node costs like its generating thread kind: an assert
// fired by an env thread (Node.ByEnv) pays the same +1 as an env message,
// since that thread exists in no instance's dis part. Costs can be
// exponential in the graph depth; values saturate at MaxCost.
func (g *Graph) Cost(key string) int64 {
	memo := map[string]int64{}
	var c func(string) int64
	c = func(k string) int64 {
		if v, ok := memo[k]; ok {
			return v
		}
		memo[k] = 0
		n := g.Nodes[k]
		var sum int64
		for dep, rc := range n.Deps {
			sum = satAdd(sum, satMul(int64(rc), c(dep)))
		}
		if n.Kind == EnvMsg || n.ByEnv {
			sum = satAdd(sum, 1)
		}
		memo[k] = sum
		return sum
	}
	return c(key)
}

// MaxCost is the saturation bound for Cost.
const MaxCost = int64(1) << 60

func satAdd(a, b int64) int64 {
	if a > MaxCost-b {
		return MaxCost
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > MaxCost/b {
		return MaxCost
	}
	return a * b
}

// CostGoal returns cost(G) = cost(msg#), the §4.3 bound on the number of
// env threads sufficient to reproduce the violation.
func (g *Graph) CostGoal() int64 { return g.Cost(g.Goal) }

// String renders the graph deterministically for golden tests and reports.
func (g *Graph) String() string {
	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		n := g.Nodes[k]
		fmt.Fprintf(&b, "%-4s %s (h=%d, cost=%d)", n.Kind, k, g.HeightOf(k), g.Cost(k))
		if k == g.Goal {
			b.WriteString("  <- goal")
		}
		b.WriteByte('\n')
		deps := make([]string, 0, len(n.Deps))
		for d := range n.Deps {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		for _, d := range deps {
			fmt.Fprintf(&b, "     reads %s x%d\n", d, n.Deps[d])
		}
	}
	return b.String()
}
