package obs

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"
)

// Flags is the shared observability (and run-limit) flag set of the cmd/
// tools. Every tool registers the observability group via RegisterFlags;
// the tools that run a search additionally register the run group via
// RegisterRunFlags. Using one helper keeps spelling, defaults, and help
// text identical across binaries.
type Flags struct {
	// Run group (-j, -timeout).
	Workers int
	Timeout time.Duration

	// Observability group.
	TraceOut    string
	MetricsAddr string
	MetricsOut  string
	PprofAddr   string
	CPUProfile  string
	MemProfile  string
}

// RegisterFlags registers the observability flag group on fs:
// -trace-out, -metrics-addr, -metrics-out, -pprof-addr, -cpuprofile,
// -memprofile.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a JSONL phase-span trace to this file")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve Prometheus /metrics and expvar /debug/vars on this address (e.g. :9090)")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	fs.StringVar(&f.PprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (e.g. :6060)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	return f
}

// RegisterRunFlags registers the run flag group on fs: -j and -timeout,
// spelled and documented identically across the tools.
func (f *Flags) RegisterRunFlags(fs *flag.FlagSet) {
	fs.IntVar(&f.Workers, "j", 0, "worker goroutines (0 = GOMAXPROCS); verdicts are identical for every value")
	fs.DurationVar(&f.Timeout, "timeout", 0, "overall time limit (0 = none), e.g. 30s")
}

// Context returns the tool's run context: SIGINT cancels it, and -timeout
// (when set) bounds it. The returned stop function releases both.
func (f *Flags) Context() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	if f.Timeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, f.Timeout)
		return tctx, func() { cancel(); stop() }
	}
	return ctx, stop
}

// Session holds the live observability state opened from the flags. The
// zero fields are valid: with no flags set, Tracer and Metrics are nil and
// every instrumentation call in the pipeline is a pointer-check no-op.
type Session struct {
	// Tracer is non-nil iff -trace-out was given.
	Tracer *Tracer
	// Metrics is non-nil iff any of -metrics-addr, -metrics-out was given.
	Metrics *Registry

	traceFile   *os.File
	metricsOut  string
	memProfile  string
	stopCPU     func() error
	stopServers []func()
}

// Open starts everything the flags ask for: the trace file, the metrics
// registry and its listener, the pprof listener, and the CPU profile. Call
// Close when the tool is done. An error leaves nothing running.
func (f *Flags) Open() (*Session, error) {
	s := &Session{}
	fail := func(err error) (*Session, error) {
		s.Close()
		return nil, err
	}
	if f.TraceOut != "" {
		file, err := os.Create(f.TraceOut)
		if err != nil {
			return fail(fmt.Errorf("obs: trace-out: %w", err))
		}
		s.traceFile = file
		s.Tracer = NewTracer(file)
	}
	if f.MetricsAddr != "" || f.MetricsOut != "" {
		s.Metrics = NewRegistry()
		s.metricsOut = f.MetricsOut
	}
	if f.MetricsAddr != "" {
		stop, _, err := ServeMetrics(f.MetricsAddr, s.Metrics)
		if err != nil {
			return fail(err)
		}
		s.stopServers = append(s.stopServers, stop)
	}
	if f.PprofAddr != "" {
		stop, _, err := ServePprof(f.PprofAddr)
		if err != nil {
			return fail(err)
		}
		s.stopServers = append(s.stopServers, stop)
	}
	if f.CPUProfile != "" {
		stop, err := StartCPUProfile(f.CPUProfile)
		if err != nil {
			return fail(err)
		}
		s.stopCPU = stop
	}
	s.memProfile = f.MemProfile
	return s, nil
}

// Close flushes the trace, writes the metrics snapshot and heap profile,
// stops the CPU profile, and shuts the listeners down. It returns the first
// error encountered.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if s.Tracer != nil {
		keep(s.Tracer.Flush())
	}
	if s.traceFile != nil {
		keep(s.traceFile.Close())
	}
	if s.metricsOut != "" && s.Metrics != nil {
		if f, err := os.Create(s.metricsOut); err != nil {
			keep(err)
		} else {
			keep(s.Metrics.WriteJSON(f))
			keep(f.Close())
		}
	}
	if s.stopCPU != nil {
		keep(s.stopCPU())
	}
	if s.memProfile != "" {
		keep(WriteMemProfile(s.memProfile))
	}
	for _, stop := range s.stopServers {
		stop()
	}
	return first
}
