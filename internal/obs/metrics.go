package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing race-safe counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be ≥ 0). Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a race-safe instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Max raises the gauge to n if n is larger (a high-water mark). Nil-safe.
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value. Nil-safe.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of log-scale histogram buckets: bucket i counts
// observations whose value has bit length i, i.e. v ∈ [2^(i-1), 2^i), with
// bucket 0 for v ≤ 0. 64-bit values always fit.
const histBuckets = 65

// Exemplar links one observation to the trace that produced it, in the
// OpenMetrics sense: a scraper reading a bad latency bucket can jump
// straight to a captured trace via the trace_id label.
type Exemplar struct {
	TraceID string
	Value   int64
}

// Histogram is a race-safe log₂-scale histogram (power-of-two buckets), the
// right shape for latencies and sizes spanning many orders of magnitude at
// a fixed 65-slot memory cost. Each bucket optionally retains the most
// recent exemplar observed into it.
type Histogram struct {
	count     atomic.Int64
	sum       atomic.Int64
	buckets   [histBuckets]atomic.Int64
	exemplars [histBuckets]atomic.Pointer[Exemplar]
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveExemplar records one value and attaches the trace ID as the
// bucket's exemplar (last writer wins). An empty trace ID degrades to a
// plain Observe. Nil-safe.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != "" {
		h.exemplars[bucketOf(v)].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// ExemplarOf returns the retained exemplar of the bucket holding v, or nil.
// Nil-safe.
func (h *Histogram) ExemplarOf(v int64) *Exemplar {
	if h == nil {
		return nil
	}
	return h.exemplars[bucketOf(v)].Load()
}

// bucketOf maps a value to its log₂ bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Count returns the number of observations. Nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values. Nil-safe.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of metrics. Get-or-create accessors make
// it safe to resolve the same name from several subsystems; the exposition
// methods render Prometheus text, expvar-style JSON, or a plain JSON
// snapshot. All methods are race-safe and nil-safe (a nil registry hands
// out nil metrics, whose methods are no-ops).
type Registry struct {
	mu      sync.Mutex
	names   []string // registration order
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// lookup returns the entry for name, creating it with mk on first use. A
// kind clash (same name registered as a different metric type) panics: it
// is a programming error, matching expvar's behavior.
func (r *Registry) lookup(name, help string, kind metricKind, mk func(*entry)) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	mk(e)
	r.entries[name] = e
	r.names = append(r.names, name)
	return e
}

// Counter returns the named counter, creating it on first use. Nil-safe.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram returns the named histogram, creating it on first use. Nil-safe.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, func(e *entry) { e.h = &Histogram{} }).h
}

// snapshotEntries copies the entry list under the lock; the atomic values
// are read lock-free afterwards.
func (r *Registry) snapshotEntries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.entries[n])
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (histograms as cumulative le-labeled power-of-two buckets).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, e := range r.snapshotEntries() {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.g.Value())
		case kindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", e.name); err != nil {
				return err
			}
			cum := int64(0)
			for i := 0; i < histBuckets; i++ {
				n := e.h.buckets[i].Load()
				if n == 0 {
					continue
				}
				cum += n
				// Bucket i holds values < 2^i (bit length ≤ i ⇒ v ≤ 2^i - 1).
				// A retained exemplar rides along in OpenMetrics syntax,
				// linking the bucket to a captured trace.
				suffix := ""
				if ex := e.h.exemplars[i].Load(); ex != nil {
					suffix = fmt.Sprintf(" # {trace_id=\"%s\"} %d", ex.TraceID, ex.Value)
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d%s\n", e.name, uint64(1)<<uint(i), cum, suffix); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				e.name, e.h.Count(), e.name, e.h.Sum(), e.name, e.h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// histJSON is the JSON shape of a histogram snapshot.
type histJSON struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // upper bound -> count
}

// Snapshot returns the current values as a flat map: counters and gauges as
// int64, histograms as {count, sum, buckets}.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := map[string]any{}
	for _, e := range r.snapshotEntries() {
		switch e.kind {
		case kindCounter:
			out[e.name] = e.c.Value()
		case kindGauge:
			out[e.name] = e.g.Value()
		case kindHistogram:
			hj := histJSON{Count: e.h.Count(), Sum: e.h.Sum()}
			for i := 0; i < histBuckets; i++ {
				if n := e.h.buckets[i].Load(); n > 0 {
					if hj.Buckets == nil {
						hj.Buckets = map[string]int64{}
					}
					hj.Buckets[fmt.Sprint(uint64(1)<<uint(i))] = n
				}
			}
			out[e.name] = hj
		}
	}
	return out
}

// WriteJSON renders the Snapshot as indented JSON with sorted keys (the
// shape consumed by `rabench report`).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	// json.Marshal emits map keys sorted, so the snapshot is deterministic.
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Handler serves the registry: Prometheus text at any path, the JSON
// snapshot when the request path ends in ".json".
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "no registry", http.StatusNotFound)
			return
		}
		if len(req.URL.Path) >= 5 && req.URL.Path[len(req.URL.Path)-5:] == ".json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WritePrometheus(w)
	})
}
