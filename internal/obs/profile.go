package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns the stop
// function (which also closes the file).
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpuprofile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteMemProfile writes an allocation profile to path (after a GC, so the
// numbers reflect live memory).
func WriteMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: memprofile: %w", err)
	}
	runtime.GC()
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: memprofile: %w", err)
	}
	return nil
}
