package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-wide expvar name: expvar.Publish panics on
// duplicates, and tests may open several sessions in one process.
var publishOnce sync.Once

// publishExpvar exposes the registry's snapshot under the expvar name
// "paramra" (visible at /debug/vars on any expvar-serving listener).
func publishExpvar(r *Registry) {
	publishOnce.Do(func() {
		expvar.Publish("paramra", expvar.Func(func() any { return r.Snapshot() }))
	})
}

// ServeMetrics starts an HTTP listener on addr exposing the registry in
// Prometheus text format at /metrics, as JSON at /metrics.json, and via
// expvar at /debug/vars. It returns the shutdown function and the bound
// address (useful with ":0").
func ServeMetrics(addr string, r *Registry) (stop func(), bound string, err error) {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/metrics.json", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	return serve(addr, mux)
}

// ServePprof starts a net/http/pprof listener on addr (profiles at
// /debug/pprof/). It returns the shutdown function and the bound address.
func ServePprof(addr string) (stop func(), bound string, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return serve(addr, mux)
}

// serve binds addr and serves mux in the background until stop is called.
func serve(addr string, mux *http.ServeMux) (stop func(), bound string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return func() {
		_ = srv.Close()
		<-done
	}, ln.Addr().String(), nil
}
