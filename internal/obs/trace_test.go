package obs

import (
	"bytes"
	"strings"
	"testing"
)

// counterClock returns a deterministic monotonic clock: 1, 2, 3, ...
func counterClock() func() int64 {
	var t int64
	return func() int64 { t++; return t }
}

func TestTracerEmitsValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracerClock(&buf, counterClock())
	root := tr.Start("run", nil)
	parse := root.Child("parse")
	parse.SetAttr("bytes", 123)
	parse.End()
	verify := root.Child("verify")
	fix := verify.Child("fixpoint")
	fix.SetAttr("macro_states", 7)
	fix.End()
	verify.End()
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	want := strings.Join([]string{
		`{"ev":"b","id":1,"name":"run","t":1}`,
		`{"ev":"b","id":2,"par":1,"name":"parse","t":2}`,
		`{"ev":"e","id":2,"t":3,"attrs":{"bytes":123}}`,
		`{"ev":"b","id":3,"par":1,"name":"verify","t":4}`,
		`{"ev":"b","id":4,"par":3,"name":"fixpoint","t":5}`,
		`{"ev":"e","id":4,"t":6,"attrs":{"macro_states":7}}`,
		`{"ev":"e","id":3,"t":7}`,
		`{"ev":"e","id":1,"t":8}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("trace mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	spans, err := ParseTrace(&buf)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[3].Name != "fixpoint" || spans[3].Parent != 3 || spans[3].Dur() != 1 {
		t.Errorf("fixpoint span wrong: %+v", spans[3])
	}
}

func TestTracerNilFastPath(t *testing.T) {
	// Every method on a nil tracer/span must be a no-op, not a panic: this
	// is the disabled-observability contract of the whole pipeline.
	var tr *Tracer
	s := tr.Start("x", nil)
	if s != nil {
		t.Fatalf("nil tracer returned a span")
	}
	c := s.Child("y")
	if c != nil {
		t.Fatalf("nil span returned a child")
	}
	s.SetAttr("k", 1)
	s.End()
	s.End()
	if err := tr.Flush(); err != nil {
		t.Errorf("nil flush: %v", err)
	}
}

func TestTracerEndIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracerClock(&buf, counterClock())
	s := tr.Start("once", nil)
	s.End()
	s.End()
	tr.Flush()
	if n := strings.Count(buf.String(), `"ev":"e"`); n != 1 {
		t.Errorf("double End emitted %d end events, want 1", n)
	}
}

func TestValidateTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":          "nope\n",
		"unknown kind":      `{"ev":"x","id":1,"t":1}` + "\n",
		"zero id":           `{"ev":"b","id":0,"name":"a","t":1}` + "\n",
		"missing name":      `{"ev":"b","id":1,"t":1}` + "\n",
		"unknown parent":    `{"ev":"b","id":1,"par":9,"name":"a","t":1}` + "\n",
		"decreasing time":   `{"ev":"b","id":1,"name":"a","t":5}` + "\n" + `{"ev":"e","id":1,"t":4}` + "\n",
		"end unknown":       `{"ev":"e","id":3,"t":1}` + "\n",
		"double start":      `{"ev":"b","id":1,"name":"a","t":1}` + "\n" + `{"ev":"b","id":1,"name":"a","t":2}` + "\n",
		"unterminated":      `{"ev":"b","id":1,"name":"a","t":1}` + "\n",
		"restart after end": `{"ev":"b","id":1,"name":"a","t":1}` + "\n" + `{"ev":"e","id":1,"t":2}` + "\n" + `{"ev":"b","id":1,"name":"a","t":3}` + "\n",
	}
	for name, trace := range cases {
		if err := ValidateTrace(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: validator accepted invalid trace:\n%s", name, trace)
		}
	}
	ok := `{"ev":"b","id":1,"name":"a","t":1}` + "\n" + `{"ev":"e","id":1,"t":2,"attrs":{"n":1}}` + "\n"
	if err := ValidateTrace(strings.NewReader(ok)); err != nil {
		t.Errorf("validator rejected a valid trace: %v", err)
	}
}
