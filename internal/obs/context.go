package obs

import "context"

// ctxKey is the private context-key namespace of this package.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	metricsKey
)

// WithTracer returns a context carrying the tracer. Library entry points
// that find no tracer in their Options fall back to the context, so a
// server can scope a whole verification pipeline — engine, datalog, absint,
// prepass spans included — to the request that caused it without widening
// any function signature beyond the context it already threads.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil. The nil result is a
// valid no-op tracer, so callers use the return unconditionally.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithSpan returns a context carrying a parent span. Entry points nest
// their root span under it, so one request's verify, confirm and inventory
// phases hang off a single request-level span.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFrom returns the context's parent span, or nil (a valid no-op span).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// WithMetrics returns a context carrying a metrics registry, the
// request-scoped counterpart of WithTracer for callers that do not set
// Options.Metrics explicitly.
func WithMetrics(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, metricsKey, r)
}

// MetricsFrom returns the context's registry, or nil (a valid no-op
// registry).
func MetricsFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(metricsKey).(*Registry)
	return r
}
