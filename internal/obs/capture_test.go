package obs

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestCaptureTraceIDOnEverySpan pins that a capture stamps its trace ID on
// every span (root and nested) and that ParseTrace carries it through.
func TestCaptureTraceIDOnEverySpan(t *testing.T) {
	c := NewCapture("trace-42")
	root := c.Tracer.Start("request", nil)
	child := root.Child("verify")
	child.Child("fixpoint").End()
	child.End()
	root.End()
	spans, err := c.Spans()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.TraceID != "trace-42" {
			t.Errorf("span %q trace ID = %q, want trace-42", s.Name, s.TraceID)
		}
	}
}

// TestConcurrentCapturesNeverInterleave is the multi-root race test: 50
// concurrent request-scoped captures record overlapping span trees, and
// every single capture must still validate in isolation — per-request
// tracers never interleave JSONL events from different requests in one
// stream.
func TestConcurrentCapturesNeverInterleave(t *testing.T) {
	const n = 50
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("req-%02d", i)
			c := NewCapture(id)
			root := c.Tracer.Start("request", nil)
			for j := 0; j < 20; j++ {
				s := root.Child(fmt.Sprintf("phase-%d", j%3))
				s.SetAttr("j", j)
				s.Child("inner").End()
				s.End()
			}
			root.End()
			data, err := c.Bytes()
			if err != nil {
				errs[i] = err
				return
			}
			if err := ValidateTrace(bytes.NewReader(data)); err != nil {
				errs[i] = fmt.Errorf("capture %s: %v", id, err)
				return
			}
			spans, _ := ParseTrace(bytes.NewReader(data))
			for _, s := range spans {
				if s.TraceID != id {
					errs[i] = fmt.Errorf("capture %s: span %q has trace ID %q", id, s.Name, s.TraceID)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestBuildTreeNesting pins the tree builder: children nest under parents,
// siblings keep start order, and multiple roots are preserved.
func TestBuildTreeNesting(t *testing.T) {
	c := NewCapture("")
	r1 := c.Tracer.Start("verify", nil)
	a := r1.Child("prepass")
	a.End()
	b := r1.Child("fixpoint")
	b.Child("layer").End()
	b.End()
	r1.End()
	c.Tracer.Start("confirm", nil).End()

	roots, err := c.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 || roots[0].Name != "verify" || roots[1].Name != "confirm" {
		t.Fatalf("roots = %+v", roots)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "prepass" || kids[1].Name != "fixpoint" {
		t.Fatalf("children = %+v", kids)
	}
	if len(kids[1].Children) != 1 || kids[1].Children[0].Name != "layer" {
		t.Fatalf("grandchildren = %+v", kids[1].Children)
	}
	total := 0
	WalkTree(roots, func(*TreeNode) { total++ })
	if total != 5 {
		t.Errorf("WalkTree visited %d nodes, want 5", total)
	}
}

// TestRingEvictsOldest pins capacity, eviction order, and the newest-first
// snapshot.
func TestRingEvictsOldest(t *testing.T) {
	r := NewRing[int](3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	for i := 1; i <= 5; i++ {
		r.Add(i)
	}
	got := r.Snapshot()
	want := []int{5, 4, 3}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
	var nilRing *Ring[int]
	nilRing.Add(1) // nil-safe
	if nilRing.Snapshot() != nil || nilRing.Total() != 0 {
		t.Error("nil ring is not a no-op")
	}
}

// TestRingRace hammers one ring from many goroutines under -race.
func TestRingRace(t *testing.T) {
	r := NewRing[int](8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(w*1000 + i)
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Snapshot()); got != 8 {
		t.Errorf("snapshot length = %d, want 8", got)
	}
}

// TestContextCarriers pins the WithTracer/WithSpan/WithMetrics round trips
// and their nil behavior.
func TestContextCarriers(t *testing.T) {
	ctx := context.Background()
	if TracerFrom(ctx) != nil || SpanFrom(ctx) != nil || MetricsFrom(ctx) != nil {
		t.Fatal("empty context should carry nothing")
	}
	// nil values do not allocate a context level.
	if WithTracer(ctx, nil) != ctx || WithSpan(ctx, nil) != ctx || WithMetrics(ctx, nil) != ctx {
		t.Fatal("nil carriers must return the context unchanged")
	}
	tr := NewTracer(&bytes.Buffer{})
	sp := tr.Start("root", nil)
	reg := NewRegistry()
	ctx = WithMetrics(WithSpan(WithTracer(ctx, tr), sp), reg)
	if TracerFrom(ctx) != tr || SpanFrom(ctx) != sp || MetricsFrom(ctx) != reg {
		t.Fatal("context carriers did not round-trip")
	}
	sp.End()
}

// TestHistogramExemplar pins exemplar retention and its Prometheus
// rendering (OpenMetrics "# {trace_id=...}" suffix on the bucket line).
func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req_ns", "request latency")
	h.ObserveExemplar(100, "t-1")
	h.ObserveExemplar(120, "t-2") // same bucket: last writer wins
	h.Observe(1 << 20)            // no exemplar for this bucket
	if ex := h.ExemplarOf(100); ex == nil || ex.TraceID != "t-2" || ex.Value != 120 {
		t.Fatalf("ExemplarOf(100) = %+v", ex)
	}
	if ex := h.ExemplarOf(1 << 20); ex != nil {
		t.Fatalf("ExemplarOf(1<<20) = %+v, want nil", ex)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# {trace_id="t-2"} 120`) {
		t.Errorf("prometheus output missing exemplar:\n%s", out)
	}
	if strings.Contains(out, "t-1") {
		t.Errorf("overwritten exemplar leaked into output:\n%s", out)
	}
	// Exemplar-free histograms keep the plain shape.
	if strings.Contains(out, `le="2097152"} 1 #`) {
		t.Errorf("unexpected exemplar on plain bucket:\n%s", out)
	}
}
