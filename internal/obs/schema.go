package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SpanRecord is one reconstructed span of a parsed trace.
type SpanRecord struct {
	ID     int64
	Parent int64 // 0 for root spans
	Name   string
	Start  int64 // monotonic ns
	End    int64
	// TraceID is the correlation ID stamped on the begin event when the
	// tracer carries one (see Tracer.SetTraceID); empty otherwise.
	TraceID string
	Attrs   map[string]any
}

// Dur is the span's duration in nanoseconds.
func (s SpanRecord) Dur() int64 { return s.End - s.Start }

// ParseTrace reads a JSONL trace and reconstructs its spans, enforcing the
// schema along the way:
//
//   - every line is a JSON object with ev ∈ {"b","e"}, id ≥ 1, t ≥ 0;
//   - timestamps are non-decreasing across the file;
//   - "b" events carry a non-empty name, a fresh id, and a parent that is 0
//     or a previously started span;
//   - "e" events close a span that was started and not yet ended;
//   - at EOF every started span has ended.
//
// The returned spans are sorted by ID (= start order).
func ParseTrace(r io.Reader) ([]SpanRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	open := map[int64]*SpanRecord{}
	done := map[int64]*SpanRecord{}
	var order []int64
	var lastT int64
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev traceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("trace line %d: invalid JSON: %w", line, err)
		}
		if ev.ID < 1 {
			return nil, fmt.Errorf("trace line %d: id %d < 1", line, ev.ID)
		}
		if ev.T < 0 {
			return nil, fmt.Errorf("trace line %d: negative timestamp %d", line, ev.T)
		}
		if ev.T < lastT {
			return nil, fmt.Errorf("trace line %d: timestamp %d decreases (previous %d)", line, ev.T, lastT)
		}
		lastT = ev.T
		switch ev.Ev {
		case "b":
			if ev.Name == "" {
				return nil, fmt.Errorf("trace line %d: span %d has no name", line, ev.ID)
			}
			if _, ok := open[ev.ID]; ok {
				return nil, fmt.Errorf("trace line %d: span %d started twice", line, ev.ID)
			}
			if _, ok := done[ev.ID]; ok {
				return nil, fmt.Errorf("trace line %d: span %d restarted after end", line, ev.ID)
			}
			if ev.Parent != 0 {
				_, inOpen := open[ev.Parent]
				_, inDone := done[ev.Parent]
				if !inOpen && !inDone {
					return nil, fmt.Errorf("trace line %d: span %d has unknown parent %d", line, ev.ID, ev.Parent)
				}
			}
			open[ev.ID] = &SpanRecord{ID: ev.ID, Parent: ev.Parent, Name: ev.Name, Start: ev.T, TraceID: ev.TID}
			order = append(order, ev.ID)
		case "e":
			s, ok := open[ev.ID]
			if !ok {
				return nil, fmt.Errorf("trace line %d: end of unknown or already-ended span %d", line, ev.ID)
			}
			s.End = ev.T
			s.Attrs = ev.Attrs
			delete(open, ev.ID)
			done[ev.ID] = s
		default:
			return nil, fmt.Errorf("trace line %d: unknown event kind %q", line, ev.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(open) > 0 {
		ids := make([]int64, 0, len(open))
		for id := range open {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return nil, fmt.Errorf("trace: %d span(s) never ended (first: %d %q)", len(open), ids[0], open[ids[0]].Name)
	}
	out := make([]SpanRecord, 0, len(order))
	for _, id := range order {
		out = append(out, *done[id])
	}
	return out, nil
}

// ValidateTrace checks a JSONL trace against the schema (see ParseTrace).
func ValidateTrace(r io.Reader) error {
	_, err := ParseTrace(r)
	return err
}
