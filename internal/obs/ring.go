package obs

import "sync"

// Ring is a fixed-capacity, race-safe ring buffer keeping the most recent
// entries. The server's slow-request capture uses it: an always-on recorder
// must be bounded, and the newest incidents are the interesting ones.
type Ring[T any] struct {
	mu    sync.Mutex
	buf   []T
	next  int // index of the slot the next Add writes
	total int64
}

// NewRing returns a ring keeping the last n entries (n < 1 is treated
// as 1).
func NewRing[T any](n int) *Ring[T] {
	if n < 1 {
		n = 1
	}
	return &Ring[T]{buf: make([]T, 0, n)}
}

// Add appends an entry, evicting the oldest when full. Nil-safe.
func (r *Ring[T]) Add(v T) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.next] = v
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Snapshot returns the retained entries, newest first. Nil-safe.
func (r *Ring[T]) Snapshot() []T {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, 0, len(r.buf))
	// Walk backwards from the most recently written slot.
	for i := 0; i < len(r.buf); i++ {
		out = append(out, r.buf[((r.next-1-i)+len(r.buf)*2)%len(r.buf)])
	}
	return out
}

// Total returns the number of entries ever added (retained or evicted).
// Nil-safe.
func (r *Ring[T]) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
