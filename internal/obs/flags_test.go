package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFlagsRegisterSpelling(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	f := RegisterFlags(fs)
	f.RegisterRunFlags(fs)
	for _, name := range []string{
		"j", "timeout", "trace-out", "metrics-addr", "metrics-out",
		"pprof-addr", "cpuprofile", "memprofile",
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if err := fs.Parse([]string{"-j", "4", "-timeout", "2s", "-trace-out", "x.jsonl"}); err != nil {
		t.Fatal(err)
	}
	if f.Workers != 4 || f.Timeout != 2*time.Second || f.TraceOut != "x.jsonl" {
		t.Errorf("parsed flags wrong: %+v", f)
	}
}

func TestSessionLifecycle(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		TraceOut:   filepath.Join(dir, "t.jsonl"),
		MetricsOut: filepath.Join(dir, "m.json"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
	}
	s, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tracer == nil || s.Metrics == nil {
		t.Fatal("session missing tracer or metrics")
	}
	sp := s.Tracer.Start("run", nil)
	s.Metrics.Counter("c_total", "").Add(3)
	sp.End()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	tf, err := os.Open(f.TraceOut)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if err := ValidateTrace(tf); err != nil {
		t.Errorf("emitted trace invalid: %v", err)
	}
	for _, p := range []string{f.MetricsOut, f.MemProfile} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("%s missing or empty (err=%v)", p, err)
		}
	}
}

func TestSessionZeroFlags(t *testing.T) {
	s, err := (&Flags{}).Open()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tracer != nil || s.Metrics != nil {
		t.Error("zero flags should leave observability disabled")
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
}
