package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("paramra_test_total", "a counter").Add(42)
	r.Gauge("paramra_test_depth", "a gauge").Set(7)
	h := r.Histogram("paramra_test_ns", "a histogram")
	h.Observe(1) // bucket le="2"
	h.Observe(3) // bucket le="4"
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE paramra_test_total counter",
		"paramra_test_total 42",
		"# TYPE paramra_test_depth gauge",
		"paramra_test_depth 7",
		"# TYPE paramra_test_ns histogram",
		`paramra_test_ns_bucket{le="2"} 1`,
		`paramra_test_ns_bucket{le="4"} 3`,
		`paramra_test_ns_bucket{le="+Inf"} 3`,
		"paramra_test_ns_sum 7",
		"paramra_test_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryGetOrCreateAndNil(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c", "") != r.Counter("c", "") {
		t.Error("Counter not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()

	var nilReg *Registry
	nilReg.Counter("x", "").Inc()
	nilReg.Gauge("x", "").Set(1)
	nilReg.Histogram("x", "").Observe(1)
	if nilReg.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
	if err := nilReg.WritePrometheus(io.Discard); err != nil {
		t.Error(err)
	}

	r.Gauge("c", "") // same name, different kind: panics
}

// TestRegistryRace hammers one registry from 8 goroutines — counters,
// gauges, histograms, and concurrent exposition — under the race detector.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("race_total", "")
			ga := r.Gauge("race_depth", "")
			h := r.Histogram("race_ns", "")
			for i := 0; i < iters; i++ {
				c.Inc()
				ga.Set(int64(i))
				ga.Max(int64(i * g))
				h.Observe(int64(i % 1024))
				// Interleave get-or-create of a fresh name with exposition.
				r.Counter(fmt.Sprintf("race_g%d_total", g), "").Add(1)
				if i%256 == 0 {
					_ = r.WritePrometheus(io.Discard)
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("race_total", "").Value(); got != goroutines*iters {
		t.Errorf("race_total = %d, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("race_ns", "").Count(); got != goroutines*iters {
		t.Errorf("race_ns count = %d, want %d", got, goroutines*iters)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)    // bucket 0 (le="1")
	h.Observe(-5)   // bucket 0
	h.Observe(1)    // le="2"
	h.Observe(1024) // le="2048"
	if h.Count() != 4 || h.Sum() != 1020 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	r := NewRegistry()
	rh := r.Histogram("h", "")
	rh.Observe(0)
	rh.Observe(1024)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	for _, want := range []string{`h_bucket{le="1"} 1`, `h_bucket{le="2048"} 2`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestServeMetricsEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "").Add(5)
	stop, addr, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "served_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Errorf("/metrics.json not JSON: %v", err)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "paramra") {
		t.Errorf("/debug/vars missing paramra expvar:\n%s", body)
	}
}

func TestServePprof(t *testing.T) {
	stop, addr, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}
