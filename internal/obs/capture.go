package obs

import (
	"bytes"
	"encoding/json"
	"sync"
)

// lockedBuffer is an io.Writer safe to read back after concurrent writes:
// the tracer's buffered writer flushes into it under this mutex, and
// Capture.Spans snapshots it under the same mutex.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) snapshot() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.b.Bytes()...)
}

// Capture is a self-contained in-memory trace for one logical operation —
// one HTTP request, one fuzz seed, one experiment. Each capture owns a
// private buffer, so any number of captures can record concurrently without
// ever interleaving JSONL events from different operations in one stream
// (the failure mode of sharing a single file-backed tracer across
// requests). When the operation is done, Spans reconstructs the span tree.
type Capture struct {
	// Tracer records this capture's spans; pass it (or a root span started
	// on it) down the pipeline via WithTracer/WithSpan.
	Tracer *Tracer

	buf *lockedBuffer
}

// NewCapture starts an in-memory capture whose spans are stamped with the
// given trace ID (empty = no stamping).
func NewCapture(traceID string) *Capture {
	buf := &lockedBuffer{}
	t := NewTracer(buf)
	t.SetTraceID(traceID)
	return &Capture{Tracer: t, buf: buf}
}

// Bytes flushes the tracer and returns the raw JSONL trace recorded so far.
func (c *Capture) Bytes() ([]byte, error) {
	if err := c.Tracer.Flush(); err != nil {
		return nil, err
	}
	return c.buf.snapshot(), nil
}

// Spans flushes the tracer and parses the captured trace, enforcing the
// schema (every span ended, timestamps monotone — see ParseTrace). Call it
// after the traced operation has finished.
func (c *Capture) Spans() ([]SpanRecord, error) {
	data, err := c.Bytes()
	if err != nil {
		return nil, err
	}
	return ParseTrace(bytes.NewReader(data))
}

// TreeNode is one span of a reconstructed span tree, the JSON shape served
// in trace-enabled responses and /debug/slow entries. Durations are
// nanoseconds relative to the capture's start.
type TreeNode struct {
	Name     string         `json:"name"`
	StartNs  int64          `json:"startNs"`
	DurNs    int64          `json:"durNs"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*TreeNode    `json:"children,omitempty"`
}

// BuildTree nests parsed spans into parent→child trees, preserving start
// order among siblings. Roots (parent 0, or an unknown parent) come back in
// start order.
func BuildTree(spans []SpanRecord) []*TreeNode {
	nodes := make(map[int64]*TreeNode, len(spans))
	var roots []*TreeNode
	for _, s := range spans {
		nodes[s.ID] = &TreeNode{Name: s.Name, StartNs: s.Start, DurNs: s.Dur(), Attrs: s.Attrs}
	}
	for _, s := range spans { // spans are in start (= ID) order from ParseTrace
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// Tree flushes, parses and nests the capture into span trees.
func (c *Capture) Tree() ([]*TreeNode, error) {
	spans, err := c.Spans()
	if err != nil {
		return nil, err
	}
	return BuildTree(spans), nil
}

// WalkTree calls f for every node of the trees, parents before children.
func WalkTree(roots []*TreeNode, f func(*TreeNode)) {
	for _, n := range roots {
		f(n)
		WalkTree(n.Children, f)
	}
}

// MarshalTree renders span trees as deterministic JSON (attrs keys sorted
// by encoding/json).
func MarshalTree(roots []*TreeNode) ([]byte, error) {
	return json.Marshal(roots)
}
