// Package obs is the repository's observability layer: a hierarchical
// phase-span tracer emitting JSONL events, a race-safe metrics registry
// with Prometheus text, expvar and JSON exposition, and profiling hooks.
// It is stdlib-only and built around a strict nil fast path: every method
// on a nil *Tracer, *Span or *Registry is a no-op behind a single pointer
// check, so fully disabled observability costs one predictable branch per
// call site.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// traceEvent is one JSONL line of a trace. "b" begins a span, "e" ends it.
// Timestamps are monotonic nanoseconds since the tracer was created, read
// under the writer lock, so the event stream is non-decreasing in T.
type traceEvent struct {
	Ev     string         `json:"ev"`             // "b" | "e"
	ID     int64          `json:"id"`             // span id, 1-based per tracer
	Parent int64          `json:"par,omitempty"`  // parent span id (0 = root)
	Name   string         `json:"name,omitempty"` // span name ("b" only)
	T      int64          `json:"t"`              // monotonic ns since tracer start
	TID    string         `json:"tid,omitempty"`  // trace ID ("b" only, when set)
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Tracer records hierarchical phase spans as JSONL events. Span IDs are a
// per-tracer sequence, so any code path that starts spans in a fixed order
// (the pipeline phases, the layered engine's sequential layer loop) gets
// identical IDs on every run and at every worker count. The tracer is safe
// for concurrent use; individual spans are too (attrs are mutex-guarded).
type Tracer struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	next int64
	now  func() int64
	tid  string
	err  error // first write/encode error, sticky
}

// NewTracer writes JSONL trace events to w, timestamped with monotonic
// nanoseconds since this call.
func NewTracer(w io.Writer) *Tracer {
	start := time.Now()
	return NewTracerClock(w, func() int64 { return int64(time.Since(start)) })
}

// NewTracerClock is NewTracer with an injected clock (monotonic,
// nanoseconds). Tests use a deterministic counter clock to produce
// byte-identical golden traces.
func NewTracerClock(w io.Writer, now func() int64) *Tracer {
	return &Tracer{bw: bufio.NewWriter(w), now: now}
}

// SetTraceID stamps every subsequently started span with the given trace ID
// (the "tid" field of its begin event). Request-scoped tracers set it once,
// before any span starts, so every span of the request's tree carries the
// same correlation ID that the access log and the response envelope show.
// Nil-safe.
func (t *Tracer) SetTraceID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tid = id
	t.mu.Unlock()
}

// TraceID returns the ID set with SetTraceID (empty otherwise). Nil-safe.
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tid
}

// emit writes one event; the clock is read under the lock so T is
// non-decreasing across the whole file.
func (t *Tracer) emit(ev traceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	ev.T = t.now()
	if ev.Ev == "b" {
		ev.TID = t.tid
	}
	data, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.bw.Write(append(data, '\n')); err != nil {
		t.err = err
	}
}

// Start begins a span. parent nil makes a root span. Nil-safe: on a nil
// tracer it returns nil, and every method of a nil *Span is a no-op.
func (t *Tracer) Start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.next++
	id := t.next
	t.mu.Unlock()
	s := &Span{t: t, id: id}
	var par int64
	if parent != nil {
		par = parent.id
	}
	t.emit(traceEvent{Ev: "b", ID: id, Parent: par, Name: name})
	return s
}

// Flush drains buffered events to the underlying writer and returns the
// first error encountered by the tracer (write, encode, or flush).
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Span is one phase of a run. End emits the "e" event carrying the attrs
// accumulated via SetAttr; a span must be ended exactly once (extra Ends
// are dropped).
type Span struct {
	t     *Tracer
	id    int64
	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Child starts a sub-span. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.Start(name, s)
}

// SetAttr attaches a key/value to the span's end event. Values must be
// JSON-encodable; keep them to counts and small strings. Nil-safe.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// End closes the span, emitting its end event. Nil-safe and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.t.emit(traceEvent{Ev: "e", ID: s.id, Attrs: attrs})
}
