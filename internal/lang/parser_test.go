package lang

import (
	"strings"
	"testing"
)

const prodConsSrc = `
# Producer-consumer from Figure 1 of the paper.
system prodcons {
  vars x y
  domain 4
  env producer
  dis consumer
}

thread producer {
  regs r
  r = load y
  assume r == 1
  store x (r + 1)
}

thread consumer {
  regs s
  store y 1
  s = load x
  assume s == 2
  assert false
}
`

func TestParseSystemProdCons(t *testing.T) {
	sys, err := ParseSystem(prodConsSrc)
	if err != nil {
		t.Fatalf("ParseSystem: %v", err)
	}
	if sys.Name != "prodcons" {
		t.Errorf("Name = %q", sys.Name)
	}
	if len(sys.Vars) != 2 || sys.Vars[0] != "x" || sys.Vars[1] != "y" {
		t.Errorf("Vars = %v", sys.Vars)
	}
	if sys.Dom != 4 {
		t.Errorf("Dom = %d", sys.Dom)
	}
	if sys.Env == nil || sys.Env.Name != "producer" {
		t.Fatalf("Env = %+v", sys.Env)
	}
	if len(sys.Dis) != 1 || sys.Dis[0].Name != "consumer" {
		t.Fatalf("Dis = %+v", sys.Dis)
	}
	if got := len(sys.Env.Regs); got != 1 {
		t.Errorf("producer regs = %v", sys.Env.Regs)
	}
	// producer body: load; assume; store
	seq, ok := sys.Env.Body.(Seq)
	if !ok || len(seq.Stmts) != 3 {
		t.Fatalf("producer body = %#v", sys.Env.Body)
	}
	if _, ok := seq.Stmts[0].(Load); !ok {
		t.Errorf("stmt0 = %T, want Load", seq.Stmts[0])
	}
	if _, ok := seq.Stmts[1].(Assume); !ok {
		t.Errorf("stmt1 = %T, want Assume", seq.Stmts[1])
	}
	st, ok := seq.Stmts[2].(Store)
	if !ok {
		t.Fatalf("stmt2 = %T, want Store", seq.Stmts[2])
	}
	if sys.VarName(st.Var) != "x" {
		t.Errorf("store var = %s, want x", sys.VarName(st.Var))
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
system s { vars x; domain 3; env worker }
thread worker {
  regs r
  if r == 0 {
    store x 1
  } else {
    store x 2
  }
  while r != 2 {
    r = load x
  }
  choice {
    skip
  } or {
    assert false
  } or {
    r = r + 1
  }
  loop {
    r = load x
  }
  cas x 0 1
}
`
	sys, err := ParseSystem(src)
	if err != nil {
		t.Fatalf("ParseSystem: %v", err)
	}
	body, ok := sys.Env.Body.(Seq)
	if !ok || len(body.Stmts) != 5 {
		t.Fatalf("body = %#v", sys.Env.Body)
	}
	// if → Choice with 2 branches
	ifc, ok := body.Stmts[0].(Choice)
	if !ok || len(ifc.Branches) != 2 {
		t.Fatalf("if = %#v", body.Stmts[0])
	}
	// while → first-class While node
	wh, ok := body.Stmts[1].(While)
	if !ok {
		t.Fatalf("while = %#v", body.Stmts[1])
	}
	if _, ok := wh.Body.(Load); !ok {
		t.Errorf("while body = %T, want Load", wh.Body)
	}
	// choice with 3 branches
	ch, ok := body.Stmts[2].(Choice)
	if !ok || len(ch.Branches) != 3 {
		t.Fatalf("choice = %#v", body.Stmts[2])
	}
	if _, ok := body.Stmts[3].(Star); !ok {
		t.Errorf("loop = %T, want Star", body.Stmts[3])
	}
	cas, ok := body.Stmts[4].(CAS)
	if !ok {
		t.Fatalf("cas = %#v", body.Stmts[4])
	}
	if cas.Expect.Eval(nil) != 0 || cas.New.Eval(nil) != 1 {
		t.Errorf("cas operands wrong: %v %v", cas.Expect, cas.New)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, src, wantSub string
	}{
		{"missing system", "thread t { skip }", "missing system block"},
		{"unknown var", "system s { vars x; domain 2; env t }\nthread t { store y 1 }", "unknown shared variable"},
		{"shared var in expr", "system s { vars x; domain 2; env t }\nthread t { regs r; r = x }", "shared variable"},
		{"unknown reg in expr", "system s { vars x; domain 2; env t }\nthread t { assume q == 1 }", "unknown register"},
		{"env undefined", "system s { vars x; domain 2; env missing }", "not defined"},
		{"dis undefined", "system s { vars x; domain 2; dis missing }", "not defined"},
		{"duplicate thread", "system s { vars x; domain 2; env t }\nthread t { skip }\nthread t { skip }", "duplicate thread"},
		{"bad assert", "system s { vars x; domain 2; env t }\nthread t { assert true }", "assert false"},
		{"unterminated block", "system s { vars x; domain 2; env t }\nthread t { skip", "unterminated"},
		{"no vars", "system s { domain 2; env t }\nthread t { skip }", "no shared variables"},
		{"bad domain", "system s { vars x; domain 0; env t }\nthread t { skip }", "domain size"},
		{"bad char", "system s { vars x; domain 2; env t }\nthread t { skip @ }", "unexpected character"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSystem(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseSemicolonsAndComments(t *testing.T) {
	src := "system s { vars x; domain 2; env t } // trailing\nthread t { regs r; r = 1; store x r # note\n skip }"
	sys, err := ParseSystem(src)
	if err != nil {
		t.Fatalf("ParseSystem: %v", err)
	}
	seq, ok := sys.Env.Body.(Seq)
	if !ok || len(seq.Stmts) != 2 {
		t.Fatalf("body = %#v", sys.Env.Body)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{prodConsSrc, `
system s { vars a b c; domain 6; init 1; env e; dis d1; dis d2 }
thread e {
  regs r s
  loop {
    r = load a
    choice { store b (r + 1) } or { s = r * 2 - 1 } or { assume !(r == s) }
  }
}
thread d1 {
  regs t
  cas a 1 2
  t = load c
  if t >= 3 { assert false } else { store c (t + 1) }
}
thread d2 {
  skip
}
`, `
system cas_operands { vars x; domain 4; dis d }
thread d {
  regs r
  cas x (r + 1) 2
  cas x ((1 < 0) * 2) (r * r)
  cas x r 3
}
`}
	for i, src := range srcs {
		sys1, err := ParseSystem(src)
		if err != nil {
			t.Fatalf("case %d parse 1: %v", i, err)
		}
		printed := Print(sys1)
		sys2, err := ParseSystem(printed)
		if err != nil {
			t.Fatalf("case %d parse 2: %v\nprinted:\n%s", i, err, printed)
		}
		printed2 := Print(sys2)
		if printed != printed2 {
			t.Errorf("case %d: print/parse/print not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", i, printed, printed2)
		}
	}
}

func TestPrintCASOperandParens(t *testing.T) {
	// cas operands are parsed with parsePrimary (no infix operators), so the
	// printer must parenthesize compound operands and may leave primaries
	// bare. Pin the exact rendering, not just the round-trip property.
	sys := MustParseSystem("system s { vars x; domain 4; dis d }\nthread d { regs r; cas x (r + 1) 2; cas x r (0 - 1) }")
	out := Print(sys)
	for _, want := range []string{"cas x (r + 1) 2\n", "cas x r (0 - 1)\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed system missing %q:\n%s", want, out)
		}
	}
}

func TestParseProgramStandalone(t *testing.T) {
	prog, err := ParseProgram("thread w {\n regs r\n r = load v\n store v (r+1)\n}", []string{"v"})
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	if prog.Name != "w" {
		t.Errorf("Name = %q", prog.Name)
	}
	if _, err := ParseProgram("thread w { skip }\nextra", []string{"v"}); err == nil {
		t.Error("expected trailing-input error")
	}
}

func TestMustParseSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustParseSystem("not a system")
}
