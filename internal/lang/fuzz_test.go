package lang

import (
	"strings"
	"testing"
)

// FuzzParseSystem checks the frontend never panics and that accepted
// systems survive the print/parse round trip.
func FuzzParseSystem(f *testing.F) {
	seeds := []string{
		prodConsSrc,
		"system s { vars x; domain 2; env t }\nthread t { skip }",
		"system s { vars x y z; domain 7; init 3; env a; dis b }\nthread a { loop { choice { store x 1 } or { cas y 0 1 } } }\nthread b { regs r; while r != 2 { r = load z } }",
		"system s { }",
		"thread t {",
		"system s { vars x; domain 2; env t }\nthread t { assume ((1)) && !0 || 2 < 3 }",
		"system s{vars x;domain 2;env t}thread t{r=load x;store x (r*r-1)}",
		// Shrunk FuzzPrintParseRoundTrip repro: cas operands are read with
		// parsePrimary, so compound operands must re-print parenthesized
		// (`cas x r + 1 2` is not re-parseable).
		"system s { vars x; domain 4; dis t }\nthread t { regs r; cas x (r + 1) 2 }",
		"system s { vars x; domain 4; dis t }\nthread t { regs r; cas x ((1 < 0) * 2) (r * r) }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sys, err := ParseSystem(src)
		if err != nil {
			return
		}
		printed := Print(sys)
		sys2, err := ParseSystem(printed)
		if err != nil {
			t.Fatalf("accepted system does not re-parse: %v\noriginal:\n%s\nprinted:\n%s", err, src, printed)
		}
		if p2 := Print(sys2); p2 != printed {
			t.Fatalf("print not a fixpoint:\n%s\nvs\n%s", printed, p2)
		}
		// Compilation must succeed for every accepted program.
		for _, p := range sys.Threads() {
			g := Compile(p)
			if g.NumNodes < 1 {
				t.Fatal("empty CFG")
			}
			g.Acyclic()
			g.CASFree()
		}
	})
}

// FuzzAssertsToGoal checks the §4.1 transformation on arbitrary accepted
// systems: result validates, has one extra variable, and no asserts remain.
func FuzzAssertsToGoal(f *testing.F) {
	f.Add(prodConsSrc)
	f.Add("system s { vars goal; domain 2; env t }\nthread t { assert false }")
	f.Fuzz(func(t *testing.T, src string) {
		sys, err := ParseSystem(src)
		if err != nil {
			return
		}
		out, goalVar, goalVal := AssertsToGoal(sys)
		if err := out.Validate(); err != nil {
			t.Fatalf("transformed system invalid: %v", err)
		}
		if len(out.Vars) != len(sys.Vars)+1 {
			t.Fatalf("expected one fresh variable, got %v -> %v", sys.Vars, out.Vars)
		}
		if int(goalVar) != len(out.Vars)-1 || goalVal != 1 {
			t.Fatalf("unexpected goal (%d, %d)", goalVar, goalVal)
		}
		for _, p := range out.Threads() {
			if Compile(p).HasAssert() {
				t.Fatal("assert survived the transformation")
			}
		}
	})
}

func TestAssertsToGoalFreshNameAvoidsClash(t *testing.T) {
	sys := MustParseSystem("system s { vars goal goal_; domain 2; env t }\nthread t { assert false }")
	out, v, _ := AssertsToGoal(sys)
	if out.Vars[v] != "goal__" {
		t.Errorf("fresh name = %q", out.Vars[v])
	}
}

func TestAssertsToGoalReplacesNested(t *testing.T) {
	sys := MustParseSystem(`
system s { vars x; domain 2; env t }
thread t {
  loop {
    choice { assert false } or { store x 1; assert false }
  }
}
`)
	out, v, d := AssertsToGoal(sys)
	g := Compile(out.Env)
	if g.HasAssert() {
		t.Fatal("nested asserts survived")
	}
	// The transformation must produce stores of (v, d).
	found := false
	for _, edges := range g.Out {
		for _, e := range edges {
			if e.Op.Kind == OpStore && e.Op.Var == v {
				if c, ok := e.Op.E.(ConstExpr); ok && c.V == d {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("goal store missing")
	}
	if !strings.Contains(Print(out), "store goal 1") {
		t.Errorf("printed form missing goal store:\n%s", Print(out))
	}
}
