package lang

import "fmt"

// Pos is a source position (1-based line and column) in the concrete syntax
// a statement was parsed from. The zero Pos marks statements constructed
// programmatically (builders, unrolling, slicing); diagnostics render it
// as "-".
type Pos struct {
	Line, Col int
}

// IsValid reports whether the position carries source information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as "line:col" (or "-" for the zero Pos).
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.Col <= 0 {
		return fmt.Sprintf("%d", p.Line)
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// SyntaxError is a lexer or parser error carrying its source position, so
// callers can prefix the file name and report "file:line:col: msg".
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	if !e.Pos.IsValid() {
		return e.Msg
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// synErrf builds a positioned syntax error.
func synErrf(pos Pos, format string, args ...interface{}) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
