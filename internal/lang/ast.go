// Package lang implements the Com while-language of Krishna et al.,
// "Parameterized Verification under Release Acquire is PSPACE-complete"
// (PODC 2022), §1:
//
//	c ::= skip | assume e(r̄) | assert false | r := e(r̄)
//	    | c; c | c ⊕ c | c* | r := x | x := r | cas(x, r1, r2)
//
// Programs compute over thread-local registers and interact with shared
// variables via loads, stores, and atomic compare-and-swap. The package
// provides the AST, a concrete syntax with lexer/parser and printer,
// compilation to control-flow graphs, loop unrolling, and the syntactic
// classifications used by the paper (acyc, nocas).
package lang

import (
	"fmt"
	"strings"
)

// Val is an element of the finite data domain Dom. The paper works with an
// arbitrary finite domain; we use a prefix {0, …, n-1} of the integers.
type Val int

// RegID indexes a thread-local register within a Program's register table.
type RegID int

// VarID indexes a shared variable within a System's variable table.
type VarID int

// Stmt is a statement of Com. The concrete statement types below correspond
// one-to-one to the grammar productions; If and While are provided as sugar
// by the parser and builder helpers (they desugar to Choice/Star/Assume).
type Stmt interface {
	isStmt()
	// Position returns the statement's source position (the zero Pos for
	// statements constructed programmatically).
	Position() Pos
	// writeTo pretty-prints the statement at the given indentation into b,
	// using the register table regs and variable table vars for names.
	writeTo(b *strings.Builder, indent int, regs, vars []string)
}

// Skip is the no-op statement.
type Skip struct {
	Pos Pos
}

// Assume blocks unless Cond evaluates to a non-zero value.
type Assume struct {
	Cond Expr
	Pos  Pos
}

// AssertFail is the `assert false` statement; reaching it is the safety
// violation the verification problem asks about.
type AssertFail struct {
	Pos Pos
}

// Assign is the local assignment r := e(r̄).
type Assign struct {
	Reg RegID
	E   Expr
	Pos Pos
}

// Seq is sequential composition c1; c2; …; cn.
type Seq struct {
	Stmts []Stmt
	Pos   Pos
}

// Choice is non-deterministic choice c1 ⊕ c2 ⊕ … ⊕ cn.
type Choice struct {
	Branches []Stmt
	Pos      Pos
}

// Star is iteration c*: execute the body any number of times (possibly zero).
type Star struct {
	Body Stmt
	Pos  Pos
}

// While is the guarded loop `while cond { body }`. It is compiled with both
// guard edges leaving the loop head directly (enter on cond, exit on
// ¬cond), so a waiting thread never commits to leaving the loop before the
// exit guard holds — unlike the naive desugaring (assume cond; body)*;
// assume ¬cond, which introduces a stuck intermediate state.
type While struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// Load is the shared-memory read r := x.
type Load struct {
	Reg RegID
	Var VarID
	Pos Pos
}

// Store is the shared-memory write x := e. The paper's grammar writes x := r;
// permitting a register expression is a conservative generalization (the
// value is still computed thread-locally before the store).
type Store struct {
	Var VarID
	E   Expr
	Pos Pos
}

// CAS is the atomic compare-and-swap cas(x, e1, e2): atomically load x,
// block unless the value equals e1, then store e2. The load and store
// timestamps are adjacent (nothing intervenes in modification order).
type CAS struct {
	Var         VarID
	Expect, New Expr
	Pos         Pos
}

func (Skip) isStmt()       {}
func (Assume) isStmt()     {}
func (AssertFail) isStmt() {}
func (Assign) isStmt()     {}
func (Seq) isStmt()        {}
func (Choice) isStmt()     {}
func (Star) isStmt()       {}
func (While) isStmt()      {}
func (Load) isStmt()       {}
func (Store) isStmt()      {}
func (CAS) isStmt()        {}

// Position implements Stmt.
func (s Skip) Position() Pos       { return s.Pos }
func (s Assume) Position() Pos     { return s.Pos }
func (s AssertFail) Position() Pos { return s.Pos }
func (s Assign) Position() Pos     { return s.Pos }
func (s Seq) Position() Pos        { return s.Pos }
func (s Choice) Position() Pos     { return s.Pos }
func (s Star) Position() Pos       { return s.Pos }
func (s While) Position() Pos      { return s.Pos }
func (s Load) Position() Pos       { return s.Pos }
func (s Store) Position() Pos      { return s.Pos }
func (s CAS) Position() Pos        { return s.Pos }

// WithPos returns st with its source position set to pos (the statement's
// own position only; children are unaffected).
func WithPos(st Stmt, pos Pos) Stmt {
	switch st := st.(type) {
	case Skip:
		st.Pos = pos
		return st
	case Assume:
		st.Pos = pos
		return st
	case AssertFail:
		st.Pos = pos
		return st
	case Assign:
		st.Pos = pos
		return st
	case Seq:
		st.Pos = pos
		return st
	case Choice:
		st.Pos = pos
		return st
	case Star:
		st.Pos = pos
		return st
	case While:
		st.Pos = pos
		return st
	case Load:
		st.Pos = pos
		return st
	case Store:
		st.Pos = pos
		return st
	case CAS:
		st.Pos = pos
		return st
	default:
		return st
	}
}

// Program is a single thread's code together with its register table.
// Register names are local to the program; RegID values index Regs.
type Program struct {
	Name string
	Regs []string
	Body Stmt
}

// NumRegs returns the number of registers the program declares.
func (p *Program) NumRegs() int { return len(p.Regs) }

// RegName returns the name of register r, or a synthetic name if out of range.
func (p *Program) RegName(r RegID) string {
	if int(r) >= 0 && int(r) < len(p.Regs) {
		return p.Regs[r]
	}
	return fmt.Sprintf("r#%d", int(r))
}

// System is a parameterized system: a finite set of shared variables over a
// finite data domain, one program replicated across arbitrarily many env
// threads, and a fixed list of distinguished (dis) thread programs.
type System struct {
	Name string
	// Vars is the shared-variable table; VarID values index it.
	Vars []string
	// Dom is the size of the data domain {0, …, Dom-1}.
	Dom int
	// Init is the initial value of every shared variable (and register).
	Init Val
	// Env is the program run by the unboundedly many environment threads.
	// It may be nil for systems consisting only of dis threads.
	Env *Program
	// Dis are the distinguished threads' programs, in order.
	Dis []*Program
}

// VarName returns the name of shared variable v.
func (s *System) VarName(v VarID) string {
	if int(v) >= 0 && int(v) < len(s.Vars) {
		return s.Vars[v]
	}
	return fmt.Sprintf("x#%d", int(v))
}

// VarByName returns the VarID of the named shared variable.
func (s *System) VarByName(name string) (VarID, bool) {
	for i, v := range s.Vars {
		if v == name {
			return VarID(i), true
		}
	}
	return 0, false
}

// Threads returns all programs of the system: Env first (if present),
// followed by the dis programs.
func (s *System) Threads() []*Program {
	var out []*Program
	if s.Env != nil {
		out = append(out, s.Env)
	}
	return append(out, s.Dis...)
}

// Validate checks internal consistency: non-empty variable table, positive
// domain, in-range register and variable references, and in-domain constants.
func (s *System) Validate() error {
	if len(s.Vars) == 0 {
		return fmt.Errorf("system %s: no shared variables", s.Name)
	}
	if s.Dom < 1 {
		return fmt.Errorf("system %s: domain size %d < 1", s.Name, s.Dom)
	}
	if s.Init < 0 || int(s.Init) >= s.Dom {
		return fmt.Errorf("system %s: initial value %d outside domain [0,%d)", s.Name, s.Init, s.Dom)
	}
	seen := make(map[string]bool, len(s.Vars))
	for _, v := range s.Vars {
		if seen[v] {
			return fmt.Errorf("system %s: duplicate shared variable %q", s.Name, v)
		}
		seen[v] = true
	}
	// Distinct programs must have distinct names (a single program may be
	// referenced by several clauses); Print relies on this.
	byName := map[string]*Program{}
	for _, p := range s.Threads() {
		if p == nil {
			return fmt.Errorf("system %s: nil program", s.Name)
		}
		if prev, ok := byName[p.Name]; ok && prev != p {
			return fmt.Errorf("system %s: two distinct programs named %q", s.Name, p.Name)
		}
		byName[p.Name] = p
		if err := s.validateProgram(p); err != nil {
			return err
		}
	}
	return nil
}

func (s *System) validateProgram(p *Program) error {
	if p == nil {
		return fmt.Errorf("system %s: nil program", s.Name)
	}
	seen := make(map[string]bool, len(p.Regs))
	for _, r := range p.Regs {
		if seen[r] {
			return fmt.Errorf("program %s: duplicate register %q", p.Name, r)
		}
		seen[r] = true
	}
	return s.validateStmt(p, p.Body)
}

func (s *System) validateStmt(p *Program, st Stmt) error {
	checkReg := func(r RegID) error {
		if int(r) < 0 || int(r) >= len(p.Regs) {
			return fmt.Errorf("program %s: register id %d out of range", p.Name, int(r))
		}
		return nil
	}
	checkVar := func(v VarID) error {
		if int(v) < 0 || int(v) >= len(s.Vars) {
			return fmt.Errorf("program %s: shared variable id %d out of range", p.Name, int(v))
		}
		return nil
	}
	checkExpr := func(e Expr) error {
		if e == nil {
			return fmt.Errorf("program %s: nil expression", p.Name)
		}
		for _, r := range exprRegs(e) {
			if err := checkReg(r); err != nil {
				return err
			}
		}
		return nil
	}
	switch st := st.(type) {
	case Skip, AssertFail:
		return nil
	case Assume:
		return checkExpr(st.Cond)
	case Assign:
		if err := checkReg(st.Reg); err != nil {
			return err
		}
		return checkExpr(st.E)
	case Seq:
		for _, c := range st.Stmts {
			if err := s.validateStmt(p, c); err != nil {
				return err
			}
		}
		return nil
	case Choice:
		if len(st.Branches) == 0 {
			return fmt.Errorf("program %s: empty choice", p.Name)
		}
		for _, c := range st.Branches {
			if err := s.validateStmt(p, c); err != nil {
				return err
			}
		}
		return nil
	case Star:
		return s.validateStmt(p, st.Body)
	case While:
		if err := checkExpr(st.Cond); err != nil {
			return err
		}
		return s.validateStmt(p, st.Body)
	case Load:
		if err := checkReg(st.Reg); err != nil {
			return err
		}
		return checkVar(st.Var)
	case Store:
		if err := checkVar(st.Var); err != nil {
			return err
		}
		return checkExpr(st.E)
	case CAS:
		if err := checkVar(st.Var); err != nil {
			return err
		}
		if err := checkExpr(st.Expect); err != nil {
			return err
		}
		return checkExpr(st.New)
	case nil:
		return fmt.Errorf("program %s: nil statement", p.Name)
	default:
		return fmt.Errorf("program %s: unknown statement type %T", p.Name, st)
	}
}
