package lang

import (
	"strings"
	"testing"
)

func TestProgramHelpers(t *testing.T) {
	p := &Program{Name: "p", Regs: []string{"a", "b"}}
	if p.NumRegs() != 2 {
		t.Errorf("NumRegs = %d", p.NumRegs())
	}
	if p.RegName(1) != "b" || p.RegName(7) != "r#7" {
		t.Errorf("RegName wrong: %q %q", p.RegName(1), p.RegName(7))
	}
	sys := &System{Vars: []string{"x"}}
	if sys.VarName(0) != "x" || sys.VarName(9) != "x#9" {
		t.Errorf("VarName wrong")
	}
	if _, ok := sys.VarByName("x"); !ok {
		t.Error("VarByName miss")
	}
	if _, ok := sys.VarByName("zz"); ok {
		t.Error("VarByName false hit")
	}
}

func TestOpSilentAndString(t *testing.T) {
	regs := []string{"r"}
	vars := []string{"x"}
	cases := []struct {
		op     Op
		silent bool
		want   string
	}{
		{Op{Kind: OpNop}, true, "nop"},
		{Op{Kind: OpAssume, E: Eq(Reg(0), Num(1))}, true, "assume r == 1"},
		{Op{Kind: OpAssertFail}, true, "assert false"},
		{Op{Kind: OpAssign, Reg: 0, E: Num(2)}, true, "r = 2"},
		{Op{Kind: OpLoad, Reg: 0, Var: 0}, false, "r = load x"},
		{Op{Kind: OpStore, Var: 0, E: Num(1)}, false, "store x 1"},
		{Op{Kind: OpCASOp, Var: 0, E: Num(0), E2: Num(1)}, false, "cas x 0 1"},
	}
	for _, tc := range cases {
		if got := tc.op.Silent(); got != tc.silent {
			t.Errorf("%s: Silent = %v", tc.want, got)
		}
		if got := tc.op.String(regs, vars); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestCFGString(t *testing.T) {
	sys := MustParseSystem(`
system s { vars x; domain 2; env t }
thread t { regs r; r = load x; store x 1 }
`)
	g := Compile(sys.Env)
	out := g.String()
	for _, want := range []string{"cfg t:", "r = load", "store"} {
		if !strings.Contains(out, want) {
			t.Errorf("CFG rendering missing %q:\n%s", want, out)
		}
	}
}

func TestStmtString(t *testing.T) {
	st := SeqOf(Store{Var: 0, E: Num(1)}, Assume{Cond: Eq(Reg(0), Num(0))})
	out := StmtString(st, []string{"r"}, []string{"x"})
	if !strings.Contains(out, "store x 1") || !strings.Contains(out, "assume r == 0") {
		t.Errorf("StmtString = %q", out)
	}
}

func TestValidateStatementErrors(t *testing.T) {
	sys := &System{Name: "s", Vars: []string{"x"}, Dom: 2}
	cases := []struct {
		name string
		body Stmt
	}{
		{"bad reg assign", Assign{Reg: 5, E: Num(0)}},
		{"bad var load", Load{Reg: 0, Var: 9}},
		{"bad var store", Store{Var: 9, E: Num(0)}},
		{"nil expr assume", Assume{Cond: nil}},
		{"bad reg in expr", Assign{Reg: 0, E: Reg(7)}},
		{"empty choice", Choice{}},
		{"nil stmt", nil},
		{"bad cas var", CAS{Var: 9, Expect: Num(0), New: Num(1)}},
		{"bad cas expr", CAS{Var: 0, Expect: Reg(9), New: Num(1)}},
		{"bad while cond", While{Cond: Reg(9), Body: Skip{}}},
		{"bad star body", Star{Body: Load{Reg: 9, Var: 0}}},
		{"bad seq member", Seq{Stmts: []Stmt{Skip{}, Load{Reg: 9, Var: 0}}}},
	}
	for _, tc := range cases {
		sys.Env = &Program{Name: "t", Regs: []string{"r"}, Body: tc.body}
		if err := sys.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Duplicate register names rejected.
	sys.Env = &Program{Name: "t", Regs: []string{"r", "r"}, Body: Skip{}}
	if err := sys.Validate(); err == nil {
		t.Error("duplicate registers accepted")
	}
}

func TestExprEvalUnknownOps(t *testing.T) {
	// Defensive zero results for malformed operators.
	if got := (UnExpr{Op: UnOp(99), E: Num(1)}).Eval(nil); got != 0 {
		t.Errorf("unknown unary = %d", got)
	}
	if got := (BinExpr{Op: BinOp(99), L: Num(1), R: Num(1)}).Eval(nil); got != 0 {
		t.Errorf("unknown binary = %d", got)
	}
}
