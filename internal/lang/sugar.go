package lang

// Builder helpers for constructing Com programs in Go code. These are thin
// sugar over the AST; If and While desugar exactly as described in §1 of the
// paper ("Conditionals if and iteratives while can be derived").

// SeqOf sequences the given statements, flattening nested sequences and
// eliding skips. An empty argument list yields Skip.
func SeqOf(stmts ...Stmt) Stmt {
	flat := make([]Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch s := s.(type) {
		case nil, Skip:
			// drop
		case Seq:
			flat = append(flat, s.Stmts...)
		default:
			flat = append(flat, s)
		}
	}
	switch len(flat) {
	case 0:
		return Skip{}
	case 1:
		return flat[0]
	default:
		return Seq{Stmts: flat}
	}
}

// ChoiceOf builds the non-deterministic choice of the given branches.
func ChoiceOf(branches ...Stmt) Stmt {
	if len(branches) == 1 {
		return branches[0]
	}
	return Choice{Branches: branches}
}

// If desugars to (assume cond; then) ⊕ (assume !cond; els).
func If(cond Expr, then, els Stmt) Stmt {
	return ChoiceOf(
		SeqOf(Assume{Cond: cond}, then),
		SeqOf(Assume{Cond: Not(cond)}, els),
	)
}

// When is If without an else branch.
func When(cond Expr, then Stmt) Stmt { return If(cond, then, Skip{}) }

// Loop is the bare iteration body*.
func Loop(body Stmt) Stmt { return Star{Body: body} }

// NewProgramBuilder returns a builder for a named program.
func NewProgramBuilder(name string) *ProgramBuilder {
	return &ProgramBuilder{prog: &Program{Name: name}}
}

// ProgramBuilder incrementally declares registers and assembles a Program.
type ProgramBuilder struct {
	prog *Program
}

// Reg declares (or returns the existing) register with the given name.
func (b *ProgramBuilder) Reg(name string) RegID {
	for i, r := range b.prog.Regs {
		if r == name {
			return RegID(i)
		}
	}
	b.prog.Regs = append(b.prog.Regs, name)
	return RegID(len(b.prog.Regs) - 1)
}

// Build finalizes the program with the given body statements.
func (b *ProgramBuilder) Build(body ...Stmt) *Program {
	b.prog.Body = SeqOf(body...)
	return b.prog
}

// NewSystemBuilder returns a builder for a system with the given name and
// data-domain size.
func NewSystemBuilder(name string, dom int) *SystemBuilder {
	return &SystemBuilder{sys: &System{Name: name, Dom: dom}}
}

// SystemBuilder incrementally declares shared variables and thread programs.
type SystemBuilder struct {
	sys *System
}

// Var declares (or returns the existing) shared variable with the given name.
func (b *SystemBuilder) Var(name string) VarID {
	for i, v := range b.sys.Vars {
		if v == name {
			return VarID(i)
		}
	}
	b.sys.Vars = append(b.sys.Vars, name)
	return VarID(len(b.sys.Vars) - 1)
}

// Env sets the environment-thread program.
func (b *SystemBuilder) Env(p *Program) *SystemBuilder {
	b.sys.Env = p
	return b
}

// Dis appends a distinguished-thread program.
func (b *SystemBuilder) Dis(p *Program) *SystemBuilder {
	b.sys.Dis = append(b.sys.Dis, p)
	return b
}

// Build returns the assembled system.
func (b *SystemBuilder) Build() *System { return b.sys }
