package lang

import (
	"fmt"
	"strings"
)

// Concrete syntax printing. The output of Print/String re-parses to an
// equivalent AST (modulo If/While sugar, which desugars before printing);
// the parser tests rely on this round-trip.

func writeIndent(b *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
}

func varName(vars []string, v VarID) string {
	if int(v) >= 0 && int(v) < len(vars) {
		return vars[v]
	}
	return fmt.Sprintf("x#%d", int(v))
}

func regName(regs []string, r RegID) string {
	if int(r) >= 0 && int(r) < len(regs) {
		return regs[r]
	}
	return fmt.Sprintf("r#%d", int(r))
}

func (Skip) writeTo(b *strings.Builder, indent int, _, _ []string) {
	writeIndent(b, indent)
	b.WriteString("skip\n")
}

func (s Assume) writeTo(b *strings.Builder, indent int, regs, _ []string) {
	writeIndent(b, indent)
	b.WriteString("assume ")
	b.WriteString(ExprString(s.Cond, regs))
	b.WriteByte('\n')
}

func (AssertFail) writeTo(b *strings.Builder, indent int, _, _ []string) {
	writeIndent(b, indent)
	b.WriteString("assert false\n")
}

func (s Assign) writeTo(b *strings.Builder, indent int, regs, _ []string) {
	writeIndent(b, indent)
	b.WriteString(regName(regs, s.Reg))
	b.WriteString(" = ")
	b.WriteString(ExprString(s.E, regs))
	b.WriteByte('\n')
}

func (s Seq) writeTo(b *strings.Builder, indent int, regs, vars []string) {
	for _, c := range s.Stmts {
		c.writeTo(b, indent, regs, vars)
	}
}

func (s Choice) writeTo(b *strings.Builder, indent int, regs, vars []string) {
	writeIndent(b, indent)
	b.WriteString("choice {\n")
	for i, br := range s.Branches {
		if i > 0 {
			writeIndent(b, indent)
			b.WriteString("} or {\n")
		}
		br.writeTo(b, indent+1, regs, vars)
	}
	writeIndent(b, indent)
	b.WriteString("}\n")
}

func (s Star) writeTo(b *strings.Builder, indent int, regs, vars []string) {
	writeIndent(b, indent)
	b.WriteString("loop {\n")
	s.Body.writeTo(b, indent+1, regs, vars)
	writeIndent(b, indent)
	b.WriteString("}\n")
}

func (s While) writeTo(b *strings.Builder, indent int, regs, vars []string) {
	writeIndent(b, indent)
	b.WriteString("while ")
	b.WriteString(ExprString(s.Cond, regs))
	b.WriteString(" {\n")
	s.Body.writeTo(b, indent+1, regs, vars)
	writeIndent(b, indent)
	b.WriteString("}\n")
}

func (s Load) writeTo(b *strings.Builder, indent int, regs, vars []string) {
	writeIndent(b, indent)
	b.WriteString(regName(regs, s.Reg))
	b.WriteString(" = load ")
	b.WriteString(varName(vars, s.Var))
	b.WriteByte('\n')
}

func (s Store) writeTo(b *strings.Builder, indent int, regs, vars []string) {
	writeIndent(b, indent)
	b.WriteString("store ")
	b.WriteString(varName(vars, s.Var))
	b.WriteByte(' ')
	b.WriteString(ExprString(s.E, regs))
	b.WriteByte('\n')
}

func (s CAS) writeTo(b *strings.Builder, indent int, regs, vars []string) {
	writeIndent(b, indent)
	b.WriteString("cas ")
	b.WriteString(varName(vars, s.Var))
	b.WriteByte(' ')
	b.WriteString(casOperand(s.Expect, regs))
	b.WriteByte(' ')
	b.WriteString(casOperand(s.New, regs))
	b.WriteByte('\n')
}

// casOperand renders one cas operand. The two operands are juxtaposed with
// no separator, so the parser reads each with parsePrimary; anything that is
// not a primary expression (a register or a non-negative literal) must be
// parenthesized or `cas x r + 1 2` would reparse as `cas x r (+1)` garbage.
func casOperand(e Expr, regs []string) string {
	switch e := e.(type) {
	case RegExpr:
		return ExprString(e, regs)
	case ConstExpr:
		if e.V >= 0 {
			return ExprString(e, regs)
		}
	}
	return "(" + ExprString(e, regs) + ")"
}

// PrintProgram renders p in concrete syntax using the system's variable
// names.
func PrintProgram(p *Program, vars []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "thread %s {\n", p.Name)
	if len(p.Regs) > 0 {
		b.WriteString("  regs ")
		b.WriteString(strings.Join(p.Regs, " "))
		b.WriteByte('\n')
	}
	p.Body.writeTo(&b, 1, p.Regs, vars)
	b.WriteString("}\n")
	return b.String()
}

// Print renders the whole system (header plus all thread programs) in
// concrete syntax accepted by ParseSystem.
func Print(s *System) string {
	var b strings.Builder
	fmt.Fprintf(&b, "system %s {\n", s.Name)
	b.WriteString("  vars ")
	b.WriteString(strings.Join(s.Vars, " "))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  domain %d\n", s.Dom)
	if s.Init != 0 {
		fmt.Fprintf(&b, "  init %d\n", int(s.Init))
	}
	if s.Env != nil {
		fmt.Fprintf(&b, "  env %s\n", s.Env.Name)
	}
	for _, d := range s.Dis {
		fmt.Fprintf(&b, "  dis %s\n", d.Name)
	}
	b.WriteString("}\n")
	// A program may be referenced by several clauses (e.g. the same code as
	// env and dis); print each thread block once.
	printed := map[string]bool{}
	for _, p := range s.Threads() {
		if printed[p.Name] {
			continue
		}
		printed[p.Name] = true
		b.WriteByte('\n')
		b.WriteString(PrintProgram(p, s.Vars))
	}
	return b.String()
}

// StmtString renders a single statement (used in diagnostics and tests).
func StmtString(st Stmt, regs, vars []string) string {
	var b strings.Builder
	st.writeTo(&b, 0, regs, vars)
	return strings.TrimRight(b.String(), "\n")
}
