package lang

import (
	"strings"
	"testing"
)

// TestThreadTypeString covers all four acyc/nocas combinations, in
// particular that the unrestricted type renders as "(plain)" rather than
// the empty string.
func TestThreadTypeString(t *testing.T) {
	tests := []struct {
		tt   ThreadType
		want string
	}{
		{ThreadType{Acyclic: false, NoCAS: false}, "(plain)"},
		{ThreadType{Acyclic: true, NoCAS: false}, "(acyc)"},
		{ThreadType{Acyclic: false, NoCAS: true}, "(nocas)"},
		{ThreadType{Acyclic: true, NoCAS: true}, "(nocas, acyc)"},
	}
	for _, tc := range tests {
		if got := tc.tt.String(); got != tc.want {
			t.Errorf("ThreadType{Acyclic:%v, NoCAS:%v}.String() = %q, want %q",
				tc.tt.Acyclic, tc.tt.NoCAS, got, tc.want)
		}
	}
}

// TestClassifyProgramCombinations checks that ClassifyProgram lands each
// program in the expected quadrant.
func TestClassifyProgramCombinations(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want ThreadType
	}{
		{
			"straight-line no cas",
			"thread t { regs r; r = load v; store v (r + 1) }",
			ThreadType{Acyclic: true, NoCAS: true},
		},
		{
			"loop no cas",
			"thread t { loop { store v 1 } }",
			ThreadType{Acyclic: false, NoCAS: true},
		},
		{
			"straight-line with cas",
			"thread t { cas v 0 1 }",
			ThreadType{Acyclic: true, NoCAS: false},
		},
		{
			"loop with cas",
			"thread t { loop { cas v 0 1 } }",
			ThreadType{Acyclic: false, NoCAS: false},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := ParseProgram(tc.src, []string{"v"})
			if err != nil {
				t.Fatalf("ParseProgram: %v", err)
			}
			if got := ClassifyProgram(prog); got != tc.want {
				t.Errorf("ClassifyProgram = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestSystemClassStringPlain checks the signature rendering of a system
// with an unrestricted env thread.
func TestSystemClassStringPlain(t *testing.T) {
	sys := MustParseSystem(`
system s { vars x; domain 2; env e; dis d }
thread e { loop { cas x 0 1 } }
thread d { store x 1 }
`)
	got := Classify(sys).String()
	if !strings.Contains(got, "env(plain)") {
		t.Errorf("class = %q, want env(plain) in it", got)
	}
	if !strings.Contains(got, "dis_1(nocas, acyc)") {
		t.Errorf("class = %q, want dis_1(nocas, acyc) in it", got)
	}
}
