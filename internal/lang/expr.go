package lang

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Expr is a thread-local expression e(r̄) over registers. The paper only
// requires an interpretation ⟦e⟧ : Dom^n → Dom respecting the arity; we
// provide the usual arithmetic/boolean operators over the integer domain.
// Booleans are encoded as 0 (false) / 1 (true); any non-zero value is truthy.
type Expr interface {
	// Eval evaluates the expression under the register valuation rv
	// (indexed by RegID).
	Eval(rv []Val) Val
	// String renders the expression in concrete syntax using numeric
	// register placeholders; use ExprString for named rendering.
	String() string

	appendRegs(dst []RegID) []RegID
	writeTo(b *strings.Builder, regs []string, prec int)
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNot UnOp = iota + 1 // logical negation
	OpNeg                 // arithmetic negation
)

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpMul
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// ConstExpr is an integer literal.
type ConstExpr struct {
	V Val
}

// RegExpr reads a register.
type RegExpr struct {
	Reg RegID
}

// UnExpr applies a unary operator.
type UnExpr struct {
	Op UnOp
	E  Expr
}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

// Constructor helpers.

// Num returns an integer literal expression.
func Num(v Val) Expr { return ConstExpr{V: v} }

// Reg returns a register-read expression.
func Reg(r RegID) Expr { return RegExpr{Reg: r} }

// Not returns the logical negation of e.
func Not(e Expr) Expr { return UnExpr{Op: OpNot, E: e} }

// Bin returns the binary expression l op r.
func Bin(op BinOp, l, r Expr) Expr { return BinExpr{Op: op, L: l, R: r} }

// Eq returns l == r.
func Eq(l, r Expr) Expr { return Bin(OpEq, l, r) }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return Bin(OpNe, l, r) }

func boolVal(b bool) Val {
	if b {
		return 1
	}
	return 0
}

// Eval implements Expr.
func (e ConstExpr) Eval([]Val) Val { return e.V }

// Eval implements Expr.
func (e RegExpr) Eval(rv []Val) Val {
	if int(e.Reg) < 0 || int(e.Reg) >= len(rv) {
		return 0
	}
	return rv[e.Reg]
}

// Eval implements Expr.
func (e UnExpr) Eval(rv []Val) Val {
	v := e.E.Eval(rv)
	switch e.Op {
	case OpNot:
		return boolVal(v == 0)
	case OpNeg:
		return -v
	default:
		return 0
	}
}

// Eval implements Expr.
func (e BinExpr) Eval(rv []Val) Val {
	l := e.L.Eval(rv)
	// Short-circuit the boolean connectives.
	switch e.Op {
	case OpAnd:
		if l == 0 {
			return 0
		}
		return boolVal(e.R.Eval(rv) != 0)
	case OpOr:
		if l != 0 {
			return 1
		}
		return boolVal(e.R.Eval(rv) != 0)
	}
	r := e.R.Eval(rv)
	switch e.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpEq:
		return boolVal(l == r)
	case OpNe:
		return boolVal(l != r)
	case OpLt:
		return boolVal(l < r)
	case OpLe:
		return boolVal(l <= r)
	case OpGt:
		return boolVal(l > r)
	case OpGe:
		return boolVal(l >= r)
	default:
		return 0
	}
}

func (e ConstExpr) appendRegs(dst []RegID) []RegID { return dst }
func (e RegExpr) appendRegs(dst []RegID) []RegID   { return append(dst, e.Reg) }
func (e UnExpr) appendRegs(dst []RegID) []RegID    { return e.E.appendRegs(dst) }
func (e BinExpr) appendRegs(dst []RegID) []RegID {
	return e.R.appendRegs(e.L.appendRegs(dst))
}

// ExprRegs returns the sorted, de-duplicated registers read by e.
func ExprRegs(e Expr) []RegID { return exprRegs(e) }

// exprRegs returns the sorted, de-duplicated registers read by e.
func exprRegs(e Expr) []RegID {
	rs := e.appendRegs(nil)
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	out := rs[:0]
	for i, r := range rs {
		if i == 0 || rs[i-1] != r {
			out = append(out, r)
		}
	}
	return out
}

// Operator metadata for printing: symbol and precedence (higher binds
// tighter).
func (op BinOp) symbol() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "&&"
	case OpOr:
		return "||"
	default:
		return "?"
	}
}

func (op BinOp) prec() int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpAdd, OpSub:
		return 4
	case OpMul:
		return 5
	default:
		return 0
	}
}

const unaryPrec = 6

func (e ConstExpr) writeTo(b *strings.Builder, _ []string, _ int) {
	b.WriteString(strconv.Itoa(int(e.V)))
}

func (e RegExpr) writeTo(b *strings.Builder, regs []string, _ int) {
	if int(e.Reg) >= 0 && int(e.Reg) < len(regs) {
		b.WriteString(regs[e.Reg])
		return
	}
	fmt.Fprintf(b, "r#%d", int(e.Reg))
}

func (e UnExpr) writeTo(b *strings.Builder, regs []string, prec int) {
	paren := prec > unaryPrec
	if paren {
		b.WriteByte('(')
	}
	switch e.Op {
	case OpNot:
		b.WriteByte('!')
	case OpNeg:
		b.WriteByte('-')
	default:
		b.WriteByte('?')
	}
	e.E.writeTo(b, regs, unaryPrec)
	if paren {
		b.WriteByte(')')
	}
}

func (e BinExpr) writeTo(b *strings.Builder, regs []string, prec int) {
	p := e.Op.prec()
	paren := prec > p
	if paren {
		b.WriteByte('(')
	}
	e.L.writeTo(b, regs, p)
	b.WriteByte(' ')
	b.WriteString(e.Op.symbol())
	b.WriteByte(' ')
	// Right operand printed at p+1 so the output re-parses left-associated.
	e.R.writeTo(b, regs, p+1)
	if paren {
		b.WriteByte(')')
	}
}

// ExprString renders e with register names drawn from regs.
func ExprString(e Expr, regs []string) string {
	var b strings.Builder
	e.writeTo(&b, regs, 0)
	return b.String()
}

func (e ConstExpr) String() string { return ExprString(e, nil) }
func (e RegExpr) String() string   { return ExprString(e, nil) }
func (e UnExpr) String() string    { return ExprString(e, nil) }
func (e BinExpr) String() string   { return ExprString(e, nil) }
