package lang

// Unroll replaces every iteration c* in the statement by the bounded
// unrolling (skip ⊕ c;(skip ⊕ c;( … ))) with k copies of the body. The
// result is loop-free (acyc), under-approximating the original program: any
// run of the unrolling is a run of the original. This is the bounded model
// checking view of §4 ("the distinguished threads are explored up to an
// under-approximate loop-unrolling bound").
func Unroll(st Stmt, k int) Stmt {
	switch st := st.(type) {
	case Skip, Assume, AssertFail, Assign, Load, Store, CAS:
		return st
	case Seq:
		out := make([]Stmt, len(st.Stmts))
		for i, s := range st.Stmts {
			out[i] = Unroll(s, k)
		}
		return SeqOf(out...)
	case Choice:
		out := make([]Stmt, len(st.Branches))
		for i, s := range st.Branches {
			out[i] = Unroll(s, k)
		}
		return ChoiceOf(out...)
	case Star:
		body := Unroll(st.Body, k)
		cur := Stmt(Skip{})
		for i := 0; i < k; i++ {
			cur = ChoiceOf(Skip{}, SeqOf(body, cur))
		}
		return cur
	case While:
		body := Unroll(st.Body, k)
		cur := Stmt(Assume{Cond: Not(st.Cond)})
		for i := 0; i < k; i++ {
			cur = If(st.Cond, SeqOf(body, cur), Skip{})
		}
		return cur
	default:
		return st
	}
}

// UnrollProgram returns a copy of p with all loops unrolled k times.
func UnrollProgram(p *Program, k int) *Program {
	regs := make([]string, len(p.Regs))
	copy(regs, p.Regs)
	return &Program{Name: p.Name, Regs: regs, Body: Unroll(p.Body, k)}
}

// UnrollSystem returns a copy of s in which every dis program has its loops
// unrolled k times (env programs are left untouched: the paper's algorithm
// handles env loops exactly). Programs shared between dis clauses stay
// shared; a dis program shared with env is renamed, since the unrolled
// variant diverges from the env original.
func UnrollSystem(s *System, k int) *System {
	out := &System{Name: s.Name, Dom: s.Dom, Init: s.Init, Env: s.Env}
	out.Vars = make([]string, len(s.Vars))
	copy(out.Vars, s.Vars)
	memo := map[*Program]*Program{}
	for _, d := range s.Dis {
		u, ok := memo[d]
		if !ok {
			u = UnrollProgram(d, k)
			if s.Env == d {
				u.Name += "_unrolled"
			}
			memo[d] = u
		}
		out.Dis = append(out.Dis, u)
	}
	return out
}
