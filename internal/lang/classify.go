package lang

import (
	"fmt"
	"strings"
)

// ThreadType describes the syntactic restrictions a single program satisfies,
// in the paper's notation: acyc (loop-free control flow) and nocas (no
// compare-and-swap instructions).
type ThreadType struct {
	Acyclic bool
	NoCAS   bool
}

// String renders the type as the paper writes it, e.g. "(nocas, acyc)".
// A thread satisfying neither restriction renders as "(plain)" so the
// signature never shows a bare "env"/"dis_i" with an invisible type.
func (t ThreadType) String() string {
	var parts []string
	if t.NoCAS {
		parts = append(parts, "nocas")
	}
	if t.Acyclic {
		parts = append(parts, "acyc")
	}
	if len(parts) == 0 {
		return "(plain)"
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ClassifyProgram computes the ThreadType of a single program.
func ClassifyProgram(p *Program) ThreadType {
	g := Compile(p)
	return ThreadType{Acyclic: g.Acyclic(), NoCAS: g.CASFree()}
}

// SystemClass is the signature of a parameterized system,
// env(type) ∥ dis_1(type) ∥ … ∥ dis_n(type).
type SystemClass struct {
	HasEnv bool
	Env    ThreadType
	Dis    []ThreadType
}

// Classify computes the system class of s.
func Classify(s *System) SystemClass {
	var c SystemClass
	if s.Env != nil {
		c.HasEnv = true
		c.Env = ClassifyProgram(s.Env)
	}
	for _, d := range s.Dis {
		c.Dis = append(c.Dis, ClassifyProgram(d))
	}
	return c
}

// String renders the class in the paper's signature notation.
func (c SystemClass) String() string {
	var parts []string
	if c.HasEnv {
		parts = append(parts, "env"+c.Env.String())
	}
	for i, d := range c.Dis {
		parts = append(parts, fmt.Sprintf("dis_%d%s", i+1, d.String()))
	}
	if len(parts) == 0 {
		return "(empty system)"
	}
	return strings.Join(parts, " || ")
}

// Decidable reports whether the system falls into the class
// env(nocas) ∥ dis_1(acyc) ∥ … ∥ dis_n(acyc) for which the paper proves
// safety verification PSPACE-complete (§4, §5). Systems without env threads
// are excluded (they are ordinary finite-thread RA programs, outside this
// paper's algorithm); systems whose env threads use CAS are undecidable
// (Theorem 1.1).
func (c SystemClass) Decidable() bool {
	if c.HasEnv && !c.Env.NoCAS {
		return false
	}
	for _, d := range c.Dis {
		if !d.Acyclic {
			return false
		}
	}
	return true
}

// PureRA reports whether the program is in the paper's PureRA fragment (§5):
// no registers, and stores only write the value 1 to memory that is
// initially 0. Assumes are restricted to comparing a loaded value against a
// constant; in our encoding PureRA programs use one scratch register per
// load-assume pair, so we check that registers are only used in the
// load-then-assume idiom and stores write constants.
func PureRA(s *System) bool {
	if s.Init != 0 {
		return false
	}
	for _, p := range s.Threads() {
		g := Compile(p)
		for _, edges := range g.Out {
			for _, e := range edges {
				switch e.Op.Kind {
				case OpStore:
					c, ok := e.Op.E.(ConstExpr)
					if !ok || c.V != 1 {
						return false
					}
				case OpCASOp, OpAssign:
					return false
				}
			}
		}
	}
	return true
}
