package lang

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExprEvalArith(t *testing.T) {
	rv := []Val{3, 5}
	tests := []struct {
		name string
		e    Expr
		want Val
	}{
		{"const", Num(7), 7},
		{"reg0", Reg(0), 3},
		{"reg1", Reg(1), 5},
		{"add", Bin(OpAdd, Reg(0), Reg(1)), 8},
		{"sub", Bin(OpSub, Reg(1), Reg(0)), 2},
		{"mul", Bin(OpMul, Reg(0), Num(2)), 6},
		{"eq_true", Eq(Num(4), Num(4)), 1},
		{"eq_false", Eq(Num(4), Num(5)), 0},
		{"ne", Ne(Reg(0), Reg(1)), 1},
		{"lt", Bin(OpLt, Reg(0), Reg(1)), 1},
		{"le", Bin(OpLe, Num(5), Reg(1)), 1},
		{"gt", Bin(OpGt, Reg(0), Reg(1)), 0},
		{"ge", Bin(OpGe, Reg(1), Reg(1)), 1},
		{"neg", UnExpr{Op: OpNeg, E: Num(4)}, -4},
		{"not_zero", Not(Num(0)), 1},
		{"not_nonzero", Not(Num(9)), 0},
		{"and_tt", Bin(OpAnd, Num(1), Num(2)), 1},
		{"and_tf", Bin(OpAnd, Num(1), Num(0)), 0},
		{"and_ft", Bin(OpAnd, Num(0), Num(1)), 0},
		{"or_ff", Bin(OpOr, Num(0), Num(0)), 0},
		{"or_ft", Bin(OpOr, Num(0), Num(3)), 1},
		{"or_tf", Bin(OpOr, Num(2), Num(0)), 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.e.Eval(rv); got != tc.want {
				t.Errorf("%s = %d, want %d", tc.e, got, tc.want)
			}
		})
	}
}

func TestExprEvalShortCircuit(t *testing.T) {
	// The right operand of && / || must not matter when short-circuited;
	// out-of-range register reads evaluate to 0 rather than panicking, so we
	// verify the left side decides the result.
	e := Bin(OpAnd, Num(0), Reg(99))
	if got := e.Eval(nil); got != 0 {
		t.Errorf("0 && _ = %d, want 0", got)
	}
	e = Bin(OpOr, Num(1), Reg(99))
	if got := e.Eval(nil); got != 1 {
		t.Errorf("1 || _ = %d, want 1", got)
	}
}

func TestExprRegsDedup(t *testing.T) {
	e := Bin(OpAdd, Bin(OpMul, Reg(2), Reg(0)), Bin(OpSub, Reg(2), Reg(1)))
	got := exprRegs(e)
	want := []RegID{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("exprRegs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("exprRegs = %v, want %v", got, want)
		}
	}
}

func TestExprStringPrecedence(t *testing.T) {
	tests := []struct {
		e    Expr
		want string
	}{
		{Bin(OpAdd, Num(1), Bin(OpMul, Num(2), Num(3))), "1 + 2 * 3"},
		{Bin(OpMul, Bin(OpAdd, Num(1), Num(2)), Num(3)), "(1 + 2) * 3"},
		{Bin(OpSub, Bin(OpSub, Num(7), Num(2)), Num(1)), "7 - 2 - 1"},
		{Bin(OpSub, Num(7), Bin(OpSub, Num(2), Num(1))), "7 - (2 - 1)"},
		{Not(Eq(Num(1), Num(2))), "!(1 == 2)"},
		{Bin(OpAnd, Eq(Num(1), Num(1)), Ne(Num(2), Num(3))), "1 == 1 && 2 != 3"},
		{Bin(OpOr, Bin(OpAnd, Num(1), Num(0)), Num(1)), "1 && 0 || 1"},
	}
	for _, tc := range tests {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

// randExpr generates a random expression over nRegs registers with the
// given depth budget.
func randExpr(r *rand.Rand, nRegs, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if nRegs > 0 && r.Intn(2) == 0 {
			return Reg(RegID(r.Intn(nRegs)))
		}
		return Num(Val(r.Intn(7) - 2))
	}
	switch r.Intn(13) {
	case 0:
		return UnExpr{Op: OpNot, E: randExpr(r, nRegs, depth-1)}
	case 1:
		return UnExpr{Op: OpNeg, E: randExpr(r, nRegs, depth-1)}
	default:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr}
		op := ops[r.Intn(len(ops))]
		return Bin(op, randExpr(r, nRegs, depth-1), randExpr(r, nRegs, depth-1))
	}
}

// TestExprPrintParseEval checks that printing an expression and re-parsing
// it yields a semantically identical expression (property-based).
func TestExprPrintParseEval(t *testing.T) {
	regs := []string{"r0", "r1", "r2"}
	f := func(seed int64, a, b, c int8) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, len(regs), 4)
		src := "thread t {\nregs r0 r1 r2\nout = " + ExprString(e, regs) + "\n}\n"
		prog, err := ParseProgram(src, nil)
		if err != nil {
			t.Logf("parse error for %q: %v", ExprString(e, regs), err)
			return false
		}
		body, ok := prog.Body.(Assign)
		if !ok {
			t.Logf("body is %T, want Assign", prog.Body)
			return false
		}
		rv := []Val{Val(a), Val(b), Val(c)}
		return e.Eval(rv) == body.E.Eval(rv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
