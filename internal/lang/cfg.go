package lang

import (
	"fmt"
	"strings"
)

// PC is a program counter: a node in a program's control-flow graph.
type PC int

// OpKind enumerates the primitive operations labelling CFG edges.
type OpKind int

// Primitive operation kinds.
const (
	OpNop OpKind = iota + 1 // skip / structural edge
	OpAssume
	OpAssertFail
	OpAssign
	OpLoad
	OpStore
	OpCASOp
)

// Op is the primitive operation labelling a CFG edge.
type Op struct {
	Kind OpKind
	Reg  RegID // OpAssign, OpLoad: destination register
	Var  VarID // OpLoad, OpStore, OpCASOp: shared variable
	E    Expr  // OpAssume: condition; OpAssign/OpStore: value; OpCASOp: expected value
	E2   Expr  // OpCASOp: new value
	Pos  Pos   // source position of the originating statement (may be zero)
}

// Silent reports whether the operation is thread-local (does not interact
// with the shared memory).
func (o Op) Silent() bool {
	switch o.Kind {
	case OpLoad, OpStore, OpCASOp:
		return false
	default:
		return true
	}
}

// String renders the operation using the given register and variable tables.
func (o Op) String(regs, vars []string) string {
	switch o.Kind {
	case OpNop:
		return "nop"
	case OpAssume:
		return "assume " + ExprString(o.E, regs)
	case OpAssertFail:
		return "assert false"
	case OpAssign:
		return fmt.Sprintf("%s = %s", regName(regs, o.Reg), ExprString(o.E, regs))
	case OpLoad:
		return fmt.Sprintf("%s = load %s", regName(regs, o.Reg), varName(vars, o.Var))
	case OpStore:
		return fmt.Sprintf("store %s %s", varName(vars, o.Var), ExprString(o.E, regs))
	case OpCASOp:
		return fmt.Sprintf("cas %s %s %s", varName(vars, o.Var), ExprString(o.E, regs), ExprString(o.E2, regs))
	default:
		return "?"
	}
}

// Edge is a CFG transition From --Op--> To.
type Edge struct {
	From, To PC
	Op       Op
}

// CFG is a program's control-flow graph. Entry is always 0. Nodes are
// numbered 0 … NumNodes-1. Out[pc] lists the edges leaving pc.
type CFG struct {
	Prog     *Program
	NumNodes int
	Entry    PC
	Exit     PC
	Out      [][]Edge
}

// Compile builds the control-flow graph of p by a Thompson-style
// construction: each statement contributes edges between fresh nodes; Choice
// branches share entry/exit; Star adds a back edge.
func Compile(p *Program) *CFG {
	c := &cfgBuilder{cfg: &CFG{Prog: p, Entry: 0}}
	entry := c.newNode()
	exit := c.build(p.Body, entry)
	c.cfg.Exit = exit
	c.cfg.NumNodes = len(c.cfg.Out)
	return c.cfg
}

type cfgBuilder struct {
	cfg *CFG
}

func (c *cfgBuilder) newNode() PC {
	c.cfg.Out = append(c.cfg.Out, nil)
	return PC(len(c.cfg.Out) - 1)
}

func (c *cfgBuilder) edge(from, to PC, op Op) {
	c.cfg.Out[from] = append(c.cfg.Out[from], Edge{From: from, To: to, Op: op})
}

// build adds the CFG fragment for st starting at node `from` and returns the
// fragment's exit node.
func (c *cfgBuilder) build(st Stmt, from PC) PC {
	switch st := st.(type) {
	case Skip:
		return from
	case Assume:
		to := c.newNode()
		c.edge(from, to, Op{Kind: OpAssume, E: st.Cond, Pos: st.Pos})
		return to
	case AssertFail:
		to := c.newNode()
		c.edge(from, to, Op{Kind: OpAssertFail, Pos: st.Pos})
		return to
	case Assign:
		to := c.newNode()
		c.edge(from, to, Op{Kind: OpAssign, Reg: st.Reg, E: st.E, Pos: st.Pos})
		return to
	case Seq:
		cur := from
		for _, s := range st.Stmts {
			cur = c.build(s, cur)
		}
		return cur
	case Choice:
		exit := c.newNode()
		for _, br := range st.Branches {
			brExit := c.build(br, from)
			c.edge(brExit, exit, Op{Kind: OpNop, Pos: st.Pos})
		}
		return exit
	case Star:
		// from --nop--> head; head --body--> back to head; head --nop--> exit.
		head := c.newNode()
		c.edge(from, head, Op{Kind: OpNop, Pos: st.Pos})
		bodyExit := c.build(st.Body, head)
		c.edge(bodyExit, head, Op{Kind: OpNop, Pos: st.Pos})
		exit := c.newNode()
		c.edge(head, exit, Op{Kind: OpNop, Pos: st.Pos})
		return exit
	case While:
		// Both guard edges leave the loop head: no commit point before the
		// exit guard (a waiting thread can always retry).
		head := c.newNode()
		c.edge(from, head, Op{Kind: OpNop, Pos: st.Pos})
		bodyStart := c.newNode()
		c.edge(head, bodyStart, Op{Kind: OpAssume, E: st.Cond, Pos: st.Pos})
		bodyExit := c.build(st.Body, bodyStart)
		c.edge(bodyExit, head, Op{Kind: OpNop, Pos: st.Pos})
		exit := c.newNode()
		c.edge(head, exit, Op{Kind: OpAssume, E: Not(st.Cond), Pos: st.Pos})
		return exit
	case Load:
		to := c.newNode()
		c.edge(from, to, Op{Kind: OpLoad, Reg: st.Reg, Var: st.Var, Pos: st.Pos})
		return to
	case Store:
		to := c.newNode()
		c.edge(from, to, Op{Kind: OpStore, Var: st.Var, E: st.E, Pos: st.Pos})
		return to
	case CAS:
		to := c.newNode()
		c.edge(from, to, Op{Kind: OpCASOp, Var: st.Var, E: st.Expect, E2: st.New, Pos: st.Pos})
		return to
	default:
		panic(fmt.Sprintf("lang.Compile: unknown statement %T", st))
	}
}

// Acyclic reports whether the CFG has no cycles (the paper's `acyc`
// restriction: loop-free control flow).
func (g *CFG) Acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, g.NumNodes)
	var visit func(PC) bool
	visit = func(n PC) bool {
		color[n] = gray
		for _, e := range g.Out[n] {
			switch color[e.To] {
			case gray:
				return false
			case white:
				if !visit(e.To) {
					return false
				}
			}
		}
		color[n] = black
		return true
	}
	for n := 0; n < g.NumNodes; n++ {
		if color[n] == white && !visit(PC(n)) {
			return false
		}
	}
	return true
}

// CASFree reports whether the CFG contains no compare-and-swap edges (the
// paper's `nocas` restriction).
func (g *CFG) CASFree() bool {
	for _, edges := range g.Out {
		for _, e := range edges {
			if e.Op.Kind == OpCASOp {
				return false
			}
		}
	}
	return true
}

// HasAssert reports whether the CFG contains an `assert false` edge.
func (g *CFG) HasAssert() bool {
	for _, edges := range g.Out {
		for _, e := range edges {
			if e.Op.Kind == OpAssertFail {
				return true
			}
		}
	}
	return false
}

// MaxStraightLineOps returns an upper bound on the number of operations a
// single run through an acyclic CFG can execute (the longest path length).
// It returns -1 when the CFG has cycles.
func (g *CFG) MaxStraightLineOps() int {
	if !g.Acyclic() {
		return -1
	}
	memo := make([]int, g.NumNodes)
	for i := range memo {
		memo[i] = -1
	}
	var longest func(PC) int
	longest = func(n PC) int {
		if memo[n] >= 0 {
			return memo[n]
		}
		best := 0
		for _, e := range g.Out[n] {
			if d := 1 + longest(e.To); d > best {
				best = d
			}
		}
		memo[n] = best
		return best
	}
	return longest(g.Entry)
}

// CountStores returns, per shared variable, an upper bound on the number of
// store or CAS operations a single acyclic run can perform. Returns nil for
// cyclic CFGs.
func (g *CFG) CountStores(numVars int) []int {
	if !g.Acyclic() {
		return nil
	}
	// Longest path weighted by per-variable store count: since counts for
	// different variables may be maximized on different paths, we bound each
	// variable independently.
	out := make([]int, numVars)
	for v := 0; v < numVars; v++ {
		memo := make([]int, g.NumNodes)
		for i := range memo {
			memo[i] = -1
		}
		var most func(PC) int
		most = func(n PC) int {
			if memo[n] >= 0 {
				return memo[n]
			}
			best := 0
			for _, e := range g.Out[n] {
				w := 0
				if (e.Op.Kind == OpStore || e.Op.Kind == OpCASOp) && e.Op.Var == VarID(v) {
					w = 1
				}
				if d := w + most(e.To); d > best {
					best = d
				}
			}
			memo[n] = best
			return best
		}
		out[v] = most(g.Entry)
	}
	return out
}

// String renders the CFG as an adjacency list for debugging.
func (g *CFG) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cfg %s: %d nodes, entry %d, exit %d\n", g.Prog.Name, g.NumNodes, g.Entry, g.Exit)
	var regs []string
	if g.Prog != nil {
		regs = g.Prog.Regs
	}
	for n, edges := range g.Out {
		for _, e := range edges {
			fmt.Fprintf(&b, "  %3d -> %3d  %s\n", n, int(e.To), e.Op.String(regs, nil))
		}
	}
	return b.String()
}
