package lang

import (
	"strconv"
)

// tokKind enumerates lexical token kinds of the concrete syntax.
type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokNewline
	tokIdent
	tokInt
	tokLBrace // {
	tokRBrace // }
	tokLParen // (
	tokRParen // )
	tokAssign // =
	tokEq     // ==
	tokNe     // !=
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokPlus   // +
	tokMinus  // -
	tokStar   // *
	tokBang   // !
	tokAnd    // &&
	tokOr     // ||
	tokComma  // ,
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "newline"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokAssign:
		return "'='"
	case tokEq:
		return "'=='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokBang:
		return "'!'"
	case tokAnd:
		return "'&&'"
	case tokOr:
		return "'||'"
	case tokComma:
		return "','"
	default:
		return "unknown token"
	}
}

// token is a lexical token with its source position for diagnostics.
type token struct {
	kind tokKind
	text string
	val  int
	line int
	col  int
}

// pos returns the token's source position.
func (t token) pos() Pos { return Pos{Line: t.line, Col: t.col} }

// lex tokenizes src. Line comments start with // or #; semicolons are
// treated as newlines (statement separators).
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	lineStart := 0
	i := 0
	n := len(src)
	// emit appends a token starting at offset i on the current line.
	emit := func(k tokKind, text string) {
		toks = append(toks, token{kind: k, text: text, line: line, col: i - lineStart + 1})
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			emit(tokNewline, "\\n")
			line++
			i++
			lineStart = i
		case c == ';':
			emit(tokNewline, ";")
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			j := i
			for j < n && isIdentPart(src[j]) {
				j++
			}
			emit(tokIdent, src[i:j])
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			v, err := strconv.Atoi(src[i:j])
			if err != nil {
				return nil, synErrf(Pos{Line: line, Col: i - lineStart + 1}, "bad integer %q", src[i:j])
			}
			toks = append(toks, token{kind: tokInt, text: src[i:j], val: v, line: line, col: i - lineStart + 1})
			i = j
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "==":
				emit(tokEq, two)
				i += 2
				continue
			case "!=":
				emit(tokNe, two)
				i += 2
				continue
			case "<=":
				emit(tokLe, two)
				i += 2
				continue
			case ">=":
				emit(tokGe, two)
				i += 2
				continue
			case "&&":
				emit(tokAnd, two)
				i += 2
				continue
			case "||":
				emit(tokOr, two)
				i += 2
				continue
			case ":=":
				emit(tokAssign, two)
				i += 2
				continue
			}
			switch c {
			case '{':
				emit(tokLBrace, "{")
			case '}':
				emit(tokRBrace, "}")
			case '(':
				emit(tokLParen, "(")
			case ')':
				emit(tokRParen, ")")
			case '=':
				emit(tokAssign, "=")
			case '<':
				emit(tokLt, "<")
			case '>':
				emit(tokGt, ">")
			case '+':
				emit(tokPlus, "+")
			case '-':
				emit(tokMinus, "-")
			case '*':
				emit(tokStar, "*")
			case '!':
				emit(tokBang, "!")
			case ',':
				emit(tokComma, ",")
			default:
				return nil, synErrf(Pos{Line: line, Col: i - lineStart + 1}, "unexpected character %q", string(c))
			}
			i++
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: n - lineStart + 1})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
