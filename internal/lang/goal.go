package lang

// AssertsToGoal implements the §4.1 reduction from safety verification to
// Message Generation: it returns a copy of the system in which every
// `assert false` is replaced by the store `x* := d*` of a fresh shared
// variable x* and an otherwise-unused value d*. The system is unsafe iff
// the transformed system can generate the message (x*, d*).
//
// The fresh variable is appended to the variable table; d* is 1 in a domain
// widened to at least 2 if necessary (value 1 on x* is unused elsewhere by
// construction since x* is fresh).
func AssertsToGoal(s *System) (*System, VarID, Val) {
	out := &System{
		Name: s.Name,
		Vars: append(append([]string(nil), s.Vars...), freshVarName(s)),
		Dom:  s.Dom,
		Init: s.Init,
	}
	if out.Dom < 2 {
		out.Dom = 2
	}
	goalVar := VarID(len(out.Vars) - 1)
	const goalVal = Val(1)
	// A program may be shared between clauses; transform each once so the
	// sharing (and name uniqueness) is preserved.
	memo := map[*Program]*Program{}
	transform := func(p *Program) *Program {
		if t, ok := memo[p]; ok {
			return t
		}
		t := replaceAsserts(p, goalVar, goalVal)
		memo[p] = t
		return t
	}
	if s.Env != nil {
		out.Env = transform(s.Env)
	}
	for _, d := range s.Dis {
		out.Dis = append(out.Dis, transform(d))
	}
	return out, goalVar, goalVal
}

func freshVarName(s *System) string {
	name := "goal"
	for {
		clash := false
		for _, v := range s.Vars {
			if v == name {
				clash = true
				break
			}
		}
		if !clash {
			return name
		}
		name += "_"
	}
}

func replaceAsserts(p *Program, x VarID, d Val) *Program {
	return &Program{
		Name: p.Name,
		Regs: append([]string(nil), p.Regs...),
		Body: replaceAssertsStmt(p.Body, x, d),
	}
}

func replaceAssertsStmt(st Stmt, x VarID, d Val) Stmt {
	switch st := st.(type) {
	case AssertFail:
		return Store{Var: x, E: Num(d)}
	case Seq:
		out := make([]Stmt, len(st.Stmts))
		for i, s := range st.Stmts {
			out[i] = replaceAssertsStmt(s, x, d)
		}
		return Seq{Stmts: out}
	case Choice:
		out := make([]Stmt, len(st.Branches))
		for i, s := range st.Branches {
			out[i] = replaceAssertsStmt(s, x, d)
		}
		return Choice{Branches: out}
	case Star:
		return Star{Body: replaceAssertsStmt(st.Body, x, d)}
	case While:
		return While{Cond: st.Cond, Body: replaceAssertsStmt(st.Body, x, d)}
	default:
		return st
	}
}
