package lang

import (
	"fmt"
	"strings"
)

// ParseSystem parses a full system description in concrete syntax:
//
//	system prodcons {
//	  vars x y
//	  domain 5
//	  env producer
//	  dis consumer
//	}
//
//	thread producer {
//	  regs r
//	  r = load y
//	  assume r == 1
//	  store x r
//	}
//
// Statements are separated by newlines or semicolons. If/while/choice/loop
// blocks use braces; `choice { … } or { … }` expresses ⊕. Registers are
// declared with `regs` lines or implicitly by being assigned or loaded into.
// Identifiers in expressions must be registers (shared variables are read
// only through `load`).
func ParseSystem(src string) (*System, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseFile()
}

// ParseProgram parses a single `thread … { … }` block against the given
// shared-variable table.
func ParseProgram(src string, vars []string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, vars: vars}
	p.skipNewlines()
	prog, err := p.parseThread()
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input after thread block")
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
	vars []string

	// Current thread context during statement parsing.
	prog *Program
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) unread()     { p.pos-- }
func (p *parser) errf(format string, args ...interface{}) error {
	return synErrf(p.peek().pos(), format, args...)
}

func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.next()
	}
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, synErrf(t.pos(), "expected %v, found %v %q", k, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return synErrf(t.pos(), "expected %q, found %q", kw, t.text)
	}
	return nil
}

// parseFile parses the top level: one system block and thread blocks in any
// order, then resolves thread references.
func (p *parser) parseFile() (*System, error) {
	type header struct {
		name    string
		vars    []string
		dom     int
		init    int
		envName string
		disName []string
		pos     Pos
	}
	var hdr *header
	threadSrcs := make(map[string]int) // name -> token position of its block
	threadOrder := []string{}

	for {
		p.skipNewlines()
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokIdent {
			return nil, p.errf("expected 'system' or 'thread', found %q", t.text)
		}
		switch t.text {
		case "system":
			if hdr != nil {
				return nil, p.errf("duplicate system block")
			}
			h, err := p.parseSystemHeader()
			if err != nil {
				return nil, err
			}
			hdr = &header{
				name: h.name, vars: h.vars, dom: h.dom, init: h.init,
				envName: h.envName, disName: h.disName, pos: t.pos(),
			}
		case "thread":
			// Record position, skip the block; parse after vars are known.
			p.next() // 'thread'
			nameTok, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, dup := threadSrcs[nameTok.text]; dup {
				return nil, synErrf(nameTok.pos(), "duplicate thread %q", nameTok.text)
			}
			start := p.pos
			if err := p.skipBlock(); err != nil {
				return nil, err
			}
			threadSrcs[nameTok.text] = start
			threadOrder = append(threadOrder, nameTok.text)
		default:
			return nil, p.errf("expected 'system' or 'thread', found %q", t.text)
		}
	}
	if hdr == nil {
		return nil, fmt.Errorf("missing system block")
	}

	sys := &System{Name: hdr.name, Vars: hdr.vars, Dom: hdr.dom, Init: Val(hdr.init)}
	p.vars = sys.Vars

	parsed := make(map[string]*Program, len(threadOrder))
	for _, name := range threadOrder {
		p.pos = threadSrcs[name]
		prog, err := p.parseThreadBody(name)
		if err != nil {
			return nil, err
		}
		parsed[name] = prog
	}

	if hdr.envName != "" {
		env, ok := parsed[hdr.envName]
		if !ok {
			return nil, synErrf(hdr.pos, "env thread %q not defined", hdr.envName)
		}
		sys.Env = env
	}
	for _, dn := range hdr.disName {
		dis, ok := parsed[dn]
		if !ok {
			return nil, synErrf(hdr.pos, "dis thread %q not defined", dn)
		}
		sys.Dis = append(sys.Dis, dis)
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

type sysHeader struct {
	name    string
	vars    []string
	dom     int
	init    int
	envName string
	disName []string
}

func (p *parser) parseSystemHeader() (*sysHeader, error) {
	if err := p.expectKeyword("system"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	h := &sysHeader{name: nameTok.text, dom: 2}
	for {
		p.skipNewlines()
		t := p.next()
		if t.kind == tokRBrace {
			break
		}
		if t.kind != tokIdent {
			return nil, synErrf(t.pos(), "expected system clause, found %q", t.text)
		}
		switch t.text {
		case "vars":
			for p.peek().kind == tokIdent || p.peek().kind == tokComma {
				vt := p.next()
				if vt.kind == tokComma {
					continue
				}
				h.vars = append(h.vars, vt.text)
			}
		case "domain":
			it, err := p.expect(tokInt)
			if err != nil {
				return nil, err
			}
			h.dom = it.val
		case "init":
			it, err := p.expect(tokInt)
			if err != nil {
				return nil, err
			}
			h.init = it.val
		case "env":
			nt, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if h.envName != "" {
				return nil, synErrf(t.pos(), "duplicate env clause")
			}
			h.envName = nt.text
		case "dis":
			nt, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			h.disName = append(h.disName, nt.text)
		default:
			return nil, synErrf(t.pos(), "unknown system clause %q", t.text)
		}
	}
	return h, nil
}

// skipBlock consumes a balanced `{ … }` block starting at the next LBrace.
func (p *parser) skipBlock() error {
	p.skipNewlines()
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		switch t.kind {
		case tokLBrace:
			depth++
		case tokRBrace:
			depth--
		case tokEOF:
			return synErrf(t.pos(), "unterminated block")
		}
	}
	return nil
}

// parseThread parses `thread name { … }` from the current position.
func (p *parser) parseThread() (*Program, error) {
	if err := p.expectKeyword("thread"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	return p.parseThreadBody(nameTok.text)
}

// parseThreadBody parses `{ … }` for the named thread (the `thread name`
// prefix has been consumed).
func (p *parser) parseThreadBody(name string) (*Program, error) {
	p.skipNewlines()
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	p.prog = &Program{Name: name}
	defer func() { p.prog = nil }()
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	prog := p.prog
	prog.Body = body
	return prog, nil
}

// regRef resolves an identifier to a register, declaring it if allowed.
func (p *parser) regRef(name string, declare bool, pos Pos) (RegID, error) {
	for _, v := range p.vars {
		if v == name {
			return 0, synErrf(pos, "%q is a shared variable; use 'load'/'store' to access it", name)
		}
	}
	for i, r := range p.prog.Regs {
		if r == name {
			return RegID(i), nil
		}
	}
	if !declare {
		return 0, synErrf(pos, "unknown register %q", name)
	}
	p.prog.Regs = append(p.prog.Regs, name)
	return RegID(len(p.prog.Regs) - 1), nil
}

func (p *parser) varRef(name string, pos Pos) (VarID, error) {
	for i, v := range p.vars {
		if v == name {
			return VarID(i), nil
		}
	}
	return 0, synErrf(pos, "unknown shared variable %q", name)
}

// parseStmts parses a newline-separated statement list until '}' or EOF.
func (p *parser) parseStmts() (Stmt, error) {
	var stmts []Stmt
	for {
		p.skipNewlines()
		t := p.peek()
		if t.kind == tokRBrace || t.kind == tokEOF {
			break
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if st != nil {
			stmts = append(stmts, st)
		}
	}
	return SeqOf(stmts...), nil
}

// parseStmt parses one statement and stamps it with the position of its
// leading token.
func (p *parser) parseStmt() (Stmt, error) {
	t := p.next()
	st, err := p.parseStmtAfter(t)
	if err != nil || st == nil {
		return st, err
	}
	return WithPos(st, t.pos()), nil
}

func (p *parser) parseStmtAfter(t token) (Stmt, error) {
	if t.kind != tokIdent {
		return nil, synErrf(t.pos(), "expected statement, found %v %q", t.kind, t.text)
	}
	switch t.text {
	case "skip":
		return Skip{}, nil
	case "assume":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Assume{Cond: e}, nil
	case "assert":
		ft := p.next()
		if ft.kind != tokIdent || ft.text != "false" {
			return nil, synErrf(ft.pos(), "expected 'assert false'")
		}
		return AssertFail{}, nil
	case "store":
		vt, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		v, err := p.varRef(vt.text, vt.pos())
		if err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Store{Var: v, E: e}, nil
	case "cas":
		vt, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		v, err := p.varRef(vt.text, vt.pos())
		if err != nil {
			return nil, err
		}
		e1, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		e2, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return CAS{Var: v, Expect: e1, New: e2}, nil
	case "if":
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		els := Stmt(Skip{})
		p.skipNewlinesBeforeKeyword("else")
		if p.peek().kind == tokIdent && p.peek().text == "else" {
			p.next()
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		// If's desugar, with the guard assumes carrying the `if` position so
		// diagnostics on the condition cite the source line.
		return ChoiceOf(
			SeqOf(Assume{Cond: cond, Pos: t.pos()}, then),
			SeqOf(Assume{Cond: Not(cond), Pos: t.pos()}, els),
		), nil
	case "while":
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return While{Cond: cond, Body: body}, nil
	case "loop":
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return Star{Body: body}, nil
	case "choice":
		var branches []Stmt
		br, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		branches = append(branches, br)
		for {
			p.skipNewlinesBeforeKeyword("or")
			if p.peek().kind == tokIdent && p.peek().text == "or" {
				p.next()
				br, err := p.parseBlock()
				if err != nil {
					return nil, err
				}
				branches = append(branches, br)
				continue
			}
			break
		}
		return ChoiceOf(branches...), nil
	case "regs":
		for p.peek().kind == tokIdent || p.peek().kind == tokComma {
			rt := p.next()
			if rt.kind == tokComma {
				continue
			}
			if _, err := p.regRef(rt.text, true, rt.pos()); err != nil {
				return nil, err
			}
		}
		return nil, nil
	default:
		// Assignment or load: ident = expr | ident = load var.
		r, err := p.regRef(t.text, true, t.pos())
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		if p.peek().kind == tokIdent && p.peek().text == "load" {
			p.next()
			vt, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			v, err := p.varRef(vt.text, vt.pos())
			if err != nil {
				return nil, err
			}
			return Load{Reg: r, Var: v}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Assign{Reg: r, E: e}, nil
	}
}

// skipNewlinesBeforeKeyword skips newlines only if they are followed by the
// given keyword (so a trailing `}` newline does not swallow the next
// statement).
func (p *parser) skipNewlinesBeforeKeyword(kw string) {
	save := p.pos
	p.skipNewlines()
	t := p.peek()
	if t.kind == tokIdent && t.text == kw {
		return
	}
	p.pos = save
}

func (p *parser) parseBlock() (Stmt, error) {
	p.skipNewlines()
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return body, nil
}

// Expression grammar (precedence climbing):
//
//	or   := and ('||' and)*
//	and  := cmp ('&&' cmp)*
//	cmp  := add (('=='|'!='|'<'|'<='|'>'|'>=') add)?
//	add  := mul (('+'|'-') mul)*
//	mul  := unary ('*' unary)*
//	unary:= ('!'|'-') unary | primary
//	prim := INT | IDENT | '(' or ')'
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Bin(OpOr, l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = Bin(OpAnd, l, r)
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.peek().kind {
		case tokEq:
			op = OpEq
		case tokNe:
			op = OpNe
		case tokLt:
			op = OpLt
		case tokLe:
			op = OpLe
		case tokGt:
			op = OpGt
		case tokGe:
			op = OpGe
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = Bin(op, l, r)
	}
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.peek().kind {
		case tokPlus:
			op = OpAdd
		case tokMinus:
			op = OpSub
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = Bin(op, l, r)
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokStar {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Bin(OpMul, l, r)
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek().kind {
	case tokBang:
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnExpr{Op: OpNot, E: e}, nil
	case tokMinus:
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnExpr{Op: OpNeg, E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		return Num(Val(t.val)), nil
	case tokIdent:
		r, err := p.regRef(t.text, false, t.pos())
		if err != nil {
			return nil, err
		}
		return Reg(r), nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, synErrf(t.pos(), "expected expression, found %v %q", t.kind, t.text)
	}
}

// MustParseSystem is ParseSystem that panics on error; intended for
// package-level test fixtures and the benchmark corpus.
func MustParseSystem(src string) *System {
	s, err := ParseSystem(src)
	if err != nil {
		panic(fmt.Sprintf("lang.MustParseSystem: %v\nsource:\n%s", err, strings.TrimSpace(src)))
	}
	return s
}
