package lang

import (
	"testing"
)

func compileSrc(t *testing.T, threadBody string) *CFG {
	t.Helper()
	src := "system s { vars x y; domain 4; env t }\nthread t {\n" + threadBody + "\n}"
	sys, err := ParseSystem(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Compile(sys.Env)
}

func TestCFGStraightLine(t *testing.T) {
	g := compileSrc(t, "regs r\nr = load x\nstore y r")
	if !g.Acyclic() {
		t.Error("straight-line CFG should be acyclic")
	}
	if !g.CASFree() {
		t.Error("no CAS present")
	}
	if got := g.MaxStraightLineOps(); got != 2 {
		t.Errorf("MaxStraightLineOps = %d, want 2", got)
	}
}

func TestCFGLoopCyclic(t *testing.T) {
	g := compileSrc(t, "regs r\nloop { r = load x }")
	if g.Acyclic() {
		t.Error("loop CFG should be cyclic")
	}
	if g.MaxStraightLineOps() != -1 {
		t.Error("MaxStraightLineOps should be -1 for cyclic CFG")
	}
	if g.CountStores(2) != nil {
		t.Error("CountStores should be nil for cyclic CFG")
	}
}

func TestCFGWhileCyclic(t *testing.T) {
	g := compileSrc(t, "regs r\nwhile r == 0 { r = load x }")
	if g.Acyclic() {
		t.Error("while CFG should be cyclic")
	}
}

func TestCFGChoiceAcyclic(t *testing.T) {
	g := compileSrc(t, "choice { store x 1 } or { store y 1 }")
	if !g.Acyclic() {
		t.Error("choice CFG should be acyclic")
	}
	// store + nop join edge
	if got := g.MaxStraightLineOps(); got != 2 {
		t.Errorf("MaxStraightLineOps = %d, want 2", got)
	}
}

func TestCFGCASDetected(t *testing.T) {
	g := compileSrc(t, "cas x 0 1")
	if g.CASFree() {
		t.Error("CAS not detected")
	}
	if g.HasAssert() {
		t.Error("no assert present")
	}
}

func TestCFGHasAssert(t *testing.T) {
	g := compileSrc(t, "assert false")
	if !g.HasAssert() {
		t.Error("assert not detected")
	}
}

func TestCFGCountStores(t *testing.T) {
	g := compileSrc(t, "store x 1\nchoice { store x 2\nstore y 1 } or { store y 2 }")
	counts := g.CountStores(2)
	if counts == nil {
		t.Fatal("CountStores returned nil for acyclic CFG")
	}
	if counts[0] != 2 { // x: store x 1 plus store x 2 on the left branch
		t.Errorf("stores on x = %d, want 2", counts[0])
	}
	if counts[1] != 1 { // y: one store on either branch
		t.Errorf("stores on y = %d, want 1", counts[1])
	}
}

func TestCFGCountStoresIncludesCAS(t *testing.T) {
	g := compileSrc(t, "store x 1\ncas x 1 2")
	counts := g.CountStores(2)
	if counts[0] != 2 {
		t.Errorf("stores on x = %d, want 2 (store + cas)", counts[0])
	}
}

func TestCFGEntryExitConnected(t *testing.T) {
	g := compileSrc(t, "regs r\nif r == 0 { store x 1 } else { skip }\nstore y 1")
	// Every node must be reachable from entry (the construction never
	// produces orphans).
	seen := make([]bool, g.NumNodes)
	stack := []PC{g.Entry}
	seen[g.Entry] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Out[n] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Errorf("node %d unreachable from entry", i)
		}
	}
	if !seen[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestClassify(t *testing.T) {
	src := `
system s { vars x; domain 2; env e; dis d1; dis d2 }
thread e { regs r; loop { r = load x } }
thread d1 { cas x 0 1 }
thread d2 { regs r; while r == 0 { r = load x }; cas x 1 0 }
`
	sys := MustParseSystem(src)
	c := Classify(sys)
	if !c.HasEnv {
		t.Fatal("HasEnv false")
	}
	if c.Env.Acyclic || !c.Env.NoCAS {
		t.Errorf("env type = %+v, want cyclic nocas", c.Env)
	}
	if !c.Dis[0].Acyclic || c.Dis[0].NoCAS {
		t.Errorf("dis1 type = %+v, want acyc cas", c.Dis[0])
	}
	if c.Dis[1].Acyclic {
		t.Errorf("dis2 type = %+v, want cyclic", c.Dis[1])
	}
	if c.Decidable() {
		t.Error("system with cyclic dis thread should not be in the decidable class")
	}
	want := "env(nocas) || dis_1(acyc) || dis_2(plain)"
	if got := c.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestClassifyDecidable(t *testing.T) {
	sys := MustParseSystem(prodConsSrc)
	c := Classify(sys)
	if !c.Decidable() {
		t.Errorf("prodcons should be decidable: %s", c)
	}
}

func TestClassifyEnvCASUndecidable(t *testing.T) {
	sys := MustParseSystem("system s { vars x; domain 2; env e }\nthread e { cas x 0 1 }")
	if Classify(sys).Decidable() {
		t.Error("env with CAS must not be decidable (Theorem 1.1)")
	}
}

func TestUnrollMakesAcyclic(t *testing.T) {
	sys := MustParseSystem(`
system s { vars x; domain 3; env e; dis d }
thread e { skip }
thread d { regs r; while r != 2 { r = load x }; assert false }
`)
	if Classify(sys).Decidable() {
		t.Fatal("dis with while should not be decidable before unrolling")
	}
	u := UnrollSystem(sys, 3)
	if !Classify(u).Decidable() {
		t.Error("unrolled system should be decidable")
	}
	g := Compile(u.Dis[0])
	if !g.Acyclic() {
		t.Error("unrolled dis CFG should be acyclic")
	}
	if err := u.Validate(); err != nil {
		t.Errorf("unrolled system invalid: %v", err)
	}
}

func TestUnrollPreservesStraightLineCode(t *testing.T) {
	sys := MustParseSystem(prodConsSrc)
	u := UnrollProgram(sys.Dis[0], 5)
	if Print(sys) == "" || len(u.Regs) != len(sys.Dis[0].Regs) {
		t.Error("unroll should preserve registers")
	}
	g1, g2 := Compile(sys.Dis[0]), Compile(u)
	if g1.MaxStraightLineOps() != g2.MaxStraightLineOps() {
		t.Errorf("unrolling loop-free program changed op count: %d vs %d",
			g1.MaxStraightLineOps(), g2.MaxStraightLineOps())
	}
}

func TestUnrollZeroRemovesLoopBody(t *testing.T) {
	sys := MustParseSystem(`
system s { vars x; domain 2; env e }
thread e { loop { store x 1 } }
`)
	u := UnrollProgram(sys.Env, 0)
	g := Compile(u)
	if got := g.MaxStraightLineOps(); got != 0 {
		t.Errorf("0-unrolling should leave no operations, got %d", got)
	}
}

func TestPureRA(t *testing.T) {
	pure := MustParseSystem(`
system s { vars a b; domain 2; env e }
thread e { regs r; r = load a; assume r == 0; store b 1 }
`)
	if !PureRA(pure) {
		t.Error("pure system misclassified")
	}
	impure := MustParseSystem(`
system s { vars a; domain 3; env e }
thread e { store a 2 }
`)
	if PureRA(impure) {
		t.Error("store of 2 is not PureRA")
	}
	impure2 := MustParseSystem(`
system s { vars a; domain 2; init 1; env e }
thread e { store a 1 }
`)
	if PureRA(impure2) {
		t.Error("non-zero init is not PureRA")
	}
}
