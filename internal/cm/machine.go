// Package cm implements Minsky two-counter machines and the construction
// behind Theorem 1.1: with compare-and-swap available to the environment
// threads, parameterized safety verification under RA is undecidable, via
// simulation of counter machines.
//
// The mechanism is a CAS chain: the entire machine configuration (control
// state and both counters) is encoded as a single value of one shared
// variable, and every env thread performs one machine step as a single
// cas(conf, enc(cf), enc(cf')). The CAS adjacency requirement linearizes
// the chain — each configuration message is consumed by exactly one
// successor — so arbitrarily many identical *loop-free* threads drive an
// unboundedly long sequential computation. Undecidability needs unbounded
// counters; a finite data domain caps them, so the generated system is
// parameterized by a counter bound C and is unsafe iff the machine halts
// without either counter reaching C. Exactness in the limit C → ∞ is the
// content of Theorem 1.1; every fixed C is validated against the simulator.
package cm

import (
	"fmt"
)

// OpKind enumerates counter machine instructions.
type OpKind int

// Instruction kinds.
const (
	// OpInc increments a counter and jumps.
	OpInc OpKind = iota + 1
	// OpDecJZ jumps to Zero if the counter is zero, otherwise decrements
	// and jumps to Next.
	OpDecJZ
	// OpHalt stops the machine.
	OpHalt
)

// Instr is a single instruction.
type Instr struct {
	Kind OpKind
	// Counter is 0 or 1 for OpInc/OpDecJZ.
	Counter int
	// Next is the successor state (OpInc; OpDecJZ non-zero branch).
	Next int
	// Zero is the OpDecJZ zero-branch successor.
	Zero int
}

// Machine is a two-counter Minsky machine; state 0 is initial.
type Machine struct {
	States []Instr
}

// Validate checks state indices and counter selectors.
func (m *Machine) Validate() error {
	if len(m.States) == 0 {
		return fmt.Errorf("cm: machine has no states")
	}
	for i, in := range m.States {
		switch in.Kind {
		case OpInc:
			if in.Counter < 0 || in.Counter > 1 {
				return fmt.Errorf("cm: state %d: bad counter %d", i, in.Counter)
			}
			if in.Next < 0 || in.Next >= len(m.States) {
				return fmt.Errorf("cm: state %d: bad successor %d", i, in.Next)
			}
		case OpDecJZ:
			if in.Counter < 0 || in.Counter > 1 {
				return fmt.Errorf("cm: state %d: bad counter %d", i, in.Counter)
			}
			if in.Next < 0 || in.Next >= len(m.States) {
				return fmt.Errorf("cm: state %d: bad successor %d", i, in.Next)
			}
			if in.Zero < 0 || in.Zero >= len(m.States) {
				return fmt.Errorf("cm: state %d: bad zero-successor %d", i, in.Zero)
			}
		case OpHalt:
			// no operands
		default:
			return fmt.Errorf("cm: state %d: unknown kind %d", i, in.Kind)
		}
	}
	return nil
}

// Config is a machine configuration.
type Config struct {
	State  int
	C0, C1 int
}

// Step executes one instruction; ok is false when the machine has halted.
func (m *Machine) Step(cf Config) (Config, bool) {
	in := m.States[cf.State]
	switch in.Kind {
	case OpInc:
		if in.Counter == 0 {
			return Config{State: in.Next, C0: cf.C0 + 1, C1: cf.C1}, true
		}
		return Config{State: in.Next, C0: cf.C0, C1: cf.C1 + 1}, true
	case OpDecJZ:
		c := cf.C0
		if in.Counter == 1 {
			c = cf.C1
		}
		if c == 0 {
			return Config{State: in.Zero, C0: cf.C0, C1: cf.C1}, true
		}
		if in.Counter == 0 {
			return Config{State: in.Next, C0: cf.C0 - 1, C1: cf.C1}, true
		}
		return Config{State: in.Next, C0: cf.C0, C1: cf.C1 - 1}, true
	default:
		return cf, false
	}
}

// RunResult reports a bounded simulation.
type RunResult struct {
	// Halted is true when an OpHalt state was reached within MaxSteps.
	Halted bool
	// Steps is the number of instructions executed.
	Steps int
	// MaxCounter is the largest counter value observed.
	MaxCounter int
	// Final is the last configuration.
	Final Config
}

// Run simulates the (deterministic) machine for at most maxSteps steps.
func (m *Machine) Run(maxSteps int) RunResult {
	cf := Config{}
	res := RunResult{}
	for res.Steps < maxSteps {
		if m.States[cf.State].Kind == OpHalt {
			res.Halted = true
			break
		}
		next, ok := m.Step(cf)
		if !ok {
			res.Halted = true
			break
		}
		cf = next
		res.Steps++
		if cf.C0 > res.MaxCounter {
			res.MaxCounter = cf.C0
		}
		if cf.C1 > res.MaxCounter {
			res.MaxCounter = cf.C1
		}
	}
	if m.States[cf.State].Kind == OpHalt {
		res.Halted = true
	}
	res.Final = cf
	return res
}
