package cm

import (
	"errors"
	"testing"

	"paramra/internal/lang"
	"paramra/internal/ra"
	"paramra/internal/simplified"
)

// incHalt increments c0 n times and halts.
func incHalt(n int) *Machine {
	m := &Machine{}
	for i := 0; i < n; i++ {
		m.States = append(m.States, Instr{Kind: OpInc, Counter: 0, Next: i + 1})
	}
	m.States = append(m.States, Instr{Kind: OpHalt})
	return m
}

// upDown increments c0 n times, then decrements to zero, then halts.
func upDown(n int) *Machine {
	m := &Machine{}
	for i := 0; i < n; i++ {
		m.States = append(m.States, Instr{Kind: OpInc, Counter: 0, Next: i + 1})
	}
	loop := len(m.States)
	halt := loop + 1
	m.States = append(m.States, Instr{Kind: OpDecJZ, Counter: 0, Next: loop, Zero: halt})
	m.States = append(m.States, Instr{Kind: OpHalt})
	return m
}

// forever loops without halting: inc then dec, back and forth.
func forever() *Machine {
	return &Machine{States: []Instr{
		{Kind: OpInc, Counter: 0, Next: 1},
		{Kind: OpDecJZ, Counter: 0, Next: 0, Zero: 0},
	}}
}

func TestSimulator(t *testing.T) {
	res := incHalt(3).Run(100)
	if !res.Halted || res.Steps != 3 || res.MaxCounter != 3 || res.Final.C0 != 3 {
		t.Errorf("incHalt(3): %+v", res)
	}
	res = upDown(2).Run(100)
	if !res.Halted || res.Final.C0 != 0 {
		t.Errorf("upDown(2): %+v", res)
	}
	if res.Steps != 2+3 { // 2 incs + 2 decs + 1 zero-test
		t.Errorf("upDown(2) steps = %d, want 5", res.Steps)
	}
	res = forever().Run(50)
	if res.Halted {
		t.Error("forever halted")
	}
	if res.Steps != 50 {
		t.Errorf("forever steps = %d", res.Steps)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Machine{
		{},
		{States: []Instr{{Kind: OpInc, Counter: 2, Next: 0}}},
		{States: []Instr{{Kind: OpInc, Counter: 0, Next: 5}}},
		{States: []Instr{{Kind: OpDecJZ, Counter: 0, Next: 0, Zero: 9}}},
		{States: []Instr{{Kind: OpKind(42)}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("machine %d accepted", i)
		}
	}
	if err := incHalt(2).Validate(); err != nil {
		t.Errorf("good machine rejected: %v", err)
	}
}

func TestStepsToHalt(t *testing.T) {
	if got := StepsToHalt(incHalt(3), 5, 100); got != 3 {
		t.Errorf("incHalt steps = %d, want 3", got)
	}
	if got := StepsToHalt(incHalt(3), 3, 100); got != -1 {
		t.Errorf("bound 3 should block the third increment, got %d", got)
	}
	if got := StepsToHalt(forever(), 5, 50); got != -1 {
		t.Errorf("forever halts? %d", got)
	}
}

// TestTheorem11ClassRejection: the generated systems use CAS in env
// threads, so they fall outside the decidable class and the parameterized
// verifier must refuse them.
func TestTheorem11ClassRejection(t *testing.T) {
	sys, err := Reduce(incHalt(2), 4)
	if err != nil {
		t.Fatal(err)
	}
	c := lang.Classify(sys)
	if c.Env.NoCAS || !c.Env.Acyclic {
		t.Fatalf("reduction should be env(acyc) with CAS: %s", c)
	}
	if c.Decidable() {
		t.Error("env CAS system classified as decidable")
	}
	if _, err := simplified.New(sys, simplified.Options{}); !errors.Is(err, simplified.ErrEnvCAS) {
		t.Errorf("verifier should reject env CAS: %v", err)
	}
}

// exploreReduction explores the concrete instance with n env threads.
func exploreReduction(t *testing.T, m *Machine, c, n int) bool {
	t.Helper()
	sys, err := Reduce(m, c)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := ra.NewInstance(sys, n)
	if err != nil {
		t.Fatal(err)
	}
	res := inst.Explore(ra.Limits{MaxStates: 3_000_000})
	if !res.Unsafe && !res.Complete {
		t.Fatalf("exploration incomplete at n=%d", n)
	}
	return res.Unsafe
}

// TestTheorem11BoundedSimulation validates the construction on concrete
// instances: with k = StepsToHalt threads driving the CAS chain plus one
// observer, the halting machine's system is unsafe; with fewer threads it
// is safe (each thread performs exactly one step).
func TestTheorem11BoundedSimulation(t *testing.T) {
	m := incHalt(2)
	const bound = 3
	k := StepsToHalt(m, bound, 100) // 2 steps
	if k != 2 {
		t.Fatalf("k = %d", k)
	}
	if exploreReduction(t, m, bound, k) {
		t.Error("k threads (no observer) should not reach the assert")
	}
	if !exploreReduction(t, m, bound, k+1) {
		t.Error("k+1 threads should simulate to halt and assert")
	}
}

// TestTheorem11NonHalting: a machine that cannot halt under the counter
// bound yields a safe system for any thread count we can check.
func TestTheorem11NonHalting(t *testing.T) {
	m := forever()
	for n := 1; n <= 3; n++ {
		if exploreReduction(t, m, 2, n) {
			t.Errorf("non-halting machine asserted with n=%d", n)
		}
	}
}

// TestTheorem11CounterBound: incHalt(3) needs counters to reach 3; with
// bound 3 the simulation is stuck, with bound 4 it halts.
func TestTheorem11CounterBound(t *testing.T) {
	m := incHalt(3)
	if exploreReduction(t, m, 3, 4) {
		t.Error("counter bound 3 should block halting")
	}
	if !exploreReduction(t, m, 4, 4) {
		t.Error("counter bound 4 should allow halting with 4 threads")
	}
}

// TestTheorem11ChainLinearized: the CAS chain admits no forks — two
// distinct runs cannot both complete. upDown(1) halts in 3 steps; the
// observer must see exactly the final config, and the intermediate config
// values must never coexist on separate chains.
func TestTheorem11ChainLinearized(t *testing.T) {
	m := upDown(1)
	k := StepsToHalt(m, 2, 100)
	if k != 3 {
		t.Fatalf("k = %d", k)
	}
	if !exploreReduction(t, m, 2, k+1) {
		t.Error("upDown(1) should assert with k+1 threads")
	}
	if exploreReduction(t, m, 2, k) {
		t.Error("k threads should be insufficient (one step each plus observer)")
	}
}
