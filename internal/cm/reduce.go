package cm

import (
	"fmt"

	"paramra/internal/lang"
)

// Reduce builds the Theorem 1.1 system for machine m with counter bound c:
// an env(acyc)-with-CAS parameterized system that is unsafe iff m halts from
// (state 0, counters 0) without either counter reaching c. Each env thread
// executes exactly one machine step as a CAS on the single shared variable
// `conf`, or plays the observer that asserts when a halting configuration
// becomes visible.
func Reduce(m *Machine, c int) (*lang.System, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("cm: counter bound %d must be positive", c)
	}
	nq := len(m.States)
	enc := func(cf Config) lang.Val {
		return lang.Val(cf.State + nq*(cf.C0+c*cf.C1))
	}
	dom := nq * c * c

	sb := lang.NewSystemBuilder("cm", dom)
	conf := sb.Var("conf")
	pb := lang.NewProgramBuilder("step")
	r := pb.Reg("r")

	var branches []lang.Stmt
	// One branch per (configuration, transition) pair.
	for q := 0; q < nq; q++ {
		for a := 0; a < c; a++ {
			for b := 0; b < c; b++ {
				cf := Config{State: q, C0: a, C1: b}
				next, ok := m.Step(cf)
				if !ok {
					continue // halt state: no step
				}
				if next.C0 >= c || next.C1 >= c {
					continue // counter bound exceeded: step unavailable
				}
				branches = append(branches, lang.CAS{
					Var:    conf,
					Expect: lang.Num(enc(cf)),
					New:    lang.Num(enc(next)),
				})
			}
		}
	}
	// Observer branches: assert on any visible halting configuration.
	for q := 0; q < nq; q++ {
		if m.States[q].Kind != OpHalt {
			continue
		}
		for a := 0; a < c; a++ {
			for b := 0; b < c; b++ {
				branches = append(branches, lang.SeqOf(
					lang.Load{Reg: r, Var: conf},
					lang.Assume{Cond: lang.Eq(lang.Reg(r), lang.Num(enc(Config{State: q, C0: a, C1: b})))},
					lang.AssertFail{},
				))
			}
		}
	}
	if len(branches) == 0 {
		return nil, fmt.Errorf("cm: machine yields no transitions under bound %d", c)
	}
	env := pb.Build(lang.ChoiceOf(branches...))
	sys := sb.Env(env).Build()
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("cm: generated system invalid: %w", err)
	}
	return sys, nil
}

// StepsToHalt returns the number of machine steps before halting under the
// counter bound (counters must stay < c), or -1 if the machine does not
// halt within maxSteps or exceeds the bound. One env thread is needed per
// step, plus one observer.
func StepsToHalt(m *Machine, c, maxSteps int) int {
	cf := Config{}
	for s := 0; s <= maxSteps; s++ {
		if m.States[cf.State].Kind == OpHalt {
			return s
		}
		next, ok := m.Step(cf)
		if !ok {
			return s
		}
		if next.C0 >= c || next.C1 >= c {
			return -1
		}
		cf = next
	}
	return -1
}
