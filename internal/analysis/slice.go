package analysis

import (
	"fmt"
	"reflect"

	"paramra/internal/lang"
)

// SliceOptions configures the verdict-preserving slicer.
type SliceOptions struct {
	// KeepVars names shared variables that must survive slicing even when
	// the analysis finds them removable (e.g. the goal variable of a
	// value-reachability query, which the caller inspects after the run).
	KeepVars []string
}

// SliceStats summarizes the size reduction achieved by Slice, measured in
// CFG nodes (PCs), registers, and shared variables, summed over the distinct
// programs of the system.
type SliceStats struct {
	Rounds                int
	PCsBefore, PCsAfter   int
	RegsBefore, RegsAfter int
	VarsBefore, VarsAfter int
}

// Changed reports whether slicing shrank the system at all.
func (s SliceStats) Changed() bool {
	return s.PCsAfter != s.PCsBefore || s.RegsAfter != s.RegsBefore || s.VarsAfter != s.VarsBefore
}

// String renders e.g. "pcs 34→28, regs 5→4, vars 4→3".
func (s SliceStats) String() string {
	return fmt.Sprintf("pcs %d→%d, regs %d→%d, vars %d→%d",
		s.PCsBefore, s.PCsAfter, s.RegsBefore, s.RegsAfter, s.VarsBefore, s.VarsAfter)
}

// maxSliceRounds caps the rewrite fixpoint; each round either shrinks the
// system or stops, so the cap is a pure safety net.
const maxSliceRounds = 100

// Slice returns a smaller system with the same parameterized safety verdict
// (and the same reachable value set for every surviving shared variable).
// The input is never mutated. The rewrites, each argued sound under RA:
//
//   - assignments to dead registers are dropped (thread-local and pure);
//   - statements at unreachable PCs are dropped (constant propagation proves
//     no execution reaches them — note a reachable constant-false assume is
//     KEPT: it blocks the path, and removing it would add behaviors);
//   - stores to write-only shared variables are dropped (their messages are
//     never observed by any load or CAS, and a store never blocks);
//   - `while cond {}` becomes `assume !cond` (the empty body cannot change
//     the registers the exit guard reads);
//   - empty star-loops, all-skip choices and unused registers/variables are
//     elided.
//
// Dead *loads* are deliberately kept: under RA a load has acquire semantics
// (it updates the thread's view), so removing one would add behaviors even
// when the loaded value is never read. `ravet` flags them instead.
func Slice(sys *lang.System, opts SliceOptions) (*lang.System, SliceStats) {
	keep := map[string]bool{}
	for _, v := range opts.KeepVars {
		keep[v] = true
	}
	out := cloneSystem(sys)
	stats := SliceStats{
		PCsBefore:  countPCs(sys),
		RegsBefore: countRegs(sys),
		VarsBefore: len(sys.Vars),
	}
	for stats.Rounds < maxSliceRounds {
		stats.Rounds++
		changed := false
		vv := PossibleVarValues(out)
		fp := Footprint(out)
		deadVar := make([]bool, len(out.Vars))
		for v := range out.Vars {
			deadVar[v] = fp.WriteOnly(lang.VarID(v)) && !keep[out.Vars[v]]
		}
		for _, p := range uniquePrograms(out) {
			newBody := sliceBody(p, out, vv, deadVar)
			if !reflect.DeepEqual(p.Body, newBody) {
				p.Body = newBody
				changed = true
			}
		}
		for _, p := range uniquePrograms(out) {
			if dropUnusedRegs(p) {
				changed = true
			}
		}
		if dropUnusedVars(out, keep) {
			changed = true
		}
		if !changed {
			break
		}
	}
	stats.PCsAfter = countPCs(out)
	stats.RegsAfter = countRegs(out)
	stats.VarsAfter = len(out.Vars)
	return out, stats
}

// cloneSystem copies the system's mutable spine (System, Programs, and their
// name tables), preserving program sharing between clauses. Statement values
// are shared: every rewrite below builds fresh values instead of mutating.
func cloneSystem(sys *lang.System) *lang.System {
	out := &lang.System{
		Name: sys.Name,
		Vars: append([]string(nil), sys.Vars...),
		Dom:  sys.Dom,
		Init: sys.Init,
	}
	cloned := map[*lang.Program]*lang.Program{}
	cp := func(p *lang.Program) *lang.Program {
		if p == nil {
			return nil
		}
		if c, ok := cloned[p]; ok {
			return c
		}
		c := &lang.Program{Name: p.Name, Regs: append([]string(nil), p.Regs...), Body: p.Body}
		cloned[p] = c
		return c
	}
	out.Env = cp(sys.Env)
	for _, d := range sys.Dis {
		out.Dis = append(out.Dis, cp(d))
	}
	return out
}

func uniquePrograms(sys *lang.System) []*lang.Program {
	var out []*lang.Program
	seen := map[*lang.Program]bool{}
	for _, p := range sys.Threads() {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func countPCs(sys *lang.System) int {
	n := 0
	for _, p := range uniquePrograms(sys) {
		n += lang.Compile(p).NumNodes
	}
	return n
}

func countRegs(sys *lang.System) int {
	n := 0
	for _, p := range uniquePrograms(sys) {
		n += len(p.Regs)
	}
	return n
}

// stmtInfo aggregates the per-statement facts the rewriter consults, keyed
// by the synthetic positions assigned by renumber.
type stmtInfo struct {
	hasEdges       bool
	allUnreachable bool // every edge of the statement starts at an unreachable PC
	deadDef        bool // assignment whose destination register is dead
	assumeConst    bool // reachable assume with a constant condition …
	assumeVal      lang.Val
}

// sliceBody computes one rewrite round for p's body. The analysis runs on a
// structural copy whose statements carry unique synthetic positions, so CFG
// facts can be mapped back onto the original statements (source positions may
// legitimately repeat — both guards of a desugared `if` share the if's).
func sliceBody(p *lang.Program, sys *lang.System, vv *VarValues, deadVar []bool) lang.Stmt {
	ctr := 0
	syn := renumber(p.Body, &ctr)
	g := lang.Compile(&lang.Program{Name: p.Name, Regs: p.Regs, Body: syn})
	live := LiveRegs(g)
	consts := PropagateConsts(g, sys, vv)
	info := map[lang.Pos]*stmtInfo{}
	for _, edges := range g.Out {
		for _, e := range edges {
			si := info[e.Op.Pos]
			if si == nil {
				si = &stmtInfo{allUnreachable: true}
				info[e.Op.Pos] = si
			}
			si.hasEdges = true
			if consts.Reachable(e.From) {
				si.allUnreachable = false
			}
			if e.Op.Kind == lang.OpAssign && live.DeadDef(e) {
				si.deadDef = true
			}
			if e.Op.Kind == lang.OpAssume && consts.Reachable(e.From) {
				if v, ok := consts.EvalAt(e.From, e.Op.E); ok {
					si.assumeConst = true
					si.assumeVal = v
				}
			}
		}
	}
	s := &slicer{info: info, deadVar: deadVar}
	return s.rewrite(p.Body, syn)
}

// renumber returns a structural copy of st in which every statement carries
// a unique position, mirrored exactly by slicer.rewrite's parallel walk.
func renumber(st lang.Stmt, ctr *int) lang.Stmt {
	*ctr++
	pos := lang.Pos{Line: *ctr, Col: 1}
	switch st := st.(type) {
	case lang.Seq:
		stmts := make([]lang.Stmt, len(st.Stmts))
		for i, s := range st.Stmts {
			stmts[i] = renumber(s, ctr)
		}
		return lang.Seq{Stmts: stmts, Pos: pos}
	case lang.Choice:
		branches := make([]lang.Stmt, len(st.Branches))
		for i, s := range st.Branches {
			branches[i] = renumber(s, ctr)
		}
		return lang.Choice{Branches: branches, Pos: pos}
	case lang.Star:
		return lang.Star{Body: renumber(st.Body, ctr), Pos: pos}
	case lang.While:
		return lang.While{Cond: st.Cond, Body: renumber(st.Body, ctr), Pos: pos}
	default:
		return lang.WithPos(st, pos)
	}
}

type slicer struct {
	info    map[lang.Pos]*stmtInfo
	deadVar []bool
}

func (s *slicer) infoFor(syn lang.Stmt) stmtInfo {
	if si := s.info[syn.Position()]; si != nil {
		return *si
	}
	return stmtInfo{}
}

// removable reports whether the leaf statement mirrored by syn sits entirely
// at unreachable PCs.
func (s *slicer) removable(syn lang.Stmt) bool {
	si := s.infoFor(syn)
	return si.hasEdges && si.allUnreachable
}

// entryBlocked reports whether executing the statement mirrored by syn is
// guaranteed to block before performing any memory action: its first
// non-structural step is an assume with a constant-false condition (control
// edges of Seq/Choice are nops, so nothing visible happens first).
func (s *slicer) entryBlocked(syn lang.Stmt) bool {
	switch st := syn.(type) {
	case lang.Assume:
		si := s.infoFor(st)
		return si.assumeConst && si.assumeVal == 0
	case lang.Seq:
		return len(st.Stmts) > 0 && s.entryBlocked(st.Stmts[0])
	case lang.Choice:
		for _, b := range st.Branches {
			if !s.entryBlocked(b) {
				return false
			}
		}
		return len(st.Branches) > 0
	default:
		return false
	}
}

// rewrite walks the original statement and its renumbered mirror in
// lockstep, returning the sliced statement (with original positions kept).
func (s *slicer) rewrite(orig, syn lang.Stmt) lang.Stmt {
	switch o := orig.(type) {
	case lang.Seq:
		sy := syn.(lang.Seq)
		outs := make([]lang.Stmt, len(o.Stmts))
		for i := range o.Stmts {
			outs[i] = s.rewrite(o.Stmts[i], sy.Stmts[i])
		}
		ns := lang.SeqOf(outs...)
		if seq, ok := ns.(lang.Seq); ok {
			seq.Pos = o.Pos
			return seq
		}
		return ns
	case lang.Choice:
		sy := syn.(lang.Choice)
		outs := make([]lang.Stmt, 0, len(o.Branches))
		var fallback lang.Stmt
		sawSkip := false
		for i := range o.Branches {
			b := s.rewrite(o.Branches[i], sy.Branches[i])
			if fallback == nil {
				fallback = b
			}
			if s.entryBlocked(sy.Branches[i]) {
				// The branch blocks before performing any memory action, so
				// taking it is indistinguishable (to the other threads) from
				// the thread never being scheduled again: drop it.
				continue
			}
			if _, ok := b.(lang.Skip); ok {
				if sawSkip {
					continue // identical branches are redundant
				}
				sawSkip = true
			}
			outs = append(outs, b)
		}
		if len(outs) == 0 {
			// Every branch blocks; keep one so the choice still blocks.
			outs = append(outs, fallback)
		}
		if len(outs) == 1 && sawSkip {
			return lang.Skip{Pos: o.Pos}
		}
		nc := lang.ChoiceOf(outs...)
		if ch, ok := nc.(lang.Choice); ok {
			ch.Pos = o.Pos
			return ch
		}
		return nc
	case lang.Star:
		sy := syn.(lang.Star)
		body := s.rewrite(o.Body, sy.Body)
		if emptyBody(body) {
			return lang.Skip{Pos: o.Pos} // iterating skip is skip
		}
		return lang.Star{Body: body, Pos: o.Pos}
	case lang.While:
		sy := syn.(lang.While)
		body := s.rewrite(o.Body, sy.Body)
		if emptyBody(body) {
			// The empty body cannot change the registers Cond reads, so the
			// loop is exactly a wait for ¬Cond.
			return lang.Assume{Cond: lang.Not(o.Cond), Pos: o.Pos}
		}
		return lang.While{Cond: o.Cond, Body: body, Pos: o.Pos}
	case lang.Assign:
		si := s.infoFor(syn)
		if (si.hasEdges && si.allUnreachable) || si.deadDef {
			return lang.Skip{Pos: o.Pos}
		}
		return o
	case lang.Store:
		if s.removable(syn) || s.deadVar[o.Var] {
			return lang.Skip{Pos: o.Pos}
		}
		return o
	case lang.Assume:
		if s.removable(syn) {
			return lang.Skip{Pos: o.Pos}
		}
		si := s.infoFor(syn)
		if si.assumeConst && si.assumeVal != 0 {
			return lang.Skip{Pos: o.Pos} // assume true never blocks
		}
		// A reachable assume that may block (including a constant-false
		// one) must stay: removing it would add behaviors.
		return o
	case lang.Load, lang.AssertFail, lang.CAS:
		// A reachable load (acquire), assert, or CAS (blocking
		// read-modify-write) must stay; unreachable ones go.
		if s.removable(syn) {
			return lang.Skip{Pos: orig.Position()}
		}
		return orig
	default:
		return orig
	}
}

// dropUnusedRegs removes registers with no remaining occurrence in p's body
// and renumbers the rest. Returns whether anything changed.
func dropUnusedRegs(p *lang.Program) bool {
	used := make([]bool, len(p.Regs))
	markUsedRegs(p.Body, used)
	remap := make([]lang.RegID, len(p.Regs))
	var regs []string
	changed := false
	for i, u := range used {
		if u {
			remap[i] = lang.RegID(len(regs))
			regs = append(regs, p.Regs[i])
		} else {
			remap[i] = -1
			changed = true
		}
	}
	if !changed {
		return false
	}
	p.Regs = regs
	p.Body = remapStmtRegs(p.Body, remap)
	return true
}

func markUsedRegs(st lang.Stmt, used []bool) {
	mark := func(e lang.Expr) {
		for _, r := range lang.ExprRegs(e) {
			if int(r) >= 0 && int(r) < len(used) {
				used[r] = true
			}
		}
	}
	switch st := st.(type) {
	case lang.Assume:
		mark(st.Cond)
	case lang.Assign:
		used[st.Reg] = true
		mark(st.E)
	case lang.Seq:
		for _, s := range st.Stmts {
			markUsedRegs(s, used)
		}
	case lang.Choice:
		for _, s := range st.Branches {
			markUsedRegs(s, used)
		}
	case lang.Star:
		markUsedRegs(st.Body, used)
	case lang.While:
		mark(st.Cond)
		markUsedRegs(st.Body, used)
	case lang.Load:
		used[st.Reg] = true
	case lang.Store:
		mark(st.E)
	case lang.CAS:
		mark(st.Expect)
		mark(st.New)
	}
}

func remapExprRegs(e lang.Expr, remap []lang.RegID) lang.Expr {
	switch e := e.(type) {
	case lang.RegExpr:
		return lang.RegExpr{Reg: remap[e.Reg]}
	case lang.UnExpr:
		return lang.UnExpr{Op: e.Op, E: remapExprRegs(e.E, remap)}
	case lang.BinExpr:
		return lang.BinExpr{Op: e.Op, L: remapExprRegs(e.L, remap), R: remapExprRegs(e.R, remap)}
	default:
		return e
	}
}

func remapStmtRegs(st lang.Stmt, remap []lang.RegID) lang.Stmt {
	switch st := st.(type) {
	case lang.Assume:
		st.Cond = remapExprRegs(st.Cond, remap)
		return st
	case lang.Assign:
		st.Reg = remap[st.Reg]
		st.E = remapExprRegs(st.E, remap)
		return st
	case lang.Seq:
		stmts := make([]lang.Stmt, len(st.Stmts))
		for i, s := range st.Stmts {
			stmts[i] = remapStmtRegs(s, remap)
		}
		st.Stmts = stmts
		return st
	case lang.Choice:
		branches := make([]lang.Stmt, len(st.Branches))
		for i, s := range st.Branches {
			branches[i] = remapStmtRegs(s, remap)
		}
		st.Branches = branches
		return st
	case lang.Star:
		st.Body = remapStmtRegs(st.Body, remap)
		return st
	case lang.While:
		st.Cond = remapExprRegs(st.Cond, remap)
		st.Body = remapStmtRegs(st.Body, remap)
		return st
	case lang.Load:
		st.Reg = remap[st.Reg]
		return st
	case lang.Store:
		st.E = remapExprRegs(st.E, remap)
		return st
	case lang.CAS:
		st.Expect = remapExprRegs(st.Expect, remap)
		st.New = remapExprRegs(st.New, remap)
		return st
	default:
		return st
	}
}

// dropUnusedVars removes shared variables no surviving statement accesses
// (keeping the protected ones, and at least one variable so the system stays
// valid), renumbering VarIDs across every program.
func dropUnusedVars(sys *lang.System, keep map[string]bool) bool {
	used := make([]bool, len(sys.Vars))
	for _, p := range uniquePrograms(sys) {
		markUsedVars(p.Body, used)
	}
	for v, name := range sys.Vars {
		if keep[name] {
			used[v] = true
		}
	}
	anyUsed := false
	for _, u := range used {
		anyUsed = anyUsed || u
	}
	if !anyUsed && len(used) > 0 {
		used[0] = true // Validate requires a non-empty variable table
	}
	remap := make([]lang.VarID, len(sys.Vars))
	var vars []string
	changed := false
	for i, u := range used {
		if u {
			remap[i] = lang.VarID(len(vars))
			vars = append(vars, sys.Vars[i])
		} else {
			remap[i] = -1
			changed = true
		}
	}
	if !changed {
		return false
	}
	sys.Vars = vars
	for _, p := range uniquePrograms(sys) {
		p.Body = remapStmtVars(p.Body, remap)
	}
	return true
}

func markUsedVars(st lang.Stmt, used []bool) {
	switch st := st.(type) {
	case lang.Seq:
		for _, s := range st.Stmts {
			markUsedVars(s, used)
		}
	case lang.Choice:
		for _, s := range st.Branches {
			markUsedVars(s, used)
		}
	case lang.Star:
		markUsedVars(st.Body, used)
	case lang.While:
		markUsedVars(st.Body, used)
	case lang.Load:
		used[st.Var] = true
	case lang.Store:
		used[st.Var] = true
	case lang.CAS:
		used[st.Var] = true
	}
}

func remapStmtVars(st lang.Stmt, remap []lang.VarID) lang.Stmt {
	switch st := st.(type) {
	case lang.Seq:
		stmts := make([]lang.Stmt, len(st.Stmts))
		for i, s := range st.Stmts {
			stmts[i] = remapStmtVars(s, remap)
		}
		st.Stmts = stmts
		return st
	case lang.Choice:
		branches := make([]lang.Stmt, len(st.Branches))
		for i, s := range st.Branches {
			branches[i] = remapStmtVars(s, remap)
		}
		st.Branches = branches
		return st
	case lang.Star:
		st.Body = remapStmtVars(st.Body, remap)
		return st
	case lang.While:
		st.Body = remapStmtVars(st.Body, remap)
		return st
	case lang.Load:
		st.Var = remap[st.Var]
		return st
	case lang.Store:
		st.Var = remap[st.Var]
		return st
	case lang.CAS:
		st.Var = remap[st.Var]
		return st
	default:
		return st
	}
}
