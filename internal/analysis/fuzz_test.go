package analysis

import (
	"reflect"
	"testing"

	"paramra/internal/lang"
)

// FuzzAnalyzeAndSlice runs the linter and the slicer over every system the
// frontend accepts: neither may panic, the sliced system must validate and
// re-parse, and slicing must be idempotent.
func FuzzAnalyzeAndSlice(f *testing.F) {
	seeds := []string{
		"system s { vars x y; domain 4; env producer; dis consumer }\nthread producer { regs r; r = load y; assume r == 1; store x 2 }\nthread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }",
		"system s { vars x; domain 2; env t }\nthread t { skip }",
		"system s { vars x y z; domain 7; init 3; env a; dis b }\nthread a { loop { choice { store x 1 } or { cas y 0 1 } } }\nthread b { regs r; while r != 2 { r = load z } }",
		"system s { vars x; domain 2; env t }\nthread t { regs a; a = 1; assume a == 0; assert false }",
		"system s { vars w; domain 2; env t }\nthread t { regs a b; a = load w; store w b; while a == a { } }",
		"system s{vars x;domain 2;env t}thread t{r=load x;store x (r*r-1)}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sys, err := lang.ParseSystem(src)
		if err != nil {
			return
		}
		AnalyzeSystem(sys) // must not panic
		sliced, stats := Slice(sys, SliceOptions{})
		if err := sliced.Validate(); err != nil {
			t.Fatalf("sliced system invalid: %v\noriginal:\n%s\nsliced:\n%s", err, src, lang.Print(sliced))
		}
		if _, err := lang.ParseSystem(lang.Print(sliced)); err != nil {
			t.Fatalf("sliced system does not re-parse: %v\n%s", err, lang.Print(sliced))
		}
		if stats.PCsAfter > stats.PCsBefore || stats.RegsAfter > stats.RegsBefore || stats.VarsAfter > stats.VarsBefore {
			t.Fatalf("slice grew the system: %v", stats)
		}
		again, stats2 := Slice(sliced, SliceOptions{})
		if stats2.Changed() {
			t.Fatalf("slice not idempotent (still shrinking): %v\n%s", stats2, lang.Print(sliced))
		}
		if !reflect.DeepEqual(sliced, again) {
			t.Fatalf("slice not idempotent:\nonce:\n%s\ntwice:\n%s", lang.Print(sliced), lang.Print(again))
		}
	})
}
