// Package analysis implements a static-analysis layer over the Com
// while-language of internal/lang: a generic monotone dataflow framework
// (worklist fixpoint over lang.CFG, forward and backward), concrete analyses
// on top of it (register liveness, reaching constant propagation with
// unreachable-PC detection, per-thread shared-variable footprints), a
// diagnostics pass with the `ravet` lint rules, and a verdict-preserving
// program slicer used as an opt-in pre-pass by the verification pipeline.
//
// The analyses are deliberately cheap — linear-ish fixpoints over the
// thread-local CFGs — because their job is to shrink and sanity-check the
// instances *before* they reach the PSPACE decision procedure
// (internal/simplified, internal/encode/internal/datalog), where every
// register, shared variable, and CFG node multiplies the state space.
package analysis

import (
	"paramra/internal/lang"
)

// Direction selects the orientation of a dataflow problem.
type Direction int

// Dataflow directions.
const (
	// Forward propagates facts along edges, from the CFG entry.
	Forward Direction = iota + 1
	// Backward propagates facts against edges, from the terminal nodes.
	Backward
)

// Problem is a monotone dataflow problem over a CFG. Facts form a join
// semi-lattice described by Bottom/Join/Equal; Transfer must be monotone in
// its fact argument or the fixpoint may not terminate.
type Problem[F any] struct {
	Dir Direction
	// Bottom is the least fact, the initial value at every non-boundary PC.
	Bottom func() F
	// Boundary is the fact at the CFG entry (Forward) or at every terminal
	// PC, i.e. a PC with no outgoing edges (Backward).
	Boundary func() F
	// Join combines facts flowing into the same PC. It must not mutate
	// either argument (the solver compares the joined fact against the old
	// one to detect the fixpoint).
	Join func(a, b F) F
	// Equal reports whether two facts coincide (fixpoint detection).
	Equal func(a, b F) bool
	// Transfer computes the effect of executing edge e on fact `in`: the
	// fact after the edge (Forward) or before it (Backward). It must not
	// mutate `in`.
	Transfer func(e lang.Edge, in F) F
}

// Solve runs the worklist fixpoint and returns one fact per PC: for Forward
// problems the fact holding when control is at that PC (before any outgoing
// edge executes); for Backward problems the fact summarizing everything
// that can happen from that PC onwards.
func Solve[F any](g *lang.CFG, p Problem[F]) []F {
	switch p.Dir {
	case Forward:
		return solveForward(g, p)
	case Backward:
		return solveBackward(g, p)
	default:
		panic("analysis.Solve: unknown direction")
	}
}

// worklist is a FIFO node queue with an in-queue bitmap.
type worklist struct {
	queue []lang.PC
	in    []bool
}

func newWorklist(n int) *worklist {
	return &worklist{in: make([]bool, n)}
}

func (w *worklist) push(n lang.PC) {
	if !w.in[n] {
		w.in[n] = true
		w.queue = append(w.queue, n)
	}
}

func (w *worklist) pop() (lang.PC, bool) {
	if len(w.queue) == 0 {
		return 0, false
	}
	n := w.queue[0]
	w.queue = w.queue[1:]
	w.in[n] = false
	return n, true
}

func solveForward[F any](g *lang.CFG, p Problem[F]) []F {
	facts := make([]F, g.NumNodes)
	for i := range facts {
		facts[i] = p.Bottom()
	}
	facts[g.Entry] = p.Boundary()
	w := newWorklist(g.NumNodes)
	w.push(g.Entry)
	for {
		n, ok := w.pop()
		if !ok {
			return facts
		}
		for _, e := range g.Out[n] {
			out := p.Transfer(e, facts[n])
			joined := p.Join(facts[e.To], out)
			if !p.Equal(joined, facts[e.To]) {
				facts[e.To] = joined
				w.push(e.To)
			}
		}
	}
}

func solveBackward[F any](g *lang.CFG, p Problem[F]) []F {
	preds := Predecessors(g)
	facts := make([]F, g.NumNodes)
	w := newWorklist(g.NumNodes)
	for n := 0; n < g.NumNodes; n++ {
		if len(g.Out[n]) == 0 {
			facts[n] = p.Boundary()
			for _, e := range preds[n] {
				w.push(e.From)
			}
		} else {
			facts[n] = p.Bottom()
			w.push(lang.PC(n))
		}
	}
	for {
		n, ok := w.pop()
		if !ok {
			return facts
		}
		if len(g.Out[n]) == 0 {
			continue // boundary node, fact fixed
		}
		acc := p.Bottom()
		for _, e := range g.Out[n] {
			acc = p.Join(acc, p.Transfer(e, facts[e.To]))
		}
		if !p.Equal(acc, facts[n]) {
			facts[n] = acc
			for _, e := range preds[n] {
				w.push(e.From)
			}
		}
	}
}

// Predecessors returns, per PC, the list of edges entering it.
func Predecessors(g *lang.CFG) [][]lang.Edge {
	in := make([][]lang.Edge, g.NumNodes)
	for _, edges := range g.Out {
		for _, e := range edges {
			in[e.To] = append(in[e.To], e)
		}
	}
	return in
}

// regSet is a compact bitset over RegIDs.
type regSet []uint64

func newRegSet(numRegs int) regSet {
	return make(regSet, (numRegs+63)/64)
}

func (s regSet) has(r lang.RegID) bool {
	i := int(r)
	return i >= 0 && i/64 < len(s) && s[i/64]&(1<<(i%64)) != 0
}

func (s regSet) add(r lang.RegID) {
	s[int(r)/64] |= 1 << (int(r) % 64)
}

func (s regSet) remove(r lang.RegID) {
	s[int(r)/64] &^= 1 << (int(r) % 64)
}

func (s regSet) union(t regSet) {
	for i := range t {
		s[i] |= t[i]
	}
}

func (s regSet) equal(t regSet) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

func (s regSet) clone() regSet {
	out := make(regSet, len(s))
	copy(out, s)
	return out
}
