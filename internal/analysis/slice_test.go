package analysis

import (
	"reflect"
	"strings"
	"testing"

	"paramra/internal/lang"
)

// TestSliceRemovals exercises each rewrite on a program combining every
// removable construct.
func TestSliceRemovals(t *testing.T) {
	sys := mustSystem(t, `system s { vars x wonly; domain 3; env t; dis c }
thread t {
  regs a b dead
  dead = 2
  a = load x
  store wonly a
  if 0 == 1 {
    assert false
  }
  while b == 1 { }
  store x 1
}
thread c {
  regs v
  v = load x
  assume v == 1
}`)
	sliced, stats := Slice(sys, SliceOptions{})
	if err := sliced.Validate(); err != nil {
		t.Fatalf("sliced system invalid: %v", err)
	}
	if !stats.Changed() {
		t.Fatalf("expected a reduction, got %v", stats)
	}
	printed := lang.Print(sliced)
	for _, gone := range []string{"dead", "wonly", "assert", "0 == 1", "while"} {
		if strings.Contains(printed, gone) {
			t.Errorf("sliced system still contains %q:\n%s", gone, printed)
		}
	}
	// The load stays (acquire semantics) and so does the final store.
	for _, kept := range []string{"load x", "store x 1"} {
		if !strings.Contains(printed, kept) {
			t.Errorf("sliced system lost %q:\n%s", kept, printed)
		}
	}
	// b is only read by the while guard, which became `assume !(b == 1)`
	// with b never assigned: the guard survives, so b must too.
	if stats.VarsBefore != 2 || stats.VarsAfter != 1 {
		t.Errorf("vars %d→%d, want 2→1", stats.VarsBefore, stats.VarsAfter)
	}
}

// TestSliceIdempotent: slicing a sliced system changes nothing.
func TestSliceIdempotent(t *testing.T) {
	srcs := []string{
		`system s { vars x wonly; domain 3; env t }
thread t { regs a unusedv; a = load x; store wonly a; store x (a + 1) }`,
		`system s { vars x; domain 2; env t; dis d }
thread t { regs a; a = 1; assume a == 0; store x 1 }
thread d { regs v; v = load x; assume v == 1; assert false }`,
	}
	for _, src := range srcs {
		sys := mustSystem(t, src)
		once, _ := Slice(sys, SliceOptions{})
		twice, stats := Slice(once, SliceOptions{})
		if stats.Changed() {
			t.Errorf("second slice still shrank the system: %v\n%s", stats, lang.Print(once))
		}
		if !reflect.DeepEqual(once, twice) {
			t.Errorf("slice not idempotent:\nonce:\n%s\ntwice:\n%s", lang.Print(once), lang.Print(twice))
		}
	}
}

// TestSliceKeepVars: a protected variable survives even when write-only.
func TestSliceKeepVars(t *testing.T) {
	sys := mustSystem(t, `system s { vars x goalv; domain 2; env t }
thread t { regs a; a = load x; store goalv a; store x 1 }`)
	sliced, _ := Slice(sys, SliceOptions{KeepVars: []string{"goalv"}})
	if _, ok := sliced.VarByName("goalv"); !ok {
		t.Fatalf("protected variable removed:\n%s", lang.Print(sliced))
	}
	if !strings.Contains(lang.Print(sliced), "store goalv") {
		t.Errorf("store to the protected variable removed:\n%s", lang.Print(sliced))
	}
	// Without protection both the store and the variable go.
	unprotected, _ := Slice(sys, SliceOptions{})
	if _, ok := unprotected.VarByName("goalv"); ok {
		t.Errorf("write-only variable survived an unprotected slice:\n%s", lang.Print(unprotected))
	}
}

// TestSliceKeepsDeadLoad: a load whose destination is dead must survive (it
// has acquire semantics under RA).
func TestSliceKeepsDeadLoad(t *testing.T) {
	sys := mustSystem(t, `system s { vars x y; domain 2; env t; dis d }
thread t { regs a b; a = load x; b = load y; store x b }
thread d { store x 1; store y 1 }`)
	sliced, _ := Slice(sys, SliceOptions{})
	if !strings.Contains(lang.Print(sliced), "load x") {
		t.Errorf("dead load removed — unsound under RA:\n%s", lang.Print(sliced))
	}
}

// TestSliceKeepsBlockingAssume: a reachable constant-false assume is a
// blocking statement, not dead code; it must survive (only its successors
// are unreachable).
func TestSliceKeepsBlockingAssume(t *testing.T) {
	sys := mustSystem(t, `system s { vars x; domain 2; env t }
thread t { regs a; a = load x; assume 0 == 1; store x 1 }`)
	sliced, _ := Slice(sys, SliceOptions{})
	printed := lang.Print(sliced)
	if !strings.Contains(printed, "assume 0 == 1") {
		t.Errorf("blocking assume removed — would add behaviours:\n%s", printed)
	}
	if strings.Contains(printed, "store x 1") {
		t.Errorf("unreachable store survived:\n%s", printed)
	}
}

// TestSliceDoesNotMutateInput: the input system must be untouched.
func TestSliceDoesNotMutateInput(t *testing.T) {
	sys := mustSystem(t, `system s { vars x wonly; domain 2; env t }
thread t { regs a; a = load x; store wonly a; store x 1 }`)
	before := lang.Print(sys)
	Slice(sys, SliceOptions{})
	if after := lang.Print(sys); after != before {
		t.Errorf("input mutated:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

// TestSliceSharedProgram: a program referenced as both env and dis is
// rewritten once and stays shared.
func TestSliceSharedProgram(t *testing.T) {
	prog := mustProgram(t, "thread t { regs a dead; dead = 1; a = load x; store x (a + 1) }", []string{"x"})
	sys := &lang.System{Name: "s", Vars: []string{"x"}, Dom: 3, Env: prog, Dis: []*lang.Program{prog}}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	sliced, stats := Slice(sys, SliceOptions{})
	if sliced.Env != sliced.Dis[0] {
		t.Error("program sharing lost")
	}
	if stats.RegsAfter != 1 {
		t.Errorf("regs after = %d, want 1 (dead removed once)", stats.RegsAfter)
	}
}
