package analysis

import (
	"fmt"
	"sort"
	"strings"

	"paramra/internal/lang"
)

// Diagnostic is one lint finding. File is filled in by the caller (the
// analyses only see parsed systems); Thread is empty for system-level
// findings.
type Diagnostic struct {
	File   string
	Pos    lang.Pos
	Rule   string
	Thread string
	Msg    string
}

// String renders the diagnostic as "file:line:col: rule: [thread t] msg".
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.File != "" {
		b.WriteString(d.File)
		b.WriteByte(':')
	}
	b.WriteString(d.Pos.String())
	b.WriteString(": ")
	b.WriteString(d.Rule)
	b.WriteString(": ")
	if d.Thread != "" {
		fmt.Fprintf(&b, "thread %s: ", d.Thread)
	}
	b.WriteString(d.Msg)
	return b.String()
}

// Lint rule identifiers, as printed by ravet and used in golden tests.
const (
	RuleDeadStore         = "dead-store"
	RuleDeadLoad          = "dead-load"
	RuleUnreachableCode   = "unreachable-code"
	RuleUnreachableAssert = "unreachable-assert"
	RuleWriteOnlyVar      = "write-only-var"
	RuleAssumeFalse       = "assume-false"
	RuleCASNeverSucceeds  = "cas-never-succeeds"
	RuleUseBeforeDef      = "use-before-def"
	RuleEmptyLoop         = "empty-loop"
)

// AnalyzeSystem runs every lint rule over the system and returns the
// findings sorted by position. It never mutates the system.
func AnalyzeSystem(sys *lang.System) []Diagnostic {
	l := &linter{sys: sys, vv: PossibleVarValues(sys), fp: Footprint(sys)}
	seenProg := map[*lang.Program]bool{}
	for _, p := range sys.Threads() {
		if seenProg[p] {
			continue
		}
		seenProg[p] = true
		l.lintProgram(p)
	}
	l.lintVars()
	SortDiagnostics(l.out)
	return l.out
}

// SortDiagnostics orders findings by line, column, then rule — the order
// every lint producer (this package, internal/absint) and every consumer
// (ravet, golden tests) agrees on.
func SortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Rule < b.Rule
	})
}

// Severity maps a lint rule to its reporting severity for machine-readable
// output: "info" for findings that make verification trivial rather than
// indicate a defect, "warning" for everything else.
func Severity(rule string) string {
	switch rule {
	case RuleUnreachableAssert, "assert-never-satisfiable":
		return "info"
	default:
		return "warning"
	}
}

type linter struct {
	sys *lang.System
	vv  *VarValues
	fp  *SystemFootprint
	out []Diagnostic
	// seen dedupes (rule, pos, msg) triples: several CFG edges may stem
	// from the same statement.
	seen map[string]bool
}

func (l *linter) report(pos lang.Pos, rule, thread, format string, args ...interface{}) {
	d := Diagnostic{Pos: pos, Rule: rule, Thread: thread, Msg: fmt.Sprintf(format, args...)}
	key := fmt.Sprintf("%s|%v|%s|%s", rule, pos, thread, d.Msg)
	if l.seen == nil {
		l.seen = map[string]bool{}
	}
	if l.seen[key] {
		return
	}
	l.seen[key] = true
	l.out = append(l.out, d)
}

func (l *linter) lintProgram(p *lang.Program) {
	g := lang.Compile(p)
	live := LiveRegs(g)
	consts := PropagateConsts(g, l.sys, l.vv)
	unassigned := UnassignedRegs(g)
	regName := p.RegName
	varName := l.sys.VarName

	for _, edges := range g.Out {
		for _, e := range edges {
			if !consts.Reachable(e.From) {
				continue // flagged by the unreachable-code frontier below
			}
			switch e.Op.Kind {
			case lang.OpAssign:
				if live.DeadDef(e) {
					l.report(e.Op.Pos, RuleDeadStore, p.Name,
						"value assigned to register '%s' is never read", regName(e.Op.Reg))
				}
				l.checkUses(p, e, unassigned, lang.ExprRegs(e.Op.E))
			case lang.OpLoad:
				if live.DeadDef(e) {
					l.report(e.Op.Pos, RuleDeadLoad, p.Name,
						"value loaded from '%s' into register '%s' is never read", varName(e.Op.Var), regName(e.Op.Reg))
				}
			case lang.OpAssume:
				if v, ok := consts.EvalAt(e.From, e.Op.E); ok && v == 0 {
					l.report(e.Op.Pos, RuleAssumeFalse, p.Name,
						"condition '%s' is constant false: this path can never proceed", lang.ExprString(e.Op.E, p.Regs))
				}
				l.checkUses(p, e, unassigned, lang.ExprRegs(e.Op.E))
			case lang.OpStore:
				l.checkUses(p, e, unassigned, lang.ExprRegs(e.Op.E))
			case lang.OpCASOp:
				if v, ok := consts.EvalAt(e.From, e.Op.E); ok && !l.vv.CanHold(e.Op.Var, v) {
					l.report(e.Op.Pos, RuleCASNeverSucceeds, p.Name,
						"cas on '%s' expects %d, a value the variable can never hold", varName(e.Op.Var), int(v))
				}
				l.checkUses(p, e, unassigned, append(lang.ExprRegs(e.Op.E), lang.ExprRegs(e.Op.E2)...))
			}
		}
	}

	l.lintUnreachable(p, g, consts)
	l.lintEmptyLoops(p, p.Body)
}

// checkUses flags registers read while possibly unassigned.
func (l *linter) checkUses(p *lang.Program, e lang.Edge, ua *MaybeUnassigned, used []lang.RegID) {
	for _, r := range used {
		if ua.Unassigned(e.From, r) {
			l.report(e.Op.Pos, RuleUseBeforeDef, p.Name,
				"register '%s' may be read before it is assigned (it reads as 0)", p.RegName(r))
		}
	}
}

// lintUnreachable reports the statements of every unreachable CFG region,
// and every `assert false` the analysis proves unreachable (if ALL asserts
// of the system are unreachable the parameterized verification is trivially
// SAFE, so the expensive procedure can be skipped — ravet points that out
// per assert).
func (l *linter) lintUnreachable(p *lang.Program, g *lang.CFG, consts *ConstProp) {
	for _, edges := range g.Out {
		for _, e := range edges {
			if consts.Reachable(e.From) {
				continue
			}
			if e.Op.Kind == lang.OpAssertFail {
				l.report(e.Op.Pos, RuleUnreachableAssert, p.Name,
					"'assert false' is unreachable: the goal cannot be violated here, verification of this path is trivial")
				continue
			}
			if e.Op.Pos.IsValid() && e.Op.Kind != lang.OpNop {
				l.report(e.Op.Pos, RuleUnreachableCode, p.Name, "unreachable code")
			}
		}
	}
}

// lintEmptyLoops walks the AST for loops with empty bodies.
func (l *linter) lintEmptyLoops(p *lang.Program, st lang.Stmt) {
	switch st := st.(type) {
	case lang.Seq:
		for _, s := range st.Stmts {
			l.lintEmptyLoops(p, s)
		}
	case lang.Choice:
		for _, s := range st.Branches {
			l.lintEmptyLoops(p, s)
		}
	case lang.Star:
		if emptyBody(st.Body) {
			l.report(st.Pos, RuleEmptyLoop, p.Name, "loop body is empty")
		} else {
			l.lintEmptyLoops(p, st.Body)
		}
	case lang.While:
		if emptyBody(st.Body) {
			l.report(st.Pos, RuleEmptyLoop, p.Name,
				"while body is empty (the loop only waits for the condition to turn false)")
		} else {
			l.lintEmptyLoops(p, st.Body)
		}
	}
}

func emptyBody(st lang.Stmt) bool {
	switch st := st.(type) {
	case lang.Skip:
		return true
	case lang.Seq:
		return len(st.Stmts) == 0
	default:
		return false
	}
}

// lintVars reports system-level shared-variable findings: variables that
// are written but never read. The diagnostic is attached to the first store
// found in thread order.
func (l *linter) lintVars() {
	for v := range l.sys.Vars {
		if !l.fp.WriteOnly(lang.VarID(v)) {
			continue
		}
		pos, thread := l.firstStore(lang.VarID(v))
		l.report(pos, RuleWriteOnlyVar, thread,
			"shared variable '%s' is written but never read", l.sys.VarName(lang.VarID(v)))
	}
}

func (l *linter) firstStore(v lang.VarID) (lang.Pos, string) {
	for _, p := range l.sys.Threads() {
		g := lang.Compile(p)
		for _, edges := range g.Out {
			for _, e := range edges {
				if e.Op.Kind == lang.OpStore && e.Op.Var == v {
					return e.Op.Pos, p.Name
				}
			}
		}
	}
	return lang.Pos{}, ""
}
