package analysis

import (
	"paramra/internal/lang"
)

// constVal is a flat constant lattice element for one register:
// bottom (never assigned on any path considered) < const v < top (varies).
type constVal struct {
	kind int // cBot, cConst, cTop
	val  lang.Val
}

const (
	cBot = iota
	cConst
	cTop
)

func joinConst(a, b constVal) constVal {
	switch {
	case a.kind == cBot:
		return b
	case b.kind == cBot:
		return a
	case a.kind == cConst && b.kind == cConst && a.val == b.val:
		return a
	default:
		return constVal{kind: cTop}
	}
}

// constFact is the forward constant-propagation fact: reachability plus one
// lattice element per register. The unreachable fact is the problem's
// bottom.
type constFact struct {
	reachable bool
	regs      []constVal
}

func (f constFact) clone() constFact {
	out := constFact{reachable: f.reachable, regs: make([]constVal, len(f.regs))}
	copy(out.regs, f.regs)
	return out
}

func constFactEqual(a, b constFact) bool {
	if a.reachable != b.reachable {
		return false
	}
	for i := range a.regs {
		if a.regs[i] != b.regs[i] {
			return false
		}
	}
	return true
}

// ConstProp is the result of reaching-constant propagation over one
// program's CFG, relative to a system-wide over-approximation of the values
// each shared variable can hold.
type ConstProp struct {
	CFG   *lang.CFG
	facts []constFact
}

// Reachable reports whether pc can be reached from the entry on some path
// the analysis could not rule out (paths through constant-false assumes and
// never-matching CAS expects are ruled out).
func (c *ConstProp) Reachable(pc lang.PC) bool { return c.facts[pc].reachable }

// EvalAt constant-evaluates e at pc; ok is false when the value is not a
// compile-time constant there (or pc is unreachable).
func (c *ConstProp) EvalAt(pc lang.PC, e lang.Expr) (lang.Val, bool) {
	f := c.facts[pc]
	if !f.reachable {
		return 0, false
	}
	return constEval(e, f.regs)
}

// constEval evaluates e under a partial register valuation; ok is false
// when any register involved is non-constant. Short-circuit cases where one
// operand decides the result (0 && _, 1 || _) are folded even if the other
// operand is unknown, matching Expr.Eval's semantics.
func constEval(e lang.Expr, regs []constVal) (lang.Val, bool) {
	switch e := e.(type) {
	case lang.ConstExpr:
		return e.V, true
	case lang.RegExpr:
		i := int(e.Reg)
		if i < 0 || i >= len(regs) {
			return 0, true // out-of-range registers read as 0 (Expr.Eval)
		}
		if regs[i].kind == cConst {
			return regs[i].val, true
		}
		if regs[i].kind == cBot {
			return 0, true // never assigned: the implicit initial value
		}
		return 0, false
	case lang.UnExpr:
		v, ok := constEval(e.E, regs)
		if !ok {
			return 0, false
		}
		return lang.UnExpr{Op: e.Op, E: lang.Num(v)}.Eval(nil), true
	case lang.BinExpr:
		l, lok := constEval(e.L, regs)
		if e.Op == lang.OpAnd {
			if lok && l == 0 {
				return 0, true
			}
			r, rok := constEval(e.R, regs)
			if !lok || !rok {
				return 0, false
			}
			return boolToVal(l != 0 && r != 0), true
		}
		if e.Op == lang.OpOr {
			if lok && l != 0 {
				return 1, true
			}
			r, rok := constEval(e.R, regs)
			if !lok || !rok {
				return 0, false
			}
			return boolToVal(l != 0 || r != 0), true
		}
		r, rok := constEval(e.R, regs)
		if !lok || !rok {
			return 0, false
		}
		return lang.BinExpr{Op: e.Op, L: lang.Num(l), R: lang.Num(r)}.Eval(nil), true
	default:
		return 0, false
	}
}

func boolToVal(b bool) lang.Val {
	if b {
		return 1
	}
	return 0
}

// VarValues over-approximates, per shared variable, the set of values any
// message on that variable can carry across the whole system: the initial
// value plus every syntactically-constant stored value; a single
// non-constant store makes the variable's set "anything".
type VarValues struct {
	Dom int
	// any[v] is true when stores to v include a non-constant expression.
	any []bool
	// vals[v] is the set of known possible values of v.
	vals []map[lang.Val]bool
}

// normVal reduces a value into the domain [0, dom), matching the norm
// applied by both execution engines at assignment/store/CAS boundaries
// (internal/ra, internal/simplified).
func normVal(v lang.Val, dom int) lang.Val {
	d := lang.Val(dom)
	if d <= 0 {
		return v
	}
	return ((v % d) + d) % d
}

// CanHold reports whether variable v can ever hold value d (an
// over-approximation: true may be spurious, false is definite). d is
// normalized into the domain first: the engines reduce every stored or
// CAS-expected value mod Dom, so e.g. expecting 2 in domain 2 really
// expects 0.
func (vv *VarValues) CanHold(v lang.VarID, d lang.Val) bool {
	if int(v) < 0 || int(v) >= len(vv.vals) {
		return true
	}
	return vv.any[v] || vv.vals[v][normVal(d, vv.Dom)]
}

// PossibleVarValues scans every thread of the system once.
func PossibleVarValues(sys *lang.System) *VarValues {
	vv := &VarValues{
		Dom:  sys.Dom,
		any:  make([]bool, len(sys.Vars)),
		vals: make([]map[lang.Val]bool, len(sys.Vars)),
	}
	for v := range sys.Vars {
		vv.vals[v] = map[lang.Val]bool{sys.Init: true}
	}
	record := func(v lang.VarID, e lang.Expr) {
		if c, ok := e.(lang.ConstExpr); ok {
			vv.vals[v][normVal(c.V, sys.Dom)] = true
		} else {
			vv.any[v] = true
		}
	}
	for _, p := range sys.Threads() {
		g := lang.Compile(p)
		for _, edges := range g.Out {
			for _, e := range edges {
				switch e.Op.Kind {
				case lang.OpStore:
					record(e.Op.Var, e.Op.E)
				case lang.OpCASOp:
					record(e.Op.Var, e.Op.E2)
				}
			}
		}
	}
	return vv
}

// PropagateConsts runs forward constant propagation over g. The system-wide
// vv refines loads (a variable nobody ever writes always reads its initial
// value) and CAS feasibility (an expected value the variable can never hold
// makes the success edge unreachable). Registers start at 0, matching both
// execution engines (internal/ra, internal/simplified).
func PropagateConsts(g *lang.CFG, sys *lang.System, vv *VarValues) *ConstProp {
	numRegs := g.Prog.NumRegs()
	neverWritten := make([]bool, len(sys.Vars))
	for v := range sys.Vars {
		neverWritten[v] = !vv.any[v] && len(vv.vals[v]) == 1 && vv.vals[v][sys.Init]
	}
	boundary := func() constFact {
		f := constFact{reachable: true, regs: make([]constVal, numRegs)}
		for i := range f.regs {
			f.regs[i] = constVal{kind: cConst, val: 0}
		}
		return f
	}
	facts := Solve(g, Problem[constFact]{
		Dir:      Forward,
		Bottom:   func() constFact { return constFact{regs: make([]constVal, numRegs)} },
		Boundary: boundary,
		Join: func(a, b constFact) constFact {
			if !a.reachable {
				return b.clone()
			}
			if !b.reachable {
				return a.clone()
			}
			out := constFact{reachable: true, regs: make([]constVal, len(a.regs))}
			for i := range out.regs {
				out.regs[i] = joinConst(a.regs[i], b.regs[i])
			}
			return out
		},
		Equal: constFactEqual,
		Transfer: func(e lang.Edge, in constFact) constFact {
			if !in.reachable {
				return in
			}
			switch e.Op.Kind {
			case lang.OpAssume:
				if v, ok := constEval(e.Op.E, in.regs); ok && v == 0 {
					return constFact{regs: make([]constVal, numRegs)} // blocks forever
				}
				return in
			case lang.OpAssign:
				out := in.clone()
				if v, ok := constEval(e.Op.E, in.regs); ok {
					// The engines norm assigned values into the domain;
					// tracking the raw value would diverge from execution.
					out.regs[e.Op.Reg] = constVal{kind: cConst, val: normVal(v, sys.Dom)}
				} else {
					out.regs[e.Op.Reg] = constVal{kind: cTop}
				}
				return out
			case lang.OpLoad:
				out := in.clone()
				if neverWritten[e.Op.Var] {
					out.regs[e.Op.Reg] = constVal{kind: cConst, val: sys.Init}
				} else {
					out.regs[e.Op.Reg] = constVal{kind: cTop}
				}
				return out
			case lang.OpCASOp:
				if v, ok := constEval(e.Op.E, in.regs); ok && !vv.CanHold(e.Op.Var, v) {
					return constFact{regs: make([]constVal, numRegs)} // can never succeed
				}
				return in
			default:
				return in
			}
		},
	})
	return &ConstProp{CFG: g, facts: facts}
}
