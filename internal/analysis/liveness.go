package analysis

import (
	"paramra/internal/lang"
)

// Liveness is the result of register-liveness analysis over one program's
// CFG: which registers may still be read before being overwritten.
type Liveness struct {
	CFG *lang.CFG
	// live[pc] is the set of registers live when control is at pc.
	live []regSet
}

// Live reports whether register r is live at pc.
func (l *Liveness) Live(pc lang.PC, r lang.RegID) bool {
	return l.live[pc].has(r)
}

// DeadDef reports whether edge e defines a register whose value is dead,
// i.e. e is an assignment or load whose destination is not live at the
// target PC. (A dead *load* still has acquire semantics under RA — it
// synchronizes the thread's view — so it is lint-worthy but not removable.)
func (l *Liveness) DeadDef(e lang.Edge) bool {
	switch e.Op.Kind {
	case lang.OpAssign, lang.OpLoad:
		return !l.live[e.To].has(e.Op.Reg)
	default:
		return false
	}
}

// LiveRegs runs backward register liveness on g.
func LiveRegs(g *lang.CFG) *Liveness {
	numRegs := g.Prog.NumRegs()
	live := Solve(g, Problem[regSet]{
		Dir:      Backward,
		Bottom:   func() regSet { return newRegSet(numRegs) },
		Boundary: func() regSet { return newRegSet(numRegs) },
		Join: func(a, b regSet) regSet {
			out := a.clone()
			out.union(b)
			return out
		},
		Equal: func(a, b regSet) bool { return a.equal(b) },
		Transfer: func(e lang.Edge, after regSet) regSet {
			out := after.clone()
			// Kill the defined register first, then add the uses.
			switch e.Op.Kind {
			case lang.OpAssign:
				out.remove(e.Op.Reg)
				for _, r := range lang.ExprRegs(e.Op.E) {
					out.add(r)
				}
			case lang.OpLoad:
				out.remove(e.Op.Reg)
			case lang.OpAssume, lang.OpStore:
				for _, r := range lang.ExprRegs(e.Op.E) {
					out.add(r)
				}
			case lang.OpCASOp:
				for _, r := range lang.ExprRegs(e.Op.E) {
					out.add(r)
				}
				for _, r := range lang.ExprRegs(e.Op.E2) {
					out.add(r)
				}
			}
			return out
		},
	})
	return &Liveness{CFG: g, live: live}
}

// MaybeUnassigned runs a forward definite-assignment analysis: the result
// reports, per PC, the set of registers that are NOT assigned (by a local
// assignment or a load) on some path from the entry. Reading such a
// register observes its implicit initial value — legal, but usually a
// programming mistake, so `ravet` flags it.
type MaybeUnassigned struct {
	CFG *lang.CFG
	// unassigned[pc]: registers lacking a definition on some entry path.
	unassigned []regSet
}

// Unassigned reports whether r may be unassigned when control reaches pc.
func (m *MaybeUnassigned) Unassigned(pc lang.PC, r lang.RegID) bool {
	return m.unassigned[pc].has(r)
}

// UnassignedRegs computes the may-be-unassigned analysis for g.
func UnassignedRegs(g *lang.CFG) *MaybeUnassigned {
	numRegs := g.Prog.NumRegs()
	all := func() regSet {
		s := newRegSet(numRegs)
		for r := 0; r < numRegs; r++ {
			s.add(lang.RegID(r))
		}
		return s
	}
	unassigned := Solve(g, Problem[regSet]{
		Dir: Forward,
		// Bottom is the empty set: an unvisited PC constrains nothing.
		Bottom: func() regSet { return newRegSet(numRegs) },
		// At entry every register is unassigned.
		Boundary: all,
		Join: func(a, b regSet) regSet {
			out := a.clone()
			out.union(b)
			return out
		},
		Equal: func(a, b regSet) bool { return a.equal(b) },
		Transfer: func(e lang.Edge, before regSet) regSet {
			switch e.Op.Kind {
			case lang.OpAssign, lang.OpLoad:
				out := before.clone()
				out.remove(e.Op.Reg)
				return out
			default:
				return before
			}
		},
	})
	return &MaybeUnassigned{CFG: g, unassigned: unassigned}
}
