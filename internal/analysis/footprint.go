package analysis

import (
	"fmt"
	"strings"

	"paramra/internal/lang"
)

// VarFootprint counts how one thread accesses one shared variable.
type VarFootprint struct {
	Loads  int
	Stores int
	CASes  int
}

// Accessed reports whether the variable is touched at all.
func (f VarFootprint) Accessed() bool { return f.Loads+f.Stores+f.CASes > 0 }

// ProgFootprint is a single thread's shared-memory footprint, refining the
// whole-program acyc/nocas classification of lang.Classify to per-variable
// granularity: a thread may be nocas globally yet, more usefully, nocas on
// every variable except the one lock word it spins on.
type ProgFootprint struct {
	Prog *lang.Program
	// Vars is indexed by VarID.
	Vars []VarFootprint
	// Type is the thread's whole-program classification.
	Type lang.ThreadType
}

// NoCASOn reports whether the thread is CAS-free on variable v (the
// per-variable refinement of the paper's nocas restriction).
func (pf *ProgFootprint) NoCASOn(v lang.VarID) bool {
	return int(v) >= len(pf.Vars) || pf.Vars[v].CASes == 0
}

// SystemFootprint aggregates per-thread footprints over a system. Threads
// are ordered as in System.Threads() (env first, then dis).
type SystemFootprint struct {
	Sys     *lang.System
	Threads []*ProgFootprint
	// Totals sums the per-thread footprints, counting a program shared by
	// several clauses once per clause it appears in.
	Totals []VarFootprint
}

// Footprint computes the read/write/CAS footprint of every thread.
func Footprint(sys *lang.System) *SystemFootprint {
	sf := &SystemFootprint{Sys: sys, Totals: make([]VarFootprint, len(sys.Vars))}
	for _, p := range sys.Threads() {
		pf := &ProgFootprint{Prog: p, Vars: make([]VarFootprint, len(sys.Vars))}
		g := lang.Compile(p)
		pf.Type = lang.ThreadType{Acyclic: g.Acyclic(), NoCAS: g.CASFree()}
		for _, edges := range g.Out {
			for _, e := range edges {
				switch e.Op.Kind {
				case lang.OpLoad:
					pf.Vars[e.Op.Var].Loads++
				case lang.OpStore:
					pf.Vars[e.Op.Var].Stores++
				case lang.OpCASOp:
					pf.Vars[e.Op.Var].CASes++
				}
			}
		}
		sf.Threads = append(sf.Threads, pf)
		for v := range sf.Totals {
			sf.Totals[v].Loads += pf.Vars[v].Loads
			sf.Totals[v].Stores += pf.Vars[v].Stores
			sf.Totals[v].CASes += pf.Vars[v].CASes
		}
	}
	return sf
}

// WriteOnly reports whether variable v is stored somewhere but never loaded
// and never CAS'd (a CAS both reads and writes): its messages are never
// observed, so stores to it are removable by the slicer.
func (sf *SystemFootprint) WriteOnly(v lang.VarID) bool {
	t := sf.Totals[v]
	return t.Stores > 0 && t.Loads == 0 && t.CASes == 0
}

// Unused reports whether variable v is never accessed at all.
func (sf *SystemFootprint) Unused(v lang.VarID) bool {
	return !sf.Totals[v].Accessed()
}

// NeverWritten reports whether no thread ever stores or CASes v, so every
// load of v yields the initial value.
func (sf *SystemFootprint) NeverWritten(v lang.VarID) bool {
	t := sf.Totals[v]
	return t.Stores == 0 && t.CASes == 0
}

// String renders the footprint as a per-thread table, e.g.
//
//	producer (nocas, acyc): x{st:1} y{ld:1}
//	consumer (nocas, acyc): x{ld:1} y{st:1}
func (sf *SystemFootprint) String() string {
	var b strings.Builder
	for _, pf := range sf.Threads {
		fmt.Fprintf(&b, "%s %s:", pf.Prog.Name, pf.Type)
		touched := false
		for v, f := range pf.Vars {
			if !f.Accessed() {
				continue
			}
			touched = true
			b.WriteByte(' ')
			b.WriteString(sf.Sys.VarName(lang.VarID(v)))
			b.WriteByte('{')
			var parts []string
			if f.Loads > 0 {
				parts = append(parts, fmt.Sprintf("ld:%d", f.Loads))
			}
			if f.Stores > 0 {
				parts = append(parts, fmt.Sprintf("st:%d", f.Stores))
			}
			if f.CASes > 0 {
				parts = append(parts, fmt.Sprintf("cas:%d", f.CASes))
			}
			b.WriteString(strings.Join(parts, ","))
			b.WriteByte('}')
		}
		if !touched {
			b.WriteString(" (no shared accesses)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
