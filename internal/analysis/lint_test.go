package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paramra/internal/lang"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden .want files")

// TestDefectFixtures runs the linter over every seeded-defect fixture and
// compares the diagnostics against the golden .want file. Each fixture is
// named after the rule it seeds, which must appear among the findings.
func TestDefectFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "defects", "*.ra"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	ruleSeen := map[string]bool{}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := lang.ParseSystem(string(data))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			ds := AnalyzeSystem(sys)
			if len(ds) == 0 {
				t.Fatalf("fixture %s produced no diagnostics", file)
			}
			var lines []string
			for _, d := range ds {
				lines = append(lines, d.String())
				ruleSeen[d.Rule] = true
			}
			got := strings.Join(lines, "\n") + "\n"
			want := strings.TrimSuffix(file, ".ra") + ".want"
			if *updateGolden {
				if err := os.WriteFile(want, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantData, err := os.ReadFile(want)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(wantData) {
				t.Errorf("diagnostics mismatch for %s:\ngot:\n%swant:\n%s", file, got, wantData)
			}
			// The seeded rule (the file's base name, modulo the cas-never
			// shorthand) must be among the findings.
			seeded := strings.TrimSuffix(filepath.Base(file), ".ra")
			if seeded == "cas-never" {
				seeded = RuleCASNeverSucceeds
			}
			found := false
			for _, d := range ds {
				if d.Rule == seeded {
					found = true
				}
			}
			if !found {
				t.Errorf("fixture %s did not trigger rule %q; got:\n%s", file, seeded, got)
			}
		})
	}
	if *updateGolden {
		return
	}
	// Every lint rule must be exercised by some fixture.
	for _, rule := range []string{
		RuleDeadStore, RuleDeadLoad, RuleUnreachableCode, RuleUnreachableAssert,
		RuleWriteOnlyVar, RuleAssumeFalse, RuleCASNeverSucceeds, RuleUseBeforeDef, RuleEmptyLoop,
	} {
		if !ruleSeen[rule] {
			t.Errorf("no fixture triggers rule %q", rule)
		}
	}
}

// TestShippedSystemsClean checks ravet has nothing to say about the example
// systems shipped in testdata/systems.
func TestShippedSystemsClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "systems", "*.ra"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no shipped systems found: %v", err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := lang.ParseSystem(string(data))
		if err != nil {
			t.Fatalf("%s: parse: %v", file, err)
		}
		for _, d := range AnalyzeSystem(sys) {
			t.Errorf("%s: unexpected diagnostic: %s", file, d)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "f.ra", Pos: lang.Pos{Line: 3, Col: 7}, Rule: "dead-store", Thread: "t", Msg: "m"}
	if got, want := d.String(), "f.ra:3:7: dead-store: thread t: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d = Diagnostic{Pos: lang.Pos{Line: 2}, Rule: "write-only-var", Msg: "m"}
	if got, want := d.String(), "2: write-only-var: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
