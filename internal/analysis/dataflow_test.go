package analysis

import (
	"strings"
	"testing"

	"paramra/internal/lang"
)

func mustProgram(t *testing.T, src string, vars []string) *lang.Program {
	t.Helper()
	p, err := lang.ParseProgram(src, vars)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustSystem(t *testing.T, src string) *lang.System {
	t.Helper()
	sys, err := lang.ParseSystem(src)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestLivenessStraightLine: in a = 1; b = a; store x b, register a dies after
// b = a, and b dies after the store.
func TestLivenessStraightLine(t *testing.T) {
	p := mustProgram(t, "thread t { regs a b; a = 1; b = a; store x b }", []string{"x"})
	g := lang.Compile(p)
	live := LiveRegs(g)
	var asgA, asgB, st lang.Edge
	for _, edges := range g.Out {
		for _, e := range edges {
			switch {
			case e.Op.Kind == lang.OpAssign && e.Op.Reg == 0:
				asgA = e
			case e.Op.Kind == lang.OpAssign && e.Op.Reg == 1:
				asgB = e
			case e.Op.Kind == lang.OpStore:
				st = e
			}
		}
	}
	if !live.Live(asgA.To, 0) {
		t.Error("a should be live right after a = 1 (read by b = a)")
	}
	if live.Live(asgB.To, 0) {
		t.Error("a should be dead after b = a")
	}
	if !live.Live(asgB.To, 1) {
		t.Error("b should be live after b = a (read by the store)")
	}
	if live.Live(st.To, 1) {
		t.Error("b should be dead after the store")
	}
	if live.DeadDef(asgA) || live.DeadDef(asgB) {
		t.Error("no definition in the chain is dead")
	}
}

// TestLivenessLoop: a register read inside a loop stays live around the back
// edge.
func TestLivenessLoop(t *testing.T) {
	p := mustProgram(t, "thread t { regs n; n = 1; loop { store x n } }", []string{"x"})
	g := lang.Compile(p)
	live := LiveRegs(g)
	for _, edges := range g.Out {
		for _, e := range edges {
			if e.Op.Kind == lang.OpAssign {
				if !live.Live(e.To, 0) {
					t.Error("n must stay live through the loop")
				}
				if live.DeadDef(e) {
					t.Error("n = 1 is not a dead definition")
				}
			}
		}
	}
}

// TestConstPropBranchJoin: a register constant on both branches with the
// same value stays constant at the join; differing values go to top.
func TestConstPropBranchJoin(t *testing.T) {
	sys := mustSystem(t, `system s { vars x; domain 4; env t }
thread t {
  regs a b
  choice { a = 2; b = 1 } or { a = 2; b = 3 }
  store x a
}`)
	g := lang.Compile(sys.Env)
	vv := PossibleVarValues(sys)
	cp := PropagateConsts(g, sys, vv)
	var st lang.Edge
	for _, edges := range g.Out {
		for _, e := range edges {
			if e.Op.Kind == lang.OpStore {
				st = e
			}
		}
	}
	if v, ok := cp.EvalAt(st.From, lang.Reg(0)); !ok || v != 2 {
		t.Errorf("a at the join = (%d, %v), want constant 2", v, ok)
	}
	if _, ok := cp.EvalAt(st.From, lang.Reg(1)); ok {
		t.Error("b differs across branches; must not be constant at the join")
	}
}

// TestConstPropUnreachable: a constant-false assume makes everything after
// it unreachable, and EvalAt reports not-a-constant there.
func TestConstPropUnreachable(t *testing.T) {
	sys := mustSystem(t, `system s { vars x; domain 2; env t }
thread t { regs a; assume 0 == 1; a = load x; store x 1 }`)
	g := lang.Compile(sys.Env)
	cp := PropagateConsts(g, sys, PossibleVarValues(sys))
	if !cp.Reachable(g.Entry) {
		t.Fatal("entry must be reachable")
	}
	for _, edges := range g.Out {
		for _, e := range edges {
			if e.Op.Kind == lang.OpLoad || e.Op.Kind == lang.OpStore {
				if cp.Reachable(e.From) {
					t.Errorf("%v after a constant-false assume should be unreachable", e.Op.Kind)
				}
				if _, ok := cp.EvalAt(e.From, lang.Num(1)); ok {
					t.Error("EvalAt at an unreachable PC must report not-constant")
				}
			}
		}
	}
}

// TestConstPropNeverWrittenVar: loads from a variable nobody writes yield
// the initial value as a constant.
func TestConstPropNeverWrittenVar(t *testing.T) {
	sys := mustSystem(t, `system s { vars ro rw; domain 3; init 2; env t }
thread t { regs a b; a = load ro; b = load rw; store rw b }`)
	g := lang.Compile(sys.Env)
	cp := PropagateConsts(g, sys, PossibleVarValues(sys))
	exit := terminalPC(g)
	if v, ok := cp.EvalAt(exit, lang.Reg(0)); !ok || v != 2 {
		t.Errorf("load from never-written var = (%d, %v), want constant init 2", v, ok)
	}
	if _, ok := cp.EvalAt(exit, lang.Reg(1)); ok {
		t.Error("load from a written var must be non-constant")
	}
}

func terminalPC(g *lang.CFG) lang.PC {
	for n := 0; n < g.NumNodes; n++ {
		if len(g.Out[n]) == 0 {
			return lang.PC(n)
		}
	}
	return g.Entry
}

// TestUnassignedRegs: a register is maybe-unassigned until every path has
// defined it.
func TestUnassignedRegs(t *testing.T) {
	p := mustProgram(t, "thread t { regs a; choice { a = 1 } or { skip }; store x a }", []string{"x"})
	g := lang.Compile(p)
	ua := UnassignedRegs(g)
	if !ua.Unassigned(g.Entry, 0) {
		t.Error("a is unassigned at entry")
	}
	for _, edges := range g.Out {
		for _, e := range edges {
			if e.Op.Kind == lang.OpStore && !ua.Unassigned(e.From, 0) {
				t.Error("a may still be unassigned at the store (skip branch)")
			}
		}
	}
}

// TestVarValues: the possible-value over-approximation collects the initial
// value and syntactic store/CAS constants, and degrades to "anything" on a
// non-constant store.
func TestVarValues(t *testing.T) {
	sys := mustSystem(t, `system s { vars c anyv; domain 5; env t }
thread t { regs r; store c 3; cas c 3 4; r = load c; store anyv r }`)
	vv := PossibleVarValues(sys)
	c, _ := sys.VarByName("c")
	a, _ := sys.VarByName("anyv")
	for val, want := range map[lang.Val]bool{0: true, 3: true, 4: true, 1: false, 2: false} {
		if got := vv.CanHold(c, val); got != want {
			t.Errorf("CanHold(c, %d) = %v, want %v", val, got, want)
		}
	}
	if !vv.CanHold(a, 4) {
		t.Error("a variable with a non-constant store can hold anything")
	}
}

// TestFootprint covers the per-variable refinement of acyc/nocas.
func TestFootprint(t *testing.T) {
	sys := mustSystem(t, `system s { vars lock data out; domain 2; env w; dis r }
thread w { regs v; cas lock 0 1; v = load data; store data 1 }
thread r { store out 1 }`)
	fp := Footprint(sys)
	lock, _ := sys.VarByName("lock")
	data, _ := sys.VarByName("data")
	out, _ := sys.VarByName("out")
	w := fp.Threads[0]
	if w.NoCASOn(lock) {
		t.Error("thread w CASes lock")
	}
	if !w.NoCASOn(data) {
		t.Error("thread w is CAS-free on data")
	}
	if !fp.WriteOnly(out) {
		t.Error("out is write-only")
	}
	if fp.WriteOnly(data) {
		t.Error("data is loaded, not write-only")
	}
	if fp.NeverWritten(lock) {
		t.Error("lock is CASed, so it is written")
	}
	if fp.Unused(lock) || fp.Unused(out) {
		t.Error("lock and out are both accessed")
	}
	s := fp.String()
	if !strings.Contains(s, "lock{cas:1}") || !strings.Contains(s, "out{st:1}") {
		t.Errorf("footprint rendering missing entries:\n%s", s)
	}
}

// TestSolveBackwardBoundary: every terminal node gets the boundary fact even
// when several exist.
func TestSolveBackwardBoundary(t *testing.T) {
	p := mustProgram(t, "thread t { regs a; choice { a = 1; store x a } or { assume 1 == 1 } }", []string{"x"})
	g := lang.Compile(p)
	live := LiveRegs(g)
	// At the entry a is not yet live on the assume branch, but it is live on
	// the assignment branch only *after* the assignment; so entry-liveness of
	// a must be false (it is defined before its only use).
	if live.Live(g.Entry, 0) {
		t.Error("a is defined before use on every path; not live at entry")
	}
}

// TestVarValuesNormalization: the engines reduce every stored, assigned and
// CAS-expected value mod Dom, so the analyses must compare normalized
// values. `cas x (1+1) 0` in domain 2 expects norm(2) = 0 — the initial
// value — and genuinely succeeds; treating it as impossible changed
// verdicts (found by the differential fuzzer, seed 883, and fixed along
// with assigned-constant tracking).
func TestVarValuesNormalization(t *testing.T) {
	sys := mustSystem(t, `system s { vars x; domain 2; dis d }
thread d {
  cas x (1 + 1) 0
  assert false
}`)
	vv := PossibleVarValues(sys)
	if !vv.CanHold(0, 2) {
		t.Error("CanHold(x, 2) = false; 2 normalizes to 0, which x holds initially")
	}
	if vv.CanHold(0, -1) {
		t.Error("CanHold(x, -1) = true; -1 normalizes to 1, which nothing ever writes")
	}
	g := lang.Compile(sys.Dis[0])
	cp := PropagateConsts(g, sys, vv)
	for _, edges := range g.Out {
		for _, e := range edges {
			if e.Op.Kind == lang.OpAssertFail && !cp.Reachable(e.From) {
				t.Error("assert after a norm-feasible CAS reported unreachable")
			}
		}
	}

	// Stored constants are normalized too: store x (-1) writes 1 in
	// domain 2, so expecting 1 (or 3, ≡ 1) is feasible.
	sys2 := mustSystem(t, `system s { vars x; domain 2; env t }
thread t { store x (0 - 1) }`)
	vv2 := PossibleVarValues(sys2)
	if !vv2.CanHold(0, 1) || !vv2.CanHold(0, 3) {
		t.Error("store of -1 must make values ≡ 1 (mod 2) feasible")
	}

	// Assigned registers track the normalized value: a = 1+1 is 0 in
	// domain 2.
	sys3 := mustSystem(t, `system s { vars x; domain 2; env t }
thread t { regs a; a = 1 + 1; store x a }`)
	g3 := lang.Compile(sys3.Env)
	cp3 := PropagateConsts(g3, sys3, PossibleVarValues(sys3))
	for _, edges := range g3.Out {
		for _, e := range edges {
			if e.Op.Kind == lang.OpStore {
				if v, ok := cp3.EvalAt(e.From, lang.Reg(0)); !ok || v != 0 {
					t.Errorf("a = 1+1 tracked as (%d, %v), want constant 0 (normalized)", v, ok)
				}
			}
		}
	}
}
