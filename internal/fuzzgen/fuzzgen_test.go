package fuzzgen

import (
	"context"
	"strings"
	"testing"

	"paramra/internal/lang"
	"paramra/internal/obs"
)

// fastCheck keeps unit-test oracle runs quick: tight caps, no deadlock pass.
func fastCheck() CheckOptions {
	return CheckOptions{
		MaxMacroStates: 2000,
		MaxStates:      8000,
		MaxSkeletons:   1500,
		NoDeadlocks:    true,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range ProfileNames() {
		prof, ok := ProfileByName(name)
		if !ok {
			t.Fatalf("ProfileByName(%q) missing", name)
		}
		for seed := int64(0); seed < 20; seed++ {
			a := lang.Print(Generate(seed, prof))
			b := lang.Print(Generate(seed, prof))
			if a != b {
				t.Fatalf("profile %s seed %d: nondeterministic generation:\n%s\nvs\n%s", name, seed, a, b)
			}
		}
	}
}

func TestGenerateRoundTrips(t *testing.T) {
	// Every generated system must survive print -> parse -> print exactly;
	// this locks the printer/parser pair against the generator's full
	// feature surface (CAS operand parenthesization regressed here once).
	for _, name := range ProfileNames() {
		prof, _ := ProfileByName(name)
		for seed := int64(0); seed < 50; seed++ {
			sys := Generate(seed, prof)
			src := lang.Print(sys)
			back, err := lang.ParseSystem(src)
			if err != nil {
				t.Fatalf("profile %s seed %d: reparse failed: %v\n%s", name, seed, err, src)
			}
			if got := lang.Print(back); got != src {
				t.Fatalf("profile %s seed %d: print not a fixpoint:\n%s\nvs\n%s", name, seed, src, got)
			}
		}
	}
}

func TestGenerateProfilesCoverFeatures(t *testing.T) {
	// The envcas profile must actually produce env CAS sometimes, loops must
	// produce cyclic dis threads sometimes, etc. — otherwise the campaign
	// silently stops exercising those backends' error paths.
	saw := map[string]bool{}
	for seed := int64(0); seed < 200; seed++ {
		if p, _ := ProfileByName("envcas"); true {
			cls := lang.Classify(Generate(seed, p))
			if cls.HasEnv && !cls.Env.NoCAS {
				saw["envcas"] = true
			}
		}
		if p, _ := ProfileByName("loops"); true {
			if hasCyclicDis(lang.Classify(Generate(seed, p))) {
				saw["cyclic-dis"] = true
			}
		}
		if p, _ := ProfileByName("default"); true {
			sys := Generate(seed, p)
			if sys.Env != nil && len(sys.Dis) > 0 {
				saw["env+dis"] = true
			}
		}
	}
	for _, want := range []string{"envcas", "cyclic-dis", "env+dis"} {
		if !saw[want] {
			t.Errorf("200 seeds never produced feature %q", want)
		}
	}
}

func TestCheckAgreesOnSeeds(t *testing.T) {
	// A miniature campaign across the profile mix: every disagreement here
	// is a real cross-backend bug (or an oracle bug) and must fail loudly.
	for _, name := range []string{"default", "small", "loops", "envcas", "nocas"} {
		prof, _ := ProfileByName(name)
		for seed := int64(0); seed < 15; seed++ {
			rep := Check(context.Background(), Generate(seed, prof), fastCheck())
			if !rep.Agree() {
				t.Errorf("profile %s seed %d (%s): %d disagreement(s):", name, seed, rep.Class, len(rep.Disagreements))
				for _, d := range rep.Disagreements {
					t.Errorf("  %s", d)
				}
				for _, v := range rep.Verdicts {
					t.Logf("  verdict %s", v)
				}
			}
		}
	}
}

func TestCheckRejectsEnvCASIdentically(t *testing.T) {
	// A hand-built env-CAS system is outside the decidable class; all
	// symbolic backends must report the same error class, so the report
	// agrees and the fixpoint verdict carries "env-cas".
	src := `system envcas { vars x; domain 2; env p; dis d }
thread p { regs r; cas x 0 1 }
thread d { regs s; s = load x; assume s == 1; assert false }`
	sys, err := lang.ParseSystem(src)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(context.Background(), sys, fastCheck())
	if !rep.Agree() {
		t.Fatalf("env-cas system produced disagreements: %v", rep.Disagreements)
	}
	if got := rep.Verdict(BackendFixpoint).ErrClass; got != "env-cas" {
		t.Fatalf("fixpoint ErrClass = %q, want env-cas", got)
	}
}

func TestCheckRunsPrepassBackend(t *testing.T) {
	// The prepass backend must appear in every report (it never skips), and
	// its definitive verdicts must join the lattice: a lying prepass gets
	// caught exactly like a lying symbolic backend.
	src := `system prodcons { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }`
	sys, err := lang.ParseSystem(src)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(context.Background(), sys, fastCheck())
	if !rep.Agree() {
		t.Fatalf("honest backends disagreed: %v", rep.Disagreements)
	}
	pre := rep.Verdict(BackendPrepass)
	if !pre.Ran {
		t.Fatal("prepass backend missing from the report")
	}
	if !pre.definitiveUnsafe() {
		t.Fatalf("prepass should decide prodcons UNSAFE, got %s", pre)
	}

	// Now make the prepass lie (claim SAFE-definitive on an unsafe system is
	// not expressible through the bool hook, so invert: claim UNSAFE on a
	// system everything else proves safe).
	safeSrc := `system mp { vars x y; domain 2; env p; dis c }
thread p { store x 1; store y 1 }
thread c { regs a b; a = load y; assume a == 1; b = load x; assume b == 0; assert false }`
	safeSys, err := lang.ParseSystem(safeSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastCheck()
	opts.InjectFault = func(backend string, _ *lang.System, unsafe bool) bool {
		if backend == BackendPrepass {
			return true // prepass claims a witness it does not have
		}
		return unsafe
	}
	rep = Check(context.Background(), safeSys, opts)
	found := false
	for _, d := range rep.Disagreements {
		if strings.HasPrefix(d.Kind, "verdict:prepass/") {
			found = true
		}
	}
	if !found {
		t.Fatalf("lying prepass not caught: %v", rep.Disagreements)
	}

	// NoPrepass removes the backend entirely.
	opts = fastCheck()
	opts.NoPrepass = true
	rep = Check(context.Background(), sys, opts)
	if rep.Verdict(BackendPrepass).Ran {
		t.Fatal("NoPrepass did not skip the prepass backend")
	}
}

func TestShrinkMinimizesInjectedFault(t *testing.T) {
	// Acceptance criterion: a backend that lies must be caught and the
	// counterexample minimized to <= 2 threads and <= 10 statements.
	opts := fastCheck()
	opts.InjectFault = func(backend string, sys *lang.System, unsafe bool) bool {
		if backend == BackendDatalog {
			return !unsafe // datalog inverts every verdict
		}
		return unsafe
	}

	// Find a seed whose report disagrees under the fault (most do: any
	// env-ful system with a definitive fixpoint verdict).
	var sys *lang.System
	var kind string
	prof, _ := ProfileByName("default")
	for seed := int64(0); seed < 50; seed++ {
		cand := Generate(seed, prof)
		rep := Check(context.Background(), cand, opts)
		if !rep.Agree() {
			sys, kind = cand, rep.Disagreements[0].Kind
			break
		}
	}
	if sys == nil {
		t.Fatal("no seed in 0..49 triggered the injected datalog fault")
	}

	pred := func(c *lang.System) bool {
		for _, d := range Check(context.Background(), c, opts).Disagreements {
			if d.Kind == kind {
				return true
			}
		}
		return false
	}
	min := Shrink(sys, pred, ShrinkOptions{MaxChecks: 400})
	if !pred(min) {
		t.Fatal("shrunk system no longer reproduces the disagreement")
	}
	if n := len(min.Threads()); n > 2 {
		t.Errorf("shrunk system has %d threads, want <= 2:\n%s", n, lang.Print(min))
	}
	if n := StmtCount(min); n > 10 {
		t.Errorf("shrunk system has %d statements, want <= 10:\n%s", n, lang.Print(min))
	}
	if StmtCount(min) >= StmtCount(sys) && StmtCount(sys) > 2 {
		t.Errorf("shrinker made no progress: %d -> %d statements", StmtCount(sys), StmtCount(min))
	}
}

func TestCampaignSelftestPersistsRepro(t *testing.T) {
	dir := t.TempDir()
	check := fastCheck()
	// The lying backend is datalog, so the concrete pass adds nothing to
	// this test except wall time; a real campaign keeps it on.
	check.NoConcrete = true
	check.InjectFault = func(backend string, sys *lang.System, unsafe bool) bool {
		if backend == BackendDatalog {
			return !unsafe
		}
		return unsafe
	}
	reg := obs.NewRegistry()
	res, err := Campaign(context.Background(), CampaignOptions{
		Seeds:        4,
		Profile:      mustProfile(t, "default"),
		Check:        check,
		ShrinkChecks: 200,
		ReproDir:     dir,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disagreed == 0 {
		t.Fatal("self-test campaign found no disagreement despite the injected fault")
	}
	for _, r := range res.Repros {
		if r.Threads > 2 || r.Stmts > 10 {
			t.Errorf("repro seed %d not minimal: %d threads / %d stmts", r.Seed, r.Threads, r.Stmts)
		}
		if r.Path == "" {
			t.Errorf("repro seed %d not persisted", r.Seed)
		}
	}
	loaded, err := LoadRepros(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) == 0 {
		t.Fatal("LoadRepros found nothing in the repro dir")
	}
	for _, r := range loaded {
		if r.Kind == "" || r.Seed == 0 && !strings.Contains(r.Path, "seed0.ra") {
			t.Errorf("repro %s lost its header metadata (kind=%q seed=%d)", r.Path, r.Kind, r.Seed)
		}
	}
	if reg.Counter("paramra_fuzz_seeds_total", "").Value() != int64(res.Seeds) {
		t.Errorf("seeds counter %d != result %d", reg.Counter("paramra_fuzz_seeds_total", "").Value(), res.Seeds)
	}
}

func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Campaign(ctx, CampaignOptions{Seeds: 100, Check: fastCheck()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Error("pre-cancelled campaign not marked Cancelled")
	}
	if res.Seeds != 0 {
		t.Errorf("pre-cancelled campaign checked %d seeds", res.Seeds)
	}
}

func TestLoadReprosMissingDir(t *testing.T) {
	got, err := LoadRepros("testdata/definitely-missing")
	if err != nil || got != nil {
		t.Fatalf("missing dir: got %v, %v; want nil, nil", got, err)
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, ok := ProfileByName(name)
	if !ok {
		t.Fatalf("profile %q missing", name)
	}
	return p
}

func TestCheckRunsCacheBackend(t *testing.T) {
	// The cache backend joins every report unless disabled: cold verdict in
	// the lattice, warm and renamed runs internally consistent.
	src := `system prodcons { vars x y; domain 4; env producer; dis consumer }
thread producer { regs r; r = load y; assume r == 1; store x 2 }
thread consumer { regs s; store y 1; s = load x; assume s == 2; assert false }`
	sys, err := lang.ParseSystem(src)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(context.Background(), sys, fastCheck())
	if !rep.Agree() {
		t.Fatalf("honest backends disagreed: %v", rep.Disagreements)
	}
	cc := rep.Verdict(BackendCache)
	if !cc.Ran {
		t.Fatal("cache backend missing from the report")
	}
	if !cc.definitiveUnsafe() {
		t.Fatalf("cache backend should decide prodcons UNSAFE, got %s", cc)
	}

	// A cache whose cold run lies is caught by the cross-backend lattice.
	opts := fastCheck()
	opts.InjectFault = func(backend string, _ *lang.System, unsafe bool) bool {
		if backend == BackendCache {
			return !unsafe
		}
		return unsafe
	}
	rep = Check(context.Background(), sys, opts)
	found := false
	for _, d := range rep.Disagreements {
		if strings.Contains(d.Kind, "/"+BackendCache) {
			found = true
		}
	}
	if !found {
		t.Fatalf("lying cache backend not caught: %v", rep.Disagreements)
	}

	// NoCache removes the backend entirely.
	opts = fastCheck()
	opts.NoCache = true
	rep = Check(context.Background(), sys, opts)
	if rep.Verdict(BackendCache).Ran {
		t.Fatal("NoCache did not skip the cache backend")
	}
}
