package fuzzgen

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"paramra/internal/lang"
	"paramra/internal/obs"
)

// CampaignOptions configures one fuzzing campaign.
type CampaignOptions struct {
	// Seeds is the number of systems to generate and check (default 100).
	Seeds int
	// SeedBase offsets the seed sequence: seeds SeedBase..SeedBase+Seeds-1.
	SeedBase int64
	// Profile shapes the generated systems (default DefaultProfile).
	Profile Profile
	// Check bounds the differential oracle.
	Check CheckOptions
	// ShrinkChecks caps predicate calls per shrink (default ShrinkOptions').
	ShrinkChecks int
	// SeedTimeout bounds the oracle run of each individual seed (default
	// 10s; < 0 disables). A seed hitting the bound is counted in TimedOut
	// and compared as inconclusive — the oracle suppresses comparisons
	// against cancelled backends — so one pathological seed cannot stall
	// the campaign.
	SeedTimeout time.Duration
	// ReproDir, when non-empty, receives one .ra file per shrunk
	// disagreement (created if missing).
	ReproDir string
	// Log receives one line per disagreement and a progress line every
	// 100 seeds; nil discards.
	Log io.Writer
	// Trace / Metrics thread the campaign through the observability layer;
	// both may be nil.
	Trace   *obs.Span
	Metrics *obs.Registry
}

// Repro is one minimized disagreement.
type Repro struct {
	Seed    int64
	Profile string
	Kind    string
	Detail  string
	System  *lang.System
	Path    string // file under ReproDir, "" when not persisted
	Threads int
	Stmts   int
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Seeds     int // seeds checked (< requested when cancelled)
	Disagreed int // seeds with at least one disagreement
	Repros    []Repro
	ByClass   map[string]int // system-class histogram of checked seeds
	TimedOut  int            // seeds whose oracle run hit SeedTimeout
	Cancelled bool
}

// Campaign generates Seeds systems, cross-checks each through the oracle,
// and shrinks every disagreement to a minimal repro. It returns a non-nil
// result even when cancelled mid-run; the only error source is repro
// persistence.
func Campaign(ctx context.Context, opts CampaignOptions) (*CampaignResult, error) {
	if opts.Seeds <= 0 {
		opts.Seeds = 100
	}
	if opts.Profile.Name == "" {
		opts.Profile = DefaultProfile()
	}
	if opts.SeedTimeout == 0 {
		opts.SeedTimeout = 10 * time.Second
	}
	// seedCtx bounds one oracle run without cancelling the campaign.
	seedCtx := func() (context.Context, context.CancelFunc) {
		if opts.SeedTimeout < 0 {
			return ctx, func() {}
		}
		return context.WithTimeout(ctx, opts.SeedTimeout)
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	span := opts.Trace.Child("fuzz-campaign")
	if span != nil {
		span.SetAttr("seeds", opts.Seeds)
		span.SetAttr("profile", opts.Profile.Name)
	}
	var cSeeds, cDisagree, cShrinkChecks *obs.Counter
	if m := opts.Metrics; m != nil {
		cSeeds = m.Counter("paramra_fuzz_seeds_total", "systems generated and cross-checked")
		cDisagree = m.Counter("paramra_fuzz_disagreements_total", "seeds with at least one cross-backend disagreement")
		cShrinkChecks = m.Counter("paramra_fuzz_shrink_checks_total", "oracle runs spent minimizing disagreements")
	}

	res := &CampaignResult{ByClass: map[string]int{}}
	for i := 0; i < opts.Seeds; i++ {
		if ctx.Err() != nil {
			res.Cancelled = true
			break
		}
		seed := opts.SeedBase + int64(i)
		sys := Generate(seed, opts.Profile)
		sctx, cancel := seedCtx()
		rep := Check(sctx, sys, opts.Check)
		timedOut := sctx.Err() != nil && ctx.Err() == nil
		cancel()
		if ctx.Err() != nil {
			res.Cancelled = true
			break
		}
		if timedOut {
			res.TimedOut++
			logf("fuzz: seed %d (%s): timed out after %v, inconclusive", seed, describe(sys), opts.SeedTimeout)
		}
		res.Seeds++
		res.ByClass[rep.Class]++
		cSeeds.Inc()
		if rep.Agree() {
			if (i+1)%100 == 0 {
				logf("fuzz: %d/%d seeds checked, %d disagreements", i+1, opts.Seeds, res.Disagreed)
			}
			continue
		}

		res.Disagreed++
		cDisagree.Inc()
		d := rep.Disagreements[0]
		logf("fuzz: seed %d (%s): DISAGREEMENT %s", seed, describe(sys), d)

		r, err := shrinkDisagreement(ctx, seedCtx, span, cShrinkChecks, sys, d.Kind, seed, opts)
		if err != nil {
			return res, err
		}
		res.Repros = append(res.Repros, r)
		logf("fuzz: seed %d shrunk to %d threads / %d stmts%s", seed, r.Threads, r.Stmts, pathSuffix(r.Path))
	}
	if span != nil {
		span.SetAttr("checked", res.Seeds)
		span.SetAttr("disagreed", res.Disagreed)
		span.End()
	}
	return res, nil
}

func pathSuffix(p string) string {
	if p == "" {
		return ""
	}
	return " -> " + p
}

// shrinkDisagreement minimizes sys while the oracle keeps reporting a
// disagreement of the same kind, then persists the result. Each oracle run
// gets its own SeedTimeout budget (a candidate hitting it simply fails the
// predicate, steering the shrink elsewhere).
func shrinkDisagreement(ctx context.Context, seedCtx func() (context.Context, context.CancelFunc), parent *obs.Span, checks *obs.Counter, sys *lang.System, kind string, seed int64, opts CampaignOptions) (Repro, error) {
	span := parent.Child("shrink")
	if span != nil {
		span.SetAttr("seed", seed)
		span.SetAttr("kind", kind)
	}
	check := func(cand *lang.System) *Report {
		sctx, cancel := seedCtx()
		defer cancel()
		return Check(sctx, cand, opts.Check)
	}
	pred := func(cand *lang.System) bool {
		if ctx.Err() != nil {
			return false
		}
		checks.Inc()
		for _, d := range check(cand).Disagreements {
			if d.Kind == kind {
				return true
			}
		}
		return false
	}
	min := Shrink(sys, pred, ShrinkOptions{MaxChecks: opts.ShrinkChecks})

	// Re-derive the detail from the minimized system for the repro header.
	detail := ""
	for _, d := range check(min).Disagreements {
		if d.Kind == kind {
			detail = d.Detail
			break
		}
	}
	r := Repro{
		Seed:    seed,
		Profile: opts.Profile.Name,
		Kind:    kind,
		Detail:  detail,
		System:  min,
		Threads: len(min.Threads()),
		Stmts:   StmtCount(min),
	}
	if span != nil {
		span.SetAttr("threads", r.Threads)
		span.SetAttr("stmts", r.Stmts)
		span.End()
	}
	if opts.ReproDir != "" {
		path, err := WriteRepro(opts.ReproDir, r)
		if err != nil {
			return r, err
		}
		r.Path = path
	}
	return r, nil
}

// WriteRepro persists one repro as a commented .ra file under dir and
// returns its path. The file re-parses with lang.ParseSystem (the header
// lines are comments) so the regression suite can replay it directly.
func WriteRepro(dir string, r Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("%s_seed%d.ra", sanitize(r.Kind), r.Seed)
	path := filepath.Join(dir, name)
	var b strings.Builder
	fmt.Fprintf(&b, "# fuzzgen repro (do not edit: regenerate with rabench fuzz)\n")
	fmt.Fprintf(&b, "# seed: %d profile: %s\n", r.Seed, r.Profile)
	fmt.Fprintf(&b, "# kind: %s\n", r.Kind)
	for _, line := range strings.Split(r.Detail, "\n") {
		fmt.Fprintf(&b, "# detail: %s\n", line)
	}
	b.WriteString(lang.Print(r.System))
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sanitize maps a disagreement kind to a filename fragment.
func sanitize(kind string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, kind)
}

// LoadRepros parses every .ra file under dir (sorted by name). A missing
// directory yields an empty slice: the corpus starts empty and only gains
// files when a real bug is found and fixed.
func LoadRepros(dir string) ([]Repro, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ra") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []Repro
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		sys, err := lang.ParseSystem(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		r := Repro{System: sys, Path: filepath.Join(dir, name), Threads: len(sys.Threads()), Stmts: StmtCount(sys)}
		for _, line := range strings.Split(string(src), "\n") {
			if rest, ok := strings.CutPrefix(line, "# kind: "); ok {
				r.Kind = strings.TrimSpace(rest)
			}
			if rest, ok := strings.CutPrefix(line, "# seed: "); ok {
				fmt.Sscanf(rest, "%d", &r.Seed)
			}
		}
		out = append(out, r)
	}
	return out, nil
}
