package fuzzgen

import (
	"context"
	"errors"
	"fmt"

	"paramra"
	"paramra/internal/cache"
	"paramra/internal/lang"
)

// Backend names used in verdicts, disagreement kinds and fault injection.
const (
	BackendFixpoint = "fixpoint"
	BackendParallel = "fixpoint-par"
	BackendDatalog  = "datalog"
	BackendSlice    = "slice"
	BackendConcrete = "concrete"
	BackendConfirm  = "confirm"
	BackendPrepass  = "prepass"
	BackendCache    = "cache"
)

// CheckOptions bounds the differential oracle. The zero value selects the
// defaults noted on each field.
type CheckOptions struct {
	// MaxMacroStates caps the fixpoint search (default 4000).
	MaxMacroStates int
	// MaxStates caps each concrete instance exploration (default 20000).
	MaxStates int
	// MaxSkeletons caps Datalog dis-run enumeration (default 3000).
	MaxSkeletons int
	// UnrollDis is the unroll factor applied once, up front, to systems
	// with cyclic dis threads; all backends then see the same acyclic
	// system (default 2).
	UnrollDis int
	// ConfirmMaxN caps env-thread counts for concrete confirmation
	// (default 2).
	ConfirmMaxN int
	// Parallelism2 is the second worker count of the determinism check
	// (default 2; < 0 disables the check).
	Parallelism2 int
	// NoDatalog / NoConcrete / NoDeadlocks / NoPrepass / NoCache skip the
	// corresponding backends (for narrow campaigns).
	NoDatalog   bool
	NoConcrete  bool
	NoDeadlocks bool
	NoPrepass   bool
	NoCache     bool
	// InjectFault, when non-nil, post-processes each backend's boolean
	// verdict. It exists so the shrinker's acceptance tests and the
	// `rabench fuzz -selftest` smoke can prove the harness detects and
	// minimizes a lying backend; production campaigns leave it nil.
	InjectFault func(backend string, sys *lang.System, unsafe bool) bool
}

func (o CheckOptions) withDefaults() CheckOptions {
	if o.MaxMacroStates == 0 {
		o.MaxMacroStates = 4000
	}
	if o.MaxStates == 0 {
		o.MaxStates = 20000
	}
	if o.MaxSkeletons == 0 {
		o.MaxSkeletons = 3000
	}
	if o.UnrollDis == 0 {
		o.UnrollDis = 2
	}
	if o.ConfirmMaxN == 0 {
		o.ConfirmMaxN = 2
	}
	if o.Parallelism2 == 0 {
		o.Parallelism2 = 2
	}
	return o
}

// Verdict is one backend's answer.
type Verdict struct {
	Backend  string
	Ran      bool // false when the backend does not apply to this system
	Unsafe   bool
	Complete bool
	// ErrClass is "" on success, else one of "env-cas", "dis-cyclic",
	// "cancelled", or "other:<message>".
	ErrClass string
	Detail   string
}

func (v Verdict) String() string {
	if !v.Ran {
		return fmt.Sprintf("%s: skipped (%s)", v.Backend, v.Detail)
	}
	if v.ErrClass != "" {
		return fmt.Sprintf("%s: error %s", v.Backend, v.ErrClass)
	}
	return fmt.Sprintf("%s: unsafe=%v complete=%v", v.Backend, v.Unsafe, v.Complete)
}

// definitive verdict helpers: an UNSAFE answer is a witness and always
// definitive; a SAFE answer is definitive only when the search completed.
func (v Verdict) definitiveUnsafe() bool { return v.Ran && v.ErrClass == "" && v.Unsafe }
func (v Verdict) definitiveSafe() bool {
	return v.Ran && v.ErrClass == "" && !v.Unsafe && v.Complete
}

// Disagreement is one cross-backend inconsistency. Kind is stable under
// shrinking (the shrinker preserves it); Detail is free-form.
type Disagreement struct {
	Kind   string
	Detail string
}

func (d Disagreement) String() string { return d.Kind + ": " + d.Detail }

// Report is the oracle's full answer for one system.
type Report struct {
	Class         string
	Unrolled      bool
	Verdicts      []Verdict
	Disagreements []Disagreement
}

// Agree reports whether every backend pair was consistent.
func (r *Report) Agree() bool { return len(r.Disagreements) == 0 }

// Verdict returns the named backend's verdict (zero Verdict if absent).
func (r *Report) Verdict(backend string) Verdict {
	for _, v := range r.Verdicts {
		if v.Backend == backend {
			return v
		}
	}
	return Verdict{Backend: backend}
}

func classifyErr(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, paramra.ErrEnvCAS):
		return "env-cas"
	case errors.Is(err, paramra.ErrDisCyclic):
		return "dis-cyclic"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		return "other:" + err.Error()
	}
}

// Check runs every applicable backend on sys and cross-checks the results.
// It never modifies sys. Cancellation surfaces as "cancelled" verdicts and
// suppresses the comparisons involving them (a cancelled run is not
// evidence of anything).
func Check(ctx context.Context, sys *lang.System, opts CheckOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{Class: lang.Classify(sys).String()}

	// Normalize cyclic dis threads once so every backend, including the
	// concrete one, answers the question about the same acyclic system.
	work := sys
	if cls := lang.Classify(sys); hasCyclicDis(cls) {
		work = lang.UnrollSystem(sys, opts.UnrollDis)
		rep.Unrolled = true
	}

	base := paramra.Options{
		MaxMacroStates: opts.MaxMacroStates,
		MaxStates:      opts.MaxStates,
		MaxSkeletons:   opts.MaxSkeletons,
		Parallelism:    1,
	}

	applyFault := func(backend string, unsafe bool) bool { return fault(opts, backend, work, unsafe) }
	disagree := func(kind, format string, args ...any) {
		rep.Disagreements = append(rep.Disagreements, Disagreement{Kind: kind, Detail: fmt.Sprintf(format, args...)})
	}

	// Backend 1: simplified-semantics fixpoint (the reference).
	fixRes, fixErr := paramra.Verify(ctx, work, base)
	fix := Verdict{
		Backend: BackendFixpoint, Ran: true,
		Unsafe:   applyFault(BackendFixpoint, fixRes.Unsafe),
		Complete: fixRes.Complete,
		ErrClass: classifyErr(fixErr),
	}
	rep.Verdicts = append(rep.Verdicts, fix)

	// Backend 2: the same fixpoint at a different worker count. The layered
	// engine promises bit-identical verdicts, witnesses and stats.
	if opts.Parallelism2 > 0 {
		popts := base
		popts.Parallelism = opts.Parallelism2
		pRes, pErr := paramra.Verify(ctx, work, popts)
		par := Verdict{
			Backend: BackendParallel, Ran: true,
			Unsafe:   applyFault(BackendParallel, pRes.Unsafe),
			Complete: pRes.Complete,
			ErrClass: classifyErr(pErr),
		}
		rep.Verdicts = append(rep.Verdicts, par)
		if fix.ErrClass != "cancelled" && par.ErrClass != "cancelled" {
			switch {
			case fix.ErrClass != par.ErrClass:
				disagree("determinism", "fixpoint j=1 error %q vs j=%d error %q", fix.ErrClass, opts.Parallelism2, par.ErrClass)
			case fix.ErrClass == "":
				if fix.Unsafe != par.Unsafe || fix.Complete != par.Complete {
					disagree("determinism", "fixpoint j=1 (unsafe=%v complete=%v) vs j=%d (unsafe=%v complete=%v)",
						fix.Unsafe, fix.Complete, opts.Parallelism2, par.Unsafe, par.Complete)
				} else if fixRes.Stats.MacroStates != pRes.Stats.MacroStates {
					disagree("determinism", "fixpoint macro-states differ across worker counts: %d vs %d",
						fixRes.Stats.MacroStates, pRes.Stats.MacroStates)
				} else if fmt.Sprint(fixRes.Witness) != fmt.Sprint(pRes.Witness) {
					disagree("determinism", "fixpoint witness differs across worker counts:\n%v\nvs\n%v",
						fixRes.Witness, pRes.Witness)
				}
			}
		}
	}

	// Backend 3: makeP → Datalog (Theorem 4.1). Needs an env program.
	if !opts.NoDatalog {
		dl := Verdict{Backend: BackendDatalog}
		if work.Env == nil {
			dl.Detail = "no env program"
		} else {
			dopts := base
			dopts.Datalog = true
			// Ground with abstract-value hints (but no verdict fast path in
			// front): every seed then differentially checks the hinted
			// encoding against the fixpoint reference.
			dopts.DatalogHints = true
			dRes, dErr := paramra.Verify(ctx, work, dopts)
			dl.Ran = true
			dl.Unsafe = applyFault(BackendDatalog, dRes.Unsafe)
			dl.Complete = dRes.Complete
			dl.ErrClass = classifyErr(dErr)
		}
		rep.Verdicts = append(rep.Verdicts, dl)
		comparePair(rep, disagree, fix, dl)
	}

	// Backend 4: verdict-preserving slicer in front of the fixpoint.
	{
		sliced, _ := paramra.Slice(work)
		sRes, sErr := paramra.Verify(ctx, sliced, base)
		sl := Verdict{
			Backend: BackendSlice, Ran: true,
			Unsafe:   applyFault(BackendSlice, sRes.Unsafe),
			Complete: sRes.Complete,
			ErrClass: classifyErr(sErr),
		}
		rep.Verdicts = append(rep.Verdicts, sl)
		comparePair(rep, disagree, fix, sl)
	}

	// Backend 5: bounded concrete RA exploration (Figure 2) of small
	// instances. An UNSAFE instance refutes a definitive SAFE symbolic
	// verdict outright; for env-less systems an exhausted instance search
	// is the exact parameterized answer.
	if !opts.NoConcrete {
		conc := checkConcrete(ctx, rep, disagree, work, fix, opts)
		rep.Verdicts = append(rep.Verdicts, conc)
	}

	// Backend 6: when the fixpoint proves UNSAFE, Theorem 3.4 promises a
	// concrete instance within the §4.3 env-thread bound. Failing to
	// confirm with uncapped instance searches inside that bound is a
	// disagreement.
	if !opts.NoConcrete && fix.definitiveUnsafe() && fix.ErrClass == "" && fixRes.Unsafe {
		cf := Verdict{Backend: BackendConfirm}
		n, _, err := paramra.ConfirmViolation(ctx, work, fixRes, opts.ConfirmMaxN, base)
		var ce *paramra.ConfirmError
		switch {
		case err == nil:
			cf.Ran, cf.Unsafe, cf.Complete = true, true, true
			cf.Detail = fmt.Sprintf("confirmed with %d env threads", n)
		case errors.As(err, &ce):
			cf.Ran = true
			cf.Detail = ce.Error()
			switch {
			case ce.Err != nil:
				cf.ErrClass = classifyErr(ce.Err)
			case ce.StateCapHit:
				// Inconclusive: raise MaxStates to decide.
			case fixRes.EnvThreadBound >= 0 && fixRes.EnvThreadBound <= int64(opts.ConfirmMaxN):
				// The full §4.3 bound was searched exhaustively and no
				// instance exhibits the violation: Theorem 3.4 is broken.
				disagree("confirm", "fixpoint UNSAFE (env-thread bound %d) but no concrete instance within the bound confirms: %v",
					fixRes.EnvThreadBound, ce)
			}
		default:
			cf.ErrClass = classifyErr(err)
		}
		rep.Verdicts = append(rep.Verdicts, cf)
	}

	// Backend 7: the static abstract-interpretation prepass. It never
	// errors — it decides systems the symbolic backends reject (env CAS,
	// cyclic dis) — so it joins only the definitive-vs-definitive
	// comparisons, never the error-shape ones. Both of its fast paths claim
	// soundness (SAFE: abstract proof for every replica count; UNSAFE:
	// concrete replayed witness), so any definitive conflict with another
	// backend is a real bug in one of them.
	if !opts.NoPrepass {
		pre := Verdict{Backend: BackendPrepass, Ran: true}
		pout, perr := paramra.Prepass(ctx, work, base)
		if perr != nil {
			pre.ErrClass = classifyErr(perr)
		} else {
			pre.Detail = pout.Reason
			pre.Unsafe = applyFault(BackendPrepass, pout.Verdict == paramra.PrepassUnsafe)
			// An inconclusive outcome is a non-definitive SAFE: never
			// compared, never a disagreement.
			pre.Complete = pout.Verdict != paramra.PrepassInconclusive
		}
		for _, other := range rep.Verdicts {
			comparePrepass(disagree, pre, other)
		}
		rep.Verdicts = append(rep.Verdicts, pre)
	}

	// Backend 8: the content-addressed verdict cache. Three runs through a
	// fresh cache — cold, warm (identical resubmission), and a renamed
	// clone — must agree with each other, and the cold run must agree with
	// the fixpoint reference like any other backend.
	if !opts.NoCache {
		cc := checkCache(ctx, disagree, work, opts, base)
		rep.Verdicts = append(rep.Verdicts, cc)
		comparePair(rep, disagree, fix, cc)
	}

	// FindDeadlocks determinism: the sink-state counts of a fixed instance
	// are properties of the reachable state set and must not depend on the
	// worker count.
	if !opts.NoDeadlocks && fix.ErrClass == "" && canInstance(work, 1) {
		nEnv := 0
		if work.Env != nil {
			nEnv = 1
		}
		d1, err1 := paramra.FindDeadlocks(ctx, work, nEnv, paramra.Options{MaxStates: opts.MaxStates, Parallelism: 1})
		d2, err2 := paramra.FindDeadlocks(ctx, work, nEnv, paramra.Options{MaxStates: opts.MaxStates, Parallelism: opts.Parallelism2})
		if err1 == nil && err2 == nil && d1.Complete && d2.Complete {
			if d1.Deadlocks != d2.Deadlocks || d1.Terminal != d2.Terminal {
				disagree("deadlock-determinism", "FindDeadlocks j=1 (%d/%d) vs j=%d (%d/%d)",
					d1.Deadlocks, d1.Terminal, opts.Parallelism2, d2.Deadlocks, d2.Terminal)
			}
		}
	}

	return rep
}

// comparePair cross-checks two backends that decide the same problem
// exactly. Cancelled runs are not compared.
func comparePair(rep *Report, disagree func(kind, format string, args ...any), a, b Verdict) {
	if !a.Ran || !b.Ran || a.ErrClass == "cancelled" || b.ErrClass == "cancelled" {
		return
	}
	kind := "verdict:" + a.Backend + "/" + b.Backend
	if a.ErrClass != b.ErrClass {
		// The slicer may remove the very statements that put a system
		// outside a class (e.g. slice away a dis loop), turning an error
		// into a verdict; only identical error classes are required when
		// both backends see the same system. The cache path slices before
		// canonicalizing, so it inherits the same exemption.
		if (b.Backend == BackendSlice || b.Backend == BackendCache) && b.ErrClass == "" {
			return
		}
		disagree("error-shape:"+a.Backend+"/"+b.Backend, "%s vs %s", a, b)
		return
	}
	if a.ErrClass != "" {
		return // both rejected identically
	}
	if (a.definitiveUnsafe() && b.definitiveSafe()) || (a.definitiveSafe() && b.definitiveUnsafe()) {
		disagree(kind, "%s vs %s", a, b)
	}
}

// comparePrepass cross-checks the prepass against another backend on
// definitive verdicts only. Error shapes are exempt by design: the prepass
// answers for systems the symbolic backends reject.
func comparePrepass(disagree func(kind, format string, args ...any), pre, other Verdict) {
	if !pre.Ran || !other.Ran || pre.ErrClass != "" || other.ErrClass != "" {
		return
	}
	if (pre.definitiveUnsafe() && other.definitiveSafe()) ||
		(pre.definitiveSafe() && other.definitiveUnsafe()) {
		disagree("verdict:prepass/"+other.Backend, "%s vs %s", pre, other)
	}
}

// checkConcrete explores bounded instances of work and cross-checks them
// against the fixpoint verdict.
func checkConcrete(ctx context.Context, rep *Report, disagree func(kind, format string, args ...any), work *lang.System, fix Verdict, opts CheckOptions) Verdict {
	conc := Verdict{Backend: BackendConcrete}
	maxN := opts.ConfirmMaxN
	if work.Env == nil {
		maxN = 0
	}
	anyUnsafe, allComplete, ran := false, true, false
	for n := 0; n <= maxN; n++ {
		if !canInstance(work, n) {
			continue
		}
		res, err := paramra.VerifyInstance(ctx, work, n, paramra.Options{MaxStates: opts.MaxStates, Parallelism: 1})
		if cls := classifyErr(err); cls != "" {
			conc.ErrClass = cls
			conc.Detail = fmt.Sprintf("instance n=%d: %v", n, err)
			return conc
		}
		ran = true
		if fault(opts, BackendConcrete, work, res.Unsafe) {
			anyUnsafe = true
		}
		if !res.Complete {
			allComplete = false
		}
	}
	if !ran {
		conc.Detail = "no explorable instance"
		return conc
	}
	conc.Ran = true
	conc.Unsafe = anyUnsafe
	// Complete (definitive SAFE) only for env-less systems whose single
	// instance is the whole parameterized system.
	conc.Complete = work.Env == nil && allComplete
	if fix.ErrClass == "" {
		if conc.definitiveUnsafe() && fix.definitiveSafe() {
			disagree("verdict:concrete/fixpoint", "a concrete instance violates but the fixpoint proved SAFE (%s vs %s)", conc, fix)
		}
		if conc.definitiveSafe() && fix.definitiveUnsafe() {
			disagree("verdict:concrete/fixpoint", "exhaustive concrete search is SAFE but the fixpoint reported UNSAFE (%s vs %s)", conc, fix)
		}
	}
	return conc
}

// checkCache drives work through a fresh verdict cache three times — cold
// (populating), warm (identical resubmission), and a seeded renamed clone —
// and demands lattice-equal verdicts from all three plus a cache hit on the
// warm runs whenever the cold verdict was storable (complete, error-free).
// The returned Verdict records the cold run for the cross-backend
// comparisons; the warm/renamed checks are internal consistency and surface
// as "cache-consistency" disagreements.
func checkCache(ctx context.Context, disagree func(kind, format string, args ...any), work *lang.System, opts CheckOptions, base paramra.Options) Verdict {
	copts := base
	copts.Cache = paramra.NewCache(paramra.CacheOptions{MaxEntries: 64})

	cold, coldErr := paramra.Verify(ctx, work, copts)
	cc := Verdict{
		Backend: BackendCache, Ran: true,
		Unsafe:   fault(opts, BackendCache, work, cold.Unsafe),
		Complete: cold.Complete,
		ErrClass: classifyErr(coldErr),
	}
	if cc.ErrClass == "cancelled" {
		return cc
	}
	storable := coldErr == nil && cold.Complete

	check := func(label string, sys *lang.System) {
		res, err := paramra.Verify(ctx, sys, copts)
		cls := classifyErr(err)
		if cls == "cancelled" {
			return
		}
		if cls != cc.ErrClass {
			disagree("cache-consistency", "%s run error %q vs cold error %q", label, cls, cc.ErrClass)
			return
		}
		if cls != "" {
			return
		}
		if res.Unsafe != cold.Unsafe || res.Complete != cold.Complete {
			disagree("cache-consistency", "%s run (unsafe=%v complete=%v) vs cold (unsafe=%v complete=%v)",
				label, res.Unsafe, res.Complete, cold.Unsafe, cold.Complete)
		}
		if storable && !res.CacheHit {
			disagree("cache-consistency", "%s run missed the cache despite a storable cold verdict", label)
		}
	}
	check("warm", work)
	check("renamed", cache.Rename(work, 1))
	return cc
}

func fault(opts CheckOptions, backend string, sys *lang.System, unsafe bool) bool {
	if opts.InjectFault != nil {
		return opts.InjectFault(backend, sys, unsafe)
	}
	return unsafe
}

func hasCyclicDis(cls lang.SystemClass) bool {
	for _, d := range cls.Dis {
		if !d.Acyclic {
			return true
		}
	}
	return false
}

// canInstance reports whether ra.NewInstance(work, n) is well-defined.
func canInstance(work *lang.System, n int) bool {
	return n == 0 || work.Env != nil
}
