// Package fuzzgen is the cross-backend differential fuzzer: a seeded
// generator of well-formed systems (Generate), an oracle that runs each
// system through every verification backend and cross-checks the verdicts
// (Check), a delta-debugging shrinker that minimizes disagreeing systems
// (Shrink), and a campaign driver tying them together (Campaign).
//
// Theorem 3.4 makes the simplified-semantics fixpoint, the makeP → Datalog
// pipeline, and bounded concrete RA exploration three independent answers to
// the same safety question; the slicer adds a fourth verdict-preserving
// transformation. Any disagreement between them is a bug in this repository,
// and the fuzzer's job is to find it, minimize it, and turn it into a
// one-file repro under testdata/fuzz-repros.
package fuzzgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"paramra/internal/lang"
)

// Profile tunes the shape of generated systems. The zero value is not
// useful; start from DefaultProfile or ProfileByName.
type Profile struct {
	// Name identifies the profile in logs and repro headers.
	Name string
	// MaxVars / MaxDom bound the shared-variable count (>= 1) and the
	// data-domain size (>= 2).
	MaxVars int
	MaxDom  int
	// MaxDis bounds the number of distinguished threads (possibly 0).
	MaxDis int
	// Env enables generation of an environment thread. At least one thread
	// is always generated, so MaxDis == 0 forces Env.
	Env bool
	// CAS enables compare-and-swap statements in dis threads.
	CAS bool
	// EnvCAS enables CAS in the env thread. Such systems are outside the
	// decidable class (Theorem 1.1); the oracle checks that every symbolic
	// backend rejects them identically.
	EnvCAS bool
	// Loops enables loop/while in dis threads. The symbolic backends
	// require acyclic dis programs, so the oracle unrolls such systems
	// (CheckOptions.UnrollDis) before comparing verdicts.
	Loops bool
	// EnvLoops enables loop/while in the env thread (handled exactly by
	// every backend).
	EnvLoops bool
	// Arith enables +, -, * and the full comparison set in expressions;
	// without it expressions stay in the ==/!=-over-constants fragment.
	Arith bool
	// MaxRegs bounds per-thread register counts (>= 1).
	MaxRegs int
	// MaxDepth bounds statement nesting (choice/loop/while/if).
	MaxDepth int
	// MaxStmts bounds the statements of one block.
	MaxStmts int
	// StmtBudget caps the total leaf statements of one program.
	StmtBudget int
}

// DefaultProfile exercises the full decidable class: env(nocas) plus
// acyclic dis threads with CAS, assume/assert, if/choice and register
// arithmetic. Sizes are small enough that all backends finish quickly.
func DefaultProfile() Profile {
	return Profile{
		Name: "default", MaxVars: 3, MaxDom: 3, MaxDis: 2, Env: true,
		CAS: true, EnvLoops: true, Arith: true,
		MaxRegs: 3, MaxDepth: 2, MaxStmts: 4, StmtBudget: 12,
	}
}

// profiles is the named-profile table surfaced by `rabench fuzz -profile`.
func profiles() []Profile {
	def := DefaultProfile()
	small := def
	small.Name, small.MaxVars, small.MaxDis, small.MaxDepth, small.MaxStmts, small.StmtBudget =
		"small", 2, 1, 1, 3, 6
	loops := def
	loops.Name, loops.Loops = "loops", true
	envcas := def
	envcas.Name, envcas.EnvCAS = "envcas", true
	big := def
	big.Name, big.MaxVars, big.MaxDom, big.MaxDis, big.MaxStmts, big.StmtBudget =
		"big", 4, 4, 3, 5, 20
	nocas := def
	nocas.Name, nocas.CAS = "nocas", false
	return []Profile{def, small, loops, envcas, big, nocas}
}

// ProfileByName resolves a named profile; the boolean reports success.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileNames lists the available profile names.
func ProfileNames() []string {
	var out []string
	for _, p := range profiles() {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

// ProfileForIndex maps an arbitrary byte onto a profile; used by the native
// fuzz targets to let the fuzzing engine pick the feature mix.
func ProfileForIndex(i byte) Profile {
	ps := profiles()
	return ps[int(i)%len(ps)]
}

// gen carries one generation's context.
type gen struct {
	rng    *rand.Rand
	prof   Profile
	dom    int
	vars   []string
	budget int // remaining leaf statements for the current program
}

// Generate produces a deterministic, well-formed system from the seed: the
// result always passes (*lang.System).Validate. The same (seed, profile)
// pair yields the same system on every run and platform.
func Generate(seed int64, prof Profile) *lang.System {
	g := &gen{rng: rand.New(rand.NewSource(seed)), prof: prof}

	nv := 1 + g.rng.Intn(max(prof.MaxVars, 1))
	for i := 0; i < nv; i++ {
		g.vars = append(g.vars, fmt.Sprintf("v%d", i))
	}
	g.dom = 2
	if prof.MaxDom > 2 {
		g.dom = 2 + g.rng.Intn(prof.MaxDom-1)
	}

	// Negative seeds (the native fuzz targets feed arbitrary int64s) must
	// still yield a parseable identifier, so the sign becomes a letter.
	name := fmt.Sprintf("fuzz_%s_%d", prof.Name, seed)
	if seed < 0 {
		name = fmt.Sprintf("fuzz_%s_n%d", prof.Name, -(seed + 1))
	}
	sys := &lang.System{
		Name: name,
		Vars: g.vars,
		Dom:  g.dom,
		Init: lang.Val(g.rng.Intn(g.dom)),
	}
	nDis := 0
	if prof.MaxDis > 0 {
		nDis = g.rng.Intn(prof.MaxDis + 1)
	}
	wantEnv := prof.Env && (nDis == 0 || g.rng.Intn(4) > 0)
	if !wantEnv && nDis == 0 {
		nDis = 1
	}
	if wantEnv {
		sys.Env = g.program("envp", g.prof.EnvCAS, g.prof.EnvLoops)
	}
	for i := 0; i < nDis; i++ {
		sys.Dis = append(sys.Dis, g.program(fmt.Sprintf("d%d", i), g.prof.CAS, g.prof.Loops))
	}
	if err := sys.Validate(); err != nil {
		// The generator is supposed to be total; a validation failure is a
		// fuzzgen bug and must surface loudly in any fuzz target or campaign.
		panic(fmt.Sprintf("fuzzgen: generated invalid system (seed %d): %v", seed, err))
	}
	return sys
}

// program generates one thread program with the given feature allowances.
func (g *gen) program(name string, cas, loops bool) *lang.Program {
	nr := 1 + g.rng.Intn(max(g.prof.MaxRegs, 1))
	p := &lang.Program{Name: name}
	for i := 0; i < nr; i++ {
		p.Regs = append(p.Regs, fmt.Sprintf("r%d", i))
	}
	g.budget = max(g.prof.StmtBudget, 1)
	p.Body = g.block(0, nr, cas, loops)
	return p
}

// block generates a statement sequence at the given nesting depth.
func (g *gen) block(depth, nr int, cas, loops bool) lang.Stmt {
	n := 1 + g.rng.Intn(max(g.prof.MaxStmts, 1))
	var stmts []lang.Stmt
	for i := 0; i < n && g.budget > 0; i++ {
		stmts = append(stmts, g.stmt(depth, nr, cas, loops))
	}
	return lang.SeqOf(stmts...)
}

// stmt generates one statement, spending leaf budget.
func (g *gen) stmt(depth, nr int, cas, loops bool) lang.Stmt {
	g.budget--
	v := lang.VarID(g.rng.Intn(len(g.vars)))
	r := lang.RegID(g.rng.Intn(nr))
	roll := g.rng.Intn(100)
	nested := depth < g.prof.MaxDepth && g.budget > 1
	switch {
	case roll < 20: // load
		return lang.Load{Reg: r, Var: v}
	case roll < 38: // store
		return lang.Store{Var: v, E: g.expr(nr, 1)}
	case roll < 50: // assume
		return lang.Assume{Cond: g.cond(nr)}
	case roll < 58: // assign
		return lang.Assign{Reg: r, E: g.expr(nr, 2)}
	case roll < 68: // assert false
		return lang.AssertFail{}
	case roll < 74 && cas:
		return lang.CAS{Var: v, Expect: g.expr(nr, 1), New: g.expr(nr, 1)}
	case roll < 82 && nested: // choice
		return lang.ChoiceOf(g.block(depth+1, nr, cas, loops), g.block(depth+1, nr, cas, loops))
	case roll < 88 && nested: // if/else (desugars to choice-of-assumes)
		return lang.If(g.cond(nr), g.block(depth+1, nr, cas, loops), g.block(depth+1, nr, cas, loops))
	case roll < 94 && nested && loops:
		if g.rng.Intn(2) == 0 {
			return lang.Star{Body: g.block(depth+1, nr, cas, loops)}
		}
		return lang.While{Cond: g.cond(nr), Body: g.block(depth+1, nr, cas, loops)}
	default:
		return lang.Skip{}
	}
}

// expr generates a register expression of bounded depth.
func (g *gen) expr(nr, depth int) lang.Expr {
	roll := g.rng.Intn(100)
	switch {
	case roll < 45 || depth <= 0:
		return lang.Num(lang.Val(g.rng.Intn(g.dom)))
	case roll < 75:
		return lang.Reg(lang.RegID(g.rng.Intn(nr)))
	case roll < 90 && g.prof.Arith:
		ops := []lang.BinOp{lang.OpAdd, lang.OpSub, lang.OpMul}
		return lang.Bin(ops[g.rng.Intn(len(ops))], g.expr(nr, depth-1), g.expr(nr, depth-1))
	default:
		return g.cmp(nr, depth-1)
	}
}

// cond generates a boolean-ish expression (used for assume/if/while guards).
func (g *gen) cond(nr int) lang.Expr {
	switch g.rng.Intn(10) {
	case 0:
		return lang.Not(g.cmp(nr, 1))
	case 1:
		op := lang.OpAnd
		if g.rng.Intn(2) == 0 {
			op = lang.OpOr
		}
		return lang.Bin(op, g.cmp(nr, 0), g.cmp(nr, 0))
	default:
		return g.cmp(nr, 1)
	}
}

// cmp generates a comparison between two sub-expressions.
func (g *gen) cmp(nr, depth int) lang.Expr {
	ops := []lang.BinOp{lang.OpEq, lang.OpNe}
	if g.prof.Arith {
		ops = append(ops, lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe)
	}
	return lang.Bin(ops[g.rng.Intn(len(ops))], g.expr(nr, depth), g.expr(nr, depth))
}

// StmtCount returns the number of leaf statements (skip, assume, assert,
// assignments, loads, stores, cas) across all programs of the system; the
// shrinker minimizes this measure and the acceptance tests bound it.
func StmtCount(sys *lang.System) int {
	n := 0
	for _, p := range sys.Threads() {
		n += stmtCount(p.Body)
	}
	return n
}

func stmtCount(st lang.Stmt) int {
	switch st := st.(type) {
	case lang.Seq:
		n := 0
		for _, c := range st.Stmts {
			n += stmtCount(c)
		}
		return n
	case lang.Choice:
		n := 0
		for _, b := range st.Branches {
			n += stmtCount(b)
		}
		return n
	case lang.Star:
		return stmtCount(st.Body)
	case lang.While:
		return 1 + stmtCount(st.Body) // the guard counts as one
	default:
		return 1
	}
}

// describe renders a short feature signature of the system for logs.
func describe(sys *lang.System) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s vars=%d dom=%d stmts=%d", lang.Classify(sys), len(sys.Vars), sys.Dom, StmtCount(sys))
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
