package fuzzgen

import (
	"context"
	"testing"
	"time"

	"paramra/internal/lang"
)

// fuzzCheck bounds per-input oracle work so the fuzzing engine gets a high
// exec rate; the rabench campaign uses larger caps for depth.
func fuzzCheck() CheckOptions {
	return CheckOptions{
		MaxMacroStates: 400,
		MaxStates:      2000,
		MaxSkeletons:   200,
		NoDeadlocks:    true,
	}
}

// FuzzPrintParseRoundTrip drives the generator from fuzz-chosen seeds and
// checks that every generated system survives print -> parse -> print
// exactly. This is the target that caught the unparenthesized-cas-operand
// printer bug (see the lang corpus).
func FuzzPrintParseRoundTrip(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		for i := byte(0); i < 6; i++ {
			f.Add(seed, i)
		}
	}
	f.Fuzz(func(t *testing.T, seed int64, profIdx byte) {
		sys := Generate(seed, ProfileForIndex(profIdx))
		src := lang.Print(sys)
		back, err := lang.ParseSystem(src)
		if err != nil {
			t.Fatalf("generated system does not re-parse: %v\n%s", err, src)
		}
		if got := lang.Print(back); got != src {
			t.Fatalf("print not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", src, got)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("re-parsed system invalid: %v", err)
		}
	})
}

// FuzzDifferentialVerify generates a system per fuzz input and requires all
// verification backends to agree. Any failure here is a real soundness bug
// in one of the backends (or in the oracle's model of their contracts).
func FuzzDifferentialVerify(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		for i := byte(0); i < 6; i++ {
			f.Add(seed, i)
		}
	}
	f.Fuzz(func(t *testing.T, seed int64, profIdx byte) {
		sys := Generate(seed, ProfileForIndex(profIdx))
		// The fuzz worker's hang detector kills executions around 10s; a
		// deadline keeps pathological inputs fast, and the oracle excludes
		// cancelled runs from comparison, so a timeout is never a verdict.
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		rep := Check(ctx, sys, fuzzCheck())
		if !rep.Agree() {
			for _, v := range rep.Verdicts {
				t.Logf("verdict %s", v)
			}
			for _, d := range rep.Disagreements {
				t.Errorf("disagreement %s", d)
			}
			t.Fatalf("backends disagree on seed=%d profile=%s:\n%s",
				seed, ProfileForIndex(profIdx).Name, lang.Print(sys))
		}
	})
}
