package fuzzgen

import (
	"paramra/internal/lang"
)

// ShrinkOptions bounds the delta-debugging minimizer.
type ShrinkOptions struct {
	// MaxChecks caps predicate evaluations (default 800).
	MaxChecks int
}

// Shrink minimizes sys while pred keeps holding (pred must hold on sys
// itself, which is never mutated; every candidate passed to pred is valid
// per (*lang.System).Validate). The reduction order follows the classic
// delta-debugging ladder — drop whole threads, then drop or flatten
// statements, then shrink constants and the domain — restarting after every
// accepted reduction so later passes see the smaller system.
func Shrink(sys *lang.System, pred func(*lang.System) bool, opts ShrinkOptions) *lang.System {
	if opts.MaxChecks <= 0 {
		opts.MaxChecks = 800
	}
	checks := 0
	try := func(cand *lang.System) bool {
		if checks >= opts.MaxChecks {
			return false
		}
		if cand == nil || cand.Validate() != nil {
			return false
		}
		checks++
		return pred(cand)
	}

	cur := sys
	for {
		next, ok := shrinkOnce(cur, try)
		if !ok || checks >= opts.MaxChecks {
			return cur
		}
		cur = next
	}
}

// shrinkOnce attempts one accepted reduction, trying candidates from the
// most to the least aggressive. It reports whether a candidate was accepted.
func shrinkOnce(sys *lang.System, try func(*lang.System) bool) (*lang.System, bool) {
	// Pass 1: drop whole threads.
	if sys.Env != nil {
		if cand := cloneSys(sys, func(c *lang.System) { c.Env = nil }); len(sys.Dis) > 0 && try(cand) {
			return cand, true
		}
	}
	for i := range sys.Dis {
		i := i
		cand := cloneSys(sys, func(c *lang.System) {
			c.Dis = append(append([]*lang.Program{}, c.Dis[:i]...), c.Dis[i+1:]...)
		})
		if (sys.Env != nil || len(sys.Dis) > 1) && try(cand) {
			return cand, true
		}
	}

	// Pass 2: statement-level reductions, one program at a time.
	for ti, p := range sys.Threads() {
		for _, body := range stmtVariants(p.Body) {
			if cand := replaceBody(sys, ti, body); try(cand) {
				return cand, true
			}
		}
	}

	// Pass 3: expression-level and scalar reductions.
	for ti, p := range sys.Threads() {
		for _, body := range exprVariants(p.Body) {
			if cand := replaceBody(sys, ti, body); try(cand) {
				return cand, true
			}
		}
	}
	if sys.Dom > 2 {
		if cand := cloneSys(sys, func(c *lang.System) {
			c.Dom = c.Dom - 1
			if int(c.Init) >= c.Dom {
				c.Init = 0
			}
		}); try(cand) {
			return cand, true
		}
	}
	if sys.Init != 0 {
		if cand := cloneSys(sys, func(c *lang.System) { c.Init = 0 }); try(cand) {
			return cand, true
		}
	}

	// Pass 4: drop now-unused registers and shared variables (renumbering
	// the surviving references).
	if cand := dropUnusedDecls(sys); cand != nil && try(cand) {
		return cand, true
	}
	return sys, false
}

// cloneSys shallow-copies the system (program pointers shared) and applies
// edit to the copy. Programs are immutable under shrinking — every
// statement rewrite builds fresh programs — so sharing is safe.
func cloneSys(sys *lang.System, edit func(*lang.System)) *lang.System {
	c := *sys
	c.Dis = append([]*lang.Program{}, sys.Dis...)
	c.Vars = append([]string{}, sys.Vars...)
	edit(&c)
	return &c
}

// replaceBody returns a copy of sys where thread ti (in Threads() order:
// env first, then dis) runs a program with the given body.
func replaceBody(sys *lang.System, ti int, body lang.Stmt) *lang.System {
	return cloneSys(sys, func(c *lang.System) {
		old := sys.Threads()[ti]
		np := &lang.Program{Name: old.Name, Regs: append([]string{}, old.Regs...), Body: body}
		if sys.Env != nil && ti == 0 {
			c.Env = np
			return
		}
		di := ti
		if sys.Env != nil {
			di--
		}
		c.Dis[di] = np
	})
}

// stmtVariants yields one-step structural reductions of st: removing a
// statement, replacing a compound by one of its parts, or unwrapping a
// loop. Variants are ordered from the most aggressive to the least.
func stmtVariants(st lang.Stmt) []lang.Stmt {
	var out []lang.Stmt
	switch st := st.(type) {
	case lang.Seq:
		for i := range st.Stmts {
			rest := make([]lang.Stmt, 0, len(st.Stmts)-1)
			rest = append(rest, st.Stmts[:i]...)
			rest = append(rest, st.Stmts[i+1:]...)
			out = append(out, lang.SeqOf(rest...))
		}
		for i, c := range st.Stmts {
			for _, v := range stmtVariants(c) {
				repl := append([]lang.Stmt{}, st.Stmts...)
				repl[i] = v
				out = append(out, lang.SeqOf(repl...))
			}
		}
	case lang.Choice:
		for _, b := range st.Branches {
			out = append(out, b) // commit to one branch
		}
		if len(st.Branches) > 2 {
			for i := range st.Branches {
				rest := append(append([]lang.Stmt{}, st.Branches[:i]...), st.Branches[i+1:]...)
				out = append(out, lang.ChoiceOf(rest...))
			}
		}
		for i, b := range st.Branches {
			for _, v := range stmtVariants(b) {
				repl := append([]lang.Stmt{}, st.Branches...)
				repl[i] = v
				out = append(out, lang.ChoiceOf(repl...))
			}
		}
	case lang.Star:
		out = append(out, lang.Skip{}, st.Body)
		for _, v := range stmtVariants(st.Body) {
			out = append(out, lang.Star{Body: v})
		}
	case lang.While:
		out = append(out, lang.Skip{}, st.Body)
		for _, v := range stmtVariants(st.Body) {
			out = append(out, lang.While{Cond: st.Cond, Body: v})
		}
	case lang.Skip:
		// nothing below skip
	default:
		out = append(out, lang.Skip{})
	}
	return out
}

// exprVariants yields copies of st with one embedded expression simplified.
func exprVariants(st lang.Stmt) []lang.Stmt {
	var out []lang.Stmt
	switch st := st.(type) {
	case lang.Seq:
		for i, c := range st.Stmts {
			for _, v := range exprVariants(c) {
				repl := append([]lang.Stmt{}, st.Stmts...)
				repl[i] = v
				out = append(out, lang.SeqOf(repl...))
			}
		}
	case lang.Choice:
		for i, b := range st.Branches {
			for _, v := range exprVariants(b) {
				repl := append([]lang.Stmt{}, st.Branches...)
				repl[i] = v
				out = append(out, lang.ChoiceOf(repl...))
			}
		}
	case lang.Star:
		for _, v := range exprVariants(st.Body) {
			out = append(out, lang.Star{Body: v})
		}
	case lang.While:
		for _, e := range simplerExprs(st.Cond) {
			out = append(out, lang.While{Cond: e, Body: st.Body})
		}
		for _, v := range exprVariants(st.Body) {
			out = append(out, lang.While{Cond: st.Cond, Body: v})
		}
	case lang.Assume:
		for _, e := range simplerExprs(st.Cond) {
			out = append(out, lang.Assume{Cond: e})
		}
	case lang.Assign:
		for _, e := range simplerExprs(st.E) {
			out = append(out, lang.Assign{Reg: st.Reg, E: e})
		}
	case lang.Store:
		for _, e := range simplerExprs(st.E) {
			out = append(out, lang.Store{Var: st.Var, E: e})
		}
	case lang.CAS:
		for _, e := range simplerExprs(st.Expect) {
			out = append(out, lang.CAS{Var: st.Var, Expect: e, New: st.New})
		}
		for _, e := range simplerExprs(st.New) {
			out = append(out, lang.CAS{Var: st.Var, Expect: st.Expect, New: e})
		}
	}
	return out
}

// simplerExprs yields strictly smaller replacements for e: constants first,
// then sub-expressions, then one-step reductions inside.
func simplerExprs(e lang.Expr) []lang.Expr {
	var out []lang.Expr
	switch e := e.(type) {
	case lang.ConstExpr:
		if e.V != 0 {
			out = append(out, lang.Num(0))
			if e.V > 1 {
				out = append(out, lang.Num(e.V-1))
			}
		}
	case lang.RegExpr:
		out = append(out, lang.Num(0))
	case lang.UnExpr:
		out = append(out, lang.Num(0), lang.Num(1), e.E)
		for _, s := range simplerExprs(e.E) {
			out = append(out, lang.UnExpr{Op: e.Op, E: s})
		}
	case lang.BinExpr:
		out = append(out, lang.Num(0), lang.Num(1), e.L, e.R)
		for _, s := range simplerExprs(e.L) {
			out = append(out, lang.Bin(e.Op, s, e.R))
		}
		for _, s := range simplerExprs(e.R) {
			out = append(out, lang.Bin(e.Op, e.L, s))
		}
	}
	return out
}

// dropUnusedDecls removes registers and shared variables no statement
// references, renumbering the surviving references. Returns nil when
// nothing is removable.
func dropUnusedDecls(sys *lang.System) *lang.System {
	varUsed := make([]bool, len(sys.Vars))
	for _, p := range sys.Threads() {
		markVarUse(p.Body, varUsed)
	}
	changed := false
	keepVar := 0
	varMap := make([]lang.VarID, len(sys.Vars))
	var newVars []string
	for i, used := range varUsed {
		if used || keepVar == 0 && i == len(sys.Vars)-1 && len(newVars) == 0 {
			// Keep at least one variable: Validate requires a non-empty table.
			varMap[i] = lang.VarID(len(newVars))
			newVars = append(newVars, sys.Vars[i])
			if used {
				keepVar++
			}
		} else {
			changed = true
		}
	}

	out := cloneSys(sys, func(c *lang.System) { c.Vars = newVars })
	rewrite := func(p *lang.Program) *lang.Program {
		regUsed := make([]bool, len(p.Regs))
		markRegUse(p.Body, regUsed)
		regMap := make([]lang.RegID, len(p.Regs))
		var newRegs []string
		for i, used := range regUsed {
			if used {
				regMap[i] = lang.RegID(len(newRegs))
				newRegs = append(newRegs, p.Regs[i])
			} else {
				changed = true
			}
		}
		return &lang.Program{Name: p.Name, Regs: newRegs, Body: renumber(p.Body, regMap, varMap)}
	}
	if out.Env != nil {
		out.Env = rewrite(out.Env)
	}
	for i, d := range out.Dis {
		out.Dis[i] = rewrite(d)
	}
	if !changed {
		return nil
	}
	return out
}

func markVarUse(st lang.Stmt, used []bool) {
	switch st := st.(type) {
	case lang.Seq:
		for _, c := range st.Stmts {
			markVarUse(c, used)
		}
	case lang.Choice:
		for _, b := range st.Branches {
			markVarUse(b, used)
		}
	case lang.Star:
		markVarUse(st.Body, used)
	case lang.While:
		markVarUse(st.Body, used)
	case lang.Load:
		used[st.Var] = true
	case lang.Store:
		used[st.Var] = true
	case lang.CAS:
		used[st.Var] = true
	}
}

func markRegUse(st lang.Stmt, used []bool) {
	markExpr := func(e lang.Expr) {
		for _, r := range lang.ExprRegs(e) {
			used[r] = true
		}
	}
	switch st := st.(type) {
	case lang.Seq:
		for _, c := range st.Stmts {
			markRegUse(c, used)
		}
	case lang.Choice:
		for _, b := range st.Branches {
			markRegUse(b, used)
		}
	case lang.Star:
		markRegUse(st.Body, used)
	case lang.While:
		markExpr(st.Cond)
		markRegUse(st.Body, used)
	case lang.Assume:
		markExpr(st.Cond)
	case lang.Assign:
		used[st.Reg] = true
		markExpr(st.E)
	case lang.Load:
		used[st.Reg] = true
	case lang.Store:
		markExpr(st.E)
	case lang.CAS:
		markExpr(st.Expect)
		markExpr(st.New)
	}
}

// renumber rewrites register and variable references through the given maps.
func renumber(st lang.Stmt, regMap []lang.RegID, varMap []lang.VarID) lang.Stmt {
	re := func(e lang.Expr) lang.Expr { return renumberExpr(e, regMap) }
	switch st := st.(type) {
	case lang.Seq:
		out := make([]lang.Stmt, len(st.Stmts))
		for i, c := range st.Stmts {
			out[i] = renumber(c, regMap, varMap)
		}
		return lang.Seq{Stmts: out, Pos: st.Pos}
	case lang.Choice:
		out := make([]lang.Stmt, len(st.Branches))
		for i, b := range st.Branches {
			out[i] = renumber(b, regMap, varMap)
		}
		return lang.Choice{Branches: out, Pos: st.Pos}
	case lang.Star:
		return lang.Star{Body: renumber(st.Body, regMap, varMap), Pos: st.Pos}
	case lang.While:
		return lang.While{Cond: re(st.Cond), Body: renumber(st.Body, regMap, varMap), Pos: st.Pos}
	case lang.Assume:
		return lang.Assume{Cond: re(st.Cond), Pos: st.Pos}
	case lang.Assign:
		return lang.Assign{Reg: regMap[st.Reg], E: re(st.E), Pos: st.Pos}
	case lang.Load:
		return lang.Load{Reg: regMap[st.Reg], Var: varMap[st.Var], Pos: st.Pos}
	case lang.Store:
		return lang.Store{Var: varMap[st.Var], E: re(st.E), Pos: st.Pos}
	case lang.CAS:
		return lang.CAS{Var: varMap[st.Var], Expect: re(st.Expect), New: re(st.New), Pos: st.Pos}
	default:
		return st
	}
}

func renumberExpr(e lang.Expr, regMap []lang.RegID) lang.Expr {
	switch e := e.(type) {
	case lang.RegExpr:
		return lang.RegExpr{Reg: regMap[e.Reg]}
	case lang.UnExpr:
		return lang.UnExpr{Op: e.Op, E: renumberExpr(e.E, regMap)}
	case lang.BinExpr:
		return lang.BinExpr{Op: e.Op, L: renumberExpr(e.L, regMap), R: renumberExpr(e.R, regMap)}
	default:
		return e
	}
}
