// Package sc implements sequential consistency (SC) for fixed instances of
// the same Com programs, as the reference strong model. Under SC the shared
// memory is a single value per variable; loads return the latest store.
//
// Its purpose is the robustness analysis the paper's §1 benchmarks come
// from (Lahav & Margalit, PLDI 2019): a program is *robust* when its RA
// behaviours coincide with its SC behaviours. Comparing the two explorers
// classifies each benchmark as robust or exhibiting genuinely weak
// behaviour — the broken-under-RA mutexes in the corpus are exactly the
// non-robust ones.
package sc

import (
	"context"
	"fmt"
	"strings"

	"paramra/internal/lang"
	"paramra/internal/ra"
)

// State is an SC configuration: one value per shared variable plus the
// thread-local parts.
type State struct {
	Mem     []lang.Val
	Threads []Thread
}

// Thread is a thread-local SC configuration.
type Thread struct {
	PC   lang.PC
	Regs []lang.Val
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{
		Mem:     append([]lang.Val(nil), s.Mem...),
		Threads: make([]Thread, len(s.Threads)),
	}
	for i, th := range s.Threads {
		out.Threads[i] = Thread{PC: th.PC, Regs: append([]lang.Val(nil), th.Regs...)}
	}
	return out
}

// Key canonically encodes the state for visited-set hashing.
func (s *State) Key() string {
	var b strings.Builder
	for _, v := range s.Mem {
		fmt.Fprintf(&b, "%d,", int(v))
	}
	for _, th := range s.Threads {
		fmt.Fprintf(&b, "|%d:", int(th.PC))
		for _, r := range th.Regs {
			fmt.Fprintf(&b, "%d,", int(r))
		}
	}
	return b.String()
}

// Instance is a fixed SC instantiation of a parameterized system, mirroring
// ra.Instance (env replicas first, then dis threads).
type Instance struct {
	Sys     *lang.System
	Threads []ra.ThreadInfo
}

// NewInstance builds the SC instance with nEnv environment replicas.
func NewInstance(sys *lang.System, nEnv int) (*Instance, error) {
	r, err := ra.NewInstance(sys, nEnv)
	if err != nil {
		return nil, err
	}
	return &Instance{Sys: r.Sys, Threads: r.Threads}, nil
}

// InitState returns the initial SC configuration.
func (inst *Instance) InitState() *State {
	s := &State{Mem: make([]lang.Val, len(inst.Sys.Vars))}
	for v := range s.Mem {
		s.Mem[v] = inst.Sys.Init
	}
	for _, ti := range inst.Threads {
		s.Threads = append(s.Threads, Thread{
			PC:   ti.CFG.Entry,
			Regs: make([]lang.Val, ti.CFG.Prog.NumRegs()),
		})
	}
	return s
}

func (inst *Instance) norm(v lang.Val) lang.Val {
	d := lang.Val(inst.Sys.Dom)
	return ((v % d) + d) % d
}

// Succ is a successor with its event.
type Succ struct {
	State *State
	Event ra.Event
}

// Successors enumerates the SC transitions enabled in s.
func (inst *Instance) Successors(s *State) []Succ {
	var out []Succ
	for ti := range s.Threads {
		info := inst.Threads[ti]
		th := &s.Threads[ti]
		regs := info.CFG.Prog.Regs
		vars := inst.Sys.Vars
		for _, e := range info.CFG.Out[th.PC] {
			ev := ra.Event{Thread: ti, Name: info.Name, Op: e.Op.String(regs, vars)}
			step := func(update func(ns *State)) {
				ns := s.Clone()
				ns.Threads[ti].PC = e.To
				if update != nil {
					update(ns)
				}
				out = append(out, Succ{State: ns, Event: ev})
			}
			switch e.Op.Kind {
			case lang.OpNop:
				step(nil)
			case lang.OpAssume:
				if e.Op.E.Eval(th.Regs) != 0 {
					step(nil)
				}
			case lang.OpAssertFail:
				ev.Assert = true
				step(nil)
			case lang.OpAssign:
				d := inst.norm(e.Op.E.Eval(th.Regs))
				step(func(ns *State) { ns.Threads[ti].Regs[e.Op.Reg] = d })
			case lang.OpLoad:
				step(func(ns *State) { ns.Threads[ti].Regs[e.Op.Reg] = ns.Mem[e.Op.Var] })
			case lang.OpStore:
				d := inst.norm(e.Op.E.Eval(th.Regs))
				step(func(ns *State) { ns.Mem[e.Op.Var] = d })
			case lang.OpCASOp:
				expect := inst.norm(e.Op.E.Eval(th.Regs))
				newVal := inst.norm(e.Op.E2.Eval(th.Regs))
				if s.Mem[e.Op.Var] == expect {
					step(func(ns *State) { ns.Mem[e.Op.Var] = newVal })
				}
			}
		}
	}
	return out
}

// Result mirrors ra.Result for SC exploration.
type Result struct {
	Unsafe      bool
	States      int
	Transitions int
	Complete    bool
	Witness     []ra.Event
	// Err is the context error when the search was cancelled.
	Err error
}

// Explore runs a BFS of the SC state space looking for an assert violation.
func (inst *Instance) Explore(lim ra.Limits) Result {
	return inst.ExploreContext(context.Background(), lim)
}

// ExploreContext is Explore with cancellation: the BFS stops at the next
// dequeued state once ctx is done, returning Complete=false and
// Err=ctx.Err().
func (inst *Instance) ExploreContext(ctx context.Context, lim ra.Limits) Result {
	type node struct {
		state *State
		depth int
	}
	type backEdge struct {
		prevKey string
		ev      ra.Event
	}
	init := inst.InitState()
	visited := map[string]bool{init.Key(): true}
	pred := map[string]backEdge{}
	queue := []node{{state: init}}
	res := Result{States: 1}
	limited := false

	buildWitness := func(lastKey string, final ra.Event) []ra.Event {
		rev := []ra.Event{final}
		k := lastKey
		for k != init.Key() {
			be, ok := pred[k]
			if !ok {
				break
			}
			rev = append(rev, be.ev)
			k = be.prevKey
		}
		out := make([]ra.Event, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			out = append(out, rev[i])
		}
		return out
	}

	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			res.Err = err
			return res
		}
		n := queue[0]
		queue = queue[1:]
		if lim.MaxDepth > 0 && n.depth >= lim.MaxDepth {
			limited = true
			continue
		}
		key := n.state.Key()
		for _, succ := range inst.Successors(n.state) {
			res.Transitions++
			if succ.Event.Assert {
				res.Unsafe = true
				res.Witness = buildWitness(key, succ.Event)
				return res
			}
			sk := succ.State.Key()
			if visited[sk] {
				continue
			}
			if lim.MaxStates > 0 && res.States >= lim.MaxStates {
				limited = true
				continue
			}
			visited[sk] = true
			pred[sk] = backEdge{prevKey: key, ev: succ.Event}
			res.States++
			queue = append(queue, node{state: succ.State, depth: n.depth + 1})
		}
	}
	res.Complete = !limited
	return res
}

// Robustness classifies one instance's assert-reachability under SC vs RA.
type Robustness struct {
	SCUnsafe bool
	RAUnsafe bool
	// Complete is true when both explorations were exhaustive.
	Complete bool
}

// WeakBehaviour reports an RA-only violation: the hallmark of a non-robust
// program (the assert encodes the weak outcome).
func (r Robustness) WeakBehaviour() bool { return r.RAUnsafe && !r.SCUnsafe }

// CompareRobustness explores the same instance under SC and RA.
func CompareRobustness(sys *lang.System, nEnv int, lim ra.Limits) (Robustness, error) {
	scInst, err := NewInstance(sys, nEnv)
	if err != nil {
		return Robustness{}, err
	}
	raInst, err := ra.NewInstance(sys, nEnv)
	if err != nil {
		return Robustness{}, err
	}
	scRes := scInst.Explore(lim)
	raRes := raInst.Explore(lim)
	return Robustness{
		SCUnsafe: scRes.Unsafe,
		RAUnsafe: raRes.Unsafe,
		Complete: (scRes.Unsafe || scRes.Complete) && (raRes.Unsafe || raRes.Complete),
	}, nil
}
