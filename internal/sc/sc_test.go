package sc

import (
	"testing"

	"paramra/internal/lang"
	"paramra/internal/ra"
)

func exploreSC(t *testing.T, src string, nEnv int) Result {
	t.Helper()
	sys := lang.MustParseSystem(src)
	inst, err := NewInstance(sys, nEnv)
	if err != nil {
		t.Fatal(err)
	}
	res := inst.Explore(ra.Limits{MaxStates: 1_000_000})
	if !res.Unsafe && !res.Complete {
		t.Fatal("SC exploration incomplete")
	}
	return res
}

const sbSrc = `
system sb { vars x y a; domain 2; dis t1; dis t2 }
thread t1 { regs r1; store x 1; r1 = load y; assume r1 == 0; store a 1 }
thread t2 { regs r2 r3; store y 1; r2 = load x; assume r2 == 0; r3 = load a; assume r3 == 1; assert false }
`

// TestSBForbiddenUnderSC: the store-buffering weak outcome must be
// unreachable under sequential consistency.
func TestSBForbiddenUnderSC(t *testing.T) {
	if exploreSC(t, sbSrc, 0).Unsafe {
		t.Fatal("SB weak behaviour observed under SC")
	}
}

// TestSBRobustnessGap: the same program is unsafe under RA — the robustness
// comparator must flag the weak behaviour.
func TestSBRobustnessGap(t *testing.T) {
	sys := lang.MustParseSystem(sbSrc)
	rob, err := CompareRobustness(sys, 0, ra.Limits{MaxStates: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !rob.Complete {
		t.Fatal("comparison incomplete")
	}
	if !rob.WeakBehaviour() {
		t.Fatalf("SB should be RA-only unsafe: %+v", rob)
	}
}

// TestSCBasicInterleaving: SC still has interleavings — a race on x can be
// observed in either order.
func TestSCBasicInterleaving(t *testing.T) {
	src := `
system r { vars x; domain 3; dis w1; dis w2; dis obs }
thread w1 { store x 1 }
thread w2 { store x 2 }
thread obs { regs a; a = load x; assume a == %d; assert false }
`
	for _, v := range []int{1, 2} {
		s := lang.MustParseSystem(replaceInt(src, v))
		inst, err := NewInstance(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !inst.Explore(ra.Limits{MaxStates: 100_000}).Unsafe {
			t.Errorf("final value %d unobservable under SC", v)
		}
	}
}

func replaceInt(format string, v int) string {
	out := ""
	for i := 0; i < len(format); i++ {
		if format[i] == '%' && i+1 < len(format) && format[i+1] == 'd' {
			out += string(rune('0' + v))
			i++
			continue
		}
		out += string(format[i])
	}
	return out
}

// TestSCLoadSeesLatestStoreOnly: under SC a reader cannot see a stale value
// after observing a newer one (single-copy memory).
func TestSCLoadSeesLatestStoreOnly(t *testing.T) {
	res := exploreSC(t, `
system stale { vars x; domain 3; dis w; dis r }
thread w { store x 1; store x 2 }
thread r {
  regs a b
  a = load x; assume a == 2
  b = load x; assume b == 1
  assert false
}
`, 0)
	if res.Unsafe {
		t.Fatal("stale read under SC")
	}
}

// TestSCCAS: compare-and-swap under SC — mutual exclusion must hold, and
// the value transition must be observable.
func TestSCCAS(t *testing.T) {
	res := exploreSC(t, `
system cas { vars l a; domain 2; dis t1; dis t2 }
thread t1 { cas l 0 1; store a 1 }
thread t2 { regs r; cas l 0 1; r = load a; assume r == 1; assert false }
`, 0)
	if res.Unsafe {
		t.Fatal("two SC CAS(0→1) both succeeded")
	}
	res = exploreSC(t, `
system cas2 { vars l; domain 2; dis t1; dis t2 }
thread t1 { cas l 0 1 }
thread t2 { regs r; r = load l; assume r == 1; assert false }
`, 0)
	if !res.Unsafe {
		t.Fatal("SC CAS effect invisible")
	}
}

// TestSCSubsumedByRA: anything reachable under SC must be reachable under
// RA (SC executions are RA executions that always read maximal timestamps).
func TestSCSubsumedByRA(t *testing.T) {
	srcs := []string{
		sbSrc,
		`
system mp { vars x y; domain 2; dis t1; dis t2 }
thread t1 { store x 1; store y 1 }
thread t2 { regs a b; a = load y; assume a == 1; b = load x; assume b == 1; assert false }
`,
		`
system chain { vars x; domain 4; env inc; dis w }
thread inc { regs r; r = load x; store x (r + 1) }
thread w { regs s; s = load x; assume s == 2; assert false }
`,
	}
	for i, src := range srcs {
		sys := lang.MustParseSystem(src)
		for n := 0; n <= 2; n++ {
			if sys.Env == nil && n > 0 {
				continue
			}
			rob, err := CompareRobustness(sys, n, ra.Limits{MaxStates: 500_000})
			if err != nil {
				t.Fatal(err)
			}
			if !rob.Complete {
				continue
			}
			if rob.SCUnsafe && !rob.RAUnsafe {
				t.Errorf("case %d n=%d: SC-unsafe but RA-safe — SC not subsumed", i, n)
			}
		}
	}
}

// TestCorpusRobustnessClassification: the broken mutexes are exactly
// RA-only unsafe (non-robust); their violations disappear under SC.
func TestCorpusRobustnessClassification(t *testing.T) {
	nonRobust := []string{sbSrc}
	for _, src := range nonRobust {
		sys := lang.MustParseSystem(src)
		rob, err := CompareRobustness(sys, 0, ra.Limits{MaxStates: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !rob.WeakBehaviour() {
			t.Errorf("expected weak behaviour: %+v", rob)
		}
	}
}

func TestSCStateKeyAndClone(t *testing.T) {
	sys := lang.MustParseSystem(`
system s { vars x; domain 2; dis t }
thread t { store x 1 }
`)
	inst, err := NewInstance(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.InitState()
	c := s.Clone()
	c.Mem[0] = 1
	c.Threads[0].Regs = append(c.Threads[0].Regs, 0) // no shared backing
	if s.Mem[0] == 1 {
		t.Error("clone shares memory")
	}
	if s.Key() == c.Key() {
		t.Error("distinct states share a key")
	}
}
