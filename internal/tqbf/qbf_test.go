package tqbf

import (
	"math/rand"
	"testing"
)

func mustParse(t *testing.T, src string) *QBF {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestEvalBasics(t *testing.T) {
	tests := []struct {
		src  string
		want bool
	}{
		{"forall u : u", false},
		{"forall u : (u | ~u)", true},
		{"exists e : e", true},
		{"exists e : (e & ~e)", false}, // parsed as two clauses? no — single & splits clauses: (e) & (~e)
		{"forall u exists e : (u | e)", true},
		{"forall u exists e : (~u | e) & (u | ~e)", true},  // e := u
		{"exists e forall u : (~u | e) & (u | ~e)", false}, // e fixed before u
		{"forall u0 exists e1 forall u1 : (e1 | u1) & (~e1 | ~u1)", false},
		{"forall u0 exists e1 forall u1 : (~u0 | e1) & (u0 | ~e1)", true},
		{"forall u : true", true},
	}
	for _, tc := range tests {
		q := mustParse(t, tc.src)
		if got := q.Eval(); got != tc.want {
			t.Errorf("Eval(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"forall u (u)",            // missing colon
		"forall : (u)",            // malformed prefix
		"what u : (u)",            // bad quantifier
		"forall u : (v)",          // unquantified variable
		"forall u forall u : (u)", // duplicate
		"forall u : () ",          // empty clause
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		q := Random(r, 1+r.Intn(2), 1+r.Intn(4))
		q2 := mustParse(t, q.String())
		if q.String() != q2.String() {
			t.Fatalf("round trip mismatch:\n%s\n%s", q, q2)
		}
		if q.Eval() != q2.Eval() {
			t.Fatalf("round trip changed truth: %s", q)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []string{
		"exists e : e",
		"forall u : u",
		"exists a exists b : (a | b)",
		"forall u forall v : (u | ~v | v)",
		"exists a forall u exists b : (a | b | u)",
	}
	for _, src := range cases {
		q := mustParse(t, src)
		n := q.Normalize()
		if !n.IsPaperShape() {
			t.Errorf("Normalize(%q) not paper shape: %s", src, n)
		}
		if q.Eval() != n.Eval() {
			t.Errorf("Normalize(%q) changed truth value", src)
		}
	}
}

func TestNormalizeRandomPreservesTruth(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		// Random arbitrary prefix.
		q := &QBF{}
		nv := 1 + r.Intn(4)
		for v := 0; v < nv; v++ {
			q.Vars = append(q.Vars, QVar{Name: string(rune('a' + v)), Exists: r.Intn(2) == 0})
		}
		for c := 0; c < 1+r.Intn(3); c++ {
			var cl Clause
			for l := 0; l < 1+r.Intn(3); l++ {
				cl = append(cl, Lit{Var: r.Intn(nv), Neg: r.Intn(2) == 1})
			}
			q.Matrix = append(q.Matrix, cl)
		}
		n := q.Normalize()
		if !n.IsPaperShape() {
			t.Fatalf("not paper shape: %s", n)
		}
		if q.Eval() != n.Eval() {
			t.Fatalf("truth changed: %s vs %s", q, n)
		}
	}
}

func TestIsPaperShape(t *testing.T) {
	if !mustParse(t, "forall u : u").IsPaperShape() {
		t.Error("∀u should be paper shape (n=0)")
	}
	if !mustParse(t, "forall u0 exists e1 forall u1 : u0").IsPaperShape() {
		t.Error("∀∃∀ should be paper shape")
	}
	if mustParse(t, "exists e : e").IsPaperShape() {
		t.Error("∃ alone is not paper shape")
	}
	if mustParse(t, "forall u exists e : e").IsPaperShape() {
		t.Error("∀∃ (even length) is not paper shape")
	}
}
