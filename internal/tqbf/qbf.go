// Package tqbf implements quantified Boolean formulas: evaluation (the
// canonical PSPACE-complete problem), random instance generation, parsing,
// and the paper's Figure 6 reduction from TQBF to parameterized safety
// verification of PureRA programs (Theorem 5.1).
package tqbf

import (
	"fmt"
	"math/rand"
	"strings"
)

// Lit is a literal: variable index (into QBF.Vars) with optional negation.
type Lit struct {
	Var int
	Neg bool
}

// Clause is a disjunction of literals.
type Clause []Lit

// QVar is a quantified variable.
type QVar struct {
	Name   string
	Exists bool
}

// QBF is a prenex CNF quantified Boolean formula: quantifier prefix (outer
// to inner) over a CNF matrix.
type QBF struct {
	Vars   []QVar
	Matrix []Clause
}

// Eval decides the formula by the textbook PSPACE recursion over the
// quantifier prefix.
func (q *QBF) Eval() bool {
	assign := make([]bool, len(q.Vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(q.Vars) {
			return q.matrixHolds(assign)
		}
		assign[i] = false
		r0 := rec(i + 1)
		if q.Vars[i].Exists && r0 {
			return true
		}
		if !q.Vars[i].Exists && !r0 {
			return false
		}
		assign[i] = true
		return rec(i + 1)
	}
	return rec(0)
}

func (q *QBF) matrixHolds(assign []bool) bool {
	for _, cl := range q.Matrix {
		sat := false
		for _, l := range cl {
			if assign[l.Var] != l.Neg {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// String renders the formula in the concrete syntax accepted by Parse.
func (q *QBF) String() string {
	var b strings.Builder
	for i, v := range q.Vars {
		if i > 0 {
			b.WriteByte(' ')
		}
		if v.Exists {
			b.WriteString("exists ")
		} else {
			b.WriteString("forall ")
		}
		b.WriteString(v.Name)
	}
	b.WriteString(" : ")
	if len(q.Matrix) == 0 {
		b.WriteString("true")
		return b.String()
	}
	for ci, cl := range q.Matrix {
		if ci > 0 {
			b.WriteString(" & ")
		}
		b.WriteByte('(')
		for li, l := range cl {
			if li > 0 {
				b.WriteString(" | ")
			}
			if l.Neg {
				b.WriteByte('~')
			}
			b.WriteString(q.Vars[l.Var].Name)
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Parse reads a formula in the String syntax, e.g.
//
//	forall u0 exists e1 forall u1 : (u0 | ~e1) & (e1 | u1)
//
// An empty clause section or the keyword "true" denotes the empty matrix.
func Parse(src string) (*QBF, error) {
	parts := strings.SplitN(src, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("tqbf: missing ':' separating prefix and matrix")
	}
	q := &QBF{}
	idx := map[string]int{}
	fields := strings.Fields(parts[0])
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("tqbf: malformed prefix %q", parts[0])
	}
	for i := 0; i < len(fields); i += 2 {
		var exists bool
		switch fields[i] {
		case "forall":
			exists = false
		case "exists":
			exists = true
		default:
			return nil, fmt.Errorf("tqbf: expected quantifier, found %q", fields[i])
		}
		name := fields[i+1]
		if _, dup := idx[name]; dup {
			return nil, fmt.Errorf("tqbf: duplicate variable %q", name)
		}
		idx[name] = len(q.Vars)
		q.Vars = append(q.Vars, QVar{Name: name, Exists: exists})
	}
	matrix := strings.TrimSpace(parts[1])
	if matrix == "" || matrix == "true" {
		return q, nil
	}
	for _, clStr := range strings.Split(matrix, "&") {
		clStr = strings.TrimSpace(clStr)
		clStr = strings.TrimPrefix(clStr, "(")
		clStr = strings.TrimSuffix(clStr, ")")
		var cl Clause
		for _, litStr := range strings.Split(clStr, "|") {
			litStr = strings.TrimSpace(litStr)
			neg := false
			if strings.HasPrefix(litStr, "~") || strings.HasPrefix(litStr, "!") {
				neg = true
				litStr = strings.TrimSpace(litStr[1:])
			}
			v, ok := idx[litStr]
			if !ok {
				return nil, fmt.Errorf("tqbf: unquantified variable %q", litStr)
			}
			cl = append(cl, Lit{Var: v, Neg: neg})
		}
		if len(cl) == 0 {
			return nil, fmt.Errorf("tqbf: empty clause")
		}
		q.Matrix = append(q.Matrix, cl)
	}
	return q, nil
}

// Normalize rewrites the formula into the paper's shape
//
//	∀u0 ∃e1 ∀u1 … ∃en ∀un Φ
//
// (strictly alternating, starting and ending with ∀) by inserting fresh
// dummy variables that do not occur in the matrix. The result is
// equivalent to the original.
func (q *QBF) Normalize() *QBF {
	out := &QBF{}
	remap := make([]int, len(q.Vars))
	fresh := 0
	pad := func(exists bool) {
		out.Vars = append(out.Vars, QVar{
			Name:   fmt.Sprintf("pad%d", fresh),
			Exists: exists,
		})
		fresh++
	}
	wantExists := false // paper shape starts with ∀
	for i, v := range q.Vars {
		for v.Exists != wantExists {
			pad(wantExists)
			wantExists = !wantExists
		}
		remap[i] = len(out.Vars)
		out.Vars = append(out.Vars, v)
		wantExists = !wantExists
	}
	// Must end with a universal.
	if len(out.Vars) == 0 || out.Vars[len(out.Vars)-1].Exists {
		pad(false)
	}
	for _, cl := range q.Matrix {
		ncl := make(Clause, len(cl))
		for i, l := range cl {
			ncl[i] = Lit{Var: remap[l.Var], Neg: l.Neg}
		}
		out.Matrix = append(out.Matrix, ncl)
	}
	return out
}

// IsPaperShape reports whether the prefix is ∀(∃∀)* — the Figure 6
// reduction's input shape.
func (q *QBF) IsPaperShape() bool {
	if len(q.Vars) == 0 || len(q.Vars)%2 == 0 {
		return false
	}
	for i, v := range q.Vars {
		if v.Exists != (i%2 == 1) {
			return false
		}
	}
	return true
}

// Random generates a random paper-shape QBF with n existential levels
// (2n+1 variables) and the given number of CNF clauses of width ≤ 3.
func Random(r *rand.Rand, n, clauses int) *QBF {
	q := &QBF{}
	for i := 0; i <= 2*n; i++ {
		if i%2 == 1 {
			q.Vars = append(q.Vars, QVar{Name: fmt.Sprintf("e%d", (i+1)/2), Exists: true})
		} else {
			q.Vars = append(q.Vars, QVar{Name: fmt.Sprintf("u%d", i/2), Exists: false})
		}
	}
	for c := 0; c < clauses; c++ {
		width := 1 + r.Intn(3)
		var cl Clause
		for l := 0; l < width; l++ {
			cl = append(cl, Lit{Var: r.Intn(len(q.Vars)), Neg: r.Intn(2) == 1})
		}
		q.Matrix = append(q.Matrix, cl)
	}
	return q
}
