package tqbf

import (
	"fmt"

	"paramra/internal/lang"
)

// Reduce implements the Figure 6 construction: given a paper-shape QBF
//
//	Ψ = ∀u0 ∃e1 ∀u1 … ∃en ∀un Φ,
//
// it builds a parameterized PureRA system (env threads only) that is unsafe
// iff Ψ is true.
//
// Encoding of assignments in views (§5): for each variable b of Ψ there are
// shared variables t_b and f_b, and a view vw encodes
//
//	b = 1  ⟺  vw(t_b) = 0      b = 0  ⟺  vw(f_b) = 0,
//
// i.e. the truth of b is "the init message of t_b is still readable". The
// env program non-deterministically plays one of the roles:
//
//	c_AG      guesses an assignment: pick(b) bumps t_b or f_b by storing 1
//	          (Figure 6 writes the store as `t_u := 0`; PureRA stores write
//	          the value 1 — only the timestamp bump matters), then
//	          publishes s := 1, whose message carries the assignment view.
//	c_SATC    reads s = 1 (adopting the assignment), checks Φ by reading
//	          init messages, and certifies the innermost universal's value
//	          by storing a_{n,1} or a_{n,0}.
//	c_FE[i]   merges a level-(i+1) pair of certificates a_{i+1,0}, a_{i+1,1}
//	          (their join must still determine e_{i+1}, enforcing that the
//	          existential choice did not depend on the universal u_{i+1}),
//	          then re-certifies u_i at level i.
//	c_assert  reads both level-0 certificates and fails.
//
// The check `assume(x = 0)` is a load of x followed by an assume against 0:
// it succeeds iff the thread can still read x's initial message.
func Reduce(q *QBF) (*lang.System, error) {
	if !q.IsPaperShape() {
		return nil, fmt.Errorf("tqbf: formula prefix is not of shape ∀(∃∀)*; call Normalize first")
	}
	n := len(q.Vars) / 2 // number of existential levels

	sb := lang.NewSystemBuilder("tqbf", 2)
	// Shared variables.
	tVar := make([]lang.VarID, len(q.Vars))
	fVar := make([]lang.VarID, len(q.Vars))
	for i, v := range q.Vars {
		tVar[i] = sb.Var("t_" + v.Name)
		fVar[i] = sb.Var("f_" + v.Name)
	}
	s := sb.Var("s")
	// Certificates a_{i,0}, a_{i,1} for levels 0..n.
	a := make([][2]lang.VarID, n+1)
	for i := 0; i <= n; i++ {
		a[i][0] = sb.Var(fmt.Sprintf("a_%d_0", i))
		a[i][1] = sb.Var(fmt.Sprintf("a_%d_1", i))
	}

	pb := lang.NewProgramBuilder("cenv")
	r := pb.Reg("r")

	// assumeZero: r = load x; assume r == 0 — readable iff vw(x) = 0.
	assumeZero := func(x lang.VarID) lang.Stmt {
		return lang.SeqOf(
			lang.Load{Reg: r, Var: x},
			lang.Assume{Cond: lang.Eq(lang.Reg(r), lang.Num(0))},
		)
	}
	// assumeOne: r = load x; assume r == 1 — the store on x happened-before.
	assumeOne := func(x lang.VarID) lang.Stmt {
		return lang.SeqOf(
			lang.Load{Reg: r, Var: x},
			lang.Assume{Cond: lang.Eq(lang.Reg(r), lang.Num(1))},
		)
	}
	store1 := func(x lang.VarID) lang.Stmt { return lang.Store{Var: x, E: lang.Num(1)} }

	// pick(b): guess b's value by bumping the opposite witness variable.
	pick := func(b int) lang.Stmt {
		return lang.ChoiceOf(
			store1(tVar[b]), // b := 0 (t_b's init becomes stale)
			store1(fVar[b]), // b := 1
		)
	}

	// c_AG.
	var ag []lang.Stmt
	for b := range q.Vars {
		ag = append(ag, pick(b))
	}
	ag = append(ag, store1(s))
	cAG := lang.SeqOf(ag...)

	// check(Φ): for each clause, choose a literal and certify it.
	checkLit := func(l Lit) lang.Stmt {
		if l.Neg {
			return assumeZero(fVar[l.Var]) // b = 0
		}
		return assumeZero(tVar[l.Var]) // b = 1
	}
	var checks []lang.Stmt
	for _, cl := range q.Matrix {
		branches := make([]lang.Stmt, len(cl))
		for i, l := range cl {
			branches[i] = checkLit(l)
		}
		checks = append(checks, lang.ChoiceOf(branches...))
	}

	// certify(level, varIdx): re-assert the universal's value and publish.
	certify := func(level, varIdx int) lang.Stmt {
		return lang.ChoiceOf(
			lang.SeqOf(assumeZero(tVar[varIdx]), store1(a[level][1])),
			lang.SeqOf(assumeZero(fVar[varIdx]), store1(a[level][0])),
		)
	}

	// c_SATC.
	un := 2 * n // index of the innermost universal u_n
	cSATC := lang.SeqOf(
		assumeOne(s),
		lang.SeqOf(checks...),
		certify(n, un),
	)

	// c_FE[i] for 0 ≤ i ≤ n-1.
	var fes []lang.Stmt
	for i := 0; i < n; i++ {
		ei1 := 2*i + 1 // index of e_{i+1}
		ui := 2 * i    // index of u_i
		fes = append(fes, lang.SeqOf(
			assumeOne(a[i+1][0]),
			assumeOne(a[i+1][1]),
			lang.ChoiceOf(assumeZero(fVar[ei1]), assumeZero(tVar[ei1])),
			certify(i, ui),
		))
	}

	// c_assert.
	cAssert := lang.SeqOf(
		assumeOne(a[0][0]),
		assumeOne(a[0][1]),
		lang.AssertFail{},
	)

	branches := []lang.Stmt{cAG, cSATC}
	branches = append(branches, fes...)
	branches = append(branches, cAssert)
	env := pb.Build(lang.ChoiceOf(branches...))

	sys := sb.Env(env).Build()
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("tqbf: generated system invalid: %w", err)
	}
	return sys, nil
}
