package tqbf

import (
	"math/rand"
	"testing"

	"paramra/internal/lang"
	"paramra/internal/simplified"
)

// reductionUnsafe runs the parameterized verifier on Reduce(q).
func reductionUnsafe(t *testing.T, q *QBF) bool {
	t.Helper()
	sys, err := Reduce(q)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	v, err := simplified.New(sys, simplified.Options{})
	if err != nil {
		t.Fatalf("verifier: %v", err)
	}
	res := v.Verify()
	if !res.Unsafe && !res.Complete {
		t.Fatalf("verification incomplete")
	}
	return res.Unsafe
}

// TestTheorem51Fixed checks agreement on hand-picked formulas covering the
// quantifier-dependency corner cases.
func TestTheorem51Fixed(t *testing.T) {
	cases := []string{
		"forall u : u",        // false
		"forall u : (u | ~u)", // true
		"forall u : true",     // true
		"forall u0 exists e1 forall u1 : (~u0 | e1) & (u0 | ~e1)", // true: e1 := u0
		"forall u0 exists e1 forall u1 : (e1 | u1) & (~e1 | ~u1)", // false: e1 would need u1
		"forall u0 exists e1 forall u1 : (e1 | u0 | u1)",          // true: e1 := 1
		"forall u0 exists e1 forall u1 : (e1) & (~e1 | ~u1 | u1)", // true
		"forall u0 exists e1 forall u1 : (e1 & ~e1)",              // false (two clauses)
	}
	for _, src := range cases {
		q := mustParse(t, src).Normalize()
		want := q.Eval()
		got := reductionUnsafe(t, q)
		if got != want {
			t.Errorf("Theorem 5.1 mismatch for %q: QBF=%v, verifier=%v", src, want, got)
		}
	}
}

// TestTheorem51Random fuzzes the reduction against the brute-force
// evaluator on random paper-shape formulas.
func TestTheorem51Random(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping reduction fuzzing in -short mode")
	}
	r := rand.New(rand.NewSource(51))
	for i := 0; i < 25; i++ {
		q := Random(r, 1, 1+r.Intn(3))
		want := q.Eval()
		got := reductionUnsafe(t, q)
		if got != want {
			t.Fatalf("case %d: %s\nQBF=%v, verifier=%v", i, q, want, got)
		}
	}
}

// TestReductionIsPureRAEnvOnly checks the Theorem 5.1 claim that the
// reduction lands in the simplest fragment: env(nocas, acyc) and PureRA.
func TestReductionIsPureRAEnvOnly(t *testing.T) {
	q := mustParse(t, "forall u0 exists e1 forall u1 : (u0 | e1)").Normalize()
	sys, err := Reduce(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Dis) != 0 {
		t.Error("reduction must not use dis threads")
	}
	c := lang.Classify(sys)
	if !c.HasEnv || !c.Env.NoCAS || !c.Env.Acyclic {
		t.Errorf("reduction not in env(nocas, acyc): %s", c)
	}
	if !lang.PureRA(sys) {
		t.Error("reduction not in PureRA (stores must write 1 to 0-initialized memory)")
	}
}

func TestReduceRejectsWrongShape(t *testing.T) {
	if _, err := Reduce(mustParse(t, "exists e : e")); err == nil {
		t.Error("non-paper-shape formula accepted")
	}
}
