package bench

import (
	"fmt"
	"strings"

	"paramra/internal/ra"
)

// GapRow records, for one unsafe benchmark, how the parameterized verdict
// relates to fixed-size instances: §4.3 opens by noting that for systems
// with a fixed number of components, parameterization is *sound but not
// complete* — a parameterized UNSAFE may require more threads than a given
// deployment has. The row shows the instance-size threshold at which the
// fixed-size system "catches up" with the parameterized verdict.
type GapRow struct {
	Name string
	// ParamUnsafe is the parameterized verdict (always true for rows here).
	ParamUnsafe bool
	// Verdicts[i] is the fixed-instance verdict with i env threads.
	Verdicts []bool
	// Threshold is the least i with Verdicts[i] true (-1 if none ≤ maxN).
	Threshold int
}

// GapExperiment sweeps instance sizes for the unsafe corpus entries that
// need env threads.
func GapExperiment(maxN, maxStates int) ([]GapRow, error) {
	var out []GapRow
	for _, e := range Corpus() {
		if e.Want != Unsafe || e.MinEnv <= 0 {
			continue
		}
		sys := e.System()
		row := GapRow{Name: e.Name, ParamUnsafe: true, Threshold: -1}
		for n := 0; n <= maxN; n++ {
			inst, err := ra.NewInstance(sys, n)
			if err != nil {
				return nil, err
			}
			res := inst.Explore(ra.Limits{MaxStates: maxStates, Symmetry: true})
			if !res.Unsafe && !res.Complete {
				return nil, fmt.Errorf("%s: instance n=%d not exhausted", e.Name, n)
			}
			row.Verdicts = append(row.Verdicts, res.Unsafe)
			if res.Unsafe && row.Threshold < 0 {
				row.Threshold = n
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// GapTable formats the experiment.
func GapTable(rows []GapRow) *Table {
	t := &Table{
		Title:   "§4.3: parameterization vs fixed-size systems (sound, not complete)",
		Columns: []string{"benchmark", "parameterized", "fixed-size verdicts (n=0,1,…)", "threshold"},
	}
	for _, r := range rows {
		var vs []string
		for _, v := range r.Verdicts {
			if v {
				vs = append(vs, "U")
			} else {
				vs = append(vs, "s")
			}
		}
		t.AddRow(r.Name, "UNSAFE", strings.Join(vs, " "), r.Threshold)
	}
	t.Notes = append(t.Notes,
		"s = safe, U = unsafe; deployments below the threshold are safe although the parameterized system is not",
		"the §4.3 cost bound over-approximates this threshold (see the threads experiment)")
	return t
}
