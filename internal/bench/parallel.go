package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"paramra/internal/simplified"
)

// ParallelRow is one (benchmark, worker count) measurement of the layered
// parallel engine.
type ParallelRow struct {
	Name        string        `json:"name"`
	Workers     int           `json:"workers"`
	MacroStates int           `json:"macroStates"`
	Wall        time.Duration `json:"wallNs"`
	// Speedup is wall(j=1) / wall(j) for the same benchmark.
	Speedup float64 `json:"speedup"`
}

// parallelEntries selects the corpus entries worth timing: the searches
// large enough that engine overhead is not the whole measurement.
func parallelEntries() []Entry {
	var out []Entry
	for _, e := range Corpus() {
		v, err := simplified.New(e.System(), simplified.Options{})
		if err != nil {
			continue
		}
		if res := v.Verify(); res.Stats.MacroStates >= 50 {
			out = append(out, e)
		}
	}
	return out
}

// ParallelExperiment measures VerifyContext wall time per worker count over
// the heavier corpus entries. Verdicts and statistics are identical across
// worker counts by construction (see internal/engine); only the wall time
// varies. Note that on a single-CPU host (GOMAXPROCS=1) no speedup is
// possible — the experiment then measures the engine's overhead.
func ParallelExperiment(ctx context.Context, workerCounts []int) ([]ParallelRow, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	var rows []ParallelRow
	for _, e := range parallelEntries() {
		base := time.Duration(0)
		for _, j := range workerCounts {
			v, err := simplified.New(e.System(), simplified.Options{
				Workers: j,
				Trace:   instr.Trace,
				Metrics: instr.Metrics,
			})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.Name, err)
			}
			start := time.Now()
			res := v.VerifyContext(ctx)
			wall := time.Since(start)
			if res.Err != nil {
				return nil, fmt.Errorf("%s (j=%d): %w", e.Name, j, res.Err)
			}
			row := ParallelRow{
				Name: e.Name, Workers: j,
				MacroStates: res.Stats.MacroStates, Wall: wall,
			}
			if j == workerCounts[0] {
				base = wall
			}
			if wall > 0 {
				row.Speedup = float64(base) / float64(wall)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ParallelTable formats the scaling measurements.
func ParallelTable(rows []ParallelRow) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Parallel engine scaling (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		Columns: []string{"benchmark", "workers", "macro-states", "time", "speedup"},
		Notes: []string{
			"verdicts, witnesses and stats are identical for every worker count (layered engine)",
			"speedup is relative to the first worker count; expect ~1x on single-CPU hosts",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Name, r.Workers, r.MacroStates, r.Wall.Round(time.Microsecond),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	return t
}

// ParallelBaseline is the JSON shape of BENCH_parallel.json: the measured
// rows plus the recording machine's parallelism metadata. The metadata is
// not decorative — wall times recorded at GOMAXPROCS=1 are meaningless as a
// baseline for a multi-core comparison run (the engine cannot overlap
// expansions), so the comparator checks it (see CheckProcs).
type ParallelBaseline struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numCPU"`
	Rows       []ParallelRow `json:"rows"`
}

// WriteParallelBaseline runs the scaling experiment and stores the rows as
// a JSON baseline for later comparison.
func WriteParallelBaseline(ctx context.Context, path string, workerCounts []int) error {
	rows, err := ParallelExperiment(ctx, workerCounts)
	if err != nil {
		return err
	}
	b := ParallelBaseline{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Rows:       rows,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
