package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// mkRows builds matching baseline/current row pairs from (name, baseline
// wall, current wall) triples, all at j=1 with identical macro-states.
func mkRows(t *testing.T, triples [][3]any) (base, cur []ParallelRow) {
	t.Helper()
	for _, tr := range triples {
		name := tr[0].(string)
		base = append(base, ParallelRow{Name: name, Workers: 1, MacroStates: 100, Wall: tr[1].(time.Duration)})
		cur = append(cur, ParallelRow{Name: name, Workers: 1, MacroStates: 100, Wall: tr[2].(time.Duration)})
	}
	return base, cur
}

// TestCompareCalibratesMachineSpeed: a uniformly 3x-slower run is a slower
// machine, not a regression — the median calibration absorbs it.
func TestCompareCalibratesMachineSpeed(t *testing.T) {
	base, cur := mkRows(t, [][3]any{
		{"a", 100 * time.Millisecond, 300 * time.Millisecond},
		{"b", 200 * time.Millisecond, 600 * time.Millisecond},
		{"c", 400 * time.Millisecond, 1200 * time.Millisecond},
	})
	rep, err := compareRows(base, cur, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Calibration != 3.0 {
		t.Errorf("calibration = %v, want 3.0", rep.Calibration)
	}
	if len(rep.Regressions) != 0 {
		t.Errorf("regressions on a uniform slowdown: %v", rep.Regressions)
	}
	for _, r := range rep.Rows {
		if r.Verdict != "ok" {
			t.Errorf("%s: verdict %q, want ok", r.Name, r.Verdict)
		}
	}
}

// TestCompareCatchesSingleRegression: one benchmark 10x slower against an
// otherwise-unchanged run trips the gate.
func TestCompareCatchesSingleRegression(t *testing.T) {
	base, cur := mkRows(t, [][3]any{
		{"a", 100 * time.Millisecond, 100 * time.Millisecond},
		{"b", 200 * time.Millisecond, 200 * time.Millisecond},
		{"c", 400 * time.Millisecond, 4 * time.Second},
	})
	rep, err := compareRows(base, cur, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "c (j=1)") {
		t.Fatalf("regressions = %v, want exactly c", rep.Regressions)
	}
	for _, r := range rep.Rows {
		want := "ok"
		if r.Name == "c" {
			want = "slower"
		}
		if r.Verdict != want {
			t.Errorf("%s: verdict %q, want %q", r.Name, r.Verdict, want)
		}
	}
}

// TestCompareStatesDrift: deterministic macro-state mismatch fails even
// when timing is identical.
func TestCompareStatesDrift(t *testing.T) {
	base, cur := mkRows(t, [][3]any{{"a", 100 * time.Millisecond, 100 * time.Millisecond}})
	cur[0].MacroStates = 101
	rep, err := compareRows(base, cur, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || rep.Rows[0].Verdict != "states-drift" {
		t.Errorf("rows=%+v regressions=%v, want one states-drift", rep.Rows, rep.Regressions)
	}
}

// TestCompareNoisyFloor: sub-floor baselines are reported but never gated,
// however slow the re-measurement.
func TestCompareNoisyFloor(t *testing.T) {
	base, cur := mkRows(t, [][3]any{
		{"tiny", 2 * time.Millisecond, 40 * time.Millisecond},
		{"big", 500 * time.Millisecond, 500 * time.Millisecond},
	})
	rep, err := compareRows(base, cur, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Errorf("regressions = %v, want none (tiny entry is under the noise floor)", rep.Regressions)
	}
	if rep.Rows[0].Verdict != "noisy" || rep.Rows[1].Verdict != "ok" {
		t.Errorf("verdicts = %q/%q, want noisy/ok", rep.Rows[0].Verdict, rep.Rows[1].Verdict)
	}
}

// TestCompareUnmatchedBaseline: no overlapping (name, workers) pairs is an
// error, not a silent pass.
func TestCompareUnmatchedBaseline(t *testing.T) {
	base := []ParallelRow{{Name: "a", Workers: 4, MacroStates: 1, Wall: time.Second}}
	cur := []ParallelRow{{Name: "a", Workers: 1, MacroStates: 1, Wall: time.Second}}
	if _, err := compareRows(base, cur, 2.0); err == nil {
		t.Error("want error on zero matched entries")
	}
	if _, err := compareRows(base, base, 0.5); err == nil {
		t.Error("want error on tolerance <= 1")
	}
}

// TestLoadParallelBaseline round-trips the checked-in JSON shape.
func TestLoadParallelBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	b := ParallelBaseline{GoMaxProcs: 1, NumCPU: 1, Rows: []ParallelRow{
		{Name: "a", Workers: 1, MacroStates: 7, Wall: 123456},
	}}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := LoadParallelBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Wall != 123456 || rows[0].MacroStates != 7 {
		t.Errorf("rows = %+v", rows)
	}
	if err := os.WriteFile(path, []byte(`{"rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadParallelBaseline(path); err == nil {
		t.Error("want error on empty baseline")
	}
}

// TestCheckProcs: a baseline recorded at a different GOMAXPROCS (or one
// predating the metadata) must produce a warning; a matching one must not.
func TestCheckProcs(t *testing.T) {
	match := &ParallelBaseline{GoMaxProcs: 8}
	if w := CheckProcs(match, 8); w != "" {
		t.Errorf("matching procs warned: %q", w)
	}
	mismatch := &ParallelBaseline{GoMaxProcs: 1}
	if w := CheckProcs(mismatch, 8); !strings.Contains(w, "GOMAXPROCS=1") || !strings.Contains(w, "GOMAXPROCS=8") {
		t.Errorf("mismatch warning %q must name both values", w)
	}
	legacy := &ParallelBaseline{}
	if w := CheckProcs(legacy, 8); !strings.Contains(w, "no gomaxprocs") {
		t.Errorf("legacy warning = %q, want a no-metadata message", w)
	}
}

// TestParseInjectSlowdown pins the selftest flag grammar.
func TestParseInjectSlowdown(t *testing.T) {
	got, err := ParseInjectSlowdown("peterson-ra=10,seqlock=2.5")
	if err != nil {
		t.Fatal(err)
	}
	if got["peterson-ra"] != 10 || got["seqlock"] != 2.5 || len(got) != 2 {
		t.Errorf("got %v", got)
	}
	if m, err := ParseInjectSlowdown(""); err != nil || len(m) != 0 {
		t.Errorf("empty: %v %v", m, err)
	}
	for _, bad := range []string{"x", "=3", "a=-1", "a=zero"} {
		if _, err := ParseInjectSlowdown(bad); err == nil {
			t.Errorf("ParseInjectSlowdown(%q): want error", bad)
		}
	}
}
