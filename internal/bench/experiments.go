package bench

import (
	"fmt"
	"time"

	"paramra/internal/datalog"
	"paramra/internal/depgraph"
	"paramra/internal/encode"
	"paramra/internal/lang"
	"paramra/internal/ra"
	"paramra/internal/simplified"
)

// CacheRow is one data point of the Lemma 4.4 cache-size experiment (E8).
type CacheRow struct {
	Name        string
	Q0          int
	Q0Squared   int
	IDBAtoms    int
	MinCache    int
	GraphHeight int
	GraphFanIn  int
	CompactOK   bool
}

// CacheExperiment measures, for small env-only systems, the minimal Cache
// Datalog bound k with Prog ⊢_k g against the paper's O(Q₀²) sufficiency
// bound, plus the dependency-graph compactness measures of Lemma 4.5.
func CacheExperiment() ([]CacheRow, error) {
	cases := []struct {
		name string
		src  string
	}{
		{"env-store", `
system s { vars x f; domain 2; env w }
thread w { regs r; r = load x; assume r == 0; store f 1 }
`},
		{"env-two-step", `
system s { vars x y f; domain 3; env w }
thread w {
  regs r
  choice { store x 1 } or {
    r = load x; assume r == 1
    store f 1
  }
}
`},
		{"env-chain3", `
system s { vars x f; domain 4; env w }
thread w {
  regs r
  choice {
    r = load x; store x (r + 1)
  } or {
    r = load x; assume r == 2
    store f 1
  }
}
`},
	}
	var out []CacheRow
	for _, c := range cases {
		sys := lang.MustParseSystem(c.src)
		fv, ok := sys.VarByName("f")
		if !ok {
			return nil, fmt.Errorf("%s: no goal variable f", c.name)
		}

		// Datalog side: minimal cache for the goal emp/dmp atom.
		p, err := encode.EnvOnly(sys)
		if err != nil {
			return nil, err
		}
		core, edb := datalog.SplitEDB(p.Prog, p.EDBPreds)
		// Locate the goal atom in the full program (core alone lacks the
		// join tables and derives nothing).
		goal, found := findMsgAtom(p.Prog, "emp", "x:f", "d1")
		if !found {
			return nil, fmt.Errorf("%s: goal atom not derivable", c.name)
		}
		minK := datalog.MinCacheSizeEDB(core, goal, 24, edb)

		// Dependency-graph side.
		v, err := simplified.New(sys, simplified.Options{Goal: &simplified.Goal{Var: fv, Val: 1}})
		if err != nil {
			return nil, err
		}
		res := v.Verify()
		if !res.Unsafe {
			return nil, fmt.Errorf("%s: goal message not generatable", c.name)
		}
		g, err := depgraph.FromViolation(sys, res.Violation)
		if err != nil {
			return nil, err
		}
		q0 := depgraph.Q0Of(sys)
		out = append(out, CacheRow{
			Name: c.name, Q0: q0, Q0Squared: q0 * q0,
			IDBAtoms:    datalog.EvalSemiNaive(p.Prog).Size(),
			MinCache:    minK,
			GraphHeight: g.Height(), GraphFanIn: g.MaxFanIn(),
			CompactOK: g.Compacted().Compact(),
		})
	}
	return out, nil
}

// findMsgAtom locates a derivable ground atom of the named predicate whose
// first two arguments are the given constants.
func findMsgAtom(p *datalog.Program, predName, varSym, valSym string) (datalog.GroundAtom, bool) {
	db := datalog.EvalSemiNaive(p)
	for _, g := range db.All() {
		if p.Preds[g.Pred].Name != predName || len(g.Args) < 2 {
			continue
		}
		if p.Consts[g.Args[0]] == varSym && p.Consts[g.Args[1]] == valSym {
			return g, true
		}
	}
	return datalog.GroundAtom{}, false
}

// CacheTable formats E8.
func CacheTable(rows []CacheRow) *Table {
	t := &Table{
		Title:   "Lemma 4.4/4.5: cache sizes and dependency-graph compactness",
		Columns: []string{"system", "Q0", "Q0^2 bound", "derivable atoms", "min cache k", "dep height", "dep fan-in", "compacted ok"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, r.Q0, r.Q0Squared, r.IDBAtoms, r.MinCache, r.GraphHeight, r.GraphFanIn, r.CompactOK)
	}
	t.Notes = append(t.Notes, "min cache k is computed by exhaustive Cache-Datalog search (EDB join tables are cache-exempt)")
	return t
}

// ThreadRow is one data point of the §4.3 experiment (E9).
type ThreadRow struct {
	Name      string
	CostBound int64
	ActualMin int
}

// ThreadBoundExperiment compares the §4.3 cost bound with the actual
// minimal number of env threads found by concrete exploration, for the
// unsafe corpus entries that need env threads.
func ThreadBoundExperiment(maxN int) ([]ThreadRow, error) {
	var out []ThreadRow
	for _, e := range Corpus() {
		if e.Want != Unsafe || e.MinEnv <= 0 {
			continue
		}
		sys := e.System()
		v, err := simplified.New(sys, simplified.Options{})
		if err != nil {
			return nil, err
		}
		res := v.Verify()
		if !res.Unsafe {
			return nil, fmt.Errorf("%s: expected unsafe", e.Name)
		}
		g, err := depgraph.FromViolation(sys, res.Violation)
		if err != nil {
			return nil, err
		}
		actual, err := MinEnvConcrete(sys, maxN, 2_000_000)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		out = append(out, ThreadRow{Name: e.Name, CostBound: g.CostGoal(), ActualMin: actual})
	}
	return out, nil
}

// ThreadTable formats E9.
func ThreadTable(rows []ThreadRow) *Table {
	t := &Table{
		Title:   "§4.3: env-thread count — cost bound vs actual minimum",
		Columns: []string{"benchmark", "cost(G) bound", "actual min #env"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, r.CostBound, r.ActualMin)
	}
	t.Notes = append(t.Notes, "cost(G) over-approximates (the paper notes l env threads may suffice where cost says z)")
	return t
}

// AblationRow compares engines on one system (A1/A2).
type AblationRow struct {
	Name            string
	FixpointVerdict bool
	FixpointTime    time.Duration
	DatalogVerdict  bool
	DatalogTime     time.Duration
	Skeletons       int
	ConcreteTimeN2  time.Duration
	ConcreteStates  int
}

// Ablations runs the engine comparison: integrated fixpoint verifier vs the
// makeP→Datalog pipeline (A2), and vs concrete exploration with 2 env
// threads (A1, the "no timestamp abstraction" baseline).
func Ablations() ([]AblationRow, error) {
	names := []string{"prodcons-fig1", "mp-litmus", "rcu", "phoenix-histogram", "env-chain-escalation"}
	var out []AblationRow
	for _, name := range names {
		e, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("missing corpus entry %s", name)
		}
		sys := e.System()

		v, err := simplified.New(sys, simplified.Options{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res := v.Verify()
		row := AblationRow{Name: name, FixpointVerdict: res.Unsafe, FixpointTime: time.Since(start)}

		start = time.Now()
		ps, _, err := encode.All(sys, 20_000)
		if err != nil {
			return nil, err
		}
		row.DatalogVerdict = encode.Unsafe(ps)
		row.DatalogTime = time.Since(start)
		row.Skeletons = len(ps)

		inst, err := ra.NewInstance(sys, 2)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		cres := inst.Explore(ra.Limits{MaxStates: 500_000})
		row.ConcreteTimeN2 = time.Since(start)
		row.ConcreteStates = cres.States
		out = append(out, row)
	}
	return out, nil
}

// AblationTable formats A1/A2.
func AblationTable(rows []AblationRow) *Table {
	t := &Table{
		Title:   "Ablations: fixpoint verifier vs Datalog pipeline vs concrete exploration (N=2)",
		Columns: []string{"benchmark", "fixpoint", "t_fix", "datalog", "t_datalog", "skeletons", "t_concrete(N=2)", "concrete states"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, verdictStr(r.FixpointVerdict), r.FixpointTime.Round(time.Microsecond),
			verdictStr(r.DatalogVerdict), r.DatalogTime.Round(time.Microsecond), r.Skeletons,
			r.ConcreteTimeN2.Round(time.Microsecond), r.ConcreteStates)
	}
	t.Notes = append(t.Notes, "concrete exploration decides one instance only; the parameterized engines decide all instances at once")
	return t
}

func verdictStr(unsafe bool) string {
	if unsafe {
		return "UNSAFE"
	}
	return "SAFE"
}
