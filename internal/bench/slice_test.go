package bench

import (
	"testing"

	"paramra/internal/analysis"
	"paramra/internal/ra"
)

// TestSliceExperimentPreservesVerdicts re-verifies every sliced corpus entry
// with the parameterized verifier; SliceExperiment errors out on any verdict
// flip. It also checks the table reports at least one shrinking family.
func TestSliceExperimentPreservesVerdicts(t *testing.T) {
	rows, err := SliceExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Corpus()) {
		t.Fatalf("experiment covered %d/%d entries", len(rows), len(Corpus()))
	}
	reduced := 0
	for _, r := range rows {
		if r.Stats.Changed() {
			reduced++
		}
	}
	if reduced == 0 {
		t.Error("no corpus entry shrinks; the slicing experiment reports nothing")
	}
}

// TestSliceDifferentialConcrete explores small concrete instances (the full
// RA semantics of internal/ra) of every corpus entry, original vs sliced,
// and requires identical safety verdicts whenever both explorations finish.
func TestSliceDifferentialConcrete(t *testing.T) {
	const maxStates = 400_000
	for _, e := range Corpus() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			sys := e.System()
			sliced, _ := analysis.Slice(sys, analysis.SliceOptions{})
			n := e.MinEnv
			if n < 1 {
				n = 1
			}
			orig, err := ra.NewInstance(sys, n)
			if err != nil {
				t.Fatal(err)
			}
			cut, err := ra.NewInstance(sliced, n)
			if err != nil {
				t.Fatal(err)
			}
			resO := orig.Explore(ra.Limits{MaxStates: maxStates, Symmetry: true})
			resS := cut.Explore(ra.Limits{MaxStates: maxStates, Symmetry: true})
			if !resO.Complete && !resO.Unsafe || !resS.Complete && !resS.Unsafe {
				t.Skipf("state cap hit (orig complete=%v sliced complete=%v)", resO.Complete, resS.Complete)
			}
			if resO.Unsafe != resS.Unsafe {
				t.Errorf("verdict flipped on the concrete instance (n=%d): original unsafe=%v, sliced unsafe=%v",
					n, resO.Unsafe, resS.Unsafe)
			}
		})
	}
}
