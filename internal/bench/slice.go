package bench

import (
	"fmt"

	"paramra/internal/analysis"
	"paramra/internal/simplified"
)

// SliceRow is the per-entry result of the slicing experiment: the size of
// the instance before and after the verdict-preserving slicer, and the
// verdict of the sliced system (which must match the original's).
type SliceRow struct {
	Entry   Entry
	Stats   analysis.SliceStats
	Verdict Verdict
}

// SliceExperiment runs the slicer over the whole corpus and re-verifies the
// sliced systems, reporting the instance-size reduction per benchmark.
func SliceExperiment() ([]SliceRow, error) {
	var out []SliceRow
	for _, e := range Corpus() {
		sliced, stats := analysis.Slice(e.System(), analysis.SliceOptions{})
		v, err := simplified.New(sliced, simplified.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s (sliced): %w", e.Name, err)
		}
		res := v.Verify()
		row := SliceRow{Entry: e, Stats: stats, Verdict: Safe}
		if res.Unsafe {
			row.Verdict = Unsafe
		}
		if row.Verdict != e.Want {
			return nil, fmt.Errorf("%s: slicing changed the verdict to %v (want %v)", e.Name, row.Verdict, e.Want)
		}
		out = append(out, row)
	}
	return out, nil
}

// SliceTable formats the slicing experiment.
func SliceTable(rows []SliceRow) *Table {
	t := &Table{
		Title:   "Verdict-preserving slicing (instance-size reduction per benchmark)",
		Columns: []string{"benchmark", "pcs", "regs", "vars", "verdict", "reduced"},
	}
	reduced := 0
	for _, r := range rows {
		s := r.Stats
		t.AddRow(r.Entry.Name,
			fmt.Sprintf("%d->%d", s.PCsBefore, s.PCsAfter),
			fmt.Sprintf("%d->%d", s.RegsBefore, s.RegsAfter),
			fmt.Sprintf("%d->%d", s.VarsBefore, s.VarsAfter),
			r.Verdict, yesNo(s.Changed()))
		if s.Changed() {
			reduced++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d/%d benchmarks shrink; every sliced system keeps its verdict", reduced, len(rows)))
	return t
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
