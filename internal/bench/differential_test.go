package bench

import (
	"context"
	"testing"

	"paramra/internal/simplified"
)

// TestParallelMatchesSequentialCorpus is the determinism contract of the
// layered parallel engine: for every corpus entry and every worker count,
// VerifyContext must agree with the sequential Verify on the verdict,
// completeness, every statistic, and the violation's read logs (the inputs
// of the §4.3 env-thread bound).
func TestParallelMatchesSequentialCorpus(t *testing.T) {
	for _, e := range Corpus() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			seqV, err := simplified.New(e.System(), simplified.Options{})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			seq := seqV.Verify()

			for _, workers := range []int{1, 2, 8} {
				parV, err := simplified.New(e.System(), simplified.Options{Workers: workers})
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				par := parV.VerifyContext(context.Background())

				if par.Unsafe != seq.Unsafe || par.Complete != seq.Complete {
					t.Fatalf("j=%d: verdict (%v,%v) vs sequential (%v,%v)",
						workers, par.Unsafe, par.Complete, seq.Unsafe, seq.Complete)
				}
				if par.Stats != seq.Stats {
					t.Errorf("j=%d: stats %+v vs sequential %+v", workers, par.Stats, seq.Stats)
				}
				if (par.Violation == nil) != (seq.Violation == nil) {
					t.Fatalf("j=%d: violation presence differs", workers)
				}
				if par.Violation != nil {
					pv, sv := par.Violation, seq.Violation
					if pv.ByEnv != sv.ByEnv || pv.DisIndex != sv.DisIndex {
						t.Errorf("j=%d: violation source (%v,%d) vs (%v,%d)",
							workers, pv.ByEnv, pv.DisIndex, sv.ByEnv, sv.DisIndex)
					}
					if got, want := logKeys(pv.Log), logKeys(sv.Log); !equalStrings(got, want) {
						t.Errorf("j=%d: violating read log %v vs %v", workers, got, want)
					}
					for i := range sv.DisLogs {
						if got, want := logKeys(pv.DisLogs[i]), logKeys(sv.DisLogs[i]); !equalStrings(got, want) {
							t.Errorf("j=%d: dis %d read log %v vs %v", workers, i, got, want)
						}
					}
					if len(pv.DisMsgLogs) != len(sv.DisMsgLogs) {
						t.Errorf("j=%d: provenance map size %d vs %d",
							workers, len(pv.DisMsgLogs), len(sv.DisMsgLogs))
					}
					for k, sg := range sv.DisMsgLogs {
						pg, ok := pv.DisMsgLogs[k]
						if !ok {
							t.Errorf("j=%d: provenance missing key %q", workers, k)
							continue
						}
						if pg.DisIndex != sg.DisIndex || !equalStrings(logKeys(pg.Log), logKeys(sg.Log)) {
							t.Errorf("j=%d: provenance of %q differs", workers, k)
						}
					}
				}
			}
		})
	}
}

func logKeys(l *simplified.ReadLog) []string {
	if l == nil {
		return nil
	}
	return l.Keys()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
