package bench

import (
	"context"
	"testing"

	"paramra/internal/absint"
)

// TestPrepassAgreementOnCorpus checks the static prepass against the
// fixpoint verifier on every corpus entry: in the Theorem 3.4 verdict
// lattice a decisive prepass answer (SAFE proof or replayed UNSAFE
// witness) must never contradict the search, while Inconclusive is always
// allowed. The fast path must also decide a useful fraction of the corpus
// — the rate the EXPERIMENTS.md prepass entry reports.
func TestPrepassAgreementOnCorpus(t *testing.T) {
	entries := Corpus()
	decided := 0
	for _, e := range entries {
		out, err := absint.Prepass(context.Background(), e.System(), absint.Options{})
		if err != nil {
			t.Fatalf("%s: prepass: %v", e.Name, err)
		}
		rep, err := RunEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		switch out.Verdict {
		case absint.Safe:
			decided++
			if rep.Verdict != Safe {
				t.Errorf("%s: prepass SAFE contradicts fixpoint %v (reason: %s)",
					e.Name, rep.Verdict, out.Reason)
			}
		case absint.Unsafe:
			decided++
			if rep.Verdict != Unsafe {
				t.Errorf("%s: prepass UNSAFE contradicts fixpoint %v (reason: %s)",
					e.Name, rep.Verdict, out.Reason)
			}
		default:
			t.Logf("%s: inconclusive (%s)", e.Name, out.Reason)
		}
	}
	rate := float64(decided) / float64(len(entries))
	t.Logf("prepass decided %d/%d corpus entries (%.0f%%)", decided, len(entries), 100*rate)
	if rate < 0.25 {
		t.Errorf("prepass decision rate %.0f%% below the 25%% floor", 100*rate)
	}
}

// BenchmarkPrepassCorpus times the static prepass over the whole corpus;
// compared against BenchmarkFixpointCorpus it yields the speedup quoted in
// the EXPERIMENTS.md prepass entry (E18).
func BenchmarkPrepassCorpus(b *testing.B) {
	entries := Corpus()
	for i := 0; i < b.N; i++ {
		for _, e := range entries {
			if _, err := absint.Prepass(context.Background(), e.System(), absint.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFixpointCorpus is the full fixpoint verifier over the same
// corpus, the E18 baseline.
func BenchmarkFixpointCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunCorpus(); err != nil {
			b.Fatal(err)
		}
	}
}
