package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"paramra"
	"paramra/internal/cache"
)

// VerdictCacheRow is one corpus entry's trip through the content-addressed
// verdict cache (E20): a cold populating run, a warm identical resubmission,
// and a warm renamed clone, all against one shared cache.
type VerdictCacheRow struct {
	Name    string
	Verdict Verdict
	Stored  bool // cold verdict was storable (complete, error-free)
	Hit     bool // warm resubmission hit
	RenHit  bool // renamed clone hit
	Cold    time.Duration
	Warm    time.Duration
	Renamed time.Duration
}

// Speedup is the cold/warm wall-clock ratio (0 when the warm run did not
// finish measurably fast — sub-resolution warm times are clamped).
func (r VerdictCacheRow) Speedup() float64 {
	w := r.Warm
	if w < time.Microsecond {
		w = time.Microsecond
	}
	return float64(r.Cold) / float64(w)
}

// VerdictCacheExperiment measures the verdict cache on the corpus with the
// raserved default options (prepass on, unroll 2): per entry, a cold run
// populates a shared cache, then the identical system and a seeded renamed
// clone are resubmitted. Rows come back sorted by cold time, slowest first,
// so the headline speedups lead the table.
func VerdictCacheExperiment(ctx context.Context) ([]VerdictCacheRow, error) {
	c := paramra.NewCache(paramra.CacheOptions{})
	opts := paramra.Options{
		Prepass:     true,
		UnrollDis:   2,
		Parallelism: 1,
		Cache:       c,
		Metrics:     instr.Metrics,
	}
	var out []VerdictCacheRow
	for _, e := range Corpus() {
		sys := e.System()
		start := time.Now()
		cold, err := paramra.Verify(ctx, sys, opts)
		coldT := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%s: cold verify: %w", e.Name, err)
		}
		row := VerdictCacheRow{
			Name:    e.Name,
			Verdict: Safe,
			Stored:  cold.Complete,
			Cold:    coldT,
		}
		if cold.Unsafe {
			row.Verdict = Unsafe
		}

		start = time.Now()
		warm, err := paramra.Verify(ctx, sys, opts)
		row.Warm = time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%s: warm verify: %w", e.Name, err)
		}
		row.Hit = warm.CacheHit

		start = time.Now()
		ren, err := paramra.Verify(ctx, cache.Rename(sys, 1), opts)
		row.Renamed = time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%s: renamed verify: %w", e.Name, err)
		}
		row.RenHit = ren.CacheHit
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cold > out[j].Cold })
	return out, nil
}

// VerdictCacheTable formats E20.
func VerdictCacheTable(rows []VerdictCacheRow) *Table {
	t := &Table{
		Title:   "Verdict cache: cold vs warm vs renamed-clone (shared cache, raserved defaults)",
		Columns: []string{"benchmark", "verdict", "stored", "hit", "renamed hit", "cold", "warm", "renamed", "speedup"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, r.Verdict, r.Stored, r.Hit, r.RenHit,
			r.Cold.Round(time.Microsecond), r.Warm.Round(time.Microsecond),
			r.Renamed.Round(time.Microsecond), fmt.Sprintf("%.1fx", r.Speedup()))
	}
	return t
}
