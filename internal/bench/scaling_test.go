package bench

import (
	"strings"
	"testing"
)

func TestScalingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweeps skipped in -short mode")
	}
	rows, err := ScalingExperiment()
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]ScalingRow{}
	for _, r := range rows {
		if !r.Unsafe {
			t.Errorf("%s(%d): expected unsafe", r.Family, r.Param)
		}
		series[r.Family] = append(series[r.Family], r)
	}
	// Domain family: env configs grow linearly (2+2·d shape) — check
	// strictly monotone and sub-quadratic.
	dom := series["domain"]
	if len(dom) < 3 {
		t.Fatal("domain series too short")
	}
	for i := 1; i < len(dom); i++ {
		if dom[i].EnvCfgs <= dom[i-1].EnvCfgs {
			t.Errorf("domain env-cfgs not growing: %v", dom)
		}
	}
	first, last := dom[0], dom[len(dom)-1]
	ratioParam := float64(last.Param) / float64(first.Param)
	ratioCfgs := float64(last.EnvCfgs) / float64(first.EnvCfgs)
	if ratioCfgs > 2*ratioParam {
		t.Errorf("domain growth super-linear: params ×%.1f but cfgs ×%.1f", ratioParam, ratioCfgs)
	}
	// TQBF family: growth must be visible (hardness).
	tq := series["tqbf-depth"]
	if tq[len(tq)-1].EnvCfgs <= tq[0].EnvCfgs {
		t.Errorf("tqbf series not growing: %v", tq)
	}
	// Dis-count family: macro states grow with interleavings.
	dc := series["dis-count"]
	for i := 1; i < len(dc); i++ {
		if dc[i].Macro <= dc[i-1].Macro {
			t.Errorf("dis-count macro states not growing: %v", dc)
		}
	}
	if s := ScalingTable(rows).String(); !strings.Contains(s, "tqbf-depth") {
		t.Error("scaling table broken")
	}
}
