package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"paramra/internal/obs"
)

// RunReport merges one or more JSONL phase-span traces (-trace-out files, or
// a raserved -trace-dir) and an optional metrics snapshot (-metrics-out)
// into a single machine-readable structure. `rabench report` prints it as
// JSON.
type RunReport struct {
	TraceFile string `json:"traceFile,omitempty"`
	// TraceFiles lists the inputs when more than one trace was merged.
	TraceFiles  []string `json:"traceFiles,omitempty"`
	MetricsFile string   `json:"metricsFile,omitempty"`
	// Spans is the total number of spans across all traces.
	Spans int `json:"spans,omitempty"`
	// WallNs is the summed duration of every trace's root span(s): the span
	// of one whole tool run, or of one request in a server trace.
	WallNs int64 `json:"wallNs,omitempty"`
	// Phases aggregates the spans by name, in order of first appearance
	// across the inputs.
	Phases []PhaseSummary `json:"phases,omitempty"`
	// Metrics is the decoded metrics snapshot (counters, gauges, histogram
	// summaries), keyed by metric name.
	Metrics map[string]any `json:"metrics,omitempty"`
}

// PhaseSummary aggregates all spans sharing one name, across every input
// trace. The percentiles use the nearest-rank method, so each is an actual
// observed span duration.
type PhaseSummary struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"totalNs"`
	MinNs   int64  `json:"minNs"`
	MaxNs   int64  `json:"maxNs"`
	P50Ns   int64  `json:"p50Ns"`
	P95Ns   int64  `json:"p95Ns"`
	P99Ns   int64  `json:"p99Ns"`
}

// BuildRunReport reads one trace and/or metrics file (either may be empty)
// and merges them. The trace is schema-validated while parsing.
func BuildRunReport(tracePath, metricsPath string) (*RunReport, error) {
	var traces []string
	if tracePath != "" {
		traces = []string{tracePath}
	}
	return BuildMergedRunReport(traces, metricsPath)
}

// BuildMergedRunReport merges any number of traces (and an optional metrics
// snapshot) into one report. Spans sharing a name are aggregated across all
// inputs, which is how a directory of per-request server traces becomes
// per-phase latency percentiles.
func BuildMergedRunReport(tracePaths []string, metricsPath string) (*RunReport, error) {
	rep := &RunReport{MetricsFile: metricsPath}
	if len(tracePaths) == 0 && metricsPath == "" {
		return nil, fmt.Errorf("bench: report needs a trace and/or a metrics file")
	}
	switch len(tracePaths) {
	case 0:
	case 1:
		rep.TraceFile = tracePaths[0]
	default:
		rep.TraceFiles = tracePaths
	}

	byName := map[string]*phaseAcc{}
	var order []string
	for _, path := range tracePaths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		spans, err := obs.ParseTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", path, err)
		}
		rep.Spans += len(spans)
		for _, s := range spans {
			if s.Parent == 0 {
				rep.WallNs += s.Dur()
			}
			p, ok := byName[s.Name]
			if !ok {
				p = &phaseAcc{}
				byName[s.Name] = p
				order = append(order, s.Name)
			}
			p.durs = append(p.durs, s.Dur())
		}
	}
	for _, name := range order {
		rep.Phases = append(rep.Phases, byName[name].summary(name))
	}

	if metricsPath != "" {
		data, err := os.ReadFile(metricsPath)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(data, &rep.Metrics); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", metricsPath, err)
		}
	}
	return rep, nil
}

// phaseAcc collects the raw durations of one phase; the percentiles need
// them all before any summary can be computed.
type phaseAcc struct {
	durs []int64
}

func (a *phaseAcc) summary(name string) PhaseSummary {
	sorted := append([]int64(nil), a.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := PhaseSummary{
		Name:  name,
		Count: len(sorted),
		MinNs: sorted[0],
		MaxNs: sorted[len(sorted)-1],
		P50Ns: percentile(sorted, 0.50),
		P95Ns: percentile(sorted, 0.95),
		P99Ns: percentile(sorted, 0.99),
	}
	for _, d := range sorted {
		s.TotalNs += d
	}
	return s
}

// percentile is the nearest-rank percentile of an ascending-sorted slice.
// It never interpolates, so the result is always an observed duration.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ExpandTraceArgs resolves `rabench report` trace arguments: a file stands
// for itself; a directory expands to its *.jsonl files (sorted by name),
// which is the layout raserved -trace-dir writes (<trace-id>.trace.jsonl).
// A directory without any trace is an error — silently reporting on nothing
// would read as "no slow phases".
func ExpandTraceArgs(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			out = append(out, arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.jsonl"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		var files []string
		for _, m := range matches {
			if st, err := os.Stat(m); err == nil && !st.IsDir() {
				files = append(files, m)
			}
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("bench: directory %s holds no *.jsonl traces", arg)
		}
		out = append(out, files...)
	}
	return out, nil
}

// WriteJSON renders the report with stable formatting (metrics keys are
// sorted by encoding/json; phases keep first-appearance order).
func (r *RunReport) WriteJSON(w interface{ Write([]byte) (int, error) }) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// TopPhases returns the n phases with the largest total duration (for the
// human-readable summary line of `rabench report`).
func (r *RunReport) TopPhases(n int) []PhaseSummary {
	out := append([]PhaseSummary(nil), r.Phases...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// IsMetricsArg reports whether a report argument names a metrics snapshot
// rather than a trace: a plain .json file (traces are .jsonl, and trace
// directories are directories). It keeps the historical positional usage
// `rabench report trace.jsonl metrics.json` working without a flag.
func IsMetricsArg(arg string) bool {
	if strings.HasSuffix(arg, ".jsonl") {
		return false
	}
	if st, err := os.Stat(arg); err == nil && st.IsDir() {
		return false
	}
	return strings.HasSuffix(arg, ".json")
}
