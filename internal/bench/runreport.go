package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"paramra/internal/obs"
)

// RunReport merges a JSONL phase-span trace (-trace-out) and a metrics
// snapshot (-metrics-out) from one tool run into a single machine-readable
// structure. `rabench report` prints it as JSON.
type RunReport struct {
	TraceFile   string `json:"traceFile,omitempty"`
	MetricsFile string `json:"metricsFile,omitempty"`
	// Spans is the total number of spans in the trace.
	Spans int `json:"spans,omitempty"`
	// WallNs is the duration of the trace's root span(s): the span of the
	// whole tool run.
	WallNs int64 `json:"wallNs,omitempty"`
	// Phases aggregates the spans by name, in order of first appearance.
	Phases []PhaseSummary `json:"phases,omitempty"`
	// Metrics is the decoded metrics snapshot (counters, gauges, histogram
	// summaries), keyed by metric name.
	Metrics map[string]any `json:"metrics,omitempty"`
}

// PhaseSummary aggregates all spans sharing one name.
type PhaseSummary struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"totalNs"`
	MinNs   int64  `json:"minNs"`
	MaxNs   int64  `json:"maxNs"`
}

// BuildRunReport reads the trace and/or metrics file (either may be empty)
// and merges them. The trace is schema-validated while parsing.
func BuildRunReport(tracePath, metricsPath string) (*RunReport, error) {
	rep := &RunReport{TraceFile: tracePath, MetricsFile: metricsPath}
	if tracePath == "" && metricsPath == "" {
		return nil, fmt.Errorf("bench: report needs a trace and/or a metrics file")
	}
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		spans, err := obs.ParseTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", tracePath, err)
		}
		rep.Spans = len(spans)
		byName := map[string]*PhaseSummary{}
		var order []string
		for _, s := range spans {
			if s.Parent == 0 {
				rep.WallNs += int64(s.Dur())
			}
			p, ok := byName[s.Name]
			if !ok {
				p = &PhaseSummary{Name: s.Name, MinNs: int64(s.Dur())}
				byName[s.Name] = p
				order = append(order, s.Name)
			}
			d := int64(s.Dur())
			p.Count++
			p.TotalNs += d
			if d < p.MinNs {
				p.MinNs = d
			}
			if d > p.MaxNs {
				p.MaxNs = d
			}
		}
		for _, name := range order {
			rep.Phases = append(rep.Phases, *byName[name])
		}
	}
	if metricsPath != "" {
		data, err := os.ReadFile(metricsPath)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(data, &rep.Metrics); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", metricsPath, err)
		}
	}
	return rep, nil
}

// WriteJSON renders the report with stable formatting (metrics keys are
// sorted by encoding/json; phases keep first-appearance order).
func (r *RunReport) WriteJSON(w interface{ Write([]byte) (int, error) }) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// TopPhases returns the n phases with the largest total duration (for the
// human-readable summary line of `rabench report`).
func (r *RunReport) TopPhases(n int) []PhaseSummary {
	out := append([]PhaseSummary(nil), r.Phases...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs })
	if len(out) > n {
		out = out[:n]
	}
	return out
}
