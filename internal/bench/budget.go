package bench

import (
	"time"

	"paramra/internal/simplified"
)

// BudgetRow is one data point of the timestamp-budget ablation (A3): the
// verifier computes a per-variable integer-timestamp budget of 2·S_v+2;
// widening it must keep verdicts stable while inflating the search space —
// evidence that the computed bound is both sufficient and worth computing
// tightly.
type BudgetRow struct {
	Name    string
	Extra   int
	Unsafe  bool
	Macro   int
	Elapsed time.Duration
}

// BudgetAblation sweeps ExtraSlots over a subset of the corpus.
func BudgetAblation() ([]BudgetRow, error) {
	names := []string{"prodcons-fig1", "mp-litmus", "dekker-ra", "cas-env-supply"}
	var out []BudgetRow
	for _, name := range names {
		e, ok := ByName(name)
		if !ok {
			continue
		}
		sys := e.System()
		for _, extra := range []int{0, 2, 4} {
			v, err := simplified.New(sys, simplified.Options{ExtraSlots: extra})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res := v.Verify()
			out = append(out, BudgetRow{
				Name: name, Extra: extra, Unsafe: res.Unsafe,
				Macro: res.Stats.MacroStates, Elapsed: time.Since(start),
			})
		}
	}
	return out, nil
}

// BudgetTable formats A3.
func BudgetTable(rows []BudgetRow) *Table {
	t := &Table{
		Title:   "A3: timestamp-budget sensitivity (verdicts stable, cost grows)",
		Columns: []string{"benchmark", "extra slots", "unsafe", "macro-states", "time"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, r.Extra, r.Unsafe, r.Macro, r.Elapsed.Round(time.Microsecond))
	}
	t.Notes = append(t.Notes, "the computed 2·S_v+2 budget (extra = 0) is provably sufficient; wider budgets only add isomorphic timestamp placements")
	return t
}
